package vdnn_test

// One benchmark per table/figure of the paper's evaluation. Each bench
// regenerates the corresponding experiment end to end (building the
// networks, simulating every configuration the figure compares) and
// publishes its headline values as benchmark metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"vdnn"
	"vdnn/internal/core"
	"vdnn/internal/cudnnsim"
	"vdnn/internal/figures"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/networks"
	"vdnn/internal/report"
	"vdnn/internal/sim"
	"vdnn/internal/sweep"
	"vdnn/internal/tensor"
)

func freshSuite() *figures.Suite { return figures.NewSuite(gpu.TitanX()) }

// reproAll regenerates the complete evaluation — every figure, ablation and
// case study — on a fresh suite running at the given parallelism: the
// vdnn-repro code path end to end. Extra options (vdnn.WithFullSimulation to
// measure the pre-differential reference) pass through to the simulator.
func reproAll(b *testing.B, workers int, opts ...vdnn.SimulatorOption) {
	b.Helper()
	opts = append([]vdnn.SimulatorOption{vdnn.WithParallelism(workers)}, opts...)
	s := figures.NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(opts...))
	var batch []sweep.Job
	exps := s.Experiments()
	for _, e := range exps {
		batch = append(batch, e.Jobs()...)
	}
	s.Prime(batch)
	for _, e := range exps {
		if e.Gen() == nil {
			b.Fatalf("%s: nil table", e.Name)
		}
	}
}

// BenchmarkReproAll is the repo's headline perf baseline: the full paper
// reproduction, sequential (-j 1) versus parallel (-j 4), with differential
// sweep evaluation on — the production configuration.
//
// The /par run also reports "speedup-x": the same evaluation computed the
// pre-optimization way — every point a full simulation, one worker — divided
// by the optimized parallel run. It measures what this engine's sweep
// optimizations (differential evaluation plus parallel scheduling) buy end to
// end, so it does not collapse to ~1.0 on a single-core runner the way a
// pure par-vs-seq ratio does; on multi-core runners parallelism adds on top.
func BenchmarkReproAll(b *testing.B) {
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reproAll(b, 1)
		}
	})
	b.Run("par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reproAll(b, 4)
		}
		parPerOp := b.Elapsed() / time.Duration(b.N)
		b.StopTimer()
		start := time.Now()
		reproAll(b, 1, vdnn.WithFullSimulation())
		ref := time.Since(start)
		b.ReportMetric(float64(ref)/float64(parPerOp), "speedup-x")
	})
}

// differentialSweepJobs is a structure-shared sweep in the shape of the
// capacity ablations: one network, twelve device capacities, the static
// policy grid. Under differential evaluation each (policy, algo) column
// builds one structure and re-prices it per capacity.
func differentialSweepJobs() []vdnn.BatchJob {
	net := networks.AlexNet(128)
	var jobs []vdnn.BatchJob
	for _, memGB := range []int64{1, 2, 3, 4, 6, 8, 10, 12, 16, 24, 32, 48} {
		spec := gpu.TitanX().WithMemory(memGB << 30)
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.Baseline, core.PerfOptimal},
			{core.VDNNAll, core.MemOptimal},
			{core.VDNNConv, core.PerfOptimal},
		} {
			jobs = append(jobs, vdnn.BatchJob{Net: net, Cfg: core.Config{Spec: spec, Policy: pa.p, Algo: pa.a}})
		}
	}
	return jobs
}

// BenchmarkDifferentialSweep prices a structure-shared capacity sweep both
// ways on a fresh simulator per iteration: /full simulates every point from
// scratch (the pre-optimization engine), /diff reuses one structure per
// policy column. /diff also reports the measured wall-clock reduction as
// "reduction-x" — the tentpole's ≥5x target, gated in CI.
func BenchmarkDifferentialSweep(b *testing.B) {
	jobs := differentialSweepJobs()
	run := func(b *testing.B, opts ...vdnn.SimulatorOption) {
		b.Helper()
		opts = append([]vdnn.SimulatorOption{vdnn.WithParallelism(1)}, opts...)
		sim := vdnn.NewSimulator(opts...)
		if _, err := sim.RunBatch(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, vdnn.WithFullSimulation())
		}
	})
	b.Run("diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b)
		}
		diffPerOp := b.Elapsed() / time.Duration(b.N)
		b.StopTimer()
		start := time.Now()
		run(b, vdnn.WithFullSimulation())
		full := time.Since(start)
		b.ReportMetric(float64(full)/float64(diffPerOp), "reduction-x")
	})
}

// rowCount sanity-checks the regenerated table and returns it.
func mustRows(b *testing.B, t *report.Table, want int) {
	b.Helper()
	if len(t.Rows) != want {
		b.Fatalf("%s: %d rows, want %d", t.Title, len(t.Rows), want)
	}
}

func BenchmarkFig01BaselineMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.Fig1()
		mustRows(b, t, 10)
		untrainable := 0
		for _, r := range t.Rows {
			if r[3] == "no" {
				untrainable++
			}
		}
		b.ReportMetric(float64(untrainable), "untrainable-nets")
	}
}

func BenchmarkFig04MemoryBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.Fig4(), 10)
	}
}

func BenchmarkFig05PerLayerMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.Fig5(), 16)
	}
}

func BenchmarkFig06LatencyReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.Fig6()
		mustRows(b, t, 16)
		// Headline: first-layer reuse distance (paper: > 1200 ms).
		var ms float64
		if _, err := sscanFloat(t.Rows[0][3], &ms); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms, "conv1-reuse-ms")
	}
}

func BenchmarkFig11MemoryUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.Fig11()
		mustRows(b, t, 6)
	}
}

func BenchmarkFig12OffloadSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.Fig12()
		mustRows(b, t, 6)
		var mb float64
		if _, err := sscanFloat(t.Rows[5][1], &mb); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mb, "vgg256-offload-MB")
	}
}

func BenchmarkFig13DramBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.Fig13(), 16)
	}
}

func BenchmarkFig14Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.Fig14()
		mustRows(b, t, 6)
		// Headline: average dyn normalized performance (paper ~0.97, worst 0.82).
		var sum float64
		for _, r := range t.Rows {
			var v float64
			if _, err := sscanFloat(r[5], &v); err != nil {
				b.Fatal(err)
			}
			sum += v
		}
		b.ReportMetric(sum/float64(len(t.Rows)), "dyn-normalized-perf")
	}
}

func BenchmarkFig15VeryDeep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.Fig15()
		mustRows(b, t, 4)
		var mb float64
		if _, err := sscanFloat(t.Rows[3][4], &mb); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mb/1024, "vgg416-base-need-GB")
	}
}

func BenchmarkPowerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.Power(), 5)
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.AblationPrefetch(), 4)
	}
}

func BenchmarkAblationPageMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.AblationPageMigration()
		mustRows(b, t, 2)
		slow := strings.TrimSuffix(t.Rows[1][3], "x")
		var v float64
		if _, err := sscanFloat(slow, &v); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "pagemig-slowdown-x")
	}
}

func BenchmarkAblationInterconnect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.AblationInterconnect(), 3)
	}
}

func BenchmarkAblationCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.AblationCapacity(), 6)
	}
}

func BenchmarkAblationBatchScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.AblationBatchScaling(), 6)
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimulateIteration measures the simulator's own throughput on one
// full VGG-16 (64) training iteration under vDNN-all.
func BenchmarkSimulateIteration(b *testing.B) {
	net := networks.AlexNet(128)
	cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Algo: core.MemOptimal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateDynProfiling measures a full dynamic-policy profiling
// cascade on the hardest workload (VGG-16 (256)).
func BenchmarkSimulateDynProfiling(b *testing.B) {
	net := networks.VGG16(256)
	cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNDyn}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocatorChurn measures the cnmem-style pool under the
// alloc/free churn pattern of a training iteration.
func BenchmarkAllocatorChurn(b *testing.B) {
	sizes := []int64{3 << 20, 64 << 20, 256 << 20, 1 << 20, 128 << 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := memalloc.New(2 << 30)
		var live []*memalloc.Block
		t := int64(0)
		for j := 0; j < 200; j++ {
			t++
			blk, err := p.Alloc(simTime(t), sizes[j%len(sizes)], memalloc.KindFeatureMap, "x")
			if err != nil {
				b.Fatal(err)
			}
			live = append(live, blk)
			if len(live) > 6 {
				p.Free(live[0], simTime(t))
				live = live[1:]
			}
		}
		for _, blk := range live {
			p.Free(blk, simTime(t))
		}
	}
}

// BenchmarkConvCostModel measures the cuDNN cost model as simulations see
// it: the first iteration evaluates the roofline, the rest hit the
// (spec, geometry, algo, direction) memo — so this tracks the memoized hot
// path, not the uncached evaluation.
func BenchmarkConvCostModel(b *testing.B) {
	spec := gpu.TitanX()
	g := cudnnsim.ConvGeom{N: 128, C: 64, H: 224, W: 224, K: 64, R: 3, S: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DType: tensor.Float32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range []cudnnsim.ConvAlgo{cudnnsim.ImplicitGEMM, cudnnsim.FFT, cudnnsim.FFTTiling} {
			_ = cudnnsim.ConvCost(spec, g, a, cudnnsim.Fwd)
		}
	}
}

// BenchmarkNetworkConstruction measures graph building for the deepest
// network.
func BenchmarkNetworkConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if networks.VGGDeep(416, 32) == nil {
			b.Fatal("nil network")
		}
	}
}

// --- helpers ---

func simTime(t int64) sim.Time { return sim.Time(t) }

func sscanFloat(s string, out *float64) (int, error) {
	return fmt.Sscanf(strings.ReplaceAll(s, ",", ""), "%f", out)
}

func BenchmarkAblationWeightOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.AblationWeightOffload(), 2)
	}
}

func BenchmarkCaseStudyMultiGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.CaseStudyMultiGPU(), 2)
	}
}

func BenchmarkCaseStudyContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		t := s.CaseStudyContention()
		mustRows(b, t, 4)
		// Headline: 8-replica mean contention stall (ms) under vDNN-all.
		var ms float64
		if _, err := sscanFloat(t.Rows[3][2], &ms); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ms, "stall-8gpu-ms")
	}
}

func BenchmarkCaseStudyPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.CaseStudyPrecision(), 3)
	}
}

func BenchmarkCaseStudyDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.CaseStudyDevices(), 5)
	}
}

func BenchmarkCaseStudyResNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := freshSuite()
		mustRows(b, s.CaseStudyResNet(), 4)
	}
}

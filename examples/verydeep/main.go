// verydeep reproduces the paper's Section V-E case study: scaling VGG from
// 16 to 416 convolutional layers (batch 32). The baseline's memory demand
// grows ~14x to 67 GB; vDNN keeps the GPU-resident set flat in the
// single-digit GBs, parking 81-92% of the allocations in host memory, with
// negligible performance loss.
package main

import (
	"fmt"

	"vdnn"
)

func main() {
	titan := vdnn.TitanX()
	fmt.Printf("%-12s %14s %14s %14s %10s %12s\n",
		"network", "base need(GB)", "dyn GPU(GB)", "dyn CPU(GB)", "CPU share", "perf vs oracle")
	for _, depth := range []int{16, 116, 216, 316, 416} {
		var net *vdnn.Network
		if depth == 16 {
			net = vdnn.VGG16(32)
		} else {
			net = vdnn.VGGDeep(depth, 32)
		}
		base, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal})
		must(err)
		dyn, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.VDNNDyn})
		must(err)
		oracle, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal, Oracle: true})
		must(err)
		cpuShare := float64(dyn.HostPinnedPeak) / float64(dyn.HostPinnedPeak+dyn.MaxUsage)
		fmt.Printf("%-12s %14.1f %14.1f %14.1f %9.0f%% %11.0f%%\n",
			net.Name,
			float64(base.TotalMaxUsage())/(1<<30),
			float64(dyn.MaxUsage)/(1<<30),
			float64(dyn.HostPinnedPeak)/(1<<30),
			cpuShare*100,
			float64(oracle.FETime)/float64(dyn.FETime)*100)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

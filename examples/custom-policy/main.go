// custom-policy explores the knobs beyond the paper's defaults: prefetch
// scheduling ablations and an NVLINK-class interconnect (the successor link
// the paper anticipates in Section III-A), using GoogLeNet — the fork/join
// topology that stresses vDNN's reference counting the most.
package main

import (
	"fmt"

	"vdnn"
)

func main() {
	net := vdnn.GoogLeNet(128)

	fmt.Println("== prefetch scheduling (GoogLeNet 128, vDNN-all, mem-optimal) ==")
	for _, m := range []vdnn.PrefetchMode{vdnn.PrefetchJIT, vdnn.PrefetchFig10, vdnn.PrefetchEager, vdnn.PrefetchNone} {
		res, err := vdnn.Run(net, vdnn.Config{
			Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal, Prefetch: m,
		})
		must(err)
		fmt.Printf("  %-14s max %6.0f MB  avg %6.0f MB  iter %7.1f ms  on-demand fetches %d\n",
			m, float64(res.MaxUsage)/(1<<20), float64(res.AvgUsage)/(1<<20),
			res.IterTime.Msec(), res.OnDemandFetches)
	}

	fmt.Println()
	fmt.Println("== interconnect what-if (vDNN-all, mem-optimal) ==")
	for _, spec := range []vdnn.GPU{vdnn.TitanX(), vdnn.TitanXNVLink()} {
		res, err := vdnn.Run(net, vdnn.Config{Spec: spec, Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal})
		must(err)
		fmt.Printf("  %-26s (%5.1f GB/s): iter %7.1f ms\n",
			spec.Link.Name, float64(spec.Link.EffBps)/1e9, res.IterTime.Msec())
	}

	fmt.Println()
	fmt.Println("A faster link shrinks the offload stalls that GoogLeNet's short")
	fmt.Println("layers cannot hide; the prefetch window controls how long fetched")
	fmt.Println("data camps in GPU memory before its backward pass needs it.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// custom-policy implements a user-defined memory-management policy through
// the public vdnn.OffloadPolicy interface — no internal/ imports — and runs
// it against the paper's built-in policies on one Simulator.
//
// The policy is size-aware vDNN-conv: offload only CONV-layer input feature
// maps of at least a threshold size, and spend workspace on the
// performance-optimal algorithm only at layers whose input is small. The
// intuition follows the vDNN follow-up work on reducing offload traffic (the
// Compressing DMA Engine): most of the PCIe pressure comes from a few huge
// early-layer feature maps, so a policy that leaves the small tail resident
// keeps most of the memory savings at a fraction of the traffic.
package main

import (
	"context"
	"fmt"

	"vdnn"
)

// sizeAwarePolicy offloads CONV inputs >= MinOffloadBytes and uses
// performance-optimal algorithms for layers whose input is < FastBelowBytes.
type sizeAwarePolicy struct {
	MinOffloadBytes int64
	FastBelowBytes  int64
}

// Name must uniquely identify the policy's decisions — result caches key
// custom policies by it — so every parameter belongs in it, unrounded.
func (p sizeAwarePolicy) Name() string {
	return fmt.Sprintf("size-aware(min=%d,fast<%d)", p.MinOffloadBytes, p.FastBelowBytes)
}

func (p sizeAwarePolicy) OffloadInput(net *vdnn.Network, t *vdnn.Tensor, c *vdnn.Layer) bool {
	return c.Kind == vdnn.Conv && t.Bytes(net.DType) >= p.MinOffloadBytes
}

func (p sizeAwarePolicy) Algorithms(net *vdnn.Network, l *vdnn.Layer, requested vdnn.AlgoMode) vdnn.AlgoMode {
	if l.In().Bytes(net.DType) < p.FastBelowBytes {
		return vdnn.PerfOptimal
	}
	return requested // memory-optimal for the big layers
}

func (p sizeAwarePolicy) PrefetchSchedule(_ *vdnn.Network, requested vdnn.PrefetchMode) vdnn.PrefetchMode {
	return requested
}

func main() {
	sim := vdnn.NewSimulator()
	net := vdnn.VGG16(128)
	titan := vdnn.TitanX()

	type row struct {
		label string
		cfg   vdnn.Config
	}
	rows := []row{
		{"baseline (p)     ", vdnn.Config{Spec: titan, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal}},
		{"vDNN-conv (m)    ", vdnn.Config{Spec: titan, Policy: vdnn.VDNNConv, Algo: vdnn.MemOptimal}},
		{"vDNN-all (m)     ", vdnn.Config{Spec: titan, Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal}},
		{"size-aware 64 MB ", vdnn.Config{Spec: titan, Algo: vdnn.MemOptimal,
			Custom: sizeAwarePolicy{MinOffloadBytes: 64 << 20, FastBelowBytes: 128 << 20}}},
		{"size-aware 256 MB", vdnn.Config{Spec: titan, Algo: vdnn.MemOptimal,
			Custom: sizeAwarePolicy{MinOffloadBytes: 256 << 20, FastBelowBytes: 128 << 20}}},
	}
	jobs := make([]vdnn.BatchJob, len(rows))
	for i, r := range rows {
		jobs[i] = vdnn.BatchJob{Net: net, Cfg: r.cfg}
	}
	results, err := sim.RunBatch(context.Background(), jobs)
	if err != nil {
		panic(err)
	}

	fmt.Printf("== %s on %s: custom OffloadPolicy vs built-ins ==\n", net.Name, titan.Name)
	fmt.Printf("%-18s %10s %10s %12s %10s  %s\n",
		"policy", "max (MB)", "avg (MB)", "offload (MB)", "iter (ms)", "trainable")
	for i, r := range results {
		fmt.Printf("%-18s %10.0f %10.0f %12.0f %10.1f  %v\n",
			rows[i].label,
			float64(r.MaxUsage)/(1<<20), float64(r.AvgUsage)/(1<<20),
			float64(r.OffloadBytes)/(1<<20), r.IterTime.Msec(), r.Trainable)
	}

	fmt.Println()
	fmt.Println("The size threshold dials offload traffic against resident footprint:")
	fmt.Println("raising it keeps small late-layer maps on the GPU (less PCIe traffic,")
	fmt.Println("more memory), while the per-layer algorithm hook spends workspace only")
	fmt.Println("where the input is small. The policy plugs into the same executor as")
	fmt.Println("the paper's policies — implement vdnn.OffloadPolicy and set Config.Custom.")
}

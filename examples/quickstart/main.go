// Quickstart: define a small convolutional network with the builder API,
// then compare the baseline memory manager against vDNN on a simulated
// Titan X — the one-minute tour of what the library does.
package main

import (
	"fmt"

	"vdnn"
)

func main() {
	// A small CIFAR-style convnet, defined the way the paper's API (and
	// Torch/Caffe) compose networks.
	b := vdnn.NewBuilder("tiny-convnet", 256, vdnn.Float32)
	x := b.Input(3, 64, 64)
	x = b.Conv(x, "conv1", 64, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.Conv(x, "conv2", 64, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.MaxPool(x, "pool1", 2, 2, 0)
	x = b.Conv(x, "conv3", 128, 3, 1, 1)
	x = b.ReLU(x, "relu3")
	x = b.MaxPool(x, "pool2", 2, 2, 0)
	x = b.FC(x, "fc1", 256)
	x = b.ReLU(x, "relu4")
	x = b.FC(x, "fc2", 10)
	b.SoftmaxLoss(x, "loss")
	net, err := b.Finalize()
	if err != nil {
		panic(err)
	}

	titan := vdnn.TitanX()
	for _, cfg := range []struct {
		label  string
		policy vdnn.Policy
		algo   vdnn.AlgoMode
	}{
		{"baseline (perf-optimal)", vdnn.Baseline, vdnn.PerfOptimal},
		{"vDNN-all (mem-optimal) ", vdnn.VDNNAll, vdnn.MemOptimal},
		{"vDNN-dyn               ", vdnn.VDNNDyn, 0},
	} {
		res, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: cfg.policy, Algo: cfg.algo})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s  max %6.0f MB  avg %6.0f MB  offloaded %6.0f MB  iter %6.2f ms\n",
			cfg.label,
			float64(res.MaxUsage)/(1<<20), float64(res.AvgUsage)/(1<<20),
			float64(res.OffloadBytes)/(1<<20), res.IterTime.Msec())
	}

	fmt.Println()
	fmt.Println("vDNN trades PCIe transfers for GPU memory: same network, same GPU,")
	fmt.Println("a fraction of the resident footprint.")
}

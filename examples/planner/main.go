// Planner: let the design-space search pick the parallelism configuration
// instead of hand-tuning it. The earlier examples chose their policies,
// replica counts and pipeline shapes by hand; this one states only the
// problem — a network, a global batch, a fleet of capped GPUs — and asks the
// planner for the minimum-step-time configuration that trains under the
// cap. The returned plan carries the winner, its full simulation, and the
// evidence table recording what every other candidate cost or why it was
// pruned without being simulated.
package main

import (
	"context"
	"fmt"
	"os"

	"vdnn"
)

func main() {
	sim := vdnn.NewSimulator()

	// The problem: AlexNet's 128-image batch on up to four GPUs with only
	// 1 GB usable per device — far below the single-device footprint, so
	// the planner has to combine parallelism with offloading to fit.
	req := vdnn.PlanRequest{
		Network:     "alexnet",
		Batch:       128,
		Spec:        vdnn.TitanX(),
		MemCapBytes: 1 << 30,
		MaxDevices:  4,
	}
	plan, err := sim.Plan(context.Background(), req)
	if err != nil {
		// An infeasible problem still returns the evidence table; any other
		// error is fatal.
		if plan == nil {
			panic(err)
		}
		fmt.Println("no trainable configuration under the cap")
		plan.Table().Render(os.Stdout)
		return
	}

	best, res := plan.Best, plan.Result
	fmt.Printf("winner: %s %s codec %s\n", best.Mode(), best.PolicyLabel(), best.CodecLabel())
	fmt.Printf("step time %.1f ms, peak memory %s under a %s cap\n",
		res.IterTime.Msec(), vdnn.FormatBytes(res.TotalMaxUsage()),
		vdnn.FormatBytes(req.MemCapBytes))
	fmt.Printf("search: %d candidates, %d simulated, %d pruned without simulation\n\n",
		plan.Counters.Space, plan.Counters.Evaluated, plan.Counters.Pruned)

	// The evidence table is the planner's audit trail: every candidate with
	// its step time and peak memory, or the reason it was skipped.
	plan.Table().Render(os.Stdout)

	// A second search on the same simulator reuses the result cache — only
	// the widened design space (a deeper device budget here) pays for new
	// simulations.
	req.MaxDevices = 8
	before := sim.Stats().Simulations
	again, err := sim.Plan(context.Background(), req)
	if err != nil {
		panic(err)
	}
	fresh := sim.Stats().Simulations - before
	fmt.Printf("\nwith budget 8: %s %s codec %s, %.1f ms (%d of %d evaluations answered by cache)\n",
		again.Best.Mode(), again.Best.PolicyLabel(), again.Best.CodecLabel(),
		again.Result.IterTime.Msec(), again.Counters.Evaluated-int(fresh), again.Counters.Evaluated)
}

// resnet applies vDNN to the network the paper's introduction anticipates:
// "the most recent ImageNet winning network adopting more than a hundred
// convolutional layers" (ResNet, He et al.). Residual skip connections join
// by elementwise addition — a different fork/join pattern from GoogLeNet —
// and every convolution carries batch normalization, whose backward pass
// pins both X and Y.
package main

import (
	"fmt"

	"vdnn"
)

func main() {
	titan := vdnn.TitanX()
	fmt.Println("ResNet-152 on a 12 GB Titan X")
	fmt.Printf("%-8s %16s %10s %10s %14s\n", "batch", "base need (GB)", "base(p)", "vDNN-dyn", "dyn max (GB)")
	for _, batch := range []int{16, 32, 64, 128} {
		net := vdnn.ResNet152(batch)
		base, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal})
		must(err)
		dyn, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.VDNNDyn})
		must(err)
		fmt.Printf("%-8d %16.1f %10v %10v %14.1f\n",
			batch,
			float64(base.TotalMaxUsage())/(1<<30),
			base.Trainable, dyn.Trainable,
			float64(dyn.MaxUsage)/(1<<30))
	}
	fmt.Println()
	fmt.Println("The baseline tops out at batch 32; vDNN carries the same network")
	fmt.Println("to batch 128 by parking feature maps in host memory.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Pipeline parallelism: split VGG-16 across 4 GPUs by layers and stream
// micro-batches through the stages GPipe-style — the "very deep network"
// answer when even vDNN's offloading cannot fit (or cannot feed) one device.
//
// The walk-through runs a 256-image batch three ways:
//
//  1. one GPU, vDNN-all (the paper's setup),
//  2. a 4-stage pipeline with the automatic balanced-by-cost partitioner,
//     at two micro-batch counts (more micro-batches shrink the fill/drain
//     bubble, whose ideal fraction is (S-1)/(M+S-1)), and
//  3. the same pipeline with explicit user cut points,
//
// printing per-stage layer ranges, compute vs bubble time, inter-stage
// hand-off traffic and each stage's memory-pool peak. Every inter-stage
// transfer crosses the shared PCIe root complex, contending with the
// stages' own vDNN offload and prefetch traffic.
package main

import (
	"context"
	"fmt"

	"vdnn"
)

func main() {
	sim := vdnn.NewSimulator()
	net, err := sim.Network("vgg16", 256)
	if err != nil {
		panic(err)
	}

	base := vdnn.Config{
		Spec:   vdnn.TitanX(),
		Policy: vdnn.VDNNAll,
		Algo:   vdnn.MemOptimal,
	}
	single := base

	auto4 := base
	auto4.Stages = 4 // MicroBatches defaults to Stages

	auto16 := base
	auto16.Stages = 4
	auto16.MicroBatches = 16

	manual := base
	manual.Stages = 4
	manual.MicroBatches = 16
	manual.StageCuts = "5,10,17" // cut at the block edges instead

	results, err := sim.RunBatch(context.Background(), []vdnn.BatchJob{
		{Net: net, Cfg: single},
		{Net: net, Cfg: auto4},
		{Net: net, Cfg: auto16},
		{Net: net, Cfg: manual},
	})
	if err != nil {
		panic(err)
	}
	labels := []string{
		"1 GPU, vDNN-all(m)",
		"4 stages, M=4 (auto partition)",
		"4 stages, M=16 (auto partition)",
		"4 stages, M=16 (cuts 5,10,17)",
	}

	fmt.Printf("VGG-16, 256-image batch on %s\n\n", vdnn.TitanX().Name)
	for i, r := range results {
		fmt.Printf("%s:\n", labels[i])
		fmt.Printf("  iteration %.0f ms (%.0f img/s), peak pool/GPU %s\n",
			r.IterTime.Msec(), 256/r.IterTime.Seconds(), vdnn.FormatBytes(r.MaxUsage))
		if len(r.Stages) == 0 {
			fmt.Println()
			continue
		}
		fmt.Printf("  bubble %.0f ms (%.0f%% of stage time), imbalance %.2fx, inter-stage %s\n",
			r.BubbleTime.Msec(), 100*r.BubbleFraction, r.DeviceImbalance(),
			vdnn.FormatBytes(r.InterStageBytes))
		for _, s := range r.Stages {
			fmt.Printf("    stage %d: layers %2d-%2d  busy %6.0f ms  bubble %6.0f ms  send %s\n",
				s.Stage, s.FirstLayer, s.LastLayer,
				s.ComputeBusy.Msec(), s.BubbleTime.Msec(), vdnn.FormatBytes(s.SendBytes))
		}
		fmt.Println()
	}
	fmt.Println("more micro-batches shrink the bubble; explicit cuts trade balance for")
	fmt.Println("boundary placement (cut where the crossing activation is smallest)")
}

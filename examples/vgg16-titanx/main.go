// vgg16-titanx reproduces the paper's headline result: VGG-16 with batch
// size 256 needs ~28 GB of memory under the baseline memory manager —
// impossible on a 12 GB Titan X — but trains under vDNN's dynamic policy
// with a modest performance penalty against a hypothetical GPU with enough
// memory (the paper reports 18%).
package main

import (
	"fmt"

	"vdnn"
)

func main() {
	net := vdnn.VGG16(256)
	titan := vdnn.TitanX()

	// 1. The baseline cannot train this network.
	base, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal})
	must(err)
	fmt.Printf("baseline: needs %.1f GB on a %.0f GB GPU -> trainable: %v\n",
		float64(base.TotalMaxUsage())/(1<<30), float64(titan.MemBytes)/(1<<30), base.Trainable)

	// 2. The oracular GPU the paper normalizes against.
	oracle, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal, Oracle: true})
	must(err)
	fmt.Printf("oracular GPU (unlimited memory): iteration %.0f ms\n", oracle.FETime.Msec())

	// 3. vDNN's dynamic policy on the real 12 GB card.
	dyn, err := vdnn.Run(net, vdnn.Config{Spec: titan, Policy: vdnn.VDNNDyn})
	must(err)
	fmt.Printf("vDNN-dyn: trainable: %v (profiling chose: %s)\n", dyn.Trainable, dyn.Chosen)
	fmt.Printf("  GPU memory: max %.1f GB (of %.1f GB), avg %.1f GB\n",
		float64(dyn.MaxUsage)/(1<<30), float64(titan.MemBytes)/(1<<30), float64(dyn.AvgUsage)/(1<<30))
	fmt.Printf("  offloaded to host per iteration: %.1f GB over PCIe\n", float64(dyn.OffloadBytes)/(1<<30))
	fmt.Printf("  iteration: %.0f ms -> %.0f%% of the oracular GPU (paper: 82%%)\n",
		dyn.FETime.Msec(), float64(oracle.FETime)/float64(dyn.FETime)*100)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Multi-GPU: simulate 4 data-parallel VGG-16 replicas fighting over one
// shared PCIe root complex — the scale question vDNN's single-GPU evaluation
// leaves open. Each replica trains its own batch-64 minibatch under
// vDNN-all; offload and prefetch traffic contends with the other replicas'
// and with the per-step gradient all-reduce on the shared uplink.
//
// The walk-through compares three points:
//
//  1. one GPU on a dedicated link (the paper's setup),
//  2. 4 GPUs on dedicated links (contention-free data parallelism), and
//  3. 4 GPUs behind one shared x16 root complex,
//
// printing per-replica step time, contention stalls and how much of the
// transfer time still hides behind compute.
package main

import (
	"context"
	"fmt"

	"vdnn"
)

func main() {
	sim := vdnn.NewSimulator()
	net, err := sim.Network("vgg16", 64)
	if err != nil {
		panic(err)
	}

	base := vdnn.Config{
		Spec:   vdnn.TitanX(),
		Policy: vdnn.VDNNAll,
		Algo:   vdnn.MemOptimal,
	}
	single := base
	dedicated := base
	dedicated.Devices = 4
	dedicated.Topology = vdnn.DedicatedTopology()
	shared := base
	shared.Devices = 4
	shared.Topology = vdnn.SharedGen3Root()

	// One batch, three configurations; the simulator runs them concurrently
	// and caches every result.
	results, err := sim.RunBatch(context.Background(), []vdnn.BatchJob{
		{Net: net, Cfg: single},
		{Net: net, Cfg: dedicated},
		{Net: net, Cfg: shared},
	})
	if err != nil {
		panic(err)
	}

	labels := []string{
		"1 GPU, dedicated link  ",
		"4 GPUs, dedicated links",
		"4 GPUs, shared x16 root",
	}
	fmt.Println("VGG-16 (batch 64 per replica), vDNN-all(m) on a 12 GB Titan X")
	fmt.Println()
	for i, r := range results {
		step, stall, overlap := r.ReplicaMeans()
		imgs := float64(64*max(1, len(r.Devices))) / r.IterTime.Seconds()
		fmt.Printf("%s  step/replica %7.1f ms   stall %7.1f ms   overlap %3.0f%%   aggregate %3.0f img/s\n",
			labels[i], step.Msec(), stall.Msec(), overlap*100, imgs)
	}

	shared8 := shared
	shared8.Devices = 8
	r8, err := sim.Run(context.Background(), net, shared8)
	if err != nil {
		panic(err)
	}
	step, stall, overlap := r8.ReplicaMeans()
	fmt.Printf("8 GPUs, shared x16 root  step/replica %7.1f ms   stall %7.1f ms   overlap %3.0f%%\n",
		step.Msec(), stall.Msec(), overlap*100)
	fmt.Println()
	fmt.Printf("all-reduce at 4 GPUs: %s over the root complex in %.1f ms\n",
		vdnn.FormatBytes(results[2].AllReduceBytes), results[2].AllReduceTime.Msec())
	fmt.Println("transfers that hid behind compute on a dedicated link become exposed under contention;")
	fmt.Println("scale the uplink (shared-2x16, shared-4x16) or the batch to buy the overlap back")
}

// Compressed DMA: simulate the follow-up to the vDNN paper — "Compressing
// DMA Engine: Leveraging Activation Sparsity for Training Deep Neural
// Networks" (Rhu et al.) — on top of the vDNN runtime. ReLU-family layers
// leave VGG-16's offloaded feature maps 45-90% zero, so a codec sitting in
// the DMA engines (Config.Compression) shrinks the PCIe traffic that
// dominates vDNN's offload cost; prefetches pay a decompression pass before
// the backward kernels consume the data.
//
// The walk-through compares VGG-16 under vDNN-all(m) with the codec off, with
// cDMA's zero-value compression (ZVC), and with a run-length variant, then
// shows a custom OffloadPolicy vetoing the codec per buffer through the
// CompressionPolicy hook.
package main

import (
	"context"
	"fmt"

	"vdnn"
)

// convOnlyCompression delegates everything to the built-in vDNN-all policy
// but compresses only buffers consumed by CONV layers — the long
// reuse-distance transfers where compression buys the most — leaving the
// rest of the traffic uncompressed.
type convOnlyCompression struct{ vdnn.OffloadPolicy }

func (convOnlyCompression) Name() string { return "conv-only-zvc" }

func (convOnlyCompression) Compress(_ *vdnn.Network, t *vdnn.Tensor, requested vdnn.Codec) vdnn.Codec {
	for _, c := range t.Consumer {
		if c.Kind == vdnn.Conv {
			return requested
		}
	}
	return vdnn.CodecNone
}

func main() {
	sim := vdnn.NewSimulator()
	net, err := sim.Network("vgg16", 128)
	if err != nil {
		panic(err)
	}

	base := vdnn.Config{
		Spec:   vdnn.TitanX(),
		Policy: vdnn.VDNNAll,
		Algo:   vdnn.MemOptimal,
	}
	zvc := base
	zvc.Compression = vdnn.Compression{Codec: vdnn.CodecZVC} // profile defaults to "cdma"
	rle := base
	rle.Compression = vdnn.Compression{Codec: vdnn.CodecRLE}

	results, err := sim.RunBatch(context.Background(), []vdnn.BatchJob{
		{Net: net, Cfg: base},
		{Net: net, Cfg: zvc},
		{Net: net, Cfg: rle},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("VGG-16 (128), vDNN-all(m) on a 12 GB Titan X over PCIe gen3 x16")
	fmt.Println()
	labels := []string{"no compression", "zvc (cdma profile)", "rle (cdma profile)"}
	for i, r := range results {
		fmt.Printf("%-20s offload %8s -> %8s wire (%.2fx)   codec busy %6.1f ms   FE %7.1f ms\n",
			labels[i], vdnn.FormatBytes(r.OffloadRawBytes), vdnn.FormatBytes(r.OffloadBytes),
			r.CompressionRatio, (r.CompressTime + r.DecompressTime).Msec(), r.FETime.Msec())
	}

	// The invariant the codec guarantees: compression never increases wire
	// traffic, because incompressible buffers pass through unchanged.
	for i, r := range results[1:] {
		if r.OffloadBytes > results[0].OffloadBytes {
			panic(fmt.Sprintf("%s increased offload traffic", labels[i+1]))
		}
	}

	// Per-buffer control: an OffloadPolicy implementing CompressionPolicy
	// picks the codec buffer by buffer.
	all, err := vdnn.BuiltinPolicy(vdnn.VDNNAll)
	if err != nil {
		panic(err)
	}
	custom := base
	custom.Custom = convOnlyCompression{all}
	custom.Compression = vdnn.Compression{Codec: vdnn.CodecZVC}
	rc, err := sim.Run(context.Background(), net, custom)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Printf("custom %q policy: offload %s -> %s wire (%.2fx)\n",
		rc.PolicyName, vdnn.FormatBytes(rc.OffloadRawBytes), vdnn.FormatBytes(rc.OffloadBytes),
		rc.CompressionRatio)
	fmt.Println()
	fmt.Println("the codec turns offload-bound layers back into compute-bound ones;")
	fmt.Println("sweep codecs and sparsity profiles with: vdnn-explore -network vgg16 codec")
}

// Backends: walk the hardware catalog and compare the energy bill of the
// same training step on two accelerator backends. The catalog is the
// registry behind vdnn.GPUByName — the legacy constructors (vdnn.TitanX and
// friends) are now thin aliases over it — and every Result carries a per-op
// energy breakdown (compute, DMA, codec, idle joules) that sums exactly to
// the power timeline's integral over the measured iteration.
package main

import (
	"fmt"

	"vdnn"
)

func main() {
	// The catalog lists every registered backend by name; BackendByName
	// returns the entry itself, GPUByName materializes its device spec.
	fmt.Println("hardware catalog:")
	for _, name := range vdnn.BackendNames() {
		spec, _ := vdnn.GPUByName(name)
		fmt.Printf("  %-14s %-34s %s memory, %s link\n",
			name, spec.Name, spec.MemKind, spec.Link.Class)
	}

	// Same workload, same offload policy, two points of the catalog: the
	// paper's Titan X offloads over PCIe gen3, while the RAPIDNN-style
	// near-memory accelerator moves the same traffic over an on-die fabric
	// at a fraction of the wire energy.
	net := vdnn.VGG16(64)
	fmt.Printf("\nVGG-16 (64) under vDNN-all(m):\n")
	for _, name := range []string{"titanx", "rapidnn"} {
		spec, ok := vdnn.GPUByName(name)
		if !ok {
			panic("catalog lost " + name)
		}
		res, err := vdnn.Run(net, vdnn.Config{Spec: spec, Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal})
		if err != nil {
			panic(err)
		}
		e := res.Energy
		fmt.Printf("  %-8s step %7.1f ms, avg %3.0f W, %7.1f J/iter "+
			"(compute %.1f + dma %.2f + codec %.2f + idle %.1f), dma share %.1f%%\n",
			name, res.IterTime.Msec(), res.Power.AvgW, e.TotalJ(),
			e.ComputeJ, e.DMAJ, e.CodecJ, e.IdleJ, 100*e.DMAJ/e.TotalJ())
	}

	// The breakdown is conserved by construction: its sum equals average
	// power times the step — the invariant the test suite pins to 1e-9.
	spec, _ := vdnn.GPUByName("titanx")
	res, err := vdnn.Run(net, vdnn.Config{Spec: spec, Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal})
	if err != nil {
		panic(err)
	}
	integral := res.Power.AvgW * res.IterTime.Seconds()
	fmt.Printf("\nconservation: breakdown %.3f J vs power integral %.3f J\n",
		res.Energy.TotalJ(), integral)
}

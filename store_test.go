package vdnn_test

import (
	"context"
	"reflect"
	"testing"

	"vdnn"
)

// TestSimulatorWithStore exercises the public persistent-store surface the
// way the CLIs use it: OpenStore + WithStore, a cold process filling the
// store, and a fresh process (new Simulator, new Store over the same
// directory) serving the identical sweep without simulating.
func TestSimulatorWithStore(t *testing.T) {
	dir := t.TempDir()

	jobs := func(s *vdnn.Simulator) []vdnn.BatchJob {
		net, err := s.Network("alexnet", 32)
		if err != nil {
			t.Fatal(err)
		}
		var out []vdnn.BatchJob
		for _, p := range []vdnn.Policy{vdnn.Baseline, vdnn.VDNNAll, vdnn.VDNNConv} {
			out = append(out, vdnn.BatchJob{Net: net, Cfg: vdnn.Config{
				Spec: vdnn.TitanX(), Policy: p, Algo: vdnn.MemOptimal,
			}})
		}
		return out
	}

	st1, err := vdnn.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	sim1 := vdnn.NewSimulator(vdnn.WithParallelism(2), vdnn.WithStore(st1))
	if sim1.ResultStore() == nil {
		t.Fatalf("ResultStore() nil after WithStore")
	}
	cold, err := sim1.RunBatch(context.Background(), jobs(sim1))
	if err != nil {
		t.Fatalf("cold RunBatch: %v", err)
	}
	if s := sim1.Stats(); s.Simulations == 0 {
		t.Fatalf("cold run did not simulate: %+v", s)
	}
	if s := st1.Stats(); s.Writes != 3 {
		t.Fatalf("store after cold run: %+v, want 3 writes", s)
	}

	st2, err := vdnn.OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s := st2.Stats(); s.Records != 3 {
		t.Fatalf("reopened store: %+v, want 3 records", s)
	}
	sim2 := vdnn.NewSimulator(vdnn.WithParallelism(2), vdnn.WithStore(st2))
	warm, err := sim2.RunBatch(context.Background(), jobs(sim2))
	if err != nil {
		t.Fatalf("warm RunBatch: %v", err)
	}
	if s := sim2.Stats(); s.Simulations != 0 {
		t.Fatalf("warm run simulated: %+v", s)
	}
	if s := st2.Stats(); s.Hits != 3 {
		t.Fatalf("store after warm run: %+v, want 3 hits", s)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("store-served results differ from simulated ones")
	}
}

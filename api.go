package vdnn

import (
	"context"

	"vdnn/internal/compress"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/sim"
	"vdnn/internal/store"
	"vdnn/internal/sweep"
	"vdnn/internal/tensor"
)

// The public API is a thin facade over the internal packages: type aliases
// keep one definition of each concept while hiding the internal import
// paths from downstream users.

// Policy selects the memory manager (paper Section III-C).
type Policy = core.Policy

// Memory-management policies.
const (
	// Baseline is the Torch-style network-wide allocation policy.
	Baseline = core.Baseline
	// VDNNAll offloads every feature-extraction layer's input feature map.
	VDNNAll = core.VDNNAll
	// VDNNConv offloads only the CONV layers' input feature maps.
	VDNNConv = core.VDNNConv
	// VDNNDyn profiles at startup to balance trainability and performance.
	VDNNDyn = core.VDNNDyn
)

// AlgoMode selects convolution algorithms: the paper's (m) memory-optimal
// and (p) performance-optimal variants, plus the dynamic policy's greedy
// online downgrade mode.
type AlgoMode = core.AlgoMode

// Algorithm modes.
const (
	MemOptimal  = core.MemOptimal
	PerfOptimal = core.PerfOptimal
	GreedyAlgo  = core.GreedyAlgo
)

// PrefetchMode selects the prefetch schedule (Figure 9 JIT by default).
type PrefetchMode = core.PrefetchMode

// Prefetch schedules.
const (
	PrefetchJIT   = core.PrefetchJIT
	PrefetchFig10 = core.PrefetchFig10
	PrefetchNone  = core.PrefetchNone
	PrefetchEager = core.PrefetchEager
)

// Codec selects the compression algorithm of the simulated compressing DMA
// engine (the cDMA follow-up paper): CodecNone disables it, CodecZVC is
// cDMA's zero-value compression, CodecRLE a run-length/CSR-style variant.
type Codec = compress.Codec

// Compression codecs.
const (
	CodecNone = compress.CodecNone
	CodecZVC  = compress.CodecZVC
	CodecRLE  = compress.CodecRLE
)

// Compression selects the compressed-DMA model of a simulation: a codec plus
// a named activation-sparsity profile (see SparsityProfileNames). Set it on
// Config.Compression; the zero value disables compression and leaves every
// schedule and cache key untouched.
type Compression = compress.Config

// SparsityProfile is a deterministic activation-sparsity model: how many
// zeros the codec finds in ReLU-family outputs as a function of network
// depth. Named presets live in a registry ("cdma", "flat50", "dense").
type SparsityProfile = compress.Profile

// OffloadPolicy is the extension point of the memory manager: a user
// implementation decides per layer what is offloaded, which convolution
// algorithm mode runs, and which prefetch schedule to follow. Set it on
// Config.Custom; the four paper policies are built-in implementations
// (BuiltinPolicy). See core.OffloadPolicy for the full contract.
type OffloadPolicy = core.OffloadPolicy

// CompressionPolicy is an optional OffloadPolicy extension: a policy that
// implements it is consulted per offloaded buffer and may veto or override
// the configured codec (Config.Compression).
type CompressionPolicy = core.CompressionPolicy

// Profiler is an optional OffloadPolicy extension: a policy that settles its
// final configuration by running candidate simulations at startup, the way
// the paper's dynamic policy does.
type Profiler = core.Profiler

// Simulate runs one candidate configuration on behalf of a Profiler.
type Simulate = core.Simulate

// BuiltinPolicy returns the built-in OffloadPolicy implementation of a
// Policy enum value, so custom policies can delegate to a paper policy and
// refine it.
func BuiltinPolicy(p Policy) (OffloadPolicy, error) { return core.BuiltinPolicy(p) }

// Config selects what to simulate; see the field documentation on
// core.Config.
type Config = core.Config

// Result carries every metric of a simulated training iteration.
type Result = core.Result

// LayerStats is the per-layer view of a Result.
type LayerStats = core.LayerStats

// Time is simulated time in nanoseconds (every duration in a Result —
// IterTime, FETime, per-layer and per-device times — is one of these).
type Time = sim.Time

// DeviceResult is the per-replica view of a data-parallel Result
// (Config.Devices > 1): step time, traffic, contention stalls and overlap
// efficiency of one GPU.
type DeviceResult = core.DeviceResult

// StageResult is the per-stage view of a pipeline-parallel Result
// (Config.Stages > 1): the stage's layer range, its active span and
// measured pipeline bubble, its inter-stage wire traffic and its own
// offload/prefetch traffic.
type StageResult = core.StageResult

// ResultStore is a persistent result cache a Simulator reads through before
// simulating and writes through after (WithStore). Store is the file-backed
// implementation; the interface is exported so tests and alternative
// backends can substitute their own.
type ResultStore = sweep.ResultStore

// Store is the file-backed ResultStore: one content-addressed, checksummed
// record file per (network, normalized configuration) key, written
// atomically so concurrent processes can share a store directory. See
// OpenStore.
type Store = store.Store

// StoreStats is a snapshot of a Store's counters (records, hits, misses,
// writes, write errors, corrupt records skipped).
type StoreStats = store.Stats

// OpenStore opens (creating if needed) a persistent result store rooted at
// dir. Every record is validated up front: truncated or corrupt records are
// skipped and counted, never fatal, so a store that survived a crash or a
// bad disk still serves its intact results. Pass the result to WithStore.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// GPU describes the simulated device: compute cost, memory hierarchy
// (capacity, bandwidth, reservation, MemoryKind), host Link, and the linear
// power/energy model. Every entry of the hardware catalog materializes to
// one of these.
type GPU = gpu.Spec

// Backend is a pluggable accelerator entry of the hardware catalog: a
// stable registry token plus the GPU spec it materializes. Fixed profiles
// use SpecBackend; RegisterBackend installs custom implementations.
type Backend = gpu.Backend

// SpecBackend is the trivial Backend: a token bound to a fixed GPU spec.
type SpecBackend = gpu.SpecBackend

// MemoryKind classifies a device's memory technology (GDDR, HBM stacks, or
// the accelerator-resident DRAM of a near-memory design). Catalog metadata
// only — it never changes a schedule.
type MemoryKind = gpu.MemoryKind

// Memory kinds.
const (
	GDDR     = gpu.GDDR
	HBM      = gpu.HBM
	NearDRAM = gpu.NearDRAM
)

// PowerStats is a Result's board-power summary: time-weighted average and
// instantaneous maximum watts over the measured iteration.
type PowerStats = gpu.PowerStats

// EnergyStats is a Result's per-op energy breakdown in joules — compute,
// DMA, codec and idle-floor buckets whose TotalJ() equals the power
// timeline's integral (Power.AvgW x the measured span).
type EnergyStats = gpu.EnergyStats

// Link describes a host interconnect.
type Link = pcie.Link

// LinkClass groups links into interconnect families (PCIe, NVLINK-class,
// on-die fabric). Catalog metadata only — costs come from the Link numbers.
type LinkClass = pcie.LinkClass

// Link classes.
const (
	ClassPCIe   = pcie.ClassPCIe
	ClassNVLink = pcie.ClassNVLink
	ClassOnDie  = pcie.ClassOnDie
)

// Topology describes how data-parallel replicas attach to the host
// interconnect: dedicated per-device links, or links sharing a root complex
// with bounded aggregate bandwidth (set it on Config.Topology alongside
// Config.Devices).
type Topology = pcie.Topology

// Network is a layer graph ready to simulate.
type Network = dnn.Network

// Builder assembles custom networks layer by layer.
type Builder = dnn.Builder

// Tensor is a feature-map buffer inside a network under construction.
type Tensor = dnn.Tensor

// Layer is one step of a network's statically ordered computation sequence;
// OffloadPolicy implementations inspect it (Kind, InPlace, shapes) when
// deciding what to offload.
type Layer = dnn.Layer

// LayerKind enumerates the layer types of the benchmark networks.
type LayerKind = dnn.LayerKind

// Layer kinds.
const (
	Conv        = dnn.Conv
	ReLU        = dnn.ReLU
	Pool        = dnn.Pool
	LRN         = dnn.LRN
	Concat      = dnn.Concat
	Add         = dnn.Add
	BatchNorm   = dnn.BatchNorm
	FC          = dnn.FC
	Dropout     = dnn.Dropout
	SoftmaxLoss = dnn.SoftmaxLoss
)

// Stage splits a network between vDNN-managed feature extraction and the
// unmanaged classifier tail.
type Stage = dnn.Stage

// Stages.
const (
	FeatureExtraction = dnn.FeatureExtraction
	Classifier        = dnn.Classifier
)

// DType is a tensor element type.
type DType = tensor.DType

// Element types.
const (
	Float32 = tensor.Float32
	Float16 = tensor.Float16
)

// FormatBytes renders a byte count with a binary-unit suffix ("1.5 GB").
func FormatBytes(n int64) string { return tensor.FormatBytes(n) }

// The hardware constructors below are thin aliases over the catalog — each
// one returns exactly its registry entry (GPUByName / LinkByName /
// TopologyByName), which is the preferred way to address hardware. They are
// kept so no existing caller breaks; new code should resolve catalog names.

// catalogGPU, catalogLink and catalogTopology back the legacy constructors
// with registry lookups. The built-in names are always registered, so a
// miss is a programming error.
func catalogGPU(name string) GPU {
	s, ok := gpu.ByName(name)
	if !ok {
		panic("vdnn: built-in device " + name + " missing from catalog")
	}
	return s
}

func catalogLink(name string) Link {
	l, ok := pcie.ByName(name)
	if !ok {
		panic("vdnn: built-in link " + name + " missing from catalog")
	}
	return l
}

func catalogTopology(name string) Topology {
	t, ok := pcie.TopologyByName(name)
	if !ok {
		panic("vdnn: built-in topology " + name + " missing from catalog")
	}
	return t
}

// TitanX returns the paper's evaluation GPU: NVIDIA Titan X (Maxwell),
// 7 TFLOPS, 336 GB/s, 12 GB, PCIe gen3 x16. Alias for GPUByName("titanx").
func TitanX() GPU { return catalogGPU("titanx") }

// TitanXNVLink returns a what-if Titan X with an NVLINK-class interconnect.
// Alias for GPUByName("titanx-nvlink").
func TitanXNVLink() GPU { return catalogGPU("titanx-nvlink") }

// GTX980 returns the 4 GB previous-generation Maxwell card. Alias for
// GPUByName("gtx980").
func GTX980() GPU { return catalogGPU("gtx980") }

// TeslaK40 returns the Kepler-generation 12 GB compute card. Alias for
// GPUByName("teslak40").
func TeslaK40() GPU { return catalogGPU("teslak40") }

// PascalP100 returns a forward-looking 16 GB HBM2 device with NVLINK.
// Alias for GPUByName("p100").
func PascalP100() GPU { return catalogGPU("p100") }

// RapidNN returns the RAPIDNN-style near-memory accelerator profile: compute
// in the DRAM stack, an on-die fabric in place of a host link (offload wire
// cost near zero), and a far lower power envelope. Alias for
// GPUByName("rapidnn").
func RapidNN() GPU { return catalogGPU("rapidnn") }

// PCIeGen3 returns the paper's interconnect (12.8 GB/s effective DMA).
// Alias for LinkByName("pcie3").
func PCIeGen3() Link { return catalogLink("pcie3") }

// NVLink returns a first-generation NVLINK link model. Alias for
// LinkByName("nvlink").
func NVLink() Link { return catalogLink("nvlink") }

// DedicatedTopology gives every replica its full link: transfers never
// contend (the single-GPU model, and the zero value of Topology). Alias for
// TopologyByName("dedicated").
func DedicatedTopology() Topology { return catalogTopology("dedicated") }

// SharedRootTopology builds a topology whose device links hang off a root
// complex with the given per-direction aggregate bandwidth (bytes/sec).
func SharedRootTopology(name string, aggregateBps int64) Topology {
	return pcie.SharedRoot(name, aggregateBps)
}

// SharedGen3Root returns the worst-case multi-GPU topology: every replica
// behind one gen3 x16 uplink (12.8 GB/s effective, shared). This is the
// default topology of multi-device configurations. Alias for
// TopologyByName("shared-x16").
func SharedGen3Root() Topology { return catalogTopology("shared-x16") }

// ErrCanceled marks a simulation abandoned by context cancellation: errors
// from Simulator.Run/RunBatch satisfy errors.Is(err, ErrCanceled) (and
// errors.Is against context.Canceled or context.DeadlineExceeded, whichever
// cause applied) when the simulation stopped early instead of failing.
var ErrCanceled = core.ErrCanceled

// Run simulates training one network under one configuration — the one-shot
// convenience for scripts. Long-lived callers, batch sweeps and anything
// serving repeated requests should use a Simulator, which adds caching,
// deduplication, bounded concurrency and context cancellation. When the
// configuration cannot train the network (out of memory), the Result has
// Trainable == false and reports the hypothetical memory demand measured on
// an oracular device; a non-nil error indicates an invalid configuration.
func Run(net *Network, cfg Config) (*Result, error) { return core.Run(net, cfg) }

// RunContext is Run under a context: cancellation is checked at layer
// granularity (per clock step for pipeline runs), so a canceled simulation
// returns within the cost of one layer's bookkeeping. The returned error
// wraps ErrCanceled and the context's cause.
func RunContext(ctx context.Context, net *Network, cfg Config) (*Result, error) {
	return core.RunContext(ctx, net, cfg)
}

// BuildNetwork constructs one of the paper's benchmark networks by name:
// "alexnet", "overfeat", "googlenet", "vgg16", or the very deep variants
// "vgg116", "vgg216", "vgg316", "vgg416".
func BuildNetwork(name string, batch int) (*Network, error) { return networks.ByName(name, batch) }

// NetworkNames lists the names BuildNetwork accepts.
func NetworkNames() []string { return networks.Names() }

// AlexNet builds the AlexNet benchmark (one-weird-trick variant).
func AlexNet(batch int) *Network { return networks.AlexNet(batch) }

// OverFeat builds the OverFeat (fast) benchmark.
func OverFeat(batch int) *Network { return networks.OverFeat(batch) }

// GoogLeNet builds GoogLeNet v1 (fork/join inception topology).
func GoogLeNet(batch int) *Network { return networks.GoogLeNet(batch) }

// VGG16 builds VGG-16 (Model D).
func VGG16(batch int) *Network { return networks.VGG16(batch) }

// VGGDeep builds the very deep VGG variants of the paper's case study:
// convLayers must be 16 + a multiple of 100 (116, 216, 316, 416).
func VGGDeep(convLayers, batch int) *Network { return networks.VGGDeep(convLayers, batch) }

// ResNet50 builds ResNet-50 (residual bottleneck blocks with BN).
func ResNet50(batch int) *Network { return networks.ResNet50(batch) }

// ResNet101 builds ResNet-101.
func ResNet101(batch int) *Network { return networks.ResNet101(batch) }

// ResNet152 builds ResNet-152, the >100-convolution ImageNet winner the
// paper's introduction anticipates.
func ResNet152(batch int) *Network { return networks.ResNet152(batch) }

// Transformer builds a ViT-Large-style 24-block encoder whose attention
// score maps are quadratic in the token count — the post-paper workload
// whose activation footprint most stresses an offload policy.
func Transformer(batch int) *Network { return networks.Transformer(batch) }

// NewBuilder starts a custom network definition with the given input batch
// size and element type. The builder API mirrors Torch/Caffe-style model
// definitions; see the dnn.Builder methods.
func NewBuilder(name string, batch int, d DType) *Builder { return dnn.NewBuilder(name, batch, d) }

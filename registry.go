package vdnn

import (
	"vdnn/internal/compress"
	"vdnn/internal/gpu"
	"vdnn/internal/pcie"
)

// Process-wide named registries — the hardware catalog — for accelerator
// backends and interconnects. Names are the serializable identities of GPU
// and Link values: CLI flags, JSON requests and sweep files address hardware
// by these tokens, and the Simulator resolves them (optionally shadowed
// per-simulator via WithGPU/WithLink).
//
// Built-in backend names: "titanx", "titanx-nvlink", "gtx980", "teslak40",
// "p100" (HBM + NVLINK), "rapidnn" (near-memory accelerator on an on-die
// fabric). Built-in link names: "pcie2", "pcie3", "pcie4", "nvlink",
// "on-die". Built-in topology names: "dedicated", "shared-x16",
// "shared-2x16", "shared-4x16". Built-in sparsity-profile names: "cdma",
// "flat50", "dense".

// GPUByName materializes the registered backend's device spec for a name
// like "titanx". BackendByName returns the Backend entry itself.
func GPUByName(name string) (GPU, bool) { return gpu.ByName(name) }

// GPUNames lists the registered backend names, sorted.
func GPUNames() []string { return gpu.Names() }

// RegisterGPU adds (or replaces) a process-wide named device spec, wrapping
// it in a SpecBackend. The spec must validate. Prefer the scoped WithGPU
// option for per-Simulator devices.
func RegisterGPU(name string, spec GPU) error { return gpu.Register(name, spec) }

// BackendByName returns the registered accelerator backend for a name like
// "titanx". Most callers want GPUByName, which materializes the spec.
func BackendByName(name string) (Backend, bool) { return gpu.BackendByName(name) }

// BackendNames lists the registered backend names, sorted (same list as
// GPUNames; the catalog has one namespace).
func BackendNames() []string { return gpu.BackendNames() }

// RegisterBackend adds (or replaces) a process-wide accelerator backend
// under its own Name. Its materialized spec must validate.
func RegisterBackend(b Backend) error { return gpu.RegisterBackend(b) }

// LinkByName returns the registered interconnect for a name like "pcie3".
func LinkByName(name string) (Link, bool) { return pcie.ByName(name) }

// LinkNames lists the registered interconnect names, sorted.
func LinkNames() []string { return pcie.Names() }

// RegisterLink adds (or replaces) a process-wide named interconnect. The
// link must validate.
func RegisterLink(name string, link Link) error { return pcie.Register(name, link) }

// TopologyByName returns the registered multi-device topology for a name
// like "shared-x16" ("dedicated", "shared-x16", "shared-2x16",
// "shared-4x16" are built in; the empty name is the dedicated zero value).
func TopologyByName(name string) (Topology, bool) { return pcie.TopologyByName(name) }

// TopologyNames lists the registered topology names, sorted.
func TopologyNames() []string { return pcie.TopologyNames() }

// RegisterTopology adds (or replaces) a process-wide named topology. It
// must validate.
func RegisterTopology(name string, t Topology) error { return pcie.RegisterTopology(name, t) }

// SparsityProfileByName returns the registered activation-sparsity profile
// for a name like "cdma" ("cdma", "flat50", "dense" are built in; "cdma" is
// the default of an active codec).
func SparsityProfileByName(name string) (SparsityProfile, bool) {
	return compress.ProfileByName(name)
}

// SparsityProfileNames lists the registered sparsity-profile names, sorted.
func SparsityProfileNames() []string { return compress.ProfileNames() }

// RegisterSparsityProfile adds (or replaces) a process-wide named sparsity
// profile. It must validate.
func RegisterSparsityProfile(name string, p SparsityProfile) error {
	return compress.RegisterProfile(name, p)
}

// CodecNames lists the compression codec tokens ("none", "zvc", "rle").
func CodecNames() []string { return compress.CodecNames() }

package vdnn_test

import (
	"slices"
	"testing"

	"vdnn"
)

// TestConstructorAliasesMatchRegistry pins the API redesign's compatibility
// contract: every legacy hardware constructor is a thin alias that returns
// exactly its catalog entry.
func TestConstructorAliasesMatchRegistry(t *testing.T) {
	gpus := map[string]func() vdnn.GPU{
		"titanx":        vdnn.TitanX,
		"titanx-nvlink": vdnn.TitanXNVLink,
		"gtx980":        vdnn.GTX980,
		"teslak40":      vdnn.TeslaK40,
		"p100":          vdnn.PascalP100,
		"rapidnn":       vdnn.RapidNN,
	}
	for name, fn := range gpus {
		reg, ok := vdnn.GPUByName(name)
		if !ok {
			t.Errorf("catalog lacks %q", name)
			continue
		}
		if got := fn(); got != reg {
			t.Errorf("%s() != GPUByName(%q):\n got %+v\nwant %+v", name, name, got, reg)
		}
	}
	links := map[string]func() vdnn.Link{
		"pcie3":  vdnn.PCIeGen3,
		"nvlink": vdnn.NVLink,
	}
	for name, fn := range links {
		reg, ok := vdnn.LinkByName(name)
		if !ok {
			t.Errorf("catalog lacks link %q", name)
			continue
		}
		if got := fn(); got != reg {
			t.Errorf("%s() != LinkByName(%q): got %+v want %+v", name, name, got, reg)
		}
	}
	topos := map[string]func() vdnn.Topology{
		"dedicated":  vdnn.DedicatedTopology,
		"shared-x16": vdnn.SharedGen3Root,
	}
	for name, fn := range topos {
		reg, ok := vdnn.TopologyByName(name)
		if !ok {
			t.Errorf("catalog lacks topology %q", name)
			continue
		}
		if got := fn(); got != reg {
			t.Errorf("alias != TopologyByName(%q): got %+v want %+v", name, got, reg)
		}
	}
}

// TestBackendRegistry checks the Backend layer under the spec lookups: the
// same namespace, materialization through Spec(), and custom registration.
func TestBackendRegistry(t *testing.T) {
	if !slices.Equal(vdnn.BackendNames(), vdnn.GPUNames()) {
		t.Errorf("BackendNames %v != GPUNames %v", vdnn.BackendNames(), vdnn.GPUNames())
	}
	for _, name := range vdnn.BackendNames() {
		b, ok := vdnn.BackendByName(name)
		if !ok {
			t.Fatalf("BackendByName(%q) missing", name)
		}
		if b.Name() != name {
			t.Errorf("backend %q reports Name() %q", name, b.Name())
		}
		spec, _ := vdnn.GPUByName(name)
		if b.Spec() != spec {
			t.Errorf("backend %q materializes %+v, GPUByName gives %+v", name, b.Spec(), spec)
		}
	}
	custom := vdnn.SpecBackend{Token: "test-custom", Device: vdnn.GTX980()}
	if err := vdnn.RegisterBackend(custom); err != nil {
		t.Fatal(err)
	}
	if got, ok := vdnn.GPUByName("test-custom"); !ok || got != vdnn.GTX980() {
		t.Errorf("registered backend resolves to %+v (%v)", got, ok)
	}
	bad := vdnn.SpecBackend{Token: "test-bad", Device: vdnn.GPU{}}
	if err := vdnn.RegisterBackend(bad); err == nil {
		t.Error("invalid backend spec accepted")
	}
}

// TestCatalogMetadataInert proves the redesign's byte-identity promise: the
// new classification fields (MemoryKind, LinkClass) are catalog metadata,
// never cost-model inputs, so stripping them changes nothing about a
// simulation — schedules, memory, power and energy all match exactly.
func TestCatalogMetadataInert(t *testing.T) {
	spec := vdnn.PascalP100()
	bare := spec
	bare.MemKind = vdnn.GDDR
	bare.Link.Class = vdnn.ClassPCIe

	net := vdnn.VGG16(64)
	a, err := vdnn.Run(net, vdnn.Config{Spec: spec, Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	b, err := vdnn.Run(net, vdnn.Config{Spec: bare, Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if a.IterTime != b.IterTime || a.MaxUsage != b.MaxUsage || a.OffloadBytes != b.OffloadBytes {
		t.Errorf("metadata changed the schedule: %v/%d/%d vs %v/%d/%d",
			a.IterTime, a.MaxUsage, a.OffloadBytes, b.IterTime, b.MaxUsage, b.OffloadBytes)
	}
	if a.Power != b.Power || a.Energy != b.Energy {
		t.Errorf("metadata changed power/energy: %+v %+v vs %+v %+v", a.Power, a.Energy, b.Power, b.Energy)
	}
}

package vdnn

import (
	"context"
	"sort"
	"sync"

	"vdnn/internal/sweep"
)

// BatchJob is one simulation request of a batch: a network and the
// configuration to train it under.
type BatchJob = sweep.Job

// EngineStats counts a Simulator's cache behavior: simulations actually
// performed, cache hits, coalesced duplicate requests, and evictions.
type EngineStats = sweep.Stats

// Simulator is the long-lived entry point of the library: a concurrent
// simulation engine with a result cache shared across every Run and RunBatch
// call, plus a named device/link registry for serialized configurations.
// Construct one per process (or per tenant) with NewSimulator and reuse it —
// repeated and overlapping requests for the same (network, configuration)
// pair are simulated exactly once. All methods are safe for concurrent use.
//
// The zero Simulator is not usable; the package-level Run remains as the
// one-shot convenience for scripts that simulate a single configuration.
type Simulator struct {
	eng   *sweep.Engine
	store ResultStore
	gpus  map[string]GPU
	links map[string]Link

	mu       sync.Mutex
	nets     map[netKey]*Network
	netOrder []netKey
}

type netKey struct {
	name  string
	batch int
}

// netCacheBound caps the memoized benchmark networks (FIFO eviction). An
// evicted network only costs future result-cache misses for that pair.
const netCacheBound = 1024

// SimulatorOption configures NewSimulator.
type SimulatorOption func(*simulatorConfig)

type simulatorConfig struct {
	parallelism int
	cacheBound  int
	fullSim     bool
	store       ResultStore
	gpus        map[string]GPU
	links       map[string]Link
}

// WithParallelism bounds how many top-level simulations run concurrently —
// across Run and RunBatch alike. n <= 0 (the default) selects all available
// cores; n == 1 schedules one simulation at a time, the determinism
// reference. (One VDNNDyn simulation internally profiles up to three
// candidate passes concurrently; the bound counts it as one.)
func WithParallelism(n int) SimulatorOption {
	return func(c *simulatorConfig) { c.parallelism = n }
}

// WithCacheBound bounds the result cache to at most n completed entries,
// evicting the oldest first (0, the default, is unbounded). Long-lived
// serving processes want a bound; one-shot evaluations do not.
func WithCacheBound(n int) SimulatorOption {
	return func(c *simulatorConfig) { c.cacheBound = n }
}

// WithFullSimulation disables differential sweep evaluation: every
// computation runs the complete simulation, even when a cached
// capacity-independent structure could have re-priced it. Results are
// identical either way — the differential path is exact, and equivalence is
// enforced by the engine's tests — so the only reason to turn it on is as the
// reference when measuring or debugging the differential path itself.
func WithFullSimulation() SimulatorOption {
	return func(c *simulatorConfig) { c.fullSim = true }
}

// WithStore backs the simulator's in-memory result cache with a persistent
// read/write-through store (usually OpenStore's file-backed one): completed
// simulations are written through, and a request whose result is already
// stored — by an earlier process, or by another live process sharing the
// same store directory — is served from it without simulating. Store hits
// do not count toward EngineStats.Simulations. Results for custom-policy
// configurations and the engine's internal structure probes are never
// persisted.
func WithStore(s ResultStore) SimulatorOption {
	return func(c *simulatorConfig) { c.store = s }
}

// WithGPU adds a named device to the simulator's registry, shadowing any
// built-in entry with the same name. The registry backs GPUByName and the
// serialized request surfaces (vdnn-serve) built on it.
func WithGPU(name string, spec GPU) SimulatorOption {
	return func(c *simulatorConfig) { c.gpus[name] = spec }
}

// WithLink adds a named interconnect to the simulator's registry, shadowing
// any built-in entry with the same name.
func WithLink(name string, link Link) SimulatorOption {
	return func(c *simulatorConfig) { c.links[name] = link }
}

// NewSimulator creates a Simulator with the given options.
func NewSimulator(opts ...SimulatorOption) *Simulator {
	c := simulatorConfig{gpus: map[string]GPU{}, links: map[string]Link{}}
	for _, o := range opts {
		o(&c)
	}
	eng := sweep.NewEngineCache(c.parallelism, c.cacheBound)
	eng.SetFullSimulation(c.fullSim)
	if c.store != nil {
		eng.SetStore(c.store)
	}
	return &Simulator{
		eng:   eng,
		store: c.store,
		gpus:  c.gpus,
		links: c.links,
		nets:  map[netKey]*Network{},
	}
}

// Network returns a memoized benchmark network for (name, batch), building
// it on first use (same names as BuildNetwork). Results are cached by
// network IDENTITY, so a caller that rebuilds the network per request gets
// zero cache hits; Network hands every caller of one simulator the same
// instance, which is what makes repeated and concurrent requests for one
// (network, configuration) pair collapse onto one simulation. The serving
// daemon and the sweep CLIs resolve their requests through it.
func (s *Simulator) Network(name string, batch int) (*Network, error) {
	k := netKey{name: name, batch: batch}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nets[k]; ok {
		return n, nil
	}
	n, err := BuildNetwork(name, batch)
	if err != nil {
		return nil, err
	}
	if len(s.netOrder) >= netCacheBound {
		oldest := s.netOrder[0]
		s.netOrder = s.netOrder[1:]
		// Purge the evicted network's cached results too: a future request
		// for the pair builds a fresh instance, so results keyed by the old
		// identity could never be hit again and would otherwise pin the
		// dead graph in an unbounded result cache forever.
		s.eng.PurgeNetwork(s.nets[oldest])
		delete(s.nets, oldest)
	}
	s.nets[k] = n
	s.netOrder = append(s.netOrder, k)
	return n, nil
}

// Run simulates training one network under one configuration, serving the
// result from the shared cache when an identical simulation already ran (or
// is running — concurrent requests coalesce onto one simulation). When the
// configuration cannot train the network (out of memory), the Result has
// Trainable == false and reports the hypothetical demand measured on an
// oracular device; a non-nil error indicates an invalid configuration.
//
// Cancellation is prompt and precise: once ctx is canceled the running
// simulation stops at its next per-layer check and Run returns an error
// satisfying errors.Is(err, ErrCanceled) (and the context's own cause).
// When concurrent callers coalesce onto one simulation, it keeps running
// until the last interested caller cancels; a canceled simulation is never
// cached, so the next identical request simulates afresh.
func (s *Simulator) Run(ctx context.Context, net *Network, cfg Config) (*Result, error) {
	return s.eng.Run(ctx, net, cfg)
}

// RunBatch simulates a batch of jobs concurrently (bounded by the
// simulator's parallelism) and returns the results in job order —
// deterministically: the result set is byte-identical at any parallelism.
// Duplicate jobs, within the batch or against anything the simulator ran
// before, are simulated once and share one Result. The first error in job
// order is returned; results of failed jobs are nil. Once ctx is canceled no
// further simulations start, running ones stop at their next per-layer
// check, and the remaining jobs fail with errors identifying the job index
// and satisfying errors.Is(err, ErrCanceled) or the context's error.
func (s *Simulator) RunBatch(ctx context.Context, jobs []BatchJob) ([]*Result, error) {
	return s.eng.RunAll(ctx, jobs)
}

// Stats returns a snapshot of the simulator's cache counters.
func (s *Simulator) Stats() EngineStats { return s.eng.Stats() }

// ResultStore returns the persistent store configured with WithStore, or
// nil.
func (s *Simulator) ResultStore() ResultStore { return s.store }

// Parallelism returns the configured concurrency.
func (s *Simulator) Parallelism() int { return s.eng.Workers() }

// CacheBound returns the configured cache capacity (0 = unbounded).
func (s *Simulator) CacheBound() int { return s.eng.CacheBound() }

// SetChaosHook installs a fault-injection hook on the simulation engine
// (see internal/chaos): it runs once per actual simulation, where a non-nil
// return fails that attempt and a panic exercises the engine's panic
// isolation. Injected failures are never cached. Test harness only; set it
// before the simulator serves traffic.
func (s *Simulator) SetChaosHook(h func(point string) error) { s.eng.SetChaosHook(h) }

// GPUByName resolves a device name against the simulator's registry:
// WithGPU entries first, then the package-level built-ins (see GPUNames).
func (s *Simulator) GPUByName(name string) (GPU, bool) {
	if spec, ok := s.gpus[name]; ok {
		return spec, true
	}
	return GPUByName(name)
}

// LinkByName resolves an interconnect name against the simulator's registry:
// WithLink entries first, then the package-level built-ins.
func (s *Simulator) LinkByName(name string) (Link, bool) {
	if l, ok := s.links[name]; ok {
		return l, true
	}
	return LinkByName(name)
}

// GPUNames lists every device name this simulator resolves, sorted.
func (s *Simulator) GPUNames() []string { return mergeNames(GPUNames(), s.gpus) }

// LinkNames lists every interconnect name this simulator resolves, sorted.
func (s *Simulator) LinkNames() []string { return mergeNames(LinkNames(), s.links) }

func mergeNames[V any](base []string, extra map[string]V) []string {
	seen := make(map[string]bool, len(base)+len(extra))
	var out []string
	for _, n := range base {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for n := range extra {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

module vdnn

go 1.24

package vdnn_test

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"testing"

	"vdnn"
)

func TestPublicAPISmoke(t *testing.T) {
	net, err := vdnn.BuildNetwork("alexnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vdnn.Run(net, vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trainable {
		t.Fatalf("AlexNet(32) should train: %s", res.FailReason)
	}
	if res.OffloadBytes == 0 {
		t.Fatal("vDNN-all should offload")
	}
}

func TestPublicAPINames(t *testing.T) {
	names := vdnn.NetworkNames()
	if len(names) != 12 {
		t.Fatalf("network names = %v", names)
	}
	for _, n := range names {
		if _, err := vdnn.BuildNetwork(n, 8); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := vdnn.BuildNetwork("nope", 8); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestUnknownNetworkErrorListsNames pins the error contract: an unknown name
// tells the caller every accepted name.
func TestUnknownNetworkErrorListsNames(t *testing.T) {
	_, err := vdnn.BuildNetwork("nope", 8)
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, n := range vdnn.NetworkNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention accepted name %q", err, n)
		}
	}
}

// TestNetworkNamesSortedStable checks NetworkNames is sorted, identical
// across calls, and insulated from caller mutation.
func TestNetworkNamesSortedStable(t *testing.T) {
	first := vdnn.NetworkNames()
	if !sort.StringsAreSorted(first) {
		t.Errorf("NetworkNames not sorted: %v", first)
	}
	second := vdnn.NetworkNames()
	if !slices.Equal(first, second) {
		t.Errorf("NetworkNames unstable: %v then %v", first, second)
	}
	// Mutating a returned slice must not poison later calls.
	for i := range second {
		second[i] = "mutated"
	}
	if third := vdnn.NetworkNames(); !slices.Equal(first, third) {
		t.Errorf("NetworkNames affected by caller mutation: %v", third)
	}
}

func TestPublicZooBuilders(t *testing.T) {
	for _, net := range []*vdnn.Network{
		vdnn.AlexNet(8), vdnn.OverFeat(8), vdnn.GoogLeNet(8), vdnn.VGG16(8), vdnn.VGGDeep(116, 8),
	} {
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", net.Name, err)
		}
	}
}

func TestPublicBuilder(t *testing.T) {
	b := vdnn.NewBuilder("custom", 16, vdnn.Float32)
	x := b.Input(3, 64, 64)
	x = b.Conv(x, "c1", 32, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.FC(x, "fc", 10)
	b.SoftmaxLoss(x, "loss")
	net, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := vdnn.Run(net, vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNDyn})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trainable {
		t.Fatal("tiny custom network must train")
	}
}

func TestPublicLinksAndSpecs(t *testing.T) {
	if vdnn.TitanX().MemBytes != 12<<30 {
		t.Fatal("TitanX spec wrong")
	}
	if vdnn.NVLink().EffBps <= vdnn.PCIeGen3().EffBps {
		t.Fatal("NVLink should be faster than PCIe gen3")
	}
	if vdnn.TitanXNVLink().Link.EffBps != vdnn.NVLink().EffBps {
		t.Fatal("TitanXNVLink should carry the NVLink link")
	}
}

// ExampleRun demonstrates the headline result: VGG-16 with batch 256 (a
// 28 GB workload) training on a 12 GB Titan X under the dynamic policy.
func ExampleRun() {
	net := vdnn.VGG16(256)
	res, err := vdnn.Run(net, vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNDyn})
	if err != nil {
		panic(err)
	}
	fmt.Println("trainable:", res.Trainable)
	// Output: trainable: true
}

package vdnn_test

import (
	"context"
	"errors"
	"testing"

	"vdnn"
)

func TestSimulatorRunBatch(t *testing.T) {
	sim := vdnn.NewSimulator(vdnn.WithParallelism(4))
	net, err := vdnn.BuildNetwork("alexnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []vdnn.Config{
		{Spec: vdnn.TitanX(), Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal},
		{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal},
		{Spec: vdnn.TitanX(), Policy: vdnn.VDNNConv, Algo: vdnn.MemOptimal},
		{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal}, // duplicate of job 1
	}
	var jobs []vdnn.BatchJob
	for _, c := range cfgs {
		jobs = append(jobs, vdnn.BatchJob{Net: net, Cfg: c})
	}
	res, err := sim.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(res), len(jobs))
	}
	for i, r := range res {
		if r == nil || !r.Trainable {
			t.Fatalf("job %d: unexpected untrainable/nil result", i)
		}
		if r.Policy != cfgs[i].Policy {
			t.Errorf("job %d: result policy %v, want %v", i, r.Policy, cfgs[i].Policy)
		}
	}
	if res[1] != res[3] {
		t.Error("duplicate jobs did not share one cached result")
	}
	st := sim.Stats()
	if st.Simulations != 3 {
		t.Errorf("simulations = %d, want 3 (stats %+v)", st.Simulations, st)
	}

	// A single Run of an already-batched configuration is a cache hit.
	r, err := sim.Run(context.Background(), net, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r != res[0] {
		t.Error("Run after RunBatch did not hit the shared cache")
	}
}

func TestSimulatorNetworkMemo(t *testing.T) {
	sim := vdnn.NewSimulator()
	a, err := sim.Network("alexnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Network("alexnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeat Network call returned a distinct instance")
	}
	c, err := sim.Network("alexnet", 64)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different batch shared an instance")
	}
	if _, err := sim.Network("nope", 32); err == nil {
		t.Error("unknown name accepted")
	}
	// Identity-stable networks are what make repeat requests cache hits.
	cfg := vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNConv, Algo: vdnn.MemOptimal}
	if _, err := sim.Run(context.Background(), a, cfg); err != nil {
		t.Fatal(err)
	}
	n2, _ := sim.Network("alexnet", 32)
	if _, err := sim.Run(context.Background(), n2, cfg); err != nil {
		t.Fatal(err)
	}
	if st := sim.Stats(); st.Simulations != 1 || st.Hits != 1 {
		t.Errorf("memoized network did not produce a cache hit (stats %+v)", st)
	}
}

func TestSimulatorContextCancel(t *testing.T) {
	sim := vdnn.NewSimulator(vdnn.WithParallelism(2))
	net := vdnn.AlexNet(32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(ctx, net, vdnn.Config{Spec: vdnn.TitanX()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := sim.Stats(); st.Simulations != 0 {
		t.Errorf("canceled Run simulated %d times", st.Simulations)
	}
}

func TestSimulatorRegistries(t *testing.T) {
	// Built-ins resolve at both package and simulator level.
	if _, ok := vdnn.GPUByName("titanx"); !ok {
		t.Fatal("builtin gpu titanx missing")
	}
	if _, ok := vdnn.LinkByName("pcie3"); !ok {
		t.Fatal("builtin link pcie3 missing")
	}

	tiny := vdnn.TitanX()
	tiny.Name = "Tiny (1 GB)"
	tiny.MemBytes = 1 << 30
	sim := vdnn.NewSimulator(
		vdnn.WithGPU("tiny", tiny),
		vdnn.WithLink("fast", vdnn.NVLink()),
	)
	got, ok := sim.GPUByName("tiny")
	if !ok || got.MemBytes != 1<<30 {
		t.Fatalf("scoped gpu tiny = %+v, %v", got, ok)
	}
	if _, ok := vdnn.GPUByName("tiny"); ok {
		t.Error("scoped gpu leaked into the global registry")
	}
	if _, ok := sim.GPUByName("titanx"); !ok {
		t.Error("simulator lost the builtin registry")
	}
	if _, ok := sim.LinkByName("fast"); !ok {
		t.Error("scoped link missing")
	}
	names := sim.GPUNames()
	seen := map[string]bool{}
	for i, n := range names {
		seen[n] = true
		if i > 0 && names[i-1] >= n {
			t.Fatalf("GPUNames not sorted/unique: %v", names)
		}
	}
	if !seen["tiny"] || !seen["titanx"] {
		t.Errorf("GPUNames missing entries: %v", names)
	}

	// The scoped device runs: AlexNet(128) does not fit 1 GB under the
	// baseline but trains under vDNN-dyn.
	net := vdnn.AlexNet(128)
	spec, _ := sim.GPUByName("tiny")
	base, err := sim.Run(context.Background(), net, vdnn.Config{Spec: spec, Policy: vdnn.Baseline, Algo: vdnn.PerfOptimal})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := sim.Run(context.Background(), net, vdnn.Config{Spec: spec, Policy: vdnn.VDNNDyn})
	if err != nil {
		t.Fatal(err)
	}
	if base.Trainable || !dyn.Trainable {
		t.Errorf("1 GB device: baseline trainable=%v (want false), dyn trainable=%v (want true)",
			base.Trainable, dyn.Trainable)
	}
}

// publicPolicy implements vdnn.OffloadPolicy using only public API types —
// the compile-time proof user policies need no internal/ imports.
type publicPolicy struct{}

func (publicPolicy) Name() string { return "public-test-policy" }
func (publicPolicy) OffloadInput(net *vdnn.Network, t *vdnn.Tensor, c *vdnn.Layer) bool {
	return c.Kind == vdnn.Conv && c.Stage == vdnn.FeatureExtraction
}
func (publicPolicy) Algorithms(_ *vdnn.Network, _ *vdnn.Layer, requested vdnn.AlgoMode) vdnn.AlgoMode {
	return requested
}
func (publicPolicy) PrefetchSchedule(_ *vdnn.Network, requested vdnn.PrefetchMode) vdnn.PrefetchMode {
	return requested
}

var _ vdnn.OffloadPolicy = publicPolicy{}

func TestCustomPolicyThroughPublicAPI(t *testing.T) {
	sim := vdnn.NewSimulator()
	net := vdnn.AlexNet(64)
	custom, err := sim.Run(context.Background(), net,
		vdnn.Config{Spec: vdnn.TitanX(), Custom: publicPolicy{}, Algo: vdnn.MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := sim.Run(context.Background(), net,
		vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNConv, Algo: vdnn.MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if custom.PolicyName != "public-test-policy" {
		t.Errorf("PolicyName = %q", custom.PolicyName)
	}
	if custom.OffloadBytes != conv.OffloadBytes {
		t.Errorf("conv-mirror policy offloaded %d bytes, builtin vDNN-conv %d",
			custom.OffloadBytes, conv.OffloadBytes)
	}
}

// vdnn-repro regenerates the paper's evaluation: every figure of Section V
// plus the power study and the design-choice ablations. Run with no
// arguments for everything, or name the experiments to regenerate:
//
//	vdnn-repro fig1 fig11 fig14
//	vdnn-repro -csv fig12 > fig12.csv
//	vdnn-repro -j 8            # 8 simulations in flight
//	vdnn-repro -store ~/.cache/vdnn   # persist results; repeat runs simulate nothing
//	vdnn-repro -cpuprofile cpu.pprof -memprofile mem.pprof   # then: go tool pprof
//
// The selected experiments' configurations are enqueued as one batch on a
// concurrent sweep engine (internal/sweep) that runs -j simulations in
// parallel with one deduplicated result cache shared across all experiments;
// tables are then formatted from the cached results. Every simulation is
// deterministic, so the output is byte-identical for any -j value; -j 1
// schedules the sweep's simulations one at a time (the vDNN-dyn profiler
// still evaluates its per-phase candidates concurrently inside a
// simulation). -j defaults to all cores.
//
// Experiments: fig1, fig4, fig5, fig6, fig11, fig12, fig13, fig14, fig15,
// power, ablation-prefetch, ablation-pagemig, ablation-link,
// ablation-capacity, ablation-weights, ablation-batch, case-multigpu,
// case-contention, case-pipeline, case-compression, case-precision,
// case-devices, case-resnet.
package main

import (
	"flag"
	"fmt"
	"os"

	"vdnn"
	"vdnn/internal/figures"
	"vdnn/internal/gpu"
	"vdnn/internal/perf"
	"vdnn/internal/sweep"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := flag.Int("j", 0, "max simulations in flight (0 = all cores, 1 = sequential)")
	storeDir := flag.String("store", "", "persist results to this directory and reuse them across runs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	simOpts := []vdnn.SimulatorOption{vdnn.WithParallelism(*jobs)}
	if *storeDir != "" {
		st, err := vdnn.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdnn-repro:", err)
			os.Exit(1)
		}
		simOpts = append(simOpts, vdnn.WithStore(st))
		// The warm/cold split is the number a repeat run cares about; stderr
		// keeps stdout byte-identical with and without a store.
		defer func() {
			ss := st.Stats()
			fmt.Fprintf(os.Stderr, "store %s: %d hits, %d writes, %d records\n",
				*storeDir, ss.Hits, ss.Writes, ss.Records)
		}()
	}
	sim := vdnn.NewSimulator(simOpts...)
	suite := figures.NewSuiteSim(gpu.TitanX(), sim)
	all := suite.Experiments()

	want := flag.Args()
	selected := map[string]bool{}
	for _, w := range want {
		selected[w] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.Name] = true
	}
	for _, w := range want {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "vdnn-repro: unknown experiment %q\n", w)
			os.Exit(1)
		}
	}

	prof, err := perf.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-repro:", err)
		os.Exit(1)
	}

	// Enqueue every selected experiment's simulations as one batch so the
	// engine can overlap work across experiments, then format the tables —
	// all cache hits — in order.
	var batch []sweep.Job
	for _, e := range all {
		if len(selected) > 0 && !selected[e.Name] {
			continue
		}
		batch = append(batch, e.Jobs()...)
	}
	suite.Prime(batch)

	for _, e := range all {
		if len(selected) > 0 && !selected[e.Name] {
			continue
		}
		t := e.Gen()
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
			fmt.Println()
		}
	}

	// Per-experiment wall clock, to stderr: stdout carries only the figure
	// tables, which are byte-identical at any -j — timing and cache stats
	// are scheduling-dependent diagnostics.
	if !*csv {
		suite.Timings().Render(os.Stderr)
	}

	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-repro:", err)
		os.Exit(1)
	}
}

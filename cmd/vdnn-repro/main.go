// vdnn-repro regenerates the paper's evaluation: every figure of Section V
// plus the power study and the design-choice ablations. Run with no
// arguments for everything, or name the experiments to regenerate:
//
//	vdnn-repro fig1 fig11 fig14
//	vdnn-repro -csv fig12 > fig12.csv
//
// Experiments: fig1, fig4, fig5, fig6, fig11, fig12, fig13, fig14, fig15,
// power, ablation-prefetch, ablation-pagemig, ablation-link,
// ablation-capacity, ablation-weights, ablation-batch, case-multigpu,
// case-precision, case-devices, case-resnet.
package main

import (
	"flag"
	"fmt"
	"os"

	"vdnn/internal/figures"
	"vdnn/internal/gpu"
	"vdnn/internal/report"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	suite := figures.NewSuite(gpu.TitanX())
	all := []struct {
		name string
		gen  func() *report.Table
	}{
		{"fig1", suite.Fig1},
		{"fig4", suite.Fig4},
		{"fig5", suite.Fig5},
		{"fig6", suite.Fig6},
		{"fig11", suite.Fig11},
		{"fig12", suite.Fig12},
		{"fig13", suite.Fig13},
		{"fig14", suite.Fig14},
		{"fig15", suite.Fig15},
		{"power", suite.Power},
		{"ablation-prefetch", suite.AblationPrefetch},
		{"ablation-pagemig", suite.AblationPageMigration},
		{"ablation-link", suite.AblationInterconnect},
		{"ablation-capacity", suite.AblationCapacity},
		{"ablation-weights", suite.AblationWeightOffload},
		{"ablation-batch", suite.AblationBatchScaling},
		{"case-multigpu", suite.CaseStudyMultiGPU},
		{"case-precision", suite.CaseStudyPrecision},
		{"case-devices", suite.CaseStudyDevices},
		{"case-resnet", suite.CaseStudyResNet},
	}

	want := flag.Args()
	selected := map[string]bool{}
	for _, w := range want {
		selected[w] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	for _, w := range want {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "vdnn-repro: unknown experiment %q\n", w)
			os.Exit(1)
		}
	}

	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		t := e.gen()
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
			fmt.Println()
		}
	}
}

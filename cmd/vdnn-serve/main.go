// vdnn-serve is the HTTP daemon of the library: a JSON API serving vDNN
// simulations from a shared, deduplicated result cache under concurrency.
//
//	vdnn-serve -addr :8080 -j 8 -cache 65536
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/networks
//	curl -d '{"network":"vgg16","batch":256}' localhost:8080/v1/simulate
//	curl -d '{"jobs":[{"network":"alexnet"},{"network":"vgg16","policy":"base","algo":"p"}]}' \
//	     localhost:8080/v1/sweep
//	curl localhost:8080/v1/stats
//
// Repeated and concurrent identical requests are simulated once; every
// simulation is deterministic, so identical requests always produce
// identical responses. See internal/serve for the wire formats.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vdnn"
	"vdnn/internal/serve"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		jobs  = flag.Int("j", 0, "max top-level simulations in flight (0 = all cores)")
		cache = flag.Int("cache", 65536, "max cached results (0 = unbounded; keep a bound on long-lived daemons)")
	)
	flag.Parse()

	sim := vdnn.NewSimulator(vdnn.WithParallelism(*jobs), vdnn.WithCacheBound(*cache))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(sim),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("vdnn-serve: shutdown: %v", err)
		}
	}()

	log.Printf("vdnn-serve: listening on %s (parallelism %d, cache bound %d)",
		*addr, sim.Parallelism(), sim.CacheBound())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("vdnn-serve: %v", err)
	}
	st := sim.Stats()
	log.Printf("vdnn-serve: bye (simulations %d, hits %d, coalesced %d, evictions %d)",
		st.Simulations, st.Hits, st.Coalesced, st.Evictions)
}

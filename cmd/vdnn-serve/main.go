// vdnn-serve is the HTTP daemon of the library: a JSON API serving vDNN
// simulations from a shared, deduplicated result cache under concurrency.
//
//	vdnn-serve -addr :8080 -j 8 -cache 65536 -drain 30s -store /var/lib/vdnn/results
//
//	curl localhost:8080/healthz
//	curl localhost:8080/readyz
//	curl localhost:8080/v1/networks
//	curl -d '{"network":"vgg16","batch":256}' localhost:8080/v1/simulate
//	curl -d '{"jobs":[{"network":"alexnet"},{"network":"vgg16","policy":"base","algo":"p"}]}' \
//	     localhost:8080/v1/sweep
//	curl -d '{"jobs":[{"network":"alexnet"},{"network":"vgg16"}]}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/<id>      # NDJSON point stream + summary
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics           # Prometheus text exposition
//
// With -store DIR, every finished simulation is persisted to DIR and served
// from there after a restart (or by another replica sharing the directory):
// a repeated sweep against a warm store costs zero simulations. The store
// tolerates torn writes — corrupt records are skipped and logged at open,
// never fatal.
//
// Repeated and concurrent identical requests are simulated once; every
// simulation is deterministic, so identical requests always produce
// identical responses. See internal/serve for the wire formats, error
// taxonomy, and admission-control behavior.
//
// Diagnostics: -pprof localhost:6060 serves net/http/pprof on a separate
// listener (CPU/heap/goroutine profiles of the live daemon); it is off by
// default and never shares the public listener.
//
// Shutdown is graceful: on SIGINT/SIGTERM the daemon stops admitting work
// (/readyz flips to 503, new simulations fast-fail with 503 "draining"),
// waits up to -drain for in-flight requests, then hard-cancels stragglers
// through the same context path a client disconnect uses. A second signal
// skips the wait.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"vdnn"
	"vdnn/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		jobs     = flag.Int("j", 0, "max top-level simulations in flight (0 = all cores)")
		cache    = flag.Int("cache", 65536, "max cached results (0 = unbounded; keep a bound on long-lived daemons)")
		queue    = flag.Int("queue", -1, "max requests waiting for a slot before 503 (-1 = 4x concurrency)")
		deadline = flag.Duration("deadline", 2*time.Minute, "default per-request deadline (0 = none)")
		maxDL    = flag.Duration("max-deadline", 10*time.Minute, "ceiling on client deadline_ms (0 = no ceiling)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-drain budget before in-flight work is canceled")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		storeDir = flag.String("store", "", "persist results to this directory and serve repeats from it (empty = memory only)")
		jWorkers = flag.Int("job-workers", 0, "async jobs executing concurrently (0 = half of -j, at least 1)")
		jQueue   = flag.Int("job-queue", -1, "accepted jobs waiting for a worker before 503 (-1 = 16)")
		logJSON  = flag.Bool("log-json", false, "emit structured request logs as JSON (default: logfmt-style text)")
	)
	flag.Parse()

	// Profiling endpoint on its own listener, never the public one: the API
	// handler below is an explicit mux, so /debug/pprof is reachable only when
	// -pprof names an address (bind it to localhost in production).
	if *pprofA != "" {
		go func() {
			log.Printf("vdnn-serve: pprof listening on %s", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("vdnn-serve: pprof server: %v", err)
			}
		}()
	}

	logHandler := slog.Handler(slog.NewTextHandler(os.Stderr, nil))
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(logHandler)

	simOpts := []vdnn.SimulatorOption{vdnn.WithParallelism(*jobs), vdnn.WithCacheBound(*cache)}
	serveOpts := []serve.Option{
		serve.WithQueueDepth(*queue),
		serve.WithDeadlines(*deadline, *maxDL),
		serve.WithJobWorkers(*jWorkers),
		serve.WithJobQueueDepth(*jQueue),
		serve.WithLogger(logger),
	}
	if *storeDir != "" {
		st, err := vdnn.OpenStore(*storeDir)
		if err != nil {
			log.Fatalf("vdnn-serve: opening store %s: %v", *storeDir, err)
		}
		ss := st.Stats()
		log.Printf("vdnn-serve: store %s: %d records (%d corrupt skipped)",
			*storeDir, ss.Records, ss.CorruptSkipped)
		simOpts = append(simOpts, vdnn.WithStore(st))
		serveOpts = append(serveOpts, serve.WithStore(st))
	}
	sim := vdnn.NewSimulator(simOpts...)
	api := serve.New(sim, serveOpts...)

	// baseCtx parents every request context; canceling it is the hard-cancel
	// lever that reaches in-flight simulations when the drain budget runs out.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("vdnn-serve: %v: draining (budget %s; signal again to skip)", sig, *drain)
		api.StartDrain()
		go func() {
			<-sigs
			log.Printf("vdnn-serve: second signal: canceling in-flight work")
			api.CancelJobs()
			cancelBase()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Accepted async jobs are part of the drain contract: wait for them
		// under the same budget before (or while) connections wind down.
		if err := api.DrainJobs(ctx); err != nil {
			log.Printf("vdnn-serve: drain budget exhausted: canceling async jobs (%v)", err)
			api.CancelJobs()
		}
		if err := srv.Shutdown(ctx); err != nil {
			// Budget exhausted: cancel the base context so every in-flight
			// simulation unwinds through its per-layer checks, then close.
			log.Printf("vdnn-serve: drain budget exhausted: canceling in-flight work (%v)", err)
			api.CancelJobs()
			cancelBase()
			srv.Close()
		}
	}()

	log.Printf("vdnn-serve: listening on %s (parallelism %d, cache bound %d)",
		*addr, sim.Parallelism(), sim.CacheBound())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("vdnn-serve: %v", err)
	}
	st := sim.Stats()
	sst := api.Stats()
	log.Printf("vdnn-serve: bye (simulations %d, hits %d, coalesced %d, canceled %d, rejected %d)",
		st.Simulations, st.Hits, st.Coalesced, st.Canceled, sst.RejectedOverload+sst.RejectedDraining)
}

// vdnn-explore runs what-if sweeps beyond the paper's evaluation: GPU
// memory capacity, interconnect bandwidth, batch size, prefetch schedule and
// transfer-mode trade-offs, for any of the benchmark networks.
//
//	vdnn-explore -network vgg16 -batch 256 capacity
//	vdnn-explore -network googlenet link
//	vdnn-explore -network vgg16 -batch 128 batch
//
// Sweeps: capacity, link, batch, prefetch, pagemig.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdnn/internal/core"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/report"
)

func main() {
	var (
		network = flag.String("network", "vgg16", "network: "+strings.Join(networks.Names(), ", "))
		batch   = flag.Int("batch", 64, "batch size")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vdnn-explore [-network N] [-batch B] capacity|link|batch|prefetch|pagemig")
		os.Exit(1)
	}

	switch flag.Arg(0) {
	case "capacity":
		capacitySweep(*network, *batch)
	case "link":
		linkSweep(*network, *batch)
	case "batch":
		batchSweep(*network)
	case "prefetch":
		prefetchSweep(*network, *batch)
	case "pagemig":
		pagemigSweep(*network, *batch)
	default:
		fmt.Fprintf(os.Stderr, "vdnn-explore: unknown sweep %q\n", flag.Arg(0))
		os.Exit(1)
	}
}

func runOne(net string, batch int, cfg core.Config) *core.Result {
	n, err := networks.ByName(net, batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-explore:", err)
		os.Exit(1)
	}
	r, err := core.Run(n, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-explore:", err)
		os.Exit(1)
	}
	return r
}

func capacitySweep(net string, batch int) {
	t := report.NewTable(fmt.Sprintf("GPU capacity sweep — %s (%d)", net, batch),
		"capacity (GB)", "base(p)", "vDNN-dyn", "dyn max usage (MB)", "dyn FE (ms)")
	for _, gb := range []int64{4, 6, 8, 12, 16, 24, 32, 48} {
		spec := gpu.TitanX().WithMemory(gb << 30)
		base := runOne(net, batch, core.Config{Spec: spec, Policy: core.Baseline, Algo: core.PerfOptimal})
		dyn := runOne(net, batch, core.Config{Spec: spec, Policy: core.VDNNDyn})
		t.AddRow(fmt.Sprintf("%d", gb), yesNo(base.Trainable), yesNo(dyn.Trainable),
			report.FmtMiB(dyn.MaxUsage), report.FmtMs(int64(dyn.FETime)))
	}
	t.Render(os.Stdout)
}

func linkSweep(net string, batch int) {
	t := report.NewTable(fmt.Sprintf("interconnect sweep — %s (%d), vDNN-all(m)", net, batch),
		"link", "eff GB/s", "FE (ms)", "offload stalls hidden?")
	oracle := runOne(net, batch, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv, Algo: core.MemOptimal, Oracle: true})
	for _, link := range []pcie.Link{pcie.Gen2x16(), pcie.Gen3x16(), pcie.NVLink1()} {
		spec := gpu.TitanX()
		spec.Link = link
		r := runOne(net, batch, core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true})
		hidden := "partly"
		if float64(r.FETime) <= 1.02*float64(oracle.FETime) {
			hidden = "yes"
		}
		t.AddRow(link.Name, fmt.Sprintf("%.1f", float64(link.EffBps)/1e9),
			report.FmtMs(int64(r.FETime)), hidden)
	}
	t.Render(os.Stdout)
}

func batchSweep(net string) {
	t := report.NewTable(fmt.Sprintf("batch-size sweep — %s on 12 GB", net),
		"batch", "base(p)", "base(m)", "vDNN-dyn", "dyn FE (ms)")
	for _, b := range []int{16, 32, 64, 128, 192, 256, 384, 512} {
		baseP := runOne(net, b, core.Config{Spec: gpu.TitanX(), Policy: core.Baseline, Algo: core.PerfOptimal})
		baseM := runOne(net, b, core.Config{Spec: gpu.TitanX(), Policy: core.Baseline, Algo: core.MemOptimal})
		dyn := runOne(net, b, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNDyn})
		t.AddRow(fmt.Sprintf("%d", b), yesNo(baseP.Trainable), yesNo(baseM.Trainable),
			yesNo(dyn.Trainable), report.FmtMs(int64(dyn.FETime)))
	}
	t.Render(os.Stdout)
}

func prefetchSweep(net string, batch int) {
	t := report.NewTable(fmt.Sprintf("prefetch schedule sweep — %s (%d), vDNN-all(m)", net, batch),
		"schedule", "max (MB)", "avg (MB)", "FE (ms)", "on-demand")
	for _, m := range []core.PrefetchMode{core.PrefetchJIT, core.PrefetchFig10, core.PrefetchEager, core.PrefetchNone} {
		r := runOne(net, batch, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, Prefetch: m})
		t.AddRow(m.String(), report.FmtMiB(r.MaxUsage), report.FmtMiB(r.AvgUsage),
			report.FmtMs(int64(r.FETime)), fmt.Sprintf("%d", r.OnDemandFetches))
	}
	t.Render(os.Stdout)
}

func pagemigSweep(net string, batch int) {
	t := report.NewTable(fmt.Sprintf("transfer-mode sweep — %s (%d), vDNN-all(m)", net, batch),
		"mode", "FE (ms)", "slowdown")
	dma := runOne(net, batch, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true})
	pm := runOne(net, batch, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, PageMigration: true})
	t.AddRow("pinned DMA", report.FmtMs(int64(dma.FETime)), "1.0x")
	t.AddRow("page migration", report.FmtMs(int64(pm.FETime)),
		fmt.Sprintf("%.1fx", float64(pm.FETime)/float64(dma.FETime)))
	t.Render(os.Stdout)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// vdnn-explore runs what-if sweeps beyond the paper's evaluation: GPU
// memory capacity, interconnect bandwidth, batch size, prefetch schedule and
// transfer-mode trade-offs, for any of the benchmark networks.
//
//	vdnn-explore -network vgg16 -batch 256 capacity
//	vdnn-explore -network googlenet link
//	vdnn-explore -network vgg16 -batch 128 batch
//	vdnn-explore -network vgg16 -batch 64 devices
//	vdnn-explore -network vgg16 -batch 128 codec
//	vdnn-explore -network vgg16 -batch 64 stages
//	vdnn-explore -cpuprofile cpu.pprof -network vgg16 capacity
//
// Sweeps: capacity, link, batch, prefetch, pagemig, devices, codec, stages.
//
// Each sweep is one axis product enumerated by the planner's generator
// (plan.Cross over plan.Axis values — the same machinery behind vdnn-plan's
// candidate space), enqueued as one batch on a vdnn.Simulator, so its
// simulations run concurrently and overlapping configurations across sweeps
// of one invocation are simulated once.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"vdnn"
	"vdnn/internal/perf"
	"vdnn/internal/plan"
	"vdnn/internal/report"
)

func main() {
	var (
		network    = flag.String("network", "vgg16", "network: "+strings.Join(vdnn.NetworkNames(), ", "))
		batch      = flag.Int("batch", 64, "batch size")
		jobs       = flag.Int("j", 0, "max simulations in flight (0 = all cores)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vdnn-explore [-network N] [-batch B] capacity|link|batch|prefetch|pagemig|devices|codec|stages")
		os.Exit(1)
	}

	prof, err := perf.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-explore:", err)
		os.Exit(1)
	}

	e := &explorer{
		sim:  vdnn.NewSimulator(vdnn.WithParallelism(*jobs)),
		name: *network,
	}

	switch flag.Arg(0) {
	case "capacity":
		e.capacitySweep(*batch)
	case "link":
		e.linkSweep(*batch)
	case "batch":
		e.batchSweep()
	case "prefetch":
		e.prefetchSweep(*batch)
	case "pagemig":
		e.pagemigSweep(*batch)
	case "devices":
		e.devicesSweep(*batch)
	case "codec":
		e.codecSweep(*batch)
	case "stages":
		e.stagesSweep(*batch)
	default:
		fmt.Fprintf(os.Stderr, "vdnn-explore: unknown sweep %q\n", flag.Arg(0))
		os.Exit(1)
	}

	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-explore:", err)
		os.Exit(1)
	}
}

type explorer struct {
	sim  *vdnn.Simulator
	name string
}

// net resolves through the simulator's memoized network cache, so every
// sweep of one invocation shares identity-stable instances (the result
// cache keys on them).
func (e *explorer) net(batch int) *vdnn.Network {
	n, err := e.sim.Network(e.name, batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-explore:", err)
		os.Exit(1)
	}
	return n
}

// runAll simulates one sweep's configurations as a concurrent batch.
func (e *explorer) runAll(jobs []vdnn.BatchJob) []*vdnn.Result {
	res, err := e.sim.RunBatch(context.Background(), jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-explore:", err)
		os.Exit(1)
	}
	return res
}

// cross enumerates a sweep with the planner's generator and pairs every
// configuration with the network. Axis order follows plan.Cross: the first
// axis varies slowest, the last fastest.
func (e *explorer) cross(n *vdnn.Network, base vdnn.Config, axes ...plan.Axis) []vdnn.BatchJob {
	cfgs := plan.Cross(base, axes...)
	jobs := make([]vdnn.BatchJob, len(cfgs))
	for i, c := range cfgs {
		jobs[i] = vdnn.BatchJob{Net: n, Cfg: c}
	}
	return jobs
}

// trainAxis is the trainability face-off most sweeps tabulate: the fastest
// baseline against vDNN-dyn.
func trainAxis() plan.Axis {
	return plan.Axis{
		plan.PolicyVariant(vdnn.Baseline, vdnn.PerfOptimal),
		plan.PolicyVariant(vdnn.VDNNDyn, 0),
	}
}

func (e *explorer) capacitySweep(batch int) {
	gbs := []int64{4, 6, 8, 12, 16, 24, 32, 48}
	var capacity plan.Axis
	for _, gb := range gbs {
		capacity = append(capacity, plan.CapacityVariant(gb<<30))
	}
	n := e.net(batch)
	res := e.runAll(e.cross(n, vdnn.Config{Spec: vdnn.TitanX()}, capacity, trainAxis()))

	t := report.NewTable(fmt.Sprintf("GPU capacity sweep — %s (%d)", e.name, batch),
		"capacity (GB)", "base(p)", "vDNN-dyn", "dyn max usage (MB)", "dyn FE (ms)")
	for i, gb := range gbs {
		base, dyn := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprintf("%d", gb), yesNo(base.Trainable), yesNo(dyn.Trainable),
			report.FmtMiB(dyn.MaxUsage), report.FmtMs(int64(dyn.FETime)))
	}
	t.Render(os.Stdout)
}

// linkVariant rewires the offload interconnect.
func linkVariant(name string) plan.Variant {
	link := mustLink(name)
	return plan.Variant{Label: link.Name, Apply: func(c vdnn.Config) vdnn.Config {
		c.Spec.Link = link
		return c
	}}
}

func (e *explorer) linkSweep(batch int) {
	links := plan.Axis{linkVariant("pcie2"), linkVariant("pcie3"), linkVariant("nvlink")}
	n := e.net(batch)
	jobs := []vdnn.BatchJob{
		{Net: n, Cfg: vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNConv, Algo: vdnn.MemOptimal, Oracle: true}},
	}
	jobs = append(jobs, e.cross(n,
		vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal, Oracle: true}, links)...)
	res := e.runAll(jobs)
	oracle := res[0]

	t := report.NewTable(fmt.Sprintf("interconnect sweep — %s (%d), vDNN-all(m)", e.name, batch),
		"link", "eff GB/s", "FE (ms)", "offload stalls hidden?")
	for i, v := range links {
		link := mustLink(v.Label)
		r := res[i+1]
		hidden := "partly"
		if float64(r.FETime) <= 1.02*float64(oracle.FETime) {
			hidden = "yes"
		}
		t.AddRow(link.Name, fmt.Sprintf("%.1f", float64(link.EffBps)/1e9),
			report.FmtMs(int64(r.FETime)), hidden)
	}
	t.Render(os.Stdout)
}

func (e *explorer) batchSweep() {
	batches := []int{16, 32, 64, 128, 192, 256, 384, 512}
	policies := plan.Axis{
		plan.PolicyVariant(vdnn.Baseline, vdnn.PerfOptimal),
		plan.PolicyVariant(vdnn.Baseline, vdnn.MemOptimal),
		plan.PolicyVariant(vdnn.VDNNDyn, 0),
	}
	var jobs []vdnn.BatchJob
	for _, b := range batches {
		jobs = append(jobs, e.cross(e.net(b), vdnn.Config{Spec: vdnn.TitanX()}, policies)...)
	}
	res := e.runAll(jobs)

	t := report.NewTable(fmt.Sprintf("batch-size sweep — %s on 12 GB", e.name),
		"batch", "base(p)", "base(m)", "vDNN-dyn", "dyn FE (ms)")
	for i, b := range batches {
		baseP, baseM, dyn := res[3*i], res[3*i+1], res[3*i+2]
		t.AddRow(fmt.Sprintf("%d", b), yesNo(baseP.Trainable), yesNo(baseM.Trainable),
			yesNo(dyn.Trainable), report.FmtMs(int64(dyn.FETime)))
	}
	t.Render(os.Stdout)
}

func (e *explorer) prefetchSweep(batch int) {
	modes := []vdnn.PrefetchMode{vdnn.PrefetchJIT, vdnn.PrefetchFig10, vdnn.PrefetchEager, vdnn.PrefetchNone}
	var schedules plan.Axis
	for _, m := range modes {
		schedules = append(schedules, plan.PrefetchVariant(m))
	}
	n := e.net(batch)
	res := e.runAll(e.cross(n,
		vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal, Oracle: true}, schedules))

	t := report.NewTable(fmt.Sprintf("prefetch schedule sweep — %s (%d), vDNN-all(m)", e.name, batch),
		"schedule", "max (MB)", "avg (MB)", "FE (ms)", "on-demand")
	for i, m := range modes {
		r := res[i]
		t.AddRow(m.String(), report.FmtMiB(r.MaxUsage), report.FmtMiB(r.AvgUsage),
			report.FmtMs(int64(r.FETime)), fmt.Sprintf("%d", r.OnDemandFetches))
	}
	t.Render(os.Stdout)
}

func (e *explorer) pagemigSweep(batch int) {
	transfer := plan.Axis{
		{Label: "pinned DMA", Apply: func(c vdnn.Config) vdnn.Config { return c }},
		{Label: "page migration", Apply: func(c vdnn.Config) vdnn.Config {
			c.PageMigration = true
			return c
		}},
	}
	n := e.net(batch)
	res := e.runAll(e.cross(n,
		vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal, Oracle: true}, transfer))
	dma, pm := res[0], res[1]

	t := report.NewTable(fmt.Sprintf("transfer-mode sweep — %s (%d), vDNN-all(m)", e.name, batch),
		"mode", "FE (ms)", "slowdown")
	t.AddRow(transfer[0].Label, report.FmtMs(int64(dma.FETime)), "1.0x")
	t.AddRow(transfer[1].Label, report.FmtMs(int64(pm.FETime)),
		fmt.Sprintf("%.1fx", float64(pm.FETime)/float64(dma.FETime)))
	t.Render(os.Stdout)
}

// devicesSweep scales data-parallel replicas over a shared PCIe root
// complex: does vDNN still hide its transfers when 2-8 replicas fight over
// the interconnect?
func (e *explorer) devicesSweep(batch int) {
	counts := []int{1, 2, 4, 8}
	topology, _ := vdnn.TopologyByName("shared-x16")
	var replicas plan.Axis
	for _, c := range counts {
		replicas = append(replicas, plan.DevicesVariant(c, topology))
	}
	policies := plan.Axis{
		plan.PolicyVariant(vdnn.VDNNAll, vdnn.MemOptimal),
		plan.PolicyVariant(vdnn.Baseline, vdnn.PerfOptimal),
	}
	n := e.net(batch)
	res := e.runAll(e.cross(n, vdnn.Config{Spec: vdnn.TitanX()}, replicas, policies))

	t := report.NewTable(fmt.Sprintf("device sweep — %s (%d per replica), shared x16 root complex", e.name, batch),
		"GPUs", "vDNN-all step/replica (ms)", "stall (ms)", "overlap", "imbalance", "base(p) step/replica (ms)", "aggregate img/s (vDNN)")
	for i, c := range counts {
		dyn, base := res[2*i], res[2*i+1]
		step, stall, overlap := dyn.ReplicaMeans()
		baseStep, _, _ := base.ReplicaMeans()
		imgs := float64(batch*c) / dyn.IterTime.Seconds()
		t.AddRow(fmt.Sprintf("%d", c),
			report.FmtMs(int64(step)), report.FmtMs(int64(stall)), report.FmtPct(overlap),
			fmt.Sprintf("%.2fx", dyn.DeviceImbalance()),
			report.FmtMs(int64(baseStep)), fmt.Sprintf("%.0f", imgs))
	}
	t.Render(os.Stdout)
}

// stagesSweep scales pipeline parallelism: partition the network across 2-8
// stages on a shared root complex, at the default and a generous micro-batch
// count, against the single-device reference. Per-stage imbalance and the
// measured bubble show where model partitioning stops paying.
func (e *explorer) stagesSweep(batch int) {
	type point struct{ stages, microBatches int }
	points := []point{{1, 0}, {2, 0}, {4, 0}, {4, 8}, {8, 0}, {8, 16}}
	topology, _ := vdnn.TopologyByName("shared-x16")
	var shapes plan.Axis
	for _, p := range points {
		shapes = append(shapes, plan.PipelineVariant(p.stages, p.microBatches, topology))
	}
	n := e.net(batch)
	res := e.runAll(e.cross(n,
		vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal}, shapes))

	t := report.NewTable(fmt.Sprintf("pipeline-stage sweep — %s (%d), vDNN-all(m), shared x16 root complex", e.name, batch),
		"stages", "micro-batches", "iter (ms)", "bubble", "imbalance", "inter-stage (MB)", "peak stage pool (MB)")
	for i, p := range points {
		r := res[i]
		mb := "-"
		bubble := "-"
		if p.stages > 1 {
			mb = fmt.Sprintf("%d", r.MicroBatches)
			bubble = fmt.Sprintf("%.0f%%", 100*r.BubbleFraction)
		}
		t.AddRow(fmt.Sprintf("%d", p.stages), mb,
			report.FmtMs(int64(r.IterTime)), bubble,
			fmt.Sprintf("%.2fx", r.DeviceImbalance()),
			report.FmtMiB(r.InterStageBytes), report.FmtMiB(r.MaxUsage))
	}
	t.Render(os.Stdout)
}

// codecSweep crosses the compressing-DMA codecs with the sparsity presets
// under vDNN-all(m): how much wire traffic each codec saves on each
// assumption, and what it does to feature-extraction time.
func (e *explorer) codecSweep(batch int) {
	type point struct {
		codec    vdnn.Codec
		sparsity string
	}
	points := []point{
		{vdnn.CodecNone, ""},
		{vdnn.CodecZVC, "cdma"}, {vdnn.CodecZVC, "flat50"}, {vdnn.CodecZVC, "dense"},
		{vdnn.CodecRLE, "cdma"}, {vdnn.CodecRLE, "flat50"},
	}
	var codecs plan.Axis
	for _, p := range points {
		codecs = append(codecs, plan.CodecVariant(p.codec, p.sparsity))
	}
	n := e.net(batch)
	res := e.runAll(e.cross(n,
		vdnn.Config{Spec: vdnn.TitanX(), Policy: vdnn.VDNNAll, Algo: vdnn.MemOptimal}, codecs))

	t := report.NewTable(fmt.Sprintf("codec sweep — %s (%d), vDNN-all(m)", e.name, batch),
		"codec", "sparsity", "offload raw (MB)", "offload wire (MB)", "ratio", "codec busy (ms)", "FE (ms)")
	for i, p := range points {
		r := res[i]
		prof := p.sparsity
		if p.codec == vdnn.CodecNone {
			prof = "-"
		}
		t.AddRow(p.codec.String(), prof,
			report.FmtMiB(r.OffloadRawBytes), report.FmtMiB(r.OffloadBytes),
			fmt.Sprintf("%.2fx", r.CompressionRatio),
			report.FmtMs(int64(r.CompressTime+r.DecompressTime)),
			report.FmtMs(int64(r.FETime)))
	}
	t.Render(os.Stdout)
}

func mustLink(name string) vdnn.Link {
	l, ok := vdnn.LinkByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "vdnn-explore: unknown link %q\n", name)
		os.Exit(1)
	}
	return l
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

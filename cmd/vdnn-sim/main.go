// vdnn-sim simulates one training configuration of one network and prints
// the metrics the paper reports: trainability, memory usage, transfer
// traffic, performance and power. With -layers it also prints the per-layer
// breakdown (Figures 5, 6 and 13), and with -trace a schedule excerpt that
// shows the offload/prefetch overlap of Figure 9.
//
// Devices and interconnects come from the named registries (-gpu, -link; see
// vdnn.GPUNames and vdnn.LinkNames), and the policy/algorithm/prefetch flags
// parse the enums' text forms directly.
//
// With -devices N (and optionally -topology) it simulates N data-parallel
// replicas contending for the interconnect, printing per-device step times,
// contention stalls and overlap efficiency alongside the aggregate metrics.
//
// With -codec zvc|rle (and optionally -sparsity) the compressing DMA engine
// of the cDMA follow-up paper shrinks the offload/prefetch traffic with
// activation sparsity, and the output reports raw vs wire bytes and the
// achieved compression ratio.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"vdnn"
	"vdnn/internal/report"
)

func main() {
	var (
		network  = flag.String("network", "vgg16", "network: "+strings.Join(vdnn.NetworkNames(), ", "))
		batch    = flag.Int("batch", 64, "batch size")
		gpuName  = flag.String("gpu", "titanx", "device: "+strings.Join(vdnn.GPUNames(), ", "))
		memGB    = flag.Int("gpu-mem", 0, "override GPU memory in GB (0 = device default)")
		link     = flag.String("link", "", "override interconnect: "+strings.Join(vdnn.LinkNames(), ", "))
		devices  = flag.Int("devices", 1, "data-parallel replicas sharing the interconnect")
		stages   = flag.Int("stages", 1, "pipeline-parallel stages, one device per stage (model partitioning)")
		microbs  = flag.Int("microbatches", 0, "micro-batches streamed through the pipeline (default: -stages)")
		cuts     = flag.String("stage-cuts", "", "explicit stage boundaries as layer IDs, e.g. 7,13,20 (default: balanced by cost)")
		topo     = flag.String("topology", "", "multi-GPU topology: "+strings.Join(vdnn.TopologyNames(), ", ")+" (default shared-x16 when -devices or -stages > 1)")
		pagemig  = flag.Bool("page-migration", false, "use page-migration transfers instead of pinned DMA")
		sparsity = flag.String("sparsity", "", "activation-sparsity profile for -codec: "+strings.Join(vdnn.SparsityProfileNames(), ", ")+" (default cdma)")
		oracle   = flag.Bool("oracle", false, "simulate a GPU with unlimited memory")
		layers   = flag.Bool("layers", false, "print the per-layer table")
		trace    = flag.Bool("trace", false, "print a schedule excerpt (offload/prefetch overlap)")
		chrome   = flag.String("chrome-trace", "", "write the schedule as Chrome trace JSON to this file")

		policy   = vdnn.VDNNDyn
		algo     = vdnn.PerfOptimal
		prefetch = vdnn.PrefetchJIT
		codec    = vdnn.CodecNone
	)
	flag.Var(&policy, "policy", "memory policy: base, vdnn-all, vdnn-conv, vdnn-dyn")
	flag.Var(&algo, "algo", "convolution algorithms: m (memory-optimal), p (performance-optimal), greedy")
	flag.Var(&prefetch, "prefetch", "prefetch schedule: jit, fig10, eager, none")
	flag.Var(&codec, "codec", "compressing DMA engine: none, zvc, rle")
	flag.Parse()

	net, err := vdnn.BuildNetwork(*network, *batch)
	fail(err)

	spec, ok := vdnn.GPUByName(*gpuName)
	if !ok {
		fail(fmt.Errorf("unknown gpu %q (have %s)", *gpuName, strings.Join(vdnn.GPUNames(), ", ")))
	}
	if *memGB > 0 {
		spec.MemBytes = int64(*memGB) << 30
	}
	if *link != "" {
		l, ok := vdnn.LinkByName(*link)
		if !ok {
			fail(fmt.Errorf("unknown link %q (have %s)", *link, strings.Join(vdnn.LinkNames(), ", ")))
		}
		spec.Link = l
	}

	topology, ok := vdnn.TopologyByName(*topo)
	if !ok {
		fail(fmt.Errorf("unknown topology %q (have %s)", *topo, strings.Join(vdnn.TopologyNames(), ", ")))
	}

	// The runtime would silently drop these conflicting knobs (Config
	// normalization); reject them instead, like vdnn-serve does.
	if *sparsity != "" && codec == vdnn.CodecNone {
		fail(fmt.Errorf("-sparsity %q given without -codec (set -codec zvc or rle)", *sparsity))
	}
	if codec != vdnn.CodecNone && *pagemig {
		fail(fmt.Errorf("-codec %v cannot run under -page-migration (the codec sits in the DMA engines)", codec))
	}

	cfg := vdnn.Config{
		Spec:            spec,
		Policy:          policy,
		Algo:            algo,
		Prefetch:        prefetch,
		Oracle:          *oracle,
		PageMigration:   *pagemig,
		Compression:     vdnn.Compression{Codec: codec, Sparsity: *sparsity},
		Devices:         *devices,
		Stages:          *stages,
		MicroBatches:    *microbs,
		StageCuts:       *cuts,
		Topology:        topology,
		CaptureSchedule: *chrome != "",
	}
	cfg = cfg.WithDefaults() // resolve the multi-device topology for display

	sim := vdnn.NewSimulator()
	res, err := sim.Run(context.Background(), net, cfg)
	fail(err)

	s := net.Summary()
	fmt.Printf("%s on %s (%d GB, %s)\n", net.Name, spec.Name, spec.MemBytes>>30, spec.Link.Name)
	fmt.Printf("  layers: %d (%d CONV, %d FC), weights %s, feature maps %s\n",
		s.Layers, s.ConvLayers, s.FCLayers, vdnn.FormatBytes(s.WeightBytes), vdnn.FormatBytes(s.FeatureMapBytes))
	fmt.Printf("  policy: %v %v, prefetch %v\n", res.Policy, res.Algo, cfg.Prefetch)
	if res.Chosen != "" {
		fmt.Printf("  dynamic profiling chose: %s\n", res.Chosen)
	}
	if res.Trainable {
		fmt.Printf("  trainable: yes\n")
	} else {
		fmt.Printf("  trainable: NO — %s\n", res.FailReason)
	}
	fmt.Printf("  memory: max %s, avg %s (pool) + %s classifier-side\n",
		vdnn.FormatBytes(res.MaxUsage), vdnn.FormatBytes(res.AvgUsage), vdnn.FormatBytes(res.FrameworkBytes))
	fmt.Printf("  transfers: offload %s, prefetch %s, pinned host %s, on-demand fetches %d\n",
		vdnn.FormatBytes(res.OffloadBytes), vdnn.FormatBytes(res.PrefetchBytes),
		vdnn.FormatBytes(res.HostPinnedPeak), res.OnDemandFetches)
	if cfg.Compression.Enabled() {
		fmt.Printf("  compression: %v (profile %s): %s raw -> %s wire (%.2fx), codec busy %.2f ms\n",
			cfg.Compression.Codec, cfg.Compression.Sparsity,
			vdnn.FormatBytes(res.OffloadRawBytes), vdnn.FormatBytes(res.OffloadBytes),
			res.CompressionRatio, (res.CompressTime + res.DecompressTime).Msec())
	}
	fmt.Printf("  time: iteration %.1f ms (feature extraction %.1f ms)\n",
		res.IterTime.Msec(), res.FETime.Msec())
	fmt.Printf("  power: avg %.0f W, max %.0f W\n", res.Power.AvgW, res.Power.MaxW)
	fmt.Printf("  energy: %.2f J/iter (compute %.2f + dma %.2f + codec %.2f + idle %.2f)\n",
		res.Energy.TotalJ(), res.Energy.ComputeJ, res.Energy.DMAJ, res.Energy.CodecJ, res.Energy.IdleJ)

	if len(res.Stages) > 0 {
		fmt.Printf("  pipeline: %d stages x %d micro-batches over %v, inter-stage %s, bubble %.1f ms (%.0f%%), imbalance %.2fx\n",
			len(res.Stages), res.MicroBatches, cfg.Topology,
			vdnn.FormatBytes(res.InterStageBytes), res.BubbleTime.Msec(),
			100*res.BubbleFraction, res.DeviceImbalance())
		t := report.NewTable("per-stage stats",
			"stage", "layers", "step (ms)", "busy (ms)", "bubble (ms)", "send (MB)", "recv (MB)", "offload (MB)", "pool peak (MB)")
		for _, s := range res.Stages {
			t.AddRow(fmt.Sprintf("gpu%d", s.Stage),
				fmt.Sprintf("%d-%d", s.FirstLayer, s.LastLayer),
				report.FmtMs(int64(s.StepTime)), report.FmtMs(int64(s.ComputeBusy)),
				report.FmtMs(int64(s.BubbleTime)),
				report.FmtMiB(s.SendBytes), report.FmtMiB(s.RecvBytes),
				report.FmtMiB(s.OffloadBytes), report.FmtMiB(s.PoolPeak))
		}
		fmt.Println()
		t.Render(os.Stdout)
	} else if len(res.Devices) > 0 {
		fmt.Printf("  multi-GPU: %d replicas over %v, all-reduce %s in %.1f ms\n",
			len(res.Devices), cfg.Topology, vdnn.FormatBytes(res.AllReduceBytes), res.AllReduceTime.Msec())
		t := report.NewTable("per-device stats",
			"device", "step (ms)", "offload (MB)", "prefetch (MB)", "all-reduce (MB)", "stall (ms)", "overlap")
		for _, d := range res.Devices {
			t.AddRow(fmt.Sprintf("gpu%d", d.Device),
				report.FmtMs(int64(d.StepTime)),
				report.FmtMiB(d.OffloadBytes), report.FmtMiB(d.PrefetchBytes),
				report.FmtMiB(d.AllReduceBytes),
				report.FmtMs(int64(d.ContentionStall)),
				report.FmtPct(d.OverlapEff))
		}
		fmt.Println()
		t.Render(os.Stdout)
	}

	if *layers {
		t := report.NewTable("per-layer stats",
			"layer", "kind", "fwd ms", "bwd ms", "reuse ms", "fwd GB/s", "x (MB)", "ws (MB)", "algo", "offloaded")
		for _, ls := range res.Layers {
			off := ""
			if ls.Offloaded {
				off = "yes"
			}
			algo := ""
			if ls.Kind == vdnn.Conv {
				algo = ls.AlgoFwd.String()
			}
			t.AddRow(ls.Name, ls.Kind.String(),
				report.FmtMs(int64(ls.FwdTime)), report.FmtMs(int64(ls.BwdTime)),
				report.FmtMs(int64(ls.ReuseDistance)),
				fmt.Sprintf("%.0f", ls.FwdBW/1e9),
				report.FmtMiB(ls.XBytes), report.FmtMiB(ls.FwdWSBytes), algo, off)
		}
		fmt.Println()
		t.Render(os.Stdout)
	}

	if *trace {
		fmt.Println()
		printTrace(res)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		fail(err)
		fail(res.WriteChromeTrace(f))
		fail(f.Close())
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
}

// printTrace shows the Figure 9 overlap: forward kernels on stream_compute
// with the offloads that hide beneath them.
func printTrace(res *vdnn.Result) {
	t := report.NewTable("schedule excerpt (first feature-extraction layers)",
		"layer", "fwd start (ms)", "fwd end (ms)", "offloaded (MB)", "bwd start (ms)", "bwd end (ms)")
	count := 0
	for _, ls := range res.Layers {
		if ls.Stage != vdnn.FeatureExtraction {
			continue
		}
		t.AddRow(ls.Name,
			report.FmtMs(int64(ls.FwdStart)), report.FmtMs(int64(ls.FwdEnd)),
			report.FmtMiB(ls.OffloadBytes),
			report.FmtMs(int64(ls.BwdStart)), report.FmtMs(int64(ls.BwdEnd)))
		count++
		if count >= 12 {
			break
		}
	}
	t.Render(os.Stdout)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-sim:", err)
		os.Exit(1)
	}
}

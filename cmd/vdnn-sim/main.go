// vdnn-sim simulates one training configuration of one network and prints
// the metrics the paper reports: trainability, memory usage, transfer
// traffic, performance and power. With -layers it also prints the per-layer
// breakdown (Figures 5, 6 and 13), and with -trace a schedule excerpt that
// shows the offload/prefetch overlap of Figure 9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/report"
	"vdnn/internal/tensor"
)

func main() {
	var (
		network  = flag.String("network", "vgg16", "network: "+strings.Join(networks.Names(), ", "))
		batch    = flag.Int("batch", 64, "batch size")
		policy   = flag.String("policy", "dyn", "memory policy: base, all, conv, dyn")
		algo     = flag.String("algo", "p", "convolution algorithms: m (memory-optimal), p (performance-optimal)")
		memGB    = flag.Int("gpu-mem", 12, "GPU memory in GB")
		link     = flag.String("link", "pcie3", "interconnect: pcie2, pcie3, nvlink")
		prefetch = flag.String("prefetch", "jit", "prefetch schedule: jit, fig10, eager, none")
		pagemig  = flag.Bool("page-migration", false, "use page-migration transfers instead of pinned DMA")
		oracle   = flag.Bool("oracle", false, "simulate a GPU with unlimited memory")
		layers   = flag.Bool("layers", false, "print the per-layer table")
		trace    = flag.Bool("trace", false, "print a schedule excerpt (offload/prefetch overlap)")
		chrome   = flag.String("chrome-trace", "", "write the schedule as Chrome trace JSON to this file")
	)
	flag.Parse()

	net, err := networks.ByName(*network, *batch)
	fail(err)

	spec := gpu.TitanX()
	spec.MemBytes = int64(*memGB) << 30
	switch *link {
	case "pcie2":
		spec.Link = pcie.Gen2x16()
	case "pcie3":
		// default
	case "nvlink":
		spec.Link = pcie.NVLink1()
	default:
		fail(fmt.Errorf("unknown link %q", *link))
	}

	cfg := core.Config{Spec: spec, Oracle: *oracle, PageMigration: *pagemig, CaptureSchedule: *chrome != ""}
	switch *policy {
	case "base":
		cfg.Policy = core.Baseline
	case "all":
		cfg.Policy = core.VDNNAll
	case "conv":
		cfg.Policy = core.VDNNConv
	case "dyn":
		cfg.Policy = core.VDNNDyn
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
	switch *algo {
	case "m":
		cfg.Algo = core.MemOptimal
	case "p":
		cfg.Algo = core.PerfOptimal
	default:
		fail(fmt.Errorf("unknown algo mode %q", *algo))
	}
	switch *prefetch {
	case "jit":
		cfg.Prefetch = core.PrefetchJIT
	case "fig10":
		cfg.Prefetch = core.PrefetchFig10
	case "eager":
		cfg.Prefetch = core.PrefetchEager
	case "none":
		cfg.Prefetch = core.PrefetchNone
	default:
		fail(fmt.Errorf("unknown prefetch mode %q", *prefetch))
	}

	res, err := core.Run(net, cfg)
	fail(err)

	s := net.Summary()
	fmt.Printf("%s on %s (%d GB, %s)\n", net.Name, spec.Name, *memGB, spec.Link.Name)
	fmt.Printf("  layers: %d (%d CONV, %d FC), weights %s, feature maps %s\n",
		s.Layers, s.ConvLayers, s.FCLayers, tensor.FormatBytes(s.WeightBytes), tensor.FormatBytes(s.FeatureMapBytes))
	fmt.Printf("  policy: %v %v, prefetch %v\n", res.Policy, res.Algo, cfg.Prefetch)
	if res.Chosen != "" {
		fmt.Printf("  dynamic profiling chose: %s\n", res.Chosen)
	}
	if res.Trainable {
		fmt.Printf("  trainable: yes\n")
	} else {
		fmt.Printf("  trainable: NO — %s\n", res.FailReason)
	}
	fmt.Printf("  memory: max %s, avg %s (pool) + %s classifier-side\n",
		tensor.FormatBytes(res.MaxUsage), tensor.FormatBytes(res.AvgUsage), tensor.FormatBytes(res.FrameworkBytes))
	fmt.Printf("  transfers: offload %s, prefetch %s, pinned host %s, on-demand fetches %d\n",
		tensor.FormatBytes(res.OffloadBytes), tensor.FormatBytes(res.PrefetchBytes),
		tensor.FormatBytes(res.HostPinnedPeak), res.OnDemandFetches)
	fmt.Printf("  time: iteration %.1f ms (feature extraction %.1f ms)\n",
		res.IterTime.Msec(), res.FETime.Msec())
	fmt.Printf("  power: avg %.0f W, max %.0f W\n", res.Power.AvgW, res.Power.MaxW)

	if *layers {
		t := report.NewTable("per-layer stats",
			"layer", "kind", "fwd ms", "bwd ms", "reuse ms", "fwd GB/s", "x (MB)", "ws (MB)", "algo", "offloaded")
		for _, ls := range res.Layers {
			off := ""
			if ls.Offloaded {
				off = "yes"
			}
			algo := ""
			if ls.Kind == dnn.Conv {
				algo = ls.AlgoFwd.String()
			}
			t.AddRow(ls.Name, ls.Kind.String(),
				report.FmtMs(int64(ls.FwdTime)), report.FmtMs(int64(ls.BwdTime)),
				report.FmtMs(int64(ls.ReuseDistance)),
				fmt.Sprintf("%.0f", ls.FwdBW/1e9),
				report.FmtMiB(ls.XBytes), report.FmtMiB(ls.FwdWSBytes), algo, off)
		}
		fmt.Println()
		t.Render(os.Stdout)
	}

	if *trace {
		fmt.Println()
		printTrace(res)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		fail(err)
		fail(res.WriteChromeTrace(f))
		fail(f.Close())
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
}

// printTrace shows the Figure 9 overlap: forward kernels on stream_compute
// with the offloads that hide beneath them.
func printTrace(res *core.Result) {
	t := report.NewTable("schedule excerpt (first feature-extraction layers)",
		"layer", "fwd start (ms)", "fwd end (ms)", "offloaded (MB)", "bwd start (ms)", "bwd end (ms)")
	count := 0
	for _, ls := range res.Layers {
		if ls.Stage != dnn.FeatureExtraction {
			continue
		}
		t.AddRow(ls.Name,
			report.FmtMs(int64(ls.FwdStart)), report.FmtMs(int64(ls.FwdEnd)),
			report.FmtMiB(ls.OffloadBytes),
			report.FmtMs(int64(ls.BwdStart)), report.FmtMs(int64(ls.BwdEnd)))
		count++
		if count >= 12 {
			break
		}
	}
	t.Render(os.Stdout)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-sim:", err)
		os.Exit(1)
	}
}

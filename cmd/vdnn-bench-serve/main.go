// vdnn-bench-serve is a load generator for vdnn-serve: it fires concurrent
// /v1/simulate (or, with -endpoint plan, /v1/plan) requests at a running
// daemon, retries 503s with exponential backoff + jitter (honoring
// Retry-After), and reports a latency histogram and status breakdown. CI
// uses it to prove the overload→503→retry-success contract and to exercise
// SIGTERM drain under live load — for planner searches as well as single
// simulations.
//
// With -endpoint jobs each request is an async round trip: submit a sweep of
// -points points to POST /v1/jobs, require the 202, stream the NDJSON result
// feed from GET /v1/jobs/{id}, and count the request successful only when
// every point arrives in order with a result and the summary says done.
// Latency then measures submit-to-summary, queueing included.
//
//	vdnn-bench-serve -addr http://localhost:8080 -n 200 -c 16 -network alexnet
//	vdnn-bench-serve -addr http://localhost:8080 -n 20 -c 4 -endpoint plan
//	vdnn-bench-serve -addr http://localhost:8080 -n 20 -c 4 -endpoint jobs -points 3
//
// Exit status is 0 when the success ratio meets -min-success, 1 otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "daemon base URL")
		n          = flag.Int("n", 100, "total requests")
		c          = flag.Int("c", 8, "concurrent clients")
		network    = flag.String("network", "alexnet", "network to simulate")
		batch      = flag.Int("batch", 64, "minibatch size")
		endpoint   = flag.String("endpoint", "simulate", "API to load: simulate, plan or jobs")
		points     = flag.Int("points", 3, "sweep points per async job (-endpoint jobs)")
		policy     = flag.String("policy", "", "policy override (empty = server default)")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-request deadline_ms (0 = server default)")
		retries    = flag.Int("retries", 5, "max retries per request on 503/connection errors")
		backoff    = flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
		seed       = flag.Int64("seed", 1, "jitter PRNG seed")
		minSuccess = flag.Float64("min-success", 1.0, "required success ratio in [0,1]")
		timeout    = flag.Duration("timeout", 2*time.Minute, "HTTP client timeout per attempt")
		vary       = flag.Bool("vary", false, "vary batch per request to defeat the result cache (true load)")
	)
	flag.Parse()
	var path string
	switch *endpoint {
	case "simulate":
		path = "/v1/simulate"
	case "plan":
		path = "/v1/plan"
	case "jobs":
		path = "/v1/jobs"
	default:
		log.Fatalf("vdnn-bench-serve: unknown -endpoint %q (simulate, plan or jobs)", *endpoint)
	}

	client := &http.Client{Timeout: *timeout}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		statuses  = map[int]int{}
		codes     = map[string]int{}
		retried   atomic.Int64
		connErrs  atomic.Int64
		success   atomic.Int64
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			for i := range jobs {
				var body []byte
				if path == "/v1/jobs" {
					// A sweep of -points points; with -vary every point of
					// every request gets a distinct cache key.
					pts := make([]map[string]any, *points)
					for p := range pts {
						pts[p] = map[string]any{"network": *network, "batch": *batch + p}
						if *vary {
							pts[p]["batch"] = *batch + (i*(*points)+p)%256
						}
						if *policy != "" {
							pts[p]["policy"] = *policy
						}
					}
					req := map[string]any{"jobs": pts}
					if *deadlineMS > 0 {
						req["deadline_ms"] = *deadlineMS
					}
					body, _ = json.Marshal(req)
				} else {
					req := map[string]any{"network": *network, "batch": *batch}
					if *vary {
						// Distinct batch per request → distinct cache key →
						// every request costs a real simulation. Offset from the
						// base batch so runs with different -batch values do not
						// share keys.
						req["batch"] = *batch + i%256
					}
					if *policy != "" && path == "/v1/simulate" {
						req["policy"] = *policy
					}
					if *deadlineMS > 0 {
						req["deadline_ms"] = *deadlineMS
					}
					body, _ = json.Marshal(req)
				}

				t0 := time.Now()
				status, code, raw, err := post(client, *addr+path, body, *retries, *backoff, rng, &retried)
				reqOK := err == nil && status == http.StatusOK
				if err == nil && path == "/v1/jobs" {
					reqOK = false
					if status == http.StatusAccepted {
						if serr := streamJob(client, *addr, raw, *points); serr == nil {
							reqOK = true
						} else {
							code = "stream: " + serr.Error()
						}
					}
				}
				lat := time.Since(t0)

				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil {
					connErrs.Add(1)
				} else {
					statuses[status]++
					if code != "" {
						codes[code]++
					}
				}
				mu.Unlock()
				if reqOK {
					success.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	ok := success.Load()
	ratio := float64(ok) / float64(*n)
	fmt.Printf("vdnn-bench-serve: %d requests, %d concurrent, %.2fs, %.1f req/s\n",
		*n, *c, elapsed.Seconds(), float64(*n)/elapsed.Seconds())
	fmt.Printf("  success %d/%d (%.1f%%), retries %d, connection errors %d\n",
		ok, *n, 100*ratio, retried.Load(), connErrs.Load())
	fmt.Printf("  latency p50 %s  p95 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	for status, count := range statuses {
		fmt.Printf("  status %d: %d\n", status, count)
	}
	for code, count := range codes {
		fmt.Printf("  code %q: %d\n", code, count)
	}
	if ratio < *minSuccess {
		log.Fatalf("vdnn-bench-serve: success ratio %.3f below required %.3f", ratio, *minSuccess)
	}
	os.Exit(0)
}

// post sends one request with retry: 503s (overloaded/draining) and
// transport errors back off exponentially with full jitter, honoring a
// Retry-After header when the server sets one. It returns the final
// attempt's status, taxonomy code, and raw response body.
func post(client *http.Client, url string, body []byte, retries int, backoff time.Duration, rng *rand.Rand, retried *atomic.Int64) (status int, code string, raw []byte, err error) {
	delay := backoff
	for attempt := 0; ; attempt++ {
		var resp *http.Response
		resp, err = client.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			status = resp.StatusCode
			raw, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			code = errorCode(raw)
			resp.Body.Close()
			if status != http.StatusServiceUnavailable {
				return status, code, raw, nil
			}
			if code == "draining" {
				// The taxonomy's advice for draining is "try another node";
				// this bench has only one, so retrying is futile.
				return status, code, raw, nil
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
					// Retry-After is a floor; jitter on top of it below.
					if d := time.Duration(secs) * time.Second; d > delay {
						delay = d
					}
				}
			}
		}
		if attempt >= retries {
			return status, code, raw, err
		}
		retried.Add(1)
		// Full jitter: sleep U(0, delay], then double the ceiling.
		time.Sleep(time.Duration(1 + rng.Int63n(int64(delay))))
		if delay < 30*time.Second {
			delay *= 2
		}
	}
}

// errorCode extracts the taxonomy code from an error body, if any.
func errorCode(raw []byte) string {
	var e struct {
		Code string `json:"code"`
	}
	_ = json.Unmarshal(raw, &e)
	return e.Code
}

// streamJob consumes one async job to its summary: the 202 body names the
// stream; every point must arrive in order with a result, and the summary
// must report the job done with all points completed.
func streamJob(client *http.Client, addr string, accepted []byte, points int) error {
	var acc struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
		Stream string `json:"stream"`
	}
	if err := json.Unmarshal(accepted, &acc); err != nil || acc.ID == "" || acc.Stream == "" {
		return fmt.Errorf("bad 202 body %.120q: %v", accepted, err)
	}
	if acc.Points != points {
		return fmt.Errorf("job %s accepted %d points, want %d", acc.ID, acc.Points, points)
	}
	resp, err := client.Get(addr + acc.Stream)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream %s: status %d", acc.Stream, resp.StatusCode)
	}
	var (
		seen    int
		summary *struct {
			Status    string `json:"status"`
			Completed int    `json:"completed"`
		}
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type      string          `json:"type"`
			Index     int             `json:"index"`
			Result    json.RawMessage `json:"result"`
			Error     string          `json:"error"`
			Status    string          `json:"status"`
			Completed int             `json:"completed"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("job %s: bad NDJSON line: %v", acc.ID, err)
		}
		switch ev.Type {
		case "point":
			if ev.Index != seen {
				return fmt.Errorf("job %s: point %d arrived at position %d", acc.ID, ev.Index, seen)
			}
			if len(ev.Result) == 0 || ev.Error != "" {
				return fmt.Errorf("job %s point %d: %s", acc.ID, ev.Index, ev.Error)
			}
			seen++
		case "summary":
			summary = &struct {
				Status    string `json:"status"`
				Completed int    `json:"completed"`
			}{ev.Status, ev.Completed}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if seen != points {
		return fmt.Errorf("job %s: %d of %d points streamed", acc.ID, seen, points)
	}
	if summary == nil || summary.Status != "done" || summary.Completed != points {
		return fmt.Errorf("job %s: summary %+v", acc.ID, summary)
	}
	return nil
}

// vdnn-plan searches the parallelism design space for the best trainable
// configuration of a workload under a memory cap: data-parallel replica
// counts, pipeline shapes, the vDNN offload policies, convolution algorithm
// modes and the compressed-DMA codecs. It prints the winning configuration
// and the full evidence table — every candidate with its step time and peak
// memory, or the reason the search pruned it without paying for a
// simulation. With -json it emits the machine-readable plan instead.
//
// The fleet is described by -gpu, -max-devices and -topology; -mem-cap
// overrides the device's physical memory, which is the hard per-device cap
// the winner must train under. -objective selects what "best" means: step
// time (default) or whole-fleet energy per iteration — the two can disagree,
// e.g. a data-parallel fleet that wins on time pays N idle floors plus
// all-reduce traffic and can lose on joules to a single vDNN device.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"vdnn"
)

func main() {
	var (
		network  = flag.String("network", "vgg16", "network: "+strings.Join(vdnn.NetworkNames(), ", "))
		batch    = flag.Int("batch", 256, "global batch size of one training step")
		gpuName  = flag.String("gpu", "titanx", "fleet GPU: "+strings.Join(vdnn.GPUNames(), ", "))
		memCapGB = flag.Int("mem-cap", 0, "per-device memory cap in GB (0 = device default)")
		maxDev   = flag.Int("max-devices", 4, fmt.Sprintf("device-count budget, max %d", vdnn.PlanMaxDevices))
		topo     = flag.String("topology", "", "multi-GPU topology: "+strings.Join(vdnn.TopologyNames(), ", ")+" (default shared-x16)")
		noCodec  = flag.Bool("no-codec", false, "search only the codec-free branch (skip compressed DMA)")
		jsonOut  = flag.Bool("json", false, "emit the plan as JSON instead of text")

		objective vdnn.PlanObjective
	)
	flag.Var(&objective, "objective", "what the search minimizes: time or energy")
	flag.Parse()

	spec, ok := vdnn.GPUByName(*gpuName)
	if !ok {
		fail(fmt.Errorf("unknown gpu %q (have %s)", *gpuName, strings.Join(vdnn.GPUNames(), ", ")))
	}
	topology, ok := vdnn.TopologyByName(*topo)
	if !ok {
		fail(fmt.Errorf("unknown topology %q (have %s)", *topo, strings.Join(vdnn.TopologyNames(), ", ")))
	}

	req := vdnn.PlanRequest{
		Network:     *network,
		Batch:       *batch,
		Spec:        spec,
		MemCapBytes: int64(*memCapGB) << 30,
		MaxDevices:  *maxDev,
		Topology:    topology,
		Objective:   objective,
	}
	if *noCodec {
		req.Codecs = []vdnn.Compression{{}}
	}

	plan, err := vdnn.PlanContext(context.Background(), req)
	if err != nil && plan == nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fail(enc.Encode(plan))
		return
	}

	cap := req.MemCapBytes
	if cap == 0 {
		cap = spec.MemBytes
	}
	fmt.Printf("planning %s, batch %d on %s (cap %s, budget %d devices, objective %v)\n",
		*network, *batch, spec.Name, vdnn.FormatBytes(cap), *maxDev, objective)
	if !plan.Feasible {
		fmt.Printf("  no trainable configuration under the cap\n\n")
		plan.Table().Render(os.Stdout)
		os.Exit(2)
	}
	best, res := plan.Best, plan.Result
	fmt.Printf("  winner: %s %s codec %s\n", best.Mode(), best.PolicyLabel(), best.CodecLabel())
	fmt.Printf("  step time %.1f ms, peak memory %s (pool %s + classifier-side %s)\n",
		res.IterTime.Msec(), vdnn.FormatBytes(res.TotalMaxUsage()),
		vdnn.FormatBytes(res.MaxUsage), vdnn.FormatBytes(res.FrameworkBytes))
	if objective == vdnn.MinimizeEnergy {
		fmt.Printf("  energy %.2f J/iter (compute %.2f + dma %.2f + codec %.2f + idle %.2f)\n",
			res.Energy.TotalJ(), res.Energy.ComputeJ, res.Energy.DMAJ, res.Energy.CodecJ, res.Energy.IdleJ)
	}
	fmt.Printf("  search: %d-candidate space, %d evaluated (%d refined), %d pruned unevaluated\n\n",
		plan.Counters.Space, plan.Counters.Evaluated, plan.Counters.Refined, plan.Counters.Pruned)
	plan.Table().Render(os.Stdout)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdnn-plan:", err)
		os.Exit(1)
	}
}

// Package chaos is the deterministic fault-injection harness of the serving
// stack: seeded injectors that add latency, fail requests, or panic at named
// injection points, wired as HTTP middleware around the vdnn-serve handlers
// and as a hook inside the sweep engine's worker loop. Every decision comes
// from one seeded PRNG consumed in call order, so a test that replays the
// same request sequence against the same seed sees the same faults — chaos
// that reproduces.
//
// The injector never fakes outcomes: an injected panic really unwinds
// through the recovery middleware, injected latency really holds the worker,
// and an injected error really travels the same error path a broken
// simulation would. What the tests assert is therefore the system's actual
// failure behavior (error taxonomy, drain, goroutine hygiene), not a mock's.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected error; errors.Is(err,
// ErrInjected) identifies a chaos fault wherever it surfaces.
var ErrInjected = errors.New("chaos: injected fault")

// Config selects what an Injector injects. Probabilities are in [0, 1] and
// evaluated independently per call in the order latency, error, panic.
type Config struct {
	// Seed feeds the PRNG; the same seed and call sequence reproduce the
	// same faults.
	Seed int64

	// LatencyProb injects Latency (a real sleep) into that fraction of
	// calls.
	LatencyProb float64
	Latency     time.Duration

	// ErrorProb fails that fraction of calls with an error wrapping
	// ErrInjected.
	ErrorProb float64

	// PanicProb panics on that fraction of calls — exercising whatever
	// recovery isolation surrounds the injection point.
	PanicProb float64
}

// Stats counts what an Injector actually did.
type Stats struct {
	Calls     int64 `json:"calls"`
	Latencies int64 `json:"latencies"`
	Errors    int64 `json:"errors"`
	Panics    int64 `json:"panics"`
}

// Injector injects faults per Config. Safe for concurrent use; decisions are
// serialized on an internal lock, so concurrent callers see a deterministic
// multiset of faults (the interleaving, as always under concurrency, is the
// scheduler's).
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	calls, latencies, errs, panics atomic.Int64
}

// New creates an Injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Fault is one call's injection decision.
type Fault struct {
	Latency time.Duration // sleep this long first (0: none)
	Err     error         // then fail with this error (nil: none)
	Panic   bool          // ... by panicking instead of returning
}

// Decide draws one call's fault from the PRNG. point names the injection
// site and is carried into the injected error for attribution.
func (in *Injector) Decide(point string) Fault {
	in.calls.Add(1)
	in.mu.Lock()
	lat := in.rng.Float64() < in.cfg.LatencyProb
	errDraw := in.rng.Float64() < in.cfg.ErrorProb
	panicDraw := in.rng.Float64() < in.cfg.PanicProb
	in.mu.Unlock()

	var f Fault
	if lat {
		f.Latency = in.cfg.Latency
		in.latencies.Add(1)
	}
	switch {
	case panicDraw:
		f.Err = fmt.Errorf("%w: panic at %s", ErrInjected, point)
		f.Panic = true
		in.panics.Add(1)
	case errDraw:
		f.Err = fmt.Errorf("%w: error at %s", ErrInjected, point)
		in.errs.Add(1)
	}
	return f
}

// Apply draws a fault and enacts it: sleeps the latency, panics on a panic
// fault, returns the error otherwise (nil when nothing fired).
func (in *Injector) Apply(point string) error {
	f := in.Decide(point)
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Panic {
		panic(f.Err)
	}
	return f.Err
}

// Hook adapts the injector to the sweep engine's chaos hook
// (sweep.Engine.SetChaosHook): injected errors fail the simulation attempt,
// injected panics unwind into the engine's panic isolation.
func (in *Injector) Hook() func(point string) error {
	return func(point string) error { return in.Apply("sweep:" + point) }
}

// Middleware wraps an HTTP handler with per-request fault injection:
// injected latency delays the request (respecting its context so deadlines
// still fire promptly), an injected error answers 500 with a structured
// body, and an injected panic unwinds into the server's recovery middleware.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := in.Decide("http:" + r.URL.Path)
		if f.Latency > 0 {
			t := time.NewTimer(f.Latency)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		}
		if f.Panic {
			panic(f.Err)
		}
		if f.Err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "{\"error\": %q, \"code\": \"injected\"}\n", f.Err.Error())
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:     in.calls.Load(),
		Latencies: in.latencies.Load(),
		Errors:    in.errs.Load(),
		Panics:    in.panics.Load(),
	}
}

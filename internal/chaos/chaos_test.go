package chaos

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDeterminism checks the seed contract: two injectors with the same
// configuration produce identical fault sequences call for call.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, LatencyProb: 0.3, Latency: time.Millisecond, ErrorProb: 0.3, PanicProb: 0.2}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		fa, fb := a.Decide("p"), b.Decide("p")
		if fa.Latency != fb.Latency || fa.Panic != fb.Panic || (fa.Err == nil) != (fb.Err == nil) {
			t.Fatalf("call %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	// A different seed must (overwhelmingly) produce a different sequence.
	c := New(Config{Seed: 43, LatencyProb: 0.3, Latency: time.Millisecond, ErrorProb: 0.3, PanicProb: 0.2})
	for i := 0; i < 200; i++ {
		c.Decide("p")
	}
	if c.Stats() == a.Stats() {
		t.Log("distinct seeds produced identical stats (possible but unlikely)")
	}
}

// TestProbabilityEdges checks the degenerate configurations: probability 1
// fires every call, the zero config never fires.
func TestProbabilityEdges(t *testing.T) {
	always := New(Config{Seed: 1, ErrorProb: 1})
	for i := 0; i < 50; i++ {
		if err := always.Apply("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if st := always.Stats(); st.Errors != 50 || st.Calls != 50 {
		t.Fatalf("stats = %+v, want 50 errors / 50 calls", st)
	}
	never := New(Config{Seed: 1})
	for i := 0; i < 50; i++ {
		if err := never.Apply("x"); err != nil {
			t.Fatalf("zero config injected %v", err)
		}
	}
	if st := never.Stats(); st.Errors != 0 || st.Latencies != 0 || st.Panics != 0 {
		t.Fatalf("zero config counted faults: %+v", st)
	}
}

// TestPanicPrecedence checks a call drawing both error and panic panics (the
// more violent fault wins), and that the panic value wraps ErrInjected.
func TestPanicPrecedence(t *testing.T) {
	in := New(Config{Seed: 1, ErrorProb: 1, PanicProb: 1})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic from PanicProb 1")
		}
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not wrap ErrInjected", rec)
		}
	}()
	_ = in.Apply("x")
}

// TestHookPointAttribution checks the sweep-hook adapter names its injection
// point and preserves the sentinel.
func TestHookPointAttribution(t *testing.T) {
	h := New(Config{Seed: 1, ErrorProb: 1}).Hook()
	err := h("simulate")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "sweep:simulate") {
		t.Errorf("error %q does not name the injection point", err)
	}
}

// TestMiddlewareError checks an injected error answers 500 with the
// structured "injected" code without reaching the wrapped handler.
func TestMiddlewareError(t *testing.T) {
	reached := false
	h := New(Config{Seed: 1, ErrorProb: 1}).Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		reached = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if reached {
		t.Error("handler ran despite injected error")
	}
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"injected"`) {
		t.Errorf("body %q lacks the injected code", body)
	}
}

// TestMiddlewarePassThrough checks a quiet injector is transparent.
func TestMiddlewarePassThrough(t *testing.T) {
	h := New(Config{Seed: 1}).Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Errorf("status = %d, want pass-through 418", rec.Code)
	}
}

// TestMiddlewarePanicUnwinds checks an injected panic propagates out of the
// middleware — reaching whatever recovery isolation the server installed.
func TestMiddlewarePanicUnwinds(t *testing.T) {
	h := New(Config{Seed: 1, PanicProb: 1}).Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("injected panic did not unwind")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}

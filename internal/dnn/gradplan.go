package dnn

import (
	"fmt"
	"maps"
	"sort"
)

// Gradient-map liveness analysis.
//
// During backward propagation the gradient of buffer T (the paper's dY/dX
// maps) is written by the backward kernels of T's consumers and fully
// consumed by the backward kernel of T's producer. The baseline memory
// manager exploits this to allocate only "the minimally required number" of
// gradient buffers and reuse them (Section IV-A, citing [38,39]): for linear
// networks that is the classic two ping-pong buffers sized to the largest
// dY. This file generalizes the analysis to arbitrary fork/join networks:
// liveness intervals over reverse execution order, plus a greedy slot
// assignment (linear-scan register allocation over an interval graph).

// GradInfo describes one gradient buffer (for the aliasing root of a
// feature-map buffer: in-place chains share a Tensor already, and concat
// branch gradients are views of the concat output's gradient).
type GradInfo struct {
	Root  *Tensor
	Bytes int64

	// FirstWriter is the consumer whose backward kernel first touches this
	// gradient (the consumer latest in execution order).
	FirstWriter *Layer
	// LastReader is the producer whose backward kernel last reads it (the
	// producer earliest in execution order across the alias set).
	LastReader *Layer

	// Start/End are the liveness interval endpoints in reverse execution
	// order (step i runs layer Layers[len-1-i]'s backward).
	Start, End int
}

// GradRoot resolves join aliasing: the gradient of a concat branch output
// lives inside the gradient of the concat result, and the gradient of an
// elementwise-add input is the add output's gradient itself.
func GradRoot(t *Tensor) *Tensor {
	for t.GradShare != nil {
		t = t.GradShare
	}
	return t
}

// GradientInfos computes the gradient buffers a training iteration needs,
// keyed by aliasing root. The network input has no gradient (frameworks skip
// gradInput for the data layer), and the loss output has no gradient (the
// loss layer's backward *generates* the seed, Equation 1).
//
// The analysis is memoized per network identity; the returned map is the
// caller's to reshape (a fresh clone each call), but the *GradInfo values
// are shared and must not be mutated.
func GradientInfos(n *Network) map[*Tensor]*GradInfo {
	derivedMu.Lock()
	d := derivedOf(n)
	infos := d.gradInfos
	derivedMu.Unlock()
	if infos == nil {
		infos = computeGradientInfos(n)
		derivedMu.Lock()
		derivedOf(n).gradInfos = infos
		derivedMu.Unlock()
	}
	return maps.Clone(infos)
}

// computeGradientInfos is the uncached liveness analysis behind
// GradientInfos.
func computeGradientInfos(n *Network) map[*Tensor]*GradInfo {
	rev := func(l *Layer) int { return len(n.Layers) - 1 - l.ID }
	infos := map[*Tensor]*GradInfo{}
	for _, t := range n.Tensors {
		if t.Producer == nil || len(t.Consumer) == 0 {
			continue // network input or dead-end output (loss)
		}
		root := GradRoot(t)
		if root.Producer == nil {
			continue
		}
		gi := infos[root]
		if gi == nil {
			gi = &GradInfo{Root: root, Bytes: root.Bytes(n.DType), Start: -1, End: -1}
			infos[root] = gi
		}
		// First writer: consumer with the highest layer ID across the alias set.
		for _, c := range t.Consumer {
			if gi.FirstWriter == nil || c.ID > gi.FirstWriter.ID {
				gi.FirstWriter = c
			}
		}
		// Last reader: producer with the lowest layer ID across the alias set.
		if gi.LastReader == nil || t.Producer.ID < gi.LastReader.ID {
			gi.LastReader = t.Producer
		}
	}
	for _, gi := range infos {
		gi.Start = rev(gi.FirstWriter)
		gi.End = rev(gi.LastReader)
		if gi.Start > gi.End {
			panic(fmt.Sprintf("dnn: gradient for tensor %d has inverted interval [%d,%d]",
				gi.Root.ID, gi.Start, gi.End))
		}
	}
	return infos
}

// GradPlan is the baseline's shared gradient buffer assignment.
type GradPlan struct {
	SlotBytes []int64         // size of each shared buffer
	SlotOf    map[*Tensor]int // gradient root -> slot index
	Infos     map[*Tensor]*GradInfo
}

// TotalBytes is the memory the baseline allocates for all gradient maps.
func (p *GradPlan) TotalBytes() int64 {
	var b int64
	for _, s := range p.SlotBytes {
		b += s
	}
	return b
}

// PlanGradientSlots assigns every gradient buffer to a shared slot such that
// no two gradients with overlapping live intervals share one. Greedy
// linear-scan over intervals; for linear networks this reproduces Torch's
// two shared buffers sized to the maximum dY.
func PlanGradientSlots(n *Network) *GradPlan {
	return PlanGradientSlotsWhere(n, func(*GradInfo) bool { return true })
}

// PlanGradientSlotsWhere plans slots over the gradients accepted by keep.
// The executors use it to scope the shared buffers to the vDNN-managed
// feature-extraction stage.
func PlanGradientSlotsWhere(n *Network, keep func(*GradInfo) bool) *GradPlan {
	infos := GradientInfos(n)
	for root, gi := range infos {
		if !keep(gi) {
			delete(infos, root)
		}
	}
	order := make([]*GradInfo, 0, len(infos))
	for _, gi := range infos {
		order = append(order, gi)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Start != order[j].Start {
			return order[i].Start < order[j].Start
		}
		return order[i].Root.ID < order[j].Root.ID
	})

	plan := &GradPlan{SlotOf: map[*Tensor]int{}, Infos: infos}
	type slot struct {
		bytes  int64
		freeAt int // last end step occupied (inclusive)
	}
	var slots []slot
	for _, gi := range order {
		// A slot is reusable when its occupant's interval ended strictly
		// before this gradient starts.
		best := -1
		for i, s := range slots {
			if s.freeAt < gi.Start {
				// Prefer the largest reusable slot so small gradients don't
				// grow fresh ones.
				if best < 0 || slots[i].bytes > slots[best].bytes {
					best = i
				}
			}
		}
		if best < 0 {
			slots = append(slots, slot{})
			best = len(slots) - 1
		}
		if gi.Bytes > slots[best].bytes {
			slots[best].bytes = gi.Bytes
		}
		slots[best].freeAt = gi.End
		plan.SlotOf[gi.Root] = best
	}
	plan.SlotBytes = make([]int64, len(slots))
	for i, s := range slots {
		plan.SlotBytes[i] = s.bytes
	}
	return plan
}

// VerifyGradPlan checks that no two gradients sharing a slot overlap in
// time; used by tests and executor self-checks.
func VerifyGradPlan(p *GradPlan) error {
	bySlot := map[int][]*GradInfo{}
	for root, s := range p.SlotOf {
		bySlot[s] = append(bySlot[s], p.Infos[root])
	}
	for s, gis := range bySlot {
		sort.Slice(gis, func(i, j int) bool { return gis[i].Start < gis[j].Start })
		for i := 1; i < len(gis); i++ {
			if gis[i].Start <= gis[i-1].End {
				return fmt.Errorf("dnn: slot %d overlap: tensor %d [%d,%d] vs tensor %d [%d,%d]",
					s, gis[i-1].Root.ID, gis[i-1].Start, gis[i-1].End,
					gis[i].Root.ID, gis[i].Start, gis[i].End)
			}
		}
		for _, gi := range gis {
			if gi.Bytes > p.SlotBytes[s] {
				return fmt.Errorf("dnn: slot %d too small for tensor %d", s, gi.Root.ID)
			}
		}
	}
	return nil
}

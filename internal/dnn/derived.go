package dnn

import "sync"

// Per-network memoization of derived graph analyses.
//
// GradientInfos and LastBwdReaders are pure functions of the immutable layer
// graph, yet every simulation runtime re-derives them — across a design-space
// sweep that is thousands of identical liveness analyses of a handful of
// networks. The memo keys by network identity (the same identity callers and
// the sweep cache key by), holds the canonical result per network, and is
// bounded so ad-hoc throwaway graphs cannot grow it without limit.

const derivedCap = 256

// derived is one network's memoized analyses, filled lazily per field.
type derived struct {
	gradInfos map[*Tensor]*GradInfo
	lastBwd   map[*Tensor]*Layer
}

var (
	derivedMu    sync.Mutex
	derivedMemo  = map[*Network]*derived{}
	derivedOrder []*Network // FIFO eviction queue
)

// derivedOf returns (creating if needed) the network's memo slot. Called
// with derivedMu held.
func derivedOf(n *Network) *derived {
	d := derivedMemo[n]
	if d == nil {
		if len(derivedMemo) >= derivedCap {
			oldest := derivedOrder[0]
			derivedOrder = derivedOrder[1:]
			delete(derivedMemo, oldest)
		}
		d = &derived{}
		derivedMemo[n] = d
		derivedOrder = append(derivedOrder, n)
	}
	return d
}

// PurgeDerived drops the network's memoized analyses. Callers that evict a
// network from their own memoization (the sweep engine's PurgeNetwork) use
// it so a dead graph identity does not pin its analyses until FIFO eviction
// reaches them.
func PurgeDerived(n *Network) {
	derivedMu.Lock()
	defer derivedMu.Unlock()
	if _, ok := derivedMemo[n]; !ok {
		return
	}
	delete(derivedMemo, n)
	for i, o := range derivedOrder {
		if o == n {
			derivedOrder = append(derivedOrder[:i], derivedOrder[i+1:]...)
			break
		}
	}
}

package dnn

// Backward-pass feature-map liveness.
//
// vDNN frees a feature map as soon as no remaining backward kernel will read
// it (paper Figure 8). Which kernels read which maps follows the cuDNN call
// signatures: convolution backward reads only X (bwd-filter) and the weights
// (bwd-data) — not its own Y; pooling and LRN backward read both X and Y;
// in-place activations read the shared buffer as their Y; dropout backward
// reads only its mask and the gradient; concat backward is pure views.

// BwdReads returns the feature-map buffers this layer's backward kernels
// read.
func (l *Layer) BwdReads() []*Tensor {
	switch l.Kind {
	case Conv, FC:
		return []*Tensor{l.In()}
	case Pool, LRN, BatchNorm:
		return []*Tensor{l.In(), l.Output}
	case ReLU:
		// In-place: the backward reads Y, which is the shared buffer.
		return []*Tensor{l.In()}
	case SoftmaxLoss:
		// The gradient seed is formed from the stored probabilities.
		return []*Tensor{l.Output}
	case Dropout, Concat, Add:
		// Dropout reads only its mask; concat/add backward are pure views
		// over the output gradient.
		return nil
	}
	return nil
}

// LastBwdReaders maps every buffer to the layer whose backward pass is its
// final reader in backward execution order (backward runs from high layer
// IDs to low, so the final reader is the lowest-ID reader). vDNN releases
// each buffer once that layer's backward completes. Buffers no backward
// kernel reads fall back to their producer's backward slot, which is always
// safe (nothing below the producer can reference them).
//
// The result is memoized per network identity and shared between callers:
// read it, do not mutate it.
func LastBwdReaders(n *Network) map[*Tensor]*Layer {
	derivedMu.Lock()
	d := derivedOf(n)
	m := d.lastBwd
	derivedMu.Unlock()
	if m == nil {
		m = computeLastBwdReaders(n)
		derivedMu.Lock()
		derivedOf(n).lastBwd = m
		derivedMu.Unlock()
	}
	return m
}

// computeLastBwdReaders is the uncached analysis behind LastBwdReaders.
func computeLastBwdReaders(n *Network) map[*Tensor]*Layer {
	m := make(map[*Tensor]*Layer, len(n.Tensors))
	for _, l := range n.Layers {
		for _, t := range l.BwdReads() {
			if cur, ok := m[t]; !ok || l.ID < cur.ID {
				m[t] = l
			}
		}
	}
	for _, t := range n.Tensors {
		if _, ok := m[t]; !ok && t.Producer != nil {
			m[t] = t.Producer
		}
	}
	return m
}

package dnn

import (
	"fmt"

	"vdnn/internal/tensor"
)

// Builder assembles a Network layer by layer. Layers are appended in
// execution order (which is also a valid topological order); shapes are
// inferred as layers are added, so mistakes surface at construction time.
//
// The builder mirrors the Torch/Caffe-style network definition API that the
// paper says vDNN exposes ("The vDNN API closely resembles that of Torch and
// Caffe", Section IV-A).
type Builder struct {
	name  string
	batch int
	dtype tensor.DType

	layers  []*Layer
	tensors []*Tensor
	input   *Tensor
	stage   Stage
	err     error
}

// NewBuilder starts a network definition.
func NewBuilder(name string, batch int, d tensor.DType) *Builder {
	if batch < 1 {
		panic(fmt.Sprintf("dnn: batch %d < 1", batch))
	}
	return &Builder{name: name, batch: batch, dtype: d}
}

// Input declares the network input (one batch of C x H x W images) and
// returns its buffer.
func (b *Builder) Input(c, h, w int) *Tensor {
	if b.input != nil {
		b.fail("multiple inputs declared")
		return b.input
	}
	t := b.newTensor(tensor.NCHW(b.batch, c, h, w), nil)
	b.input = t
	return t
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("dnn: building %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) newTensor(s tensor.Shape, producer *Layer) *Tensor {
	t := &Tensor{ID: len(b.tensors), Shape: s, Producer: producer}
	b.tensors = append(b.tensors, t)
	return t
}

func (b *Builder) addLayer(l *Layer, inputs ...*Tensor) *Layer {
	l.ID = len(b.layers)
	l.Stage = b.stage
	l.Inputs = inputs
	for _, in := range inputs {
		in.Consumer = append(in.Consumer, l)
	}
	b.layers = append(b.layers, l)
	return l
}

// Conv appends a convolution (+bias) layer.
func (b *Builder) Conv(x *Tensor, name string, outCh, kernel, stride, pad int) *Tensor {
	return b.ConvRect(x, name, outCh, kernel, kernel, stride, stride, pad, pad)
}

// ConvRect appends a convolution with rectangular geometry.
func (b *Builder) ConvRect(x *Tensor, name string, outCh, r, s, strideH, strideW, padH, padW int) *Tensor {
	if b.err != nil {
		return x
	}
	l := &Layer{
		Name: name, Kind: Conv,
		Conv: &ConvSpec{OutChannels: outCh, R: r, S: s, StrideH: strideH, StrideW: strideW, PadH: padH, PadW: padW},
	}
	b.addLayer(l, x)
	oh := tensor.ConvOut(x.Shape.H, r, strideH, padH, false)
	ow := tensor.ConvOut(x.Shape.W, s, strideW, padW, false)
	l.Output = b.newTensor(tensor.NCHW(b.batch, outCh, oh, ow), l)
	return l.Output
}

// ReLU appends an in-place activation: the output is the same buffer.
func (b *Builder) ReLU(x *Tensor, name string) *Tensor {
	if b.err != nil {
		return x
	}
	l := &Layer{Name: name, Kind: ReLU, InPlace: true}
	b.addLayer(l, x)
	l.Output = x
	return x
}

// MaxPool appends a max-pooling layer (floor-mode output rounding).
func (b *Builder) MaxPool(x *Tensor, name string, window, stride, pad int) *Tensor {
	return b.pool(x, name, PoolSpec{Window: window, Stride: stride, Pad: pad})
}

// MaxPoolCeil appends a max-pooling layer with Caffe-style ceil rounding
// (GoogLeNet's pooling layers).
func (b *Builder) MaxPoolCeil(x *Tensor, name string, window, stride, pad int) *Tensor {
	return b.pool(x, name, PoolSpec{Window: window, Stride: stride, Pad: pad, Ceil: true})
}

// AvgPool appends an average-pooling layer.
func (b *Builder) AvgPool(x *Tensor, name string, window, stride, pad int) *Tensor {
	return b.pool(x, name, PoolSpec{Window: window, Stride: stride, Pad: pad, Avg: true})
}

func (b *Builder) pool(x *Tensor, name string, spec PoolSpec) *Tensor {
	if b.err != nil {
		return x
	}
	l := &Layer{Name: name, Kind: Pool, Pool: &spec}
	b.addLayer(l, x)
	oh := tensor.ConvOut(x.Shape.H, spec.Window, spec.Stride, spec.Pad, spec.Ceil)
	ow := tensor.ConvOut(x.Shape.W, spec.Window, spec.Stride, spec.Pad, spec.Ceil)
	l.Output = b.newTensor(tensor.NCHW(b.batch, x.Shape.C, oh, ow), l)
	return l.Output
}

// LRN appends a cross-channel local response normalization layer.
func (b *Builder) LRN(x *Tensor, name string, localSize int) *Tensor {
	if b.err != nil {
		return x
	}
	l := &Layer{Name: name, Kind: LRN, LRN: &LRNSpec{LocalSize: localSize}}
	b.addLayer(l, x)
	l.Output = b.newTensor(x.Shape, l)
	return l.Output
}

// Concat joins branch outputs along the channel dimension (inception join).
func (b *Builder) Concat(name string, xs ...*Tensor) *Tensor {
	if b.err != nil {
		return xs[0]
	}
	if len(xs) < 2 {
		b.fail("concat %q needs at least 2 inputs", name)
		return xs[0]
	}
	c := 0
	for _, x := range xs {
		if x.Shape.N != xs[0].Shape.N || x.Shape.H != xs[0].Shape.H || x.Shape.W != xs[0].Shape.W {
			b.fail("concat %q inputs disagree on N/H/W: %v vs %v", name, x.Shape, xs[0].Shape)
			return xs[0]
		}
		c += x.Shape.C
	}
	l := &Layer{Name: name, Kind: Concat}
	b.addLayer(l, xs...)
	l.Output = b.newTensor(tensor.NCHW(b.batch, c, xs[0].Shape.H, xs[0].Shape.W), l)
	for _, x := range xs {
		x.GradShare = l.Output
	}
	return l.Output
}

// AddJoin joins branches by elementwise addition — the residual connection
// of ResNet-style networks. All inputs must share one shape; each input's
// gradient is the output's gradient (chain rule through addition), so no
// separate gradient buffers exist for the branches.
func (b *Builder) AddJoin(name string, xs ...*Tensor) *Tensor {
	if b.err != nil {
		return xs[0]
	}
	if len(xs) < 2 {
		b.fail("add %q needs at least 2 inputs", name)
		return xs[0]
	}
	for _, x := range xs[1:] {
		if x.Shape != xs[0].Shape {
			b.fail("add %q inputs disagree on shape: %v vs %v", name, x.Shape, xs[0].Shape)
			return xs[0]
		}
	}
	l := &Layer{Name: name, Kind: Add}
	b.addLayer(l, xs...)
	l.Output = b.newTensor(xs[0].Shape, l)
	for _, x := range xs {
		x.GradShare = l.Output
	}
	return l.Output
}

// BatchNormLayer appends a batch-normalization layer (scale/shift parameters
// and running statistics, 4 values per channel). Modeled non-in-place: the
// backward pass reads both X and Y.
func (b *Builder) BatchNormLayer(x *Tensor, name string) *Tensor {
	if b.err != nil {
		return x
	}
	l := &Layer{Name: name, Kind: BatchNorm}
	b.addLayer(l, x)
	l.Output = b.newTensor(x.Shape, l)
	return l.Output
}

// FC appends a fully-connected layer. The first FC layer switches the
// builder into the classifier stage: every subsequent layer belongs to the
// classifier and is left unmanaged by vDNN, as in the paper.
func (b *Builder) FC(x *Tensor, name string, outFeatures int) *Tensor {
	if b.err != nil {
		return x
	}
	b.stage = Classifier
	l := &Layer{Name: name, Kind: FC, FC: &FCSpec{OutFeatures: outFeatures}}
	b.addLayer(l, x)
	l.Output = b.newTensor(tensor.Vec(b.batch, outFeatures), l)
	return l.Output
}

// DropoutLayer appends an in-place dropout layer (classifier stage only in
// the benchmark networks; it owns a persistent mask buffer).
func (b *Builder) DropoutLayer(x *Tensor, name string, p float64) *Tensor {
	if b.err != nil {
		return x
	}
	if p <= 0 || p >= 1 {
		b.fail("dropout %q probability %v out of (0,1)", name, p)
		return x
	}
	l := &Layer{Name: name, Kind: Dropout, InPlace: true, Dropout: &DropoutSpec{P: p}}
	b.addLayer(l, x)
	l.Output = x
	return x
}

// SoftmaxLoss terminates the network with a softmax + loss layer whose
// backward pass seeds the gradient chain (Equation 1 in the paper).
func (b *Builder) SoftmaxLoss(x *Tensor, name string) *Tensor {
	if b.err != nil {
		return x
	}
	b.stage = Classifier // networks without FC layers still end in the classifier stage
	l := &Layer{Name: name, Kind: SoftmaxLoss}
	b.addLayer(l, x)
	l.Output = b.newTensor(x.Shape, l)
	return l.Output
}

// Finalize validates and returns the network.
func (b *Builder) Finalize() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.input == nil {
		return nil, fmt.Errorf("dnn: %s has no input", b.name)
	}
	n := &Network{
		Name:    b.name,
		Batch:   b.batch,
		DType:   b.dtype,
		Layers:  b.layers,
		Tensors: b.tensors,
		Input:   b.input,
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustFinalize is Finalize for statically known-good network definitions.
func (b *Builder) MustFinalize() *Network {
	n, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return n
}

// Package dnn represents neural networks the way vDNN sees them: a
// topologically ordered list of layers connected through shared feature-map
// buffers, with explicit producer/consumer relationships. The paper's key
// structural observations all live here:
//
//   - training is a statically fixed, layer-wise sequence (Section I);
//   - non-linear topologies fork and join buffers, tracked with reference
//     counts so offload/release only happens at the LAST consumer (Fig 3);
//   - activation layers run in place, so a CONV->ACTV->CONV chain shares one
//     buffer end to end (Section II-B, footnote 1);
//   - the network splits into feature-extraction layers (managed by vDNN)
//     and classifier layers (left as-is, Section III).
package dnn

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/tensor"
)

// LayerKind enumerates the layer types of the paper's benchmark networks.
type LayerKind int

const (
	Conv LayerKind = iota
	ReLU
	Pool
	LRN
	Concat
	Add
	BatchNorm
	FC
	Dropout
	SoftmaxLoss
)

var kindNames = [...]string{"CONV", "ACTV", "POOL", "LRN", "CONCAT", "ADD", "BN", "FC", "DROP", "LOSS"}

func (k LayerKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// Stage splits the network as the paper does: vDNN manages the feature
// extraction layers; classification layers are executed unchanged.
type Stage int

const (
	FeatureExtraction Stage = iota
	Classifier
)

func (s Stage) String() string {
	if s == FeatureExtraction {
		return "feature-extraction"
	}
	return "classifier"
}

// Tensor is a device buffer holding a feature map. In-place layers (ReLU,
// classifier dropout) do not create new Tensors: their output is the same
// buffer, which is how Torch's in-place optimization is modeled.
type Tensor struct {
	ID       int
	Shape    tensor.Shape
	Producer *Layer   // nil for the network input
	Consumer []*Layer // layers reading this buffer, in execution order

	// GradShare is set on inputs of gradient-sharing joins: Concat (each
	// branch gradient is a disjoint view of the concat output's gradient)
	// and elementwise Add (each input's gradient IS the output's gradient,
	// distributed by the chain rule). In both cases no separate gradient
	// buffer exists for this tensor; it aliases the join output's.
	GradShare *Tensor
}

// Bytes returns the buffer footprint for the network's element type.
func (t *Tensor) Bytes(d tensor.DType) int64 { return t.Shape.Bytes(d) }

// LastConsumer returns the consumer latest in execution order, or nil.
// During forward propagation a buffer may be released/offloaded only once
// its last consumer is the layer being processed (paper Fig 3 and Fig 7).
func (t *Tensor) LastConsumer() *Layer {
	if len(t.Consumer) == 0 {
		return nil
	}
	return t.Consumer[len(t.Consumer)-1]
}

// ConvSpec is the geometry of a convolution layer.
type ConvSpec struct {
	OutChannels      int
	R, S             int
	StrideH, StrideW int
	PadH, PadW       int
}

// PoolSpec is the geometry of a pooling layer.
type PoolSpec struct {
	Window, Stride, Pad int
	Avg                 bool // average pooling (GoogLeNet head) vs max
	Ceil                bool // Caffe-style ceil-mode output rounding
}

// LRNSpec is a cross-channel local response normalization window.
type LRNSpec struct{ LocalSize int }

// FCSpec is a fully-connected layer.
type FCSpec struct{ OutFeatures int }

// DropoutSpec holds the drop probability; the mask buffer is sized from the
// input shape.
type DropoutSpec struct{ P float64 }

// Layer is one step of the statically ordered computation sequence.
type Layer struct {
	ID    int // position in execution (topological) order
	Name  string
	Kind  LayerKind
	Stage Stage

	Inputs  []*Tensor
	Output  *Tensor
	InPlace bool

	Conv    *ConvSpec
	Pool    *PoolSpec
	LRN     *LRNSpec
	FC      *FCSpec
	Dropout *DropoutSpec
}

// In returns the primary input buffer (Inputs[0]).
func (l *Layer) In() *Tensor { return l.Inputs[0] }

// WeightBytes returns the weight+bias footprint of the layer (zero for
// weight-less layers). Batch normalization's scale/shift parameters and
// running statistics count here (4 values per channel).
func (l *Layer) WeightBytes(d tensor.DType) int64 {
	switch l.Kind {
	case Conv:
		in := l.In().Shape
		w := int64(l.Conv.OutChannels) * int64(in.C) * int64(l.Conv.R) * int64(l.Conv.S)
		return (w + int64(l.Conv.OutChannels)) * d.Size()
	case FC:
		in := l.In().Shape.PerSample()
		return (in*int64(l.FC.OutFeatures) + int64(l.FC.OutFeatures)) * d.Size()
	case BatchNorm:
		return 4 * int64(l.In().Shape.C) * d.Size()
	}
	return 0
}

// MaskBytes returns the persistent dropout mask footprint (zero otherwise).
func (l *Layer) MaskBytes(d tensor.DType) int64 {
	if l.Kind != Dropout {
		return 0
	}
	return l.In().Shape.Bytes(d)
}

// ConvGeom converts a Conv layer to the cuDNN geometry descriptor.
func (l *Layer) ConvGeom(d tensor.DType) cudnnsim.ConvGeom {
	if l.Kind != Conv {
		panic(fmt.Sprintf("dnn: ConvGeom on %v layer %q", l.Kind, l.Name))
	}
	in := l.In().Shape
	return cudnnsim.ConvGeom{
		N: in.N, C: in.C, H: in.H, W: in.W,
		K: l.Conv.OutChannels, R: l.Conv.R, S: l.Conv.S,
		StrideH: l.Conv.StrideH, StrideW: l.Conv.StrideW,
		PadH: l.Conv.PadH, PadW: l.Conv.PadW,
		DType: d,
	}
}

// Network is a validated, immutable network description.
type Network struct {
	Name  string
	Batch int
	DType tensor.DType

	Layers  []*Layer  // execution order
	Tensors []*Tensor // all distinct buffers, including the input
	Input   *Tensor
}

// WithDType returns a shallow copy of the network using a different element
// type. Shapes and topology are shared; every byte and cost computation
// scales with the new type. Used for reduced-precision what-if experiments
// (the paper's related-work Section VI discusses precision as an orthogonal
// memory lever).
func (n *Network) WithDType(d tensor.DType) *Network {
	c := *n
	c.DType = d
	c.Name = fmt.Sprintf("%s %s", n.Name, d)
	return &c
}

// FeatureLayers returns the layers vDNN manages.
func (n *Network) FeatureLayers() []*Layer { return n.stageLayers(FeatureExtraction) }

// ClassifierLayers returns the unmanaged tail of the network.
func (n *Network) ClassifierLayers() []*Layer { return n.stageLayers(Classifier) }

func (n *Network) stageLayers(s Stage) []*Layer {
	var out []*Layer
	for _, l := range n.Layers {
		if l.Stage == s {
			out = append(out, l)
		}
	}
	return out
}

// ConvLayers returns all convolution layers in execution order.
func (n *Network) ConvLayers() []*Layer {
	var out []*Layer
	for _, l := range n.Layers {
		if l.Kind == Conv {
			out = append(out, l)
		}
	}
	return out
}

// TotalWeightBytes sums weights+biases over the network.
func (n *Network) TotalWeightBytes() int64 {
	var b int64
	for _, l := range n.Layers {
		b += l.WeightBytes(n.DType)
	}
	return b
}

// FeatureMapBytes sums all distinct feature-map buffers (the paper's "X"
// totals: what the baseline keeps resident for the whole iteration).
func (n *Network) FeatureMapBytes() int64 {
	var b int64
	for _, t := range n.Tensors {
		b += t.Bytes(n.DType)
	}
	return b
}

// Validate checks the structural invariants the executors rely on.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("dnn: %s has no layers", n.Name)
	}
	seen := map[*Tensor]bool{n.Input: true}
	for i, l := range n.Layers {
		if l.ID != i {
			return fmt.Errorf("dnn: layer %q has ID %d at position %d", l.Name, l.ID, i)
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("dnn: layer %q has no inputs", l.Name)
		}
		for _, in := range l.Inputs {
			if !seen[in] {
				return fmt.Errorf("dnn: layer %q consumes tensor %d before production", l.Name, in.ID)
			}
		}
		if l.Output == nil {
			return fmt.Errorf("dnn: layer %q has no output", l.Name)
		}
		seen[l.Output] = true
		if l.InPlace && l.Output != l.Inputs[0] {
			return fmt.Errorf("dnn: in-place layer %q with distinct output", l.Name)
		}
		if !l.InPlace && seen[l.Output] && l.Output.Producer != l {
			return fmt.Errorf("dnn: layer %q writes tensor %d owned by %q", l.Name, l.Output.ID, l.Output.Producer.Name)
		}
	}
	// Consumer lists must be consistent and execution-ordered.
	for _, t := range n.Tensors {
		last := -1
		for _, c := range t.Consumer {
			if c.ID <= last {
				return fmt.Errorf("dnn: tensor %d consumer list out of order", t.ID)
			}
			last = c.ID
			found := false
			for _, in := range c.Inputs {
				if in == t {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("dnn: tensor %d lists consumer %q which does not read it", t.ID, c.Name)
			}
		}
	}
	// Feature-extraction layers must precede classifier layers.
	inClassifier := false
	for _, l := range n.Layers {
		if l.Stage == Classifier {
			inClassifier = true
		} else if inClassifier {
			return fmt.Errorf("dnn: feature layer %q after classifier start", l.Name)
		}
	}
	return nil
}

// Stats summarizes a network for reports.
type Stats struct {
	Layers, ConvLayers, FCLayers int
	WeightBytes                  int64
	FeatureMapBytes              int64
}

// Summary computes basic statistics.
func (n *Network) Summary() Stats {
	s := Stats{Layers: len(n.Layers)}
	for _, l := range n.Layers {
		switch l.Kind {
		case Conv:
			s.ConvLayers++
		case FC:
			s.FCLayers++
		}
	}
	s.WeightBytes = n.TotalWeightBytes()
	s.FeatureMapBytes = n.FeatureMapBytes()
	return s
}

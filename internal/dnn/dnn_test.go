package dnn

import (
	"strings"
	"testing"

	"vdnn/internal/tensor"
)

// linearNet builds a small CONV->ACTV->CONV->ACTV->POOL->FC network.
func linearNet(t *testing.T, batch int) *Network {
	b := NewBuilder("tiny", batch, tensor.Float32)
	x := b.Input(3, 32, 32)
	x = b.Conv(x, "conv1", 16, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.Conv(x, "conv2", 32, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.MaxPool(x, "pool1", 2, 2, 0)
	x = b.FC(x, "fc", 10)
	b.SoftmaxLoss(x, "loss")
	n, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// forkNet builds a GoogLeNet-style fork/join (the paper's Figure 3): one
// producer feeding two branches that join in a concat.
func forkNet(t *testing.T) *Network {
	b := NewBuilder("fork", 8, tensor.Float32)
	x := b.Input(3, 16, 16)
	x = b.Conv(x, "conv1", 8, 3, 1, 1) // layer(1) in Fig 3
	br1 := b.Conv(x, "conv2", 8, 3, 1, 1)
	br2 := b.Conv(x, "conv3", 8, 1, 1, 0)
	j := b.Concat("join", br1, br2) // layer(5)'s input in Fig 3
	j = b.Conv(j, "conv4", 8, 3, 1, 1)
	j = b.FC(j, "fc", 10)
	b.SoftmaxLoss(j, "loss")
	n, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLinearNetStructure(t *testing.T) {
	n := linearNet(t, 4)
	if got := len(n.Layers); got != 7 {
		t.Fatalf("layers = %d, want 7", got)
	}
	// In-place ReLU shares the conv's output buffer.
	conv1 := n.Layers[0]
	relu1 := n.Layers[1]
	conv2 := n.Layers[2]
	if relu1.Output != conv1.Output {
		t.Fatal("ReLU must be in place")
	}
	if conv2.In() != conv1.Output {
		t.Fatal("conv2 must read conv1's buffer through the in-place ReLU")
	}
	// That buffer's consumers are relu1 and conv2; last consumer is conv2.
	if lc := conv1.Output.LastConsumer(); lc != conv2 {
		t.Fatalf("last consumer = %v, want conv2", lc.Name)
	}
	// Shape inference: 3x32x32 -> conv(16) -> 16x32x32 -> conv(32) -> pool -> 32x16x16.
	pool := n.Layers[4]
	if pool.Output.Shape != tensor.NCHW(4, 32, 16, 16) {
		t.Fatalf("pool out = %v", pool.Output.Shape)
	}
}

func TestStageSplit(t *testing.T) {
	n := linearNet(t, 4)
	fe := n.FeatureLayers()
	cl := n.ClassifierLayers()
	if len(fe) != 5 || len(cl) != 2 {
		t.Fatalf("stage split = %d/%d, want 5/2", len(fe), len(cl))
	}
	for _, l := range cl {
		if l.Kind == Conv || l.Kind == Pool {
			t.Fatalf("layer %q misclassified as classifier", l.Name)
		}
	}
}

func TestWeightBytes(t *testing.T) {
	n := linearNet(t, 4)
	conv1 := n.Layers[0]
	// 16 filters * 3 ch * 3*3 * 4B + 16 biases * 4B.
	want := int64(16*3*9+16) * 4
	if got := conv1.WeightBytes(n.DType); got != want {
		t.Fatalf("conv1 weights = %d, want %d", got, want)
	}
	fc := n.Layers[5]
	// in = 32*16*16 = 8192 features -> 10.
	wantFC := int64(8192*10+10) * 4
	if got := fc.WeightBytes(n.DType); got != wantFC {
		t.Fatalf("fc weights = %d, want %d", got, wantFC)
	}
	if n.TotalWeightBytes() <= want+wantFC {
		t.Fatal("total weights must include conv2")
	}
}

func TestForkRefcounts(t *testing.T) {
	n := forkNet(t)
	conv1 := n.Layers[0]
	// Paper Fig 3: conv1's output is forked into two consumers (Refcnt=2).
	if got := len(conv1.Output.Consumer); got != 2 {
		t.Fatalf("fork refcount = %d, want 2", got)
	}
	// Last consumer is conv3 (higher layer ID).
	if lc := conv1.Output.LastConsumer(); lc.Name != "conv3" {
		t.Fatalf("last consumer = %q, want conv3", lc.Name)
	}
}

func TestConcatAliasing(t *testing.T) {
	n := forkNet(t)
	var join *Layer
	for _, l := range n.Layers {
		if l.Kind == Concat {
			join = l
		}
	}
	if join == nil {
		t.Fatal("no concat layer")
	}
	if join.Output.Shape.C != 16 {
		t.Fatalf("concat channels = %d, want 16", join.Output.Shape.C)
	}
	for _, in := range join.Inputs {
		if GradRoot(in) != join.Output {
			t.Fatal("branch gradient must alias the concat gradient")
		}
	}
}

func TestGradientInfosLinear(t *testing.T) {
	n := linearNet(t, 4)
	infos := GradientInfos(n)
	// Buffers needing gradients: conv1.out, conv2.out, pool.out, fc.out.
	// The input has none; the loss output has none.
	if len(infos) != 4 {
		t.Fatalf("gradient buffers = %d, want 4", len(infos))
	}
	for _, gi := range infos {
		if gi.Start > gi.End {
			t.Fatalf("inverted interval for tensor %d", gi.Root.ID)
		}
		if gi.FirstWriter.ID <= gi.Root.Producer.ID {
			t.Fatalf("gradient writer %q not after producer %q", gi.FirstWriter.Name, gi.Root.Producer.Name)
		}
	}
	if _, ok := infos[n.Input]; ok {
		t.Fatal("network input must not get a gradient buffer")
	}
}

func TestPlanGradientSlotsLinearIsTwoBuffers(t *testing.T) {
	// The baseline optimization the paper adopts from [38,39]: a linear
	// network needs only two shared gradient buffers sized to the largest dY.
	n := linearNet(t, 4)
	plan := PlanGradientSlots(n)
	if err := VerifyGradPlan(plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.SlotBytes) != 2 {
		t.Fatalf("slots = %d, want 2 for a linear net", len(plan.SlotBytes))
	}
	// Largest dY is conv1's output: 4*16*32*32*4 bytes.
	want := int64(4*16*32*32) * 4
	if plan.SlotBytes[0] != want && plan.SlotBytes[1] != want {
		t.Fatalf("no slot sized to max dY %d: %v", want, plan.SlotBytes)
	}
	if plan.TotalBytes() >= n.FeatureMapBytes() {
		t.Fatal("shared gradients should be far below total feature maps")
	}
}

func TestPlanGradientSlotsFork(t *testing.T) {
	n := forkNet(t)
	plan := PlanGradientSlots(n)
	if err := VerifyGradPlan(plan); err != nil {
		t.Fatal(err)
	}
	// Branch outputs alias the concat gradient, so they must not appear as
	// separate slot assignments.
	for root := range plan.SlotOf {
		if root.GradShare != nil {
			t.Fatal("aliased branch gradient got its own slot")
		}
	}
}

func TestValidateCatchesCycleish(t *testing.T) {
	// Hand-build a broken net: a layer consuming a tensor produced later.
	b := NewBuilder("bad", 2, tensor.Float32)
	x := b.Input(3, 8, 8)
	y := b.Conv(x, "conv1", 4, 3, 1, 1)
	n, err := b.Finalize()
	_ = y
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: make conv1 consume its own output.
	n.Layers[0].Inputs = []*Tensor{n.Layers[0].Output}
	if err := n.Validate(); err == nil {
		t.Fatal("validate should reject consume-before-produce")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", 2, tensor.Float32)
	x := b.Input(3, 8, 8)
	b.DropoutLayer(x, "d", 1.5) // invalid probability
	if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "dropout") {
		t.Fatalf("want dropout error, got %v", err)
	}

	b2 := NewBuilder("bad2", 2, tensor.Float32)
	if _, err := b2.Finalize(); err == nil {
		t.Fatal("want missing-input error")
	}

	b3 := NewBuilder("bad3", 2, tensor.Float32)
	x3 := b3.Input(3, 8, 8)
	y3 := b3.Conv(x3, "c", 4, 3, 1, 1)
	z3 := b3.Conv(x3, "c2", 4, 3, 1, 2) // different spatial size
	b3.Concat("j", y3, z3)
	if _, err := b3.Finalize(); err == nil {
		t.Fatal("want concat shape mismatch error")
	}
}

func TestBadBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("batch 0 did not panic")
		}
	}()
	NewBuilder("x", 0, tensor.Float32)
}

func TestConvGeomOnNonConvPanics(t *testing.T) {
	n := linearNet(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("ConvGeom on pool did not panic")
		}
	}()
	n.Layers[4].ConvGeom(n.DType) // pool layer
}

func TestMaskBytes(t *testing.T) {
	b := NewBuilder("d", 4, tensor.Float32)
	x := b.Input(3, 8, 8)
	x = b.FC(x, "fc", 100)
	x = b.DropoutLayer(x, "drop", 0.5)
	b.SoftmaxLoss(x, "loss")
	n, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var drop *Layer
	for _, l := range n.Layers {
		if l.Kind == Dropout {
			drop = l
		}
	}
	if got := drop.MaskBytes(n.DType); got != 4*100*4 {
		t.Fatalf("mask bytes = %d, want %d", got, 4*100*4)
	}
	if n.Layers[0].MaskBytes(n.DType) != 0 {
		t.Fatal("non-dropout layer has mask bytes")
	}
}

func TestSummary(t *testing.T) {
	n := linearNet(t, 4)
	s := n.Summary()
	if s.ConvLayers != 2 || s.FCLayers != 1 || s.Layers != 7 {
		t.Fatalf("summary = %+v", s)
	}
	if s.WeightBytes != n.TotalWeightBytes() || s.FeatureMapBytes != n.FeatureMapBytes() {
		t.Fatal("summary totals inconsistent")
	}
}

func TestKindAndStageNames(t *testing.T) {
	if Conv.String() != "CONV" || ReLU.String() != "ACTV" || SoftmaxLoss.String() != "LOSS" {
		t.Fatal("kind names wrong")
	}
	if FeatureExtraction.String() != "feature-extraction" || Classifier.String() != "classifier" {
		t.Fatal("stage names wrong")
	}
}

func TestAddJoinStructure(t *testing.T) {
	b := NewBuilder("res", 4, tensor.Float32)
	x := b.Input(3, 16, 16)
	x = b.Conv(x, "conv0", 8, 3, 1, 1)
	branch := b.Conv(x, "conv1", 8, 3, 1, 1)
	branch = b.BatchNormLayer(branch, "bn1")
	y := b.AddJoin("add", x, branch)
	y = b.ReLU(y, "relu")
	y = b.FC(y, "fc", 10)
	b.SoftmaxLoss(y, "loss")
	n, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var add *Layer
	for _, l := range n.Layers {
		if l.Kind == Add {
			add = l
		}
	}
	if add == nil {
		t.Fatal("no add layer")
	}
	if add.Output.Shape != add.Inputs[0].Shape {
		t.Fatal("add must preserve shape")
	}
	// Both inputs' gradients alias the add output's gradient.
	for _, in := range add.Inputs {
		if GradRoot(in) != add.Output {
			t.Fatalf("input fm%d gradient not shared with add output", in.ID)
		}
	}
	// Add backward reads nothing; BN backward reads X and Y.
	if len(add.BwdReads()) != 0 {
		t.Fatal("add backward should be pure views")
	}
	for _, l := range n.Layers {
		if l.Kind == BatchNorm {
			if len(l.BwdReads()) != 2 {
				t.Fatal("BN backward must read X and Y")
			}
			if l.WeightBytes(n.DType) != 4*8*4 {
				t.Fatalf("BN params = %d bytes, want 4*C*4", l.WeightBytes(n.DType))
			}
		}
	}
	plan := PlanGradientSlots(n)
	if err := VerifyGradPlan(plan); err != nil {
		t.Fatal(err)
	}
}

func TestAddJoinShapeMismatch(t *testing.T) {
	b := NewBuilder("bad", 4, tensor.Float32)
	x := b.Input(3, 16, 16)
	a := b.Conv(x, "a", 8, 3, 1, 1)
	c := b.Conv(x, "c", 16, 3, 1, 1) // different channels
	b.AddJoin("add", a, c)
	if _, err := b.Finalize(); err == nil {
		t.Fatal("mismatched add shapes accepted")
	}
}

func TestWithDTypeScalesBytes(t *testing.T) {
	n := linearNet(t, 4)
	h := n.WithDType(tensor.Float16)
	if h.FeatureMapBytes()*2 != n.FeatureMapBytes() {
		t.Fatalf("fp16 fm bytes %d, want half of %d", h.FeatureMapBytes(), n.FeatureMapBytes())
	}
	if n.DType != tensor.Float32 {
		t.Fatal("WithDType mutated the original")
	}
}

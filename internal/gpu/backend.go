package gpu

// Backend is a pluggable accelerator description: anything that can produce
// a device Spec under a stable catalog token. The simulator itself always
// runs on a concrete Spec — compute cost, memory hierarchy (capacity,
// bandwidth, reservation, GDDR/HBM/near-DRAM kind), host link (PCIe
// gen3/gen4, NVLINK-class, on-die) and the linear power/energy model are all
// fields of Spec — so a Backend is the unit of *registration*: the catalog
// stores Backends, and lookups materialize the Spec at the moment of use.
//
// The indirection is what makes the catalog pluggable. A Backend may be a
// fixed profile (every built-in is a SpecBackend), or something that derives
// its Spec — scaled variants, file-loaded calibrations — without the
// registry or its consumers knowing the difference.
type Backend interface {
	// Name is the stable registry token ("titanx", "p100", "rapidnn", ...).
	Name() string
	// Spec materializes the full device description. It must validate.
	Spec() Spec
}

// SpecBackend is the trivial Backend: a token bound to a fixed Spec. All
// built-in devices are SpecBackends, and Register wraps bare Specs in one.
type SpecBackend struct {
	Token  string
	Device Spec
}

// Name returns the registry token.
func (b SpecBackend) Name() string { return b.Token }

// Spec returns the fixed device description.
func (b SpecBackend) Spec() Spec { return b.Device }

// Package gpu models the GPU device vDNN runs on: a serial compute engine
// (the SM array, which DNN kernels saturate one at a time due to layer-wise
// dependencies), two DMA copy engines (Maxwell GM200 has independent D2H and
// H2D engines, which is what lets offload and prefetch overlap with
// compute), device DRAM capacity and bandwidth, and a power model.
package gpu

import (
	"fmt"
	"strings"

	"vdnn/internal/pcie"
	"vdnn/internal/sim"
)

// MemoryKind classifies a device's memory technology. Like pcie.LinkClass
// it is catalog metadata: the cost model reads only DRAMBps/MemBytes, so the
// kind never changes a schedule — it describes the capacity/bandwidth point
// (GDDR vs HBM stacks vs the accelerator-resident DRAM of a near-memory
// design) for catalog consumers.
type MemoryKind int

const (
	// GDDR is the zero value: conventional off-package graphics DRAM.
	GDDR MemoryKind = iota
	// HBM covers on-package stacked high-bandwidth memory (P100-class).
	HBM
	// NearDRAM marks a near/in-memory accelerator whose compute sits inside
	// the DRAM stack itself (RAPIDNN-style).
	NearDRAM
)

var memoryKindNames = map[MemoryKind]string{
	GDDR:     "gddr",
	HBM:      "hbm",
	NearDRAM: "near-dram",
}

// String returns the canonical lowercase token.
func (k MemoryKind) String() string {
	if s, ok := memoryKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("MemoryKind(%d)", int(k))
}

// MarshalText emits the canonical token, making MemoryKind JSON-friendly.
func (k MemoryKind) MarshalText() ([]byte, error) {
	s, ok := memoryKindNames[k]
	if !ok {
		return nil, fmt.Errorf("gpu: unknown memory kind %d", int(k))
	}
	return []byte(s), nil
}

// UnmarshalText parses a canonical token, case-insensitively.
func (k *MemoryKind) UnmarshalText(text []byte) error {
	t := strings.ToLower(string(text))
	for kk, s := range memoryKindNames {
		if s == t {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("gpu: unknown memory kind %q (have gddr, hbm, near-dram)", string(text))
}

// Spec is a GPU hardware description. All cost models are parameterized on
// it so "what-if" devices (more memory, NVLINK, ...) are one literal away.
type Spec struct {
	Name string `json:"name"`

	PeakFlops float64 `json:"peak_flops"` // single-precision FLOP/s
	DRAMBps   float64 `json:"dram_bps"`   // peak DRAM bandwidth, bytes/s
	// EffDRAMFrac is the fraction of peak DRAM bandwidth streaming kernels
	// achieve in practice (copy/transform kernels never hit theoretical peak).
	EffDRAMFrac float64 `json:"eff_dram_frac"`

	MemBytes      int64 `json:"mem_bytes"`                // physical device memory
	ReservedBytes int64 `json:"reserved_bytes,omitempty"` // CUDA context + cuDNN handle + driver reservation
	L2Bytes       int64 `json:"l2_bytes"`                 // last-level cache, used by the DRAM-traffic model

	// MemKind is the memory technology of the capacity/bandwidth point above;
	// metadata only, never read by the cost model.
	MemKind MemoryKind `json:"mem_kind,omitempty"`

	Link pcie.Link `json:"link"` // host interconnect

	LaunchOverhead sim.Time `json:"launch_overhead"` // host cost of one async launch
	SyncOverhead   sim.Time `json:"sync_overhead"`   // host cost of one blocking synchronization

	Power PowerParams `json:"power"`
}

// PowerParams is a linear power model: idle floor, a compute-engine term, a
// DRAM term proportional to achieved bandwidth, and a per-active-copy-engine
// term. Calibrated so a fully busy Titan X sits near its 250 W TDP.
type PowerParams struct {
	IdleW    float64 `json:"idle_w"`    // board power with an active CUDA context, no work
	ComputeW float64 `json:"compute_w"` // added when the compute engine is busy
	DRAMW    float64 `json:"dram_w"`    // added at 100% of peak DRAM bandwidth, scaled linearly
	CopyW    float64 `json:"copy_w"`    // added per busy copy engine
}

// TitanX returns the paper's evaluation platform: NVIDIA GeForce GTX Titan X
// (Maxwell GM200): 7 TFLOPS single precision, 336 GB/s, 12 GB, PCIe gen3.
func TitanX() Spec {
	return Spec{
		Name:          "NVIDIA Titan X (Maxwell)",
		PeakFlops:     7e12,
		DRAMBps:       336e9,
		EffDRAMFrac:   0.85,
		MemBytes:      12 << 30,
		ReservedBytes: 0, // the paper sizes the cnmem pool to the full physical capacity

		L2Bytes:        3 << 20,
		Link:           pcie.Gen3x16(),
		LaunchOverhead: 5 * sim.Microsecond,
		SyncOverhead:   10 * sim.Microsecond,
		Power: PowerParams{
			IdleW:    80,
			ComputeW: 140,
			DRAMW:    45,
			CopyW:    8,
		},
	}
}

// TitanXNVLink is a what-if Titan X with an NVLINK-class interconnect
// (the paper points at NVLINK as the successor link, Section III-A).
func TitanXNVLink() Spec {
	s := TitanX()
	s.Name = "Titan X + NVLINK 1.0"
	s.Link = pcie.NVLink1()
	return s
}

// GTX980 is the previous-generation Maxwell card (GM204): less compute,
// less bandwidth, and only 4 GB — a device where vDNN matters even for the
// smaller benchmark networks.
func GTX980() Spec {
	s := TitanX()
	s.Name = "NVIDIA GTX 980"
	s.PeakFlops = 4.6e12
	s.DRAMBps = 224e9
	s.MemBytes = 4 << 30
	s.L2Bytes = 2 << 20
	s.Power = PowerParams{IdleW: 60, ComputeW: 100, DRAMW: 35, CopyW: 8}
	return s
}

// TeslaK40 is the Kepler-generation compute card the field trained on
// before Maxwell: 12 GB but far less compute throughput.
func TeslaK40() Spec {
	s := TitanX()
	s.Name = "NVIDIA Tesla K40"
	s.PeakFlops = 4.29e12
	s.DRAMBps = 288e9
	s.MemBytes = 12 << 30
	s.Power = PowerParams{IdleW: 66, ComputeW: 120, DRAMW: 40, CopyW: 8}
	return s
}

// PascalP100 is a forward-looking device for what-if sweeps: more compute,
// HBM2 bandwidth, 16 GB, and an NVLINK host interconnect.
func PascalP100() Spec {
	s := TitanX()
	s.Name = "NVIDIA P100 (NVLINK)"
	s.PeakFlops = 10.6e12
	s.DRAMBps = 732e9
	s.MemBytes = 16 << 30
	s.L2Bytes = 4 << 20
	s.MemKind = HBM
	s.Link = pcie.NVLink1()
	s.Power = PowerParams{IdleW: 90, ComputeW: 160, DRAMW: 40, CopyW: 8}
	return s
}

// RapidNN is a RAPIDNN-style near-memory accelerator profile: compute sits
// inside the DRAM stack, so "offload" traffic moves between banks over an
// on-die fabric at near-DRAM bandwidth — the wire cost of vDNN's eviction is
// almost free, inverting the offload-vs-keep tradeoff the paper evaluates on
// PCIe. Kernel costs differ too: less raw FLOP throughput than a Titan X but
// an order of magnitude more memory bandwidth at a fraction of the board
// power (no GDDR PHYs, no long board traces).
func RapidNN() Spec {
	return Spec{
		Name:           "RAPIDNN near-memory accelerator",
		PeakFlops:      3e12,
		DRAMBps:        1e12,
		EffDRAMFrac:    0.95,
		MemBytes:       8 << 30,
		L2Bytes:        4 << 20,
		MemKind:        NearDRAM,
		Link:           pcie.OnDie(),
		LaunchOverhead: 2 * sim.Microsecond,
		SyncOverhead:   4 * sim.Microsecond,
		Power: PowerParams{
			IdleW:    25,
			ComputeW: 45,
			DRAMW:    18,
			CopyW:    2,
		},
	}
}

// WithMemory returns the spec with a different physical memory size; used by
// the capacity-sweep ablation.
func (s Spec) WithMemory(bytes int64) Spec {
	s.MemBytes = bytes
	return s
}

// PoolBytes is the device memory available to the framework's memory pool:
// physical capacity minus the driver/runtime reservation. vDNN sizes its
// cnmem pool to this value at startup (Section III-B).
func (s Spec) PoolBytes() int64 { return s.MemBytes - s.ReservedBytes }

// EffDRAMBps is the achievable DRAM bandwidth for streaming kernels.
func (s Spec) EffDRAMBps() float64 { return s.DRAMBps * s.EffDRAMFrac }

// Validate checks that the spec is physically sensible.
func (s Spec) Validate() error {
	if s.PeakFlops <= 0 || s.DRAMBps <= 0 {
		return fmt.Errorf("gpu: non-positive throughput in %q", s.Name)
	}
	if s.EffDRAMFrac <= 0 || s.EffDRAMFrac > 1 {
		return fmt.Errorf("gpu: EffDRAMFrac %v out of (0,1] in %q", s.EffDRAMFrac, s.Name)
	}
	if s.PoolBytes() <= 0 || s.ReservedBytes < 0 {
		return fmt.Errorf("gpu: reservation exceeds memory in %q", s.Name)
	}
	if s.L2Bytes <= 0 {
		return fmt.Errorf("gpu: non-positive L2 in %q", s.Name)
	}
	return s.Link.Validate()
}

// Device binds a Spec to a simulation timeline with the standard engine and
// stream layout used by both the baseline and vDNN runtimes. Several devices
// may share one timeline (one event clock) — the data-parallel trainer binds
// N replica devices to a single timeline and, under a shared topology, to a
// pair of shared interconnect channels.
type Device struct {
	Spec Spec
	TL   *sim.Timeline

	// ID is the device's replica index (0 for single-device simulations).
	ID int

	Compute *sim.Engine // SM array
	DMADown *sim.Engine // device-to-host copy engine (offload)
	DMAUp   *sim.Engine // host-to-device copy engine (prefetch)

	StreamCompute *sim.Stream // paper's stream_compute
	StreamMemory  *sim.Stream // paper's stream_memory

	// ChanDown/ChanUp are the shared root-complex channels the device's DMA
	// traffic is arbitrated over, one per direction (PCIe is full duplex).
	// Nil means a dedicated link: transfers take their fixed DMA time.
	ChanDown *sim.SharedChannel
	ChanUp   *sim.SharedChannel

	// UsePageMigration switches host<->device transfers from pinned-memory
	// DMA to demand paging, reproducing the paper's Section II-C argument
	// against page-migration-based virtualization.
	UsePageMigration bool
}

// TransferTime returns the host<->device transfer latency for n bytes under
// the device's configured transfer mode.
func (d *Device) TransferTime(n int64) sim.Time {
	if d.UsePageMigration {
		return d.Spec.Link.PageMigrationTime(n)
	}
	return d.Spec.Link.DMATime(n)
}

// NewDevice creates a device and its own timeline, on a dedicated link.
func NewDevice(spec Spec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return NewDeviceOn(sim.New(spec.LaunchOverhead, spec.SyncOverhead), spec, 0, nil, nil)
}

// NewDeviceOn creates replica id on an existing timeline, optionally behind
// shared root-complex channels (nil channels = dedicated link). All replicas
// of a multi-device simulation share one timeline — one event clock, one
// host issue thread — while each keeps its own engines and streams.
func NewDeviceOn(tl *sim.Timeline, spec Spec, id int, down, up *sim.SharedChannel) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		Spec:          spec,
		TL:            tl,
		ID:            id,
		Compute:       tl.NewEngine("compute"),
		DMADown:       tl.NewEngine("copyD2H"),
		DMAUp:         tl.NewEngine("copyH2D"),
		StreamCompute: tl.NewStream("stream_compute"),
		StreamMemory:  tl.NewStream("stream_memory"),
		ChanDown:      down,
		ChanUp:        up,
	}
}

// Engines returns the device's own engines (a subset of the timeline's when
// several replicas share it).
func (d *Device) Engines() []*sim.Engine {
	return []*sim.Engine{d.Compute, d.DMADown, d.DMAUp}
}

// Ops returns every op executed on this device's engines. When several
// replicas share a timeline this is the device's slice of the schedule; for
// a single device it covers the whole timeline.
func (d *Device) Ops() []*sim.Op {
	var out []*sim.Op
	for _, e := range d.Engines() {
		out = append(out, e.Ops()...)
	}
	return out
}

// Kernel issues a compute kernel on stream_compute.
func (d *Device) Kernel(label string, dur sim.Time, flops, dramBytes int64, deps ...*sim.Op) *sim.Op {
	return d.TL.Issue(&sim.Op{
		Label: label, Kind: sim.OpKernel,
		DurationT: dur, Flops: flops, DRAMBytes: dramBytes,
	}, d.StreamCompute, d.Compute, deps...)
}

// transfer issues one DMA op, arbitrated over the shared channel when the
// device sits behind one (page-migration transfers bypass the DMA engines'
// bulk path and keep their fixed cost).
func (d *Device) transfer(label string, kind sim.OpKind, n int64, s *sim.Stream, e *sim.Engine, ch *sim.SharedChannel, deps ...*sim.Op) *sim.Op {
	op := &sim.Op{Label: label, Kind: kind, BusBytes: n, DRAMBytes: n}
	if ch != nil && !d.UsePageMigration {
		link := d.Spec.Link
		return d.TL.IssueTransfer(op, s, e, ch, n, float64(link.EffBps), link.DMASetup, deps...)
	}
	op.DurationT = d.TransferTime(n)
	return d.TL.Issue(op, s, e, deps...)
}

// Offload issues a D2H transfer of n bytes on stream_memory.
func (d *Device) Offload(label string, n int64, deps ...*sim.Op) *sim.Op {
	return d.transfer(label, sim.OpCopyD2H, n, d.StreamMemory, d.DMADown, d.ChanDown, deps...)
}

// Prefetch issues an H2D transfer of n bytes on stream_memory.
func (d *Device) Prefetch(label string, n int64, deps ...*sim.Op) *sim.Op {
	return d.transfer(label, sim.OpCopyH2D, n, d.StreamMemory, d.DMAUp, d.ChanUp, deps...)
}

// Compress issues a codec pass on the offload path: the D2H DMA engine is
// busy for dur reading rawBytes from DRAM before the compressed transfer it
// feeds (the cDMA engine lives inside the DMA engine, not on the SMs).
func (d *Device) Compress(label string, dur sim.Time, rawBytes int64, deps ...*sim.Op) *sim.Op {
	return d.TL.Issue(&sim.Op{
		Label: label, Kind: sim.OpCompress,
		DurationT: dur, DRAMBytes: rawBytes,
	}, d.StreamMemory, d.DMADown, deps...)
}

// Decompress issues a codec pass on the prefetch path: the H2D DMA engine is
// busy for dur expanding a landed transfer back to rawBytes in DRAM. Ordering
// behind the transfer comes from stream_memory's program order; consumers
// depending on the returned op pay the decompression before use.
func (d *Device) Decompress(label string, dur sim.Time, rawBytes int64, deps ...*sim.Op) *sim.Op {
	return d.TL.Issue(&sim.Op{
		Label: label, Kind: sim.OpDecompress,
		DurationT: dur, DRAMBytes: rawBytes,
	}, d.StreamMemory, d.DMAUp, deps...)
}

// p2p issues one leg of a peer-to-peer transfer (gradient all-reduce).
// Peer DMA uses the copy engines and crosses the root complex like any bulk
// transfer, but never demand-pages, so it keeps DMA cost even under the
// page-migration ablation.
func (d *Device) p2p(label string, n int64, s *sim.Stream, e *sim.Engine, ch *sim.SharedChannel, deps ...*sim.Op) *sim.Op {
	op := &sim.Op{Label: label, Kind: sim.OpCopyP2P, BusBytes: n, DRAMBytes: n}
	link := d.Spec.Link
	if ch != nil {
		return d.TL.IssueTransfer(op, s, e, ch, n, float64(link.EffBps), link.DMASetup, deps...)
	}
	op.DurationT = link.DMATime(n)
	return d.TL.Issue(op, s, e, deps...)
}

// PeerSend issues a P2P transfer toward a peer device (outbound direction,
// sharing the D2H engine and the root complex's down channel).
func (d *Device) PeerSend(label string, n int64, s *sim.Stream, deps ...*sim.Op) *sim.Op {
	return d.p2p(label, n, s, d.DMADown, d.ChanDown, deps...)
}

// PeerRecv issues a P2P transfer from a peer device (inbound direction,
// sharing the H2D engine and the root complex's up channel).
func (d *Device) PeerRecv(label string, n int64, s *sim.Stream, deps ...*sim.Op) *sim.Op {
	return d.p2p(label, n, s, d.DMAUp, d.ChanUp, deps...)
}

// stage issues one leg of an inter-stage pipeline transfer (boundary
// activation forward, boundary gradient backward). Like peer DMA it uses the
// copy engines, crosses the root complex like any bulk transfer, and never
// demand-pages — but it is a distinct op kind so pipeline traffic is never
// conflated with gradient all-reduce traffic in metrics.
func (d *Device) stage(label string, n int64, s *sim.Stream, e *sim.Engine, ch *sim.SharedChannel, deps ...*sim.Op) *sim.Op {
	op := &sim.Op{Label: label, Kind: sim.OpCopyStage, BusBytes: n, DRAMBytes: n}
	link := d.Spec.Link
	if ch != nil {
		return d.TL.IssueTransfer(op, s, e, ch, n, float64(link.EffBps), link.DMASetup, deps...)
	}
	op.DurationT = link.DMATime(n)
	return d.TL.Issue(op, s, e, deps...)
}

// StageSend issues an inter-stage transfer toward the next pipeline stage
// (outbound: D2H engine, root complex down channel).
func (d *Device) StageSend(label string, n int64, s *sim.Stream, deps ...*sim.Op) *sim.Op {
	return d.stage(label, n, s, d.DMADown, d.ChanDown, deps...)
}

// StageRecv issues an inter-stage transfer from the previous pipeline stage
// (inbound: H2D engine, root complex up channel).
func (d *Device) StageRecv(label string, n int64, s *sim.Stream, deps ...*sim.Op) *sim.Op {
	return d.stage(label, n, s, d.DMAUp, d.ChanUp, deps...)
}

// BusTraffic returns total bytes this device moved over the interconnect,
// split by direction (offload, prefetch). All-reduce (P2P) traffic is
// counted separately by the trainer.
func (d *Device) BusTraffic() (down, up int64) {
	for _, e := range d.Engines() {
		for _, o := range e.Ops() {
			switch o.Kind {
			case sim.OpCopyD2H:
				down += o.BusBytes
			case sim.OpCopyH2D:
				up += o.BusBytes
			}
		}
	}
	return down, up
}

package gpu

import (
	"testing"

	"vdnn/internal/sim"
)

func TestTitanXSpec(t *testing.T) {
	s := TitanX()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.PeakFlops != 7e12 {
		t.Errorf("peak flops = %v, want 7e12", s.PeakFlops)
	}
	if s.DRAMBps != 336e9 {
		t.Errorf("dram bw = %v, want 336e9", s.DRAMBps)
	}
	if s.MemBytes != 12<<30 {
		t.Errorf("mem = %d, want 12 GiB", s.MemBytes)
	}
	if s.PoolBytes() > s.MemBytes || s.PoolBytes() <= 0 {
		t.Errorf("pool bytes %d not in (0, mem]", s.PoolBytes())
	}
}

func TestSpecValidateCatchesErrors(t *testing.T) {
	bad := TitanX()
	bad.ReservedBytes = bad.MemBytes + 1
	if err := bad.Validate(); err == nil {
		t.Error("reservation > memory not caught")
	}
	bad2 := TitanX()
	bad2.EffDRAMFrac = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("EffDRAMFrac > 1 not caught")
	}
	bad3 := TitanX()
	bad3.PeakFlops = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero flops not caught")
	}
	bad4 := TitanX()
	bad4.L2Bytes = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero L2 not caught")
	}
}

func TestWithMemory(t *testing.T) {
	s := TitanX().WithMemory(24 << 30)
	if s.MemBytes != 24<<30 {
		t.Fatalf("WithMemory failed: %d", s.MemBytes)
	}
	if TitanX().MemBytes != 12<<30 {
		t.Fatal("WithMemory mutated the base spec")
	}
}

func TestNVLinkVariant(t *testing.T) {
	s := TitanXNVLink()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Link.EffBps <= TitanX().Link.EffBps {
		t.Fatal("NVLink variant should have faster link")
	}
}

func TestDeviceOverlapSemantics(t *testing.T) {
	d := NewDevice(TitanX())
	d.Spec.LaunchOverhead = 0
	// Recreate with zero overheads for exact arithmetic.
	spec := TitanX()
	spec.LaunchOverhead, spec.SyncOverhead = 0, 0
	d = NewDevice(spec)

	k := d.Kernel("FWD(1)", 10*sim.Millisecond, 1e9, 1e6)
	off := d.Offload("OFF(1)", 64<<20) // 64 MB / 12.8 GB/s = 5 ms + setup
	if off.Start != 0 {
		t.Fatalf("offload start %v, want 0 (parallel with kernel)", off.Start)
	}
	if off.End >= k.End {
		t.Fatalf("offload should finish before the 10ms kernel: off end %v", off.End)
	}
	pre := d.Prefetch("PRE(1)", 64<<20)
	// Prefetch is on stream_memory after the offload (stream order), but on a
	// different engine; stream order still serializes it.
	if pre.Start < off.End {
		t.Fatalf("stream order violated: prefetch start %v before offload end %v", pre.Start, off.End)
	}
	if err := d.TL.Validate(); err != nil {
		t.Fatal(err)
	}
	down, up := d.BusTraffic()
	if down != 64<<20 || up != 64<<20 {
		t.Fatalf("bus traffic down=%d up=%d, want 64 MiB each", down, up)
	}
}

func TestCopyEnginesRunConcurrently(t *testing.T) {
	spec := TitanX()
	spec.LaunchOverhead, spec.SyncOverhead = 0, 0
	d := NewDevice(spec)
	// Issue D2H and H2D on *different* streams to show the engines themselves
	// are concurrent (dual copy engines on GM200).
	s2 := d.TL.NewStream("aux")
	a := d.TL.Issue(&sim.Op{Label: "off", Kind: sim.OpCopyD2H, DurationT: d.Spec.Link.DMATime(128 << 20), BusBytes: 128 << 20}, d.StreamMemory, d.DMADown)
	b := d.TL.Issue(&sim.Op{Label: "pre", Kind: sim.OpCopyH2D, DurationT: d.Spec.Link.DMATime(128 << 20), BusBytes: 128 << 20}, s2, d.DMAUp)
	if b.Start != 0 || a.Start != 0 {
		t.Fatalf("copy engines should run concurrently: a=%v b=%v", a.Start, b.Start)
	}
}

func TestPowerIdle(t *testing.T) {
	d := NewDevice(TitanX())
	p := d.MeasurePower(0, sim.Second)
	if p.AvgW != d.Spec.Power.IdleW || p.MaxW != d.Spec.Power.IdleW {
		t.Fatalf("idle power = %+v, want idle %v", p, d.Spec.Power.IdleW)
	}
	// Degenerate window.
	p = d.MeasurePower(5, 5)
	if p.AvgW != d.Spec.Power.IdleW {
		t.Fatalf("empty window avg = %v", p.AvgW)
	}
}

func TestPowerBusyKernel(t *testing.T) {
	spec := TitanX()
	spec.LaunchOverhead, spec.SyncOverhead = 0, 0
	d := NewDevice(spec)
	// One kernel for the full second at 50% of peak DRAM bandwidth.
	bytes := int64(0.5 * spec.DRAMBps)
	d.Kernel("k", sim.Second, 1e12, bytes)
	p := d.MeasurePower(0, sim.Second)
	want := spec.Power.IdleW + spec.Power.ComputeW + 0.5*spec.Power.DRAMW
	if diff := p.AvgW - want; diff > 0.5 || diff < -0.5 {
		t.Fatalf("busy power = %.1f, want %.1f", p.AvgW, want)
	}
	if p.MaxW < p.AvgW {
		t.Fatalf("max %v < avg %v", p.MaxW, p.AvgW)
	}
}

func TestPowerOffloadRaisesPeak(t *testing.T) {
	spec := TitanX()
	spec.LaunchOverhead, spec.SyncOverhead = 0, 0

	// Run 1: kernel only.
	d1 := NewDevice(spec)
	d1.Kernel("k", 100*sim.Millisecond, 1e12, 20e9)
	p1 := d1.MeasurePower(0, 100*sim.Millisecond)

	// Run 2: same kernel with a concurrent offload (vDNN's extra traffic).
	d2 := NewDevice(spec)
	d2.Kernel("k", 100*sim.Millisecond, 1e12, 20e9)
	d2.Offload("off", 1<<30)
	p2 := d2.MeasurePower(0, 100*sim.Millisecond)

	if p2.MaxW <= p1.MaxW {
		t.Fatalf("offload should raise peak power: %.1f vs %.1f", p2.MaxW, p1.MaxW)
	}
	// The paper reports 1-7% max power overhead for vDNN's traffic; with one
	// copy engine active the model must stay in single-digit percent.
	overhead := (p2.MaxW - p1.MaxW) / p1.MaxW
	if overhead <= 0 || overhead > 0.10 {
		t.Fatalf("max power overhead = %.1f%%, want (0, 10]%%", overhead*100)
	}
}

func TestPowerPartialWindow(t *testing.T) {
	spec := TitanX()
	spec.LaunchOverhead, spec.SyncOverhead = 0, 0
	d := NewDevice(spec)
	d.Kernel("k", 100*sim.Millisecond, 1e12, 0)
	// Window covering half busy, half idle.
	p := d.MeasurePower(50*sim.Millisecond, 150*sim.Millisecond)
	want := spec.Power.IdleW + 0.5*spec.Power.ComputeW
	if diff := p.AvgW - want; diff > 0.5 || diff < -0.5 {
		t.Fatalf("partial window avg = %.1f, want %.1f", p.AvgW, want)
	}
}

func TestTitanXFullLoadNearTDP(t *testing.T) {
	// Sanity-check calibration: compute + full DRAM + both copy engines
	// should land near (not wildly above) the 250 W board TDP.
	p := TitanX().Power
	full := p.IdleW + p.ComputeW + p.DRAMW + 2*p.CopyW
	if full < 240 || full > 300 {
		t.Fatalf("full load power %.0f W outside [240,300]", full)
	}
}

package gpu

import (
	"fmt"
	"sort"
	"sync"
)

// The named device catalog backs every surface that addresses accelerators
// by a short stable token instead of a Spec literal: CLI flags, the HTTP
// daemon's JSON requests, and sweep configuration files. It stores Backends
// (see backend.go), so registered entries may be fixed profiles or derive
// their Spec on lookup. The built-in names cover the paper's evaluation and
// what-if devices plus the near-memory accelerator profile; Register and
// RegisterBackend add process-wide custom entries (per-simulator overlays
// live in the public package).

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{
		"titanx":        SpecBackend{"titanx", TitanX()},
		"titanx-nvlink": SpecBackend{"titanx-nvlink", TitanXNVLink()},
		"gtx980":        SpecBackend{"gtx980", GTX980()},
		"teslak40":      SpecBackend{"teslak40", TeslaK40()},
		"p100":          SpecBackend{"p100", PascalP100()},
		"rapidnn":       SpecBackend{"rapidnn", RapidNN()},
	}
)

// ByName materializes the registered backend's device spec for a name like
// "titanx". This is the lookup every cost-model consumer uses; BackendByName
// returns the Backend itself.
func ByName(name string) (Spec, bool) {
	b, ok := BackendByName(name)
	if !ok {
		return Spec{}, false
	}
	return b.Spec(), true
}

// BackendByName returns the registered backend for a name like "titanx".
func BackendByName(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BackendNames is Names under the catalog-API name.
func BackendNames() []string { return Names() }

// Register adds (or replaces) a named device spec, wrapping it in a
// SpecBackend. The spec must validate.
func Register(name string, s Spec) error {
	if name == "" {
		return fmt.Errorf("gpu: empty registry name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	return RegisterBackend(SpecBackend{Token: name, Device: s})
}

// RegisterBackend adds (or replaces) a backend under its own Name. The
// materialized spec must validate.
func RegisterBackend(b Backend) error {
	if b == nil || b.Name() == "" {
		return fmt.Errorf("gpu: backend without a registry name")
	}
	if err := b.Spec().Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[b.Name()] = b
	return nil
}

package gpu

import (
	"fmt"
	"sort"
	"sync"
)

// The named device registry backs every surface that addresses GPUs by a
// short stable token instead of a Spec literal: CLI flags, the HTTP daemon's
// JSON requests, and sweep configuration files. The built-in names cover the
// paper's evaluation and what-if devices; Register adds process-wide custom
// entries (per-simulator overlays live in the public package).

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{
		"titanx":        TitanX(),
		"titanx-nvlink": TitanXNVLink(),
		"gtx980":        GTX980(),
		"teslak40":      TeslaK40(),
		"p100":          PascalP100(),
	}
)

// ByName returns the registered device spec for a name like "titanx".
func ByName(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists the registered device names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Register adds (or replaces) a named device spec. The spec must validate.
func Register(name string, s Spec) error {
	if name == "" {
		return fmt.Errorf("gpu: empty registry name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = s
	return nil
}

package gpu

import (
	"sort"

	"vdnn/internal/sim"
)

// PowerStats summarizes simulated board power over a time window, mirroring
// what the paper collects with nvprof (Section V-D): the time-weighted
// average and the instantaneous maximum.
type PowerStats struct {
	AvgW float64
	MaxW float64
}

// MeasurePower evaluates the device's linear power model over [start, end).
// The instantaneous power in any interval is determined by which engines are
// busy and by the achieved DRAM bandwidth of the ops running there, so the
// measurement sweeps the op boundaries.
func (d *Device) MeasurePower(start, end sim.Time) PowerStats {
	if end <= start {
		return PowerStats{AvgW: d.Spec.Power.IdleW, MaxW: d.Spec.Power.IdleW}
	}
	type edge struct {
		t     sim.Time
		delta int // +1 op starts, -1 op ends
		op    *sim.Op
	}
	ops := d.Ops()
	edges := make([]edge, 0, 2*len(ops))
	for _, o := range ops {
		if o.DurationT == 0 || o.End <= start || o.Start >= end {
			continue
		}
		s, e := o.Start, o.End
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		edges = append(edges, edge{s, +1, o}, edge{e, -1, o})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // process ends before starts at ties
	})

	p := d.Spec.Power
	// The active set is a slice kept sorted by op ID, not a map: the
	// per-segment bandwidth sum below adds floats in iteration order, and map
	// order would make the rounding — and so the reported watts — vary from
	// run to run.
	active := make([]*sim.Op, 0, 16)
	add := func(o *sim.Op) {
		i := sort.Search(len(active), func(i int) bool { return active[i].ID >= o.ID })
		active = append(active, nil)
		copy(active[i+1:], active[i:])
		active[i] = o
	}
	remove := func(o *sim.Op) {
		i := sort.Search(len(active), func(i int) bool { return active[i].ID >= o.ID })
		if i < len(active) && active[i] == o {
			active = append(active[:i], active[i+1:]...)
		}
	}
	power := func() float64 {
		w := p.IdleW
		computeBusy := false
		var dramBps float64
		copies := 0
		for _, o := range active {
			switch o.Kind {
			case sim.OpKernel:
				computeBusy = true
			case sim.OpCopyD2H, sim.OpCopyH2D, sim.OpCopyP2P, sim.OpCopyStage, sim.OpCompress, sim.OpDecompress:
				copies++ // codec passes keep their DMA engine busy
			}
			if o.DurationT > 0 {
				dramBps += float64(o.DRAMBytes) / o.DurationT.Seconds()
			}
		}
		if computeBusy {
			w += p.ComputeW
		}
		frac := dramBps / d.Spec.DRAMBps
		if frac > 1 {
			frac = 1
		}
		w += p.DRAMW * frac
		w += p.CopyW * float64(copies)
		return w
	}

	stats := PowerStats{MaxW: p.IdleW}
	var energy float64 // watt-seconds
	cursor := start
	i := 0
	for i < len(edges) {
		t := edges[i].t
		if t > cursor {
			w := power()
			energy += w * (t - cursor).Seconds()
			if w > stats.MaxW {
				stats.MaxW = w
			}
			cursor = t
		}
		for i < len(edges) && edges[i].t == t {
			if edges[i].delta > 0 {
				add(edges[i].op)
			} else {
				remove(edges[i].op)
			}
			i++
		}
	}
	if cursor < end {
		w := power()
		energy += w * (end - cursor).Seconds()
		if w > stats.MaxW {
			stats.MaxW = w
		}
	}
	stats.AvgW = energy / (end - start).Seconds()
	return stats
}

package gpu

import (
	"sort"

	"vdnn/internal/sim"
)

// PowerStats summarizes simulated board power over a time window, mirroring
// what the paper collects with nvprof (Section V-D): the time-weighted
// average and the instantaneous maximum.
type PowerStats struct {
	AvgW float64 `json:"avg_w"`
	MaxW float64 `json:"max_w"`
}

// EnergyStats is the per-op energy breakdown of the same window, in joules:
// the power timeline's integral attributed to what the board was doing.
// Every watt of every segment lands in exactly one bucket, so
// TotalJ() == AvgW x window (the MeasurePower integral) by construction —
// the conservation invariant the energy tests pin.
//
//   - ComputeJ: the compute-engine term plus the DRAM term driven by kernel
//     traffic.
//   - DMAJ: busy copy-engine terms plus the DRAM term driven by transfer
//     traffic (offload, prefetch, peer, inter-stage).
//   - CodecJ: the compressing-DMA passes' engine and DRAM terms.
//   - IdleJ: the idle floor, paid for the whole window regardless of work.
type EnergyStats struct {
	ComputeJ float64 `json:"compute_j"`
	DMAJ     float64 `json:"dma_j"`
	CodecJ   float64 `json:"codec_j"`
	IdleJ    float64 `json:"idle_j"`
}

// TotalJ is the whole-window energy, equal to the power-timeline integral.
func (e EnergyStats) TotalJ() float64 { return e.ComputeJ + e.DMAJ + e.CodecJ + e.IdleJ }

// Add returns the component-wise sum; multi-device results aggregate
// per-device breakdowns with it.
func (e EnergyStats) Add(o EnergyStats) EnergyStats {
	return EnergyStats{
		ComputeJ: e.ComputeJ + o.ComputeJ,
		DMAJ:     e.DMAJ + o.DMAJ,
		CodecJ:   e.CodecJ + o.CodecJ,
		IdleJ:    e.IdleJ + o.IdleJ,
	}
}

// MeasurePower evaluates the device's linear power model over [start, end).
func (d *Device) MeasurePower(start, end sim.Time) PowerStats {
	s, _ := d.MeasurePowerEnergy(start, end)
	return s
}

// MeasurePowerEnergy evaluates the linear power model over [start, end) and
// attributes the same timeline's energy to compute/DMA/codec/idle. The
// instantaneous power in any interval is determined by which engines are
// busy and by the achieved DRAM bandwidth of the ops running there, so the
// measurement sweeps the op boundaries; both results come from one sweep and
// the PowerStats arithmetic is exactly the historical MeasurePower's, so
// adding the breakdown changed no reported watt.
func (d *Device) MeasurePowerEnergy(start, end sim.Time) (PowerStats, EnergyStats) {
	if end <= start {
		return PowerStats{AvgW: d.Spec.Power.IdleW, MaxW: d.Spec.Power.IdleW}, EnergyStats{}
	}
	type edge struct {
		t     sim.Time
		delta int // +1 op starts, -1 op ends
		op    *sim.Op
	}
	ops := d.Ops()
	edges := make([]edge, 0, 2*len(ops))
	for _, o := range ops {
		if o.DurationT == 0 || o.End <= start || o.Start >= end {
			continue
		}
		s, e := o.Start, o.End
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		edges = append(edges, edge{s, +1, o}, edge{e, -1, o})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // process ends before starts at ties
	})

	p := d.Spec.Power
	// The active set is a slice kept sorted by op ID, not a map: the
	// per-segment bandwidth sum below adds floats in iteration order, and map
	// order would make the rounding — and so the reported watts — vary from
	// run to run.
	active := make([]*sim.Op, 0, 16)
	add := func(o *sim.Op) {
		i := sort.Search(len(active), func(i int) bool { return active[i].ID >= o.ID })
		active = append(active, nil)
		copy(active[i+1:], active[i:])
		active[i] = o
	}
	remove := func(o *sim.Op) {
		i := sort.Search(len(active), func(i int) bool { return active[i].ID >= o.ID })
		if i < len(active) && active[i] == o {
			active = append(active[:i], active[i+1:]...)
		}
	}
	// power returns the segment's total watts — computed with the identical
	// accumulation the historical MeasurePower used — plus the above-idle
	// watts attributed to each category. The DRAM term is one clamped total
	// (DRAMW x min(1, sum bps / peak)); its attribution splits it in
	// proportion to each category's share of the bandwidth sum, so the split
	// is exact even when the clamp engages.
	power := func() (w, computeW, dmaW, codecW float64) {
		w = p.IdleW
		computeBusy := false
		var dramBps float64
		copies := 0
		var kernelBps, copyBps, codecBps float64
		nCopy, nCodec := 0, 0
		for _, o := range active {
			var bps float64
			if o.DurationT > 0 {
				bps = float64(o.DRAMBytes) / o.DurationT.Seconds()
			}
			switch o.Kind {
			case sim.OpKernel:
				computeBusy = true
				kernelBps += bps
			case sim.OpCompress, sim.OpDecompress:
				copies++ // codec passes keep their DMA engine busy
				nCodec++
				codecBps += bps
			case sim.OpCopyD2H, sim.OpCopyH2D, sim.OpCopyP2P, sim.OpCopyStage:
				copies++
				nCopy++
				copyBps += bps
			}
			dramBps += bps
		}
		if computeBusy {
			w += p.ComputeW
			computeW = p.ComputeW
		}
		frac := dramBps / d.Spec.DRAMBps
		if frac > 1 {
			frac = 1
		}
		w += p.DRAMW * frac
		w += p.CopyW * float64(copies)
		dmaW = p.CopyW * float64(nCopy)
		codecW = p.CopyW * float64(nCodec)
		if catBps := kernelBps + copyBps + codecBps; catBps > 0 {
			dram := p.DRAMW * frac
			computeW += dram * kernelBps / catBps
			dmaW += dram * copyBps / catBps
			codecW += dram * codecBps / catBps
		}
		return w, computeW, dmaW, codecW
	}

	stats := PowerStats{MaxW: p.IdleW}
	var es EnergyStats
	var energy float64 // watt-seconds
	account := func(dt sim.Time) {
		w, cw, dw, xw := power()
		s := dt.Seconds()
		energy += w * s
		es.IdleJ += p.IdleW * s
		es.ComputeJ += cw * s
		es.DMAJ += dw * s
		es.CodecJ += xw * s
		if w > stats.MaxW {
			stats.MaxW = w
		}
	}
	cursor := start
	i := 0
	for i < len(edges) {
		t := edges[i].t
		if t > cursor {
			account(t - cursor)
			cursor = t
		}
		for i < len(edges) && edges[i].t == t {
			if edges[i].delta > 0 {
				add(edges[i].op)
			} else {
				remove(edges[i].op)
			}
			i++
		}
	}
	if cursor < end {
		account(end - cursor)
	}
	stats.AvgW = energy / (end - start).Seconds()
	return stats, es
}

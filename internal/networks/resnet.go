package networks

import (
	"fmt"

	"vdnn/internal/dnn"
	"vdnn/internal/tensor"
)

// Residual networks — the "more than a hundred convolutional layers"
// ImageNet winner the paper's introduction anticipates (He et al. [15]).
// ResNets exercise the graph machinery differently from GoogLeNet: skip
// connections join by elementwise addition, whose backward pass distributes
// the output gradient to both branches as views (dnn.Tensor.GradShare), and
// every convolution is followed by batch normalization.

// bottleneck appends one ResNet bottleneck block: 1x1 reduce, 3x3, 1x1
// expand (each with BN), a projection shortcut when the shape changes, and
// the residual addition.
func bottleneck(b *dnn.Builder, name string, x *dnn.Tensor, mid, out, stride int) *dnn.Tensor {
	identity := x
	if stride != 1 || x.Shape.C != out {
		identity = b.Conv(x, name+"/ds_conv", out, 1, stride, 0)
		identity = b.BatchNormLayer(identity, name+"/ds_bn")
	}
	y := b.Conv(x, name+"/conv1", mid, 1, stride, 0)
	y = b.BatchNormLayer(y, name+"/bn1")
	y = b.ReLU(y, name+"/relu1")
	y = b.Conv(y, name+"/conv2", mid, 3, 1, 1)
	y = b.BatchNormLayer(y, name+"/bn2")
	y = b.ReLU(y, name+"/relu2")
	y = b.Conv(y, name+"/conv3", out, 1, 1, 0)
	y = b.BatchNormLayer(y, name+"/bn3")
	y = b.AddJoin(name+"/add", identity, y)
	y = b.ReLU(y, name+"/relu_out")
	return y
}

// resnet builds a bottleneck ResNet with the given per-stage block counts.
func resnet(name string, batch int, blocks [4]int) *dnn.Network {
	b := dnn.NewBuilder(name, batch, tensor.Float32)
	x := b.Input(3, 224, 224)
	x = b.Conv(x, "conv1", 64, 7, 2, 3)
	x = b.BatchNormLayer(x, "bn1")
	x = b.ReLU(x, "relu1")
	x = b.MaxPool(x, "pool1", 3, 2, 1)

	mids := [4]int{64, 128, 256, 512}
	outs := [4]int{256, 512, 1024, 2048}
	for stage := 0; stage < 4; stage++ {
		for i := 0; i < blocks[stage]; i++ {
			stride := 1
			if i == 0 && stage > 0 {
				stride = 2
			}
			x = bottleneck(b, fmt.Sprintf("c%d_%d", stage+2, i+1), x, mids[stage], outs[stage], stride)
		}
	}
	x = b.AvgPool(x, "avgpool", 7, 1, 0)
	x = b.FC(x, "fc", 1000)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

// ResNet50 builds ResNet-50 (3+4+6+3 bottleneck blocks).
func ResNet50(batch int) *dnn.Network {
	return resnet(fmt.Sprintf("ResNet-50 (%d)", batch), batch, [4]int{3, 4, 6, 3})
}

// ResNet101 builds ResNet-101 (3+4+23+3 bottleneck blocks).
func ResNet101(batch int) *dnn.Network {
	return resnet(fmt.Sprintf("ResNet-101 (%d)", batch), batch, [4]int{3, 4, 23, 3})
}

// ResNet152 builds ResNet-152 (3+8+36+3 bottleneck blocks) — the
// 151-convolution ImageNet winner contemporary with the paper.
func ResNet152(batch int) *dnn.Network {
	return resnet(fmt.Sprintf("ResNet-152 (%d)", batch), batch, [4]int{3, 8, 36, 3})
}

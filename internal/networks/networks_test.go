package networks

import (
	"strings"
	"testing"

	"vdnn/internal/dnn"
	"vdnn/internal/tensor"
)

func TestAlexNetShapes(t *testing.T) {
	n := AlexNet(128)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	if s.ConvLayers != 5 || s.FCLayers != 3 {
		t.Fatalf("AlexNet = %d CONV + %d FC, want 5+3", s.ConvLayers, s.FCLayers)
	}
	// conv1 out 55x55, pool5 out 256x6x6 -> fc6 input 9216.
	var fc6 *dnn.Layer
	for _, l := range n.Layers {
		if l.Name == "fc6" {
			fc6 = l
		}
	}
	if fc6.In().Shape.PerSample() != 9216 {
		t.Fatalf("fc6 input features = %d, want 9216", fc6.In().Shape.PerSample())
	}
	// AlexNet weights ~61M params: (244 MB in fp32) within 15%.
	params := n.TotalWeightBytes() / 4
	if params < 55e6 || params > 70e6 {
		t.Fatalf("AlexNet params = %d, want ~61M", params)
	}
}

func TestOverFeatShapes(t *testing.T) {
	n := OverFeat(128)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	var fc6 *dnn.Layer
	for _, l := range n.Layers {
		if l.Name == "fc6" {
			fc6 = l
		}
	}
	// pool5: 1024 x 6 x 6 = 36864 features.
	if fc6.In().Shape.PerSample() != 36864 {
		t.Fatalf("fc6 input = %d, want 36864", fc6.In().Shape.PerSample())
	}
	// OverFeat fast has ~145M params.
	params := n.TotalWeightBytes() / 4
	if params < 130e6 || params > 160e6 {
		t.Fatalf("OverFeat params = %d, want ~145M", params)
	}
}

func TestGoogLeNetShapes(t *testing.T) {
	n := GoogLeNet(128)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	// 2 stem convs + 9 modules * 6 convs = 56 + ... : stem has conv1,
	// conv2_reduce, conv2 = 3 convs; 9*6 = 54; total 57.
	if s.ConvLayers != 57 {
		t.Fatalf("GoogLeNet conv layers = %d, want 57", s.ConvLayers)
	}
	if s.FCLayers != 1 {
		t.Fatalf("GoogLeNet FC layers = %d, want 1", s.FCLayers)
	}
	// ~7M params (6.8-7.2M range plus LRN-free stem variations).
	params := n.TotalWeightBytes() / 4
	if params < 5e6 || params > 8e6 {
		t.Fatalf("GoogLeNet params = %d, want ~7M", params)
	}
	// Check inception output channel progression at the known module joins.
	wantC := map[string]int{
		"inception_3a/output": 256, "inception_3b/output": 480,
		"inception_4a/output": 512, "inception_4e/output": 832,
		"inception_5b/output": 1024,
	}
	for _, l := range n.Layers {
		if c, ok := wantC[l.Name]; ok && l.Output.Shape.C != c {
			t.Errorf("%s channels = %d, want %d", l.Name, l.Output.Shape.C, c)
		}
	}
	// Spatial pyramid: 3x modules at 28, 4x at 14, 5x at 7 after final pool.
	for _, l := range n.Layers {
		if l.Name == "inception_3a/output" && l.Output.Shape.H != 28 {
			t.Errorf("3a spatial = %d, want 28", l.Output.Shape.H)
		}
		if l.Name == "inception_4a/output" && l.Output.Shape.H != 14 {
			t.Errorf("4a spatial = %d, want 14", l.Output.Shape.H)
		}
		if l.Name == "inception_5b/output" && l.Output.Shape.H != 7 {
			t.Errorf("5b spatial = %d, want 7", l.Output.Shape.H)
		}
	}
}

func TestGoogLeNetForkRefcounts(t *testing.T) {
	n := GoogLeNet(32)
	// Every inception module input feeds 4 branches (paper Fig 3's fork):
	// 3 convs + 1 pool.
	forks := 0
	for _, tt := range n.Tensors {
		if len(tt.Consumer) == 4 {
			forks++
		}
	}
	if forks < 9 {
		t.Fatalf("inception forks with refcount 4 = %d, want >= 9", forks)
	}
}

func TestVGG16Shapes(t *testing.T) {
	n := VGG16(256)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	// VGG Model D: 13 CONV + 3 FC (see the package comment on why Model D).
	if s.ConvLayers != 13 || s.FCLayers != 3 {
		t.Fatalf("VGG-16 = %d CONV + %d FC, want 13+3", s.ConvLayers, s.FCLayers)
	}
	// fc6 reads 512x7x7 = 25088 features.
	for _, l := range n.Layers {
		if l.Name == "fc6" && l.In().Shape.PerSample() != 25088 {
			t.Fatalf("fc6 in = %d, want 25088", l.In().Shape.PerSample())
		}
	}
	// VGG-16 Model D weights: ~138M params.
	params := n.TotalWeightBytes() / 4
	if params < 133e6 || params > 144e6 {
		t.Fatalf("VGG params = %d, want ~138M", params)
	}
	// Feature maps at batch 256 must be in the paper's ballpark (~14.5 GB;
	// the dominant share of the 28 GB total allocation).
	fm := n.FeatureMapBytes()
	if fm < 13<<30 || fm > 16<<30 {
		t.Fatalf("VGG-16(256) feature maps = %s, want ~14.5 GB", tensor.FormatBytes(fm))
	}
	// conv1_2's buffer: 256x64x224x224 = 3136 MiB, the paper's canonical
	// largest feature map.
	var maxFM int64
	for _, tt := range n.Tensors {
		if b := tt.Bytes(n.DType); b > maxFM {
			maxFM = b
		}
	}
	if mib := tensor.MiB(maxFM); mib < 3135 || mib > 3137 {
		t.Fatalf("largest fm = %.0f MiB, want 3136", mib)
	}
}

func TestVGGDeepLayerCounts(t *testing.T) {
	for _, tc := range []struct {
		layers int
		batch  int
	}{{116, 32}, {216, 32}, {316, 32}, {416, 32}} {
		n := VGGDeep(tc.layers, tc.batch)
		if err := n.Validate(); err != nil {
			t.Fatalf("VGG-%d: %v", tc.layers, err)
		}
		// Model D base has 13 CONVs; each +100 step adds 5*20 = 100.
		want := 13 + (tc.layers-16)/100*100
		if got := n.Summary().ConvLayers; got != want {
			t.Fatalf("VGG-%d built %d conv layers, want %d", tc.layers, got, want)
		}
	}
}

func TestVGGDeepMemoryScaling(t *testing.T) {
	// Section V-E: baseline memory grows ~14x from VGG-16 to VGG-416 at
	// batch 32. Feature maps dominate, so check their growth factor.
	fm16 := VGG16(32).FeatureMapBytes()
	fm416 := VGGDeep(416, 32).FeatureMapBytes()
	ratio := float64(fm416) / float64(fm16)
	if ratio < 12 || ratio > 40 {
		t.Fatalf("fm growth VGG-16 -> VGG-416 = %.1fx, want order ~14-30x", ratio)
	}
	// Monotone growth across the series.
	prev := fm16
	for _, layers := range []int{116, 216, 316, 416} {
		fm := VGGDeep(layers, 32).FeatureMapBytes()
		if fm <= prev {
			t.Fatalf("VGG-%d fm %d not > previous %d", layers, fm, prev)
		}
		prev = fm
	}
}

func TestVGGDeepRejectsBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VGGDeep(50) did not panic")
		}
	}()
	VGGDeep(50, 32)
}

func TestBenchmarkSets(t *testing.T) {
	conv := Conventional()
	if len(conv) != 6 {
		t.Fatalf("Conventional = %d nets, want 6", len(conv))
	}
	vd := VeryDeep()
	if len(vd) != 4 {
		t.Fatalf("VeryDeep = %d nets, want 4", len(vd))
	}
	all := All()
	if len(all) != 10 {
		t.Fatalf("All = %d nets, want 10 (the paper's studied DNNs)", len(all))
	}
	for _, n := range all {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		n, err := ByName(name, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.Batch != 16 {
			t.Fatalf("%s batch = %d", name, n.Batch)
		}
	}
	if _, err := ByName("resnet", 16); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("want unknown-network error, got %v", err)
	}
}

func TestGradPlansForAllNetworks(t *testing.T) {
	// The gradient liveness planner must produce valid plans for every
	// studied topology, including GoogLeNet's fork/join graph.
	for _, n := range []*dnn.Network{AlexNet(16), OverFeat(16), GoogLeNet(16), VGG16(16)} {
		plan := dnn.PlanGradientSlots(n)
		if err := dnn.VerifyGradPlan(plan); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
		// Shared gradient memory must be far below per-buffer allocation.
		var naive int64
		for root, gi := range plan.Infos {
			_ = root
			naive += gi.Bytes
		}
		if plan.TotalBytes() >= naive {
			t.Errorf("%s: sharing saved nothing (%d vs %d)", n.Name, plan.TotalBytes(), naive)
		}
	}
}

func TestLinearVGGUsesTwoGradSlots(t *testing.T) {
	plan := dnn.PlanGradientSlots(VGG16(64))
	if len(plan.SlotBytes) != 2 {
		t.Fatalf("VGG-16 gradient slots = %d, want 2 (paper Section IV-A)", len(plan.SlotBytes))
	}
}

// Package networks builds the ten DNNs of the paper's evaluation
// (Section IV-C): the conventional ImageNet winners — AlexNet, OverFeat,
// GoogLeNet, and VGG-16 at three batch sizes — plus the very deep VGG-style
// networks (VGG-116/216/316/416) used for the scalability case study.
//
// Configurations follow the paper's stated reference source, the Facebook
// convnet-benchmarks models. Note on "VGG-16": the paper's prose counts "16
// CONV and 3 FC layers", but its measured memory footprints (4.9 GB at
// batch 32, ~15 GB at 128 with performance-optimal algorithms, ~28 GB at
// 256) match the real VGG Model-D configuration with per-group convolution
// counts {2,2,3,3,3} (13 CONV + 3 FC = 16 weight-layer pairs including
// pooling groups); this package uses Model D so the memory arithmetic —
// which every trainability result depends on — reproduces. The very deep
// variants keep the paper's names (VGG-116/216/316/416) and add 20 CONV
// layers per group per +100 step, exactly as described in Section IV-C.
package networks

import (
	"fmt"
	"sort"
	"strings"

	"vdnn/internal/dnn"
	"vdnn/internal/tensor"
)

// AlexNet builds the one-weird-trick single-tower AlexNet used by
// convnet-benchmarks: 5 CONV + 3 FC, input 3x224x224.
func AlexNet(batch int) *dnn.Network {
	b := dnn.NewBuilder(fmt.Sprintf("AlexNet (%d)", batch), batch, tensor.Float32)
	x := b.Input(3, 224, 224)
	x = b.Conv(x, "conv1", 64, 11, 4, 2)
	x = b.ReLU(x, "relu1")
	x = b.MaxPool(x, "pool1", 3, 2, 0)
	x = b.Conv(x, "conv2", 192, 5, 1, 2)
	x = b.ReLU(x, "relu2")
	x = b.MaxPool(x, "pool2", 3, 2, 0)
	x = b.Conv(x, "conv3", 384, 3, 1, 1)
	x = b.ReLU(x, "relu3")
	x = b.Conv(x, "conv4", 256, 3, 1, 1)
	x = b.ReLU(x, "relu4")
	x = b.Conv(x, "conv5", 256, 3, 1, 1)
	x = b.ReLU(x, "relu5")
	x = b.MaxPool(x, "pool5", 3, 2, 0)
	x = b.FC(x, "fc6", 4096)
	x = b.ReLU(x, "relu6")
	x = b.DropoutLayer(x, "drop6", 0.5)
	x = b.FC(x, "fc7", 4096)
	x = b.ReLU(x, "relu7")
	x = b.DropoutLayer(x, "drop7", 0.5)
	x = b.FC(x, "fc8", 1000)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

// OverFeat builds the OverFeat "fast" model: 5 CONV + 3 FC, input 3x231x231.
func OverFeat(batch int) *dnn.Network {
	b := dnn.NewBuilder(fmt.Sprintf("OverFeat (%d)", batch), batch, tensor.Float32)
	x := b.Input(3, 231, 231)
	x = b.Conv(x, "conv1", 96, 11, 4, 0)
	x = b.ReLU(x, "relu1")
	x = b.MaxPool(x, "pool1", 2, 2, 0)
	x = b.Conv(x, "conv2", 256, 5, 1, 0)
	x = b.ReLU(x, "relu2")
	x = b.MaxPool(x, "pool2", 2, 2, 0)
	x = b.Conv(x, "conv3", 512, 3, 1, 1)
	x = b.ReLU(x, "relu3")
	x = b.Conv(x, "conv4", 1024, 3, 1, 1)
	x = b.ReLU(x, "relu4")
	x = b.Conv(x, "conv5", 1024, 3, 1, 1)
	x = b.ReLU(x, "relu5")
	x = b.MaxPool(x, "pool5", 2, 2, 0)
	x = b.FC(x, "fc6", 3072)
	x = b.ReLU(x, "relu6")
	x = b.FC(x, "fc7", 4096)
	x = b.ReLU(x, "relu7")
	x = b.FC(x, "fc8", 1000)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

// inception appends one GoogLeNet inception module: four parallel branches
// reading the same input buffer (the paper's Figure 3 fork), joined by a
// channel concat.
func inception(b *dnn.Builder, name string, x *dnn.Tensor, c1, c3r, c3, c5r, c5, pp int) *dnn.Tensor {
	b1 := b.Conv(x, name+"/1x1", c1, 1, 1, 0)
	b1 = b.ReLU(b1, name+"/relu_1x1")

	b2 := b.Conv(x, name+"/3x3_reduce", c3r, 1, 1, 0)
	b2 = b.ReLU(b2, name+"/relu_3x3_reduce")
	b2 = b.Conv(b2, name+"/3x3", c3, 3, 1, 1)
	b2 = b.ReLU(b2, name+"/relu_3x3")

	b3 := b.Conv(x, name+"/5x5_reduce", c5r, 1, 1, 0)
	b3 = b.ReLU(b3, name+"/relu_5x5_reduce")
	b3 = b.Conv(b3, name+"/5x5", c5, 5, 1, 2)
	b3 = b.ReLU(b3, name+"/relu_5x5")

	b4 := b.MaxPoolCeil(x, name+"/pool", 3, 1, 1)
	b4 = b.Conv(b4, name+"/pool_proj", pp, 1, 1, 0)
	b4 = b.ReLU(b4, name+"/relu_pool_proj")

	return b.Concat(name+"/output", b1, b2, b3, b4)
}

// GoogLeNet builds GoogLeNet v1 (9 inception modules) without the auxiliary
// classifier heads, matching the convnet-benchmarks configuration. This is
// the non-linear topology that exercises vDNN's reference-count machinery.
func GoogLeNet(batch int) *dnn.Network {
	b := dnn.NewBuilder(fmt.Sprintf("GoogLeNet (%d)", batch), batch, tensor.Float32)
	x := b.Input(3, 224, 224)
	x = b.Conv(x, "conv1/7x7_s2", 64, 7, 2, 3)
	x = b.ReLU(x, "conv1/relu")
	x = b.MaxPoolCeil(x, "pool1/3x3_s2", 3, 2, 0)
	x = b.LRN(x, "pool1/norm1", 5)
	x = b.Conv(x, "conv2/3x3_reduce", 64, 1, 1, 0)
	x = b.ReLU(x, "conv2/relu_reduce")
	x = b.Conv(x, "conv2/3x3", 192, 3, 1, 1)
	x = b.ReLU(x, "conv2/relu")
	x = b.LRN(x, "conv2/norm2", 5)
	x = b.MaxPoolCeil(x, "pool2/3x3_s2", 3, 2, 0)

	x = inception(b, "inception_3a", x, 64, 96, 128, 16, 32, 32)
	x = inception(b, "inception_3b", x, 128, 128, 192, 32, 96, 64)
	x = b.MaxPoolCeil(x, "pool3/3x3_s2", 3, 2, 0)
	x = inception(b, "inception_4a", x, 192, 96, 208, 16, 48, 64)
	x = inception(b, "inception_4b", x, 160, 112, 224, 24, 64, 64)
	x = inception(b, "inception_4c", x, 128, 128, 256, 24, 64, 64)
	x = inception(b, "inception_4d", x, 112, 144, 288, 32, 64, 64)
	x = inception(b, "inception_4e", x, 256, 160, 320, 32, 128, 128)
	x = b.MaxPoolCeil(x, "pool4/3x3_s2", 3, 2, 0)
	x = inception(b, "inception_5a", x, 256, 160, 320, 32, 128, 128)
	x = inception(b, "inception_5b", x, 384, 192, 384, 48, 128, 128)

	x = b.AvgPool(x, "pool5/7x7_s1", 7, 1, 0)
	x = b.FC(x, "loss3/classifier", 1000)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

// vggChannels are VGG's five CONV groups' output channel counts. The
// spatial size halves after each group's pooling layer.
var vggChannels = [5]int{64, 128, 256, 512, 512}

// vgg builds a VGG-style network with the given per-group CONV layer counts
// (Model D uses {2,2,3,3,3}; the very deep variants add 20 per group per
// +100 layers, Section IV-C).
func vgg(name string, batch int, groups [5]int) *dnn.Network {
	b := dnn.NewBuilder(name, batch, tensor.Float32)
	x := b.Input(3, 224, 224)
	for g := 0; g < 5; g++ {
		for i := 0; i < groups[g]; i++ {
			lname := fmt.Sprintf("conv%d_%d", g+1, i+1)
			x = b.Conv(x, lname, vggChannels[g], 3, 1, 1)
			x = b.ReLU(x, "relu"+lname[4:])
		}
		x = b.MaxPool(x, fmt.Sprintf("pool%d", g+1), 2, 2, 0)
	}
	x = b.FC(x, "fc6", 4096)
	x = b.ReLU(x, "relu6")
	x = b.DropoutLayer(x, "drop6", 0.5)
	x = b.FC(x, "fc7", 4096)
	x = b.ReLU(x, "relu7")
	x = b.DropoutLayer(x, "drop7", 0.5)
	x = b.FC(x, "fc8", 1000)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

// VGG16 builds VGG Model D: 13 CONV ({2,2,3,3,3}) + 3 FC.
func VGG16(batch int) *dnn.Network {
	return vgg(fmt.Sprintf("VGG-16 (%d)", batch), batch, [5]int{2, 2, 3, 3, 3})
}

// VGGDeep builds the very deep VGG variants: convLayers must be 16 plus a
// multiple of 100; each +100 adds 20 CONV layers to each of the 5 groups.
func VGGDeep(convLayers, batch int) *dnn.Network {
	if convLayers < 16 || (convLayers-16)%100 != 0 {
		panic(fmt.Sprintf("networks: VGGDeep wants 16+100k CONV layers, got %d", convLayers))
	}
	extra := (convLayers - 16) / 100 * 20
	groups := [5]int{2 + extra, 2 + extra, 3 + extra, 3 + extra, 3 + extra}
	return vgg(fmt.Sprintf("VGG-%d (%d)", convLayers, batch), batch, groups)
}

// Paper benchmark sets.

// Conventional returns the six conventional-DNN configurations of Figures
// 11, 12 and 14: AlexNet/OverFeat/GoogLeNet at batch 128 and VGG-16 at
// batches 64/128/256.
func Conventional() []*dnn.Network {
	return []*dnn.Network{
		AlexNet(128), OverFeat(128), GoogLeNet(128),
		VGG16(64), VGG16(128), VGG16(256),
	}
}

// VeryDeep returns the VGG-116/216/316/416 case-study networks (batch 32,
// Section IV-C / Figure 15).
func VeryDeep() []*dnn.Network {
	return []*dnn.Network{
		VGGDeep(116, 32), VGGDeep(216, 32), VGGDeep(316, 32), VGGDeep(416, 32),
	}
}

// All returns the ten studied DNNs (Figure 1).
func All() []*dnn.Network {
	return append(Conventional(), VeryDeep()...)
}

// ByName builds a network from a name like "alexnet", "vgg16", "vgg116",
// "googlenet", "overfeat" with the given batch size.
func ByName(name string, batch int) (*dnn.Network, error) {
	switch name {
	case "alexnet":
		return AlexNet(batch), nil
	case "overfeat":
		return OverFeat(batch), nil
	case "googlenet":
		return GoogLeNet(batch), nil
	case "vgg16":
		return VGG16(batch), nil
	case "vgg116":
		return VGGDeep(116, batch), nil
	case "vgg216":
		return VGGDeep(216, batch), nil
	case "vgg316":
		return VGGDeep(316, batch), nil
	case "vgg416":
		return VGGDeep(416, batch), nil
	case "resnet50":
		return ResNet50(batch), nil
	case "resnet101":
		return ResNet101(batch), nil
	case "resnet152":
		return ResNet152(batch), nil
	case "transformer":
		return Transformer(batch), nil
	}
	return nil, fmt.Errorf("networks: unknown network %q: valid names are %s",
		name, strings.Join(Names(), ", "))
}

// Names lists the valid ByName identifiers, sorted. The returned slice is a
// fresh copy on every call, so callers may mutate it freely.
func Names() []string {
	names := []string{"alexnet", "overfeat", "googlenet", "vgg16", "vgg116", "vgg216", "vgg316", "vgg416", "resnet50", "resnet101", "resnet152", "transformer"}
	sort.Strings(names)
	return names
}

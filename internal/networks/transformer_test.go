package networks

import (
	"strings"
	"testing"

	"vdnn/internal/tensor"
)

func TestTransformerShapes(t *testing.T) {
	n := Transformer(32)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	// 1 patch embedding + 24 blocks x 5 projections = 121 convolutions.
	if s.ConvLayers != 121 {
		t.Fatalf("conv layers = %d, want 121", s.ConvLayers)
	}
	// ~587M params: 24 x ~24.4M per block plus patch embedding and head.
	params := n.TotalWeightBytes() / 4
	if params < 560e6 || params > 620e6 {
		t.Fatalf("params = %d, want ~587M", params)
	}
	// The attention score map is the point of the network: heads * tokens
	// channels over the token grid, i.e. batch x heads x 196 x 196 elements
	// — quadratic in the token count.
	tokens := xfmrGrid * xfmrGrid
	for _, l := range n.Layers {
		if !strings.HasSuffix(l.Name, "/scores") {
			continue
		}
		sh := l.Output.Shape
		if sh.C != xfmrHeads*tokens || sh.H != xfmrGrid || sh.W != xfmrGrid {
			t.Fatalf("%s output %v, want %d channels on a %dx%d grid",
				l.Name, sh, xfmrHeads*tokens, xfmrGrid, xfmrGrid)
		}
	}
}

// TestTransformerActivationDominance pins the property that makes the
// encoder an offload target: its per-iteration activation footprint exceeds
// its (already large) weight footprint.
func TestTransformerActivationDominance(t *testing.T) {
	n := Transformer(32)
	var act int64
	for _, l := range n.Layers {
		if l.Output != nil {
			act += l.Output.Bytes(tensor.Float32)
		}
	}
	if w := n.TotalWeightBytes(); act <= w {
		t.Fatalf("activations %d <= weights %d; attention should dominate", act, w)
	}
}

package networks

import (
	"fmt"

	"vdnn/internal/dnn"
	"vdnn/internal/tensor"
)

// A vision-transformer-style encoder, the post-paper workload whose memory
// profile most stresses an offload policy: attention materializes score maps
// quadratic in the token count, so a block's activation footprint dwarfs its
// weight footprint even at modest batch sizes. Every projection is expressed
// as a 1x1 convolution over the (width, 14, 14) token grid — the builder's
// FC layer permanently switches the network to its classifier stage, so it
// appears only in the head — which keeps the whole encoder inside the
// feature-extraction region the vDNN policies manage.

// transformer dimensions (ViT-Large-ish): 16x16 patches of a 224x224 image
// give a 14x14 = 196-token grid at width 1024 with 16 attention heads, so
// each block's score tensor carries heads*tokens = 3136 channels per token —
// batch x 16 x 196 x 196 score elements, quadratic in the token count.
const (
	xfmrWidth  = 1024
	xfmrHeads  = 16
	xfmrBlocks = 24
	xfmrPatch  = 16
	xfmrGrid   = 14 // 224 / xfmrPatch
	xfmrMLP    = 4 * xfmrWidth
)

// xfmrBlock appends one encoder block: the attention sub-layer (QKV
// projection, quadratic score map, context projection) and the 4x MLP
// sub-layer, each normalized and closed by a residual addition.
func xfmrBlock(b *dnn.Builder, name string, x *dnn.Tensor) *dnn.Tensor {
	// Attention: scores hold heads*tokens channels over the token grid.
	y := b.BatchNormLayer(x, name+"/ln1")
	y = b.Conv(y, name+"/qkv", 3*xfmrWidth, 1, 1, 0)
	y = b.Conv(y, name+"/scores", xfmrHeads*xfmrGrid*xfmrGrid, 1, 1, 0)
	y = b.ReLU(y, name+"/attn")
	y = b.Conv(y, name+"/ctx", xfmrWidth, 1, 1, 0)
	x = b.AddJoin(name+"/add1", x, y)

	// MLP: expand 4x, nonlinearity, project back.
	y = b.BatchNormLayer(x, name+"/ln2")
	y = b.Conv(y, name+"/mlp1", xfmrMLP, 1, 1, 0)
	y = b.ReLU(y, name+"/gelu")
	y = b.Conv(y, name+"/mlp2", xfmrWidth, 1, 1, 0)
	return b.AddJoin(name+"/add2", x, y)
}

// Transformer builds the 24-block encoder: patch embedding, the blocks, and
// a pooled linear head.
func Transformer(batch int) *dnn.Network {
	b := dnn.NewBuilder(fmt.Sprintf("Transformer (%d)", batch), batch, tensor.Float32)
	x := b.Input(3, 224, 224)
	x = b.Conv(x, "patch_embed", xfmrWidth, xfmrPatch, xfmrPatch, 0)
	for i := 0; i < xfmrBlocks; i++ {
		x = xfmrBlock(b, fmt.Sprintf("block%d", i+1), x)
	}
	x = b.BatchNormLayer(x, "ln_final")
	x = b.AvgPool(x, "pool", xfmrGrid, 1, 0)
	x = b.FC(x, "head", 1000)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

package networks

import (
	"testing"

	"vdnn/internal/dnn"
)

func TestResNet50Shapes(t *testing.T) {
	n := ResNet50(64)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	// 1 stem + 16 blocks x 3 + 4 projection shortcuts = 53 convolutions.
	if s.ConvLayers != 53 {
		t.Fatalf("ResNet-50 conv layers = %d, want 53", s.ConvLayers)
	}
	// ~25.6M params plus BN running statistics.
	params := n.TotalWeightBytes() / 4
	if params < 24e6 || params > 28e6 {
		t.Fatalf("ResNet-50 params = %d, want ~25.6M", params)
	}
	// Stage output shapes: 56 -> 28 -> 14 -> 7 with 256..2048 channels.
	want := map[string][2]int{
		"c2_3/relu_out": {256, 56}, "c3_4/relu_out": {512, 28},
		"c4_6/relu_out": {1024, 14}, "c5_3/relu_out": {2048, 7},
	}
	for _, l := range n.Layers {
		if w, ok := want[l.Name]; ok {
			if l.Output.Shape.C != w[0] || l.Output.Shape.H != w[1] {
				t.Errorf("%s: %v, want %dx%d", l.Name, l.Output.Shape, w[0], w[1])
			}
		}
	}
}

func TestResNetDepths(t *testing.T) {
	if got := ResNet101(16).Summary().ConvLayers; got != 104 {
		t.Fatalf("ResNet-101 convs = %d, want 104", got)
	}
	// ResNet-152: 1 + 50*3 + 4 = 155 convolutions.
	if got := ResNet152(16).Summary().ConvLayers; got != 155 {
		t.Fatalf("ResNet-152 convs = %d, want 155", got)
	}
}

func TestResNetGradSharing(t *testing.T) {
	n := ResNet50(16)
	// Every Add input shares its gradient with the add output.
	adds := 0
	for _, l := range n.Layers {
		if l.Kind != dnn.Add {
			continue
		}
		adds++
		for _, in := range l.Inputs {
			if dnn.GradRoot(in) == in {
				t.Fatalf("%s: input fm%d not gradient-shared", l.Name, in.ID)
			}
		}
	}
	if adds != 16 {
		t.Fatalf("ResNet-50 add joins = %d, want 16", adds)
	}
	// The gradient plan must remain consistent despite the shared chains.
	plan := dnn.PlanGradientSlots(n)
	if err := dnn.VerifyGradPlan(plan); err != nil {
		t.Fatal(err)
	}
}

func TestResNetByName(t *testing.T) {
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		n, err := ByName(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

package pcie

import (
	"fmt"
	"sort"
	"sync"
)

// Topology describes how a set of devices attaches to the host interconnect.
// Each device keeps its own Link (the lanes between the device and the
// switch), but in real multi-GPU nodes those links hang off a shared PCIe
// root complex or switch whose uplink carries every device's traffic at
// once: offloads, prefetches and gradient synchronization all contend for
// it. The "Compressing DMA Engine" follow-up to vDNN (Rhu et al.) motivates
// exactly this configuration — several GPUs behind one root complex.
//
// The zero value is the dedicated topology: every device owns its full link
// bandwidth and nothing is shared, which is the single-GPU model the paper
// evaluates and what a one-device simulation degenerates to.
type Topology struct {
	// Name identifies the topology in results, registries and wire requests.
	// Empty names mean "dedicated".
	Name string `json:"name,omitempty"`
	// RootBps is the per-direction aggregate bandwidth (bytes/sec) of the
	// shared root complex the device links hang off. PCIe is full duplex, so
	// each direction has its own RootBps of capacity. 0 means dedicated
	// per-device links with no shared stage.
	RootBps int64 `json:"root_bps,omitempty"`
}

// Dedicated returns the no-sharing topology: every device gets its full
// link, transfers never contend.
func Dedicated() Topology { return Topology{Name: "dedicated"} }

// SharedRoot returns a topology whose device links share a root complex
// with the given per-direction aggregate bandwidth.
func SharedRoot(name string, aggregateBps int64) Topology {
	return Topology{Name: name, RootBps: aggregateBps}
}

// SharedGen3Root is a root complex with one gen3 x16's worth of effective
// bandwidth (the measured 12.8 GB/s) shared by every device — the worst
// case: N GPUs behind a single host uplink.
func SharedGen3Root() Topology { return SharedRoot("shared-x16", int64(12.8e9)) }

// SharedGen3Root2x doubles the shared uplink (two x16 root ports, the common
// dual-socket workstation layout).
func SharedGen3Root2x() Topology { return SharedRoot("shared-2x16", int64(25.6e9)) }

// SharedGen3Root4x is a quad-x16 root complex (PLX-switch server boards).
func SharedGen3Root4x() Topology { return SharedRoot("shared-4x16", int64(51.2e9)) }

// Shared reports whether the topology has a shared bandwidth stage.
func (t Topology) Shared() bool { return t.RootBps > 0 }

// Validate checks that the topology is self-consistent.
func (t Topology) Validate() error {
	if t.RootBps < 0 {
		return fmt.Errorf("pcie: negative root-complex bandwidth on topology %q", t.Name)
	}
	return nil
}

// String renders the topology for reports.
func (t Topology) String() string {
	if !t.Shared() {
		return "dedicated links"
	}
	return fmt.Sprintf("%s (%.1f GB/s shared root)", t.Name, float64(t.RootBps)/1e9)
}

// Named topology registry, mirroring the link registry: CLI flags and JSON
// requests address topologies by these tokens.
var (
	topoMu       sync.RWMutex
	topoRegistry = map[string]Topology{
		"dedicated":   Dedicated(),
		"shared-x16":  SharedGen3Root(),
		"shared-2x16": SharedGen3Root2x(),
		"shared-4x16": SharedGen3Root4x(),
	}
)

// TopologyByName returns the registered topology for a name like
// "shared-x16". The empty name resolves to the dedicated topology.
func TopologyByName(name string) (Topology, bool) {
	if name == "" {
		return Topology{}, true
	}
	topoMu.RLock()
	defer topoMu.RUnlock()
	t, ok := topoRegistry[name]
	return t, ok
}

// TopologyNames lists the registered topology names, sorted.
func TopologyNames() []string {
	topoMu.RLock()
	defer topoMu.RUnlock()
	names := make([]string, 0, len(topoRegistry))
	for n := range topoRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterTopology adds (or replaces) a named topology. It must validate.
func RegisterTopology(name string, t Topology) error {
	if name == "" {
		return fmt.Errorf("pcie: empty topology registry name")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	topoRegistry[name] = t
	return nil
}

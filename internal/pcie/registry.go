package pcie

import (
	"fmt"
	"sort"
	"sync"
)

// Named link registry, mirroring the device registry in internal/gpu: CLI
// flags and JSON requests address interconnects by these tokens.

var (
	regMu    sync.RWMutex
	registry = map[string]Link{
		"pcie2":  Gen2x16(),
		"pcie3":  Gen3x16(),
		"pcie4":  Gen4x16(),
		"nvlink": NVLink1(),
		"on-die": OnDie(),
	}
)

// ByName returns the registered link for a name like "pcie3".
func ByName(name string) (Link, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	l, ok := registry[name]
	return l, ok
}

// Names lists the registered link names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Register adds (or replaces) a named link. The link must validate.
func Register(name string, l Link) error {
	if name == "" {
		return fmt.Errorf("pcie: empty registry name")
	}
	if err := l.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = l
	return nil
}

package pcie

import (
	"testing"
	"testing/quick"

	"vdnn/internal/sim"
)

func TestLinksValidate(t *testing.T) {
	for _, l := range []Link{Gen3x16(), Gen2x16(), NVLink1()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestValidateCatchesBadLinks(t *testing.T) {
	bad := []Link{
		{Name: "zero bw", PeakBps: 1, EffBps: 0, PageSize: 4096},
		{Name: "eff>peak", PeakBps: 1e9, EffBps: 2e9, PageSize: 4096},
		{Name: "no page", PeakBps: 1e9, EffBps: 1e9, PageSize: 0},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", l.Name)
		}
	}
}

func TestDMATimeMatchesPaperNumbers(t *testing.T) {
	l := Gen3x16()
	// 1 GB at 12.8 GB/s is ~78 ms; the setup latency is negligible at this size.
	got := l.DMATime(1 << 30).Msec()
	if got < 78 || got > 90 {
		t.Fatalf("1 GiB DMA = %.2f ms, want ~84 ms", got)
	}
	// Zero-size transfers are free.
	if l.DMATime(0) != 0 {
		t.Fatal("zero transfer should be free")
	}
	// Small transfers are latency-dominated.
	if small := l.DMATime(4 << 10); small < l.DMASetup {
		t.Fatalf("small transfer %v below setup latency %v", small, l.DMASetup)
	}
}

func TestPageMigrationBandwidthBand(t *testing.T) {
	// The paper (citing Zheng et al.) reports 80-200 MB/s for page migration.
	bps := Gen3x16().PageMigrationBps()
	if bps < 80e6 || bps > 200e6 {
		t.Fatalf("page migration bw = %.0f MB/s, want within [80,200] MB/s", bps/1e6)
	}
	// DMA must dominate page migration by roughly two orders of magnitude.
	ratio := float64(Gen3x16().EffBps) / bps
	if ratio < 50 || ratio > 200 {
		t.Fatalf("DMA/page-migration ratio = %.0f, want ~100x", ratio)
	}
}

func TestPageMigrationRoundsUpToPages(t *testing.T) {
	l := Gen3x16()
	if l.PageMigrationTime(1) != l.PageLatency {
		t.Fatal("sub-page transfer should cost one page")
	}
	if l.PageMigrationTime(l.PageSize+1) != 2*l.PageLatency {
		t.Fatal("page+1 bytes should cost two pages")
	}
	if l.PageMigrationTime(0) != 0 {
		t.Fatal("zero bytes should cost nothing")
	}
}

func TestNVLinkFasterThanPCIe(t *testing.T) {
	n := int64(1 << 30)
	if NVLink1().DMATime(n) >= Gen3x16().DMATime(n) {
		t.Fatal("NVLink should beat PCIe gen3")
	}
	if Gen3x16().DMATime(n) >= Gen2x16().DMATime(n) {
		t.Fatal("gen3 should beat gen2")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative size")
		}
	}()
	Gen3x16().DMATime(-1)
}

// Properties: DMA time is monotone and superadditive-resistant (splitting a
// transfer only adds setup latency).
func TestDMATimeProperties(t *testing.T) {
	l := Gen3x16()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		mono := l.DMATime(x+y) >= l.DMATime(x)
		split := l.DMATime(x)+l.DMATime(y) >= l.DMATime(x+y)
		pm := l.PageMigrationTime(x) >= l.DMATime(x)/4 // page migration never wildly faster
		return mono && split && pm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDMATimePrecision(t *testing.T) {
	l := Gen3x16()
	// 128 MB at 12.8GB/s = 10ms + 25us setup.
	want := 10*sim.Millisecond + 25*sim.Microsecond
	got := l.DMATime(128e6)
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Microsecond {
		t.Fatalf("128 MB DMA = %v, want %v", got, want)
	}
}

package pcie

import (
	"encoding/json"
	"testing"
)

func TestTopologyZeroValueIsDedicated(t *testing.T) {
	var z Topology
	if z.Shared() {
		t.Fatal("zero topology reports a shared stage")
	}
	if err := z.Validate(); err != nil {
		t.Fatal(err)
	}
	if Dedicated().Shared() {
		t.Fatal("Dedicated() reports a shared stage")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := SharedGen3Root().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Topology{Name: "bad", RootBps: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestTopologyRegistry(t *testing.T) {
	for _, name := range []string{"dedicated", "shared-x16", "shared-2x16", "shared-4x16"} {
		top, ok := TopologyByName(name)
		if !ok {
			t.Fatalf("built-in topology %q missing", name)
		}
		if name != "dedicated" && !top.Shared() {
			t.Errorf("%q should have a shared stage", name)
		}
	}
	if _, ok := TopologyByName("nope"); ok {
		t.Fatal("unknown topology resolved")
	}
	// Empty name = dedicated zero value (the Config default).
	top, ok := TopologyByName("")
	if !ok || top != (Topology{}) {
		t.Fatalf("empty name resolved to %+v, %v", top, ok)
	}
	if err := RegisterTopology("", Dedicated()); err == nil {
		t.Fatal("empty registry name accepted")
	}
	if err := RegisterTopology("custom", SharedRoot("custom", 20e9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := TopologyByName("custom"); !ok {
		t.Fatal("registered topology not found")
	}
	names := TopologyNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	top := SharedGen3Root2x()
	b, err := json.Marshal(top)
	if err != nil {
		t.Fatal(err)
	}
	var got Topology
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != top {
		t.Fatalf("round trip changed topology: %+v != %+v", got, top)
	}
	// The zero value marshals to an empty object (omitted in Configs).
	z, err := json.Marshal(Topology{})
	if err != nil {
		t.Fatal(err)
	}
	if string(z) != "{}" {
		t.Fatalf("zero topology marshaled to %s", z)
	}
}

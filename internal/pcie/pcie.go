// Package pcie models the system interconnect between CPU and GPU memory.
// vDNN's offload and prefetch costs are dominated by this link, and the
// paper's argument against page-migration-based virtualization (Section
// II-C) is a bandwidth argument, so both transfer modes are modeled:
//
//   - DMA: cudaMemcpyAsync on pinned memory. The paper measures an average
//     12.8 GB/s out of the 16 GB/s PCIe gen3 x16 peak.
//   - Page migration: demand paging at 4 KB granularity, 20-50 us per page
//     (interrupts, page-table and TLB updates), i.e. 80-200 MB/s.
package pcie

import (
	"fmt"

	"vdnn/internal/sim"
)

// Link describes one direction-agnostic interconnect between host and device.
type Link struct {
	Name        string
	PeakBps     int64    // advertised peak, bytes/sec
	EffBps      int64    // achieved DMA bandwidth, bytes/sec
	DMASetup    sim.Time // per-transfer setup latency (driver + DMA engine)
	PageLatency sim.Time // per-page cost in page-migration mode
	PageSize    int64    // migration granularity, bytes
}

// Gen3x16 is the paper's interconnect: PCIe gen3 x16 between a Titan X and
// an i7-5930K host. Effective DMA bandwidth is the measured 12.8 GB/s.
func Gen3x16() Link {
	return Link{
		Name:        "PCIe gen3 x16",
		PeakBps:     16e9,
		EffBps:      12.8e9,
		DMASetup:    25 * sim.Microsecond,
		PageLatency: 35 * sim.Microsecond, // middle of the paper's 20-50 us
		PageSize:    4 << 10,
	}
}

// Gen2x16 halves gen3 bandwidth; used in interconnect sweeps.
func Gen2x16() Link {
	l := Gen3x16()
	l.Name = "PCIe gen2 x16"
	l.PeakBps = 8e9
	l.EffBps = 6.4e9
	return l
}

// NVLink1 models a first-generation NVLINK link (the paper names NVLINK as
// the natural successor interconnect, Section III-A).
func NVLink1() Link {
	return Link{
		Name:        "NVLINK 1.0",
		PeakBps:     40e9,
		EffBps:      35e9,
		DMASetup:    10 * sim.Microsecond,
		PageLatency: 20 * sim.Microsecond,
		PageSize:    4 << 10,
	}
}

// Validate reports whether the link parameters are self-consistent.
func (l Link) Validate() error {
	if l.EffBps <= 0 || l.PeakBps <= 0 {
		return fmt.Errorf("pcie: non-positive bandwidth on %q", l.Name)
	}
	if l.EffBps > l.PeakBps {
		return fmt.Errorf("pcie: effective bandwidth %d exceeds peak %d on %q", l.EffBps, l.PeakBps, l.Name)
	}
	if l.PageSize <= 0 {
		return fmt.Errorf("pcie: non-positive page size on %q", l.Name)
	}
	return nil
}

// DMATime returns the latency of a DMA transfer of n bytes (either
// direction; PCIe is full duplex so directions do not contend).
func (l Link) DMATime(n int64) sim.Time {
	if n < 0 {
		panic("pcie: negative transfer size")
	}
	if n == 0 {
		return 0
	}
	return l.DMASetup + sim.Time(float64(n)/float64(l.EffBps)*1e9)
}

// PageMigrationTime returns the latency of moving n bytes by demand paging.
func (l Link) PageMigrationTime(n int64) sim.Time {
	if n < 0 {
		panic("pcie: negative transfer size")
	}
	pages := (n + l.PageSize - 1) / l.PageSize
	return sim.Time(pages) * l.PageLatency
}

// PageMigrationBps returns the effective bandwidth of page migration, used
// to reproduce the paper's 80-200 MB/s observation.
func (l Link) PageMigrationBps() float64 {
	return float64(l.PageSize) / l.PageLatency.Seconds()
}

// Package pcie models the system interconnect between CPU and GPU memory.
// vDNN's offload and prefetch costs are dominated by this link, and the
// paper's argument against page-migration-based virtualization (Section
// II-C) is a bandwidth argument, so both transfer modes are modeled:
//
//   - DMA: cudaMemcpyAsync on pinned memory. The paper measures an average
//     12.8 GB/s out of the 16 GB/s PCIe gen3 x16 peak.
//   - Page migration: demand paging at 4 KB granularity, 20-50 us per page
//     (interrupts, page-table and TLB updates), i.e. 80-200 MB/s.
package pcie

import (
	"fmt"
	"strings"

	"vdnn/internal/sim"
)

// LinkClass groups links into interconnect families. It is catalog
// metadata: the cost model reads only the bandwidth and latency numbers, so
// the class never changes a schedule — it tells catalog consumers (serve,
// CLIs) what kind of wire a backend sits on.
type LinkClass int

const (
	// ClassPCIe is the zero value: a conventional PCIe host link.
	ClassPCIe LinkClass = iota
	// ClassNVLink covers NVLINK-generation point-to-point links.
	ClassNVLink
	// ClassOnDie marks the near-zero-cost path of a near-memory
	// accelerator, where "offload" never leaves the package.
	ClassOnDie
)

var linkClassNames = map[LinkClass]string{
	ClassPCIe:   "pcie",
	ClassNVLink: "nvlink",
	ClassOnDie:  "on-die",
}

// String returns the canonical lowercase token.
func (c LinkClass) String() string {
	if s, ok := linkClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// MarshalText emits the canonical token, making LinkClass JSON-friendly.
func (c LinkClass) MarshalText() ([]byte, error) {
	s, ok := linkClassNames[c]
	if !ok {
		return nil, fmt.Errorf("pcie: unknown link class %d", int(c))
	}
	return []byte(s), nil
}

// UnmarshalText parses a canonical token, case-insensitively.
func (c *LinkClass) UnmarshalText(text []byte) error {
	t := strings.ToLower(string(text))
	for k, s := range linkClassNames {
		if s == t {
			*c = k
			return nil
		}
	}
	return fmt.Errorf("pcie: unknown link class %q (have pcie, nvlink, on-die)", string(text))
}

// Link describes one direction-agnostic interconnect between host and device.
type Link struct {
	Name        string    `json:"name"`
	Class       LinkClass `json:"class,omitempty"` // interconnect family; metadata only
	PeakBps     int64     `json:"peak_bps"`        // advertised peak, bytes/sec
	EffBps      int64     `json:"eff_bps"`         // achieved DMA bandwidth, bytes/sec
	DMASetup    sim.Time  `json:"dma_setup"`       // per-transfer setup latency (driver + DMA engine)
	PageLatency sim.Time  `json:"page_latency"`    // per-page cost in page-migration mode
	PageSize    int64     `json:"page_size"`       // migration granularity, bytes
}

// Gen3x16 is the paper's interconnect: PCIe gen3 x16 between a Titan X and
// an i7-5930K host. Effective DMA bandwidth is the measured 12.8 GB/s.
func Gen3x16() Link {
	return Link{
		Name:        "PCIe gen3 x16",
		PeakBps:     16e9,
		EffBps:      12.8e9,
		DMASetup:    25 * sim.Microsecond,
		PageLatency: 35 * sim.Microsecond, // middle of the paper's 20-50 us
		PageSize:    4 << 10,
	}
}

// Gen2x16 halves gen3 bandwidth; used in interconnect sweeps.
func Gen2x16() Link {
	l := Gen3x16()
	l.Name = "PCIe gen2 x16"
	l.PeakBps = 8e9
	l.EffBps = 6.4e9
	return l
}

// Gen4x16 doubles gen3: PCIe gen4 x16 at the same ~80% DMA efficiency the
// paper measures for gen3, with a slightly cheaper setup path.
func Gen4x16() Link {
	return Link{
		Name:        "PCIe gen4 x16",
		PeakBps:     32e9,
		EffBps:      25.6e9,
		DMASetup:    20 * sim.Microsecond,
		PageLatency: 30 * sim.Microsecond,
		PageSize:    4 << 10,
	}
}

// NVLink1 models a first-generation NVLINK link (the paper names NVLINK as
// the natural successor interconnect, Section III-A).
func NVLink1() Link {
	return Link{
		Name:        "NVLINK 1.0",
		Class:       ClassNVLink,
		PeakBps:     40e9,
		EffBps:      35e9,
		DMASetup:    10 * sim.Microsecond,
		PageLatency: 20 * sim.Microsecond,
		PageSize:    4 << 10,
	}
}

// OnDie models the host path of a near-memory accelerator in the RAPIDNN
// mold: "offloading" moves data between banks of the same DRAM stack, so
// the wire runs at close to DRAM bandwidth with microsecond setup. Under
// this link vDNN's offload-vs-keep tradeoff effectively inverts — evicting
// is nearly free.
func OnDie() Link {
	return Link{
		Name:        "on-die fabric",
		Class:       ClassOnDie,
		PeakBps:     800e9,
		EffBps:      780e9,
		DMASetup:    1 * sim.Microsecond,
		PageLatency: 5 * sim.Microsecond,
		PageSize:    4 << 10,
	}
}

// Validate reports whether the link parameters are self-consistent.
func (l Link) Validate() error {
	if l.EffBps <= 0 || l.PeakBps <= 0 {
		return fmt.Errorf("pcie: non-positive bandwidth on %q", l.Name)
	}
	if l.EffBps > l.PeakBps {
		return fmt.Errorf("pcie: effective bandwidth %d exceeds peak %d on %q", l.EffBps, l.PeakBps, l.Name)
	}
	if l.PageSize <= 0 {
		return fmt.Errorf("pcie: non-positive page size on %q", l.Name)
	}
	return nil
}

// DMATime returns the latency of a DMA transfer of n bytes (either
// direction; PCIe is full duplex so directions do not contend).
func (l Link) DMATime(n int64) sim.Time {
	if n < 0 {
		panic("pcie: negative transfer size")
	}
	if n == 0 {
		return 0
	}
	return l.DMASetup + sim.Time(float64(n)/float64(l.EffBps)*1e9)
}

// PageMigrationTime returns the latency of moving n bytes by demand paging.
func (l Link) PageMigrationTime(n int64) sim.Time {
	if n < 0 {
		panic("pcie: negative transfer size")
	}
	pages := (n + l.PageSize - 1) / l.PageSize
	return sim.Time(pages) * l.PageLatency
}

// PageMigrationBps returns the effective bandwidth of page migration, used
// to reproduce the paper's 80-200 MB/s observation.
func (l Link) PageMigrationBps() float64 {
	return float64(l.PageSize) / l.PageLatency.Seconds()
}

// Package metrics is a dependency-free Prometheus client: counters, gauges
// and histograms registered in a Registry and exposed in the text-based
// exposition format (version 0.0.4, the format every Prometheus server
// scrapes). Only the features vdnn-serve needs are implemented — no
// summaries, no exemplars, no push gateway — which keeps the package small
// enough to audit in one sitting and keeps the repo at zero external
// dependencies.
//
// Two collector styles coexist:
//
//   - Owned state: Counter/Gauge/Histogram (and their label Vec variants)
//     hold their own atomics and are updated on the hot path.
//   - Scrape-time closures: CounterFunc/GaugeFunc read a value when the
//     registry is written. The serving stack already keeps atomic counters
//     (engine stats, admission counters, store stats); closures expose those
//     without double-counting or a second write on the hot path.
//
// All exposition output is deterministic: families sort by name, label
// children sort by label values, so tests can assert on exact scrape text.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in text format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type collector interface {
	// sample appends exposition lines (without HELP/TYPE headers) for one
	// collector. Label-less collectors append exactly one line; vecs append
	// one per child; histograms append bucket/sum/count series.
	sample(w *bufio.Writer, name string)
}

type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	c    collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, c: c}
}

// Write renders every registered family in Prometheus text format, sorted by
// family name.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.c.sample(bw, f.name)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Write(w)
	})
}

// --- scalar formatting ------------------------------------------------------

func writeVal(w *bufio.Writer, v float64) {
	switch {
	case math.IsInf(v, +1):
		w.WriteString("+Inf")
	case math.IsInf(v, -1):
		w.WriteString("-Inf")
	case math.IsNaN(v):
		w.WriteString("NaN")
	default:
		w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// labelPairs renders {k1="v1",k2="v2"} (empty string for no labels).
func labelPairs(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	writeVal(w, v)
	w.WriteByte('\n')
}

// --- counter ----------------------------------------------------------------

// Counter is a monotonically increasing float64.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas panic (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) sample(w *bufio.Writer, name string) { writeSample(w, name, "", c.Value()) }

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", c)
	return c
}

// --- gauge ------------------------------------------------------------------

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by v (negative allowed).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sample(w *bufio.Writer, name string) { writeSample(w, name, "", g.Value()) }

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g)
	return g
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// --- scrape-time closures ---------------------------------------------------

type funcCollector struct{ fn func() float64 }

func (f funcCollector) sample(w *bufio.Writer, name string) { writeSample(w, name, "", f.fn()) }

// NewCounterFunc registers a counter whose value is read at scrape time.
// The closure must be monotonic and safe to call concurrently.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", funcCollector{fn})
}

// NewGaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", funcCollector{fn})
}

// --- histogram --------------------------------------------------------------

// DefBuckets are the default latency buckets (seconds), spanning sub-ms
// cache hits to multi-second saturated sweeps.
var DefBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets not strictly increasing")
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.count.Add(1)
}

func (h *Histogram) sample(w *bufio.Writer, name string) { h.sampleLabels(w, name, nil, nil) }

func (h *Histogram) sampleLabels(w *bufio.Writer, name string, keys, vals []string) {
	var cum uint64
	bk := append(append([]string(nil), keys...), "le")
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		bv := append(append([]string(nil), vals...), strconv.FormatFloat(b, 'g', -1, 64))
		writeSample(w, name+"_bucket", labelPairs(bk, bv), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	bv := append(append([]string(nil), vals...), "+Inf")
	writeSample(w, name+"_bucket", labelPairs(bk, bv), float64(cum))
	labels := labelPairs(keys, vals)
	writeSample(w, name+"_sum", labels, math.Float64frombits(h.sumBits.Load()))
	writeSample(w, name+"_count", labels, float64(cum))
}

// NewHistogram registers a histogram with the given bucket upper bounds
// (DefBuckets when nil).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", h)
	return h
}

// --- label vectors ----------------------------------------------------------

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	keys     []string
	mu       sync.Mutex
	children map[string]*Counter
	vals     map[string][]string
}

// WithLabelValues returns (creating if needed) the child for the given label
// values, which must match the registered label names in number and order.
func (v *CounterVec) WithLabelValues(vals ...string) *Counter {
	if len(vals) != len(v.keys) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(vals), len(v.keys)))
	}
	k := strings.Join(vals, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[k]
	if !ok {
		c = &Counter{}
		v.children[k] = c
		v.vals[k] = append([]string(nil), vals...)
	}
	return c
}

func (v *CounterVec) sample(w *bufio.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type child struct {
		vals []string
		c    *Counter
	}
	kids := make([]child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, child{v.vals[k], v.children[k]})
	}
	v.mu.Unlock()
	for _, kid := range kids {
		writeSample(w, name, labelPairs(v.keys, kid.vals), kid.c.Value())
	}
}

// NewCounterVec registers a counter vector with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{
		keys:     append([]string(nil), labels...),
		children: make(map[string]*Counter),
		vals:     make(map[string][]string),
	}
	r.register(name, help, "counter", v)
	return v
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	keys     []string
	buckets  []float64
	mu       sync.Mutex
	children map[string]*Histogram
	vals     map[string][]string
}

// WithLabelValues returns (creating if needed) the child histogram.
func (v *HistogramVec) WithLabelValues(vals ...string) *Histogram {
	if len(vals) != len(v.keys) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(vals), len(v.keys)))
	}
	k := strings.Join(vals, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[k]
	if !ok {
		h = newHistogram(v.buckets)
		v.children[k] = h
		v.vals[k] = append([]string(nil), vals...)
	}
	return h
}

func (v *HistogramVec) sample(w *bufio.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type child struct {
		vals []string
		h    *Histogram
	}
	kids := make([]child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, child{v.vals[k], v.children[k]})
	}
	v.mu.Unlock()
	for _, kid := range kids {
		kid.h.sampleLabels(w, name, v.keys, kid.vals)
	}
}

// NewHistogramVec registers a histogram vector with the given label names
// and bucket bounds (DefBuckets when nil).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{
		keys:     append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*Histogram),
		vals:     make(map[string][]string),
	}
	r.register(name, help, "histogram", v)
	return v
}

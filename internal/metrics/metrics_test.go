package metrics

import (
	"bufio"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Ops.")
	g := r.NewGauge("test_depth", "Depth.")
	c.Inc()
	c.Add(2.5)
	g.Set(7)
	g.Dec()

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n# TYPE test_ops_total counter\ntest_ops_total 3.5\n",
		"# HELP test_depth Depth.\n# TYPE test_depth gauge\ntest_depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name: test_depth before test_ops_total.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_ops_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "y")
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="1"} 3`,
		`test_lat_seconds_bucket{le="10"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_sum 56.05`,
		`test_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueLandsInBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var b strings.Builder
	bw := bufio.NewWriter(&b)
	h.sample(bw, "h")
	bw.Flush()
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in inclusive bucket:\n%s", b.String())
	}
}

func TestVecLabelOrderingAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_req_total", "Reqs.", "endpoint", "code")
	v.WithLabelValues("simulate", "200").Add(3)
	v.WithLabelValues("plan", "400").Inc()
	v.WithLabelValues(`we"ird`+"\n", "200").Inc()

	out := scrape(t, r)
	for _, want := range []string{
		`test_req_total{endpoint="plan",code="400"} 1`,
		`test_req_total{endpoint="simulate",code="200"} 3`,
		`test_req_total{endpoint="we\"ird\n",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
	// Children sorted by label values: plan before simulate.
	if strings.Index(out, `endpoint="plan"`) > strings.Index(out, `endpoint="simulate"`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_dur_seconds", "Durations.", []float64{1}, "endpoint")
	v.WithLabelValues("jobs").Observe(0.5)
	v.WithLabelValues("jobs").Observe(2)
	out := scrape(t, r)
	for _, want := range []string{
		`test_dur_seconds_bucket{endpoint="jobs",le="1"} 1`,
		`test_dur_seconds_bucket{endpoint="jobs",le="+Inf"} 2`,
		`test_dur_seconds_sum{endpoint="jobs"} 2.5`,
		`test_dur_seconds_count{endpoint="jobs"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.NewCounterFunc("test_fn_total", "Fn.", func() float64 { n++; return n })
	r.NewGaugeFunc("test_fn_gauge", "FnG.", func() float64 { return -2 })
	out := scrape(t, r)
	if !strings.Contains(out, "test_fn_total 42\n") {
		t.Errorf("counter func not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "test_fn_gauge -2\n") {
		t.Errorf("gauge func missing:\n%s", out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_total", "x")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition format", ct)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_conc_total", "x")
	g := r.NewGauge("test_conc_gauge", "x")
	h := r.NewHistogram("test_conc_hist", "x", []float64{0.5})
	v := r.NewCounterVec("test_conc_vec", "x", "w")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.75)
				v.WithLabelValues("a").Inc()
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	for i := 0; i < 50; i++ {
		scrape(t, r)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := h.count.Load(); got != 8000 {
		t.Errorf("histogram count = %v, want 8000", got)
	}
	if got := v.WithLabelValues("a").Value(); got != 8000 {
		t.Errorf("vec child = %v, want 8000", got)
	}
}

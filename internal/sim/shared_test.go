package sim

import (
	"math/rand"
	"testing"
)

// TestSharedUncontendedMatchesDedicated: a transfer that never saturates the
// channel completes in exactly the dedicated-link time, so a generously
// provisioned topology reproduces dedicated schedules bit for bit.
func TestSharedUncontendedMatchesDedicated(t *testing.T) {
	const rate = 12.8e9
	tl := New(0, 0)
	eng := tl.NewEngine("dma")
	st := tl.NewStream("mem")
	ch := NewSharedChannel("root", 4*rate)

	n := int64(256 << 20)
	setup := 25 * Microsecond
	got := tl.IssueTransfer(&Op{Label: "x", Kind: OpCopyD2H, BusBytes: n}, st, eng, ch, n, rate, setup)
	want := setup + Time(float64(n)/rate*1e9)
	if got.DurationT != want {
		t.Fatalf("uncontended shared transfer took %v, dedicated link takes %v", got.DurationT, want)
	}
	// Same arithmetic with a nil channel.
	tl2 := New(0, 0)
	got2 := tl2.IssueTransfer(&Op{Label: "y", Kind: OpCopyD2H, BusBytes: n},
		tl2.NewStream("mem"), tl2.NewEngine("dma"), nil, n, rate, setup)
	if got2.DurationT != want {
		t.Fatalf("nil-channel transfer took %v, want %v", got2.DurationT, want)
	}
}

// TestSharedContentionStretches: two concurrent transfers over a channel
// with the capacity of one link each take longer than the dedicated time,
// and the second (later-issued) transfer absorbs the whole slowdown — the
// first keeps its reservation.
func TestSharedContentionStretches(t *testing.T) {
	const rate = 10e9
	tl := New(0, 0)
	st1, st2 := tl.NewStream("m1"), tl.NewStream("m2")
	e1, e2 := tl.NewEngine("d1"), tl.NewEngine("d2")
	ch := NewSharedChannel("root", rate) // only one link's worth shared by two

	n := int64(1 << 30)
	a := tl.IssueTransfer(&Op{Label: "a", BusBytes: n}, st1, e1, ch, n, rate, 0)
	b := tl.IssueTransfer(&Op{Label: "b", BusBytes: n}, st2, e2, ch, n, rate, 0)

	dedicated := Time(float64(n) / rate * 1e9)
	if a.DurationT != dedicated {
		t.Errorf("first transfer slowed retroactively: %v, want %v", a.DurationT, dedicated)
	}
	if b.DurationT < 2*dedicated-Millisecond {
		t.Errorf("second transfer finished in %v; the channel had no bandwidth before %v", b.DurationT, dedicated)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedPartialOverlap: a transfer arriving while half the capacity is
// reserved proceeds at the leftover rate, then speeds up when the earlier
// reservation ends.
func TestSharedPartialOverlap(t *testing.T) {
	const rate = 8e9
	n := int64(8e9)
	ch := NewSharedChannel("root", 1.5*rate)
	endA := ch.Reserve(0, n, rate) // 1 s at full rate
	if want := Time(Second); endA != want {
		t.Fatalf("first reservation ends at %v, want %v", endA, want)
	}
	// B overlaps A entirely for A's one-second run (gets the leftover
	// 0.5*rate), then finishes at full rate.
	endB := ch.Reserve(0, n, rate)
	bytesDuringA := 0.5 * rate * 1.0
	wantB := Time(Second) + Time((float64(n)-bytesDuringA)/rate*1e9)
	tol := Time(Millisecond)
	if endB < wantB-tol || endB > wantB+tol {
		t.Fatalf("second reservation ends at %v, want ~%v", endB, wantB)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedConservation fuzzes reservations and checks the invariant the
// contention results rest on: the sum of concurrent transfer throughputs
// never exceeds the channel's aggregate capacity.
func TestSharedConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		cap := 1e9 * (1 + rng.Float64()*30)
		ch := NewSharedChannel("fuzz", cap)
		for i := 0; i < 60; i++ {
			start := Time(rng.Int63n(int64(Second)))
			n := 1 + rng.Int63n(1<<30)
			rate := cap * (0.1 + rng.Float64())
			end := ch.Reserve(start, n, rate)
			if end <= start {
				t.Fatalf("trial %d: empty reservation [%v, %v]", trial, start, end)
			}
		}
		if err := ch.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSharedSaturatedWaits: a transfer issued into a fully reserved channel
// moves no bytes until capacity frees up.
func TestSharedSaturatedWaits(t *testing.T) {
	const rate = 10e9
	ch := NewSharedChannel("root", rate)
	busyUntil := ch.Reserve(0, 10<<30, rate) // saturates the channel
	end := ch.Reserve(0, 1<<30, rate)
	tail := float64(int64(1<<30)) / rate * 1e9
	wantMin := busyUntil + Time(tail) - Millisecond
	if end < wantMin {
		t.Fatalf("starved transfer finished at %v, cannot beat %v", end, wantMin)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestIssueTransferScheduleInvariants: transfers obey the same stream/engine
// rules as fixed-duration ops and pass timeline validation.
func TestIssueTransferScheduleInvariants(t *testing.T) {
	const rate = 12.8e9
	tl := New(Microsecond, 10*Microsecond)
	comp := tl.NewEngine("compute")
	dma := tl.NewEngine("dma")
	sc := tl.NewStream("compute")
	sm := tl.NewStream("mem")
	ch := NewSharedChannel("root", rate)

	k := tl.Issue(&Op{Label: "k", Kind: OpKernel, DurationT: Millisecond}, sc, comp)
	x1 := tl.IssueTransfer(&Op{Label: "x1", Kind: OpCopyD2H, BusBytes: 64 << 20}, sm, dma, ch, 64<<20, rate, 0, k)
	x2 := tl.IssueTransfer(&Op{Label: "x2", Kind: OpCopyD2H, BusBytes: 64 << 20}, sm, dma, ch, 64<<20, rate, 0)
	if x1.Start < k.End {
		t.Errorf("transfer started %v before its dependency ended %v", x1.Start, k.End)
	}
	if x2.Start < x1.End {
		t.Errorf("stream order broken: x2 start %v < x1 end %v", x2.Start, x1.End)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	if ch.Reservations() != 2 {
		t.Errorf("reservations = %d, want 2", ch.Reservations())
	}
}

// TestIssueTransferZeroBytes: an empty transfer is instantaneous and
// reserves nothing.
func TestIssueTransferZeroBytes(t *testing.T) {
	tl := New(0, 0)
	ch := NewSharedChannel("root", 1e9)
	o := tl.IssueTransfer(&Op{Label: "z"}, tl.NewStream("m"), tl.NewEngine("d"), ch, 0, 1e9, 0)
	if o.DurationT != 0 {
		t.Fatalf("zero-byte transfer took %v", o.DurationT)
	}
	if ch.Reservations() != 0 {
		t.Fatalf("zero-byte transfer reserved bandwidth")
	}
}

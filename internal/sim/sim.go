// Package sim is a small deterministic discrete-event engine that models the
// CUDA execution semantics vDNN depends on: in-order streams, serial hardware
// engines (the SM array and the copy engines), cross-stream dependencies
// (CUDA events), and a host thread that issues work asynchronously and
// occasionally blocks on synchronization.
//
// Ops are scheduled analytically: an op starts when its engine is free AND
// all its dependencies (program order within its stream, plus explicit event
// dependencies, plus its issue time on the host) have completed. Because the
// host issues ops one at a time this assignment is exact, not approximate.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is simulated time in nanoseconds from the start of the run.
type Time int64

const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the time in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Msec returns the time in milliseconds.
func (t Time) Msec() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return t.Duration().String() }

// OpKind categorizes ops for metrics and tracing.
type OpKind int

const (
	OpKernel     OpKind = iota // compute kernel on the SM array
	OpCopyD2H                  // device-to-host DMA (offload)
	OpCopyH2D                  // host-to-device DMA (prefetch)
	OpHost                     // host-side work (e.g. pinned allocation)
	OpCopyP2P                  // peer-to-peer DMA (gradient all-reduce)
	OpCompress                 // codec pass in the D2H DMA path (cDMA engine)
	OpDecompress               // codec pass in the H2D DMA path (cDMA engine)
	OpCopyStage                // inter-stage pipeline transfer (activation or gradient)
)

func (k OpKind) String() string {
	switch k {
	case OpKernel:
		return "kernel"
	case OpCopyD2H:
		return "copyD2H"
	case OpCopyH2D:
		return "copyH2D"
	case OpHost:
		return "host"
	case OpCopyP2P:
		return "copyP2P"
	case OpCompress:
		return "compress"
	case OpDecompress:
		return "decompress"
	case OpCopyStage:
		return "copyStage"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one unit of device (or host) work with a fixed duration.
type Op struct {
	ID    int
	Label string
	Kind  OpKind

	// Cost inputs, recorded for metrics.
	DurationT Time  // execution time once started
	Flops     int64 // useful arithmetic performed
	DRAMBytes int64 // device DRAM traffic generated
	BusBytes  int64 // PCIe/NVLink traffic generated

	// Schedule outputs.
	Start Time
	End   Time

	deps   []*Op
	depbuf [4]*Op // inline storage for deps: nearly every op has ≤4 (stream order + a few events)
}

// Deps returns the ops this op waited on (program order and events).
func (o *Op) Deps() []*Op { return o.deps }

// Engine is a serial hardware resource: at most one op executes at a time,
// in the order ops were issued to it.
type Engine struct {
	Name string
	free Time
	ops  []*Op
}

// Ops returns every op executed on the engine, in issue order.
func (e *Engine) Ops() []*Op { return e.ops }

// BusyTime returns the total time the engine spent executing ops.
func (e *Engine) BusyTime() Time {
	var b Time
	for _, o := range e.ops {
		b += o.DurationT
	}
	return b
}

// Stream models a CUDA stream: a FIFO of ops that may map to different
// hardware engines (e.g. a memory stream whose copies alternate between the
// D2H and H2D DMA engines) but always execute in issue order.
type Stream struct {
	Name string
	last *Op // last op issued to this stream, for program-order deps
}

// Last returns the most recently issued op on the stream (nil if none).
func (s *Stream) Last() *Op { return s.last }

// Timeline owns the simulated clock, the engines, and the issued ops.
type Timeline struct {
	host    Time // host thread's current time
	ops     []*Op
	engines []*Engine

	// Host overheads, modeling driver costs. Zero values are allowed.
	LaunchOverhead Time // host time consumed issuing one async op
	SyncOverhead   Time // host time consumed by a blocking synchronization
}

// New creates a timeline with the given host-side overheads.
func New(launch, sync Time) *Timeline {
	return &Timeline{LaunchOverhead: launch, SyncOverhead: sync}
}

// NewEngine registers a serial hardware engine.
func (tl *Timeline) NewEngine(name string) *Engine {
	e := &Engine{Name: name}
	tl.engines = append(tl.engines, e)
	return e
}

// NewStream creates a stream.
func (tl *Timeline) NewStream(name string) *Stream { return &Stream{Name: name} }

// Now returns the host thread's current simulated time.
func (tl *Timeline) Now() Time { return tl.host }

// AdvanceHost moves the host clock forward by d (host-side work).
func (tl *Timeline) AdvanceHost(d Time) {
	if d < 0 {
		panic("sim: negative host advance")
	}
	tl.host += d
}

// Ops returns all issued ops in issue order.
func (tl *Timeline) Ops() []*Op { return tl.ops }

// Engines returns the registered engines.
func (tl *Timeline) Engines() []*Engine { return tl.engines }

// Issue schedules op o on engine e within stream s, after the given extra
// dependencies. It models an asynchronous launch: the host is charged only
// LaunchOverhead; the op itself starts when the stream order, dependencies,
// engine availability, and the host issue time allow. Returns o.
func (tl *Timeline) Issue(o *Op, s *Stream, e *Engine, deps ...*Op) *Op {
	if o.DurationT < 0 {
		panic(fmt.Sprintf("sim: op %q has negative duration", o.Label))
	}
	start := tl.startTime(o, s, e, deps)
	o.Start = start
	o.End = start + o.DurationT
	tl.commit(o, s, e)
	return o
}

// Wait blocks the host until op o has completed (cudaEventSynchronize /
// cudaStreamSynchronize on a single op's event).
func (tl *Timeline) Wait(o *Op) {
	if o == nil {
		return
	}
	if o.End > tl.host {
		tl.host = o.End
	}
	tl.host += tl.SyncOverhead
}

// WaitStream blocks the host until everything issued so far on s completes.
func (tl *Timeline) WaitStream(s *Stream) { tl.Wait(s.last) }

// Span returns the [earliest start, latest end] over all ops, or (0,0) if no
// ops were issued.
func (tl *Timeline) Span() (Time, Time) {
	if len(tl.ops) == 0 {
		return 0, 0
	}
	start, end := tl.ops[0].Start, tl.ops[0].End
	for _, o := range tl.ops {
		if o.Start < start {
			start = o.Start
		}
		if o.End > end {
			end = o.End
		}
	}
	return start, end
}

// Validate checks scheduling invariants: every op starts no earlier than its
// dependencies end, and engines never run two ops at once. It is used by
// tests and by the executor's self-checks.
func (tl *Timeline) Validate() error {
	for _, o := range tl.ops {
		for _, d := range o.deps {
			if o.Start < d.End {
				return fmt.Errorf("op %d %q starts at %v before dep %d %q ends at %v",
					o.ID, o.Label, o.Start, d.ID, d.Label, d.End)
			}
		}
		if o.End-o.Start != o.DurationT {
			return fmt.Errorf("op %d %q has end-start %v != duration %v", o.ID, o.Label, o.End-o.Start, o.DurationT)
		}
	}
	for _, e := range tl.engines {
		var prev *Op
		for _, o := range e.ops {
			if prev != nil && o.Start < prev.End {
				return fmt.Errorf("engine %s overlap: op %d %q starts %v before op %d %q ends %v",
					e.Name, o.ID, o.Label, o.Start, prev.ID, prev.Label, prev.End)
			}
			prev = o
		}
	}
	return nil
}

// Interval is a [Start, End) slice of engine activity used by the power and
// bandwidth models.
type Interval struct {
	Start, End Time
	Op         *Op
}

// BusyIntervals returns per-engine busy intervals sorted by start time.
func (e *Engine) BusyIntervals() []Interval {
	iv := make([]Interval, 0, len(e.ops))
	for _, o := range e.ops {
		if o.DurationT > 0 {
			iv = append(iv, Interval{o.Start, o.End, o})
		}
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	return iv
}

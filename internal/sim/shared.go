package sim

import (
	"fmt"
	"math"
	"sort"
)

// SharedChannel models one direction of a shared interconnect resource — the
// uplink of a PCIe root complex or switch that several devices' links hang
// off. Unlike an Engine, which serializes its ops, a shared channel lets any
// number of transfers proceed concurrently and arbitrates its aggregate
// bandwidth among them.
//
// Arbitration is progressive filling in issue order: each transfer draws
// min(its own link rate, whatever aggregate bandwidth earlier-issued
// transfers left unreserved) over time, and reserves what it draws. A
// transfer issued earlier is therefore never slowed retroactively by a later
// arrival — which is what keeps the engine's one-pass analytic scheduling
// exact (an op's end time may already have been consumed as a dependency by
// the time the next op is issued). The conservation invariant — the sum of
// concurrent transfer throughputs never exceeds the channel's capacity — is
// what Validate checks and what the contention results rest on.
//
// An uncontended transfer (aggregate capacity never binding) completes in
// exactly bytes/maxBps seconds, the dedicated-link DMA time, so a topology
// whose root complex is never saturated reproduces dedicated-link schedules
// bit for bit.
type SharedChannel struct {
	Name string

	capacity float64 // aggregate bandwidth, bytes/sec

	// Reservation profile: reserved(t) is piecewise constant, changing only
	// at the breakpoints. edges[i].t are strictly increasing; edges[i].d is
	// the change in reserved bandwidth at that instant.
	edges []bwEdge

	reservations int // transfers arbitrated so far (metrics/tests)
}

type bwEdge struct {
	t Time
	d float64
}

// NewSharedChannel creates a shared channel with the given aggregate
// bandwidth in bytes/sec.
func NewSharedChannel(name string, capacityBps float64) *SharedChannel {
	if capacityBps <= 0 {
		panic(fmt.Sprintf("sim: shared channel %q has non-positive capacity", name))
	}
	return &SharedChannel{Name: name, capacity: capacityBps}
}

// CapacityBps returns the channel's aggregate bandwidth.
func (c *SharedChannel) CapacityBps() float64 { return c.capacity }

// Reservations returns how many transfers the channel has arbitrated.
func (c *SharedChannel) Reservations() int { return c.reservations }

// reservedAt returns the reserved bandwidth immediately at-or-after time t
// and the index of the first edge strictly after t.
func (c *SharedChannel) reservedAt(t Time) (float64, int) {
	var r float64
	i := 0
	for ; i < len(c.edges) && c.edges[i].t <= t; i++ {
		r += c.edges[i].d
	}
	return r, i
}

// addEdge merges a bandwidth delta into the profile at time t.
func (c *SharedChannel) addEdge(t Time, d float64) {
	i := sort.Search(len(c.edges), func(i int) bool { return c.edges[i].t >= t })
	if i < len(c.edges) && c.edges[i].t == t {
		c.edges[i].d += d
		return
	}
	c.edges = append(c.edges, bwEdge{})
	copy(c.edges[i+1:], c.edges[i:])
	c.edges[i] = bwEdge{t: t, d: d}
}

// Reserve arbitrates a transfer of n bytes starting at start, bounded by the
// issuing device's own link rate maxBps, and returns its completion time.
// The bandwidth actually drawn — min(maxBps, capacity − already reserved),
// segment by segment — is reserved for the transfer's lifetime, so later
// reservations see only what this one left.
func (c *SharedChannel) Reserve(start Time, n int64, maxBps float64) Time {
	if n < 0 {
		panic("sim: negative transfer size")
	}
	if maxBps <= 0 {
		panic("sim: non-positive transfer rate")
	}
	if n == 0 {
		return start
	}
	c.reservations++

	// A device link can be wider than the shared uplink; the channel is the
	// binding resource either way.
	maxBps = math.Min(maxBps, c.capacity)

	// Fast path: nothing reserved at or after start — the transfer runs at
	// its own link rate, the dedicated-link arithmetic.
	reserved, idx := c.reservedAt(start)
	if reserved == 0 && idx == len(c.edges) {
		end := start + Time(float64(n)/maxBps*1e9)
		if end == start {
			end = start + 1 // a non-empty transfer takes at least one tick
		}
		c.addEdge(start, maxBps)
		c.addEdge(end, -maxBps)
		return end
	}

	remaining := float64(n)
	t := start
	type piece struct {
		from, to Time
		rate     float64
	}
	var pieces []piece
	for remaining > 0 {
		avail := c.capacity - reserved
		if avail < 0 {
			avail = 0
		}
		rate := math.Min(maxBps, avail)
		// Segment extends to the next breakpoint (or forever).
		segEnd := Time(math.MaxInt64)
		if idx < len(c.edges) {
			segEnd = c.edges[idx].t
		}
		if rate > 0 {
			finish := t + Time(remaining/rate*1e9)
			if finish <= t {
				finish = t + 1
			}
			if finish <= segEnd {
				pieces = append(pieces, piece{t, finish, rate})
				t = finish
				remaining = 0
				break
			}
			dur := segEnd - t
			pieces = append(pieces, piece{t, segEnd, rate})
			remaining -= rate * dur.Seconds()
			if remaining < 0 {
				remaining = 0
			}
		} else if segEnd == Time(math.MaxInt64) {
			// Fully reserved forever cannot happen: every reservation ends.
			panic(fmt.Sprintf("sim: shared channel %q starved a transfer", c.Name))
		}
		t = segEnd
		for idx < len(c.edges) && c.edges[idx].t == segEnd {
			reserved += c.edges[idx].d
			idx++
		}
	}
	for _, p := range pieces {
		if p.rate <= 0 || p.to <= p.from {
			continue
		}
		c.addEdge(p.from, p.rate)
		c.addEdge(p.to, -p.rate)
	}
	return t
}

// Validate checks the conservation invariant: at no instant does the sum of
// reserved bandwidth exceed the channel's capacity (beyond float slack).
func (c *SharedChannel) Validate() error {
	const slack = 1e-6
	var r float64
	for _, e := range c.edges {
		r += e.d
		if r > c.capacity*(1+slack) {
			return fmt.Errorf("sim: shared channel %q oversubscribed: %.0f reserved of %.0f at t=%v",
				c.Name, r, c.capacity, e.t)
		}
	}
	return nil
}

// IssueTransfer schedules a DMA transfer of n bytes on engine e within
// stream s, drawing bandwidth from shared channel c (which may be nil for a
// dedicated link). The op's duration is not fixed up front: it is setup
// latency plus however long the channel's arbitration takes to move n bytes
// at up to maxBps — so concurrent transfers on one channel stretch each
// other exactly as far as the shared capacity requires, and an uncontended
// transfer matches the dedicated-link time. Start-time rules are those of
// Issue (stream order, dependencies, engine availability, host issue time).
func (tl *Timeline) IssueTransfer(o *Op, s *Stream, e *Engine, c *SharedChannel, n int64, maxBps float64, setup Time, deps ...*Op) *Op {
	if n < 0 {
		panic(fmt.Sprintf("sim: transfer %q has negative size", o.Label))
	}
	start := tl.startTime(o, s, e, deps)
	var end Time
	if n == 0 {
		end = start
	} else if c == nil {
		end = start + setup + Time(float64(n)/maxBps*1e9)
	} else {
		end = c.Reserve(start+setup, n, maxBps)
	}
	o.Start = start
	o.End = end
	o.DurationT = end - start
	tl.commit(o, s, e)
	return o
}

// startTime computes when an op may start: stream program order, explicit
// dependencies, engine availability and the host's issue time, recording the
// dependency edges on the op.
func (tl *Timeline) startTime(o *Op, s *Stream, e *Engine, deps []*Op) Time {
	o.deps = o.depbuf[:0]
	start := tl.host
	if s.last != nil {
		o.deps = append(o.deps, s.last)
		if s.last.End > start {
			start = s.last.End
		}
	}
	for _, d := range deps {
		if d == nil {
			continue
		}
		o.deps = append(o.deps, d)
		if d.End > start {
			start = d.End
		}
	}
	if e.free > start {
		start = e.free
	}
	return start
}

// commit registers a scheduled op with its engine, stream and the timeline,
// charging the host's launch overhead.
func (tl *Timeline) commit(o *Op, s *Stream, e *Engine) {
	o.ID = len(tl.ops)
	e.free = o.End
	e.ops = append(e.ops, o)
	s.last = o
	tl.ops = append(tl.ops, o)
	tl.host += tl.LaunchOverhead
}

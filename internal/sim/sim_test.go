package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func op(label string, d Time) *Op {
	return &Op{Label: label, Kind: OpKernel, DurationT: d}
}

func TestSingleStreamFIFO(t *testing.T) {
	tl := New(0, 0)
	eng := tl.NewEngine("compute")
	s := tl.NewStream("compute")

	a := tl.Issue(op("a", 10), s, eng)
	b := tl.Issue(op("b", 20), s, eng)
	c := tl.Issue(op("c", 5), s, eng)

	if a.Start != 0 || a.End != 10 {
		t.Fatalf("a scheduled [%v,%v], want [0,10]", a.Start, a.End)
	}
	if b.Start != 10 || b.End != 30 {
		t.Fatalf("b scheduled [%v,%v], want [10,30]", b.Start, b.End)
	}
	if c.Start != 30 || c.End != 35 {
		t.Fatalf("c scheduled [%v,%v], want [30,35]", c.Start, c.End)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStreamsOverlap(t *testing.T) {
	// The Fig-9 scenario: compute kernels on one engine overlap DMA on another.
	tl := New(0, 0)
	sm := tl.NewEngine("compute")
	dma := tl.NewEngine("copyD2H")
	sc := tl.NewStream("stream_compute")
	sm2 := tl.NewStream("stream_memory")

	fwd1 := tl.Issue(op("FWD(1)", 100), sc, sm)
	off1 := tl.Issue(&Op{Label: "OFF(1)", Kind: OpCopyD2H, DurationT: 80}, sm2, dma)

	if off1.Start != 0 {
		t.Fatalf("OFF(1) should start immediately, started %v", off1.Start)
	}
	if off1.End >= fwd1.End {
		t.Fatalf("offload should hide inside compute: off end %v, fwd end %v", off1.End, fwd1.End)
	}
	// vDNN end-of-layer sync: host waits for both.
	tl.Wait(fwd1)
	tl.Wait(off1)
	if tl.Now() != 100 {
		t.Fatalf("host should be at 100 after sync, got %v", tl.Now())
	}
	// Next layer's compute starts only after the sync point.
	fwd2 := tl.Issue(op("FWD(2)", 50), sc, sm)
	if fwd2.Start != 100 {
		t.Fatalf("FWD(2) start %v, want 100", fwd2.Start)
	}
}

func TestOffloadStall(t *testing.T) {
	// When the offload is longer than the kernel, the next layer is delayed
	// until the offload drains ("wasted time" in paper Fig 9).
	tl := New(0, 0)
	smEng := tl.NewEngine("compute")
	dmaEng := tl.NewEngine("copyD2H")
	sc := tl.NewStream("stream_compute")
	smem := tl.NewStream("stream_memory")

	fwd := tl.Issue(op("FWD(1)", 30), sc, smEng)
	off := tl.Issue(&Op{Label: "OFF(1)", Kind: OpCopyD2H, DurationT: 90}, smem, dmaEng)
	tl.Wait(fwd)
	tl.Wait(off)
	fwd2 := tl.Issue(op("FWD(2)", 30), sc, smEng)
	if fwd2.Start != 90 {
		t.Fatalf("FWD(2) should stall until offload ends at 90, started %v", fwd2.Start)
	}
}

func TestCrossStreamEventDependency(t *testing.T) {
	tl := New(0, 0)
	sm := tl.NewEngine("compute")
	dma := tl.NewEngine("copyH2D")
	sc := tl.NewStream("stream_compute")
	smem := tl.NewStream("stream_memory")

	pre := tl.Issue(&Op{Label: "PRE(1)", Kind: OpCopyH2D, DurationT: 40}, smem, dma)
	// BWD(1) consumes the prefetched data: explicit dependency.
	bwd := tl.Issue(op("BWD(1)", 10), sc, sm, pre)
	if bwd.Start != 40 {
		t.Fatalf("BWD(1) must wait for prefetch, started %v", bwd.Start)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHostIssueTimeLowerBound(t *testing.T) {
	// An op can never start before the host has issued it.
	tl := New(0, 0)
	sm := tl.NewEngine("compute")
	sc := tl.NewStream("c")
	tl.AdvanceHost(25)
	a := tl.Issue(op("a", 5), sc, sm)
	if a.Start != 25 {
		t.Fatalf("op issued at host time 25 started at %v", a.Start)
	}
}

func TestLaunchAndSyncOverheads(t *testing.T) {
	tl := New(2, 7)
	sm := tl.NewEngine("compute")
	sc := tl.NewStream("c")
	a := tl.Issue(op("a", 100), sc, sm)
	if tl.Now() != 2 {
		t.Fatalf("host should advance by launch overhead, now %v", tl.Now())
	}
	b := tl.Issue(op("b", 10), sc, sm)
	if b.Start != a.End {
		t.Fatalf("b start %v, want %v", b.Start, a.End)
	}
	tl.Wait(b)
	if tl.Now() != b.End+7 {
		t.Fatalf("host after sync = %v, want %v", tl.Now(), b.End+7)
	}
	// Waiting on an already-finished op only charges sync overhead.
	before := tl.Now()
	tl.Wait(a)
	if tl.Now() != before+7 {
		t.Fatalf("re-wait charged %v, want %v", tl.Now()-before, Time(7))
	}
}

func TestWaitNilIsNoop(t *testing.T) {
	tl := New(0, 5)
	tl.Wait(nil)
	if tl.Now() != 0 {
		t.Fatalf("Wait(nil) advanced host to %v", tl.Now())
	}
	s := tl.NewStream("empty")
	tl.WaitStream(s)
	if tl.Now() != 0 {
		t.Fatalf("WaitStream(empty) advanced host to %v", tl.Now())
	}
}

func TestEngineSerializesAcrossStreams(t *testing.T) {
	// Two streams, one engine: ops must not overlap on the engine.
	tl := New(0, 0)
	e := tl.NewEngine("compute")
	s1 := tl.NewStream("s1")
	s2 := tl.NewStream("s2")
	a := tl.Issue(op("a", 50), s1, e)
	b := tl.Issue(op("b", 50), s2, e)
	if b.Start < a.End {
		t.Fatalf("engine overlapped: b starts %v before a ends %v", b.Start, a.End)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanAndBusyTime(t *testing.T) {
	tl := New(0, 0)
	e := tl.NewEngine("compute")
	s := tl.NewStream("s")
	tl.Issue(op("a", 10), s, e)
	tl.Issue(op("b", 15), s, e)
	start, end := tl.Span()
	if start != 0 || end != 25 {
		t.Fatalf("span [%v,%v], want [0,25]", start, end)
	}
	if e.BusyTime() != 25 {
		t.Fatalf("busy %v, want 25", e.BusyTime())
	}
	iv := e.BusyIntervals()
	if len(iv) != 2 || iv[0].Start != 0 || iv[1].Start != 10 {
		t.Fatalf("bad intervals %+v", iv)
	}
}

func TestEmptySpan(t *testing.T) {
	tl := New(0, 0)
	s, e := tl.Span()
	if s != 0 || e != 0 {
		t.Fatalf("empty span [%v,%v]", s, e)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	tl := New(0, 0)
	e := tl.NewEngine("x")
	s := tl.NewStream("s")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative duration")
		}
	}()
	tl.Issue(op("bad", -1), s, e)
}

// Property: for random DAGs of ops across streams/engines, Validate always
// passes and every op respects stream FIFO order.
func TestRandomScheduleInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := New(Time(rng.Intn(3)), Time(rng.Intn(3)))
		engines := []*Engine{tl.NewEngine("e0"), tl.NewEngine("e1"), tl.NewEngine("e2")}
		streams := []*Stream{tl.NewStream("s0"), tl.NewStream("s1"), tl.NewStream("s2")}
		var all []*Op
		for i := 0; i < 120; i++ {
			var deps []*Op
			if len(all) > 0 && rng.Intn(2) == 0 {
				deps = append(deps, all[rng.Intn(len(all))])
			}
			o := tl.Issue(op("op", Time(rng.Intn(50))), streams[rng.Intn(3)], engines[rng.Intn(3)], deps...)
			all = append(all, o)
			if rng.Intn(8) == 0 {
				tl.Wait(all[rng.Intn(len(all))])
			}
		}
		if err := tl.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Host never travels backward and ends no earlier than 0.
		return tl.Now() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeFormatting(t *testing.T) {
	if (1500 * Microsecond).Msec() != 1.5 {
		t.Fatalf("Msec wrong: %v", (1500 * Microsecond).Msec())
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatalf("Seconds wrong: %v", (2 * Second).Seconds())
	}
	if OpCopyD2H.String() != "copyD2H" || OpKernel.String() != "kernel" || OpCopyH2D.String() != "copyH2D" || OpHost.String() != "host" {
		t.Fatal("OpKind names wrong")
	}
}

package partition

import (
	"reflect"
	"testing"
)

// TestBalancedCoversEveryLayerOnce checks the structural invariant on a
// spread of shapes: contiguous stages, each layer in exactly one stage.
func TestBalancedCoversEveryLayerOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 57, 200} {
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = float64((i*7)%13 + 1)
		}
		for stages := 1; stages <= n && stages <= 9; stages++ {
			got, err := Balanced(costs, stages, nil)
			if err != nil {
				t.Fatalf("n=%d stages=%d: %v", n, stages, err)
			}
			if len(got) != stages {
				t.Fatalf("n=%d stages=%d: got %d stages", n, stages, len(got))
			}
			if err := Verify(got, n); err != nil {
				t.Fatalf("n=%d stages=%d: %v", n, stages, err)
			}
		}
	}
}

// TestBalancedDeterministic runs the same partition repeatedly and on a
// copied cost slice: identical output every time.
func TestBalancedDeterministic(t *testing.T) {
	costs := []float64{5, 1, 1, 1, 5, 1, 1, 1, 5, 1}
	first, err := Balanced(costs, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Balanced(append([]float64(nil), costs...), 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged: %v vs %v", i, again, first)
		}
	}
}

// TestBalancedMinimizesMaxStage checks optimality on a case with a known
// answer: uniform costs split evenly.
func TestBalancedMinimizesMaxStage(t *testing.T) {
	costs := make([]float64, 12)
	for i := range costs {
		costs[i] = 1
	}
	got, err := Balanced(costs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		if s.Len() != 3 {
			t.Fatalf("stage %d has %d layers, want 3 (%v)", i, s.Len(), got)
		}
	}

	// A heavy head forces a lone first stage.
	costs2 := []float64{100, 1, 1, 1}
	got2, err := Balanced(costs2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{{0, 1}, {1, 4}}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("got %v, want %v", got2, want)
	}
}

// TestBalancedRespectsAllowedMask only cuts at permitted boundaries, and
// errors cleanly when the mask leaves too few.
func TestBalancedRespectsAllowedMask(t *testing.T) {
	costs := []float64{1, 1, 1, 1, 1, 1}
	allowed := []bool{false, false, false, true, false, false} // only before layer 3
	got, err := Balanced(costs, 2, allowed)
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{{0, 3}, {3, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if _, err := Balanced(costs, 3, allowed); err == nil {
		t.Fatal("3 stages with one allowed boundary: want error")
	}
}

// TestBalancedErrors covers the arity failures, including the
// stages > layers contract.
func TestBalancedErrors(t *testing.T) {
	if _, err := Balanced([]float64{1, 2}, 3, nil); err == nil {
		t.Fatal("stages > layers: want error")
	}
	if _, err := Balanced(nil, 1, nil); err == nil {
		t.Fatal("no layers: want error")
	}
	if _, err := Balanced([]float64{1}, 0, nil); err == nil {
		t.Fatal("zero stages: want error")
	}
	if _, err := Balanced([]float64{1, 2, 3}, 2, []bool{true}); err == nil {
		t.Fatal("short mask: want error")
	}
}

// TestFromCuts validates explicit cut points: ordering, range, allowed
// boundaries, and the round-trip through FormatCuts/ParseCuts.
func TestFromCuts(t *testing.T) {
	got, err := FromCuts(10, []int{3, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{{0, 3}, {3, 7}, {7, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if err := Verify(got, 10); err != nil {
		t.Fatal(err)
	}

	cuts, err := ParseCuts(FormatCuts(got))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cuts, []int{3, 7}) {
		t.Fatalf("round-trip got %v", cuts)
	}

	for _, bad := range [][]int{{7, 3}, {0, 5}, {5, 10}, {5, 5}} {
		if _, err := FromCuts(10, bad, nil); err == nil {
			t.Fatalf("cuts %v: want error", bad)
		}
	}
	allowed := make([]bool, 10)
	allowed[3] = true
	if _, err := FromCuts(10, []int{3, 7}, allowed); err == nil {
		t.Fatal("disallowed cut 7: want error")
	}
}

// TestParseCuts covers the text form.
func TestParseCuts(t *testing.T) {
	got, err := ParseCuts(" 3, 7 ,9")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{3, 7, 9}) {
		t.Fatalf("got %v", got)
	}
	if c, err := ParseCuts(""); err != nil || c != nil {
		t.Fatalf("empty: got %v, %v", c, err)
	}
	if _, err := ParseCuts("3,x"); err == nil {
		t.Fatal("bad token: want error")
	}
}

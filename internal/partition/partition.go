// Package partition splits a statically ordered layer sequence into
// contiguous pipeline stages. Inter-layer model parallelism — each device
// owning a contiguous run of layers, micro-batches streaming through them —
// is the standard dataflow answer for networks too large (or too slow) for
// one device (Sze et al., "Efficient Processing of Deep Neural Networks");
// for vDNN it opens the scenario where per-stage offload traffic and
// inter-stage activation transfers contend for one interconnect.
//
// Two entry points produce the same Stage representation: Balanced computes
// the contiguous partition minimizing the maximum per-stage cost (exact
// dynamic program over the allowed cut positions, deterministic tie-break),
// and FromCuts validates explicit user cut points.
package partition

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Stage is one pipeline stage: the half-open range [Lo, Hi) of layer IDs it
// owns. Stages produced by this package are contiguous, non-empty, ordered,
// and cover [0, n) exactly once.
type Stage struct {
	Lo, Hi int
}

// Len returns the number of layers in the stage.
func (s Stage) Len() int { return s.Hi - s.Lo }

// Balanced partitions n = len(costs) layers into the given number of stages,
// minimizing the maximum per-stage cost sum. allowed[i] reports whether a
// stage boundary may sit immediately before layer i (i in [1, n)); nil
// allows every position. The result is deterministic: among optimal
// partitions the earliest cut positions win.
//
// The dynamic program is exact — O(n² · stages) over at most a few hundred
// layers and a handful of stages — so the partition is reproducible and
// cache-key friendly, unlike heuristic balancers.
func Balanced(costs []float64, stages int, allowed []bool) ([]Stage, error) {
	n := len(costs)
	if err := checkArity(n, stages); err != nil {
		return nil, err
	}
	if allowed != nil && len(allowed) != n {
		return nil, fmt.Errorf("partition: allowed mask has %d entries for %d layers", len(allowed), n)
	}
	ok := func(i int) bool { return allowed == nil || allowed[i] }
	if stages == 1 {
		return []Stage{{0, n}}, nil
	}

	// prefix[i] = sum of costs[0:i].
	prefix := make([]float64, n+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	span := func(lo, hi int) float64 { return prefix[hi] - prefix[lo] }

	const inf = 1e300
	// best[k][i]: minimal max-stage-cost splitting layers [0, i) into k
	// stages; cut[k][i]: the start of the last stage in that optimum.
	best := make([][]float64, stages+1)
	cut := make([][]int, stages+1)
	for k := 0; k <= stages; k++ {
		best[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for i := range best[k] {
			best[k][i] = inf
			cut[k][i] = -1
		}
	}
	best[0][0] = 0
	for k := 1; k <= stages; k++ {
		for i := k; i <= n; i++ {
			// Last stage is [j, i); j = 0 only when k == 1, and j > 0 must be
			// an allowed boundary.
			for j := k - 1; j < i; j++ {
				if j > 0 && !ok(j) {
					continue
				}
				if best[k-1][j] == inf {
					continue
				}
				c := span(j, i)
				if best[k-1][j] > c {
					c = best[k-1][j]
				}
				// Strict improvement keeps the earliest optimal cut.
				if c < best[k][i] {
					best[k][i] = c
					cut[k][i] = j
				}
			}
		}
	}
	if best[stages][n] >= inf {
		return nil, fmt.Errorf("partition: no valid %d-stage cut of %d layers (allowed boundaries too sparse)", stages, n)
	}

	out := make([]Stage, stages)
	hi := n
	for k := stages; k >= 1; k-- {
		lo := cut[k][hi]
		out[k-1] = Stage{Lo: lo, Hi: hi}
		hi = lo
	}
	return out, nil
}

// FromCuts builds the stage ranges implied by explicit cut points: each cut
// c means a stage boundary immediately before layer c. Cuts must be strictly
// increasing within (0, n); the resulting partition has len(cuts)+1 stages.
// allowed (optional, same contract as Balanced) rejects cuts at disallowed
// boundaries.
func FromCuts(n int, cuts []int, allowed []bool) ([]Stage, error) {
	if err := checkArity(n, len(cuts)+1); err != nil {
		return nil, err
	}
	if !sort.IntsAreSorted(cuts) {
		return nil, fmt.Errorf("partition: cut points %v are not increasing", cuts)
	}
	out := make([]Stage, 0, len(cuts)+1)
	lo := 0
	for _, c := range cuts {
		if c <= lo || c >= n {
			return nil, fmt.Errorf("partition: cut %d out of range (want %d < cut < %d)", c, lo, n)
		}
		if allowed != nil && !allowed[c] {
			return nil, fmt.Errorf("partition: no stage boundary possible before layer %d", c)
		}
		out = append(out, Stage{Lo: lo, Hi: c})
		lo = c
	}
	return append(out, Stage{Lo: lo, Hi: n}), nil
}

// ParseCuts parses a comma-separated cut-point list ("5,9,13").
func ParseCuts(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("partition: bad cut point %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// FormatCuts renders stage boundaries in ParseCuts form (empty for one
// stage) — the canonical normalization of an explicit cut list.
func FormatCuts(stages []Stage) string {
	if len(stages) <= 1 {
		return ""
	}
	parts := make([]string, 0, len(stages)-1)
	for _, s := range stages[1:] {
		parts = append(parts, strconv.Itoa(s.Lo))
	}
	return strings.Join(parts, ",")
}

// Verify checks that stages form a contiguous, non-empty, exact cover of
// [0, n) — the invariant every consumer of a partition relies on.
func Verify(stages []Stage, n int) error {
	if len(stages) == 0 {
		return fmt.Errorf("partition: empty partition")
	}
	lo := 0
	for i, s := range stages {
		if s.Lo != lo {
			return fmt.Errorf("partition: stage %d starts at %d, want %d", i, s.Lo, lo)
		}
		if s.Hi <= s.Lo {
			return fmt.Errorf("partition: stage %d is empty [%d,%d)", i, s.Lo, s.Hi)
		}
		lo = s.Hi
	}
	if lo != n {
		return fmt.Errorf("partition: stages cover [0,%d), want [0,%d)", lo, n)
	}
	return nil
}

func checkArity(n, stages int) error {
	if n <= 0 {
		return fmt.Errorf("partition: no layers to partition")
	}
	if stages < 1 {
		return fmt.Errorf("partition: need at least one stage, got %d", stages)
	}
	if stages > n {
		return fmt.Errorf("partition: %d stages exceed %d layers", stages, n)
	}
	return nil
}

package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// stepCtx reports itself canceled after a fixed number of Err checks — a
// deterministic way to cancel exactly mid-simulation, independent of timing.
type stepCtx struct {
	context.Context
	remaining atomic.Int64
}

func newStepCtx(allow int64) *stepCtx {
	c := &stepCtx{Context: context.Background()}
	c.remaining.Store(allow)
	return c
}

func (c *stepCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestRunContextPreCanceled checks an already-canceled context returns
// immediately with the sentinel, before any simulation work.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, alexNet, cfg(VDNNConv, MemOptimal))
	if res != nil {
		t.Fatalf("canceled run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also match context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels after a handful of per-layer checks in
// every trainer — single-device, data-parallel, pipeline — and checks the
// run aborts with the sentinel instead of finishing or misreporting OOM.
func TestRunContextCancelMidRun(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single", cfg(VDNNConv, MemOptimal)},
		{"data-parallel", Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal, Devices: 2}},
		{"pipeline", Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal, Stages: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Let validation and a few layers pass, then cancel.
			ctx := newStepCtx(8)
			res, err := RunContext(ctx, alexNet, tc.cfg)
			if res != nil {
				t.Fatalf("canceled run returned a result: %+v", res)
			}
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
			}
		})
	}
}

// TestRunContextCancelDuringProfiling checks the dynamic policy's profiler
// propagates cancellation instead of reading a canceled candidate as
// "untrainable".
func TestRunContextCancelDuringProfiling(t *testing.T) {
	ctx := newStepCtx(3)
	res, err := RunContext(ctx, vgg64, cfg(VDNNDyn, PerfOptimal))
	if res != nil {
		t.Fatalf("canceled profiling run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestRunContextDeadlineCause checks the wrapped cause distinguishes a
// deadline from a plain cancel — the serving layer's 408-vs-499 split.
func TestRunContextDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, alexNet, cfg(VDNNConv, MemOptimal))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v matches context.Canceled; deadline cause lost", err)
	}
}

// TestCancelReturnsPromptly is the cancel-to-return bound: once cancel fires
// mid-simulation, RunContext must return within the cost of one layer's
// bookkeeping — milliseconds — not a full simulation. The deep VGG
// configuration simulates long enough (hundreds of layers × two iterations)
// that cancellation lands mid-run.
func TestCancelReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var canceledAt atomic.Int64
	go func() {
		time.Sleep(5 * time.Millisecond)
		canceledAt.Store(time.Now().UnixNano())
		cancel()
	}()
	// Many iterations of the deep network: a run long enough (hundreds of
	// ms) that the 5 ms cancel always lands mid-flight.
	longCfg := cfg(VDNNAll, MemOptimal)
	longCfg.Iterations = 100
	_, err := RunContext(ctx, vgg416Deep, longCfg)
	returned := time.Now().UnixNano()
	if err == nil {
		// The simulation beat the cancel — possible on a very fast machine;
		// the determinism of the bound is covered by the stepCtx tests.
		t.Skip("simulation finished before cancellation landed")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	at := canceledAt.Load()
	if at == 0 {
		t.Fatal("run failed before cancel fired")
	}
	if lag := time.Duration(returned - at); lag > time.Second {
		t.Fatalf("cancel-to-return took %s, want well under 1s", lag)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports a simulation that was aborted by its context before it
// finished. The returned error also wraps the context's cause, so
// errors.Is(err, context.Canceled) (or context.DeadlineExceeded) holds as
// well and callers can distinguish a client abandoning the request from a
// deadline firing.
//
// Cancellation is observed at layer boundaries of the simulated training
// iteration — and at micro-batch boundaries under pipeline parallelism — so
// a canceled simulation stops within one layer's worth of host work, leaving
// no partially built Result behind.
var ErrCanceled = errors.New("core: simulation canceled")

// canceled wraps a done context into the error every aborted simulation
// returns: ErrCanceled carrying the context's cause.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// checkCtx is the per-layer cancellation probe of the hot loops: one atomic
// load when a context is attached, nothing otherwise.
func (e *runtime) checkCtx() error {
	if e.ctx != nil && e.ctx.Err() != nil {
		return canceled(e.ctx)
	}
	return nil
}

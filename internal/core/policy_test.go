package core

import (
	"reflect"
	"strings"
	"testing"

	"vdnn/internal/dnn"
)

// mustRun simulates without the cross-test cache (whose key ignores Custom).
func mustRun(t *testing.T, net *dnn.Network, cfg Config) *Result {
	t.Helper()
	r, err := Run(net, cfg)
	if err != nil {
		t.Fatalf("%s: %v", net.Name, err)
	}
	return r
}

// TestBuiltinPoliciesRouteThroughInterface pins the tentpole guarantee of the
// policy extraction: running a built-in Policy enum and running its
// OffloadPolicy implementation through Config.Custom are the same simulation,
// field for field.
func TestBuiltinPoliciesRouteThroughInterface(t *testing.T) {
	net := alexNet
	for _, p := range []Policy{Baseline, VDNNAll, VDNNConv, VDNNDyn} {
		pol, err := BuiltinPolicy(p)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Name() != p.String() {
			t.Errorf("BuiltinPolicy(%v).Name() = %q, want %q", p, pol.Name(), p)
		}
		enum, err := Run(net, Config{Spec: titan(), Policy: p, Algo: MemOptimal})
		if err != nil {
			t.Fatalf("%v enum run: %v", p, err)
		}
		custom, err := Run(net, Config{Spec: titan(), Policy: p, Algo: MemOptimal, Custom: pol})
		if err != nil {
			t.Fatalf("%v custom run: %v", p, err)
		}
		if !reflect.DeepEqual(enum, custom) {
			t.Errorf("%v: enum and interface-routed results differ", p)
		}
	}
}

// sizePolicy is a user-style custom policy: offload only CONV-layer inputs of
// at least Threshold bytes (a size-aware refinement of vDNN-conv).
type sizePolicy struct {
	Threshold int64
}

func (p sizePolicy) Name() string { return "size-conv" }
func (p sizePolicy) OffloadInput(net *dnn.Network, t *dnn.Tensor, c *dnn.Layer) bool {
	return c.Kind == dnn.Conv && t.Bytes(net.DType) >= p.Threshold
}
func (p sizePolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, requested AlgoMode) AlgoMode {
	return requested
}
func (p sizePolicy) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}

// TestCustomPolicy checks a user-defined policy runs end to end: a zero
// threshold reproduces vDNN-conv's traffic exactly, a huge threshold offloads
// nothing, and an intermediate threshold lands strictly between.
func TestCustomPolicy(t *testing.T) {
	net := alexNet
	conv := mustRun(t, net, Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal})

	all := mustRun(t, net, Config{Spec: titan(), Custom: sizePolicy{Threshold: 0}, Algo: MemOptimal})
	if all.OffloadBytes != conv.OffloadBytes {
		t.Errorf("threshold 0 offloads %d bytes, want vDNN-conv's %d", all.OffloadBytes, conv.OffloadBytes)
	}
	if all.PolicyName != "size-conv" {
		t.Errorf("PolicyName = %q, want size-conv", all.PolicyName)
	}

	none := mustRun(t, net, Config{Spec: titan(), Custom: sizePolicy{Threshold: 1 << 40}, Algo: MemOptimal})
	if none.OffloadBytes != 0 {
		t.Errorf("huge threshold still offloads %d bytes", none.OffloadBytes)
	}
	// Even with nothing offloaded a custom policy runs under the vDNN
	// runtime: feature maps are allocated and released per-layer, so peak
	// usage must stay below the baseline's network-wide residency.
	base := mustRun(t, net, Config{Spec: titan(), Policy: Baseline, Algo: MemOptimal})
	if none.MaxUsage >= base.MaxUsage {
		t.Errorf("custom no-offload peak %d not below baseline %d", none.MaxUsage, base.MaxUsage)
	}

	mid := mustRun(t, net, Config{Spec: titan(), Custom: sizePolicy{Threshold: 40 << 20}, Algo: MemOptimal})
	if mid.OffloadBytes <= 0 || mid.OffloadBytes >= conv.OffloadBytes {
		t.Errorf("mid threshold offload %d, want in (0, %d)", mid.OffloadBytes, conv.OffloadBytes)
	}
}

// mixedAlgoPolicy overrides the algorithm mode per layer: performance-optimal
// for the first CONV layer, memory-optimal everywhere else.
type mixedAlgoPolicy struct{}

func (mixedAlgoPolicy) Name() string { return "mixed-algo" }
func (mixedAlgoPolicy) OffloadInput(net *dnn.Network, t *dnn.Tensor, c *dnn.Layer) bool {
	return c.Kind == dnn.Conv
}
func (mixedAlgoPolicy) Algorithms(net *dnn.Network, l *dnn.Layer, _ AlgoMode) AlgoMode {
	if l == net.ConvLayers()[0] {
		return PerfOptimal
	}
	return MemOptimal
}
func (mixedAlgoPolicy) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}

// TestCustomPolicyPerLayerAlgorithms checks the per-layer algorithm hook: a
// mixed policy must run at least as fast as all-memory-optimal and use no
// more memory than all-performance-optimal.
func TestCustomPolicyPerLayerAlgorithms(t *testing.T) {
	net := alexNet
	mixed := mustRun(t, net, Config{Spec: titan(), Custom: mixedAlgoPolicy{}, Algo: MemOptimal})
	m := mustRun(t, net, Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal})
	p := mustRun(t, net, Config{Spec: titan(), Policy: VDNNConv, Algo: PerfOptimal})
	if mixed.IterTime > m.IterTime {
		t.Errorf("mixed algo iter %v slower than all-(m) %v", mixed.IterTime, m.IterTime)
	}
	if mixed.MaxUsage > p.MaxUsage {
		t.Errorf("mixed algo peak %d above all-(p) %d", mixed.MaxUsage, p.MaxUsage)
	}
	if mixed.IterTime == m.IterTime && mixed.MaxUsage == m.MaxUsage {
		t.Error("mixed algo indistinguishable from all-(m); per-layer hook ignored?")
	}
}

// cheapestTrainable is a custom Profiler: among a fixed candidate list it
// returns the trainable configuration with the lowest iteration time.
type cheapestTrainable struct{}

func (cheapestTrainable) Name() string { return "cheapest-trainable" }
func (cheapestTrainable) OffloadInput(net *dnn.Network, t *dnn.Tensor, c *dnn.Layer) bool {
	return !c.InPlace
}
func (cheapestTrainable) Algorithms(_ *dnn.Network, _ *dnn.Layer, requested AlgoMode) AlgoMode {
	return requested
}
func (cheapestTrainable) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}
func (cheapestTrainable) Profile(net *dnn.Network, cfg Config, simulate Simulate) (*Result, error) {
	var best *Result
	for _, c := range []struct {
		p Policy
		a AlgoMode
	}{{Baseline, PerfOptimal}, {VDNNConv, PerfOptimal}, {VDNNAll, MemOptimal}} {
		sub := cfg
		sub.Custom = nil
		sub.Policy = c.p
		sub.Algo = c.a
		res, err := simulate(sub)
		if err != nil {
			return nil, err
		}
		if res != nil && (best == nil || res.IterTime < best.IterTime) {
			best = res
		}
	}
	if best == nil {
		return nil, nil
	}
	best.PolicyName = "cheapest-trainable"
	return best, nil
}

// TestCustomProfiler checks a user-defined profiling policy drives candidate
// simulations through the Simulate callback and owns the final result.
func TestCustomProfiler(t *testing.T) {
	net := alexNet
	res, err := Run(net, Config{Spec: titan(), Custom: cheapestTrainable{}})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Trainable {
		t.Fatal("profiler returned no trainable result")
	}
	if res.PolicyName != "cheapest-trainable" {
		t.Errorf("PolicyName = %q", res.PolicyName)
	}
	// AlexNet(128) fits the baseline, which is also the fastest candidate.
	base := mustRun(t, net, Config{Spec: titan(), Policy: Baseline, Algo: PerfOptimal})
	if res.IterTime != base.IterTime {
		t.Errorf("profiler picked iter %v, want baseline's %v", res.IterTime, base.IterTime)
	}
}

// TestProfilerCannotRecurse asserts a profiling policy's candidates must be
// static: asking Simulate for another profiling policy is an error, not a
// stack overflow.
func TestProfilerCannotRecurse(t *testing.T) {
	var leaked Simulate
	grab := recursingProfiler{sim: &leaked}
	if _, err := Run(alexNet, Config{Spec: titan(), Custom: grab}); err != nil {
		t.Fatalf("setup run: %v", err)
	}
	sub := Config{Spec: titan(), Policy: VDNNDyn}
	if _, err := leaked(sub); err == nil || !strings.Contains(err.Error(), "profiling policy") {
		t.Errorf("recursive simulate error = %v, want profiling-policy rejection", err)
	}
}

type recursingProfiler struct{ sim *Simulate }

func (recursingProfiler) Name() string                                            { return "recursing" }
func (recursingProfiler) OffloadInput(*dnn.Network, *dnn.Tensor, *dnn.Layer) bool { return false }
func (recursingProfiler) Algorithms(_ *dnn.Network, _ *dnn.Layer, r AlgoMode) AlgoMode {
	return r
}
func (recursingProfiler) PrefetchSchedule(_ *dnn.Network, r PrefetchMode) PrefetchMode { return r }
func (p recursingProfiler) Profile(net *dnn.Network, cfg Config, simulate Simulate) (*Result, error) {
	*p.sim = simulate
	sub := cfg
	sub.Custom = nil
	sub.Policy = Baseline
	sub.Algo = MemOptimal
	return simulate(sub)
}

package core

import (
	"reflect"
	"testing"

	"vdnn/internal/compress"
	"vdnn/internal/dnn"
	"vdnn/internal/pcie"
)

func zvc() compress.Config { return compress.Config{Codec: compress.CodecZVC} }

// TestCompressionReducesOffloadTraffic is the tentpole's headline property:
// with the ZVC codec active, the wire traffic drops below the raw traffic,
// the raw accounting is unchanged, and the codec busy time is charged.
func TestCompressionReducesOffloadTraffic(t *testing.T) {
	base := Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal}
	comp := base
	comp.Compression = zvc()
	for _, net := range []*dnn.Network{alexNet, vgg64} {
		rb := run(t, net, base)
		rc := run(t, net, comp)
		if rc.OffloadBytes >= rb.OffloadBytes {
			t.Errorf("%s: compression did not shrink offload traffic (%d vs %d)",
				net.Name, rc.OffloadBytes, rb.OffloadBytes)
		}
		if rc.PrefetchBytes >= rb.PrefetchBytes {
			t.Errorf("%s: compression did not shrink prefetch traffic", net.Name)
		}
		if rc.OffloadRawBytes != rb.OffloadBytes {
			t.Errorf("%s: raw bytes %d != uncompressed wire bytes %d",
				net.Name, rc.OffloadRawBytes, rb.OffloadBytes)
		}
		if rb.OffloadRawBytes != rb.OffloadBytes || rb.CompressionRatio != 1 {
			t.Errorf("%s: uncompressed run reports raw %d wire %d ratio %v",
				net.Name, rb.OffloadRawBytes, rb.OffloadBytes, rb.CompressionRatio)
		}
		if rc.CompressionRatio <= 1 {
			t.Errorf("%s: compression ratio %v not > 1", net.Name, rc.CompressionRatio)
		}
		if rc.CompressTime <= 0 || rc.DecompressTime <= 0 {
			t.Errorf("%s: codec time not charged (%v, %v)", net.Name, rc.CompressTime, rc.DecompressTime)
		}
		if rc.OnDemandFetches != 0 {
			t.Errorf("%s: compression broke the prefetch schedule (%d misses)", net.Name, rc.OnDemandFetches)
		}
		// ReLU-heavy offload sets must beat 1.5x under the cdma profile (the
		// follow-up paper's 2-4x is measured on the offloaded activations
		// alone; our wire total includes the dense input batch).
		if rc.CompressionRatio < 1.5 {
			t.Errorf("%s: ratio %.2f implausibly low for the cdma profile", net.Name, rc.CompressionRatio)
		}
	}
}

// TestCompressionDenseProfileIsPassThrough: a profile with no zeros anywhere
// makes every codec bypass, reproducing the uncompressed schedule exactly.
func TestCompressionDenseProfileIsPassThrough(t *testing.T) {
	base := Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, CaptureSchedule: true}
	dense := base
	dense.Compression = compress.Config{Codec: compress.CodecZVC, Sparsity: "dense"}
	rb := run(t, vgg64, base)
	rd := run(t, vgg64, dense)
	if rd.OffloadBytes != rb.OffloadBytes || rd.IterTime != rb.IterTime {
		t.Fatalf("dense-profile run diverged: %d/%v vs %d/%v",
			rd.OffloadBytes, rd.IterTime, rb.OffloadBytes, rb.IterTime)
	}
	if rd.CompressTime != 0 || rd.DecompressTime != 0 {
		t.Fatalf("dense-profile run charged codec time (%v, %v)", rd.CompressTime, rd.DecompressTime)
	}
	if !reflect.DeepEqual(rd.Schedule, rb.Schedule) {
		t.Fatal("dense-profile schedule differs from the uncompressed schedule")
	}
}

// TestCompressionTraceStreams pins where codec events land: compression on
// the offload engine (copyD2H), decompression on the prefetch engine
// (copyH2D), and each bracketed by its transfer on the same engine.
func TestCompressionTraceStreams(t *testing.T) {
	cfg := Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, CaptureSchedule: true}
	cfg.Compression = zvc()
	r := run(t, vgg64, cfg)
	var nCmp, nDec int
	for _, op := range r.Schedule {
		switch op.Kind {
		case "compress":
			nCmp++
			if op.Engine != "copyD2H" {
				t.Fatalf("compression event %q on engine %s, want copyD2H", op.Label, op.Engine)
			}
		case "decompress":
			nDec++
			if op.Engine != "copyH2D" {
				t.Fatalf("decompression event %q on engine %s, want copyH2D", op.Label, op.Engine)
			}
		}
	}
	if nCmp == 0 || nDec == 0 {
		t.Fatalf("codec events missing from the schedule: %d compress, %d decompress", nCmp, nDec)
	}
}

// vetoCompression is a custom policy that defers to vDNN-all for offloading
// but vetoes the codec on every buffer.
type vetoCompression struct{ OffloadPolicy }

func (vetoCompression) Name() string { return "veto-compression" }
func (vetoCompression) Compress(_ *dnn.Network, _ *dnn.Tensor, _ compress.Codec) compress.Codec {
	return compress.CodecNone
}

// TestCompressionPolicyHook: a CompressionPolicy can veto the configured
// codec per buffer, leaving the wire traffic uncompressed.
func TestCompressionPolicyHook(t *testing.T) {
	all, err := BuiltinPolicy(VDNNAll)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: titan(), Algo: MemOptimal, Custom: vetoCompression{all}}
	cfg.Compression = zvc()
	r := run(t, vgg64, cfg)
	plain := run(t, vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal})
	if r.OffloadBytes != plain.OffloadBytes || r.CompressionRatio != 1 {
		t.Fatalf("veto policy still compressed: wire %d (plain %d), ratio %v",
			r.OffloadBytes, plain.OffloadBytes, r.CompressionRatio)
	}
}

// TestCompressionMultiDevice: the codec composes with the data-parallel
// trainer — every replica compresses, the aggregate accounting holds, and
// contention on the shared root complex still validates.
func TestCompressionMultiDevice(t *testing.T) {
	cfg := Config{
		Spec: titan(), Policy: VDNNAll, Algo: MemOptimal,
		Devices: 2, Topology: pcie.SharedGen3Root(),
	}
	cfg.Compression = zvc()
	r := run(t, vgg64, cfg)
	var wire, raw int64
	for _, d := range r.Devices {
		if d.CompressionRatio <= 1 {
			t.Errorf("device %d ratio %v not > 1", d.Device, d.CompressionRatio)
		}
		if d.CodecBusy <= 0 {
			t.Errorf("device %d codec busy time missing", d.Device)
		}
		wire += d.OffloadBytes
		raw += d.OffloadRawBytes
	}
	if wire != r.OffloadBytes || raw != r.OffloadRawBytes {
		t.Fatalf("aggregate traffic mismatch: wire %d vs %d, raw %d vs %d",
			wire, r.OffloadBytes, raw, r.OffloadRawBytes)
	}
	if r.OffloadBytes >= r.OffloadRawBytes {
		t.Fatal("multi-device compression saved nothing")
	}
}

// TestCompressionPageMigrationNormalizedAway: the codec lives in the DMA
// engines, so the page-migration ablation drops it (and shares cache keys
// with the plain page-migration configuration).
func TestCompressionPageMigrationNormalizedAway(t *testing.T) {
	cfg := Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, PageMigration: true}
	cfg.Compression = zvc()
	if got := cfg.WithDefaults().Compression; got != (compress.Config{}) {
		t.Fatalf("page migration kept compression: %+v", got)
	}
	r := run(t, alexNet, cfg)
	if r.CompressionRatio != 1 || r.CompressTime != 0 {
		t.Fatalf("page-migration run compressed anyway: ratio %v", r.CompressionRatio)
	}
}

// TestCompressionConfigNormalization pins the cache-key contract: the zero
// value stays zero, and an active codec resolves its default profile.
func TestCompressionConfigNormalization(t *testing.T) {
	plain := Config{Spec: titan(), Policy: VDNNAll}.WithDefaults()
	if plain.Compression != (compress.Config{}) {
		t.Fatalf("zero compression normalized to %+v", plain.Compression)
	}
	cfg := Config{Spec: titan(), Policy: VDNNAll}
	cfg.Compression = zvc()
	if got := cfg.WithDefaults().Compression.Sparsity; got != compress.DefaultProfile {
		t.Fatalf("default profile = %q, want %q", got, compress.DefaultProfile)
	}
	bad := Config{Spec: titan(), Policy: VDNNAll}
	bad.Compression = compress.Config{Codec: compress.CodecZVC, Sparsity: "no-such-profile"}
	if _, err := Run(alexNet, bad); err == nil {
		t.Fatal("unknown sparsity profile accepted")
	}
}

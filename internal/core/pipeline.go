package core

import (
	"context"
	"fmt"

	"vdnn/internal/compress"
	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/partition"
	"vdnn/internal/sim"
)

// Pipeline-parallel trainer (Config.Stages > 1).
//
// The network's layer sequence is split into contiguous stages, one device
// per stage, and each iteration's minibatch into Config.MicroBatches
// micro-batches that stream through the stages GPipe-style: a fill phase
// while the first micro-batches propagate forward, a steady state where
// every stage works on a different micro-batch, and a drain during backward.
// Each stage runs the full vDNN runtime on its own layers — per-stage
// offload/prefetch under the configured OffloadPolicy, per-stage memory
// pool, per-stage codec decisions — while the boundary activations
// (forward) and boundary gradients (backward) cross the Topology's
// interconnect, contending with that offload traffic on the shared
// root-complex channels. Activation sends go through the compressing DMA
// engine when Config.Compression is active; gradients move dense (the cDMA
// observation: sparsity lives in activations).

// stageBoundary is the single feature map crossing between stage b and
// stage b+1, with its resolved activation codec (compressed == false means
// the transfer moves raw bytes).
type stageBoundary struct {
	t          *dnn.Tensor
	codec      codecDecision
	compressed bool
}

// pipelineStages derives the stage partition of a pipeline configuration:
// explicit Config.StageCuts when given, otherwise the balanced-by-cost
// partitioner over the allowed cut positions. A cut position is allowed when
// exactly one live feature map crosses it and that map's gradient is its own
// (no concat/add gradient aliasing across the boundary) — the single
// activation/gradient hand-off the inter-stage transfer machinery models.
func pipelineStages(net *dnn.Network, cfg Config, pol OffloadPolicy) ([]partition.Stage, []stageBoundary, error) {
	n := len(net.Layers)
	allowed, crossing := allowedCuts(net)

	var parts []partition.Stage
	if cfg.StageCuts != "" {
		cuts, err := partition.ParseCuts(cfg.StageCuts)
		if err != nil {
			return nil, nil, err
		}
		if len(cuts)+1 != cfg.Stages {
			return nil, nil, fmt.Errorf("core: %d stage cuts define %d stages, Config.Stages is %d",
				len(cuts), len(cuts)+1, cfg.Stages)
		}
		parts, err = partition.FromCuts(n, cuts, allowed)
		if err != nil {
			return nil, nil, err
		}
	} else {
		costs := make([]float64, n)
		for i, l := range net.Layers {
			costs[i] = layerCostEstimate(cfg.Spec, net, l, cfg.Algo)
		}
		var err error
		parts, err = partition.Balanced(costs, cfg.Stages, allowed)
		if err != nil {
			return nil, nil, err
		}
	}
	if err := partition.Verify(parts, n); err != nil {
		return nil, nil, err
	}

	bounds := make([]stageBoundary, len(parts)-1)
	for b := range bounds {
		bounds[b] = stageBoundary{t: crossing[parts[b].Hi]}
	}
	if err := resolveBoundaryCodecs(net, cfg, pol, bounds); err != nil {
		return nil, nil, err
	}
	return parts, bounds, nil
}

// allowedCuts computes the valid stage-boundary positions and, for each, the
// crossing tensor. Position i (a boundary immediately before layer i) is
// allowed when exactly one tensor is live across it — produced by a layer
// below i, still consumed at or above i — the network input crosses nowhere,
// and the crossing tensor owns its gradient (GradRoot(t) == t with gradient
// info, so a dense dX can be handed back across the boundary).
func allowedCuts(net *dnn.Network) (allowed []bool, crossing []*dnn.Tensor) {
	n := len(net.Layers)
	allowed = make([]bool, n)
	crossing = make([]*dnn.Tensor, n+1)
	gradInfos := dnn.GradientInfos(net)
	for i := 1; i < n; i++ {
		var cross *dnn.Tensor
		count := 0
		inputLive := false
		for _, t := range net.Tensors {
			live := false
			for _, c := range t.Consumer {
				if c.ID >= i {
					live = true
					break
				}
			}
			if !live {
				continue
			}
			if t.Producer == nil {
				inputLive = true
				break
			}
			if t.Producer.ID < i {
				cross = t
				count++
			}
		}
		if inputLive || count != 1 {
			continue
		}
		if dnn.GradRoot(cross) != cross || gradInfos[cross] == nil {
			continue
		}
		allowed[i] = true
		crossing[i] = cross
	}
	return allowed, crossing
}

// layerCostEstimate scores one layer for the balanced partitioner: forward
// plus backward kernel time under the requested algorithm mode (greedy
// layers are estimated memory-optimal, their guaranteed-feasible floor).
// Only relative magnitudes matter — the estimate balances stages, the
// simulation itself uses the real plan.
func layerCostEstimate(spec gpu.Spec, net *dnn.Network, l *dnn.Layer, algo AlgoMode) float64 {
	d := net.DType
	var algos LayerAlgos
	if l.Kind == dnn.Conv {
		switch algo {
		case PerfOptimal:
			g := l.ConvGeom(d)
			algos = LayerAlgos{
				Fwd:       cudnnsim.FastestAlgo(spec, g, cudnnsim.Fwd, -1).Algo,
				BwdData:   cudnnsim.FastestAlgo(spec, g, cudnnsim.BwdData, -1).Algo,
				BwdFilter: cudnnsim.FastestAlgo(spec, g, cudnnsim.BwdFilter, -1).Algo,
			}
		default:
			algos = LayerAlgos{cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM}
		}
	}
	total := fwdKernelCost(spec, d, l, algos).Dur
	for _, c := range bwdKernelCosts(spec, d, l, algos) {
		total += c.Dur
	}
	return float64(total)
}

// resolveBoundaryCodecs fills each boundary's activation codec decision by
// running the crossing tensors through buildCompression — the exact
// resolution the offload plan applies (configured codec, sparsity profile,
// CompressionPolicy hook), so inter-stage activations compress exactly like
// offloaded ones.
func resolveBoundaryCodecs(net *dnn.Network, cfg Config, pol OffloadPolicy, bounds []stageBoundary) error {
	ts := make([]*dnn.Tensor, len(bounds))
	for i := range bounds {
		ts[i] = bounds[i].t
	}
	decisions, err := buildCompression(net, cfg, pol, ts)
	if err != nil {
		return err
	}
	for i := range bounds {
		if d, ok := decisions[bounds[i].t]; ok {
			bounds[i].codec = d
			bounds[i].compressed = true
		}
	}
	return nil
}

// executePP simulates a pipeline-parallel configuration: per-stage runtimes
// on one shared timeline, micro-batches streamed through them with
// inter-stage transfers arbitrated over the topology's shared channels.
func executePP(ctx context.Context, net *dnn.Network, cfg Config, pol OffloadPolicy) (*Result, error) {
	parts, bounds, err := pipelineStages(net, cfg, pol)
	if err != nil {
		return nil, err
	}
	tl := sim.New(cfg.Spec.LaunchOverhead, cfg.Spec.SyncOverhead)
	var down, up *sim.SharedChannel
	if cfg.Topology.Shared() {
		down = sim.NewSharedChannel("root.down", float64(cfg.Topology.RootBps))
		up = sim.NewSharedChannel("root.up", float64(cfg.Topology.RootBps))
	}

	// Stages share the node's host DRAM: split the pinned-memory budget.
	stCfg := cfg
	stCfg.HostBytes = cfg.HostBytes / int64(cfg.Stages)

	rts := make([]*runtime, len(parts))
	for s, pr := range parts {
		dev := gpu.NewDeviceOn(tl, cfg.Spec, s, down, up)
		dev.UsePageMigration = cfg.PageMigration
		plan, err := buildStagePlan(net, cfg, pol, pr.Lo, pr.Hi)
		if err != nil {
			return nil, fmt.Errorf("stage %d: %w", s, err)
		}
		rt, err := newRuntimeRange(net, stCfg, plan, dev, pr.Lo, pr.Hi, cfg.MicroBatches, nil)
		if err != nil {
			return nil, fmt.Errorf("stage %d: %w", s, err)
		}
		rt.ctx = ctx
		rts[s] = rt
	}

	var winStart sim.Time
	for iter := 0; iter < cfg.Iterations; iter++ {
		for _, rt := range rts {
			rt.iter = iter
			rt.resetIteration()
		}
		winStart = tl.Now()
		if err := runStepPP(net, rts, bounds); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", iter, err)
		}
	}
	winEnd := tl.Now()
	if err := tl.Validate(); err != nil {
		return nil, fmt.Errorf("core: schedule invariant broken: %w", err)
	}
	for _, ch := range []*sim.SharedChannel{down, up} {
		if ch == nil {
			continue
		}
		if err := ch.Validate(); err != nil {
			return nil, fmt.Errorf("core: interconnect invariant broken: %w", err)
		}
	}
	return assemblePP(rts, cfg, winStart, winEnd), nil
}

// runStepPP drives one training step through the pipeline: a GPipe forward
// schedule (at clock step k, stage s issues micro-batch k−s), the mirrored
// backward schedule in reverse micro-batch order, then per-stage weight
// updates over the accumulated gradients. Stage synchronization is purely
// event-based — the shared host thread never blocks mid-pipeline, so one
// stage's transfers stall another only through real engine and interconnect
// contention.
func runStepPP(net *dnn.Network, rts []*runtime, bounds []stageBoundary) error {
	S := len(rts)
	M := rts[0].mbCount

	for step := 0; step <= (S-1)+(M-1); step++ {
		if err := rts[0].checkCtx(); err != nil {
			return err
		}
		for s := 0; s < S; s++ {
			mb := step - s
			if mb < 0 || mb >= M {
				continue
			}
			rt := rts[s]
			rt.setMB(mb)
			if s == 0 {
				if err := rt.beginIteration(); err != nil {
					return fmt.Errorf("stage 0: %w", err)
				}
			}
			for _, l := range net.Layers[rt.lo:rt.hi] {
				p, err := rt.issueForward(l)
				if err != nil {
					return fmt.Errorf("stage %d: fwd %s (mb %d): %w", s, l.Name, mb, err)
				}
				rt.finishForwardAsync(p)
			}
			if s < S-1 {
				if err := sendActivation(rts[s], rts[s+1], bounds[s], mb); err != nil {
					return fmt.Errorf("stage %d: %w", s, err)
				}
			}
		}
	}

	// gradRecv[s][m]: the receive of stage s's output gradient for
	// micro-batch m, written by stage s+1's backward one clock step earlier.
	gradRecv := make([][]*sim.Op, S)
	for s := range gradRecv {
		gradRecv[s] = make([]*sim.Op, M)
	}
	for step := 0; step <= (S-1)+(M-1); step++ {
		if err := rts[0].checkCtx(); err != nil {
			return err
		}
		for s := S - 1; s >= 0; s-- {
			m := (S - 1 - s) + (M - 1) - step
			if m < 0 || m >= M {
				continue
			}
			rt := rts[s]
			rt.setMB(m)
			if s < S-1 {
				if err := installBoundaryGrad(rt, bounds[s], gradRecv[s][m]); err != nil {
					return fmt.Errorf("stage %d (mb %d): %w", s, m, err)
				}
			}
			for i := rt.hi - 1; i >= rt.lo; i-- {
				l := net.Layers[i]
				// Event-based: no host-blocking end-of-layer sync; the
				// prefetch/kernel ordering is carried by op dependencies.
				if _, err := rt.issueBackward(l); err != nil {
					return fmt.Errorf("stage %d: bwd %s (mb %d): %w", s, l.Name, m, err)
				}
			}
			rt.bwdExtraDep = nil
			if s > 0 {
				gradRecv[s-1][m] = sendGradient(rts[s], rts[s-1], bounds[s-1], m)
			}
		}
	}

	for s, rt := range rts {
		rt.setMB(0)
		if err := rt.weightUpdate(nil); err != nil {
			return fmt.Errorf("stage %d: %w", s, err)
		}
		// Drain the inter-stage streams too before the end-of-iteration
		// check (the single/data-parallel trainers have no traffic there).
		rt.dev.TL.WaitStream(rt.arSend)
		rt.dev.TL.WaitStream(rt.arRecv)
		if err := rt.endIteration(); err != nil {
			return fmt.Errorf("stage %d: %w", s, err)
		}
	}
	return nil
}

// sendActivation moves boundary b's feature map for one micro-batch from
// src to dst: an optional compression pass on src's D2H engine, the
// wire-sized transfer across both shared channel directions, an optional
// decompression pass on dst's H2D engine, and the device residence in dst's
// pool. dst's first consumer kernels depend on the landed (and expanded)
// data through the buffer's lastWrite.
func sendActivation(src, dst *runtime, b stageBoundary, mb int) error {
	d := src.net.DType
	t := b.t
	bs := src.buf[t]
	if bs.block == nil {
		return fmt.Errorf("core: boundary fm%d not resident at send (mb %d)", t.ID, mb)
	}
	raw := src.mbShare(t.Bytes(d))
	wire := raw
	dep := bs.lastWrite
	label := fmt.Sprintf("fm%d.mb%d", t.ID, mb)
	var cost compress.Cost
	if b.compressed {
		cost = b.codec.codec.Cost(raw, d.Size(), b.codec.sparsity, src.cfg.Spec.EffDRAMBps())
		if cost.WireBytes < raw {
			wire = cost.WireBytes
			dep = src.dev.Compress("CMP:PPS:"+label, cost.Compress, raw, dep)
			src.compressTime += cost.Compress
		}
	}
	send := src.dev.StageSend("PPS:"+label, wire, src.arSend, dep)
	recv := dst.dev.StageRecv("PPR:"+label, wire, dst.arRecv, send)
	last := recv
	if wire < raw {
		last = dst.dev.Decompress("DEC:PPR:"+label, cost.Decompress, raw, recv)
		dst.decompressTime += cost.Decompress
	}
	blk, err := dst.alloc(raw, memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
	if err != nil {
		return err
	}
	st := dst.mbBufs[mb][t]
	st.block = blk
	st.offloaded = false
	st.lastWrite = last
	src.ppSendRaw += raw
	src.ppSendBytes += wire
	dst.ppRecvRaw += raw
	dst.ppRecvBytes += wire
	return nil
}

// installBoundaryGrad prepares a stage's backward walk for one micro-batch:
// the gradient of its boundary-out tensor — computed by the next stage and
// received over the interconnect — gets device residence, and every backward
// kernel of the walk is ordered after the receive.
func installBoundaryGrad(rt *runtime, b stageBoundary, recv *sim.Op) error {
	if recv == nil {
		return fmt.Errorf("core: boundary gradient for fm%d missing", b.t.ID)
	}
	bs := rt.buf[b.t]
	if bs.gradBlock == nil {
		gi := rt.gradInfos[b.t]
		blk, err := rt.alloc(rt.mbShare(gi.Bytes), memalloc.KindGradMap, fmt.Sprintf("grad%d", b.t.ID))
		if err != nil {
			return err
		}
		bs.gradBlock = blk
	}
	bs.gradWritten = true
	rt.bwdExtraDep = recv
	return nil
}

// sendGradient hands boundary b's gradient for one micro-batch back from
// src (the stage above the boundary) to dst. Gradients move dense — the
// cDMA engine targets activation sparsity, which dX maps do not share. The
// send waits for everything src queued on its compute stream (its own
// backward contributions included); once it is in flight, src's copies of
// the gradient and of the boundary-in activation are released.
func sendGradient(src, dst *runtime, b stageBoundary, mb int) *sim.Op {
	t := b.t
	raw := src.mbShare(src.gradInfos[t].Bytes)
	label := fmt.Sprintf("grad%d.mb%d", t.ID, mb)
	send := src.dev.StageSend("PPS:"+label, raw, src.arSend, src.dev.StreamCompute.Last())
	recv := dst.dev.StageRecv("PPR:"+label, raw, dst.arRecv, send)
	bs := src.buf[t]
	if bs.gradBlock != nil && !bs.gradPersist {
		src.pool.Free(bs.gradBlock, send.End)
		bs.gradBlock = nil
	}
	if bs.block != nil && !bs.persist {
		// The received activation copy: dead once the stage's backward (all
		// queued before the send) has consumed it, unless the stage's own
		// release discipline already freed it.
		src.pool.Free(bs.block, send.End)
		bs.block = nil
		bs.offloaded = false
	}
	src.ppSendRaw += raw
	src.ppSendBytes += raw
	dst.ppRecvRaw += raw
	dst.ppRecvBytes += raw
	return recv
}

// assemblePP builds the Result of a pipeline run: merged per-layer stats,
// per-stage detail in Stages (and the device view in Devices, so
// device-level tooling keeps working), aggregate traffic, and the measured
// pipeline bubble. Pool usage reports the peak stage (each stage owns its
// own pool); framework memory and traffic counters aggregate.
func assemblePP(rts []*runtime, cfg Config, winStart, winEnd sim.Time) *Result {
	net := rts[0].net
	r := &Result{
		Network:      net.Name,
		Batch:        net.Batch,
		Policy:       cfg.Policy,
		PolicyName:   rts[0].plan.PolicyName,
		Algo:         cfg.Algo,
		Oracle:       cfg.Oracle,
		Trainable:    true,
		IterTime:     winEnd - winStart,
		MicroBatches: cfg.MicroBatches,
		PeakByKind:   map[memalloc.Kind]int64{},
	}
	merged := make([]LayerStats, len(net.Layers))
	for s, rt := range rts {
		rt.finalizeStats()
		copy(merged[rt.lo:rt.hi], rt.stats[rt.lo:rt.hi])
		ms := rt.pool.Measure(winStart, winEnd)
		if ms.Peak > r.MaxUsage {
			r.MaxUsage = ms.Peak
		}
		if ms.Avg > r.AvgUsage {
			r.AvgUsage = ms.Avg
		}
		for k, v := range ms.PeakByKind {
			r.PeakByKind[k] += v
		}
		for _, k := range memalloc.Kinds() {
			if v := rt.fw.UsedByKind(k); v > 0 {
				r.PeakByKind[k] += v
			}
		}
		r.FrameworkBytes += rt.fw.Used()

		dr := rt.deviceResult(winStart, winEnd)
		r.Devices = append(r.Devices, dr)
		r.OffloadBytes += dr.OffloadBytes
		r.PrefetchBytes += dr.PrefetchBytes
		r.OffloadRawBytes += rt.offRawBytes
		r.PrefetchRawBytes += rt.preRawBytes
		r.CompressTime += rt.compressTime
		r.DecompressTime += rt.decompressTime
		r.HostPinnedPeak += rt.host.Peak()
		r.OnDemandFetches += rt.onDemand
		r.InterStageBytes += rt.ppSendBytes // each transfer counted once, at its sender
		r.InterStageRawBytes += rt.ppSendRaw
		r.Power.AvgW += dr.Power.AvgW
		r.Power.MaxW += dr.Power.MaxW
		r.Energy = r.Energy.Add(dr.Energy)

		sr := StageResult{
			Stage:         s,
			FirstLayer:    rt.lo,
			LastLayer:     rt.hi - 1,
			StepTime:      dr.StepTime,
			ComputeBusy:   dr.ComputeBusy,
			BubbleTime:    dr.StepTime - dr.ComputeBusy,
			SendBytes:     rt.ppSendBytes,
			RecvBytes:     rt.ppRecvBytes,
			OffloadBytes:  dr.OffloadBytes,
			PrefetchBytes: dr.PrefetchBytes,
			PoolPeak:      ms.Peak,
		}
		r.Stages = append(r.Stages, sr)
		r.BubbleTime += sr.BubbleTime
	}
	if r.IterTime > 0 {
		r.BubbleFraction = float64(r.BubbleTime) / (float64(len(rts)) * float64(r.IterTime))
	}
	r.CompressionRatio = compressionRatio(r.OffloadRawBytes, r.OffloadBytes)
	r.MaxWorkingSet = maxWorkingSet(merged)
	r.FETime = feWindow(merged)
	if r.FETime == 0 {
		r.FETime = r.IterTime
	}
	r.Layers = merged
	if cfg.CaptureSchedule {
		for _, rt := range rts {
			r.Schedule = append(r.Schedule, rt.captureSchedule(winStart, winEnd)...)
		}
		sortSchedule(r.Schedule)
	}
	return r
}

package core

import (
	"encoding/json"
	"strings"
	"testing"

	"vdnn/internal/compress"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
)

// vggPP is the pipeline reference configuration: VGG-16 (64) under
// vDNN-all(m), the acceptance case.
func vggPP(stages, microBatches int) Config {
	return Config{
		Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal,
		Stages: stages, MicroBatches: microBatches,
	}
}

func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPipelineDefaults pins the Config normalization: Stages=1 (and the zero
// value) keep the exact zero-config cache key, while Stages>1 defaults
// micro-batches and the shared topology.
func TestPipelineDefaults(t *testing.T) {
	zero := Config{}.WithDefaults()
	one := Config{Stages: 1, MicroBatches: 7, StageCuts: "3,5"}.WithDefaults()
	if zero != one {
		t.Fatalf("Stages=1 config normalized to %+v, want the zero-config %+v", one, zero)
	}
	pp := Config{Stages: 4}.WithDefaults()
	if pp.MicroBatches != 4 {
		t.Fatalf("MicroBatches defaulted to %d, want Stages (4)", pp.MicroBatches)
	}
	if pp.Topology != pcie.SharedGen3Root() {
		t.Fatalf("pipeline topology defaulted to %v, want shared-x16", pp.Topology)
	}
}

// TestPipelineStagesOneIdentical: a Stages=1 configuration routes through
// the single-device trainer and produces the byte-identical Result of the
// zero-value configuration.
func TestPipelineStagesOneIdentical(t *testing.T) {
	net := traceNet(t)
	base, err := Run(net, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal, CaptureSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(net, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal, CaptureSchedule: true,
		Stages: 1, MicroBatches: 9, StageCuts: "2"})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultJSON(t, base), resultJSON(t, one); a != b {
		t.Fatalf("Stages=1 result diverged from the zero-value configuration:\n%s\nvs\n%s", b, a)
	}
}

// TestPipelineVGG16FourStages is the acceptance case: a 4-stage VGG-16
// pipeline trains, shows a nonzero measured bubble, covers every layer in
// exactly one stage, and conserves inter-stage bytes (every stage's sends
// are received, activations and gradients alike).
func TestPipelineVGG16FourStages(t *testing.T) {
	net := networks.VGG16(64)
	r, err := Run(net, vggPP(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trainable {
		t.Fatalf("4-stage VGG-16 untrainable: %s", r.FailReason)
	}
	if len(r.Stages) != 4 || len(r.Devices) != 4 {
		t.Fatalf("got %d stages, %d devices, want 4, 4", len(r.Stages), len(r.Devices))
	}
	if r.MicroBatches != 4 {
		t.Fatalf("MicroBatches = %d, want the defaulted 4", r.MicroBatches)
	}

	// Exact layer cover.
	next := 0
	for _, s := range r.Stages {
		if s.FirstLayer != next || s.LastLayer < s.FirstLayer {
			t.Fatalf("stage %d covers [%d,%d], want to start at %d", s.Stage, s.FirstLayer, s.LastLayer, next)
		}
		next = s.LastLayer + 1
	}
	if next != len(net.Layers) {
		t.Fatalf("stages cover %d layers, network has %d", next, len(net.Layers))
	}

	// Nonzero bubble: the fill/drain phases leave every stage partly idle.
	if r.BubbleTime <= 0 {
		t.Fatalf("BubbleTime = %v, want > 0", r.BubbleTime)
	}
	if r.BubbleFraction <= 0 || r.BubbleFraction >= 1 {
		t.Fatalf("BubbleFraction = %v, want in (0,1)", r.BubbleFraction)
	}
	for _, s := range r.Stages {
		if s.BubbleTime < 0 || s.ComputeBusy <= 0 {
			t.Fatalf("stage %d: bubble %v, busy %v", s.Stage, s.BubbleTime, s.ComputeBusy)
		}
	}

	// Conservation across the shared topology: every wire byte sent between
	// stages is received, and the aggregate matches InterStageBytes.
	var send, recv int64
	for _, s := range r.Stages {
		send += s.SendBytes
		recv += s.RecvBytes
	}
	if send != recv {
		t.Fatalf("inter-stage bytes not conserved: sent %d, received %d", send, recv)
	}
	if send != r.InterStageBytes || send == 0 {
		t.Fatalf("InterStageBytes = %d, stage sends sum to %d (want equal, nonzero)", r.InterStageBytes, send)
	}
	if r.InterStageRawBytes != r.InterStageBytes {
		t.Fatalf("uncompressed run: raw %d != wire %d", r.InterStageRawBytes, r.InterStageBytes)
	}
	// Interior stages both send and receive; the ends do one of each plus
	// the returning gradient leg, so nothing is zero.
	for _, s := range r.Stages {
		if s.SendBytes == 0 || s.RecvBytes == 0 {
			t.Fatalf("stage %d: send %d, recv %d, want both nonzero", s.Stage, s.SendBytes, s.RecvBytes)
		}
	}

	// vDNN still offloads within stages.
	if r.OffloadBytes == 0 || r.PrefetchBytes == 0 {
		t.Fatalf("per-stage vDNN traffic missing: offload %d, prefetch %d", r.OffloadBytes, r.PrefetchBytes)
	}
}

// TestPipelineDeterminism: identical configurations produce byte-identical
// results.
func TestPipelineDeterminism(t *testing.T) {
	net := networks.VGG16(64)
	a, err := Run(net, vggPP(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, vggPP(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if x, y := resultJSON(t, a), resultJSON(t, b); x != y {
		t.Fatal("pipeline simulation is not deterministic")
	}
}

// TestPipelineMoreMicroBatchesShrinkBubble: the GPipe bubble fraction
// (S−1)/(M+S−1) falls with the micro-batch count; the measured fraction
// follows.
func TestPipelineMoreMicroBatchesShrinkBubble(t *testing.T) {
	net := networks.VGG16(64)
	coarse, err := Run(net, vggPP(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Run(net, vggPP(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if fine.BubbleFraction >= coarse.BubbleFraction {
		t.Fatalf("bubble fraction did not shrink: M=2 %.3f vs M=8 %.3f",
			coarse.BubbleFraction, fine.BubbleFraction)
	}
}

// TestPipelineExplicitCuts honors user cut points and rejects invalid ones.
func TestPipelineExplicitCuts(t *testing.T) {
	net := networks.VGG16(64)
	cfg := vggPP(2, 2)
	cfg.StageCuts = "13"
	r, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages[0].LastLayer != 12 || r.Stages[1].FirstLayer != 13 {
		t.Fatalf("explicit cut at 13 ignored: stages %+v", r.Stages)
	}

	for _, bad := range []struct {
		stages int
		cuts   string
	}{
		{2, "13,20"}, // cut count != stages-1
		{2, "0"},     // out of range
		{2, "x"},     // unparsable
		{3, "13,13"}, // not increasing
	} {
		cfg := vggPP(bad.stages, 2)
		cfg.StageCuts = bad.cuts
		if _, err := Run(net, cfg); err == nil {
			t.Fatalf("cuts %q with %d stages: want error", bad.cuts, bad.stages)
		}
	}
}

// TestPipelineConfigErrors covers the validation surface: stage counts
// beyond the layer count or device limit, and the incompatible knobs.
func TestPipelineConfigErrors(t *testing.T) {
	net := traceNet(t)
	base := Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal}

	tooMany := base
	tooMany.Stages = len(net.Layers) + 1
	if _, err := Run(net, tooMany); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("Stages > layers: got %v", err)
	}

	overLimit := base
	overLimit.Stages = maxDevices + 1
	if _, err := Run(net, overLimit); err == nil {
		t.Fatal("Stages > maxDevices: want error")
	}

	both := base
	both.Stages, both.Devices = 2, 2
	if _, err := Run(net, both); err == nil {
		t.Fatal("Stages with Devices: want error")
	}

	weights := base
	weights.Stages, weights.OffloadWeights = 2, true
	if _, err := Run(net, weights); err == nil {
		t.Fatal("Stages with OffloadWeights: want error")
	}
}

// TestPipelineWithCompression: the compressing DMA engine shrinks both the
// per-stage offload traffic and the inter-stage activation transfers, while
// gradients stay dense — so inter-stage wire bytes land strictly between
// half the raw bytes and all of them.
func TestPipelineWithCompression(t *testing.T) {
	net := networks.VGG16(64)
	cfg := vggPP(4, 4)
	cfg.Compression = compress.Config{Codec: compress.CodecZVC}
	r, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trainable {
		t.Fatalf("untrainable: %s", r.FailReason)
	}
	if r.OffloadBytes >= r.OffloadRawBytes {
		t.Fatalf("offload did not compress: wire %d, raw %d", r.OffloadBytes, r.OffloadRawBytes)
	}
	if r.InterStageBytes >= r.InterStageRawBytes {
		t.Fatalf("inter-stage activations did not compress: wire %d, raw %d",
			r.InterStageBytes, r.InterStageRawBytes)
	}
	if 2*r.InterStageBytes <= r.InterStageRawBytes {
		t.Fatalf("gradients must stay dense: wire %d vs raw %d", r.InterStageBytes, r.InterStageRawBytes)
	}

	// The codec only ever removes wire bytes.
	plain, err := Run(net, vggPP(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.InterStageBytes > plain.InterStageBytes {
		t.Fatalf("compression increased inter-stage traffic: %d > %d", r.InterStageBytes, plain.InterStageBytes)
	}
}

// TestPipelinePolicies: the baseline manager and the dynamic profiler both
// run under pipeline partitioning.
func TestPipelinePolicies(t *testing.T) {
	net := traceNet(t)
	for _, p := range []Policy{Baseline, VDNNConv, VDNNDyn} {
		cfg := Config{Spec: gpu.TitanX(), Policy: p, Algo: MemOptimal, Stages: 2}
		r, err := Run(net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !r.Trainable {
			t.Fatalf("%v: untrainable: %s", p, r.FailReason)
		}
		if len(r.Stages) != 2 {
			t.Fatalf("%v: %d stages", p, len(r.Stages))
		}
		if r.InterStageBytes == 0 {
			t.Fatalf("%v: no inter-stage traffic", p)
		}
	}
}

// TestPipelineUntrainable: a pipeline that oversubscribes a stage's pool
// reports the oracle demand with Trainable == false, like every other
// configuration.
func TestPipelineUntrainable(t *testing.T) {
	net := networks.VGG16(256)
	cfg := vggPP(2, 2)
	cfg.Spec = cfg.Spec.WithMemory(2 << 30)
	r, err := Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trainable {
		t.Fatal("VGG-16 (256) on a 2 GB device pipeline: want untrainable")
	}
	if r.FailReason == "" || r.MaxUsage == 0 {
		t.Fatalf("missing oracle demand: reason %q, max %d", r.FailReason, r.MaxUsage)
	}
}

// TestChromeTraceGoldenPipeline pins the pipeline trace: one process lane
// per stage (pid = stage, labeled with its layer range), inter-stage PPS/PPR
// transfers on the copy tracks, deterministic byte for byte.
func TestChromeTraceGoldenPipeline(t *testing.T) {
	checkGolden(t, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal,
		Stages: 2, MicroBatches: 2},
		"chrome_trace_pipeline.golden.json")
}

// TestDeviceImbalance: the per-device compute-imbalance helper reports 1 for
// symmetric data-parallel replicas and the max/mean ratio for pipeline
// stages.
func TestDeviceImbalance(t *testing.T) {
	net := traceNet(t)
	single, err := Run(net, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.DeviceImbalance(); got != 1 {
		t.Fatalf("single device imbalance = %v, want 1", got)
	}
	dp, err := Run(net, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal,
		Devices: 2, Topology: pcie.SharedGen3Root()})
	if err != nil {
		t.Fatal(err)
	}
	if got := dp.DeviceImbalance(); got < 1 || got > 1.01 {
		t.Fatalf("symmetric replicas imbalance = %v, want ~1", got)
	}
	pp, err := Run(networks.VGG16(64), vggPP(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := pp.DeviceImbalance(); got < 1 {
		t.Fatalf("pipeline imbalance = %v, want >= 1", got)
	}
}

package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vdnn/internal/compress"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/pcie"
	"vdnn/internal/tensor"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden Chrome-trace files")

// traceNet is a tiny deterministic network for the golden traces: two CONV
// blocks and a classifier, enough to exercise offload, prefetch and (multi
// device) all-reduce without a megabyte of JSON.
func traceNet(t *testing.T) *dnn.Network {
	t.Helper()
	b := dnn.NewBuilder("tracenet", 16, tensor.Float32)
	x := b.Input(3, 32, 32)
	x = b.Conv(x, "conv1", 16, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.Conv(x, "conv2", 16, 3, 1, 1)
	x = b.ReLU(x, "relu2")
	x = b.FC(x, "fc", 10)
	x = b.SoftmaxLoss(x, "loss")
	net, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// checkGolden compares the trace produced by cfg against its golden file
// (refresh with `go test ./internal/core -run Golden -update-golden`).
func checkGolden(t *testing.T, cfg Config, golden string) {
	t.Helper()
	cfg.CaptureSchedule = true
	r, err := Run(traceNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", golden)
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace diverged from %s.\nRe-run with -update-golden after verifying the change is intended.\n got: %s", path, buf.Bytes())
	}
}

// TestChromeTraceGoldenSingle pins the single-device trace format: stable
// event ordering, the compute=0/copyD2H=1/copyH2D=2 tid mapping, one gpu0
// process track.
func TestChromeTraceGoldenSingle(t *testing.T) {
	checkGolden(t, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal},
		"chrome_trace_single.golden.json")
}

// TestChromeTraceGoldenMultiGPU pins the multi-device trace: every replica a
// pid with its own engine tracks, all-reduce ops included, deterministic
// byte for byte.
func TestChromeTraceGoldenMultiGPU(t *testing.T) {
	checkGolden(t, Config{
		Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal,
		Devices: 2, Topology: pcie.SharedGen3Root(),
	}, "chrome_trace_multigpu.golden.json")
}

// TestChromeTraceGoldenCompressed pins the compressed-DMA trace: CMP events
// on the copyD2H track feeding shrunken OFF transfers, DEC events on the
// copyH2D track behind the PRE transfers, with the dense input batch passing
// through uncompressed.
func TestChromeTraceGoldenCompressed(t *testing.T) {
	cfg := Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal}
	cfg.Compression = compress.Config{Codec: compress.CodecZVC}
	checkGolden(t, cfg, "chrome_trace_compressed.golden.json")
}

// Package core implements the paper's contribution: the vDNN runtime memory
// manager that virtualizes DNN memory across GPU and CPU memory, together
// with the Torch-style baseline memory manager it is evaluated against.
//
// The executor simulates the host-side issue loop exactly as Section III-B
// describes: a compute stream carries the cuDNN kernels, a memory stream
// carries offload (D2H) and prefetch (H2D) transfers, and the host
// synchronizes the two at layer boundaries when transfers are in flight.
// Memory comes from a cnmem-style pool sized to the GPU's usable capacity;
// OOM during a pass means the configuration cannot train the network
// (the paper's "trainability").
package core

import (
	"context"
	"errors"
	"fmt"

	"vdnn/internal/compress"
	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/pcie"
	"vdnn/internal/sim"
)

// Policy selects the memory manager (Section III-C).
type Policy int

const (
	// Baseline is the Torch-style network-wide allocation policy with shared
	// gradient buffers and a single reused workspace.
	Baseline Policy = iota
	// VDNNAll offloads every feature-extraction layer's input feature map.
	VDNNAll
	// VDNNConv offloads only the CONV layers' input feature maps.
	VDNNConv
	// VDNNDyn profiles at startup to pick the offload policy and per-layer
	// algorithms that balance trainability and performance.
	VDNNDyn
)

var policyNames = [...]string{"base", "vDNN-all", "vDNN-conv", "vDNN-dyn"}

func (p Policy) String() string {
	if p >= 0 && int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// AlgoMode selects convolution algorithms for the static policies: the
// paper's (m) memory-optimal and (p) performance-optimal variants.
type AlgoMode int

const (
	// MemOptimal uses implicit GEMM everywhere: zero workspace.
	MemOptimal AlgoMode = iota
	// PerfOptimal uses the fastest algorithm per layer, workspace unlimited.
	PerfOptimal
	// GreedyAlgo picks, at each layer during the pass, the fastest algorithm
	// whose workspace fits in currently free pool memory (the dynamic
	// policy's final profiling phase).
	GreedyAlgo
)

var algoModeNames = [...]string{"(m)", "(p)", "(greedy)"}

func (m AlgoMode) String() string {
	if m >= 0 && int(m) < len(algoModeNames) {
		return algoModeNames[m]
	}
	return fmt.Sprintf("AlgoMode(%d)", int(m))
}

// PrefetchMode selects the prefetch scheduling strategy. The default is the
// just-in-time schedule of the paper's Figure 9; the literal Figure 10
// search-window code and two degenerate schedules exist as ablations.
type PrefetchMode int

const (
	// PrefetchJIT is the schedule of the paper's Figure 9: the prefetch of a
	// layer's offloaded X overlaps the backward computation of the layer
	// immediately preceding its first backward use, so it is "guaranteed to
	// be ready before layer(n-1)'s computation" while camping in GPU memory
	// for the least possible time.
	PrefetchJIT PrefetchMode = iota
	// PrefetchFig10 is the literal pseudo-code of the paper's Figure 10:
	// walk backward for the next offloaded layer, stopping at the closest
	// preceding CONV layer. In networks with interleaved ACTV/POOL layers
	// this launches prefetches a few layers earlier than Figure 9's
	// schedule, raising peak memory.
	PrefetchFig10
	// PrefetchNone disables prefetching: offloaded maps are fetched
	// on demand, serializing backward computation (the paper's "naive" case).
	PrefetchNone
	// PrefetchEager removes the CONV-layer window bound entirely,
	// prefetching as early as possible; data camps in GPU memory again (the
	// pitfall Section III-B warns about).
	PrefetchEager
)

func (m PrefetchMode) String() string {
	switch m {
	case PrefetchJIT:
		return "jit"
	case PrefetchFig10:
		return "fig10-window"
	case PrefetchNone:
		return "none"
	case PrefetchEager:
		return "eager"
	}
	return fmt.Sprintf("PrefetchMode(%d)", int(m))
}

// Config selects what to run.
type Config struct {
	Spec   gpu.Spec
	Policy Policy
	Algo   AlgoMode

	// Custom overrides Policy with a user-implemented memory-management
	// policy (see OffloadPolicy). Result caches key custom policies by their
	// Name, so a Name must uniquely identify the policy's decisions. Not
	// serializable: batch/HTTP surfaces address policies by name only.
	Custom OffloadPolicy `json:"-"`

	// Oracle removes the device memory capacity limit: the paper's
	// "hypothetical, oracular GPU with enough memory to hold the entire
	// DNN" used to normalize performance when the baseline cannot train.
	Oracle bool

	Prefetch      PrefetchMode
	PageMigration bool // ablation: page-migration transfers instead of DMA

	// Compression selects the compressed-DMA model (the cDMA follow-up
	// paper): an activation-sparsity-aware codec in the DMA engines shrinks
	// offload transfers and pays a decompression pass on prefetch. The zero
	// value disables it and normalizes to itself, so existing configurations
	// keep their schedules and cache keys byte for byte. The codec lives in
	// the DMA path, so the page-migration ablation (which bypasses the DMA
	// engines) normalizes compression away.
	Compression compress.Config

	// Devices is the number of data-parallel replicas (default 1). Each
	// replica trains the full network on its own minibatch under the same
	// policy and plan; the weight gradients are ring-all-reduced over the
	// interconnect each step. Per-replica and aggregate metrics land in
	// Result.Devices. Mutually exclusive with Stages > 1.
	Devices int

	// Stages splits the network's layer sequence into that many contiguous
	// pipeline stages, one device per stage (inter-layer model parallelism).
	// Micro-batches stream through the stages GPipe-style (fill, steady
	// state, drain); inter-stage activation and gradient transfers cross the
	// Topology's interconnect, contending with each stage's own vDNN
	// offload/prefetch traffic. Default 1: no pipelining, today's exact
	// single-device schedule. Mutually exclusive with Devices > 1 and with
	// OffloadWeights (a stage's weights are live across every in-flight
	// micro-batch).
	Stages int

	// MicroBatches is the number of micro-batches one iteration's minibatch
	// is split into under pipeline parallelism (Config.Stages > 1). More
	// micro-batches shrink the pipeline bubble — the idle fill/drain
	// fraction is (S-1)/(M+S-1) — at the cost of smaller, less efficient
	// transfers. Defaults to Stages; normalized to 1 when Stages == 1.
	MicroBatches int

	// StageCuts places the stage boundaries explicitly: a comma-separated
	// list of layer IDs ("5,9,13"), each starting a new stage, overriding
	// the automatic balanced-by-cost partitioner. Must name Stages-1 valid
	// boundaries when Stages > 1 (every boundary must be crossed by exactly
	// one live feature map); normalized empty when Stages == 1.
	StageCuts string

	// Topology describes how the replicas attach to the host interconnect:
	// the zero value (or pcie.Dedicated()) gives every device its full link,
	// while a shared topology (pcie.SharedGen3Root and friends) arbitrates
	// all replicas' DMA traffic — offload, prefetch and all-reduce — over a
	// root complex with bounded aggregate bandwidth. Multi-device
	// configurations default to the single-uplink pcie.SharedGen3Root();
	// irrelevant (and normalized away) when Devices == 1.
	Topology pcie.Topology

	// Iterations to simulate; the last one (steady state: pinned host
	// buffers already allocated) is measured. Default 2.
	Iterations int

	// HostBytes sizes host DRAM (default 64 GB, the paper's testbed).
	HostBytes int64

	// SkipWeightUpdate drops the SGD update kernels at iteration end
	// (convnet-benchmarks timing protocol). In data-parallel runs it also
	// drops the gradient all-reduce, which exists only to feed the update.
	SkipWeightUpdate bool

	// OffloadWeights extends the vDNN policies to the layer weights, the
	// extension the paper sketches in Section III ("The intuitions of vDNN
	// can also be applied to weights..., but with less of a memory saving
	// benefit"): each feature-extraction layer's weights are offloaded
	// during its forward pass and prefetched back for its backward pass.
	// Ignored by the baseline policy.
	OffloadWeights bool

	// Debug records the live allocation set at the usage peak
	// (Result.DebugPeakLive), for attributing memory spikes.
	Debug bool

	// CaptureSchedule records every operation of the measured iteration
	// (Result.Schedule), enabling timeline inspection and Chrome-trace
	// export — the runnable version of the paper's Figure 9.
	CaptureSchedule bool
}

// WithDefaults returns the configuration with unset fields resolved to their
// defaults. Two configurations that normalize to the same value simulate
// identically, which is what lets result caches (internal/sweep) key on the
// normalized Config directly.
func (c Config) WithDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 2
	}
	if c.HostBytes == 0 {
		c.HostBytes = 64 << 30
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.Stages <= 0 {
		c.Stages = 1
	}
	if c.Stages == 1 {
		// One stage is no pipeline: micro-batching degenerates to gradient
		// accumulation (out of scope) and cut points are meaningless, so
		// normalize both away — the zero-value Config keeps its schedule and
		// cache key byte for byte.
		c.MicroBatches = 1
		c.StageCuts = ""
	} else if c.MicroBatches <= 0 {
		c.MicroBatches = c.Stages
	}
	if c.Devices == 1 && c.Stages == 1 {
		// A single device never contends with anything: the topology cannot
		// affect the schedule, so normalize it away and let every
		// single-device request share one cache entry.
		c.Topology = pcie.Topology{}
	} else if c.Topology == (pcie.Topology{}) {
		c.Topology = pcie.SharedGen3Root()
	}
	c.Compression = c.Compression.WithDefaults()
	if c.PageMigration {
		// The codec sits inside the DMA engines; demand paging bypasses
		// them, so the combination degenerates to plain page migration.
		c.Compression = compress.Config{}
	}
	return c
}

// validatePipeline checks the pipeline knobs of a normalized Config against
// the network's layer count. Partition feasibility (enough single-crossing
// boundaries, valid explicit cuts) is checked later, when the stage ranges
// are derived.
func (c Config) validatePipeline(layers int) error {
	if c.Stages == 1 {
		return nil
	}
	if c.Stages > maxDevices {
		return fmt.Errorf("core: %d pipeline stages exceeds the device limit of %d", c.Stages, maxDevices)
	}
	if c.Stages > layers {
		return fmt.Errorf("core: %d pipeline stages exceed the network's %d layers", c.Stages, layers)
	}
	if c.Devices > 1 {
		return fmt.Errorf("core: pipeline parallelism (Stages=%d) cannot combine with data parallelism (Devices=%d)", c.Stages, c.Devices)
	}
	if c.OffloadWeights {
		return fmt.Errorf("core: OffloadWeights cannot combine with pipeline parallelism (a stage's weights stay live across every in-flight micro-batch)")
	}
	return nil
}

// LayerStats is the per-layer view of a run, feeding Figures 5, 6 and 13.
type LayerStats struct {
	Name  string
	Kind  dnn.LayerKind
	Stage dnn.Stage

	FwdTime, BwdTime sim.Time
	FwdStart, FwdEnd sim.Time
	BwdStart, BwdEnd sim.Time
	// ReuseDistance is the paper's Figure 6 metric: latency between the end
	// of the layer's forward pass and the start of its backward pass.
	ReuseDistance sim.Time

	FwdBW, BwdBW float64 // max achieved DRAM bandwidth, bytes/sec

	XBytes, YBytes int64
	WeightBytes    int64
	FwdWSBytes     int64
	FwdWorkingSet  int64
	BwdWorkingSet  int64

	AlgoFwd, AlgoBwdData, AlgoBwdFilter cudnnsim.ConvAlgo // CONV layers only

	Offloaded    bool  // this layer triggered an offload of its input X
	OffloadBytes int64 // bytes it offloaded
}

// Result is the outcome of simulating one configuration.
type Result struct {
	Network string
	Batch   int
	// Policy is the Config's Policy enum; it is meaningful only when a
	// built-in policy ran. PolicyName is authoritative either way.
	Policy Policy
	// PolicyName names the policy that produced the result: a built-in
	// Policy.String() or a custom OffloadPolicy's Name().
	PolicyName string
	Algo       AlgoMode
	Oracle     bool
	// Chosen describes the configuration the dynamic policy settled on.
	Chosen string

	Trainable  bool
	FailReason string

	IterTime sim.Time // full training iteration latency
	FETime   sim.Time // feature-extraction portion (paper's performance metric)

	// MaxUsage and AvgUsage are the vDNN memory pool's peak and
	// time-weighted average usage over the measured iteration — the metric
	// of the paper's Figure 11. The pool holds everything the memory manager
	// controls (feature maps, gradient maps, FE weights, workspaces);
	// classifier-side allocations live in FrameworkBytes.
	MaxUsage int64
	AvgUsage int64
	// FrameworkBytes is the static classifier-side memory outside the pool
	// (FC weights/gradients, masks, classifier activations), as in the
	// paper's prototype where classification layers run unmodified Torch.
	FrameworkBytes int64
	// PeakByKind breaks down the network-wide peak (pool peak + framework)
	// by functional category — the paper's Figure 4.
	PeakByKind map[memalloc.Kind]int64

	// MaxWorkingSet is the largest set of bytes any single layer's kernels
	// touch at once — the "maximum layer-wise usage" of Figure 1.
	MaxWorkingSet int64

	// OffloadBytes and PrefetchBytes are the interconnect traffic of the
	// measured iteration: the bytes that actually crossed the wire, i.e.
	// post-codec sizes when Config.Compression is active.
	OffloadBytes    int64 // D2H traffic in the measured iteration
	PrefetchBytes   int64 // H2D traffic in the measured iteration
	OnDemandFetches int   // blocking fetches (0 under the window policy)

	// OffloadRawBytes and PrefetchRawBytes are the pre-codec (logical) sizes
	// of the same transfers; equal to OffloadBytes/PrefetchBytes when
	// compression is disabled or nothing compressed.
	OffloadRawBytes  int64
	PrefetchRawBytes int64
	// CompressionRatio is OffloadRawBytes/OffloadBytes (1 when there is no
	// offload traffic or no compression).
	CompressionRatio float64
	// CompressTime and DecompressTime are the total codec busy time on the
	// D2H and H2D DMA engines in the measured iteration.
	CompressTime   sim.Time
	DecompressTime sim.Time

	HostPinnedPeak int64 // CPU-side allocation (Figure 15)

	Power gpu.PowerStats

	// Energy is the measured iteration's joule breakdown (compute, DMA,
	// codec, idle). Its TotalJ() equals the Power timeline integral —
	// Power.AvgW x the iteration span — by construction. Unlike Power (which
	// for data-parallel runs describes one replica), Energy always aggregates
	// over every device in the run: replicas for data parallelism, stages for
	// pipelines. Per-device breakdowns stay in Devices[i].Energy.
	Energy gpu.EnergyStats

	Layers []LayerStats

	// Schedule is the op-level timeline of the measured iteration
	// (Config.CaptureSchedule). Multi-device runs carry every replica's ops,
	// distinguished by ScheduleOp.Device.
	Schedule []ScheduleOp

	// Devices carries the per-replica metrics of a data-parallel run
	// (Config.Devices > 1); nil for single-device simulations. The top-level
	// pool/usage numbers describe one replica (replicas are symmetric),
	// while OffloadBytes/PrefetchBytes/HostPinnedPeak aggregate across
	// replicas. Pipeline runs (Config.Stages > 1) fill it too — device i
	// hosts stage i — so device-level tooling works unchanged.
	Devices []DeviceResult

	// Stages carries the per-stage metrics of a pipeline-parallel run
	// (Config.Stages > 1); nil otherwise. Stage i runs on device i. For
	// pipeline runs the top-level pool/usage fields report the maximum over
	// stages (each stage owns its own pool), FrameworkBytes sums the
	// classifier memory wherever it landed, the traffic counters aggregate
	// across stages, and Power aggregates across the stage devices — AvgW
	// is the exact whole-pipeline average board power (unlike data-parallel
	// runs, whose Power describes one replica), while MaxW sums the stages'
	// individual maxima, an upper bound on the simultaneous node peak.
	// Per-device power stays in Devices[i].Power.
	Stages []StageResult
	// MicroBatches is the pipeline's micro-batch count (1 otherwise).
	MicroBatches int
	// InterStageBytes is the total inter-stage activation + gradient wire
	// traffic of the measured iteration, across all boundaries and
	// micro-batches; InterStageRawBytes is its pre-codec size (gradients
	// always move dense; activations compress under Config.Compression).
	InterStageBytes    int64
	InterStageRawBytes int64
	// BubbleTime sums the stages' exposed compute idle time (see
	// StageResult.BubbleTime); BubbleFraction normalizes it by stages ×
	// iteration span. Zero for non-pipeline runs.
	BubbleTime     sim.Time
	BubbleFraction float64
	// AllReduceBytes is the total gradient-synchronization traffic of the
	// measured iteration, across all replicas and both directions.
	AllReduceBytes int64
	// AllReduceTime is the wall-clock span of the gradient all-reduce phase.
	AllReduceTime sim.Time

	// Debug attribution of the pool usage peak (Config.Debug).
	DebugPeakTime  sim.Time
	DebugPeakLive  map[string]int64
	DebugFreeSpans [][2]int64 // free list at OOM (failed real-capacity run)
}

// ScheduleOp is one scheduled operation of the measured iteration.
type ScheduleOp struct {
	Device int    // replica index (0 for single-device runs)
	Engine string // compute, copyD2H, copyH2D
	Label  string
	Kind   string
	Start  sim.Time
	End    sim.Time
}

// DeviceResult is the per-replica view of a data-parallel run.
type DeviceResult struct {
	Device int

	// StepTime is the replica-local span of the measured iteration: from its
	// first op's start to its last op's end.
	StepTime sim.Time

	ComputeBusy sim.Time // compute-engine busy time in the window
	CopyBusy    sim.Time // both DMA engines' busy time in the window

	OffloadBytes   int64 // D2H feature-map traffic (wire bytes, post-codec)
	PrefetchBytes  int64 // H2D feature-map traffic (wire bytes, post-codec)
	AllReduceBytes int64 // gradient-sync traffic (both directions)

	// OffloadRawBytes is the pre-codec size of the replica's offload
	// traffic; CompressionRatio is OffloadRawBytes/OffloadBytes (1 when no
	// compression). CodecBusy is the replica's total compression plus
	// decompression time on its DMA engines.
	OffloadRawBytes  int64
	CompressionRatio float64
	CodecBusy        sim.Time

	// ContentionStall is the extra transfer time the shared interconnect
	// cost this replica versus dedicated links: the sum over its DMA ops of
	// (actual duration − dedicated-link DMA time). Zero on a dedicated
	// topology.
	ContentionStall sim.Time

	// OverlapEff is the fraction of the replica's DMA busy time hidden
	// behind its own compute — the paper's Figure 9 overlap, measured. 1.0
	// means every transfer cycle ran under a kernel; 0 means fully exposed.
	OverlapEff float64

	Power gpu.PowerStats

	// Energy is the replica's joule breakdown over its measured window;
	// TotalJ() equals Power.AvgW x that window.
	Energy gpu.EnergyStats
}

// StageResult is the per-stage view of a pipeline-parallel run.
type StageResult struct {
	Stage int
	// FirstLayer/LastLayer are the stage's layer ID range (inclusive).
	FirstLayer, LastLayer int

	// StepTime is the stage's active span in the measured iteration: from
	// its first op's start to its last op's end.
	StepTime sim.Time
	// ComputeBusy is the stage's compute-engine busy time in that window;
	// BubbleTime is the exposed remainder (StepTime − ComputeBusy): time the
	// stage's device sat idle waiting for micro-batches, gradients, or
	// transfers — the pipeline bubble, measured rather than modeled.
	ComputeBusy sim.Time
	BubbleTime  sim.Time

	// SendBytes/RecvBytes are the stage's inter-stage wire traffic:
	// activations forwarded to the next stage plus gradients returned to the
	// previous one. Conservation holds per boundary: stage s's sends to s+1
	// equal stage s+1's receives from s.
	SendBytes, RecvBytes int64
	// OffloadBytes/PrefetchBytes are the stage's own vDNN host-transfer wire
	// traffic.
	OffloadBytes, PrefetchBytes int64

	// PoolPeak is the stage's vDNN memory-pool peak usage.
	PoolPeak int64
}

// AllocFailure is the error returned when a configuration runs out of pool
// memory; it carries the free-list snapshot for diagnosis.
type AllocFailure struct {
	Label     string
	Err       error
	FreeSpans [][2]int64
}

func (a *AllocFailure) Error() string { return fmt.Sprintf("allocating %s: %v", a.Label, a.Err) }

// Unwrap exposes the underlying allocator error.
func (a *AllocFailure) Unwrap() error { return a.Err }

// UsageMiB is a display helper: max and average usage in MiB.
func (r *Result) UsageMiB() (max, avg float64) {
	return float64(r.MaxUsage) / (1 << 20), float64(r.AvgUsage) / (1 << 20)
}

// TotalMaxUsage is the network-wide peak: pool peak plus the framework-side
// classifier memory (the accounting of Figures 1 and 4).
func (r *Result) TotalMaxUsage() int64 { return r.MaxUsage + r.FrameworkBytes }

// Run simulates one configuration of one network. The configured policy
// (built-in Policy enum or a Custom OffloadPolicy) drives the plan; a policy
// implementing Profiler — the dynamic policy, or a custom profiling policy —
// is handed control of the whole run instead. A configuration that cannot
// train (OOM) is re-simulated on an oracle-sized pool so its hypothetical
// memory demand can still be reported (the starred bars of Figure 11);
// Trainable is false in that case.
func Run(net *dnn.Network, cfg Config) (*Result, error) {
	return RunContext(context.Background(), net, cfg)
}

// RunContext is Run under a context: the simulation checks ctx at every
// layer (and micro-batch) boundary and aborts with an error wrapping both
// ErrCanceled and the context's cause. A nil ctx behaves like
// context.Background(). Cancellation reaches every trainer — single-device,
// data-parallel, pipeline — and the dynamic policy's profiling candidates.
func RunContext(ctx context.Context, net *dnn.Network, cfg Config) (*Result, error) {
	return RunContextWith(ctx, net, cfg, nil)
}

// RunContextWith is RunContext with the profiling candidates delegated: when
// the configuration resolves to a profiling policy and runSub is non-nil,
// every candidate simulation is routed through runSub instead of being
// executed inline. runSub receives the normalized candidate Config and must
// return exactly what runStatic would — which is what lets a result cache
// (internal/sweep) serve profiling candidates from, and into, the shared
// cache. Results runSub serves may be shared: the profiler's mutations are
// applied to a clone. Static (non-profiling) configurations ignore runSub.
func RunContextWith(ctx context.Context, net *dnn.Network, cfg Config, runSub Simulate) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, canceled(ctx)
	}
	cfg = cfg.WithDefaults()
	pol, err := validateConfig(net, cfg)
	if err != nil {
		return nil, err
	}
	if prof, ok := pol.(Profiler); ok {
		return prof.Profile(net, cfg, profileSimulateWith(ctx, net, runSub))
	}
	return runStatic(ctx, net, cfg, pol)
}

// validateConfig runs the full validation chain on a normalized
// configuration and resolves its policy implementation.
func validateConfig(net *dnn.Network, cfg Config) (OffloadPolicy, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Devices > maxDevices {
		return nil, fmt.Errorf("core: %d devices exceeds the limit of %d", cfg.Devices, maxDevices)
	}
	if err := cfg.validatePipeline(len(net.Layers)); err != nil {
		return nil, err
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Compression.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return cfg.policyImpl()
}

// runStatic simulates one non-profiling configuration, falling back to an
// oracular rerun to report the hypothetical demand when it cannot train.
func runStatic(ctx context.Context, net *dnn.Network, cfg Config, pol OffloadPolicy) (*Result, error) {
	plan, err := buildPlan(net, cfg, pol)
	if err != nil {
		return nil, err
	}
	res, runErr := execute(ctx, net, cfg, pol, plan)
	if runErr == nil {
		return res, nil
	}
	if errors.Is(runErr, ErrCanceled) {
		// Aborted, not untrainable: the oracle rerun would burn a second full
		// simulation on a request nobody is waiting for.
		return nil, runErr
	}
	// OOM: report the hypothetical demand on an oracular device.
	oracleCfg := cfg
	oracleCfg.Oracle = true
	res, err = execute(ctx, net, oracleCfg, pol, plan)
	if err != nil {
		return nil, fmt.Errorf("core: oracle rerun failed: %w", err)
	}
	res.Oracle = cfg.Oracle
	res.Trainable = false
	res.FailReason = runErr.Error()
	if cfg.Debug {
		var af *AllocFailure
		if errors.As(runErr, &af) {
			res.DebugFreeSpans = af.FreeSpans
		}
	}
	return res, nil
}

// profileSimulate builds the Simulate callback handed to a profiling policy:
// one static candidate per call, (nil, nil) when the candidate cannot train.
// An execution failure on an oracle-sized pool is never plain memory
// oversubscription, so it propagates with its cause instead of reading as
// "untrainable" — profilers lean on oracle runs for their fallback
// diagnostics. The caller's context is bound into the callback, so a
// canceled request aborts every profiling candidate too (a canceled
// candidate propagates its error instead of reading as "untrainable").
func profileSimulate(ctx context.Context, net *dnn.Network) Simulate {
	return profileSimulateWith(ctx, net, nil)
}

// profileSimulateWith is profileSimulate with the candidate execution
// optionally delegated to runSub (a runStatic-equivalent callback, usually a
// cache front). The Simulate contract is translated either way: an
// untrainable candidate reads as (nil, nil), and results served by runSub are
// cloned before the profiler mutates them (they may be cache-shared).
func profileSimulateWith(ctx context.Context, net *dnn.Network, runSub Simulate) Simulate {
	return func(sub Config) (*Result, error) {
		if ctx.Err() != nil {
			return nil, canceled(ctx)
		}
		sub = sub.WithDefaults()
		pol, err := sub.policyImpl()
		if err != nil {
			return nil, err
		}
		if _, ok := pol.(Profiler); ok {
			return nil, fmt.Errorf("core: profiling policy %q cannot simulate another profiling policy", pol.Name())
		}
		if runSub != nil {
			res, err := runSub(sub)
			if err != nil {
				return nil, err
			}
			if !res.Trainable {
				return nil, nil // untrainable under this candidate
			}
			r := *res
			return &r, nil
		}
		plan, err := buildPlan(net, sub, pol)
		if err != nil {
			return nil, err
		}
		res, runErr := execute(ctx, net, sub, pol, plan)
		if runErr != nil {
			if errors.Is(runErr, ErrCanceled) {
				return nil, runErr
			}
			if sub.Oracle {
				return nil, fmt.Errorf("core: oracle candidate failed: %w", runErr)
			}
			return nil, nil // untrainable under this candidate
		}
		return res, nil
	}
}

package core

import (
	"fmt"

	"vdnn/internal/compress"
	"vdnn/internal/dnn"
	"vdnn/internal/sim"
)

// CompressionPolicy is an optional OffloadPolicy extension: a policy that
// implements it is consulted per offloaded buffer and may veto or override
// the configured codec (returning compress.CodecNone leaves that buffer's
// transfers uncompressed). Like every policy hook it must be a deterministic
// pure function of its arguments — the decision lands in the plan and in
// cache-keyed results.
type CompressionPolicy interface {
	// Compress selects the codec for buffer t, which the plan offloads.
	// requested is the Config's codec; returning it unchanged defers to the
	// configuration.
	Compress(net *dnn.Network, t *dnn.Tensor, requested compress.Codec) compress.Codec
}

// codecDecision is one buffer's resolved compression: the codec its
// transfers run through and the activation sparsity the codec will find.
type codecDecision struct {
	codec    compress.Codec
	sparsity float64
}

// activationSparsity predicts, for every buffer, the zero-value sparsity of
// its contents at offload time under the given profile. Offload happens at a
// buffer's LAST consumer, after any in-place activation has overwritten it,
// so the prediction walks the layers in execution order and lets each
// producer (in-place or not) set its output buffer's sparsity:
//
//   - ReLU outputs are sparse, growing with depth (the cDMA observation);
//   - pooling keeps a profile-configured fraction of its input's sparsity;
//   - concat carries the byte-weighted average of its branches;
//   - elementwise add multiplies its inputs' sparsities (a sum is zero only
//     where every addend is);
//   - everything else (CONV/FC/BN/LRN pre-activation outputs, the input
//     batch, dropout masks' hosts) is dense.
func activationSparsity(net *dnn.Network, prof compress.Profile) map[*dnn.Tensor]float64 {
	sp := make(map[*dnn.Tensor]float64, len(net.Tensors))
	depth := float64(len(net.Layers) - 1)
	if depth <= 0 {
		depth = 1
	}
	for _, l := range net.Layers {
		var s float64
		switch l.Kind {
		case dnn.ReLU:
			s = prof.ReLU(float64(l.ID) / depth)
		case dnn.Pool:
			s = prof.Pool(sp[l.In()])
		case dnn.Concat:
			var bytes, weighted float64
			for _, in := range l.Inputs {
				b := float64(in.Bytes(net.DType))
				bytes += b
				weighted += b * sp[in]
			}
			if bytes > 0 {
				s = weighted / bytes
			}
		case dnn.Add:
			s = 1
			for _, in := range l.Inputs {
				s *= sp[in]
			}
		default:
			s = 0
		}
		sp[l.Output] = s
	}
	return sp
}

// buildCompression resolves the plan's per-buffer codec decisions. Called
// once per plan, after the offload set is known; returns nil when the
// configuration does not compress. Only buffers the plan offloads get a
// decision — nothing else ever crosses the wire. Weights (the OffloadWeights
// extension) stay uncompressed: they are dense, the cDMA paper's own
// observation for why the engine targets activations.
func buildCompression(net *dnn.Network, cfg Config, pol OffloadPolicy, offloaded []*dnn.Tensor) (map[*dnn.Tensor]codecDecision, error) {
	cc := cfg.Compression.WithDefaults() // callers pass normalized configs; direct buildPlan callers (tests) may not
	if !cc.Enabled() {
		return nil, nil
	}
	prof, ok := compress.ProfileByName(cc.Sparsity)
	if !ok {
		return nil, fmt.Errorf("core: unknown sparsity profile %q", cc.Sparsity)
	}
	sp := activationSparsity(net, prof)
	cp, hasHook := pol.(CompressionPolicy)
	decisions := make(map[*dnn.Tensor]codecDecision, len(offloaded))
	for _, t := range offloaded {
		codec := cc.Codec
		if hasHook {
			codec = cp.Compress(net, t, codec)
			if err := codec.Validate(); err != nil {
				return nil, err
			}
		}
		if codec == compress.CodecNone {
			continue
		}
		decisions[t] = codecDecision{codec: codec, sparsity: sp[t]}
	}
	return decisions, nil
}

// codecCost returns the wire size and codec latencies of transferring buffer
// t under the plan. Pass-through (no codec, or an incompressible buffer)
// returns (raw, zero cost).
func (e *runtime) codecCost(t *dnn.Tensor, raw int64) compress.Cost {
	d, ok := e.plan.Compression[t]
	if !ok {
		return compress.Cost{WireBytes: raw}
	}
	return d.codec.Cost(raw, e.net.DType.Size(), d.sparsity, e.cfg.Spec.EffDRAMBps())
}

// offloadCompressed launches one buffer's D2H transfer through the codec
// path: a compression pass on the D2H DMA engine (when the codec shrinks the
// buffer) feeding the wire-sized transfer. Returns the transfer op.
func (e *runtime) offloadCompressed(label string, t *dnn.Tensor, raw int64, dep *sim.Op) *sim.Op {
	c := e.codecCost(t, raw)
	if c.WireBytes < raw {
		dep = e.dev.Compress("CMP:"+label, c.Compress, raw, dep)
		e.compressTime += c.Compress
	}
	e.offRawBytes += raw
	return e.dev.Offload("OFF:"+label, c.WireBytes, dep)
}

// prefetchCompressed launches one buffer's H2D transfer through the codec
// path: the wire-sized transfer followed by a decompression pass on the H2D
// DMA engine. The returned op is the one consumers must depend on — the
// decompression when the buffer came back compressed, the transfer itself
// otherwise — so backward kernels pay the expansion before use. deps order
// the transfer itself (the on-demand path serializes behind queued compute).
func (e *runtime) prefetchCompressed(label string, t *dnn.Tensor, raw int64, deps ...*sim.Op) *sim.Op {
	c := e.codecCost(t, raw)
	e.preRawBytes += raw
	op := e.dev.Prefetch(label, c.WireBytes, deps...)
	if c.WireBytes < raw {
		op = e.dev.Decompress("DEC:"+label, c.Decompress, raw, op)
		e.decompressTime += c.Decompress
	}
	return op
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace emits the captured schedule (Config.CaptureSchedule) in
// the Chrome trace-event JSON format, loadable in chrome://tracing or
// https://ui.perfetto.dev. Each engine becomes a track; the offload and
// prefetch transfers visibly overlap the compute kernels — the paper's
// Figure 9 as an interactive timeline.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	if len(r.Schedule) == 0 {
		return fmt.Errorf("core: no schedule captured; set Config.CaptureSchedule")
	}
	type event struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`  // microseconds
		Dur  float64 `json:"dur"` // microseconds
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	}
	tids := map[string]int{"compute": 0, "copyD2H": 1, "copyH2D": 2}
	events := make([]event, 0, len(r.Schedule))
	for _, op := range r.Schedule {
		tid, ok := tids[op.Engine]
		if !ok {
			tid = len(tids)
			tids[op.Engine] = tid
		}
		events = append(events, event{
			Name: op.Label,
			Cat:  op.Kind,
			Ph:   "X",
			TS:   float64(op.Start) / 1e3,
			Dur:  float64(op.End-op.Start) / 1e3,
			TID:  tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

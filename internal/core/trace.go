package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-event entry ("X" = complete event, "M" =
// metadata). Field order is part of the stable output format the golden
// tests pin down.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// engineTIDs is the stable engine→track mapping of exported traces.
var engineTIDs = map[string]int{"compute": 0, "copyD2H": 1, "copyH2D": 2}

// WriteChromeTrace emits the captured schedule (Config.CaptureSchedule) in
// the Chrome trace-event JSON format, loadable in chrome://tracing or
// https://ui.perfetto.dev. Each device becomes a process (pid = device
// index) and each engine a track within it, so a multi-GPU run renders as N
// stacked device lanes; the offload and prefetch transfers visibly overlap
// the compute kernels — the paper's Figure 9 as an interactive timeline.
//
// The output is deterministic byte for byte: events are ordered by (start,
// device, engine), the engine→tid mapping is fixed (compute 0, copyD2H 1,
// copyH2D 2, others in order of appearance), and one process_name metadata
// event per device precedes the span events.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	if len(r.Schedule) == 0 {
		return fmt.Errorf("core: no schedule captured; set Config.CaptureSchedule")
	}
	devices := map[int]bool{}
	tids := map[string]int{}
	for k, v := range engineTIDs {
		tids[k] = v
	}
	events := make([]traceEvent, 0, len(r.Schedule))
	for _, op := range r.Schedule {
		devices[op.Device] = true
		tid, ok := tids[op.Engine]
		if !ok {
			tid = len(tids)
			tids[op.Engine] = tid
		}
		events = append(events, traceEvent{
			Name: op.Label,
			Cat:  op.Kind,
			Ph:   "X",
			TS:   float64(op.Start) / 1e3,
			Dur:  float64(op.End-op.Start) / 1e3,
			PID:  op.Device,
			TID:  tid,
		})
	}
	// One process label per device, in device order, ahead of the spans.
	ids := make([]int, 0, len(devices))
	for d := range devices {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	// Pipeline runs label each device lane with the stage it hosts and its
	// layer range; other runs keep the bare device name.
	stageOf := map[int]StageResult{}
	for _, s := range r.Stages {
		stageOf[s.Stage] = s
	}
	meta := make([]traceEvent, 0, len(ids))
	for _, d := range ids {
		name := fmt.Sprintf("gpu%d", d)
		if s, ok := stageOf[d]; ok {
			name = fmt.Sprintf("gpu%d [stage %d: layers %d-%d]", d, s.Stage, s.FirstLayer, s.LastLayer)
		}
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", PID: d,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     append(meta, events...),
		"displayTimeUnit": "ms",
	})
}

package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/tensor"
)

// TestWeightOffloadExtension verifies the paper's sketched extension: the
// weights can be offloaded too, with correct execution (no leaks, weights
// resident at update) but — as the paper predicts — much smaller savings
// than feature-map offloading.
func TestWeightOffloadExtension(t *testing.T) {
	base := Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Oracle: true}
	ext := base
	ext.OffloadWeights = true
	for _, net := range []*dnn.Network{alexNet, overFeat, googLeNet, vgg64} {
		rb := run(t, net, base)
		re, err := Run(net, ext)
		if err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
		if !re.Trainable {
			t.Fatalf("%s: weight offloading broke trainability: %s", net.Name, re.FailReason)
		}
		if re.OffloadBytes <= rb.OffloadBytes {
			t.Errorf("%s: weight offloading added no traffic", net.Name)
		}
		if re.AvgUsage >= rb.AvgUsage {
			t.Errorf("%s: weight offloading saved no memory (%d vs %d)", net.Name, re.AvgUsage, rb.AvgUsage)
		}
		// "Less of a memory saving benefit": the extra savings are a small
		// fraction of what feature-map offloading already achieved.
		extra := float64(rb.AvgUsage-re.AvgUsage) / float64(rb.AvgUsage)
		if extra > 0.35 {
			t.Errorf("%s: weight savings %.0f%% implausibly large", net.Name, extra*100)
		}
		if re.OnDemandFetches != 0 {
			t.Errorf("%s: weight prefetching missed %d times", net.Name, re.OnDemandFetches)
		}
	}
}

// TestWeightOffloadIgnoredByBaseline: the baseline never offloads.
func TestWeightOffloadIgnoredByBaseline(t *testing.T) {
	r, err := Run(alexNet, Config{Spec: titan(), Policy: Baseline, Algo: MemOptimal, OffloadWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.OffloadBytes != 0 {
		t.Fatal("baseline offloaded despite OffloadWeights")
	}
}

// TestScheduleCaptureAndChromeTrace verifies the Figure 9 timeline export:
// offloads genuinely overlap forward kernels, the JSON parses, and every
// engine appears.
func TestScheduleCaptureAndChromeTrace(t *testing.T) {
	r, err := Run(vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, CaptureSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schedule) == 0 {
		t.Fatal("no schedule captured")
	}
	var kernels, offs []ScheduleOp
	for _, op := range r.Schedule {
		switch op.Kind {
		case "kernel":
			kernels = append(kernels, op)
		case "copyD2H":
			offs = append(offs, op)
		}
	}
	if len(kernels) == 0 || len(offs) == 0 {
		t.Fatalf("schedule incomplete: %d kernels, %d offloads", len(kernels), len(offs))
	}
	// Figure 9: at least one offload overlaps a kernel.
	overlap := false
	for _, o := range offs {
		for _, k := range kernels {
			if o.Start < k.End && k.Start < o.End {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no offload/compute overlap in the schedule")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	var spans, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			meta++
		}
	}
	if spans != len(r.Schedule) {
		t.Fatalf("trace span events %d != schedule ops %d", spans, len(r.Schedule))
	}
	if meta != 1 {
		t.Fatalf("single-device trace has %d process_name events, want 1", meta)
	}
}

func TestChromeTraceWithoutCapture(t *testing.T) {
	r := &Result{}
	if err := r.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error without captured schedule")
	}
}

// TestFP16HalvesMemory: WithDType(fp16) halves the baseline demand and
// preserves trainability logic.
func TestFP16HalvesMemory(t *testing.T) {
	f32 := run(t, vgg128, cfg(Baseline, PerfOptimal))
	h := vgg128.WithDType(tensor.Float16)
	f16, err := Run(h, cfg(Baseline, PerfOptimal))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(f16.TotalMaxUsage()) / float64(f32.TotalMaxUsage())
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("fp16/fp32 demand ratio = %.2f, want ~0.5", ratio)
	}
	if !f16.Trainable {
		t.Fatal("VGG-16 (128) fp16 should fit the 12 GB card")
	}
	if !strings.Contains(h.Name, "float16") {
		t.Fatalf("WithDType should rename: %q", h.Name)
	}
}

// TestNewDeviceSpecs sanity-checks the added GPU generations.
func TestNewDeviceSpecs(t *testing.T) {
	for _, s := range []gpu.Spec{gpu.GTX980(), gpu.TeslaK40(), gpu.PascalP100()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if gpu.GTX980().MemBytes >= gpu.TitanX().MemBytes {
		t.Error("GTX 980 should have less memory than Titan X")
	}
	if gpu.PascalP100().PeakFlops <= gpu.TitanX().PeakFlops {
		t.Error("P100 should out-compute Titan X")
	}
	// vDNN enables VGG-16 (64) on the 4 GB GTX 980 where the baseline fails.
	big := networks.VGG16(64)
	base, err := Run(big, Config{Spec: gpu.GTX980(), Policy: Baseline, Algo: PerfOptimal})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(big, Config{Spec: gpu.GTX980(), Policy: VDNNDyn})
	if err != nil {
		t.Fatal(err)
	}
	if base.Trainable {
		t.Error("VGG-16 (64) should not fit the 4 GB card under the baseline")
	}
	if !dyn.Trainable {
		t.Errorf("vDNN-dyn should train VGG-16 (64) on the GTX 980: %s", dyn.FailReason)
	}
}

// randomNet generates a random but valid feed-forward network: conv/pool
// stacks with occasional two-branch fork/concat blocks — the property-test
// workload for the executor.
func randomNet(rng *rand.Rand) *dnn.Network {
	b := dnn.NewBuilder("random", 1<<uint(rng.Intn(4)+2), tensor.Float32)
	x := b.Input(3, 32+rng.Intn(64), 32+rng.Intn(64))
	layers := 2 + rng.Intn(6)
	ch := 8 * (1 + rng.Intn(4))
	for i := 0; i < layers; i++ {
		switch rng.Intn(4) {
		case 0, 1: // conv(+relu)
			x = b.Conv(x, name("conv", i), ch, 3, 1, 1)
			if rng.Intn(2) == 0 {
				x = b.ReLU(x, name("relu", i))
			}
		case 2: // pool if large enough
			if x.Shape.H >= 4 {
				x = b.MaxPool(x, name("pool", i), 2, 2, 0)
			} else {
				x = b.Conv(x, name("conv", i), ch, 1, 1, 0)
			}
		case 3: // fork/join block
			l := b.Conv(x, name("bl", i), ch, 3, 1, 1)
			r := b.Conv(x, name("br", i), ch, 1, 1, 0)
			x = b.Concat(name("join", i), l, r)
		}
	}
	x = b.FC(x, "fc", 10)
	b.SoftmaxLoss(x, "loss")
	return b.MustFinalize()
}

func name(prefix string, i int) string { return prefix + string(rune('a'+i)) }

// TestRandomNetworksAllPolicies is the executor's property test: any valid
// feed-forward topology must run under every policy with the paper's
// invariants intact — no on-demand fetches under the window schedules, no
// leaks (the executor self-checks), memory ordering between policies, and
// prefetch traffic never exceeding offload traffic.
func TestRandomNetworksAllPolicies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng)
		spec := titan()
		var avgAll, avgConv, avgBase int64 // peak usage per policy, (m) mode
		for _, pc := range []struct {
			p Policy
			a AlgoMode
		}{
			{Baseline, MemOptimal}, {Baseline, PerfOptimal},
			{VDNNAll, MemOptimal}, {VDNNAll, PerfOptimal},
			{VDNNConv, MemOptimal}, {VDNNConv, PerfOptimal},
			{VDNNDyn, 0},
		} {
			r, err := Run(net, Config{Spec: spec, Policy: pc.p, Algo: pc.a, Oracle: true})
			if err != nil {
				t.Logf("seed %d %v%v: %v", seed, pc.p, pc.a, err)
				return false
			}
			if r.OnDemandFetches != 0 {
				t.Logf("seed %d %v%v: %d on-demand fetches", seed, pc.p, pc.a, r.OnDemandFetches)
				return false
			}
			if r.PrefetchBytes > r.OffloadBytes {
				t.Logf("seed %d %v%v: prefetch %d > offload %d", seed, pc.p, pc.a, r.PrefetchBytes, r.OffloadBytes)
				return false
			}
			if pc.a == MemOptimal {
				switch pc.p {
				case VDNNAll:
					avgAll = r.MaxUsage
				case VDNNConv:
					avgConv = r.MaxUsage
				case Baseline:
					avgBase = r.MaxUsage
				}
			}
		}
		// Peak usage ordering is the robust invariant: vDNN-all's live set
		// is a subset of vDNN-conv's at every instant, which is a subset of
		// the baseline's. (The time-weighted AVERAGE can invert on
		// transfer-dominated tiny networks, where vDNN-all stretches the
		// iteration with offload stalls; the average ordering on the paper's
		// networks is asserted in TestMemoryOrderingAcrossPolicies.)
		if !(avgAll <= avgConv && avgConv <= avgBase) {
			t.Logf("seed %d: max usage ordering broken: all=%d conv=%d base=%d", seed, avgAll, avgConv, avgBase)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMLPNoFeatureStage: a pure-FC network has an empty feature-extraction
// stage — vDNN has nothing to manage and must degrade gracefully to
// baseline behavior under every policy.
func TestMLPNoFeatureStage(t *testing.T) {
	b := dnn.NewBuilder("mlp", 256, tensor.Float32)
	x := b.Input(1, 28, 28)
	x = b.FC(x, "fc1", 1024)
	x = b.ReLU(x, "r1")
	x = b.FC(x, "fc2", 1024)
	x = b.ReLU(x, "r2")
	x = b.FC(x, "fc3", 10)
	b.SoftmaxLoss(x, "loss")
	net, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{Baseline, VDNNAll, VDNNConv, VDNNDyn} {
		r, err := Run(net, Config{Spec: titan(), Policy: p, Algo: PerfOptimal})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !r.Trainable {
			t.Fatalf("%v: MLP should train", p)
		}
		if p != VDNNDyn && r.OffloadBytes != 0 {
			t.Fatalf("%v: offloaded %d bytes with no managed layers", p, r.OffloadBytes)
		}
		if r.FETime == 0 || r.IterTime == 0 {
			t.Fatalf("%v: zero timing", p)
		}
	}
}

// TestGreedyAlgoDirect: the greedy algorithm mode is usable directly (not
// only through the dynamic policy) and picks large-workspace algorithms only
// when they fit.
func TestGreedyAlgoDirect(t *testing.T) {
	r, err := Run(vgg256, Config{Spec: titan(), Policy: VDNNAll, Algo: GreedyAlgo})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trainable {
		t.Fatalf("greedy vDNN-all should train VGG-16 (256): %s", r.FailReason)
	}
	// Greedy must beat the memory-optimal static config on speed while
	// staying trainable.
	m := run(t, vgg256, cfg(VDNNAll, MemOptimal))
	if r.FETime >= m.FETime {
		t.Fatalf("greedy (%v) not faster than memory-optimal (%v)", r.FETime, m.FETime)
	}
	// At least one CONV layer must have been downgraded below the
	// unconstrained fastest algorithm (FFT's workspace cannot fit).
	sawNonFFT := false
	for _, ls := range r.Layers {
		if ls.Kind == dnn.Conv && ls.AlgoFwd != cudnnsim.FFT {
			sawNonFFT = true
		}
	}
	if !sawNonFFT {
		t.Fatal("greedy never downgraded despite the memory squeeze")
	}
}

// TestVDNNWithoutOffloadsMatchesBaselineTiming: when the plan offloads
// nothing (vDNN-conv on a conv-free feature stage), vDNN's timing equals the
// baseline's — the manager adds no overhead beyond its transfers.
func TestVDNNWithoutOffloadsMatchesBaselineTiming(t *testing.T) {
	b := dnn.NewBuilder("pool-only", 64, tensor.Float32)
	x := b.Input(8, 64, 64)
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.MaxPool(x, "p2", 2, 2, 0)
	x = b.FC(x, "fc", 10)
	b.SoftmaxLoss(x, "loss")
	net, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(net, Config{Spec: titan(), Policy: Baseline, Algo: MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Run(net, Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if conv.OffloadBytes != 0 {
		t.Fatalf("pool-only net offloaded %d bytes under vDNN-conv", conv.OffloadBytes)
	}
	diff := float64(conv.FETime) - float64(base.FETime)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02*float64(base.FETime) {
		t.Fatalf("no-offload vDNN timing %v deviates from baseline %v", conv.FETime, base.FETime)
	}
}

// TestResNetUnderVDNN runs the residual networks (the paper's anticipated
// >100-layer ImageNet winner) through every policy: the elementwise-add
// gradient sharing and BN layers must execute cleanly, and vDNN must extend
// the trainable batch size beyond the baseline's.
func TestResNetUnderVDNN(t *testing.T) {
	r152 := networks.ResNet152(64)
	for _, pc := range []struct {
		p Policy
		a AlgoMode
	}{
		{Baseline, PerfOptimal}, {VDNNAll, MemOptimal}, {VDNNConv, PerfOptimal}, {VDNNDyn, 0},
	} {
		r, err := Run(r152, Config{Spec: titan(), Policy: pc.p, Algo: pc.a, Oracle: true})
		if err != nil {
			t.Fatalf("%v%v: %v", pc.p, pc.a, err)
		}
		if r.OnDemandFetches != 0 {
			t.Fatalf("%v%v: %d on-demand fetches", pc.p, pc.a, r.OnDemandFetches)
		}
	}
	// On the real 12 GB card: baseline fails at batch 64, vDNN-dyn trains it.
	base, err := Run(r152, cfg(Baseline, PerfOptimal))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(r152, cfg(VDNNDyn, 0))
	if err != nil {
		t.Fatal(err)
	}
	if base.Trainable {
		t.Log("note: ResNet-152 (64) fits the baseline; batch-scaling margin smaller than expected")
	}
	if !dyn.Trainable {
		t.Fatalf("vDNN-dyn should train ResNet-152 (64): %s", dyn.FailReason)
	}
	all := run(t, r152, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Oracle: true})
	baseO := run(t, r152, Config{Spec: titan(), Policy: Baseline, Algo: MemOptimal, Oracle: true})
	if all.AvgUsage >= baseO.AvgUsage/2 {
		t.Fatalf("vDNN-all should cut ResNet average memory sharply: %d vs %d", all.AvgUsage, baseO.AvgUsage)
	}
}

package core

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
	"vdnn/internal/tensor"
)

// findPrefetchLayer is a direct port of the paper's Figure 10: starting from
// the layer below the one whose backward pass is about to run, walk toward
// layer 0 looking for a layer that offloaded its input feature maps and has
// not been prefetched yet. Under the paper's window policy the search stops
// at the first CONV layer that needs no prefetch, bounding how early data is
// brought back (prefetching too early would let it camp in GPU memory
// again). The eager ablation removes that bound.
func (e *runtime) findPrefetchLayer(currLayerID int) int {
	for id := currLayerID - 1; id >= 0; id-- {
		if e.lay[id].offloaded && !e.lay[id].prefetched {
			e.lay[id].prefetched = true
			return id
		}
		if e.plan.Prefetch == PrefetchFig10 && e.net.Layers[id].Kind == dnn.Conv {
			return -1
		}
	}
	return -1
}

// prefetchBuffers re-allocates device space for the given buffers and
// launches their H2D transfers on stream_memory. A buffer that was offloaded
// compressed comes back through the codec: the wire-sized transfer is
// followed by a decompression pass, and the buffer's lastWrite is the
// decompression, so its backward readers pay the expansion before use.
func (e *runtime) prefetchBuffers(label string, bufs []*dnn.Tensor) ([]*sim.Op, error) {
	var ops []*sim.Op
	for _, t := range bufs {
		bs := e.buf[t]
		if !bs.offloaded {
			continue
		}
		b, err := e.alloc(e.mbShare(t.Bytes(e.net.DType)), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
		if err != nil {
			return nil, err
		}
		op := e.prefetchCompressed(fmt.Sprintf("PRE:%s(fm%d)", label, t.ID), t, e.mbShare(t.Bytes(e.net.DType)))
		bs.block = b
		bs.offloaded = false
		bs.lastWrite = op
		ops = append(ops, op)
	}
	return ops, nil
}

// fetchOnDemand serializes a blocking copy-back of one buffer — the paper's
// "naive" path that vDNN's prefetching exists to avoid. It only runs under
// PrefetchNone or if the window policy ever misses (counted and asserted in
// tests).
func (e *runtime) fetchOnDemand(t *dnn.Tensor) error {
	bs := e.buf[t]
	b, err := e.alloc(e.mbShare(t.Bytes(e.net.DType)), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
	if err != nil {
		return err
	}
	// The naive path has no lookahead: the copy is requested only when the
	// backward computation reaches the layer, so it starts after all queued
	// compute drains and the next kernel waits on it (the serialization the
	// paper's Section III-A describes) — decompression included when the
	// buffer went out compressed.
	op := e.prefetchCompressed(fmt.Sprintf("FETCH(fm%d)", t.ID), t, e.mbShare(t.Bytes(e.net.DType)), e.dev.StreamCompute.Last())
	e.dev.TL.Wait(op)
	bs.block = b
	bs.offloaded = false
	bs.lastWrite = op
	e.onDemand++
	return nil
}

// ensureGrad returns the gradient buffer for an aliasing root, allocating it
// on first write (vDNN) or returning the baseline's shared slot.
func (e *runtime) ensureGrad(root *dnn.Tensor) (*memalloc.Block, error) {
	bs := e.buf[root]
	if bs.gradBlock != nil {
		return bs.gradBlock, nil
	}
	gi := e.gradInfos[root]
	if gi == nil {
		return nil, fmt.Errorf("core: no gradient info for fm%d", root.ID)
	}
	b, err := e.alloc(e.mbShare(gi.Bytes), memalloc.KindGradMap, fmt.Sprintf("grad%d", root.ID))
	if err != nil {
		return nil, err
	}
	bs.gradBlock = b
	return b, nil
}

// bwdPending is the in-flight state of one layer's backward pass between
// its asynchronous issue and its end-of-layer synchronization.
type bwdPending struct {
	lastOp *sim.Op   // latest-ending backward kernel of the layer
	preOps []*sim.Op // prefetch transfers launched during this layer
}

// issueBackward launches one layer's backward pass: prefetch scheduling,
// on-demand fetch fallback, gradient allocation, the backward kernels and
// the release of Y/dY/workspace (Figures 8, 9, 10). The end-of-layer
// synchronization on in-flight prefetches happens in finishBackward.
func (e *runtime) issueBackward(l *dnn.Layer) (bwdPending, error) {
	var pend bwdPending
	st := &e.stats[l.ID]
	d := e.net.DType

	// 1. Prefetch scheduling (vDNN only).
	if e.vdnnManaged() && e.plan.Prefetch != PrefetchNone {
		// Weight-offloading extension: bring this step's scheduled weights
		// back just in time (their only backward reader is their own layer).
		for _, wl := range e.wPrefetchAt[l.ID] {
			ws := e.wState[wl]
			if ws == nil || !ws.offloaded {
				continue
			}
			b, err := e.alloc(wl.WeightBytes(d), memalloc.KindWeights, wl.Name+".W")
			if err != nil {
				return pend, err
			}
			op := e.dev.Prefetch("PRE:"+wl.Name+".W", wl.WeightBytes(d))
			e.preRawBytes += wl.WeightBytes(d)
			ws.block = b
			ws.offloaded = false
			ws.lastWrite = op
			pend.preOps = append(pend.preOps, op)
		}
	}
	if e.vdnnManaged() {
		switch e.plan.Prefetch {
		case PrefetchJIT:
			ops, err := e.prefetchBuffers(l.Name, e.plan.PrefetchAt[l.ID])
			if err != nil {
				return pend, err
			}
			pend.preOps = ops
		case PrefetchFig10, PrefetchEager:
			if pid := e.findPrefetchLayer(l.ID); pid >= 0 {
				ops, err := e.prefetchBuffers(e.net.Layers[pid].Name, e.plan.OffloadAt[pid])
				if err != nil {
					return pend, err
				}
				pend.preOps = ops
			}
		case PrefetchNone:
			// On-demand fetches only (step 2).
		}
	}

	// 2. On-demand fetch of anything this layer's kernels read that is
	// still host-resident (the paper's serialized fallback path).
	var readBytes int64
	for _, t := range l.BwdReads() {
		readBytes += t.Bytes(d)
		if e.buf[t].offloaded {
			if err := e.fetchOnDemand(t); err != nil {
				return pend, err
			}
		}
		if e.buf[t].block == nil {
			return pend, fmt.Errorf("core: bwd read fm%d not resident", t.ID)
		}
	}
	if ws := e.wState[l]; ws != nil && ws.offloaded {
		// Naive weight fetch: serialize behind queued compute like any
		// on-demand transfer.
		b, err := e.alloc(l.WeightBytes(d), memalloc.KindWeights, l.Name+".W")
		if err != nil {
			return pend, err
		}
		op := e.dev.Prefetch("FETCH:"+l.Name+".W", l.WeightBytes(d), e.dev.StreamCompute.Last())
		e.preRawBytes += l.WeightBytes(d)
		e.dev.TL.Wait(op)
		ws.block = b
		ws.offloaded = false
		ws.lastWrite = op
		e.onDemand++
	}

	// 3. Gradient buffers. The gradient of this layer's output must already
	// exist (written by its consumers' backward passes); gradients of its
	// inputs are allocated at first write.
	if l.Kind != dnn.SoftmaxLoss {
		outRoot := dnn.GradRoot(l.Output)
		if e.gradInfos[outRoot] != nil && e.buf[outRoot].gradBlock == nil {
			return pend, fmt.Errorf("core: dY for %s missing", l.Name)
		}
	}
	var gradInBytes int64
	for _, in := range l.Inputs {
		root := dnn.GradRoot(in)
		if e.gradInfos[root] == nil {
			continue // network input: gradient skipped
		}
		if _, err := e.ensureGrad(root); err != nil {
			return pend, err
		}
		if !e.buf[root].gradWritten {
			e.buf[root].gradWritten = true
		}
		gradInBytes += e.gradInfos[root].Bytes
	}

	// 4. Workspace for the convolution backward kernels.
	var algos LayerAlgos
	var wsBytes int64
	var wsBlock *memalloc.Block
	if l.Kind == dnn.Conv {
		algos = e.pickAlgos(l)
		st.AlgoBwdData = algos.BwdData
		st.AlgoBwdFilter = algos.BwdFilter
		g := l.ConvGeom(d)
		wsBytes = algos.BwdData.Workspace(g, cudnnsim.BwdData)
		if w := algos.BwdFilter.Workspace(g, cudnnsim.BwdFilter); w > wsBytes {
			wsBytes = w
		}
		if wsBytes > 0 && e.vdnnManaged() {
			b, err := e.alloc(wsBytes, memalloc.KindWorkspace, l.Name+".bws")
			if err != nil {
				return pend, err
			}
			wsBlock = b
		}
		if e.sharedWS != nil && wsBytes > e.sharedWS.Size {
			return pend, fmt.Errorf("core: bwd workspace %d exceeds shared buffer %d", wsBytes, e.sharedWS.Size)
		}
	}

	// 5. Kernels.
	ops := e.bwdKernels(l, algos)
	for _, ko := range ops {
		if pend.lastOp == nil || ko.op.End > pend.lastOp.End {
			pend.lastOp = ko.op
		}
		if ko.op.End > st.BwdEnd {
			st.BwdEnd = ko.op.End
		}
		st.BwdTime += ko.cost.Dur
		if st.BwdStart == 0 || ko.op.Start < st.BwdStart {
			st.BwdStart = ko.op.Start
		}
		if ko.cost.Dur > 0 {
			if bw := float64(ko.cost.DRAMBytes) / ko.cost.Dur.Seconds(); bw > st.BwdBW {
				st.BwdBW = bw
			}
		}
	}
	outRootBytes := int64(0)
	if gi := e.gradInfos[dnn.GradRoot(l.Output)]; gi != nil {
		outRootBytes = gi.Bytes
	}
	bws := readBytes + st.WeightBytes*2 + wsBytes + gradInBytes + outRootBytes + l.MaskBytes(d)
	if bws > st.BwdWorkingSet {
		st.BwdWorkingSet = bws
	}

	// 6. Releases once this layer's backward computation completes: every
	// feature map whose last backward reader this layer is (Figure 8: "data
	// associated with the black Xs can safely be released"), the gradient
	// map this layer's backward consumed as its last reader, and the
	// temporary workspace. Frees take effect at host issue time: cnmem's
	// stream-ordered semantics let a later-issued allocation reuse the
	// memory safely because the compute stream executes in order.
	if e.vdnnManaged() {
		relTime := e.now()
		if wsBlock != nil {
			e.pool.Free(wsBlock, relTime)
		}
		for _, t := range e.freeAtBwd[l.ID] {
			bs := e.buf[t]
			if !bs.persist && bs.block != nil {
				e.pool.Free(bs.block, relTime)
				bs.block = nil
				bs.offloaded = false
			}
		}
		outRoot := dnn.GradRoot(l.Output)
		if gi := e.gradInfos[outRoot]; gi != nil && gi.LastReader == l {
			bs := e.buf[outRoot]
			if bs.gradBlock != nil && !bs.gradPersist {
				e.pool.Free(bs.gradBlock, relTime)
				bs.gradBlock = nil
			}
		}
	}

	return pend, nil
}

// finishBackward performs the end-of-layer synchronization when a prefetch
// is in flight, so the next layer's backward cannot start before the data
// lands.
func (e *runtime) finishBackward(p bwdPending) {
	if len(p.preOps) == 0 {
		return
	}
	if p.lastOp != nil {
		e.dev.TL.Wait(p.lastOp)
	}
	for _, op := range p.preOps {
		e.dev.TL.Wait(op)
	}
}

type kernelOp struct {
	op   *sim.Op
	cost cudnnsim.Cost
}

// bwdKernelCosts enumerates a layer's backward kernel costs — the cost half
// of bwdKernels' switch, used by the pipeline partitioner's per-layer
// estimate (it includes the CONV data gradient unconditionally; whether the
// first layer skips it never moves a stage boundary).
func bwdKernelCosts(spec gpu.Spec, d tensor.DType, l *dnn.Layer, algos LayerAlgos) []cudnnsim.Cost {
	switch l.Kind {
	case dnn.Conv:
		g := l.ConvGeom(d)
		return []cudnnsim.Cost{
			cudnnsim.ConvCost(spec, g, algos.BwdData, cudnnsim.BwdData),
			cudnnsim.ConvCost(spec, g, algos.BwdFilter, cudnnsim.BwdFilter),
		}
	case dnn.ReLU:
		return []cudnnsim.Cost{cudnnsim.ActivationBwdCost(spec, l.In().Bytes(d))}
	case dnn.Pool:
		return []cudnnsim.Cost{cudnnsim.PoolBwdCost(spec, l.In().Bytes(d), l.Output.Bytes(d))}
	case dnn.LRN:
		return []cudnnsim.Cost{cudnnsim.LRNBwdCost(spec, l.In().Bytes(d))}
	case dnn.Concat, dnn.Add:
		return nil // pure views over the output gradient
	case dnn.BatchNorm:
		return []cudnnsim.Cost{cudnnsim.ElementwiseCost(spec, l.In().Bytes(d), 4)}
	case dnn.FC:
		in := l.In().Shape
		inF, outF, n := in.PerSample(), int64(l.FC.OutFeatures), int64(in.N)
		return []cudnnsim.Cost{
			cudnnsim.GEMMCost(spec, inF, outF, n, d.Size()),
			cudnnsim.GEMMCost(spec, outF, n, inF, d.Size()),
		}
	case dnn.Dropout:
		return []cudnnsim.Cost{cudnnsim.DropoutBwdCost(spec, l.In().Bytes(d), l.MaskBytes(d))}
	case dnn.SoftmaxLoss:
		return []cudnnsim.Cost{cudnnsim.SoftmaxCost(spec, l.In().Bytes(d))}
	}
	return nil
}

// bwdKernels issues the backward kernels of one layer and returns them.
func (e *runtime) bwdKernels(l *dnn.Layer, algos LayerAlgos) []kernelOp {
	spec := e.cfg.Spec
	d := e.net.DType
	var out []kernelOp
	issue := func(label string, c cudnnsim.Cost, deps ...*sim.Op) {
		c = e.mbCost(c)
		if e.bwdExtraDep != nil {
			// Pipeline: a stage's backward kernels wait for the inter-stage
			// gradient of the micro-batch to land (nil otherwise).
			deps = append(deps, e.bwdExtraDep)
		}
		op := e.dev.Kernel(label, c.Dur, c.Flops, c.DRAMBytes, deps...)
		out = append(out, kernelOp{op, c})
	}
	xDep := e.buf[l.In()].lastWrite
	var wDep *sim.Op
	if ws := e.wState[l]; ws != nil {
		wDep = ws.lastWrite
	}
	switch l.Kind {
	case dnn.Conv:
		g := l.ConvGeom(d)
		if e.gradInfos[dnn.GradRoot(l.In())] != nil {
			issue("BWD-DATA:"+l.Name, cudnnsim.ConvCost(spec, g, algos.BwdData, cudnnsim.BwdData), xDep, wDep)
		}
		issue("BWD-FILTER:"+l.Name, cudnnsim.ConvCost(spec, g, algos.BwdFilter, cudnnsim.BwdFilter), xDep)
	case dnn.ReLU:
		issue("BWD:"+l.Name, cudnnsim.ActivationBwdCost(spec, l.In().Bytes(d)), xDep)
	case dnn.Pool:
		issue("BWD:"+l.Name, cudnnsim.PoolBwdCost(spec, l.In().Bytes(d), l.Output.Bytes(d)), xDep)
	case dnn.LRN:
		issue("BWD:"+l.Name, cudnnsim.LRNBwdCost(spec, l.In().Bytes(d)), xDep)
	case dnn.Concat, dnn.Add:
		// Backward of a channel concat or elementwise add is pure views
		// over the output gradient; no kernel.
	case dnn.BatchNorm:
		issue("BWD:"+l.Name, cudnnsim.ElementwiseCost(spec, l.In().Bytes(d), 4), xDep)
	case dnn.FC:
		in := l.In().Shape
		inF, outF, n := in.PerSample(), int64(l.FC.OutFeatures), int64(in.N)
		issue("BWD-DATA:"+l.Name, cudnnsim.GEMMCost(spec, inF, outF, n, d.Size()), xDep)
		issue("BWD-FILTER:"+l.Name, cudnnsim.GEMMCost(spec, outF, n, inF, d.Size()), xDep)
	case dnn.Dropout:
		issue("BWD:"+l.Name, cudnnsim.DropoutBwdCost(spec, l.In().Bytes(d), l.MaskBytes(d)), xDep)
	case dnn.SoftmaxLoss:
		issue("BWD:"+l.Name, cudnnsim.SoftmaxCost(spec, l.In().Bytes(d)), xDep)
	}
	return out
}

package core

import (
	"fmt"

	"vdnn/internal/dnn"
)

// OffloadPolicy is the extension point of the vDNN memory manager: it decides
// which feature maps are offloaded to pinned host memory, which convolution
// algorithm mode each CONV layer runs, and which prefetch schedule brings
// offloaded data back for the backward pass. The four policies of the paper
// (Section III-C) are built-in implementations — BuiltinPolicy returns them —
// and user code can supply its own through Config.Custom without touching the
// executor.
//
// Implementations must be deterministic pure functions of their inputs: the
// same (network, layer, tensor) arguments must always produce the same
// decision, because result caches key simulations by configuration and policy
// name only. Name must uniquely identify the policy's decision function; two
// policies that share a name are assumed interchangeable by caches.
//
// The structural invariants of the runtime are not delegated: classifier-side
// buffers are never offered for offload, a shared buffer is offloaded by its
// LAST consumer (the reference-count rule of Figure 3/7), and the release and
// prefetch bookkeeping stays inside the executor. A policy can therefore only
// choose WHAT to offload and HOW to compute, never corrupt the schedule.
type OffloadPolicy interface {
	// Name identifies the policy in results, reports and cache keys.
	Name() string

	// OffloadInput reports whether buffer t should be offloaded to host
	// memory during the forward pass, given that feature-extraction layer c
	// reads it as an input feature map. The planner calls it once per
	// (tensor, feature-extraction consumer) pair; answering true for any
	// consumer offloads the buffer, triggered by its last consumer.
	OffloadInput(net *dnn.Network, t *dnn.Tensor, c *dnn.Layer) bool

	// Algorithms selects the convolution algorithm mode for CONV layer l.
	// requested is the mode the Config asked for; returning it unchanged
	// defers to the configuration, while per-layer overrides mix
	// memory-optimal, performance-optimal and greedy layers freely.
	Algorithms(net *dnn.Network, l *dnn.Layer, requested AlgoMode) AlgoMode

	// PrefetchSchedule selects the prefetch scheduling strategy. requested is
	// the Config's schedule; built-in policies return it unchanged.
	PrefetchSchedule(net *dnn.Network, requested PrefetchMode) PrefetchMode
}

// Simulate runs one candidate configuration on behalf of a profiling policy.
// It returns (nil, nil) when the candidate cannot train the network (out of
// pool memory) — the signal the profiling cascade moves on from — and a
// non-nil error only for invalid configurations. The candidate must resolve
// to a non-profiling policy.
type Simulate func(Config) (*Result, error)

// Profiler is an optional interface for policies that settle their final
// configuration by running profiling simulations, the way the paper's dynamic
// policy cascades through candidate (policy, algorithm) pairs at startup.
// When the configured policy implements Profiler, Run hands control to
// Profile instead of building a static plan.
type Profiler interface {
	OffloadPolicy

	// Profile simulates whatever candidates the policy needs and returns the
	// final result. cfg is the full outer configuration; candidates are
	// usually derived from it by overriding Policy/Algo/Custom.
	Profile(net *dnn.Network, cfg Config, simulate Simulate) (*Result, error)
}

// baselineManager is the unexported marker of the Torch-style baseline: a
// policy implementing it runs under network-wide persistent allocation
// (every feature map resident, shared gradient slots, one reused workspace)
// instead of vDNN's dynamic allocate/release discipline. The method is
// unexported on purpose: custom policies always get the vDNN runtime.
type baselineManager interface {
	baselineManaged()
}

// BuiltinPolicy returns the built-in implementation of a Policy enum value.
// Custom policies can delegate to these to refine a paper policy rather than
// re-derive it.
func BuiltinPolicy(p Policy) (OffloadPolicy, error) {
	switch p {
	case Baseline:
		return basePolicy{}, nil
	case VDNNAll:
		return allPolicy{}, nil
	case VDNNConv:
		return convPolicy{}, nil
	case VDNNDyn:
		return dynamicPolicy{}, nil
	}
	return nil, fmt.Errorf("core: unknown policy %v", p)
}

// policyImpl resolves the policy implementation a configuration selects:
// Custom when set, the built-in for Policy otherwise.
func (c Config) policyImpl() (OffloadPolicy, error) {
	if c.Custom != nil {
		return c.Custom, nil
	}
	return BuiltinPolicy(c.Policy)
}

// basePolicy is the Torch-style baseline: nothing is offloaded and every
// allocation is network-wide.
type basePolicy struct{}

func (basePolicy) Name() string                                            { return Baseline.String() }
func (basePolicy) OffloadInput(*dnn.Network, *dnn.Tensor, *dnn.Layer) bool { return false }
func (basePolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, requested AlgoMode) AlgoMode {
	return requested
}
func (basePolicy) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}
func (basePolicy) baselineManaged() {}

// allPolicy offloads every feature-extraction layer's input feature map.
// In-place layers (ACTV) share their input buffer and need no offload of
// their own (Section III-B).
type allPolicy struct{}

func (allPolicy) Name() string { return VDNNAll.String() }
func (allPolicy) OffloadInput(_ *dnn.Network, _ *dnn.Tensor, c *dnn.Layer) bool {
	return !c.InPlace
}
func (allPolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, requested AlgoMode) AlgoMode {
	return requested
}
func (allPolicy) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}

// convPolicy offloads only the CONV layers' input feature maps — the
// longest-reuse-distance buffers (Figure 6).
type convPolicy struct{}

func (convPolicy) Name() string { return VDNNConv.String() }
func (convPolicy) OffloadInput(_ *dnn.Network, _ *dnn.Tensor, c *dnn.Layer) bool {
	return c.Kind == dnn.Conv
}
func (convPolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, requested AlgoMode) AlgoMode {
	return requested
}
func (convPolicy) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}

package core

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
)

// LayerAlgos is the per-CONV-layer algorithm selection for the three
// convolution kernels of a training step.
type LayerAlgos struct {
	Fwd, BwdData, BwdFilter cudnnsim.ConvAlgo
}

// Plan is the execution plan the executor follows, derived once per run by
// asking the OffloadPolicy about every layer and buffer: which algorithm each
// CONV layer uses (unless chosen greedily online), which feature-map buffers
// are offloaded — keyed by the layer that triggers the offload (the buffer's
// last consumer, per the reference-count rule of Figure 3/7) — and which
// prefetch schedule brings them back.
type Plan struct {
	// PolicyName is the Name() of the policy that produced the plan.
	PolicyName string
	// Baseline marks the Torch-style network-wide allocation discipline; all
	// other policies run under vDNN's dynamic allocate/release runtime.
	Baseline bool

	Algos []LayerAlgos // indexed by layer ID; meaningful for CONV layers
	// GreedyAt marks CONV layers whose algorithms are picked online, at issue
	// time, as the fastest whose workspace fits in free pool memory.
	GreedyAt []bool

	// Prefetch is the resolved prefetch schedule the backward pass follows.
	Prefetch PrefetchMode

	// OffloadAt lists, per trigger layer ID, the buffers that layer offloads
	// when its forward pass runs.
	OffloadAt [][]*dnn.Tensor
	// PrefetchAt lists, per layer ID, the offloaded buffers whose prefetch
	// is launched during that layer's backward pass under the just-in-time
	// schedule (Figure 9): one backward step before the buffer's first
	// backward reader.
	PrefetchAt [][]*dnn.Tensor
	// Compression maps each offloaded buffer to its resolved codec and
	// predicted activation sparsity; nil when the configuration does not
	// compress (see Config.Compression and CompressionPolicy).
	Compression map[*dnn.Tensor]codecDecision
	// offloadTotal is the per-iteration offload traffic implied by the plan.
	offloadTotal int64
}

// Offloads reports whether the plan offloads anything at all.
func (p *Plan) Offloads() bool { return p.offloadTotal > 0 }

// buildPlan derives the static plan for one configuration by consulting the
// policy about every CONV layer's algorithms, every feature-extraction
// buffer's offload eligibility, and the prefetch schedule. It is the
// full-layer-range stage plan: under pipeline parallelism each stage
// derives the same plan scoped to its own range.
func buildPlan(net *dnn.Network, cfg Config, pol OffloadPolicy) (*Plan, error) {
	return buildStagePlan(net, cfg, pol, 0, len(net.Layers))
}

// buildStagePlan derives the execution plan of one pipeline stage owning
// layers [lo, hi): the policy is consulted about every in-range CONV
// layer's algorithms, and the structural offload/prefetch rules are scoped
// to the stage — a buffer is offloaded by its last consumer within the
// stage (its in-range feature-extraction consumers offered to the policy)
// and prefetched one step before its first backward reader within the
// stage. Boundary activations consumed by a later stage are never
// offloaded — they are the stage's live outputs, sent over the
// interconnect and kept resident for the stage's own backward pass.
func buildStagePlan(net *dnn.Network, cfg Config, pol OffloadPolicy, lo, hi int) (*Plan, error) {
	switch cfg.Algo {
	case MemOptimal, PerfOptimal, GreedyAlgo:
	default:
		return nil, fmt.Errorf("core: unknown algo mode %v", cfg.Algo)
	}
	_, isBase := pol.(baselineManager)
	p := &Plan{
		PolicyName: pol.Name(),
		Baseline:   isBase,
		Algos:      make([]LayerAlgos, len(net.Layers)),
		GreedyAt:   make([]bool, len(net.Layers)),
		Prefetch:   pol.PrefetchSchedule(net, cfg.Prefetch),
		OffloadAt:  make([][]*dnn.Tensor, len(net.Layers)),
	}
	for _, l := range net.Layers[lo:hi] {
		if l.Kind != dnn.Conv {
			continue
		}
		switch mode := pol.Algorithms(net, l, cfg.Algo); mode {
		case MemOptimal:
			p.Algos[l.ID] = LayerAlgos{cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM}
		case PerfOptimal:
			g := l.ConvGeom(net.DType)
			p.Algos[l.ID] = LayerAlgos{
				Fwd:       cudnnsim.FastestAlgo(cfg.Spec, g, cudnnsim.Fwd, -1).Algo,
				BwdData:   cudnnsim.FastestAlgo(cfg.Spec, g, cudnnsim.BwdData, -1).Algo,
				BwdFilter: cudnnsim.FastestAlgo(cfg.Spec, g, cudnnsim.BwdFilter, -1).Algo,
			}
		case GreedyAlgo:
			p.GreedyAt[l.ID] = true
		default:
			return nil, fmt.Errorf("core: policy %q selected unknown algo mode %v for %s",
				pol.Name(), mode, l.Name)
		}
	}

	p.PrefetchAt = make([][]*dnn.Tensor, len(net.Layers))
	firstReader := stageFirstBwdReaders(net, lo, hi)
	var offloaded []*dnn.Tensor
	for _, t := range net.Tensors {
		trigger := stageOffloadTrigger(net, t, pol, lo, hi)
		if trigger == nil {
			continue
		}
		offloaded = append(offloaded, t)
		p.OffloadAt[trigger.ID] = append(p.OffloadAt[trigger.ID], t)
		p.offloadTotal += t.Bytes(net.DType)
		// JIT prefetch: during the backward pass of the layer processed
		// immediately before the buffer's first backward reader. A buffer no
		// backward kernel reads is never fetched back — its device copy is
		// simply never recreated. (In the benchmark networks every offloaded
		// buffer has a reader: even concat branch outputs are read by their
		// in-place ReLU's backward.)
		if f := firstReader[t]; f != nil {
			at := f.ID + 1
			if at >= hi {
				at = hi - 1 // fetched at the stage's very first backward step
			}
			p.PrefetchAt[at] = append(p.PrefetchAt[at], t)
		}
	}
	var err error
	if p.Compression, err = buildCompression(net, cfg, pol, offloaded); err != nil {
		return nil, err
	}
	return p, nil
}

// stageOffloadTrigger decides whether buffer t is offloaded within the
// layer range [lo, hi) and, if so, which layer initiates the transfer. The
// structural rules stay here, out of the policy's hands: classifier-side
// buffers are unmanaged, only in-range feature-extraction consumers are
// offered to the policy, the trigger is the buffer's last in-range consumer
// (the reference-count rule of Figure 3/7, scoped to the stage), and
// buffers any later stage still needs (forward consumers at or past hi) are
// excluded — their device copy must survive the stage's forward walk to
// feed the inter-stage send.
func stageOffloadTrigger(net *dnn.Network, t *dnn.Tensor, pol OffloadPolicy, lo, hi int) *dnn.Layer {
	if t.Producer != nil && t.Producer.Stage == dnn.Classifier {
		return nil // classifier buffers are unmanaged
	}
	qualifies := false
	var trigger *dnn.Layer
	for _, c := range t.Consumer {
		if c.ID >= hi {
			return nil // boundary-out: a later stage still reads it
		}
		if c.ID < lo {
			continue
		}
		trigger = c // consumers are execution-ordered: last in-range wins
		if c.Stage != dnn.FeatureExtraction {
			continue
		}
		if pol.OffloadInput(net, t, c) {
			qualifies = true
		}
	}
	if !qualifies {
		return nil
	}
	return trigger
}

// stageFirstBwdReaders maps each buffer to the layer whose backward kernels
// read it first in backward execution order within [lo, hi) — the buffer's
// highest-ID reader among the stage's own backward kernels.
func stageFirstBwdReaders(net *dnn.Network, lo, hi int) map[*dnn.Tensor]*dnn.Layer {
	m := make(map[*dnn.Tensor]*dnn.Layer, len(net.Tensors))
	for _, l := range net.Layers[lo:hi] {
		for _, t := range l.BwdReads() {
			if cur, ok := m[t]; !ok || l.ID > cur.ID {
				m[t] = l
			}
		}
	}
	return m
}

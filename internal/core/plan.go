package core

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
)

// LayerAlgos is the per-CONV-layer algorithm selection for the three
// convolution kernels of a training step.
type LayerAlgos struct {
	Fwd, BwdData, BwdFilter cudnnsim.ConvAlgo
}

// Plan is the execution plan the executor follows: which algorithm each CONV
// layer uses (unless chosen greedily online) and which feature-map buffers
// are offloaded, keyed by the layer that triggers the offload (the buffer's
// last consumer, per the reference-count rule of Figure 3/7).
type Plan struct {
	Algos  []LayerAlgos // indexed by layer ID; meaningful for CONV layers
	Greedy bool         // pick algorithms online from free pool memory

	// OffloadAt lists, per trigger layer ID, the buffers that layer offloads
	// when its forward pass runs.
	OffloadAt [][]*dnn.Tensor
	// PrefetchAt lists, per layer ID, the offloaded buffers whose prefetch
	// is launched during that layer's backward pass under the just-in-time
	// schedule (Figure 9): one backward step before the buffer's first
	// backward reader.
	PrefetchAt [][]*dnn.Tensor
	// offloadTotal is the per-iteration offload traffic implied by the plan.
	offloadTotal int64
}

// Offloads reports whether the plan offloads anything at all.
func (p *Plan) Offloads() bool { return p.offloadTotal > 0 }

// buildPlan derives the static plan for a policy/algorithm-mode pair.
func buildPlan(net *dnn.Network, spec gpu.Spec, policy Policy, mode AlgoMode) (*Plan, error) {
	p := &Plan{
		Algos:     make([]LayerAlgos, len(net.Layers)),
		OffloadAt: make([][]*dnn.Tensor, len(net.Layers)),
	}
	switch mode {
	case MemOptimal:
		for _, l := range net.Layers {
			if l.Kind == dnn.Conv {
				p.Algos[l.ID] = LayerAlgos{cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM}
			}
		}
	case PerfOptimal:
		for _, l := range net.Layers {
			if l.Kind == dnn.Conv {
				g := l.ConvGeom(net.DType)
				p.Algos[l.ID] = LayerAlgos{
					Fwd:       cudnnsim.FastestAlgo(spec, g, cudnnsim.Fwd, -1).Algo,
					BwdData:   cudnnsim.FastestAlgo(spec, g, cudnnsim.BwdData, -1).Algo,
					BwdFilter: cudnnsim.FastestAlgo(spec, g, cudnnsim.BwdFilter, -1).Algo,
				}
			}
		}
	case GreedyAlgo:
		p.Greedy = true
	default:
		return nil, fmt.Errorf("core: unknown algo mode %v", mode)
	}

	p.PrefetchAt = make([][]*dnn.Tensor, len(net.Layers))
	firstReader := firstBwdReaders(net)
	for _, t := range net.Tensors {
		trigger := offloadTrigger(t, policy)
		if trigger == nil {
			continue
		}
		p.OffloadAt[trigger.ID] = append(p.OffloadAt[trigger.ID], t)
		p.offloadTotal += t.Bytes(net.DType)
		// JIT prefetch: during the backward pass of the layer processed
		// immediately before the buffer's first backward reader. A buffer no
		// backward kernel reads is never fetched back — its device copy is
		// simply never recreated. (In the benchmark networks every offloaded
		// buffer has a reader: even concat branch outputs are read by their
		// in-place ReLU's backward.)
		if f := firstReader[t]; f != nil {
			at := f.ID + 1
			if at >= len(net.Layers) {
				at = len(net.Layers) - 1 // fetched at the very first backward step
			}
			p.PrefetchAt[at] = append(p.PrefetchAt[at], t)
		}
	}
	return p, nil
}

// firstBwdReaders maps each buffer to the layer whose backward kernels read
// it first in backward execution order (the highest-ID reader).
func firstBwdReaders(net *dnn.Network) map[*dnn.Tensor]*dnn.Layer {
	m := make(map[*dnn.Tensor]*dnn.Layer, len(net.Tensors))
	for _, l := range net.Layers {
		for _, t := range l.BwdReads() {
			if cur, ok := m[t]; !ok || l.ID > cur.ID {
				m[t] = l
			}
		}
	}
	return m
}

// offloadTrigger decides whether buffer t is offloaded under the policy and,
// if so, which layer initiates the transfer. A buffer qualifies when it
// serves as the input feature map (X) of a managed feature-extraction layer:
// any non-in-place FE layer under vDNN-all (ACTV layers are in place and
// need no offload, Section III-B), or a CONV layer under vDNN-conv. The
// transfer is triggered by the buffer's LAST consumer so that shared
// (forked) feature maps are never released while a pending consumer remains
// (the paper's Refcnt rule).
func offloadTrigger(t *dnn.Tensor, policy Policy) *dnn.Layer {
	if policy != VDNNAll && policy != VDNNConv {
		return nil
	}
	if t.Producer != nil && t.Producer.Stage == dnn.Classifier {
		return nil // classifier buffers are unmanaged
	}
	qualifies := false
	for _, c := range t.Consumer {
		if c.Stage != dnn.FeatureExtraction {
			continue
		}
		switch policy {
		case VDNNAll:
			if !c.InPlace {
				qualifies = true
			}
		case VDNNConv:
			if c.Kind == dnn.Conv {
				qualifies = true
			}
		}
	}
	if !qualifies {
		return nil
	}
	return t.LastConsumer()
}

package core

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
)

// LayerAlgos is the per-CONV-layer algorithm selection for the three
// convolution kernels of a training step.
type LayerAlgos struct {
	Fwd, BwdData, BwdFilter cudnnsim.ConvAlgo
}

// Plan is the execution plan the executor follows, derived once per run by
// asking the OffloadPolicy about every layer and buffer: which algorithm each
// CONV layer uses (unless chosen greedily online), which feature-map buffers
// are offloaded — keyed by the layer that triggers the offload (the buffer's
// last consumer, per the reference-count rule of Figure 3/7) — and which
// prefetch schedule brings them back.
type Plan struct {
	// PolicyName is the Name() of the policy that produced the plan.
	PolicyName string
	// Baseline marks the Torch-style network-wide allocation discipline; all
	// other policies run under vDNN's dynamic allocate/release runtime.
	Baseline bool

	Algos []LayerAlgos // indexed by layer ID; meaningful for CONV layers
	// GreedyAt marks CONV layers whose algorithms are picked online, at issue
	// time, as the fastest whose workspace fits in free pool memory.
	GreedyAt []bool

	// Prefetch is the resolved prefetch schedule the backward pass follows.
	Prefetch PrefetchMode

	// OffloadAt lists, per trigger layer ID, the buffers that layer offloads
	// when its forward pass runs.
	OffloadAt [][]*dnn.Tensor
	// PrefetchAt lists, per layer ID, the offloaded buffers whose prefetch
	// is launched during that layer's backward pass under the just-in-time
	// schedule (Figure 9): one backward step before the buffer's first
	// backward reader.
	PrefetchAt [][]*dnn.Tensor
	// Compression maps each offloaded buffer to its resolved codec and
	// predicted activation sparsity; nil when the configuration does not
	// compress (see Config.Compression and CompressionPolicy).
	Compression map[*dnn.Tensor]codecDecision
	// offloadTotal is the per-iteration offload traffic implied by the plan.
	offloadTotal int64
}

// Offloads reports whether the plan offloads anything at all.
func (p *Plan) Offloads() bool { return p.offloadTotal > 0 }

// buildPlan derives the static plan for one configuration by consulting the
// policy about every CONV layer's algorithms, every feature-extraction
// buffer's offload eligibility, and the prefetch schedule.
func buildPlan(net *dnn.Network, cfg Config, pol OffloadPolicy) (*Plan, error) {
	switch cfg.Algo {
	case MemOptimal, PerfOptimal, GreedyAlgo:
	default:
		return nil, fmt.Errorf("core: unknown algo mode %v", cfg.Algo)
	}
	_, isBase := pol.(baselineManager)
	p := &Plan{
		PolicyName: pol.Name(),
		Baseline:   isBase,
		Algos:      make([]LayerAlgos, len(net.Layers)),
		GreedyAt:   make([]bool, len(net.Layers)),
		Prefetch:   pol.PrefetchSchedule(net, cfg.Prefetch),
		OffloadAt:  make([][]*dnn.Tensor, len(net.Layers)),
	}
	for _, l := range net.Layers {
		if l.Kind != dnn.Conv {
			continue
		}
		switch mode := pol.Algorithms(net, l, cfg.Algo); mode {
		case MemOptimal:
			// Implicit GEMM everywhere: zero workspace.
			p.Algos[l.ID] = LayerAlgos{cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM, cudnnsim.ImplicitGEMM}
		case PerfOptimal:
			g := l.ConvGeom(net.DType)
			p.Algos[l.ID] = LayerAlgos{
				Fwd:       cudnnsim.FastestAlgo(cfg.Spec, g, cudnnsim.Fwd, -1).Algo,
				BwdData:   cudnnsim.FastestAlgo(cfg.Spec, g, cudnnsim.BwdData, -1).Algo,
				BwdFilter: cudnnsim.FastestAlgo(cfg.Spec, g, cudnnsim.BwdFilter, -1).Algo,
			}
		case GreedyAlgo:
			p.GreedyAt[l.ID] = true
		default:
			return nil, fmt.Errorf("core: policy %q selected unknown algo mode %v for %s",
				pol.Name(), mode, l.Name)
		}
	}

	p.PrefetchAt = make([][]*dnn.Tensor, len(net.Layers))
	firstReader := firstBwdReaders(net)
	var offloaded []*dnn.Tensor
	for _, t := range net.Tensors {
		trigger := offloadTrigger(net, t, pol)
		if trigger == nil {
			continue
		}
		offloaded = append(offloaded, t)
		p.OffloadAt[trigger.ID] = append(p.OffloadAt[trigger.ID], t)
		p.offloadTotal += t.Bytes(net.DType)
		// JIT prefetch: during the backward pass of the layer processed
		// immediately before the buffer's first backward reader. A buffer no
		// backward kernel reads is never fetched back — its device copy is
		// simply never recreated. (In the benchmark networks every offloaded
		// buffer has a reader: even concat branch outputs are read by their
		// in-place ReLU's backward.)
		if f := firstReader[t]; f != nil {
			at := f.ID + 1
			if at >= len(net.Layers) {
				at = len(net.Layers) - 1 // fetched at the very first backward step
			}
			p.PrefetchAt[at] = append(p.PrefetchAt[at], t)
		}
	}
	var err error
	if p.Compression, err = buildCompression(net, cfg, pol, offloaded); err != nil {
		return nil, err
	}
	return p, nil
}

// firstBwdReaders maps each buffer to the layer whose backward kernels read
// it first in backward execution order (the highest-ID reader).
func firstBwdReaders(net *dnn.Network) map[*dnn.Tensor]*dnn.Layer {
	m := make(map[*dnn.Tensor]*dnn.Layer, len(net.Tensors))
	for _, l := range net.Layers {
		for _, t := range l.BwdReads() {
			if cur, ok := m[t]; !ok || l.ID > cur.ID {
				m[t] = l
			}
		}
	}
	return m
}

// offloadTrigger decides whether buffer t is offloaded under the policy and,
// if so, which layer initiates the transfer. The structural rules stay here,
// out of the policy's hands: classifier-side buffers are unmanaged, only
// feature-extraction consumers are offered to the policy, and the transfer is
// triggered by the buffer's LAST consumer so that shared (forked) feature
// maps are never released while a pending consumer remains (the paper's
// Refcnt rule).
func offloadTrigger(net *dnn.Network, t *dnn.Tensor, pol OffloadPolicy) *dnn.Layer {
	if t.Producer != nil && t.Producer.Stage == dnn.Classifier {
		return nil // classifier buffers are unmanaged
	}
	qualifies := false
	for _, c := range t.Consumer {
		if c.Stage != dnn.FeatureExtraction {
			continue
		}
		if pol.OffloadInput(net, t, c) {
			qualifies = true
		}
	}
	if !qualifies {
		return nil
	}
	return t.LastConsumer()
}

package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"vdnn/internal/gpu"
)

// Text round-tripping for the configuration enums. MarshalText emits a
// canonical lower-case token (stable across releases, safe in JSON, flags and
// config files); UnmarshalText additionally accepts the String() display
// forms and the common aliases the CLI tools historically used, case
// insensitively. Each enum also implements flag.Value (Set), so the cmd/
// tools bind them directly with flag.Var / flag.TextVar.

// MarshalText encodes the policy as its canonical token: "base", "vdnn-all",
// "vdnn-conv" or "vdnn-dyn".
func (p Policy) MarshalText() ([]byte, error) {
	switch p {
	case Baseline:
		return []byte("base"), nil
	case VDNNAll:
		return []byte("vdnn-all"), nil
	case VDNNConv:
		return []byte("vdnn-conv"), nil
	case VDNNDyn:
		return []byte("vdnn-dyn"), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown policy %d", int(p))
}

// UnmarshalText decodes a policy token. Accepted (case-insensitive): the
// canonical forms, the display forms ("vDNN-all"), and the short aliases
// "baseline", "all", "conv", "dyn".
func (p *Policy) UnmarshalText(text []byte) error {
	switch strings.ToLower(strings.TrimSpace(string(text))) {
	case "base", "baseline":
		*p = Baseline
	case "vdnn-all", "all":
		*p = VDNNAll
	case "vdnn-conv", "conv":
		*p = VDNNConv
	case "vdnn-dyn", "dyn":
		*p = VDNNDyn
	default:
		return fmt.Errorf("core: unknown policy %q (want base, vdnn-all, vdnn-conv or vdnn-dyn)", text)
	}
	return nil
}

// Set implements flag.Value.
func (p *Policy) Set(s string) error { return p.UnmarshalText([]byte(s)) }

// MarshalText encodes the algorithm mode as "m", "p" or "greedy".
func (m AlgoMode) MarshalText() ([]byte, error) {
	switch m {
	case MemOptimal:
		return []byte("m"), nil
	case PerfOptimal:
		return []byte("p"), nil
	case GreedyAlgo:
		return []byte("greedy"), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown algo mode %d", int(m))
}

// UnmarshalText decodes an algorithm-mode token. Accepted
// (case-insensitive): "m"/"(m)"/"mem"/"memory-optimal",
// "p"/"(p)"/"perf"/"performance-optimal", "greedy"/"(greedy)".
func (m *AlgoMode) UnmarshalText(text []byte) error {
	switch strings.ToLower(strings.TrimSpace(string(text))) {
	case "m", "(m)", "mem", "memory-optimal":
		*m = MemOptimal
	case "p", "(p)", "perf", "performance-optimal":
		*m = PerfOptimal
	case "greedy", "(greedy)":
		*m = GreedyAlgo
	default:
		return fmt.Errorf("core: unknown algo mode %q (want m, p or greedy)", text)
	}
	return nil
}

// Set implements flag.Value.
func (m *AlgoMode) Set(s string) error { return m.UnmarshalText([]byte(s)) }

// MarshalText encodes the prefetch mode as "jit", "fig10", "none" or "eager".
func (m PrefetchMode) MarshalText() ([]byte, error) {
	switch m {
	case PrefetchJIT:
		return []byte("jit"), nil
	case PrefetchFig10:
		return []byte("fig10"), nil
	case PrefetchNone:
		return []byte("none"), nil
	case PrefetchEager:
		return []byte("eager"), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown prefetch mode %d", int(m))
}

// UnmarshalText decodes a prefetch-mode token. Accepted (case-insensitive):
// "jit", "fig10"/"fig10-window", "none", "eager".
func (m *PrefetchMode) UnmarshalText(text []byte) error {
	switch strings.ToLower(strings.TrimSpace(string(text))) {
	case "jit":
		*m = PrefetchJIT
	case "fig10", "fig10-window":
		*m = PrefetchFig10
	case "none":
		*m = PrefetchNone
	case "eager":
		*m = PrefetchEager
	default:
		return fmt.Errorf("core: unknown prefetch mode %q (want jit, fig10, none or eager)", text)
	}
	return nil
}

// Set implements flag.Value.
func (m *PrefetchMode) Set(s string) error { return m.UnmarshalText([]byte(s)) }

// UnmarshalJSON decodes a Config, additionally accepting a "Backend" key
// naming a device from the hardware catalog (gpu.BackendNames): the named
// backend's spec is materialized into Spec, so JSON configurations can say
// {"Backend": "p100"} instead of spelling out a full device description.
// Naming a backend and giving an explicit Spec at once is rejected — the
// two would silently shadow each other. A config without the key decodes
// exactly as before.
func (c *Config) UnmarshalJSON(data []byte) error {
	type alias Config // alias drops the methods: no recursion
	aux := struct {
		*alias
		Backend string
	}{alias: (*alias)(c)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.Backend == "" {
		return nil
	}
	if c.Spec != (gpu.Spec{}) {
		return fmt.Errorf("core: config names backend %q and an explicit Spec; give one or the other", aux.Backend)
	}
	s, ok := gpu.ByName(aux.Backend)
	if !ok {
		return fmt.Errorf("core: unknown backend %q (have %s)", aux.Backend, strings.Join(gpu.Names(), ", "))
	}
	c.Spec = s
	return nil
}

package core

import (
	"testing"

	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/sim"
)

// multiCfg builds a data-parallel configuration.
func multiCfg(p Policy, a AlgoMode, devices int, top pcie.Topology) Config {
	return Config{Spec: titan(), Policy: p, Algo: a, Devices: devices, Topology: top}
}

// TestDevicesOneIsByteIdenticalToDefault: Devices == 1 (with or without a
// topology) must go down the exact single-device path — the refactor's
// degeneracy guarantee.
func TestDevicesOneIsByteIdenticalToDefault(t *testing.T) {
	base := run(t, vgg64, cfg(VDNNAll, MemOptimal))
	one, err := Run(vgg64, multiCfg(VDNNAll, MemOptimal, 1, pcie.SharedGen3Root()))
	if err != nil {
		t.Fatal(err)
	}
	if one.IterTime != base.IterTime || one.FETime != base.FETime ||
		one.MaxUsage != base.MaxUsage || one.AvgUsage != base.AvgUsage ||
		one.OffloadBytes != base.OffloadBytes || one.PrefetchBytes != base.PrefetchBytes {
		t.Fatalf("Devices=1 diverged from default:\n got %+v\nwant %+v", one, base)
	}
	if len(one.Devices) != 0 {
		t.Fatalf("single-device result carries %d DeviceResults", len(one.Devices))
	}
	// The normalized configs share one identity (cache-key property).
	a := multiCfg(VDNNAll, MemOptimal, 1, pcie.SharedGen3Root()).WithDefaults()
	b := cfg(VDNNAll, MemOptimal).WithDefaults()
	if a != b {
		t.Fatalf("normalized single-device configs differ:\n%+v\n%+v", a, b)
	}
}

// TestMultiGPUDedicatedNoContention: replicas on dedicated links never stall
// on the interconnect, and every replica moves the same traffic as the
// single-device run.
func TestMultiGPUDedicatedNoContention(t *testing.T) {
	single := run(t, alexNet, cfg(VDNNAll, MemOptimal))
	r, err := Run(alexNet, multiCfg(VDNNAll, MemOptimal, 2, pcie.Dedicated()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trainable {
		t.Fatalf("untrainable: %s", r.FailReason)
	}
	if len(r.Devices) != 2 {
		t.Fatalf("got %d DeviceResults, want 2", len(r.Devices))
	}
	for _, d := range r.Devices {
		if d.ContentionStall != 0 {
			t.Errorf("device %d stalled %v on dedicated links", d.Device, d.ContentionStall)
		}
		if d.OffloadBytes != single.OffloadBytes {
			t.Errorf("device %d offloaded %d bytes, single-device run offloads %d",
				d.Device, d.OffloadBytes, single.OffloadBytes)
		}
		if d.StepTime <= 0 || d.StepTime > r.IterTime {
			t.Errorf("device %d step time %v outside (0, %v]", d.Device, d.StepTime, r.IterTime)
		}
	}
	if r.OffloadBytes != 2*single.OffloadBytes {
		t.Errorf("aggregate offload %d, want %d", r.OffloadBytes, 2*single.OffloadBytes)
	}
}

// TestMultiGPUSharedRootContention: on a single shared x16 uplink, replicas
// genuinely contend — transfers stall versus their dedicated-link time — and
// bandwidth conservation holds (executeDP validates the channels on every
// run; this test also checks the visible symptom).
func TestMultiGPUSharedRootContention(t *testing.T) {
	r, err := Run(alexNet, multiCfg(VDNNAll, MemOptimal, 4, pcie.SharedGen3Root()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Trainable {
		t.Fatalf("untrainable: %s", r.FailReason)
	}
	var stalled int
	for _, d := range r.Devices {
		if d.ContentionStall > 0 {
			stalled++
		}
		if d.OverlapEff < 0 || d.OverlapEff > 1 {
			t.Errorf("device %d overlap efficiency %v outside [0,1]", d.Device, d.OverlapEff)
		}
	}
	if stalled == 0 {
		t.Error("4 replicas on one x16 uplink and nobody stalled")
	}
}

// TestMultiGPUStepTimeMonotonic is the scale question the simulator exists
// to answer, as an invariant: under vDNN-all on a shared root complex, the
// mean per-replica step time never improves as replicas are added.
func TestMultiGPUStepTimeMonotonic(t *testing.T) {
	meanStep := func(devices int) sim.Time {
		if devices == 1 {
			return run(t, alexNet, cfg(VDNNAll, MemOptimal)).IterTime
		}
		r, err := Run(alexNet, multiCfg(VDNNAll, MemOptimal, devices, pcie.SharedGen3Root()))
		if err != nil {
			t.Fatal(err)
		}
		var sum sim.Time
		for _, d := range r.Devices {
			sum += d.StepTime
		}
		return sum / sim.Time(len(r.Devices))
	}
	prev := sim.Time(0)
	for _, n := range []int{1, 2, 4, 8} {
		step := meanStep(n)
		if step < prev {
			t.Fatalf("mean per-replica step time improved from %v to %v at %d devices", prev, step, n)
		}
		prev = step
	}
}

// TestAllReduceAccounting checks the ring all-reduce volume: each replica
// sends and receives 2(N-1) chunks of ceil(W/N) bytes, and every chunk
// crosses the root complex on both the sender's and the receiver's segment.
func TestAllReduceAccounting(t *testing.T) {
	const n = 4
	r, err := Run(alexNet, multiCfg(VDNNAll, MemOptimal, n, pcie.SharedGen3Root()))
	if err != nil {
		t.Fatal(err)
	}
	w := alexNet.TotalWeightBytes()
	chunk := (w + n - 1) / n
	perDevice := 2 * int64(2*(n-1)) * chunk // sends + receives
	for _, d := range r.Devices {
		if d.AllReduceBytes != perDevice {
			t.Errorf("device %d all-reduce bytes %d, want %d", d.Device, d.AllReduceBytes, perDevice)
		}
	}
	if want := int64(n) * perDevice; r.AllReduceBytes != want {
		t.Errorf("total all-reduce bytes %d, want %d", r.AllReduceBytes, want)
	}
	if r.AllReduceTime <= 0 {
		t.Error("all-reduce took no time")
	}
	// The baseline synchronizes gradients too — it is data parallelism, not
	// memory management, that makes the traffic.
	base, err := Run(alexNet, multiCfg(Baseline, PerfOptimal, n, pcie.SharedGen3Root()))
	if err != nil {
		t.Fatal(err)
	}
	if base.AllReduceBytes != r.AllReduceBytes {
		t.Errorf("baseline all-reduce %d != vDNN all-reduce %d", base.AllReduceBytes, r.AllReduceBytes)
	}
}

// TestAllReduceFollowsWeightUpdate: a normal data-parallel step carries
// gradient-sync traffic; the convnet-benchmarks timing protocol
// (SkipWeightUpdate) drops the sync together with the update it feeds, so
// no all-reduce transfer ever dangles past the iteration boundary.
func TestAllReduceFollowsWeightUpdate(t *testing.T) {
	r, err := Run(alexNet, multiCfg(VDNNAll, MemOptimal, 2, pcie.Dedicated()))
	if err != nil {
		t.Fatal(err)
	}
	if r.AllReduceBytes == 0 {
		t.Fatal("no all-reduce traffic in a 2-device run")
	}
	c := multiCfg(VDNNAll, MemOptimal, 2, pcie.SharedGen3Root())
	c.SkipWeightUpdate = true
	skipped, err := Run(alexNet, c)
	if err != nil {
		t.Fatal(err)
	}
	if skipped.AllReduceBytes != 0 || skipped.AllReduceTime != 0 {
		t.Fatalf("SkipWeightUpdate left all-reduce traffic: %d bytes over %v",
			skipped.AllReduceBytes, skipped.AllReduceTime)
	}
}

// TestMultiGPUScheduleCapture: captured schedules carry every replica as its
// own device track.
func TestMultiGPUScheduleCapture(t *testing.T) {
	c := multiCfg(VDNNAll, MemOptimal, 2, pcie.SharedGen3Root())
	c.CaptureSchedule = true
	r, err := Run(alexNet, c)
	if err != nil {
		t.Fatal(err)
	}
	devs := map[int]bool{}
	ar := 0
	for _, op := range r.Schedule {
		devs[op.Device] = true
		if op.Kind == "copyP2P" {
			ar++
		}
	}
	if !devs[0] || !devs[1] || len(devs) != 2 {
		t.Fatalf("schedule devices = %v, want {0, 1}", devs)
	}
	if ar == 0 {
		t.Error("no all-reduce ops in the captured schedule")
	}
	for i := 1; i < len(r.Schedule); i++ {
		if r.Schedule[i].Start < r.Schedule[i-1].Start {
			t.Fatal("schedule not sorted by start time")
		}
	}
}

// TestMultiGPUUntrainableReportsDemand: an oversubscribed multi-device
// configuration falls back to the oracular rerun like single-device runs.
func TestMultiGPUUntrainableReportsDemand(t *testing.T) {
	c := multiCfg(Baseline, PerfOptimal, 2, pcie.SharedGen3Root())
	r, err := Run(networks.VGG16(256), c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trainable {
		t.Fatal("baseline VGG-16 (256) trained on 12 GB")
	}
	if r.MaxUsage == 0 {
		t.Fatal("no hypothetical demand reported")
	}
}

// TestMultiGPUDeterminism: two identical multi-device simulations are
// op-for-op identical.
func TestMultiGPUDeterminism(t *testing.T) {
	c := multiCfg(VDNNAll, MemOptimal, 3, pcie.SharedGen3Root())
	c.CaptureSchedule = true
	a, err := Run(alexNet, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(alexNet, c)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterTime != b.IterTime || len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d ops", a.IterTime, len(a.Schedule), b.IterTime, len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedules diverge at op %d: %+v vs %+v", i, a.Schedule[i], b.Schedule[i])
		}
	}
}

// TestDeviceLimit: the replica count is bounded.
func TestDeviceLimit(t *testing.T) {
	if _, err := Run(alexNet, multiCfg(VDNNAll, MemOptimal, maxDevices+1, pcie.Topology{})); err == nil {
		t.Fatal("absurd device count accepted")
	}
}

package core

import (
	"math"
	"testing"

	"vdnn/internal/compress"
	"vdnn/internal/gpu"
	"vdnn/internal/pcie"
	"vdnn/internal/sim"
)

// energyTol is the relative tolerance of the conservation invariant. The
// breakdown is accumulated by the same sweep that integrates average power,
// so the two only diverge by float re-association — orders of magnitude
// tighter than this bound.
const energyTol = 1e-9

// checkConserved asserts the per-op joule breakdown sums to the power
// timeline integral over the measurement window: TotalJ == AvgW × window.
func checkConserved(t *testing.T, label string, e gpu.EnergyStats, avgW float64, window sim.Time) {
	t.Helper()
	want := avgW * float64(window) / float64(sim.Second)
	got := e.TotalJ()
	if want <= 0 {
		t.Fatalf("%s: degenerate window (avg %.3f W over %v)", label, avgW, window)
	}
	if rel := math.Abs(got-want) / want; rel > energyTol {
		t.Errorf("%s: energy breakdown %.9f J != power integral %.9f J (rel err %.3g)",
			label, got, want, rel)
	}
	for _, b := range []struct {
		name string
		j    float64
	}{{"compute", e.ComputeJ}, {"dma", e.DMAJ}, {"codec", e.CodecJ}, {"idle", e.IdleJ}} {
		if b.j < 0 || math.IsNaN(b.j) {
			t.Errorf("%s: %s bucket = %v J", label, b.name, b.j)
		}
	}
}

// TestEnergyConservationSingle checks the invariant on the single-device
// trainer for every offload policy, with and without a compression codec.
func TestEnergyConservationSingle(t *testing.T) {
	zvc := compress.Config{Codec: compress.CodecZVC}
	cases := []struct {
		label string
		cfg   Config
	}{
		{"baseline", cfg(Baseline, PerfOptimal)},
		{"all-m", cfg(VDNNAll, MemOptimal)},
		{"conv-p", cfg(VDNNConv, PerfOptimal)},
		{"dyn", cfg(VDNNDyn, PerfOptimal)},
		{"all-m-zvc", Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Compression: zvc}},
		{"dyn-zvc", Config{Spec: titan(), Policy: VDNNDyn, Compression: zvc}},
	}
	for _, c := range cases {
		r := run(t, vgg64, c.cfg)
		checkConserved(t, c.label, r.Energy, r.Power.AvgW, r.IterTime)
		if r.Energy.ComputeJ <= 0 || r.Energy.IdleJ <= 0 {
			t.Errorf("%s: compute %.3f J, idle %.3f J — both should be positive",
				c.label, r.Energy.ComputeJ, r.Energy.IdleJ)
		}
		// dyn may settle on the no-offload baseline when the net fits, so
		// gate the traffic buckets on traffic actually moving.
		if r.OffloadBytes > 0 && r.Energy.DMAJ <= 0 {
			t.Errorf("%s: offloaded %d bytes but spent no DMA energy", c.label, r.OffloadBytes)
		}
		if c.cfg.Compression.Enabled() && r.OffloadBytes > 0 && r.Energy.CodecJ <= 0 {
			t.Errorf("%s: active codec spent no codec energy", c.label)
		}
		if !c.cfg.Compression.Enabled() && r.Energy.CodecJ != 0 {
			t.Errorf("%s: codec-free run charged %.3f J to codec", c.label, r.Energy.CodecJ)
		}
	}
}

// TestEnergyConservationDataParallel checks the invariant per replica and
// that the Result-level energy is the whole-fleet sum (unlike Power, which
// keeps replica 0's view).
func TestEnergyConservationDataParallel(t *testing.T) {
	r := run(t, alexNet, Config{Spec: titan(), Policy: VDNNConv, Algo: PerfOptimal,
		Compression: compress.Config{Codec: compress.CodecZVC},
		Devices:     4, Topology: pcie.SharedGen3Root()})
	if len(r.Devices) != 4 {
		t.Fatalf("device rows = %d", len(r.Devices))
	}
	var sum gpu.EnergyStats
	for _, d := range r.Devices {
		checkConserved(t, "replica", d.Energy, d.Power.AvgW, r.IterTime)
		sum = sum.Add(d.Energy)
	}
	if sum != r.Energy {
		t.Errorf("Result.Energy %+v != sum of replicas %+v", r.Energy, sum)
	}
	// The fleet burns strictly more than any one replica.
	if r.Energy.TotalJ() <= r.Devices[0].Energy.TotalJ() {
		t.Errorf("fleet energy %.3f J <= one replica's %.3f J",
			r.Energy.TotalJ(), r.Devices[0].Energy.TotalJ())
	}
}

// TestEnergyConservationPipeline checks the invariant per stage device and
// the whole-pipeline sum.
func TestEnergyConservationPipeline(t *testing.T) {
	r := run(t, vgg64, Config{Spec: titan(), Policy: VDNNConv, Algo: PerfOptimal,
		Compression: compress.Config{Codec: compress.CodecZVC},
		Stages:      2, Topology: pcie.SharedGen3Root()})
	if len(r.Devices) != 2 {
		t.Fatalf("device rows = %d", len(r.Devices))
	}
	var sum gpu.EnergyStats
	for _, d := range r.Devices {
		checkConserved(t, "stage", d.Energy, d.Power.AvgW, r.IterTime)
		sum = sum.Add(d.Energy)
	}
	if sum != r.Energy {
		t.Errorf("Result.Energy %+v != sum of stages %+v", r.Energy, sum)
	}
}

// TestEnergyBackends checks the catalog's new backends express the points
// they were added for: the near-memory accelerator's offload traffic is
// nearly free (on-die fabric), so its DMA energy share collapses relative
// to a PCIe-attached part running the identical schedule policy.
func TestEnergyBackends(t *testing.T) {
	titanRes := run(t, vgg64, Config{Spec: gpu.TitanX(), Policy: VDNNAll, Algo: MemOptimal})
	rapid := run(t, vgg64, Config{Spec: gpu.RapidNN(), Policy: VDNNAll, Algo: MemOptimal})
	checkConserved(t, "titanx", titanRes.Energy, titanRes.Power.AvgW, titanRes.IterTime)
	checkConserved(t, "rapidnn", rapid.Energy, rapid.Power.AvgW, rapid.IterTime)
	titanShare := titanRes.Energy.DMAJ / titanRes.Energy.TotalJ()
	rapidShare := rapid.Energy.DMAJ / rapid.Energy.TotalJ()
	if rapidShare >= titanShare {
		t.Errorf("near-memory DMA energy share %.4f should undercut PCIe share %.4f",
			rapidShare, titanShare)
	}
	p100 := run(t, vgg64, Config{Spec: gpu.PascalP100(), Policy: VDNNAll, Algo: MemOptimal})
	checkConserved(t, "p100", p100.Energy, p100.Power.AvgW, p100.IterTime)
	if p100.IterTime >= titanRes.IterTime {
		t.Errorf("P100 (HBM + NVLink) step %.1f ms should beat Titan X %.1f ms",
			p100.IterTime.Msec(), titanRes.IterTime.Msec())
	}
}

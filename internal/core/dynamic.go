package core

import (
	"fmt"
	"sync"

	"vdnn/internal/dnn"
)

// dynamicPolicy implements the paper's dynamic vDNN policy (Section III-C) as
// a Profiler: a sequence of profiling passes over the same network, each a
// full simulated training iteration, that settles on the offload policy and
// convolution algorithms balancing trainability and performance:
//
//  1. vDNN-all with memory-optimal algorithms. If even this most
//     memory-frugal configuration cannot train the network, nothing can.
//  2. The baseline with performance-optimal algorithms and no offloading —
//     the fastest possible configuration; adopted if it fits. Otherwise
//     vDNN-conv(p), then vDNN-all(p).
//  3. A greedy pass that locally downgrades each layer's algorithm whenever
//     the fastest one would overflow the memory budget: vDNN-conv(greedy),
//     then vDNN-all(greedy).
//  4. Fall back to the known-good vDNN-all(m).
//
// Each phase's candidates are independent simulations, so they are profiled
// concurrently; the paper's preference order is preserved by selecting the
// first trainable candidate in phase order, which keeps the outcome
// byte-identical to a sequential cascade. The concurrency is speculative:
// when an early candidate trains, the later candidates of the same phase
// were simulated anyway (bounded waste — at most two extra passes per
// phase), trading profiling work for latency. It is internal to the
// profiler and independent of any sweep-level worker budget.
//
// The profiling cost itself (tens of seconds against days-to-weeks of
// training, per the paper) is not charged to the reported iteration time.
type dynamicPolicy struct{}

func (dynamicPolicy) Name() string { return VDNNDyn.String() }

// The static hooks describe the policy's trainability floor — vDNN-all with
// memory-optimal algorithms — which is what the policy degenerates to when
// its Profile pass is bypassed. Profile overrides them by simulating
// candidate configurations directly.
func (dynamicPolicy) OffloadInput(net *dnn.Network, t *dnn.Tensor, c *dnn.Layer) bool {
	return allPolicy{}.OffloadInput(net, t, c)
}
func (dynamicPolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, _ AlgoMode) AlgoMode {
	return MemOptimal
}
func (dynamicPolicy) PrefetchSchedule(_ *dnn.Network, requested PrefetchMode) PrefetchMode {
	return requested
}

// Profile runs the profiling cascade.
func (dynamicPolicy) Profile(net *dnn.Network, cfg Config, simulate Simulate) (*Result, error) {
	type candidate struct {
		policy Policy
		algo   AlgoMode
		label  string
	}
	try := func(c candidate) (*Result, error) {
		sub := cfg
		sub.Custom = nil
		sub.Policy = c.policy
		sub.Algo = c.algo
		res, err := simulate(sub)
		if err != nil || res == nil { // invalid, or untrainable under this candidate
			return nil, err
		}
		res.Policy = VDNNDyn
		res.PolicyName = VDNNDyn.String()
		res.Chosen = c.label
		return res, nil
	}
	// tryAll profiles one phase's candidates concurrently and returns the
	// first trainable result in preference order (nil if none trains).
	tryAll := func(cands []candidate) (*Result, error) {
		results := make([]*Result, len(cands))
		errs := make([]error, len(cands))
		var wg sync.WaitGroup
		wg.Add(len(cands))
		for i, c := range cands {
			go func(i int, c candidate) {
				defer wg.Done()
				results[i], errs[i] = try(c)
			}(i, c)
		}
		wg.Wait()
		for i := range cands {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if results[i] != nil {
				return results[i], nil
			}
		}
		return nil, nil
	}

	// Phase 1: trainability floor.
	floor, err := try(candidate{VDNNAll, MemOptimal, "vDNN-all (m)"})
	if err != nil {
		return nil, err
	}
	if floor == nil {
		// Untrainable outright: report the hypothetical demand of the floor
		// configuration on an oracular device.
		sub := cfg
		sub.Custom = nil
		sub.Policy = VDNNAll
		sub.Algo = MemOptimal
		sub.Oracle = true
		res, err := simulate(sub)
		if err != nil {
			return nil, err
		}
		if res == nil {
			return nil, fmt.Errorf("core: dynamic oracle fallback failed")
		}
		res.Policy = VDNNDyn
		res.PolicyName = VDNNDyn.String()
		res.Oracle = cfg.Oracle
		res.Trainable = false
		res.FailReason = "even vDNN-all with memory-optimal algorithms oversubscribes memory"
		return res, nil
	}

	// Phase 2: fastest configurations, no algorithm downgrades.
	res, err := tryAll([]candidate{
		{Baseline, PerfOptimal, "baseline (p), no offload"},
		{VDNNConv, PerfOptimal, "vDNN-conv (p)"},
		{VDNNAll, PerfOptimal, "vDNN-all (p)"},
	})
	if err != nil {
		return nil, err
	}
	if res != nil {
		return res, nil
	}

	// Phase 3: greedy per-layer algorithm downgrades.
	res, err = tryAll([]candidate{
		{VDNNConv, GreedyAlgo, "vDNN-conv (greedy)"},
		{VDNNAll, GreedyAlgo, "vDNN-all (greedy)"},
	})
	if err != nil {
		return nil, err
	}
	if res != nil {
		return res, nil
	}

	// Phase 4: the floor configuration always works (proven in phase 1).
	floor.Chosen = "vDNN-all (m), fallback"
	return floor, nil
}

package core

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/hostmem"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
	"vdnn/internal/tensor"
)

// oraclePool is the pool size of the hypothetical GPU with enough memory to
// hold any studied DNN (the paper's oracular baseline).
const oraclePool = int64(1) << 40

// bufState tracks one feature-map buffer through an iteration.
type bufState struct {
	block     *memalloc.Block // device residence (nil when released/offloaded)
	pinned    *hostmem.Region // pinned host staging area, reused across iterations
	lastWrite *sim.Op         // op producing the current contents
	offloaded bool            // device copy released; host copy valid
	persist   bool            // allocated network-wide (baseline / classifier)

	gradBlock   *memalloc.Block // gradient buffer (aliasing roots only)
	gradPersist bool            // baseline shared slot: never freed
	gradWritten bool            // some consumer's backward already wrote it
}

// layerState carries the per-layer flags of the paper's Figure 10.
type layerState struct {
	offloaded  bool // set when the layer offloads its input feature map(s)
	prefetched bool // set when some later backward pass prefetched them
}

type executor struct {
	cfg  Config
	net  *dnn.Network
	plan *Plan

	dev  *gpu.Device
	pool *memalloc.Pool // the vDNN/cnmem pool: feature-extraction memory
	fw   *memalloc.Pool // framework-side (classifier) memory, outside vDNN
	host *hostmem.Host

	gradInfos map[*dnn.Tensor]*dnn.GradInfo
	freeAtBwd [][]*dnn.Tensor // buffers released after each layer's backward

	buf map[*dnn.Tensor]*bufState
	lay []*layerState

	// Weight-offloading extension (Config.OffloadWeights): per-layer weight
	// buffer state and the JIT prefetch schedule for weights.
	wState      map[*dnn.Layer]*bufState
	wPrefetchAt [][]*dnn.Layer

	sharedWS *memalloc.Block // baseline: single reused workspace

	iter      int // current iteration (0-based)
	stats     []LayerStats
	fwdStarts []sim.Time // first fwd kernel start per layer
	onDemand  int
	chosenAlg []LayerAlgos // algorithms actually used (greedy fills these)
}

// execute simulates cfg.Iterations training iterations and returns metrics
// for the last one. An allocation failure anywhere aborts with an error
// (the configuration is untrainable).
//
// Memory accounting follows the paper's prototype (Section IV-A): the
// classification layers "remain unchanged and use the same cuBLAS routines
// used in Torch", so their weights, activations, gradients and dropout masks
// live in framework-side memory outside the vDNN pool. The vDNN pool is
// sized to the GPU's remaining capacity and holds everything the memory
// manager controls: feature-extraction maps, gradient maps, FE weights, and
// convolution workspaces. Figure 11's usage numbers are pool numbers.
func execute(net *dnn.Network, cfg Config, plan *Plan) (*Result, error) {
	e := &executor{
		cfg:       cfg,
		net:       net,
		plan:      plan,
		dev:       gpu.NewDevice(cfg.Spec),
		fw:        memalloc.New(oraclePool),
		host:      hostmem.New(cfg.HostBytes),
		gradInfos: dnn.GradientInfos(net),
		freeAtBwd: make([][]*dnn.Tensor, len(net.Layers)),
		buf:       make(map[*dnn.Tensor]*bufState, len(net.Tensors)),
		lay:       make([]*layerState, len(net.Layers)),
		chosenAlg: make([]LayerAlgos, len(net.Layers)),
	}
	e.dev.UsePageMigration = cfg.PageMigration
	for _, t := range net.Tensors {
		e.buf[t] = &bufState{}
	}
	for i := range e.lay {
		e.lay[i] = &layerState{}
	}
	copy(e.chosenAlg, plan.Algos)
	for t, l := range dnn.LastBwdReaders(net) {
		e.freeAtBwd[l.ID] = append(e.freeAtBwd[l.ID], t)
	}
	e.wState = map[*dnn.Layer]*bufState{}
	e.wPrefetchAt = make([][]*dnn.Layer, len(net.Layers))
	if e.offloadsWeights() {
		for _, l := range net.FeatureLayers() {
			if l.WeightBytes(net.DType) == 0 {
				continue
			}
			// JIT: the weights' only backward reader is the layer itself, so
			// the prefetch overlaps the backward pass one step above it.
			at := l.ID + 1
			if at >= len(net.Layers) {
				at = len(net.Layers) - 1
			}
			e.wPrefetchAt[at] = append(e.wPrefetchAt[at], l)
		}
	}

	if err := e.setupFramework(); err != nil {
		return nil, err
	}
	capacity := cfg.Spec.PoolBytes() - e.fw.Used()
	if cfg.Oracle {
		capacity = oraclePool
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: classifier memory %d alone exceeds device capacity", e.fw.Used())
	}
	e.pool = memalloc.New(capacity)
	if err := e.setup(); err != nil {
		return nil, err
	}

	var winStart sim.Time
	for e.iter = 0; e.iter < cfg.Iterations; e.iter++ {
		e.resetIteration()
		winStart = e.now()
		if err := e.runIteration(); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", e.iter, err)
		}
	}
	winEnd := e.now()
	if err := e.dev.TL.Validate(); err != nil {
		return nil, fmt.Errorf("core: schedule invariant broken: %w", err)
	}
	return e.assemble(winStart, winEnd), nil
}

func (e *executor) now() sim.Time { return e.dev.TL.Now() }

// alloc wraps pool allocation with layer context in errors.
func (e *executor) alloc(size int64, kind memalloc.Kind, label string) (*memalloc.Block, error) {
	b, err := e.pool.Alloc(e.now(), size, kind, label)
	if err != nil {
		return nil, &AllocFailure{Label: label, Err: err, FreeSpans: e.pool.FreeSpans()}
	}
	return b, nil
}

// isClassifierRoot reports whether a buffer belongs to the unmanaged
// classifier stage.
func isClassifierRoot(t *dnn.Tensor) bool {
	return t.Producer != nil && t.Producer.Stage == dnn.Classifier
}

// setupFramework allocates the classifier-side memory that lives outside
// the vDNN pool in both managers: FC weights and their gradients, dropout
// masks, classifier activations, and classifier gradient maps.
func (e *executor) setupFramework() error {
	d := e.net.DType
	allocFW := func(size int64, kind memalloc.Kind, label string) (*memalloc.Block, error) {
		b, err := e.fw.Alloc(0, size, kind, label)
		if err != nil {
			return nil, fmt.Errorf("framework memory: allocating %s: %w", label, err)
		}
		return b, nil
	}
	for _, l := range e.net.ClassifierLayers() {
		if w := l.WeightBytes(d); w > 0 {
			if _, err := allocFW(w, memalloc.KindWeights, l.Name+".W"); err != nil {
				return err
			}
			if _, err := allocFW(w, memalloc.KindWeightGrad, l.Name+".dW"); err != nil {
				return err
			}
		}
		if m := l.MaskBytes(d); m > 0 {
			if _, err := allocFW(m, memalloc.KindOther, l.Name+".mask"); err != nil {
				return err
			}
		}
	}
	for _, t := range e.net.Tensors {
		if !isClassifierRoot(t) {
			continue
		}
		b, err := allocFW(t.Bytes(d), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
		if err != nil {
			return err
		}
		st := e.buf[t]
		st.block = b
		st.persist = true
	}
	for root, gi := range e.gradInfos {
		if !isClassifierRoot(root) {
			continue
		}
		b, err := allocFW(gi.Bytes, memalloc.KindGradMap, fmt.Sprintf("grad%d", root.ID))
		if err != nil {
			return err
		}
		e.buf[root].gradBlock = b
		e.buf[root].gradPersist = true
	}
	return nil
}

// offloadsWeights reports whether the weight-offloading extension is active.
func (e *executor) offloadsWeights() bool {
	return e.cfg.OffloadWeights && !e.plan.Baseline
}

// setup performs the pool-side persistent allocations: feature-extraction
// weights and weight gradients for both managers, plus — for the baseline —
// every feature map, the shared gradient slots, and the single maximum
// workspace (Section IV-A).
func (e *executor) setup() error {
	d := e.net.DType
	for _, l := range e.net.FeatureLayers() {
		if w := l.WeightBytes(d); w > 0 {
			wb, err := e.alloc(w, memalloc.KindWeights, l.Name+".W")
			if err != nil {
				return err
			}
			e.wState[l] = &bufState{block: wb, persist: !e.offloadsWeights()}
			if _, err := e.alloc(w, memalloc.KindWeightGrad, l.Name+".dW"); err != nil {
				return err
			}
		}
	}

	if !e.plan.Baseline {
		return nil
	}

	// Baseline: all feature maps are resident network-wide.
	for _, t := range e.net.Tensors {
		if isClassifierRoot(t) {
			continue // already in framework memory
		}
		b, err := e.alloc(t.Bytes(d), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
		if err != nil {
			return err
		}
		st := e.buf[t]
		st.block = b
		st.persist = true
	}

	// Shared gradient slots over the feature-extraction stage.
	gplan := dnn.PlanGradientSlotsWhere(e.net, func(gi *dnn.GradInfo) bool {
		return !isClassifierRoot(gi.Root)
	})
	if err := dnn.VerifyGradPlan(gplan); err != nil {
		return fmt.Errorf("core: gradient plan: %w", err)
	}
	slots := make([]*memalloc.Block, len(gplan.SlotBytes))
	for i, sz := range gplan.SlotBytes {
		b, err := e.alloc(sz, memalloc.KindGradMap, fmt.Sprintf("grad-slot%d", i))
		if err != nil {
			return err
		}
		slots[i] = b
	}
	for root, s := range gplan.SlotOf {
		e.buf[root].gradBlock = slots[s]
		e.buf[root].gradPersist = true
	}

	// Single workspace sized to the maximum need across the network.
	var maxWS int64
	for _, l := range e.net.ConvLayers() {
		g := l.ConvGeom(d)
		a := e.plan.Algos[l.ID]
		for _, wd := range []struct {
			algo cudnnsim.ConvAlgo
			dir  cudnnsim.Direction
		}{{a.Fwd, cudnnsim.Fwd}, {a.BwdData, cudnnsim.BwdData}, {a.BwdFilter, cudnnsim.BwdFilter}} {
			if ws := wd.algo.Workspace(g, wd.dir); ws > maxWS {
				maxWS = ws
			}
		}
	}
	if maxWS > 0 {
		b, err := e.alloc(maxWS, memalloc.KindWorkspace, "shared-ws")
		if err != nil {
			return err
		}
		e.sharedWS = b
	}
	return nil
}

func (e *executor) resetIteration() {
	e.stats = make([]LayerStats, len(e.net.Layers))
	e.fwdStarts = make([]sim.Time, len(e.net.Layers))
	for i, l := range e.net.Layers {
		st := &e.stats[i]
		st.Name = l.Name
		st.Kind = l.Kind
		st.Stage = l.Stage
		st.WeightBytes = l.WeightBytes(e.net.DType)
		st.XBytes = sumInputBytes(l, e.net.DType)
		st.YBytes = l.Output.Bytes(e.net.DType)
		e.lay[i].offloaded = false
		e.lay[i].prefetched = false
	}
	for _, st := range e.buf {
		st.gradWritten = false
		st.offloaded = false
	}
	e.onDemand = 0
}

func sumInputBytes(l *dnn.Layer, d tensor.DType) int64 {
	var b int64
	for _, in := range l.Inputs {
		b += in.Bytes(d)
	}
	return b
}

// runIteration performs one forward + backward (+ weight update) pass.
func (e *executor) runIteration() error {
	// The input batch arrives from the data loader. The baseline holds it
	// network-wide; vDNN allocates it per iteration.
	in := e.buf[e.net.Input]
	if in.block == nil {
		b, err := e.alloc(e.net.Input.Bytes(e.net.DType), memalloc.KindFeatureMap, "input")
		if err != nil {
			return err
		}
		in.block = b
	}
	in.offloaded = false
	in.lastWrite = nil

	for _, l := range e.net.Layers {
		if err := e.forwardLayer(l); err != nil {
			return fmt.Errorf("fwd %s: %w", l.Name, err)
		}
	}
	for i := len(e.net.Layers) - 1; i >= 0; i-- {
		if err := e.backwardLayer(e.net.Layers[i]); err != nil {
			return fmt.Errorf("bwd %s: %w", e.net.Layers[i].Name, err)
		}
	}
	if !e.cfg.SkipWeightUpdate {
		for _, l := range e.net.Layers {
			if w := l.WeightBytes(e.net.DType); w > 0 {
				c := cudnnsim.ElementwiseCost(e.cfg.Spec, w, 3)
				var dep *sim.Op
				if ws := e.wState[l]; ws != nil {
					if ws.block == nil {
						return fmt.Errorf("core: weights of %s not resident at update", l.Name)
					}
					dep = ws.lastWrite
				}
				op := e.dev.Kernel("sgd:"+l.Name, c.Dur, c.Flops, c.DRAMBytes, dep)
				if ws := e.wState[l]; ws != nil {
					ws.lastWrite = op
				}
			}
		}
	}
	e.dev.TL.WaitStream(e.dev.StreamCompute)
	e.dev.TL.WaitStream(e.dev.StreamMemory)
	e.pool.Flush(e.now())
	return e.checkIterationEnd()
}

// checkIterationEnd asserts the vDNN release discipline: every dynamically
// managed buffer and gradient must be back in the pool.
func (e *executor) checkIterationEnd() error {
	for t, st := range e.buf {
		if !st.persist && st.block != nil && t != e.net.Input {
			return fmt.Errorf("core: buffer fm%d leaked past iteration end", t.ID)
		}
		if st.gradBlock != nil && !st.gradPersist {
			return fmt.Errorf("core: gradient of fm%d leaked past iteration end", t.ID)
		}
	}
	for l, ws := range e.wState {
		if ws.block == nil {
			return fmt.Errorf("core: weights of %s not resident at iteration end", l.Name)
		}
	}
	return nil
}

// vdnnManaged reports whether the policy manages buffers dynamically.
func (e *executor) vdnnManaged() bool { return !e.plan.Baseline }

// pickAlgos resolves the algorithms for a CONV layer, honoring the greedy
// online mode: the fastest algorithm whose workspace fits in the largest
// free pool range right now (Section III-C, profiling phase 3).
func (e *executor) pickAlgos(l *dnn.Layer) LayerAlgos {
	if !e.plan.GreedyAt[l.ID] {
		return e.plan.Algos[l.ID]
	}
	g := l.ConvGeom(e.net.DType)
	limit := e.pool.LargestFree(e.now())
	a := LayerAlgos{
		Fwd:       cudnnsim.FastestAlgo(e.cfg.Spec, g, cudnnsim.Fwd, limit).Algo,
		BwdData:   cudnnsim.FastestAlgo(e.cfg.Spec, g, cudnnsim.BwdData, limit).Algo,
		BwdFilter: cudnnsim.FastestAlgo(e.cfg.Spec, g, cudnnsim.BwdFilter, limit).Algo,
	}
	e.chosenAlg[l.ID] = a
	return a
}

// ensurePinned lazily creates the pinned host staging buffer for an
// offloaded feature map. cudaMallocHost is expensive, so the cost is charged
// once (first iteration) and the region reused for the rest of training.
func (e *executor) ensurePinned(t *dnn.Tensor) error {
	st := e.buf[t]
	if st.pinned != nil {
		return nil
	}
	r, cost, err := e.host.AllocPinned(t.Bytes(e.net.DType), fmt.Sprintf("pin-fm%d", t.ID))
	if err != nil {
		return err
	}
	e.dev.TL.AdvanceHost(cost)
	st.pinned = r
	return nil
}

// forwardLayer issues one layer's forward pass, including vDNN's offload and
// end-of-layer synchronization/release (Figures 7 and 9).
func (e *executor) forwardLayer(l *dnn.Layer) error {
	st := &e.stats[l.ID]
	d := e.net.DType

	// 1. Launch offloads for buffers whose last consumer is this layer,
	// plus — under the weight-offloading extension — this layer's weights.
	var offOps []*sim.Op
	var offBufs []*dnn.Tensor
	var offW *bufState
	if e.vdnnManaged() {
		for _, t := range e.plan.OffloadAt[l.ID] {
			if err := e.ensurePinned(t); err != nil {
				return err
			}
			bs := e.buf[t]
			op := e.dev.Offload(fmt.Sprintf("OFF:%s(fm%d)", l.Name, t.ID), t.Bytes(d), bs.lastWrite)
			offOps = append(offOps, op)
			offBufs = append(offBufs, t)
			e.lay[l.ID].offloaded = true
			st.Offloaded = true
			st.OffloadBytes += t.Bytes(d)
		}
		if ws := e.wState[l]; ws != nil && e.offloadsWeights() && !ws.offloaded {
			if ws.pinned == nil {
				r, cost, err := e.host.AllocPinned(l.WeightBytes(d), l.Name+".W.pin")
				if err != nil {
					return err
				}
				e.dev.TL.AdvanceHost(cost)
				ws.pinned = r
			}
			// The weights were last written by the previous iteration's SGD
			// update; the transfer must order after it.
			op := e.dev.Offload("OFF:"+l.Name+".W", l.WeightBytes(d), ws.lastWrite)
			offOps = append(offOps, op)
			offW = ws
			st.Offloaded = true
			st.OffloadBytes += l.WeightBytes(d)
		}
	}

	// 2. Allocate the output buffer (dynamic policies only; the baseline and
	// classifier buffers are network-wide).
	out := e.buf[l.Output]
	if !l.InPlace && out.block == nil {
		b, err := e.alloc(l.Output.Bytes(d), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", l.Output.ID))
		if err != nil {
			return err
		}
		out.block = b
	}

	// 3. Workspace and kernel.
	var algos LayerAlgos
	var wsBytes int64
	var wsBlock *memalloc.Block
	if l.Kind == dnn.Conv {
		algos = e.pickAlgos(l)
		st.AlgoFwd = algos.Fwd
		g := l.ConvGeom(d)
		wsBytes = algos.Fwd.Workspace(g, cudnnsim.Fwd)
		if wsBytes > 0 && e.vdnnManaged() {
			b, err := e.alloc(wsBytes, memalloc.KindWorkspace, l.Name+".ws")
			if err != nil {
				return err
			}
			wsBlock = b
		}
		if e.sharedWS != nil && wsBytes > e.sharedWS.Size {
			return fmt.Errorf("core: workspace %d exceeds shared buffer %d", wsBytes, e.sharedWS.Size)
		}
	}
	st.FwdWSBytes = wsBytes

	cost := e.fwdCost(l, algos)
	deps := make([]*sim.Op, 0, len(l.Inputs))
	for _, t := range l.Inputs {
		if e.buf[t].block == nil {
			return fmt.Errorf("core: fwd input fm%d not resident", t.ID)
		}
		deps = append(deps, e.buf[t].lastWrite)
	}
	op := e.dev.Kernel("FWD:"+l.Name, cost.Dur, cost.Flops, cost.DRAMBytes, deps...)
	e.buf[l.Output].lastWrite = op
	e.recordFwd(l, st, cost, op, wsBytes)

	if wsBlock != nil {
		// Stream-ordered free: later allocations may reuse the workspace
		// because they serve kernels behind this one on stream_compute.
		e.pool.Free(wsBlock, e.now())
	}

	// 4. End-of-layer synchronization when an offload is in flight, then
	// release the offloaded device copies (Section III-B).
	if len(offOps) > 0 {
		e.dev.TL.Wait(op)
		for _, o := range offOps {
			e.dev.TL.Wait(o)
		}
		for _, t := range offBufs {
			bs := e.buf[t]
			e.pool.Free(bs.block, e.now())
			bs.block = nil
			bs.offloaded = true
		}
		if offW != nil {
			e.pool.Free(offW.block, e.now())
			offW.block = nil
			offW.offloaded = true
		}
	}
	return nil
}

// recordFwd updates the per-layer stats from a forward kernel.
func (e *executor) recordFwd(l *dnn.Layer, st *LayerStats, c cudnnsim.Cost, op *sim.Op, wsBytes int64) {
	st.FwdTime += c.Dur
	if st.FwdEnd < op.End {
		st.FwdEnd = op.End
	}
	if e.fwdStarts[l.ID] == 0 || op.Start < e.fwdStarts[l.ID] {
		e.fwdStarts[l.ID] = op.Start
	}
	if c.Dur > 0 {
		if bw := float64(c.DRAMBytes) / c.Dur.Seconds(); bw > st.FwdBW {
			st.FwdBW = bw
		}
	}
	ws := st.XBytes + st.WeightBytes + wsBytes + l.MaskBytes(e.net.DType)
	if !l.InPlace {
		ws += st.YBytes
	}
	if ws > st.FwdWorkingSet {
		st.FwdWorkingSet = ws
	}
}

// fwdCost computes the forward kernel cost of a layer.
func (e *executor) fwdCost(l *dnn.Layer, algos LayerAlgos) cudnnsim.Cost {
	spec := e.cfg.Spec
	d := e.net.DType
	switch l.Kind {
	case dnn.Conv:
		return cudnnsim.ConvCost(spec, l.ConvGeom(d), algos.Fwd, cudnnsim.Fwd)
	case dnn.ReLU:
		return cudnnsim.ActivationFwdCost(spec, l.In().Bytes(d))
	case dnn.Pool:
		return cudnnsim.PoolFwdCost(spec, l.In().Bytes(d), l.Output.Bytes(d))
	case dnn.LRN:
		return cudnnsim.LRNFwdCost(spec, l.In().Bytes(d))
	case dnn.Concat:
		return cudnnsim.ConcatCost(spec, l.Output.Bytes(d))
	case dnn.Add:
		// Read every branch, write the sum.
		return cudnnsim.ElementwiseCost(spec, l.Output.Bytes(d), len(l.Inputs)+1)
	case dnn.BatchNorm:
		// Two passes for the statistics, one normalize-and-write pass.
		return cudnnsim.ElementwiseCost(spec, l.In().Bytes(d), 3)
	case dnn.FC:
		in := l.In().Shape
		return cudnnsim.GEMMCost(spec, int64(l.FC.OutFeatures), in.PerSample(), int64(in.N), d.Size())
	case dnn.Dropout:
		return cudnnsim.DropoutFwdCost(spec, l.In().Bytes(d), l.MaskBytes(d))
	case dnn.SoftmaxLoss:
		return cudnnsim.SoftmaxCost(spec, l.In().Bytes(d))
	}
	panic("core: unknown layer kind")
}

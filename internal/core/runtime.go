package core

import (
	"context"
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/hostmem"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
	"vdnn/internal/tensor"
)

// oraclePool is the pool size of the hypothetical GPU with enough memory to
// hold any studied DNN (the paper's oracular baseline).
const oraclePool = int64(1) << 40

// bufState tracks one feature-map buffer through an iteration.
type bufState struct {
	block     *memalloc.Block // device residence (nil when released/offloaded)
	pinned    *hostmem.Region // pinned host staging area, reused across iterations
	lastWrite *sim.Op         // op producing the current contents
	offloaded bool            // device copy released; host copy valid
	persist   bool            // allocated network-wide (baseline / classifier)

	gradBlock   *memalloc.Block // gradient buffer (aliasing roots only)
	gradPersist bool            // baseline shared slot: never freed
	gradWritten bool            // some consumer's backward already wrote it
}

// layerState carries the per-layer flags of the paper's Figure 10.
type layerState struct {
	offloaded  bool // set when the layer offloads its input feature map(s)
	prefetched bool // set when some later backward pass prefetched them
}

// runtime is the per-device execution context of one training replica: the
// device with its engines and streams, the vDNN memory pool, the
// framework-side (classifier) memory, host staging, per-buffer and per-layer
// state, and the statistics of the measured iteration. A single-device
// simulation runs one runtime on its own timeline; the data-parallel trainer
// (trainer.go) drives N runtimes in lockstep on one shared timeline, their
// DMA traffic arbitrated over the topology's shared channels.
//
// The per-layer work is split into issue/finish pairs (issueForward /
// finishForward, issueBackward / finishBackward): issue launches the layer's
// transfers and kernels asynchronously, finish performs the end-of-layer
// synchronization and releases. The single-device driver calls them
// back-to-back — exactly the sequence the paper's Figure 9 host loop
// executes — while the multi-device driver issues a layer on every replica
// before synchronizing any of them, modeling a driver thread that launches
// work across all GPUs and then waits.
type runtime struct {
	cfg  Config
	net  *dnn.Network
	plan *Plan

	// ctx, when non-nil, is the cancellation signal of the enclosing
	// RunContext call: the drivers probe it (checkCtx) at layer and
	// micro-batch boundaries so a canceled request stops simulating within
	// one boundary's worth of work. Set by the execute* drivers, never by
	// newRuntime — construction is quick and always runs to completion.
	ctx context.Context

	// lo/hi bound the layer IDs this runtime owns: [0, len(Layers)) for a
	// whole-network replica, a contiguous stage range under pipeline
	// parallelism. Setup, execution and the release discipline only touch
	// owned layers and the tensors they produce (plus boundary tensors
	// received from the previous stage).
	lo, hi int

	// Micro-batch context (pipeline parallelism). mbCount is the number of
	// micro-batches one iteration is split into (1 otherwise); mbIndex is
	// the micro-batch currently being issued. buf and lay alias
	// mbBufs[mbIndex]/mbLay[mbIndex], so the per-layer issue/finish code is
	// oblivious to micro-batching: each micro-batch carries its own buffer
	// and offload/prefetch flags, while persistent state (weights, baseline
	// feature maps, classifier memory, the input batch) is shared.
	mbCount int
	mbIndex int
	mbBufs  []map[*dnn.Tensor]*bufState
	mbLay   [][]*layerState

	// bwdExtraDep, when set, is added to every backward kernel issued — the
	// pipeline driver points it at the inter-stage gradient receive so a
	// stage's backward cannot start before its output gradient lands. Nil
	// outside pipeline runs.
	bwdExtraDep *sim.Op

	// Inter-stage wire traffic counters (pipeline parallelism): bytes this
	// stage sent to its successor and received from its neighbors, wire and
	// pre-codec.
	ppSendBytes, ppRecvBytes int64
	ppSendRaw, ppRecvRaw     int64

	dev  *gpu.Device
	pool *memalloc.Pool // the vDNN/cnmem pool: feature-extraction memory
	fw   *memalloc.Pool // framework-side (classifier) memory, outside vDNN
	host *hostmem.Host

	// arSend/arRecv carry the gradient all-reduce of the data-parallel
	// trainer; unused (and empty) in single-device runs.
	arSend *sim.Stream
	arRecv *sim.Stream

	gradInfos map[*dnn.Tensor]*dnn.GradInfo
	freeAtBwd [][]*dnn.Tensor // buffers released after each layer's backward

	buf map[*dnn.Tensor]*bufState
	lay []*layerState

	// Weight-offloading extension (Config.OffloadWeights): per-layer weight
	// buffer state and the JIT prefetch schedule for weights.
	wState      map[*dnn.Layer]*bufState
	wPrefetchAt [][]*dnn.Layer

	sharedWS *memalloc.Block // baseline: single reused workspace

	iter      int // current iteration (0-based)
	stats     []LayerStats
	fwdStarts []sim.Time // first fwd kernel start per layer
	onDemand  int
	chosenAlg []LayerAlgos // algorithms actually used (greedy fills these)

	// Codec accounting for the measured iteration: the pre-codec (logical)
	// bytes behind the offload/prefetch wire traffic, and the codec busy
	// time on the DMA engines. Raw equals wire when nothing compresses.
	offRawBytes    int64
	preRawBytes    int64
	compressTime   sim.Time
	decompressTime sim.Time
}

// newRuntime builds the execution context of one replica on the given
// device, performing the persistent allocations (framework memory, pool
// setup). An allocation failure means the configuration is untrainable.
//
// Memory accounting follows the paper's prototype (Section IV-A): the
// classification layers "remain unchanged and use the same cuBLAS routines
// used in Torch", so their weights, activations, gradients and dropout masks
// live in framework-side memory outside the vDNN pool. The vDNN pool is
// sized to the GPU's remaining capacity and holds everything the memory
// manager controls: feature-extraction maps, gradient maps, FE weights, and
// convolution workspaces. Figure 11's usage numbers are pool numbers.
func newRuntime(net *dnn.Network, cfg Config, plan *Plan, dev *gpu.Device) (*runtime, error) {
	return newRuntimeRange(net, cfg, plan, dev, 0, len(net.Layers), 1, nil)
}

// newRuntimeRange builds the execution context of one pipeline stage owning
// layers [lo, hi), split into mbCount micro-batches. The full range with one
// micro-batch is exactly newRuntime. A non-nil tr attaches an allocator
// trace recorder to the vDNN pool (differential evaluation; structure.go).
func newRuntimeRange(net *dnn.Network, cfg Config, plan *Plan, dev *gpu.Device, lo, hi, mbCount int, tr *memalloc.Trace) (*runtime, error) {
	e := &runtime{
		cfg:       cfg,
		net:       net,
		plan:      plan,
		lo:        lo,
		hi:        hi,
		mbCount:   mbCount,
		dev:       dev,
		fw:        memalloc.New(oraclePool),
		host:      hostmem.New(cfg.HostBytes),
		arSend:    dev.TL.NewStream("stream_ar_send"),
		arRecv:    dev.TL.NewStream("stream_ar_recv"),
		gradInfos: dnn.GradientInfos(net),
		freeAtBwd: make([][]*dnn.Tensor, len(net.Layers)),
		buf:       make(map[*dnn.Tensor]*bufState, len(net.Tensors)),
		lay:       make([]*layerState, len(net.Layers)),
		chosenAlg: make([]LayerAlgos, len(net.Layers)),
	}
	// One arena allocation backs all per-tensor and per-layer state, instead
	// of an allocator round-trip per tensor — these dominate the allocation
	// profile of a sweep (one runtime per sweep point).
	bufArena := make([]bufState, len(net.Tensors))
	for i, t := range net.Tensors {
		e.buf[t] = &bufArena[i]
	}
	layArena := make([]layerState, len(e.lay))
	for i := range e.lay {
		e.lay[i] = &layArena[i]
	}
	copy(e.chosenAlg, plan.Algos)
	// Walk tensors in graph order, not map order: the release sequence feeds
	// the pool's pending-free heap, and the allocator call sequence must be
	// reproducible for the recorded trace to price other capacities exactly.
	lastBwd := e.lastBwdReaders()
	for _, t := range net.Tensors {
		if l, ok := lastBwd[t]; ok {
			e.freeAtBwd[l.ID] = append(e.freeAtBwd[l.ID], t)
		}
	}
	e.wState = map[*dnn.Layer]*bufState{}
	e.wPrefetchAt = make([][]*dnn.Layer, len(net.Layers))
	if e.offloadsWeights() {
		for _, l := range net.FeatureLayers() {
			if l.WeightBytes(net.DType) == 0 {
				continue
			}
			// JIT: the weights' only backward reader is the layer itself, so
			// the prefetch overlaps the backward pass one step above it.
			at := l.ID + 1
			if at >= len(net.Layers) {
				at = len(net.Layers) - 1
			}
			e.wPrefetchAt[at] = append(e.wPrefetchAt[at], l)
		}
	}

	if err := e.setupFramework(); err != nil {
		return nil, err
	}
	capacity := cfg.Spec.PoolBytes() - e.fw.Used()
	if cfg.Oracle {
		capacity = oraclePool
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: classifier memory %d alone exceeds device capacity", e.fw.Used())
	}
	if tr != nil {
		e.pool = memalloc.NewTraced(capacity, tr)
	} else {
		e.pool = memalloc.New(capacity)
	}
	if err := e.setup(); err != nil {
		return nil, err
	}

	// Per-micro-batch buffer and layer-flag views. Index 0 is the map the
	// persistent setup above populated; further micro-batches share the
	// persistent states (weights, baseline/classifier buffers, gradient
	// slots, the input batch) and get fresh states for everything the vDNN
	// runtime manages dynamically.
	e.mbBufs = make([]map[*dnn.Tensor]*bufState, e.mbCount)
	e.mbLay = make([][]*layerState, e.mbCount)
	e.mbBufs[0], e.mbLay[0] = e.buf, e.lay
	for mb := 1; mb < e.mbCount; mb++ {
		bufs := make(map[*dnn.Tensor]*bufState, len(net.Tensors))
		mbBufArena := make([]bufState, 0, len(net.Tensors))
		for t, st := range e.mbBufs[0] {
			if st.persist || st.gradPersist {
				bufs[t] = st
			} else {
				mbBufArena = append(mbBufArena, bufState{})
				bufs[t] = &mbBufArena[len(mbBufArena)-1]
			}
		}
		lay := make([]*layerState, len(net.Layers))
		mbLayArena := make([]layerState, len(lay))
		for i := range lay {
			lay[i] = &mbLayArena[i]
		}
		e.mbBufs[mb], e.mbLay[mb] = bufs, lay
	}
	return e, nil
}

// setMB switches the runtime's current micro-batch context.
func (e *runtime) setMB(mb int) {
	e.mbIndex = mb
	e.buf = e.mbBufs[mb]
	e.lay = e.mbLay[mb]
}

// owned reports whether the runtime owns layer ID id.
func (e *runtime) owned(id int) bool { return id >= e.lo && id < e.hi }

// ownsTensor reports whether the runtime owns tensor t's storage: tensors
// its layers produce, plus the network input for the first stage.
func (e *runtime) ownsTensor(t *dnn.Tensor) bool {
	if t.Producer == nil {
		return e.lo == 0
	}
	return e.owned(t.Producer.ID)
}

// lastBwdReaders maps every buffer this runtime touches to the owned layer
// whose backward pass is its final owned reader — the stage-local version of
// dnn.LastBwdReaders, identical to it over the full layer range. Boundary
// tensors received from a previous stage that no owned backward kernel reads
// fall back to their earliest owned consumer.
func (e *runtime) lastBwdReaders() map[*dnn.Tensor]*dnn.Layer {
	if e.lo == 0 && e.hi == len(e.net.Layers) {
		return dnn.LastBwdReaders(e.net)
	}
	m := make(map[*dnn.Tensor]*dnn.Layer, len(e.net.Tensors))
	for _, l := range e.net.Layers[e.lo:e.hi] {
		for _, t := range l.BwdReads() {
			if cur, ok := m[t]; !ok || l.ID < cur.ID {
				m[t] = l
			}
		}
	}
	for _, t := range e.net.Tensors {
		if _, ok := m[t]; ok {
			continue
		}
		if t.Producer != nil && e.owned(t.Producer.ID) {
			m[t] = t.Producer
			continue
		}
		// Boundary-in tensor: release after its earliest owned consumer's
		// backward (nothing below it in this stage can reference it).
		for _, c := range t.Consumer {
			if e.owned(c.ID) {
				m[t] = c
				break
			}
		}
	}
	return m
}

// mbShare returns this micro-batch's slice of an iteration-level quantity
// (bytes, duration, flops): the exact split n·(i+1)/M − n·i/M, which sums to
// n over all micro-batches and is the identity when mbCount is 1.
func (e *runtime) mbShare(n int64) int64 {
	if e.mbCount <= 1 {
		return n
	}
	m, i := int64(e.mbCount), int64(e.mbIndex)
	return n*(i+1)/m - n*i/m
}

// mbCost scales a full-batch kernel cost to the current micro-batch.
func (e *runtime) mbCost(c cudnnsim.Cost) cudnnsim.Cost {
	if e.mbCount <= 1 {
		return c
	}
	c.Dur = sim.Time(e.mbShare(int64(c.Dur)))
	c.Flops = e.mbShare(c.Flops)
	c.DRAMBytes = e.mbShare(c.DRAMBytes)
	return c
}

func (e *runtime) now() sim.Time { return e.dev.TL.Now() }

// alloc wraps pool allocation with layer context in errors.
func (e *runtime) alloc(size int64, kind memalloc.Kind, label string) (*memalloc.Block, error) {
	b, err := e.pool.Alloc(e.now(), size, kind, label)
	if err != nil {
		return nil, &AllocFailure{Label: label, Err: err, FreeSpans: e.pool.FreeSpans()}
	}
	return b, nil
}

// isClassifierRoot reports whether a buffer belongs to the unmanaged
// classifier stage.
func isClassifierRoot(t *dnn.Tensor) bool {
	return t.Producer != nil && t.Producer.Stage == dnn.Classifier
}

// setupFramework allocates the classifier-side memory that lives outside
// the vDNN pool in both managers: FC weights and their gradients, dropout
// masks, classifier activations, and classifier gradient maps.
func (e *runtime) setupFramework() error {
	d := e.net.DType
	allocFW := func(size int64, kind memalloc.Kind, label string) (*memalloc.Block, error) {
		b, err := e.fw.Alloc(0, size, kind, label)
		if err != nil {
			return nil, fmt.Errorf("framework memory: allocating %s: %w", label, err)
		}
		return b, nil
	}
	for _, l := range e.net.ClassifierLayers() {
		if !e.owned(l.ID) {
			continue
		}
		if w := l.WeightBytes(d); w > 0 {
			if _, err := allocFW(w, memalloc.KindWeights, l.Name+".W"); err != nil {
				return err
			}
			if _, err := allocFW(w, memalloc.KindWeightGrad, l.Name+".dW"); err != nil {
				return err
			}
		}
		if m := l.MaskBytes(d); m > 0 {
			if _, err := allocFW(m, memalloc.KindOther, l.Name+".mask"); err != nil {
				return err
			}
		}
	}
	for _, t := range e.net.Tensors {
		if !isClassifierRoot(t) || !e.ownsTensor(t) {
			continue
		}
		b, err := allocFW(t.Bytes(d), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
		if err != nil {
			return err
		}
		st := e.buf[t]
		st.block = b
		st.persist = true
	}
	for root, gi := range e.gradInfos {
		if !isClassifierRoot(root) || !e.ownsTensor(root) {
			continue
		}
		b, err := allocFW(gi.Bytes, memalloc.KindGradMap, fmt.Sprintf("grad%d", root.ID))
		if err != nil {
			return err
		}
		e.buf[root].gradBlock = b
		e.buf[root].gradPersist = true
	}
	return nil
}

// offloadsWeights reports whether the weight-offloading extension is active.
func (e *runtime) offloadsWeights() bool {
	return e.cfg.OffloadWeights && !e.plan.Baseline
}

// setup performs the pool-side persistent allocations: feature-extraction
// weights and weight gradients for both managers, plus — for the baseline —
// every feature map, the shared gradient slots, and the single maximum
// workspace (Section IV-A).
func (e *runtime) setup() error {
	d := e.net.DType
	for _, l := range e.net.FeatureLayers() {
		if !e.owned(l.ID) {
			continue
		}
		if w := l.WeightBytes(d); w > 0 {
			wb, err := e.alloc(w, memalloc.KindWeights, l.Name+".W")
			if err != nil {
				return err
			}
			e.wState[l] = &bufState{block: wb, persist: !e.offloadsWeights()}
			if _, err := e.alloc(w, memalloc.KindWeightGrad, l.Name+".dW"); err != nil {
				return err
			}
		}
	}

	if !e.plan.Baseline {
		return nil
	}

	// Baseline: all feature maps are resident network-wide.
	for _, t := range e.net.Tensors {
		if isClassifierRoot(t) || !e.ownsTensor(t) {
			continue // framework memory, or another stage's buffer
		}
		b, err := e.alloc(t.Bytes(d), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", t.ID))
		if err != nil {
			return err
		}
		st := e.buf[t]
		st.block = b
		st.persist = true
	}

	// Shared gradient slots over the feature-extraction stage.
	gplan := dnn.PlanGradientSlotsWhere(e.net, func(gi *dnn.GradInfo) bool {
		return !isClassifierRoot(gi.Root) && e.ownsTensor(gi.Root)
	})
	if err := dnn.VerifyGradPlan(gplan); err != nil {
		return fmt.Errorf("core: gradient plan: %w", err)
	}
	slots := make([]*memalloc.Block, len(gplan.SlotBytes))
	for i, sz := range gplan.SlotBytes {
		b, err := e.alloc(sz, memalloc.KindGradMap, fmt.Sprintf("grad-slot%d", i))
		if err != nil {
			return err
		}
		slots[i] = b
	}
	for root, s := range gplan.SlotOf {
		e.buf[root].gradBlock = slots[s]
		e.buf[root].gradPersist = true
	}

	// Single workspace sized to the maximum need across the network.
	var maxWS int64
	for _, l := range e.net.ConvLayers() {
		if !e.owned(l.ID) {
			continue
		}
		g := l.ConvGeom(d)
		a := e.plan.Algos[l.ID]
		for _, wd := range []struct {
			algo cudnnsim.ConvAlgo
			dir  cudnnsim.Direction
		}{{a.Fwd, cudnnsim.Fwd}, {a.BwdData, cudnnsim.BwdData}, {a.BwdFilter, cudnnsim.BwdFilter}} {
			if ws := wd.algo.Workspace(g, wd.dir); ws > maxWS {
				maxWS = ws
			}
		}
	}
	if maxWS > 0 {
		b, err := e.alloc(maxWS, memalloc.KindWorkspace, "shared-ws")
		if err != nil {
			return err
		}
		e.sharedWS = b
	}
	return nil
}

func (e *runtime) resetIteration() {
	// The stats and fwdStarts slices are reused across iterations (only the
	// last iteration's numbers reach the Result): the full-struct overwrite
	// below zeroes every per-iteration field a fresh allocation would have.
	if e.stats == nil {
		e.stats = make([]LayerStats, len(e.net.Layers))
		e.fwdStarts = make([]sim.Time, len(e.net.Layers))
	}
	clear(e.fwdStarts)
	for i, l := range e.net.Layers {
		e.stats[i] = LayerStats{
			Name:        l.Name,
			Kind:        l.Kind,
			Stage:       l.Stage,
			WeightBytes: l.WeightBytes(e.net.DType),
			XBytes:      sumInputBytes(l, e.net.DType),
			YBytes:      l.Output.Bytes(e.net.DType),
		}
	}
	for _, lay := range e.mbLay {
		for _, ls := range lay {
			ls.offloaded = false
			ls.prefetched = false
		}
	}
	for _, bufs := range e.mbBufs {
		for _, st := range bufs {
			st.gradWritten = false
			st.offloaded = false
		}
	}
	e.onDemand = 0
	e.offRawBytes, e.preRawBytes = 0, 0
	e.compressTime, e.decompressTime = 0, 0
	e.ppSendBytes, e.ppRecvBytes = 0, 0
	e.ppSendRaw, e.ppRecvRaw = 0, 0
}

func sumInputBytes(l *dnn.Layer, d tensor.DType) int64 {
	var b int64
	for _, in := range l.Inputs {
		b += in.Bytes(d)
	}
	return b
}

// checkIterationEnd asserts the vDNN release discipline: every dynamically
// managed buffer and gradient must be back in the pool.
func (e *runtime) checkIterationEnd() error {
	for _, bufs := range e.mbBufs {
		for t, st := range bufs {
			if !st.persist && st.block != nil && t != e.net.Input {
				return fmt.Errorf("core: buffer fm%d leaked past iteration end", t.ID)
			}
			if st.gradBlock != nil && !st.gradPersist {
				return fmt.Errorf("core: gradient of fm%d leaked past iteration end", t.ID)
			}
		}
	}
	for l, ws := range e.wState {
		if ws.block == nil {
			return fmt.Errorf("core: weights of %s not resident at iteration end", l.Name)
		}
	}
	return nil
}

// vdnnManaged reports whether the policy manages buffers dynamically.
func (e *runtime) vdnnManaged() bool { return !e.plan.Baseline }

// pickAlgos resolves the algorithms for a CONV layer, honoring the greedy
// online mode: the fastest algorithm whose workspace fits in the largest
// free pool range right now (Section III-C, profiling phase 3).
func (e *runtime) pickAlgos(l *dnn.Layer) LayerAlgos {
	if !e.plan.GreedyAt[l.ID] {
		return e.plan.Algos[l.ID]
	}
	g := l.ConvGeom(e.net.DType)
	limit := e.pool.LargestFree(e.now())
	a := LayerAlgos{
		Fwd:       cudnnsim.FastestAlgo(e.cfg.Spec, g, cudnnsim.Fwd, limit).Algo,
		BwdData:   cudnnsim.FastestAlgo(e.cfg.Spec, g, cudnnsim.BwdData, limit).Algo,
		BwdFilter: cudnnsim.FastestAlgo(e.cfg.Spec, g, cudnnsim.BwdFilter, limit).Algo,
	}
	e.chosenAlg[l.ID] = a
	return a
}

// ensurePinned lazily creates the pinned host staging buffer for an
// offloaded feature map. cudaMallocHost is expensive, so the cost is charged
// once (first iteration) and the region reused for the rest of training.
func (e *runtime) ensurePinned(t *dnn.Tensor) error {
	st := e.buf[t]
	if st.pinned != nil {
		return nil
	}
	r, cost, err := e.host.AllocPinned(e.mbShare(t.Bytes(e.net.DType)), fmt.Sprintf("pin-fm%d", t.ID))
	if err != nil {
		return err
	}
	e.dev.TL.AdvanceHost(cost)
	st.pinned = r
	return nil
}

package core

import (
	"context"
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
)

// execute simulates cfg.Iterations training iterations and returns metrics
// for the last one. An allocation failure anywhere aborts with an error
// (the configuration is untrainable). Pipeline configurations run the
// micro-batch pipeline trainer (which derives its own per-stage plans from
// the policy), configurations with more than one device run the
// data-parallel trainer, and a single device runs one runtime on a dedicated
// timeline — today's exact schedule. A done ctx aborts the run at the next
// layer (or micro-batch) boundary with an ErrCanceled-wrapping error.
func execute(ctx context.Context, net *dnn.Network, cfg Config, pol OffloadPolicy, plan *Plan) (*Result, error) {
	if cfg.Stages > 1 {
		return executePP(ctx, net, cfg, pol)
	}
	if cfg.Devices > 1 {
		return executeDP(ctx, net, cfg, plan)
	}
	dev := gpu.NewDevice(cfg.Spec)
	dev.UsePageMigration = cfg.PageMigration
	e, err := newRuntimeRange(net, cfg, plan, dev, 0, len(net.Layers), 1, allocTraceFrom(ctx))
	if err != nil {
		return nil, err
	}
	e.ctx = ctx

	var winStart sim.Time
	for e.iter = 0; e.iter < cfg.Iterations; e.iter++ {
		e.resetIteration()
		winStart = e.now()
		if err := e.runIteration(); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", e.iter, err)
		}
	}
	winEnd := e.now()
	if err := e.dev.TL.Validate(); err != nil {
		return nil, fmt.Errorf("core: schedule invariant broken: %w", err)
	}
	return e.assemble(winStart, winEnd), nil
}

// runIteration performs one single-device forward + backward (+ weight
// update) pass, synchronizing each layer right after issuing it — the
// paper's Figure 9 host loop.
func (e *runtime) runIteration() error {
	if err := e.beginIteration(); err != nil {
		return err
	}
	for _, l := range e.net.Layers {
		if err := e.checkCtx(); err != nil {
			return err
		}
		p, err := e.issueForward(l)
		if err != nil {
			return fmt.Errorf("fwd %s: %w", l.Name, err)
		}
		e.finishForward(p)
	}
	for i := len(e.net.Layers) - 1; i >= 0; i-- {
		if err := e.checkCtx(); err != nil {
			return err
		}
		l := e.net.Layers[i]
		p, err := e.issueBackward(l)
		if err != nil {
			return fmt.Errorf("bwd %s: %w", l.Name, err)
		}
		e.finishBackward(p)
	}
	if err := e.weightUpdate(nil); err != nil {
		return err
	}
	return e.endIteration()
}

// beginIteration prepares the input batch buffer. The baseline holds it
// network-wide; vDNN allocates it per iteration (per micro-batch under
// pipeline parallelism — each micro-batch feeds its own input slice).
func (e *runtime) beginIteration() error {
	in := e.buf[e.net.Input]
	if in.block == nil {
		b, err := e.alloc(e.mbShare(e.net.Input.Bytes(e.net.DType)), memalloc.KindFeatureMap, "input")
		if err != nil {
			return err
		}
		in.block = b
	}
	in.offloaded = false
	in.lastWrite = nil
	return nil
}

// weightUpdate issues the SGD update kernels. syncDep, when non-nil, orders
// every update after it — the data-parallel trainer passes the replica's
// final all-reduce transfer so no weight updates before its gradients are
// globally reduced.
func (e *runtime) weightUpdate(syncDep *sim.Op) error {
	if e.cfg.SkipWeightUpdate {
		return nil
	}
	for _, l := range e.net.Layers {
		if !e.owned(l.ID) {
			continue // another pipeline stage holds these weights
		}
		if w := l.WeightBytes(e.net.DType); w > 0 {
			c := cudnnsim.ElementwiseCost(e.cfg.Spec, w, 3)
			var dep *sim.Op
			if ws := e.wState[l]; ws != nil {
				if ws.block == nil {
					return fmt.Errorf("core: weights of %s not resident at update", l.Name)
				}
				dep = ws.lastWrite
			}
			op := e.dev.Kernel("sgd:"+l.Name, c.Dur, c.Flops, c.DRAMBytes, dep, syncDep)
			if ws := e.wState[l]; ws != nil {
				ws.lastWrite = op
			}
		}
	}
	return nil
}

// endIteration drains both streams, flushes the pool's pending frees and
// asserts the release discipline.
func (e *runtime) endIteration() error {
	e.dev.TL.WaitStream(e.dev.StreamCompute)
	e.dev.TL.WaitStream(e.dev.StreamMemory)
	e.pool.Flush(e.now())
	return e.checkIterationEnd()
}

// --- data-parallel trainer ---

// maxDevices bounds the replica count; far beyond any PCIe root complex.
const maxDevices = 64

// executeDP simulates cfg.Devices data-parallel replicas on one shared
// timeline: each replica trains the full network on its own minibatch under
// the same plan, all DMA traffic is arbitrated over the topology's shared
// root-complex channels, and a ring all-reduce synchronizes the weight
// gradients each step before the SGD updates run.
//
// The driver is one host thread that walks the layer sequence in lockstep:
// it issues a layer's work on every replica, then performs the end-of-layer
// synchronizations — the multi-GPU generalization of the paper's Figure 9
// loop. With one device and a dedicated topology this degenerates to the
// single-device schedule exactly.
func executeDP(ctx context.Context, net *dnn.Network, cfg Config, plan *Plan) (*Result, error) {
	n := cfg.Devices
	tl := sim.New(cfg.Spec.LaunchOverhead, cfg.Spec.SyncOverhead)
	var down, up *sim.SharedChannel
	if cfg.Topology.Shared() {
		down = sim.NewSharedChannel("root.down", float64(cfg.Topology.RootBps))
		up = sim.NewSharedChannel("root.up", float64(cfg.Topology.RootBps))
	}

	// Replicas share the node's host DRAM: split the pinned-memory budget.
	repCfg := cfg
	repCfg.HostBytes = cfg.HostBytes / int64(n)

	reps := make([]*runtime, n)
	for i := range reps {
		dev := gpu.NewDeviceOn(tl, cfg.Spec, i, down, up)
		dev.UsePageMigration = cfg.PageMigration
		r, err := newRuntime(net, repCfg, plan, dev)
		if err != nil {
			return nil, fmt.Errorf("device %d: %w", i, err)
		}
		r.ctx = ctx
		reps[i] = r
	}

	gradBytes := net.TotalWeightBytes()
	var winStart sim.Time
	for iter := 0; iter < cfg.Iterations; iter++ {
		for _, r := range reps {
			r.iter = iter
			r.resetIteration()
		}
		winStart = tl.Now()
		if err := runStepDP(net, reps, gradBytes); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", iter, err)
		}
	}
	winEnd := tl.Now()
	if err := tl.Validate(); err != nil {
		return nil, fmt.Errorf("core: schedule invariant broken: %w", err)
	}
	for _, ch := range []*sim.SharedChannel{down, up} {
		if ch == nil {
			continue
		}
		if err := ch.Validate(); err != nil {
			return nil, fmt.Errorf("core: interconnect invariant broken: %w", err)
		}
	}
	return assembleDP(reps, cfg, winStart, winEnd), nil
}

// runStepDP drives one training step across all replicas in lockstep.
func runStepDP(net *dnn.Network, reps []*runtime, gradBytes int64) error {
	for i, r := range reps {
		if err := r.beginIteration(); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	fp := make([]fwdPending, len(reps))
	for _, l := range net.Layers {
		if err := reps[0].checkCtx(); err != nil {
			return err
		}
		for i, r := range reps {
			p, err := r.issueForward(l)
			if err != nil {
				return fmt.Errorf("device %d: fwd %s: %w", i, l.Name, err)
			}
			fp[i] = p
		}
		for i, r := range reps {
			r.finishForward(fp[i])
		}
	}
	bp := make([]bwdPending, len(reps))
	for j := len(net.Layers) - 1; j >= 0; j-- {
		if err := reps[0].checkCtx(); err != nil {
			return err
		}
		l := net.Layers[j]
		for i, r := range reps {
			p, err := r.issueBackward(l)
			if err != nil {
				return fmt.Errorf("device %d: bwd %s: %w", i, l.Name, err)
			}
			bp[i] = p
		}
		for i, r := range reps {
			r.finishBackward(bp[i])
		}
	}
	// The convnet-benchmarks timing protocol (SkipWeightUpdate) drops the
	// weight update and with it the gradient sync that exists only to feed
	// it — otherwise the all-reduce would dangle past the iteration
	// boundary, unsynchronized by anything.
	if reps[0].cfg.SkipWeightUpdate {
		return endStepDP(reps)
	}
	ar := allReduce(reps, gradBytes)
	for i, r := range reps {
		if err := r.weightUpdate(ar.done[i]); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	return endStepDP(reps)
}

// endStepDP drains every replica's streams and checks the release
// discipline.
func endStepDP(reps []*runtime) error {
	for i, r := range reps {
		if err := r.endIteration(); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	return nil
}

// allReduceOps records the gradient-synchronization transfers of one step.
type allReduceOps struct {
	done []*sim.Op // per replica: last transfer (the SGD gate)
}

// allReduce injects a ring all-reduce of the weight gradients over the
// interconnect: 2(N-1) phases in which every replica simultaneously sends
// one gradient chunk to its ring successor and receives one from its
// predecessor. Each replica moves 2(N-1)/N of the model per direction — the
// bandwidth-optimal schedule — and under a shared topology this traffic
// contends with everything else on the root complex.
func allReduce(reps []*runtime, gradBytes int64) *allReduceOps {
	n := len(reps)
	ar := &allReduceOps{done: make([]*sim.Op, n)}
	if n < 2 || gradBytes == 0 {
		return ar
	}
	chunk := (gradBytes + int64(n) - 1) / int64(n)
	recv := make([]*sim.Op, n)
	for phase := 0; phase < 2*(n-1); phase++ {
		send := make([]*sim.Op, n)
		for i, r := range reps {
			// The first send waits for the replica's gradients (everything
			// queued on stream_compute); later sends forward the chunk
			// received in the previous phase.
			dep := recv[i]
			if dep == nil {
				dep = r.dev.StreamCompute.Last()
			}
			send[i] = r.dev.PeerSend(fmt.Sprintf("AR-send:p%d", phase), chunk, r.arSend, dep)
		}
		for i, r := range reps {
			peer := send[(i-1+n)%n]
			recv[i] = r.dev.PeerRecv(fmt.Sprintf("AR-recv:p%d", phase), chunk, r.arRecv, peer)
		}
	}
	copy(ar.done, recv)
	return ar
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
)

// Simulations are deterministic, so results are cached across tests.
var (
	cacheMu sync.Mutex
	cache   = map[string]*Result{}
)

func run(t *testing.T, net *dnn.Network, cfg Config) *Result {
	t.Helper()
	// Key on the full normalized configuration (the sweep engine's contract),
	// with the non-comparable custom policy reduced to its name.
	norm := cfg.WithDefaults()
	custom := ""
	if norm.Custom != nil {
		custom = norm.Custom.Name()
		norm.Custom = nil
	}
	key := fmt.Sprintf("%s|%s|%+v", net.Name, custom, norm)
	cacheMu.Lock()
	r, ok := cache[key]
	cacheMu.Unlock()
	if ok {
		return r
	}
	r, err := Run(net, cfg)
	if err != nil {
		t.Fatalf("%s %v%v: %v", net.Name, cfg.Policy, cfg.Algo, err)
	}
	cacheMu.Lock()
	cache[key] = r
	cacheMu.Unlock()
	return r
}

func titan() gpu.Spec { return gpu.TitanX() }

func cfg(p Policy, a AlgoMode) Config { return Config{Spec: titan(), Policy: p, Algo: a} }

// nets used repeatedly; built once.
var (
	alexNet    = networks.AlexNet(128)
	overFeat   = networks.OverFeat(128)
	googLeNet  = networks.GoogLeNet(128)
	vgg64      = networks.VGG16(64)
	vgg128     = networks.VGG16(128)
	vgg256     = networks.VGG16(256)
	vgg416Deep = networks.VGGDeep(416, 32)
)

// TestTrainabilityMatrix reproduces the starred entries of the paper's
// Figure 11 exactly: which (policy, algorithm-mode) pairs can train each of
// the six conventional networks on a 12 GB Titan X.
func TestTrainabilityMatrix(t *testing.T) {
	type want struct {
		net       *dnn.Network
		policy    Policy
		algo      AlgoMode
		trainable bool
	}
	cases := []want{
		// AlexNet, OverFeat, GoogLeNet, VGG-16 (64): everything trains.
		{alexNet, Baseline, MemOptimal, true},
		{alexNet, Baseline, PerfOptimal, true},
		{alexNet, VDNNAll, PerfOptimal, true},
		{overFeat, Baseline, PerfOptimal, true},
		{overFeat, VDNNConv, PerfOptimal, true},
		{googLeNet, Baseline, PerfOptimal, true},
		{googLeNet, VDNNAll, MemOptimal, true},
		{vgg64, Baseline, MemOptimal, true},
		{vgg64, Baseline, PerfOptimal, true},
		{vgg64, VDNNAll, PerfOptimal, true},
		{vgg64, VDNNConv, PerfOptimal, true},
		// VGG-16 (128): only the baseline with performance-optimal
		// algorithms fails (the paper's 15 GB requirement).
		{vgg128, Baseline, MemOptimal, true},
		{vgg128, Baseline, PerfOptimal, false},
		{vgg128, VDNNAll, MemOptimal, true},
		{vgg128, VDNNAll, PerfOptimal, true},
		{vgg128, VDNNConv, MemOptimal, true},
		{vgg128, VDNNConv, PerfOptimal, true},
		// VGG-16 (256): baseline fails outright (28 GB); static vDNN fails
		// with performance-optimal algorithms, trains with memory-optimal.
		{vgg256, Baseline, MemOptimal, false},
		{vgg256, Baseline, PerfOptimal, false},
		{vgg256, VDNNAll, MemOptimal, true},
		{vgg256, VDNNAll, PerfOptimal, false},
		{vgg256, VDNNConv, MemOptimal, true},
		{vgg256, VDNNConv, PerfOptimal, false},
	}
	for _, c := range cases {
		r := run(t, c.net, cfg(c.policy, c.algo))
		if r.Trainable != c.trainable {
			t.Errorf("%s %v %v: trainable = %v, want %v (%s)",
				c.net.Name, c.policy, c.algo, r.Trainable, c.trainable, r.FailReason)
		}
	}
}

// TestDynTrainsEverything: the dynamic policy must train all ten studied
// DNNs (the paper's headline result).
func TestDynTrainsEverything(t *testing.T) {
	for _, net := range []*dnn.Network{alexNet, overFeat, googLeNet, vgg64, vgg128, vgg256, vgg416Deep} {
		r := run(t, net, cfg(VDNNDyn, 0))
		if !r.Trainable {
			t.Errorf("%s: vDNN-dyn failed to train: %s", net.Name, r.FailReason)
		}
	}
}

// TestBaselineMemoryTotals checks the absolute allocation sizes the paper
// quotes: AlexNet ~1.1 GB, VGG-16 (128) ~15 GB and VGG-16 (256) ~28 GB with
// performance-optimal algorithms.
func TestBaselineMemoryTotals(t *testing.T) {
	cases := []struct {
		net      *dnn.Network
		lo, hi   float64 // total allocation in GiB
		whatsaid string
	}{
		{alexNet, 0.9, 1.4, "1.1 GB"},
		{vgg128, 14.0, 16.5, "15 GB"},
		{vgg256, 26.5, 30.5, "28 GB"},
	}
	for _, c := range cases {
		r := run(t, c.net, cfg(Baseline, PerfOptimal))
		got := float64(r.TotalMaxUsage()) / (1 << 30)
		if got < c.lo || got > c.hi {
			t.Errorf("%s baseline(p) total = %.2f GiB, want ~%s", c.net.Name, got, c.whatsaid)
		}
	}
}

// TestVGG128AllMPeak checks the paper's Section V-A observation: VGG-16
// (128) under memory-optimal vDNN-all "only uses up to 4.8 GB out of the
// 12 GB of available memory".
func TestVGG128AllMPeak(t *testing.T) {
	r := run(t, vgg128, cfg(VDNNAll, MemOptimal))
	gb := float64(r.MaxUsage) / (1 << 30)
	if gb < 4.2 || gb > 5.4 {
		t.Fatalf("VGG-16(128) vDNN-all(m) peak = %.2f GiB, want ~4.8 GiB", gb)
	}
}

// TestAverageMemorySavings reproduces the abstract's savings: vDNN-all
// reduces average memory usage of AlexNet by up to ~89%, OverFeat ~91%,
// GoogLeNet ~95%, and ~90% for VGG-16 (256).
func TestAverageMemorySavings(t *testing.T) {
	cases := []struct {
		net     *dnn.Network
		baseAlg AlgoMode
		minSave float64
	}{
		{alexNet, PerfOptimal, 0.78},
		{overFeat, PerfOptimal, 0.82},
		{googLeNet, PerfOptimal, 0.90},
		{vgg256, MemOptimal, 0.85},
	}
	for _, c := range cases {
		base := run(t, c.net, cfg(Baseline, c.baseAlg))
		all := run(t, c.net, cfg(VDNNAll, MemOptimal))
		save := 1 - float64(all.AvgUsage)/float64(base.AvgUsage)
		if save < c.minSave || save > 0.99 {
			t.Errorf("%s: avg memory savings = %.0f%%, want >= %.0f%%",
				c.net.Name, save*100, c.minSave*100)
		}
	}
}

// TestMemoryOrderingAcrossPolicies: for every conventional network,
// vDNN-all uses the least average memory, vDNN-conv more, baseline the most
// (paper Figure 11's consistent ordering).
func TestMemoryOrderingAcrossPolicies(t *testing.T) {
	for _, net := range []*dnn.Network{alexNet, overFeat, googLeNet, vgg64, vgg128, vgg256} {
		all := run(t, net, cfg(VDNNAll, MemOptimal))
		conv := run(t, net, cfg(VDNNConv, MemOptimal))
		base := run(t, net, cfg(Baseline, MemOptimal))
		if !(all.AvgUsage < conv.AvgUsage && conv.AvgUsage < base.AvgUsage) {
			t.Errorf("%s: avg usage ordering violated: all=%d conv=%d base=%d",
				net.Name, all.AvgUsage, conv.AvgUsage, base.AvgUsage)
		}
		if all.MaxUsage > base.MaxUsage {
			t.Errorf("%s: vDNN-all max exceeds baseline", net.Name)
		}
	}
}

// TestPerformanceShape reproduces Figure 14's shape: static vDNN with
// memory-optimal algorithms loses roughly half the performance; vDNN-conv
// is at least as fast as vDNN-all; the dynamic policy recovers nearly all
// of it.
func TestPerformanceShape(t *testing.T) {
	var normSum float64
	var normCnt int
	for _, net := range []*dnn.Network{alexNet, overFeat, googLeNet, vgg64, vgg128, vgg256} {
		oracle := run(t, net, Config{Spec: titan(), Policy: Baseline, Algo: PerfOptimal, Oracle: true})
		allM := run(t, net, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Oracle: true})
		convM := run(t, net, Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal, Oracle: true})
		convP := run(t, net, Config{Spec: titan(), Policy: VDNNConv, Algo: PerfOptimal, Oracle: true})
		dyn := run(t, net, cfg(VDNNDyn, 0))

		norm := func(r *Result) float64 { return float64(oracle.FETime) / float64(r.FETime) }
		if n := norm(allM); n < 0.25 || n > 0.60 {
			t.Errorf("%s: vDNN-all(m) normalized perf = %.2f, want ~0.3-0.5", net.Name, n)
		}
		if convM.FETime > allM.FETime {
			t.Errorf("%s: vDNN-conv(m) slower than vDNN-all(m)", net.Name)
		}
		// GoogLeNet's many small layers hide transfers worst (paper Fig 14
		// shows it lowest as well).
		minConvP := 0.75
		if net == googLeNet {
			minConvP = 0.62
		}
		if n := norm(convP); n < minConvP {
			t.Errorf("%s: vDNN-conv(p) normalized perf = %.2f, want > %.2f", net.Name, n, minConvP)
		}
		n := norm(dyn)
		if n < 0.74 || n > 1.02 {
			t.Errorf("%s: vDNN-dyn normalized perf = %.2f, want 0.74-1.0", net.Name, n)
		}
		normSum += n
		normCnt++
	}
	// Average dyn throughput ~97% of baseline in the paper.
	if avg := normSum / float64(normCnt); avg < 0.90 {
		t.Errorf("average vDNN-dyn normalized perf = %.2f, want >= 0.90", avg)
	}
}

// TestDynChoices verifies the dynamic policy's profiling decisions: for
// networks that fit, it adopts the fastest no-offload configuration; for
// VGG-16 (128) it needs offloading; for VGG-16 (256) it must downgrade
// algorithms (greedy phase).
func TestDynChoices(t *testing.T) {
	for _, net := range []*dnn.Network{alexNet, overFeat, googLeNet, vgg64} {
		r := run(t, net, cfg(VDNNDyn, 0))
		if !strings.Contains(r.Chosen, "baseline") {
			t.Errorf("%s: dyn chose %q, want the no-offload baseline", net.Name, r.Chosen)
		}
		if r.OffloadBytes != 0 {
			t.Errorf("%s: dyn offloaded %d bytes, want 0", net.Name, r.OffloadBytes)
		}
	}
	r128 := run(t, vgg128, cfg(VDNNDyn, 0))
	if !strings.Contains(r128.Chosen, "vDNN") {
		t.Errorf("VGG-16(128): dyn chose %q, want a vDNN offload config", r128.Chosen)
	}
	r256 := run(t, vgg256, cfg(VDNNDyn, 0))
	if !strings.Contains(r256.Chosen, "greedy") {
		t.Errorf("VGG-16(256): dyn chose %q, want a greedy-downgrade config", r256.Chosen)
	}
	// Paper: dyn reaches 82% of the oracular baseline for VGG-16 (256).
	oracle := run(t, vgg256, Config{Spec: titan(), Policy: Baseline, Algo: PerfOptimal, Oracle: true})
	if n := float64(oracle.FETime) / float64(r256.FETime); n < 0.72 || n > 0.95 {
		t.Errorf("VGG-16(256): dyn normalized perf = %.2f, want ~0.82", n)
	}
}

// TestOffloadTraffic reproduces Figure 12's shape: vDNN-all offloads more
// than vDNN-conv, VGG-16 (256) offloads ~15 GB, and traffic equals the
// pinned host allocation.
func TestOffloadTraffic(t *testing.T) {
	for _, net := range []*dnn.Network{alexNet, googLeNet, vgg64, vgg256} {
		all := run(t, net, cfg(VDNNAll, MemOptimal))
		conv := run(t, net, cfg(VDNNConv, MemOptimal))
		if all.OffloadBytes <= conv.OffloadBytes {
			t.Errorf("%s: all offload %d <= conv offload %d", net.Name, all.OffloadBytes, conv.OffloadBytes)
		}
		if conv.OffloadBytes <= 0 {
			t.Errorf("%s: conv offload = %d, want > 0", net.Name, conv.OffloadBytes)
		}
		if all.HostPinnedPeak != all.OffloadBytes {
			t.Errorf("%s: pinned %d != offloaded %d", net.Name, all.HostPinnedPeak, all.OffloadBytes)
		}
	}
	all256 := run(t, vgg256, cfg(VDNNAll, MemOptimal))
	gb := float64(all256.OffloadBytes) / (1 << 30)
	if gb < 13 || gb > 17 {
		t.Errorf("VGG-16(256) vDNN-all offload = %.1f GiB, want ~14.5 (paper: up to ~16 GB)", gb)
	}
	// Every offloaded byte comes back: each offloaded buffer has a backward
	// reader (conv/pool/FC backward reads X; in-place ReLU backward reads Y,
	// which covers even GoogLeNet's concat branch outputs).
	for _, net := range []*dnn.Network{vgg256, googLeNet} {
		r := run(t, net, cfg(VDNNAll, MemOptimal))
		if r.PrefetchBytes != r.OffloadBytes {
			t.Errorf("%s: prefetch %d != offload %d", net.Name, r.PrefetchBytes, r.OffloadBytes)
		}
	}
}

// TestReuseDistances reproduces Section III-A's numbers: the first layer's
// input feature map is not reused for >60 ms on AlexNet and >1200 ms on
// VGG-16 (64) (with memory-optimal algorithms), and reuse distance shrinks
// monotonically with layer depth.
func TestReuseDistances(t *testing.T) {
	a := run(t, alexNet, cfg(Baseline, MemOptimal))
	if ms := a.Layers[0].ReuseDistance.Msec(); ms < 60 {
		t.Errorf("AlexNet conv1 reuse distance = %.0f ms, want > 60 ms", ms)
	}
	v := run(t, vgg64, cfg(Baseline, MemOptimal))
	if ms := v.Layers[0].ReuseDistance.Msec(); ms < 1200 {
		t.Errorf("VGG-16(64) conv1_1 reuse distance = %.0f ms, want > 1200 ms", ms)
	}
	// Monotone decreasing along the CONV layers of the linear VGG.
	prev := v.Layers[0].ReuseDistance
	for _, ls := range v.Layers {
		if ls.Kind != dnn.Conv {
			continue
		}
		if ls.ReuseDistance > prev {
			t.Fatalf("reuse distance increased at %s", ls.Name)
		}
		prev = ls.ReuseDistance
	}
}

// TestConvDominatesComputeTime checks Section III-C's premise: 70-80%+ of
// feature-extraction time is spent in CONV layers.
func TestConvDominatesComputeTime(t *testing.T) {
	r := run(t, vgg64, cfg(Baseline, PerfOptimal))
	var conv, total float64
	for _, ls := range r.Layers {
		if ls.Stage != dnn.FeatureExtraction {
			continue
		}
		d := float64(ls.FwdTime + ls.BwdTime)
		total += d
		if ls.Kind == dnn.Conv {
			conv += d
		}
	}
	if frac := conv / total; frac < 0.70 {
		t.Fatalf("CONV fraction of FE time = %.0f%%, want > 70%%", frac*100)
	}
}

// TestWorkingSetFraction reproduces Figure 1's right axis: the maximum
// layer-wise working set is a modest fraction of the network-wide
// allocation, and the fraction shrinks as networks deepen.
func TestWorkingSetFraction(t *testing.T) {
	frac := func(net *dnn.Network) float64 {
		r := run(t, net, cfg(Baseline, PerfOptimal))
		return float64(r.MaxWorkingSet) / float64(r.TotalMaxUsage())
	}
	fa, fg, fv := frac(alexNet), frac(googLeNet), frac(vgg416Deep)
	for name, f := range map[string]float64{"AlexNet": fa, "GoogLeNet": fg, "VGG-416": fv} {
		if f <= 0.01 || f >= 0.85 {
			t.Errorf("%s working-set fraction = %.2f, out of plausible range", name, f)
		}
	}
	if !(fa > fg && fg > fv) {
		t.Errorf("working-set fraction should shrink with depth: alex=%.2f googlenet=%.2f vgg416=%.2f", fa, fg, fv)
	}
	if fv > 0.10 {
		t.Errorf("VGG-416 uses %.0f%% of its allocation at once; paper: deeper nets leave most memory idle", fv*100)
	}
}

// TestPrefetchModes compares the scheduling ablations on VGG-16 (64):
// just-in-time (default) needs the least memory; the literal Figure 10 code
// prefetches earlier (>= peak); eager earlier still; on-demand has no
// prefetches but serializes transfers.
func TestPrefetchModes(t *testing.T) {
	base := Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Oracle: true}
	jit := base
	jit.Prefetch = PrefetchJIT
	fig10 := base
	fig10.Prefetch = PrefetchFig10
	eager := base
	eager.Prefetch = PrefetchEager
	none := base
	none.Prefetch = PrefetchNone

	rJIT := run(t, vgg64, jit)
	rFig := run(t, vgg64, fig10)
	rEager := run(t, vgg64, eager)
	rNone := run(t, vgg64, none)

	if rJIT.OnDemandFetches != 0 || rFig.OnDemandFetches != 0 || rEager.OnDemandFetches != 0 {
		t.Fatalf("window policies must not fall back to on-demand fetches: %d %d %d",
			rJIT.OnDemandFetches, rFig.OnDemandFetches, rEager.OnDemandFetches)
	}
	if rNone.OnDemandFetches == 0 {
		t.Fatal("PrefetchNone must fetch on demand")
	}
	if !(rJIT.MaxUsage <= rFig.MaxUsage && rFig.MaxUsage <= rEager.MaxUsage) {
		t.Errorf("peak memory should grow with prefetch eagerness: jit=%d fig10=%d eager=%d",
			rJIT.MaxUsage, rFig.MaxUsage, rEager.MaxUsage)
	}
	if rNone.FETime <= rJIT.FETime {
		t.Errorf("on-demand fetching should be slower: none=%v jit=%v", rNone.FETime, rJIT.FETime)
	}
}

// TestPageMigrationAblation reproduces the Section II-C argument: paging at
// 80-200 MB/s instead of 12.8 GB/s DMA cripples training performance.
func TestPageMigrationAblation(t *testing.T) {
	dma := run(t, vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Oracle: true})
	pm := run(t, vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Oracle: true, PageMigration: true})
	ratio := float64(pm.FETime) / float64(dma.FETime)
	if ratio < 5 {
		t.Fatalf("page migration slowdown = %.1fx, want >= 5x", ratio)
	}
}

// TestOracleMatchesRealWhenFits: removing the capacity limit must not change
// the schedule of a configuration that already fits.
func TestOracleMatchesRealWhenFits(t *testing.T) {
	real := run(t, alexNet, cfg(Baseline, PerfOptimal))
	oracle := run(t, alexNet, Config{Spec: titan(), Policy: Baseline, Algo: PerfOptimal, Oracle: true})
	if real.FETime != oracle.FETime || real.MaxUsage != oracle.MaxUsage {
		t.Fatalf("oracle changed a fitting run: fe %v vs %v, max %d vs %d",
			real.FETime, oracle.FETime, real.MaxUsage, oracle.MaxUsage)
	}
}

// TestSteadyState: extra iterations must not change per-iteration metrics
// (pinned buffers are reused; the allocation pattern repeats).
func TestSteadyState(t *testing.T) {
	two := run(t, vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Iterations: 2})
	four := run(t, vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Iterations: 4})
	if two.OffloadBytes != four.OffloadBytes {
		t.Errorf("offload bytes changed across iterations: %d vs %d", two.OffloadBytes, four.OffloadBytes)
	}
	diff := two.FETime - four.FETime
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(two.FETime) {
		t.Errorf("FE time not steady: %v vs %v", two.FETime, four.FETime)
	}
}

// TestVeryDeepCaseStudy reproduces Section V-E: baseline needs up to ~67 GB
// for VGG-416 while vDNN-dyn trains it with a few GB of GPU memory, 81-92%
// of allocations residing in host memory, at near-baseline performance.
func TestVeryDeepCaseStudy(t *testing.T) {
	base := run(t, vgg416Deep, cfg(Baseline, PerfOptimal))
	if base.Trainable {
		t.Fatal("VGG-416 baseline should not fit in 12 GB")
	}
	if gb := float64(base.TotalMaxUsage()) / (1 << 30); gb < 58 || gb > 72 {
		t.Errorf("VGG-416 baseline demand = %.1f GiB, want ~67 GB", gb)
	}
	dyn := run(t, vgg416Deep, cfg(VDNNDyn, 0))
	if !dyn.Trainable {
		t.Fatalf("VGG-416 dyn failed: %s", dyn.FailReason)
	}
	if gb := float64(dyn.MaxUsage) / (1 << 30); gb > 7 {
		t.Errorf("VGG-416 dyn GPU peak = %.1f GiB, want single-digit (paper: 4.2 GB)", gb)
	}
	cpuFrac := float64(dyn.HostPinnedPeak) / float64(dyn.HostPinnedPeak+dyn.MaxUsage)
	if cpuFrac < 0.81 || cpuFrac > 0.95 {
		t.Errorf("VGG-416 CPU-side fraction = %.0f%%, want 81-92%%", cpuFrac*100)
	}
	oracle := run(t, vgg416Deep, Config{Spec: titan(), Policy: Baseline, Algo: PerfOptimal, Oracle: true})
	if n := float64(oracle.FETime) / float64(dyn.FETime); n < 0.85 {
		t.Errorf("VGG-416 dyn normalized perf = %.2f, want near-baseline", n)
	}
}

// TestPowerStudy reproduces Section V-D: vDNN-dyn's extra transfer traffic
// raises maximum power by single-digit percent and barely moves the average.
func TestPowerStudy(t *testing.T) {
	for _, net := range []*dnn.Network{alexNet, overFeat, googLeNet, vgg64} {
		base := run(t, net, cfg(Baseline, PerfOptimal))
		dyn := run(t, net, cfg(VDNNDyn, 0))
		maxOver := (dyn.Power.MaxW - base.Power.MaxW) / base.Power.MaxW
		if maxOver < -0.02 || maxOver > 0.10 {
			t.Errorf("%s: max power overhead = %.1f%%, want within [0, 10]%%", net.Name, maxOver*100)
		}
		avgOver := dyn.Power.AvgW/base.Power.AvgW - 1
		if avgOver < -0.15 || avgOver > 0.15 {
			t.Errorf("%s: avg power moved %.1f%%, want small", net.Name, avgOver*100)
		}
	}
}

// TestOffloadPlanCounts pins the offload sets derived from the
// reference-count rule on VGG-16: under vDNN-all every feature-extraction X
// (18 buffers: input + 13 conv outputs + 4 inner pool outputs); under
// vDNN-conv only CONV inputs (13 buffers).
func TestOffloadPlanCounts(t *testing.T) {
	count := func(p *Plan) int {
		n := 0
		for _, bufs := range p.OffloadAt {
			n += len(bufs)
		}
		return n
	}
	all, err := testPlan(vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if got := count(all); got != 18 {
		t.Errorf("vDNN-all offload buffers = %d, want 18", got)
	}
	conv, err := testPlan(vgg64, Config{Spec: titan(), Policy: VDNNConv, Algo: MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if got := count(conv); got != 13 {
		t.Errorf("vDNN-conv offload buffers = %d, want 13", got)
	}
	base, err := testPlan(vgg64, Config{Spec: titan(), Policy: Baseline, Algo: MemOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if base.Offloads() {
		t.Error("baseline plan must not offload")
	}
}

// testPlan builds the static plan a configuration's built-in policy derives.
func testPlan(net *dnn.Network, cfg Config) (*Plan, error) {
	pol, err := cfg.policyImpl()
	if err != nil {
		return nil, err
	}
	return buildPlan(net, cfg, pol)
}

// TestFindPrefetchLayerFig10 unit-tests the literal port of the paper's
// Figure 10 pseudo-code on VGG's layer sequence.
func TestFindPrefetchLayerFig10(t *testing.T) {
	plan, err := testPlan(vgg64, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, Prefetch: PrefetchFig10})
	if err != nil {
		t.Fatal(err)
	}
	e := &runtime{
		cfg:  Config{Prefetch: PrefetchFig10},
		net:  vgg64,
		plan: plan,
		lay:  make([]*layerState, len(vgg64.Layers)),
	}
	for i := range e.lay {
		e.lay[i] = &layerState{offloaded: len(plan.OffloadAt[i]) > 0}
	}
	// VGG layers: conv1_1(0) relu(1) conv1_2(2) relu(3) pool1(4) conv2_1(5)...
	// From pool1's backward, the next offloaded-unprefetched layer below is
	// conv1_2.
	if got := e.findPrefetchLayer(4); got != 2 {
		t.Fatalf("findPrefetchLayer(pool1) = %d, want conv1_2 (2)", got)
	}
	// Now conv1_2 is marked prefetched; the search from relu1_2 stops at the
	// CONV layer and returns -1 (the paper's window bound).
	if got := e.findPrefetchLayer(3); got != -1 {
		t.Fatalf("findPrefetchLayer(relu1_2) = %d, want -1", got)
	}
	// From conv1_2's backward the search finds conv1_1 (offloaded input).
	if got := e.findPrefetchLayer(2); got != 0 {
		t.Fatalf("findPrefetchLayer(conv1_2) = %d, want conv1_1 (0)", got)
	}
	// Nothing left below conv1_1.
	if got := e.findPrefetchLayer(0); got != -1 {
		t.Fatalf("findPrefetchLayer(conv1_1) = %d, want -1", got)
	}
}

// TestGoogLeNetRefcountSafety: with fork/join topologies no buffer may be
// fetched on demand or double-freed under any vDNN policy (exercises the
// Figure 3 reference-count machinery end to end; executor self-checks panic
// or error on double frees and leaks).
func TestGoogLeNetRefcountSafety(t *testing.T) {
	for _, pc := range []struct {
		p Policy
		a AlgoMode
	}{{VDNNAll, MemOptimal}, {VDNNAll, PerfOptimal}, {VDNNConv, MemOptimal}, {VDNNConv, PerfOptimal}} {
		r := run(t, googLeNet, cfg(pc.p, pc.a))
		if r.OnDemandFetches != 0 {
			t.Errorf("GoogLeNet %v%v: %d on-demand fetches, want 0", pc.p, pc.a, r.OnDemandFetches)
		}
		if !r.Trainable {
			t.Errorf("GoogLeNet %v%v: untrainable: %s", pc.p, pc.a, r.FailReason)
		}
	}
}

// TestLayerStatsConsistency: per-layer stats must be internally consistent.
func TestLayerStatsConsistency(t *testing.T) {
	r := run(t, vgg64, cfg(VDNNAll, PerfOptimal))
	var offSum int64
	for _, ls := range r.Layers {
		if ls.FwdTime < 0 || ls.BwdTime < 0 {
			t.Fatalf("%s: negative times", ls.Name)
		}
		if ls.FwdEnd < ls.FwdStart {
			t.Fatalf("%s: fwd end before start", ls.Name)
		}
		if ls.Kind == dnn.Conv && ls.FwdBW <= 0 {
			t.Fatalf("%s: no bandwidth recorded", ls.Name)
		}
		if ls.FwdBW > titan().DRAMBps || ls.BwdBW > titan().DRAMBps {
			t.Fatalf("%s: achieved bandwidth exceeds peak", ls.Name)
		}
		offSum += ls.OffloadBytes
	}
	if offSum != r.OffloadBytes {
		t.Fatalf("per-layer offload sum %d != total %d", offSum, r.OffloadBytes)
	}
}

// TestHostMemoryExhaustion: a host too small for the offload traffic makes
// the configuration untrainable rather than crashing.
func TestHostMemoryExhaustion(t *testing.T) {
	_, err := Run(vgg416Deep, Config{Spec: titan(), Policy: VDNNAll, Algo: MemOptimal, HostBytes: 4 << 30})
	if err == nil {
		t.Fatal("expected an error when host memory cannot hold the offloads")
	}
}

// TestRunValidation: invalid configurations are rejected cleanly.
func TestRunValidation(t *testing.T) {
	bad := titan()
	bad.PeakFlops = 0
	if _, err := Run(alexNet, Config{Spec: bad, Policy: Baseline}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestEnumStrings covers the display names used throughout reports.
func TestEnumStrings(t *testing.T) {
	if Baseline.String() != "base" || VDNNAll.String() != "vDNN-all" ||
		VDNNConv.String() != "vDNN-conv" || VDNNDyn.String() != "vDNN-dyn" {
		t.Error("policy names wrong")
	}
	if MemOptimal.String() != "(m)" || PerfOptimal.String() != "(p)" || GreedyAlgo.String() != "(greedy)" {
		t.Error("algo mode names wrong")
	}
	if PrefetchJIT.String() != "jit" || PrefetchFig10.String() != "fig10-window" ||
		PrefetchNone.String() != "none" || PrefetchEager.String() != "eager" {
		t.Error("prefetch mode names wrong")
	}
}

// TestAllocFailureError covers the typed OOM error.
func TestAllocFailureError(t *testing.T) {
	af := &AllocFailure{Label: "fm1", Err: errors.New("boom"), FreeSpans: [][2]int64{{0, 10}}}
	if !strings.Contains(af.Error(), "fm1") || af.Unwrap() == nil {
		t.Fatal("AllocFailure misbehaves")
	}
}

// TestResultHelpers covers the small accessors.
func TestResultHelpers(t *testing.T) {
	r := &Result{MaxUsage: 2 << 20, AvgUsage: 1 << 20, FrameworkBytes: 1 << 20}
	max, avg := r.UsageMiB()
	if max != 2 || avg != 1 {
		t.Fatalf("UsageMiB = %v,%v", max, avg)
	}
	if r.TotalMaxUsage() != 3<<20 {
		t.Fatalf("TotalMaxUsage = %d", r.TotalMaxUsage())
	}
}

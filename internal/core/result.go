package core

import (
	"sort"

	"vdnn/internal/dnn"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
)

// assemble builds the Result from the measured iteration window.
func (e *executor) assemble(winStart, winEnd sim.Time) *Result {
	r := &Result{
		Network:    e.net.Name,
		Batch:      e.net.Batch,
		Policy:     e.cfg.Policy,
		PolicyName: e.plan.PolicyName,
		Algo:       e.cfg.Algo,
		Oracle:     e.cfg.Oracle,
		Trainable:  true,
		IterTime:   winEnd - winStart,
	}

	ms := e.pool.Measure(winStart, winEnd)
	r.MaxUsage = ms.Peak
	r.AvgUsage = ms.Avg
	if e.cfg.Debug {
		r.DebugPeakTime = ms.PeakTime
		r.DebugPeakLive = e.pool.SnapshotAt(ms.PeakTime)
	}
	if e.cfg.CaptureSchedule {
		for _, eng := range e.dev.TL.Engines() {
			for _, o := range eng.Ops() {
				if o.End <= winStart || o.Start >= winEnd || o.DurationT == 0 {
					continue
				}
				r.Schedule = append(r.Schedule, ScheduleOp{
					Engine: eng.Name, Label: o.Label, Kind: o.Kind.String(),
					Start: o.Start, End: o.End,
				})
			}
		}
		sort.Slice(r.Schedule, func(i, j int) bool { return r.Schedule[i].Start < r.Schedule[j].Start })
	}
	r.FrameworkBytes = e.fw.Used()
	r.PeakByKind = map[memalloc.Kind]int64{}
	for k, v := range ms.PeakByKind {
		r.PeakByKind[k] = v
	}
	for _, k := range memalloc.Kinds() {
		if v := e.fw.UsedByKind(k); v > 0 {
			r.PeakByKind[k] += v
		}
	}

	for _, o := range e.dev.TL.Ops() {
		if o.Start < winStart || o.Start >= winEnd {
			continue
		}
		switch o.Kind {
		case sim.OpCopyD2H:
			r.OffloadBytes += o.BusBytes
		case sim.OpCopyH2D:
			r.PrefetchBytes += o.BusBytes
		}
	}
	r.OnDemandFetches = e.onDemand
	r.HostPinnedPeak = e.host.Peak()
	r.Power = e.dev.MeasurePower(winStart, winEnd)

	// Per-layer stats: finish reuse distances and algorithm records, then
	// derive the feature-extraction window and the maximum layer-wise
	// working set.
	var fwdFEStart, fwdFEEnd, bwdFEStart, bwdFEEnd sim.Time
	first := true
	for i := range e.stats {
		st := &e.stats[i]
		st.FwdStart = e.fwdStarts[i]
		if st.BwdStart > st.FwdEnd && st.FwdEnd > 0 {
			st.ReuseDistance = st.BwdStart - st.FwdEnd
		}
		if e.net.Layers[i].Kind == dnn.Conv {
			st.AlgoFwd = e.chosenAlg[i].Fwd
			st.AlgoBwdData = e.chosenAlg[i].BwdData
			st.AlgoBwdFilter = e.chosenAlg[i].BwdFilter
		}
		if ws := st.FwdWorkingSet; ws > r.MaxWorkingSet {
			r.MaxWorkingSet = ws
		}
		if ws := st.BwdWorkingSet; ws > r.MaxWorkingSet {
			r.MaxWorkingSet = ws
		}
		if st.Stage == dnn.FeatureExtraction {
			if first || st.FwdStart < fwdFEStart {
				fwdFEStart = st.FwdStart
			}
			if st.FwdEnd > fwdFEEnd {
				fwdFEEnd = st.FwdEnd
			}
			if st.BwdStart > 0 && (bwdFEStart == 0 || st.BwdStart < bwdFEStart) {
				bwdFEStart = st.BwdStart
			}
			if st.BwdEnd > bwdFEEnd {
				bwdFEEnd = st.BwdEnd
			}
			first = false
		}
	}
	if fwdFEEnd > fwdFEStart {
		r.FETime = fwdFEEnd - fwdFEStart
	}
	if bwdFEEnd > bwdFEStart {
		r.FETime += bwdFEEnd - bwdFEStart
	}
	if r.FETime == 0 {
		r.FETime = r.IterTime
	}
	r.Layers = e.stats
	return r
}

package core

import (
	"sort"

	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
)

// assemble builds the Result from the measured iteration window, reading
// only this runtime's device (its engines are a subset of the timeline's
// when replicas share one).
func (e *runtime) assemble(winStart, winEnd sim.Time) *Result {
	r := &Result{
		Network:      e.net.Name,
		Batch:        e.net.Batch,
		Policy:       e.cfg.Policy,
		PolicyName:   e.plan.PolicyName,
		Algo:         e.cfg.Algo,
		Oracle:       e.cfg.Oracle,
		Trainable:    true,
		IterTime:     winEnd - winStart,
		MicroBatches: e.cfg.MicroBatches, // 1 outside pipeline runs
	}

	ms := e.pool.Measure(winStart, winEnd)
	r.MaxUsage = ms.Peak
	r.AvgUsage = ms.Avg
	if e.cfg.Debug {
		r.DebugPeakTime = ms.PeakTime
		r.DebugPeakLive = e.pool.SnapshotAt(ms.PeakTime)
	}
	if e.cfg.CaptureSchedule {
		r.Schedule = e.captureSchedule(winStart, winEnd)
		sortSchedule(r.Schedule)
	}
	r.FrameworkBytes = e.fw.Used()
	r.PeakByKind = map[memalloc.Kind]int64{}
	for k, v := range ms.PeakByKind {
		r.PeakByKind[k] = v
	}
	for _, k := range memalloc.Kinds() {
		if v := e.fw.UsedByKind(k); v > 0 {
			r.PeakByKind[k] += v
		}
	}

	for _, o := range e.dev.Ops() {
		if o.Start < winStart || o.Start >= winEnd {
			continue
		}
		switch o.Kind {
		case sim.OpCopyD2H:
			r.OffloadBytes += o.BusBytes
		case sim.OpCopyH2D:
			r.PrefetchBytes += o.BusBytes
		}
	}
	r.OffloadRawBytes = e.offRawBytes
	r.PrefetchRawBytes = e.preRawBytes
	r.CompressTime = e.compressTime
	r.DecompressTime = e.decompressTime
	r.CompressionRatio = compressionRatio(r.OffloadRawBytes, r.OffloadBytes)
	r.OnDemandFetches = e.onDemand
	r.HostPinnedPeak = e.host.Peak()
	r.Power, r.Energy = e.dev.MeasurePowerEnergy(winStart, winEnd)

	// Per-layer stats: finish reuse distances and algorithm records, then
	// derive the feature-extraction window and the maximum layer-wise
	// working set.
	e.finalizeStats()
	r.MaxWorkingSet = maxWorkingSet(e.stats)
	r.FETime = feWindow(e.stats)
	if r.FETime == 0 {
		r.FETime = r.IterTime
	}
	r.Layers = e.stats
	return r
}

// finalizeStats fills the derived per-layer fields (forward start, reuse
// distance, chosen algorithms) for the runtime's owned layers.
func (e *runtime) finalizeStats() {
	for i := e.lo; i < e.hi; i++ {
		st := &e.stats[i]
		st.FwdStart = e.fwdStarts[i]
		if st.BwdStart > st.FwdEnd && st.FwdEnd > 0 {
			st.ReuseDistance = st.BwdStart - st.FwdEnd
		}
		if e.net.Layers[i].Kind == dnn.Conv {
			st.AlgoFwd = e.chosenAlg[i].Fwd
			st.AlgoBwdData = e.chosenAlg[i].BwdData
			st.AlgoBwdFilter = e.chosenAlg[i].BwdFilter
		}
	}
}

// maxWorkingSet is the largest per-layer kernel working set across stats.
func maxWorkingSet(stats []LayerStats) int64 {
	var max int64
	for i := range stats {
		if ws := stats[i].FwdWorkingSet; ws > max {
			max = ws
		}
		if ws := stats[i].BwdWorkingSet; ws > max {
			max = ws
		}
	}
	return max
}

// feWindow derives the feature-extraction time (the paper's performance
// metric) from finalized layer stats: the span of the forward FE window plus
// the span of the backward FE window.
func feWindow(stats []LayerStats) sim.Time {
	var fwdFEStart, fwdFEEnd, bwdFEStart, bwdFEEnd sim.Time
	first := true
	for i := range stats {
		st := &stats[i]
		if st.Stage != dnn.FeatureExtraction {
			continue
		}
		if first || st.FwdStart < fwdFEStart {
			fwdFEStart = st.FwdStart
		}
		if st.FwdEnd > fwdFEEnd {
			fwdFEEnd = st.FwdEnd
		}
		if st.BwdStart > 0 && (bwdFEStart == 0 || st.BwdStart < bwdFEStart) {
			bwdFEStart = st.BwdStart
		}
		if st.BwdEnd > bwdFEEnd {
			bwdFEEnd = st.BwdEnd
		}
		first = false
	}
	var fe sim.Time
	if fwdFEEnd > fwdFEStart {
		fe = fwdFEEnd - fwdFEStart
	}
	if bwdFEEnd > bwdFEStart {
		fe += bwdFEEnd - bwdFEStart
	}
	return fe
}

// captureSchedule records this device's ops inside the window.
func (e *runtime) captureSchedule(winStart, winEnd sim.Time) []ScheduleOp {
	var out []ScheduleOp
	for _, eng := range e.dev.Engines() {
		for _, o := range eng.Ops() {
			if o.End <= winStart || o.Start >= winEnd || o.DurationT == 0 {
				continue
			}
			out = append(out, ScheduleOp{
				Device: e.dev.ID,
				Engine: eng.Name, Label: o.Label, Kind: o.Kind.String(),
				Start: o.Start, End: o.End,
			})
		}
	}
	return out
}

// sortSchedule imposes a total, deterministic order on captured ops so
// exported traces are stable byte for byte (the golden-trace tests rely on
// it): by start time, then device, then engine, then end, then label.
func sortSchedule(s []ScheduleOp) {
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i], s[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.Label < b.Label
	})
}

// assembleDP builds the Result of a data-parallel run: replica 0's view for
// the symmetric per-replica fields (pool usage, layer stats, policy
// metadata), aggregates for the traffic counters, and per-replica detail in
// Devices.
func assembleDP(reps []*runtime, cfg Config, winStart, winEnd sim.Time) *Result {
	r := reps[0].assemble(winStart, winEnd)
	r.OffloadBytes, r.PrefetchBytes, r.HostPinnedPeak = 0, 0, 0
	r.OffloadRawBytes, r.PrefetchRawBytes = 0, 0
	r.CompressTime, r.DecompressTime = 0, 0
	// Power keeps replica 0's view (replicas are symmetric); Energy, like the
	// traffic counters, aggregates over every replica.
	r.Energy = gpu.EnergyStats{}
	if cfg.CaptureSchedule {
		r.Schedule = nil
		for _, rt := range reps {
			r.Schedule = append(r.Schedule, rt.captureSchedule(winStart, winEnd)...)
		}
		sortSchedule(r.Schedule)
	}

	arStart, arEnd := sim.Time(-1), sim.Time(-1)
	for _, rt := range reps {
		d := rt.deviceResult(winStart, winEnd)
		r.Devices = append(r.Devices, d)
		r.Energy = r.Energy.Add(d.Energy)
		r.OffloadBytes += d.OffloadBytes
		r.PrefetchBytes += d.PrefetchBytes
		r.AllReduceBytes += d.AllReduceBytes
		r.OffloadRawBytes += rt.offRawBytes
		r.PrefetchRawBytes += rt.preRawBytes
		r.CompressTime += rt.compressTime
		r.DecompressTime += rt.decompressTime
		r.HostPinnedPeak += rt.host.Peak()
		for _, eng := range rt.dev.Engines() {
			for _, o := range eng.Ops() {
				if o.Kind != sim.OpCopyP2P || o.End <= winStart || o.Start >= winEnd {
					continue
				}
				if arStart < 0 || o.Start < arStart {
					arStart = o.Start
				}
				if o.End > arEnd {
					arEnd = o.End
				}
			}
		}
	}
	if arEnd > arStart && arStart >= 0 {
		r.AllReduceTime = arEnd - arStart
	}
	r.CompressionRatio = compressionRatio(r.OffloadRawBytes, r.OffloadBytes)
	return r
}

// deviceResult summarizes one replica's measured iteration.
func (e *runtime) deviceResult(winStart, winEnd sim.Time) DeviceResult {
	dr := DeviceResult{Device: e.dev.ID}
	var minS, maxE sim.Time
	first := true
	var computeIv, copyIv []sim.Interval
	for _, eng := range e.dev.Engines() {
		for _, o := range eng.Ops() {
			if o.End <= winStart || o.Start >= winEnd || o.DurationT == 0 {
				continue
			}
			if first || o.Start < minS {
				minS = o.Start
			}
			if o.End > maxE {
				maxE = o.End
			}
			first = false
			switch o.Kind {
			case sim.OpKernel:
				dr.ComputeBusy += o.DurationT
				computeIv = append(computeIv, sim.Interval{Start: o.Start, End: o.End, Op: o})
			case sim.OpCompress, sim.OpDecompress:
				// Codec passes keep their DMA engine busy like any copy and
				// can hide behind compute the same way; they move no wire
				// bytes and never stall on the interconnect.
				dr.CopyBusy += o.DurationT
				dr.CodecBusy += o.DurationT
				copyIv = append(copyIv, sim.Interval{Start: o.Start, End: o.End, Op: o})
			case sim.OpCopyD2H, sim.OpCopyH2D, sim.OpCopyP2P, sim.OpCopyStage:
				dr.CopyBusy += o.DurationT
				copyIv = append(copyIv, sim.Interval{Start: o.Start, End: o.End, Op: o})
				switch o.Kind {
				case sim.OpCopyD2H:
					dr.OffloadBytes += o.BusBytes
				case sim.OpCopyH2D:
					dr.PrefetchBytes += o.BusBytes
				case sim.OpCopyP2P:
					dr.AllReduceBytes += o.BusBytes
				}
				if !e.cfg.PageMigration {
					if stall := o.DurationT - e.cfg.Spec.Link.DMATime(o.BusBytes); stall > 0 {
						dr.ContentionStall += stall
					}
				}
			}
		}
	}
	if !first {
		dr.StepTime = maxE - minS
	}
	if dr.CopyBusy > 0 {
		dr.OverlapEff = float64(overlapTime(copyIv, computeIv)) / float64(dr.CopyBusy)
	}
	dr.OffloadRawBytes = e.offRawBytes
	dr.CompressionRatio = compressionRatio(dr.OffloadRawBytes, dr.OffloadBytes)
	dr.Power, dr.Energy = e.dev.MeasurePowerEnergy(winStart, winEnd)
	return dr
}

// compressionRatio is raw/wire, defaulting to 1 when there is no traffic.
func compressionRatio(raw, wire int64) float64 {
	if wire <= 0 || raw <= 0 {
		return 1
	}
	return float64(raw) / float64(wire)
}

// ReplicaMeans averages the per-replica metrics of a data-parallel result:
// mean step time, mean contention stall and mean overlap efficiency. A
// single-device result has no per-device detail — its transfers never
// contend — so it reports (IterTime, 0, 1).
func (r *Result) ReplicaMeans() (step, stall sim.Time, overlap float64) {
	if len(r.Devices) == 0 {
		return r.IterTime, 0, 1
	}
	for _, d := range r.Devices {
		step += d.StepTime
		stall += d.ContentionStall
		overlap += d.OverlapEff
	}
	n := len(r.Devices)
	return step / sim.Time(n), stall / sim.Time(n), overlap / float64(n)
}

// DeviceImbalance is the compute-load imbalance across a run's devices: the
// maximum per-device compute-busy time over the mean. 1 means perfectly
// balanced — symmetric data-parallel replicas sit there by construction,
// while pipeline stages report how unevenly the partitioner split the
// network. Single-device results report 1.
func (r *Result) DeviceImbalance() float64 {
	if len(r.Devices) == 0 {
		return 1
	}
	var total, max sim.Time
	for _, d := range r.Devices {
		total += d.ComputeBusy
		if d.ComputeBusy > max {
			max = d.ComputeBusy
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(r.Devices))
	return float64(max) / mean
}

// overlapTime returns the total time the intervals of a spend inside the
// union of the intervals of b.
func overlapTime(a, b []sim.Interval) sim.Time {
	merged := mergeIntervals(b)
	var total sim.Time
	for _, iv := range a {
		for _, m := range merged {
			lo, hi := iv.Start, iv.End
			if m.Start > lo {
				lo = m.Start
			}
			if m.End < hi {
				hi = m.End
			}
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// mergeIntervals coalesces intervals into a sorted, disjoint set.
func mergeIntervals(iv []sim.Interval) []sim.Interval {
	if len(iv) == 0 {
		return nil
	}
	s := append([]sim.Interval(nil), iv...)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	out := s[:1]
	for _, x := range s[1:] {
		last := &out[len(out)-1]
		if x.Start <= last.End {
			if x.End > last.End {
				last.End = x.End
			}
			continue
		}
		out = append(out, x)
	}
	return out
}

package core

import (
	"context"
	"errors"
	"fmt"

	"vdnn/internal/dnn"
	"vdnn/internal/memalloc"
)

// Differential sweep evaluation: the structure/pricing split.
//
// Sweep points that differ only in device memory capacity re-derive an
// identical *structure* — network build, execution plan, offload/codec
// decisions, conv algorithm finds, and the whole simulated timeline — because
// capacity feeds back into a static single-device simulation in exactly two
// ways: through allocation failure, and through LargestFree (greedy algorithm
// selection only). BuildStructure therefore runs the configuration once on an
// oracle-sized pool while recording the allocator call sequence
// (memalloc.Trace); Price then evaluates the same configuration at any real
// capacity by replaying that trace — a pure allocator exercise, no
// re-simulation — and reuses the structure's Result wholesale when the replay
// succeeds. The replay's first failure is byte-for-byte the failure a full
// simulation would hit, so untrainable points re-run the real attempt only to
// reproduce the exact failure chain, and reuse the structure as the oracle
// demand report runStatic would otherwise re-simulate.
//
// Everything here is exact, never approximate: a priced Result is
// reflect.DeepEqual to the full simulation's (the sweep engine's equivalence
// tests enforce it). Configurations outside the eligible shape — profilers,
// custom policies, greedy algorithm selection, multi-device, pipeline — fall
// back to the full path.

// StructureShaped reports whether a normalized configuration's simulation is
// capacity-independent apart from allocation success — the eligibility gate
// for differential evaluation. The shape excludes:
//
//   - custom policies (their decision functions are opaque),
//   - profiling policies (vDNN-dyn simulates capacity-dependent cascades),
//   - greedy algorithm selection (it consults the pool's free space),
//   - data-parallel and pipeline runs (several pools per run).
//
// Debug, CaptureSchedule, compression, page migration, prefetch modes and
// weight offloading are all capacity-independent and stay eligible.
func StructureShaped(cfg Config) bool {
	if cfg.Custom != nil || cfg.Policy == VDNNDyn {
		return false
	}
	if cfg.Algo == GreedyAlgo {
		return false
	}
	if cfg.Devices > 1 || cfg.Stages > 1 {
		return false
	}
	return true
}

// ValidateRun runs RunContext's full validation chain without simulating,
// so a caller can separate "invalid configuration" (must take the full path
// for the exact error) from "valid but maybe untrainable".
func ValidateRun(net *dnn.Network, cfg Config) error {
	_, err := validateConfig(net, cfg.WithDefaults())
	return err
}

// Structure is the capacity-independent stage of one configuration: the
// oracle-capacity Result plus the recorded allocator call sequence.
// Res is exactly what RunContext returns for the configuration with
// Oracle=true, at any device capacity — callers may serve it for oracle
// requests directly (it must not be mutated; clone before patching).
type Structure struct {
	Res   *Result
	trace *memalloc.Trace
}

// TraceLen returns the recorded allocator call count (diagnostics).
func (s *Structure) TraceLen() int { return s.trace.Len() }

// BuildStructure simulates cfg on an oracle-sized pool, recording the
// allocator trace. cfg must be structure-shaped and valid; its Oracle flag is
// ignored (the build always runs at oracle capacity).
func BuildStructure(ctx context.Context, net *dnn.Network, cfg Config) (*Structure, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, canceled(ctx)
	}
	cfg = cfg.WithDefaults()
	cfg.Oracle = true
	pol, err := validateConfig(net, cfg)
	if err != nil {
		return nil, err
	}
	if !StructureShaped(cfg) {
		return nil, fmt.Errorf("core: policy %q is not structure-shaped", pol.Name())
	}
	plan, err := buildPlan(net, cfg, pol)
	if err != nil {
		return nil, err
	}
	tr := &memalloc.Trace{}
	res, err := execute(withAllocTrace(ctx, tr), net, cfg, pol, plan)
	if err != nil {
		return nil, err
	}
	return &Structure{Res: res, trace: tr}, nil
}

// Price evaluates cfg — the structure's configuration at a real device
// capacity — by replaying the recorded allocator trace. The bool reports
// whether pricing applied; false means the caller must run the full path
// (the classifier-exceeds-capacity report needs the real failure chain).
// When pricing applies, the Result is byte-identical to runStatic's: the
// structure's Result with the Oracle flag patched on success, or — when the
// replay proves the point untrainable — the real attempt's exact failure
// wrapped around the structure's demand report.
func (s *Structure) Price(ctx context.Context, net *dnn.Network, cfg Config) (*Result, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, false, canceled(ctx)
	}
	cfg = cfg.WithDefaults()
	// The framework (classifier) memory is allocated before the pool is
	// sized and never grows afterward, so the structure's FrameworkBytes is
	// exactly the fw.Used() the real run would subtract from the spec.
	realCap := cfg.Spec.PoolBytes() - s.Res.FrameworkBytes
	if realCap <= 0 {
		return nil, false, nil
	}
	if err := s.trace.Replay(realCap); err == nil {
		r := *s.Res
		r.Oracle = cfg.Oracle
		return &r, true, nil
	}
	// Untrainable at this capacity. The failure's error chain carries
	// iteration/layer context the trace does not record, so run the real
	// attempt once for the exact failure — and serve the structure as the
	// oracle rerun runStatic would otherwise simulate a second time.
	pol, err := cfg.policyImpl()
	if err != nil {
		return nil, false, nil
	}
	plan, err := buildPlan(net, cfg, pol)
	if err != nil {
		return nil, false, nil
	}
	res, runErr := execute(ctx, net, cfg, pol, plan)
	if runErr == nil {
		// The replay and the run disagree — impossible by construction, but
		// the full run's result is authoritative either way.
		return res, true, nil
	}
	if errors.Is(runErr, ErrCanceled) {
		return nil, false, runErr
	}
	r := *s.Res
	r.Oracle = cfg.Oracle
	r.Trainable = false
	r.FailReason = runErr.Error()
	if cfg.Debug {
		var af *AllocFailure
		if errors.As(runErr, &af) {
			r.DebugFreeSpans = af.FreeSpans
		}
	}
	return &r, true, nil
}

// BuildStructureAt simulates cfg at its configured device capacity while
// recording the allocator trace, yielding the sweep point's own Result and
// the capacity-independent Structure from a single simulation — for a
// trainable point the structure comes free with the first sweep point
// instead of costing a separate oracle run, because the simulation of a
// structure-shaped configuration is identical at every capacity it trains
// under. When the point is untrainable at its capacity the failure cuts the
// trace short, so the structure is built at oracle capacity instead —
// exactly the hypothetical-demand rerun runStatic would pay anyway — and
// the Result is the same untrainable report runStatic produces. cfg must be
// structure-shaped and valid, with Oracle unset.
func BuildStructureAt(ctx context.Context, net *dnn.Network, cfg Config) (*Structure, *Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, nil, canceled(ctx)
	}
	cfg = cfg.WithDefaults()
	pol, err := validateConfig(net, cfg)
	if err != nil {
		return nil, nil, err
	}
	if !StructureShaped(cfg) || cfg.Oracle {
		return nil, nil, fmt.Errorf("core: policy %q is not structure-shaped at a real capacity", pol.Name())
	}
	plan, err := buildPlan(net, cfg, pol)
	if err != nil {
		return nil, nil, err
	}
	tr := &memalloc.Trace{}
	res, runErr := execute(withAllocTrace(ctx, tr), net, cfg, pol, plan)
	if runErr == nil {
		oracle := *res
		oracle.Oracle = true
		return &Structure{Res: &oracle, trace: tr}, res, nil
	}
	if errors.Is(runErr, ErrCanceled) {
		return nil, nil, runErr
	}
	st, err := BuildStructure(ctx, net, cfg)
	if err != nil {
		return nil, nil, err
	}
	r := *st.Res
	r.Oracle = cfg.Oracle
	r.Trainable = false
	r.FailReason = runErr.Error()
	if cfg.Debug {
		var af *AllocFailure
		if errors.As(runErr, &af) {
			r.DebugFreeSpans = af.FreeSpans
		}
	}
	return st, &r, nil
}

// allocTraceKey carries a *memalloc.Trace through execute's context to the
// single-device runtime's pool construction.
type allocTraceKey struct{}

func withAllocTrace(ctx context.Context, tr *memalloc.Trace) context.Context {
	return context.WithValue(ctx, allocTraceKey{}, tr)
}

func allocTraceFrom(ctx context.Context) *memalloc.Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(allocTraceKey{}).(*memalloc.Trace)
	return tr
}

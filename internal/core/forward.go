package core

import (
	"fmt"

	"vdnn/internal/cudnnsim"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/sim"
	"vdnn/internal/tensor"
)

// fwdPending is the in-flight state of one layer's forward pass between its
// asynchronous issue and its end-of-layer synchronization.
type fwdPending struct {
	kernel  *sim.Op       // the layer's forward kernel
	offOps  []*sim.Op     // offload transfers launched for this layer
	offBufs []*dnn.Tensor // feature maps released once their offload lands
	offW    *bufState     // offloaded weight buffer (weight-offload extension)
}

// issueForward launches one layer's forward pass asynchronously: vDNN's
// offloads, the output allocation, the workspace and the kernel (Figures 7
// and 9). The end-of-layer synchronization and the release of offloaded
// device copies happen in finishForward, so a multi-replica driver can issue
// the layer on every device before synchronizing any of them.
func (e *runtime) issueForward(l *dnn.Layer) (fwdPending, error) {
	var p fwdPending
	st := &e.stats[l.ID]
	d := e.net.DType

	// 1. Launch offloads for buffers whose last consumer is this layer,
	// plus — under the weight-offloading extension — this layer's weights.
	if e.vdnnManaged() {
		for _, t := range e.plan.OffloadAt[l.ID] {
			if err := e.ensurePinned(t); err != nil {
				return p, err
			}
			bs := e.buf[t]
			op := e.offloadCompressed(fmt.Sprintf("%s(fm%d)", l.Name, t.ID), t, e.mbShare(t.Bytes(d)), bs.lastWrite)
			p.offOps = append(p.offOps, op)
			p.offBufs = append(p.offBufs, t)
			e.lay[l.ID].offloaded = true
			st.Offloaded = true
			st.OffloadBytes += e.mbShare(t.Bytes(d))
		}
		if ws := e.wState[l]; ws != nil && e.offloadsWeights() && !ws.offloaded {
			if ws.pinned == nil {
				r, cost, err := e.host.AllocPinned(l.WeightBytes(d), l.Name+".W.pin")
				if err != nil {
					return p, err
				}
				e.dev.TL.AdvanceHost(cost)
				ws.pinned = r
			}
			// The weights were last written by the previous iteration's SGD
			// update; the transfer must order after it. Weights are dense, so
			// they bypass the codec.
			op := e.dev.Offload("OFF:"+l.Name+".W", l.WeightBytes(d), ws.lastWrite)
			e.offRawBytes += l.WeightBytes(d)
			p.offOps = append(p.offOps, op)
			p.offW = ws
			st.Offloaded = true
			st.OffloadBytes += l.WeightBytes(d)
		}
	}

	// 2. Allocate the output buffer (dynamic policies only; the baseline and
	// classifier buffers are network-wide).
	out := e.buf[l.Output]
	if !l.InPlace && out.block == nil {
		b, err := e.alloc(e.mbShare(l.Output.Bytes(d)), memalloc.KindFeatureMap, fmt.Sprintf("fm%d", l.Output.ID))
		if err != nil {
			return p, err
		}
		out.block = b
	}

	// 3. Workspace and kernel.
	var algos LayerAlgos
	var wsBytes int64
	var wsBlock *memalloc.Block
	if l.Kind == dnn.Conv {
		algos = e.pickAlgos(l)
		st.AlgoFwd = algos.Fwd
		g := l.ConvGeom(d)
		wsBytes = algos.Fwd.Workspace(g, cudnnsim.Fwd)
		if wsBytes > 0 && e.vdnnManaged() {
			b, err := e.alloc(wsBytes, memalloc.KindWorkspace, l.Name+".ws")
			if err != nil {
				return p, err
			}
			wsBlock = b
		}
		if e.sharedWS != nil && wsBytes > e.sharedWS.Size {
			return p, fmt.Errorf("core: workspace %d exceeds shared buffer %d", wsBytes, e.sharedWS.Size)
		}
	}
	st.FwdWSBytes = wsBytes

	cost := e.mbCost(e.fwdCost(l, algos))
	deps := make([]*sim.Op, 0, len(l.Inputs))
	for _, t := range l.Inputs {
		if e.buf[t].block == nil {
			return p, fmt.Errorf("core: fwd input fm%d not resident", t.ID)
		}
		deps = append(deps, e.buf[t].lastWrite)
	}
	op := e.dev.Kernel("FWD:"+l.Name, cost.Dur, cost.Flops, cost.DRAMBytes, deps...)
	e.buf[l.Output].lastWrite = op
	e.recordFwd(l, st, cost, op, wsBytes)
	p.kernel = op

	if wsBlock != nil {
		// Stream-ordered free: later allocations may reuse the workspace
		// because they serve kernels behind this one on stream_compute.
		e.pool.Free(wsBlock, e.now())
	}
	return p, nil
}

// finishForward performs the end-of-layer synchronization when an offload is
// in flight, then releases the offloaded device copies (Section III-B).
func (e *runtime) finishForward(p fwdPending) {
	if len(p.offOps) == 0 {
		return
	}
	e.dev.TL.Wait(p.kernel)
	for _, o := range p.offOps {
		e.dev.TL.Wait(o)
	}
	for _, t := range p.offBufs {
		bs := e.buf[t]
		e.pool.Free(bs.block, e.now())
		bs.block = nil
		bs.offloaded = true
	}
	if p.offW != nil {
		e.pool.Free(p.offW.block, e.now())
		p.offW.block = nil
		p.offW.offloaded = true
	}
}

// finishForwardAsync is the pipeline trainer's end-of-layer step: the same
// releases as finishForward, but without blocking the shared host thread —
// the device copies are scheduled to free once the kernel and the offloads
// have completed, so one stage's synchronization never stalls the issue of
// another stage's work.
func (e *runtime) finishForwardAsync(p fwdPending) {
	if len(p.offOps) == 0 {
		return
	}
	rel := p.kernel.End
	for _, o := range p.offOps {
		if o.End > rel {
			rel = o.End
		}
	}
	for _, t := range p.offBufs {
		bs := e.buf[t]
		e.pool.Free(bs.block, rel)
		bs.block = nil
		bs.offloaded = true
	}
	if p.offW != nil {
		e.pool.Free(p.offW.block, rel)
		p.offW.block = nil
		p.offW.offloaded = true
	}
}

// recordFwd updates the per-layer stats from a forward kernel.
func (e *runtime) recordFwd(l *dnn.Layer, st *LayerStats, c cudnnsim.Cost, op *sim.Op, wsBytes int64) {
	st.FwdTime += c.Dur
	if st.FwdEnd < op.End {
		st.FwdEnd = op.End
	}
	if e.fwdStarts[l.ID] == 0 || op.Start < e.fwdStarts[l.ID] {
		e.fwdStarts[l.ID] = op.Start
	}
	if c.Dur > 0 {
		if bw := float64(c.DRAMBytes) / c.Dur.Seconds(); bw > st.FwdBW {
			st.FwdBW = bw
		}
	}
	ws := st.XBytes + st.WeightBytes + wsBytes + l.MaskBytes(e.net.DType)
	if !l.InPlace {
		ws += st.YBytes
	}
	if ws > st.FwdWorkingSet {
		st.FwdWorkingSet = ws
	}
}

// fwdCost computes the forward kernel cost of a layer.
func (e *runtime) fwdCost(l *dnn.Layer, algos LayerAlgos) cudnnsim.Cost {
	return fwdKernelCost(e.cfg.Spec, e.net.DType, l, algos)
}

// fwdKernelCost is the forward kernel cost model, also consulted by the
// pipeline partitioner's per-layer cost estimate.
func fwdKernelCost(spec gpu.Spec, d tensor.DType, l *dnn.Layer, algos LayerAlgos) cudnnsim.Cost {
	switch l.Kind {
	case dnn.Conv:
		return cudnnsim.ConvCost(spec, l.ConvGeom(d), algos.Fwd, cudnnsim.Fwd)
	case dnn.ReLU:
		return cudnnsim.ActivationFwdCost(spec, l.In().Bytes(d))
	case dnn.Pool:
		return cudnnsim.PoolFwdCost(spec, l.In().Bytes(d), l.Output.Bytes(d))
	case dnn.LRN:
		return cudnnsim.LRNFwdCost(spec, l.In().Bytes(d))
	case dnn.Concat:
		return cudnnsim.ConcatCost(spec, l.Output.Bytes(d))
	case dnn.Add:
		// Read every branch, write the sum.
		return cudnnsim.ElementwiseCost(spec, l.Output.Bytes(d), len(l.Inputs)+1)
	case dnn.BatchNorm:
		// Two passes for the statistics, one normalize-and-write pass.
		return cudnnsim.ElementwiseCost(spec, l.In().Bytes(d), 3)
	case dnn.FC:
		in := l.In().Shape
		return cudnnsim.GEMMCost(spec, int64(l.FC.OutFeatures), in.PerSample(), int64(in.N), d.Size())
	case dnn.Dropout:
		return cudnnsim.DropoutFwdCost(spec, l.In().Bytes(d), l.MaskBytes(d))
	case dnn.SoftmaxLoss:
		return cudnnsim.SoftmaxCost(spec, l.In().Bytes(d))
	}
	panic("core: unknown layer kind")
}

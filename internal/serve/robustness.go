package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vdnn"
	"vdnn/internal/chaos"
)

// The robustness layer of the daemon: admission control (a bounded queue in
// front of a concurrency limit), per-request deadlines, panic isolation,
// readiness distinct from liveness, and a structured error taxonomy.
//
// Error taxonomy — every error body is {"error": "...", "code": "..."}:
//
//	400 invalid     the request itself is malformed or names the impossible
//	408 deadline    the request's deadline fired before the result was ready
//	499 canceled    the client went away; work was canceled mid-simulation
//	500 internal    a worker panicked (isolated, process keeps serving)
//	500 injected    a chaos-injected fault (tests only)
//	503 overloaded  queue full — fast fail, Retry-After set, safe to retry
//	503 draining    shutdown in progress — Retry-After set, try another node
//
// 499 follows the nginx convention for "client closed request": the client
// is gone, so the status is effectively a log/metrics artifact, but keeping
// it distinct from 408/500 keeps the taxonomy honest under load analysis.

// StatusClientClosedRequest is the non-standard 499 used when the client
// disconnects before its simulation completes.
const StatusClientClosedRequest = 499

// Option configures New beyond its defaults.
type Option func(*options)

type options struct {
	maxConcurrent   int
	queueDepth      int
	defaultDeadline time.Duration
	maxDeadline     time.Duration
	injector        *chaos.Injector
	jobWorkers      int
	jobQueueDepth   int
	logger          *slog.Logger
	store           *vdnn.Store
}

// WithMaxConcurrent bounds how many simulation requests (simulate or sweep)
// execute at once; further admitted requests wait in the bounded queue.
// Defaults to the simulator's parallelism. n <= 0 keeps the default.
func WithMaxConcurrent(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.maxConcurrent = n
		}
	}
}

// WithQueueDepth bounds how many admitted requests may wait for an execution
// slot beyond the MaxConcurrent already running; a request arriving past
// that fails fast with 503 + Retry-After instead of queueing unboundedly.
// Default 4 × MaxConcurrent. n < 0 keeps the default; 0 disables queueing
// (beyond the running set) entirely.
func WithQueueDepth(n int) Option {
	return func(o *options) {
		if n >= 0 {
			o.queueDepth = n
		}
	}
}

// WithDeadlines sets the server-side default deadline applied to every
// simulation request that does not carry its own deadline_ms, and the
// ceiling client-supplied deadlines are clamped to. Zero def disables the
// default; zero max disables the clamp.
func WithDeadlines(def, max time.Duration) Option {
	return func(o *options) {
		o.defaultDeadline = def
		o.maxDeadline = max
	}
}

// WithChaos wires a fault injector around the handler chain — inside the
// panic-isolation middleware, so injected panics exercise the real recovery
// path. Test harness only.
func WithChaos(in *chaos.Injector) Option {
	return func(o *options) { o.injector = in }
}

// WithJobWorkers sets how many async jobs (POST /v1/jobs) execute
// concurrently. Each running job occupies one of the server's execution
// slots while it simulates, so jobs and synchronous requests share one
// concurrency budget. Default: half of MaxConcurrent, at least 1. n <= 0
// keeps the default.
func WithJobWorkers(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.jobWorkers = n
		}
	}
}

// WithJobQueueDepth bounds how many accepted jobs may wait for a job worker;
// a submission arriving past that fails fast with 503 + Retry-After.
// Default 16. n < 0 keeps the default; 0 admits only as many jobs as there
// are idle workers.
func WithJobQueueDepth(n int) Option {
	return func(o *options) {
		if n >= 0 {
			o.jobQueueDepth = n
		}
	}
}

// WithLogger routes the server's structured request logs (one slog record
// per request, with request ids) and the job runner's lifecycle logs to l.
// Default: discard.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) {
		if l != nil {
			o.logger = l
		}
	}
}

// WithStore tells the server which persistent result store its simulator
// was configured with, so store counters appear in GET /v1/stats and
// /metrics. It does not install the store on the simulator — pass it to
// vdnn.WithStore for that.
func WithStore(st *vdnn.Store) Option {
	return func(o *options) { o.store = st }
}

// admission is the bounded job queue: queue admits at most
// maxConcurrent+queueDepth requests into the system (running + waiting),
// slots lets maxConcurrent of them execute.
type admission struct {
	slots chan struct{}
	queue chan struct{}
}

func newAdmission(maxConcurrent, queueDepth int) *admission {
	return &admission{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxConcurrent+queueDepth),
	}
}

// tryEnter claims a queue position without blocking; false means the system
// is full and the caller should fast-fail.
func (a *admission) tryEnter() bool {
	select {
	case a.queue <- struct{}{}:
		return true
	default:
		return false
	}
}

// acquire waits for an execution slot under the request's context.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) releaseSlot() { <-a.slots }
func (a *admission) leave()       { <-a.queue }

// ServeStats counts the admission and failure behavior of the HTTP layer;
// exposed under "serve" on GET /v1/stats.
type ServeStats struct {
	// InFlight is the number of simulation requests currently admitted
	// (queued or executing) — a gauge, not a counter.
	InFlight int64 `json:"in_flight"`
	// Admitted counts simulation requests that entered the system.
	Admitted int64 `json:"admitted"`
	// Completed counts simulation requests answered 2xx.
	Completed int64 `json:"completed"`
	// Canceled counts requests abandoned by their client (499).
	Canceled int64 `json:"canceled"`
	// DeadlineExceeded counts requests whose deadline fired (408).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// RejectedOverload counts fast-fail 503s from a full queue.
	RejectedOverload int64 `json:"rejected_overload"`
	// RejectedDraining counts 503s answered while draining.
	RejectedDraining int64 `json:"rejected_draining"`
	// Panics counts worker panics converted to 500s.
	Panics int64 `json:"panics"`
}

// serveCounters is the atomic backing store of ServeStats.
type serveCounters struct {
	inFlight         atomic.Int64
	admitted         atomic.Int64
	completed        atomic.Int64
	canceled         atomic.Int64
	deadlineExceeded atomic.Int64
	rejectedOverload atomic.Int64
	rejectedDraining atomic.Int64
	panics           atomic.Int64
}

func (c *serveCounters) snapshot() ServeStats {
	return ServeStats{
		InFlight:         c.inFlight.Load(),
		Admitted:         c.admitted.Load(),
		Completed:        c.completed.Load(),
		Canceled:         c.canceled.Load(),
		DeadlineExceeded: c.deadlineExceeded.Load(),
		RejectedOverload: c.rejectedOverload.Load(),
		RejectedDraining: c.rejectedDraining.Load(),
		Panics:           c.panics.Load(),
	}
}

// StartDrain flips the server into drain mode: /readyz answers 503 so load
// balancers stop routing here, and new simulation requests fast-fail with
// 503 "draining". Requests already admitted run to completion (or until the
// process's drain budget cancels them). Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns a snapshot of the HTTP layer's counters.
func (s *Server) Stats() ServeStats { return s.counters.snapshot() }

// requestContext derives the execution context of one simulation request:
// the client's context (so disconnects cancel work), bounded by the
// effective deadline — the client's deadline_ms when given, the server
// default otherwise, clamped to the configured maximum either way.
func (s *Server) requestContext(parent context.Context, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.defaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if s.maxDeadline > 0 && (d <= 0 || d > s.maxDeadline) {
		d = s.maxDeadline
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// admit runs the admission path for one simulation request: drain check,
// bounded queue entry, then a slot wait under ctx. On success it returns a
// release function; on failure it has already written the response.
func (s *Server) admit(w http.ResponseWriter, ctx context.Context) (release func(), ok bool) {
	if s.draining.Load() {
		s.counters.rejectedDraining.Add(1)
		w.Header().Set("Retry-After", "5")
		writeErrorCode(w, http.StatusServiceUnavailable, "draining",
			fmt.Errorf("shutting down: not accepting new simulations"))
		return nil, false
	}
	if !s.adm.tryEnter() {
		s.counters.rejectedOverload.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, "overloaded",
			fmt.Errorf("queue full (%d executing + %d waiting): retry with backoff", cap(s.adm.slots), cap(s.adm.queue)-cap(s.adm.slots)))
		return nil, false
	}
	s.counters.inFlight.Add(1)
	s.counters.admitted.Add(1)
	if err := s.adm.acquire(ctx); err != nil {
		s.adm.leave()
		s.counters.inFlight.Add(-1)
		s.writeCtxError(w, err)
		return nil, false
	}
	return func() {
		s.adm.releaseSlot()
		s.adm.leave()
		s.counters.inFlight.Add(-1)
	}, true
}

// writeCtxError maps a context error onto the taxonomy: deadline → 408,
// cancellation (client gone, or shutdown hard-cancel) → 499.
func (s *Server) writeCtxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.counters.deadlineExceeded.Add(1)
		writeErrorCode(w, http.StatusRequestTimeout, "deadline", err)
		return
	}
	s.counters.canceled.Add(1)
	writeErrorCode(w, StatusClientClosedRequest, "canceled", err)
}

// simErrorStatus maps a Run/RunBatch error onto the taxonomy. The Run
// contract makes plain errors invalid configurations (client-supplied here →
// 400); context outcomes and panics are distinguished first. Shared by the
// synchronous error writer and the async job runner, so a failed job point
// reports the same code its synchronous twin would.
func simErrorStatus(err error) (status int, code string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "deadline"
	case errors.Is(err, context.Canceled), errors.Is(err, vdnn.ErrCanceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, chaos.ErrInjected):
		return http.StatusInternalServerError, "injected"
	case strings.Contains(err.Error(), "panic"):
		return http.StatusInternalServerError, "internal"
	default:
		return http.StatusBadRequest, "invalid"
	}
}

// writeSimError classifies a Run/RunBatch error for a synchronous response.
func (s *Server) writeSimError(w http.ResponseWriter, err error) {
	status, code := simErrorStatus(err)
	switch code {
	case "deadline":
		s.counters.deadlineExceeded.Add(1)
	case "canceled":
		s.counters.canceled.Add(1)
	}
	writeErrorCode(w, status, code, err)
}

// recoverer is the panic-isolation middleware: a panic anywhere below it —
// handler code, a chaos injection, a simulation bug that escaped the
// engine's own recovery — becomes a structured 500 instead of tearing down
// the connection (or, for panics on ancillary goroutines we own, the
// process).
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.counters.panics.Add(1)
				writeErrorCode(w, http.StatusInternalServerError, "internal",
					fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeErrorCode(w, http.StatusServiceUnavailable, "draining", fmt.Errorf("draining"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// validDeadlineMS rejects negative client deadlines (and absurdly large
// ones, which would overflow time.Duration math).
func validDeadlineMS(ms int64) error {
	const maxMS = int64(time.Hour/time.Millisecond) * 24
	if ms < 0 || ms > maxMS {
		return fmt.Errorf("deadline_ms must be in [0, %d], got %s", maxMS, strconv.FormatInt(ms, 10))
	}
	return nil
}

package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vdnn"
)

// The async job layer: a sweep submitted to POST /v1/jobs is accepted with
// 202 + an id, executed by a bounded pool of job workers, and its points
// stream back incrementally from GET /v1/jobs/{id} as NDJSON. Jobs share
// the server's execution budget with synchronous requests — a running job
// holds one admission slot while it simulates — and obey the same drain
// contract: draining rejects new submissions (503 "draining") but finishes
// every job already accepted. DELETE /v1/jobs/{id} cancels a job through
// the engine's ref-counted cancellation: queued points are skipped,
// the in-flight simulation stops at its next per-layer check (unless a
// coalesced synchronous request still wants it).

const (
	// defaultJobQueueDepth bounds accepted-but-not-started jobs.
	defaultJobQueueDepth = 16
	// maxRetainedJobs bounds the finished-job history kept for late GETs;
	// the oldest finished jobs are pruned first, at submission time.
	maxRetainedJobs = 256
)

// JobStatus is the lifecycle of an async job.
type JobStatus string

const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobCanceled JobStatus = "canceled"
)

// JobAccepted is the 202 body of POST /v1/jobs.
type JobAccepted struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Points int       `json:"points"`
	// Stream is the path streaming this job's results (NDJSON).
	Stream string `json:"stream"`
}

// JobEvent is one NDJSON line of GET /v1/jobs/{id}: a completed sweep point
// ("point", in job order, with either a result or an error), then exactly
// one trailing "summary".
type JobEvent struct {
	Type  string `json:"type"` // "point"
	Index int    `json:"index"`
	// Result is the point's simulation result; nil when the point failed.
	Result *SimResponse `json:"result,omitempty"`
	// Error and Code describe a failed or skipped point, using the same
	// code taxonomy as synchronous responses ("canceled", "deadline", ...).
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// JobSummary is the final NDJSON line of a job stream, and the body of a
// non-streaming status lookup.
type JobSummary struct {
	Type      string    `json:"type"` // "summary"
	ID        string    `json:"id"`
	Status    JobStatus `json:"status"`
	Points    int       `json:"points"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	Canceled  int       `json:"canceled"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// JobStats counts the job subsystem; exposed under "jobs" on GET /v1/stats
// and as vdnn_jobs_* on /metrics.
type JobStats struct {
	// Workers is the configured job-worker count.
	Workers int `json:"workers"`
	// QueueDepth is the number of accepted jobs waiting for a worker — a
	// gauge.
	QueueDepth int64 `json:"queue_depth"`
	// Running is the number of jobs currently executing — a gauge.
	Running int64 `json:"running"`
	// Submitted counts accepted jobs; Rejected counts submissions refused
	// for a full job queue (503 "overloaded"). Draining-time rejections are
	// counted in ServeStats.RejectedDraining alongside synchronous ones.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	// Completed counts jobs that ran to the end of their point list;
	// Canceled counts jobs finalized after their context was canceled.
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	// Per-point outcomes across all jobs.
	PointsCompleted int64 `json:"points_completed"`
	PointsFailed    int64 `json:"points_failed"`
	PointsCanceled  int64 `json:"points_canceled"`
	// Retained is the number of jobs currently addressable by GET — a gauge.
	Retained int `json:"retained"`
}

// jobPoint is one sweep point's slot: the runner fills resp/errMsg/code and
// then closes done; streamers read only after done is closed.
type jobPoint struct {
	done   chan struct{}
	resp   *SimResponse
	errMsg string
	code   string
}

// job is one accepted sweep.
type job struct {
	id        string
	submitted time.Time

	reqs  []SimRequest
	batch []vdnn.BatchJob

	ctx    context.Context
	cancel context.CancelFunc

	points []jobPoint
	doneCh chan struct{} // closed at finalization, after the last point

	mu        sync.Mutex
	status    JobStatus
	finished  time.Time
	completed int
	failed    int
	canceled  int
}

func (j *job) summary() JobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobSummary{
		Type:      "summary",
		ID:        j.id,
		Status:    j.status,
		Points:    len(j.points),
		Completed: j.completed,
		Failed:    j.failed,
		Canceled:  j.canceled,
		ElapsedMS: float64(end.Sub(j.submitted)) / float64(time.Millisecond),
	}
}

// jobRunner owns the worker pool, the pending queue and the job registry.
type jobRunner struct {
	s          *Server
	workers    int
	root       context.Context
	cancelRoot context.CancelFunc
	pending    chan *job

	mu         sync.Mutex
	cond       *sync.Cond // broadcast when unfinished decrements
	closed     bool
	unfinished int
	byID       map[string]*job
	order      []string // insertion order, for retention pruning

	idPrefix string
	idSeq    atomic.Int64

	queued          atomic.Int64
	running         atomic.Int64
	submitted       atomic.Int64
	rejected        atomic.Int64
	completed       atomic.Int64
	canceled        atomic.Int64
	pointsCompleted atomic.Int64
	pointsFailed    atomic.Int64
	pointsCanceled  atomic.Int64
}

func newJobRunner(s *Server, workers, queueDepth int) *jobRunner {
	var pfx [4]byte
	_, _ = rand.Read(pfx[:])
	root, cancel := context.WithCancel(context.Background())
	jr := &jobRunner{
		s:          s,
		workers:    workers,
		root:       root,
		cancelRoot: cancel,
		pending:    make(chan *job, queueDepth),
		byID:       make(map[string]*job),
		idPrefix:   hex.EncodeToString(pfx[:]),
	}
	jr.cond = sync.NewCond(&jr.mu)
	// Workers start eagerly: their goroutines belong to the server's
	// baseline, not to any request, which keeps goroutine accounting flat
	// under churn.
	for i := 0; i < workers; i++ {
		go jr.worker()
	}
	return jr
}

func (jr *jobRunner) stats() JobStats {
	jr.mu.Lock()
	retained := len(jr.byID)
	jr.mu.Unlock()
	return JobStats{
		Workers:         jr.workers,
		QueueDepth:      jr.queued.Load(),
		Running:         jr.running.Load(),
		Submitted:       jr.submitted.Load(),
		Rejected:        jr.rejected.Load(),
		Completed:       jr.completed.Load(),
		Canceled:        jr.canceled.Load(),
		PointsCompleted: jr.pointsCompleted.Load(),
		PointsFailed:    jr.pointsFailed.Load(),
		PointsCanceled:  jr.pointsCanceled.Load(),
		Retained:        retained,
	}
}

func (jr *jobRunner) get(id string) *job {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.byID[id]
}

// submit registers and enqueues a job. It returns an error message suitable
// for a 503 "overloaded" body when the job queue is full, and ok=false.
func (jr *jobRunner) submit(j *job) (ok bool) {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	if jr.closed {
		return false
	}
	select {
	case jr.pending <- j:
	default:
		return false
	}
	jr.queued.Add(1)
	jr.submitted.Add(1)
	jr.unfinished++
	jr.pruneLocked()
	jr.byID[j.id] = j
	jr.order = append(jr.order, j.id)
	return true
}

// pruneLocked drops the oldest FINISHED jobs beyond the retention bound.
// Unfinished jobs are never pruned; they are bounded by queue + workers.
func (jr *jobRunner) pruneLocked() {
	for len(jr.byID) >= maxRetainedJobs {
		pruned := false
		for i, id := range jr.order {
			j := jr.byID[id]
			if j == nil {
				jr.order = append(jr.order[:i], jr.order[i+1:]...)
				pruned = true
				break
			}
			j.mu.Lock()
			finished := j.status == JobDone || j.status == JobCanceled
			j.mu.Unlock()
			if finished {
				delete(jr.byID, id)
				jr.order = append(jr.order[:i], jr.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return
		}
	}
}

func (jr *jobRunner) worker() {
	for j := range jr.pending {
		jr.queued.Add(-1)
		jr.run(j)
	}
}

// run executes one job's points in order, sequentially: order is what makes
// the NDJSON stream incremental, and cross-job parallelism comes from the
// worker pool. The job holds one admission execution slot for its whole
// run, so jobs and synchronous requests share the concurrency budget.
func (jr *jobRunner) run(j *job) {
	jr.running.Add(1)
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()

	slot := jr.s.adm.acquire(j.ctx) == nil
	for i := range j.points {
		p := &j.points[i]
		if err := j.ctx.Err(); err != nil {
			// Canceled (DELETE, drain hard-cancel) or past its deadline:
			// skip the remaining points, marking each with the taxonomy
			// code so stream consumers see why.
			_, p.code = simErrorStatus(err)
			p.errMsg = fmt.Sprintf("job %s: %v", j.id, err)
			jr.finishPoint(j, p)
			continue
		}
		res, err := jr.s.sim.Run(j.ctx, j.batch[i].Net, j.batch[i].Cfg)
		if err == nil {
			var out SimResponse
			if out, err = response(j.reqs[i], res); err == nil {
				p.resp = &out
			}
		}
		if err != nil {
			_, p.code = simErrorStatus(err)
			p.errMsg = err.Error()
		}
		jr.finishPoint(j, p)
	}

	if slot {
		jr.s.adm.releaseSlot()
	}
	j.mu.Lock()
	if j.ctx.Err() != nil && j.canceled > 0 {
		j.status = JobCanceled
	} else {
		j.status = JobDone
	}
	final := j.status
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the job context's resources
	close(j.doneCh)
	if final == JobCanceled {
		jr.canceled.Add(1)
	} else {
		jr.completed.Add(1)
	}
	jr.running.Add(-1)
	jr.s.log.Info("job finished", "job", j.id, "status", string(final),
		"points", len(j.points))

	jr.mu.Lock()
	jr.unfinished--
	jr.cond.Broadcast()
	jr.mu.Unlock()
}

// finishPoint publishes one point's outcome and updates the tallies.
func (jr *jobRunner) finishPoint(j *job, p *jobPoint) {
	j.mu.Lock()
	switch {
	case p.code == "":
		j.completed++
		jr.pointsCompleted.Add(1)
	case p.code == "canceled" || p.code == "deadline":
		j.canceled++
		jr.pointsCanceled.Add(1)
	default:
		j.failed++
		jr.pointsFailed.Add(1)
	}
	j.mu.Unlock()
	close(p.done)
}

// drainJobs blocks until every accepted job has finished, or ctx fires.
func (jr *jobRunner) drainJobs(ctx context.Context) error {
	done := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		// Wake the waiter so it can observe ctx and give up.
		jr.mu.Lock()
		jr.cond.Broadcast()
		jr.mu.Unlock()
	})
	defer stop()
	go func() {
		jr.mu.Lock()
		for jr.unfinished > 0 && ctx.Err() == nil {
			jr.cond.Wait()
		}
		jr.mu.Unlock()
		close(done)
	}()
	<-done
	return ctx.Err()
}

// close stops accepting jobs and cancels everything in flight.
func (jr *jobRunner) close() {
	jr.mu.Lock()
	if !jr.closed {
		jr.closed = true
		close(jr.pending)
	}
	jr.mu.Unlock()
	jr.cancelRoot()
}

// DrainJobs waits until every accepted async job has finished — the
// complement of StartDrain, which stops new submissions. Returns ctx's
// error if it fires first.
func (s *Server) DrainJobs(ctx context.Context) error { return s.jobs.drainJobs(ctx) }

// CancelJobs cancels every queued and running async job (they finalize as
// "canceled", with their pending points marked canceled) and stops the job
// workers. Used by the daemon's shutdown path after the drain budget
// expires, and by tests.
func (s *Server) CancelJobs() { s.jobs.close() }

// Close releases the server's background resources (the job workers). The
// server must not serve requests afterwards.
func (s *Server) Close() { s.jobs.close() }

// --- HTTP handlers ----------------------------------------------------------

// handleJobSubmit is POST /v1/jobs: a sweep body (same schema as /v1/sweep),
// answered 202 with a job id before any simulation runs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.counters.rejectedDraining.Add(1)
		w.Header().Set("Retry-After", "5")
		writeErrorCode(w, http.StatusServiceUnavailable, "draining",
			fmt.Errorf("shutting down: not accepting new jobs"))
		return
	}
	reqs, batch, deadlineMS, ok := s.parseSweep(w, r)
	if !ok {
		return
	}

	// The job's context roots at the runner (so shutdown can hard-cancel
	// it), not at the HTTP request, which ends at the 202. The deadline —
	// client-supplied, clamped to the server maximum, which also caps
	// deadline-less jobs — covers queue wait plus execution.
	d := s.maxDeadline
	if deadlineMS > 0 {
		if cd := time.Duration(deadlineMS) * time.Millisecond; d <= 0 || cd < d {
			d = cd
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if d > 0 {
		ctx, cancel = context.WithTimeout(s.jobs.root, d)
	} else {
		ctx, cancel = context.WithCancel(s.jobs.root)
	}

	j := &job{
		id:        fmt.Sprintf("j-%s-%d", s.jobs.idPrefix, s.jobs.idSeq.Add(1)),
		submitted: time.Now(),
		reqs:      reqs,
		batch:     batch,
		ctx:       ctx,
		cancel:    cancel,
		points:    make([]jobPoint, len(batch)),
		doneCh:    make(chan struct{}),
		status:    JobQueued,
	}
	for i := range j.points {
		j.points[i].done = make(chan struct{})
	}
	if !s.jobs.submit(j) {
		cancel()
		s.jobs.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, "overloaded",
			fmt.Errorf("job queue full (%d workers + %d waiting): retry with backoff", s.jobs.workers, cap(s.jobs.pending)))
		return
	}
	s.log.Info("job accepted", "job", j.id, "points", len(j.points))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(JobAccepted{
		ID:     j.id,
		Status: JobQueued,
		Points: len(j.points),
		Stream: "/v1/jobs/" + j.id,
	})
}

// handleJobStream is GET /v1/jobs/{id}: an NDJSON stream of the job's
// completed points, in order, as they finish — then one summary line. A job
// that already finished streams everything immediately, so the endpoint
// doubles as the result fetch.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeErrorCode(w, http.StatusNotFound, "unknown_job",
			fmt.Errorf("unknown job %q (finished jobs are retained for the last %d)", r.PathValue("id"), maxRetainedJobs))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w) // no indent: one event per line
	for i := range j.points {
		select {
		case <-j.points[i].done:
		case <-r.Context().Done():
			return // client gone; the job itself keeps running
		}
		p := &j.points[i]
		ev := JobEvent{Type: "point", Index: i, Result: p.resp, Error: p.errMsg, Code: p.code}
		if err := enc.Encode(ev); err != nil {
			return
		}
		_ = rc.Flush()
	}
	select {
	case <-j.doneCh:
	case <-r.Context().Done():
		return
	}
	_ = enc.Encode(j.summary())
}

// handleJobDelete is DELETE /v1/jobs/{id}: cancel. Queued points are
// skipped; the in-flight simulation stops at its next per-layer check via
// the engine's ref-counted cancellation (it keeps running only if a
// synchronous request coalesced onto it and still wants the result).
// Canceling a finished job is a no-op answered with its final summary.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeErrorCode(w, http.StatusNotFound, "unknown_job",
			fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	j.cancel()
	s.log.Info("job cancel requested", "job", j.id)
	writeJSON(w, j.summary())
}

// handleJobList is GET /v1/jobs: the summaries of every retained job, in
// submission order.
func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	s.jobs.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs.order))
	for _, id := range s.jobs.order {
		if j := s.jobs.byID[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.jobs.mu.Unlock()
	out := struct {
		Jobs []JobSummary `json:"jobs"`
	}{Jobs: make([]JobSummary, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.summary())
	}
	writeJSON(w, out)
}

// Package serve implements the vdnn-serve HTTP daemon: a JSON API that
// serves simulations from a shared vdnn.Simulator. Every request is answered
// from the simulator's deduplicated result cache — repeated and concurrent
// identical requests cost one simulation — and networks are memoized by
// (name, batch) so cache keys stay stable across requests.
//
// Endpoints:
//
//	POST   /v1/simulate   one configuration        -> SimResponse
//	POST   /v1/sweep      {"jobs": [...]} batch    -> SweepResponse
//	POST   /v1/jobs       async sweep              -> 202 JobAccepted
//	GET    /v1/jobs       retained job summaries   -> {"jobs": [...]}
//	GET    /v1/jobs/{id}  NDJSON point stream      -> JobEvent* JobSummary
//	DELETE /v1/jobs/{id}  cancel                   -> JobSummary
//	POST   /v1/plan       design-space search      -> PlanResponse
//	GET    /v1/networks   model/device/link names  -> CatalogResponse
//	GET    /v1/catalog    same body: the full hardware catalog, including
//	                      structured backend entries (memory kind, link class)
//	GET    /v1/stats      cache + store + serve + job counters
//	GET    /metrics       Prometheus text exposition
//	GET    /healthz       liveness                 -> "ok"
//	GET    /readyz        readiness (503 draining) -> "ready"
//
// Simulation requests pass through admission control (bounded queue, 503 +
// Retry-After when full) and run under a per-request deadline (server
// default, or the request's deadline_ms clamped to the server maximum).
// Errors are JSON bodies {"error": "...", "code": "..."} with a 4xx/5xx
// status; the taxonomy is documented in robustness.go.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"vdnn"
	"vdnn/internal/metrics"
)

// SimRequest is the wire form of one simulation. GPUs and links are
// addressed by registry name (see vdnn.GPUNames / vdnn.LinkNames plus any
// simulator-scoped entries); enums use their text tokens ("vdnn-dyn", "p",
// "jit"). Zero fields take the documented defaults.
type SimRequest struct {
	// Network is a benchmark network name (see GET /v1/networks). Required.
	Network string `json:"network"`
	// Batch is the minibatch size. Default 64.
	Batch int `json:"batch,omitempty"`

	// GPU names the simulated device. Default "titanx".
	GPU string `json:"gpu,omitempty"`
	// GPUMemGB overrides the device's physical memory, in GiB.
	GPUMemGB float64 `json:"gpu_mem_gb,omitempty"`
	// Link overrides the device's host interconnect by registry name.
	Link string `json:"link,omitempty"`

	// Policy selects the memory manager. Default "vdnn-dyn".
	Policy vdnn.Policy `json:"policy,omitempty"`
	// Algo selects the convolution algorithm mode. Default "p" unless the
	// policy is the dynamic one (which profiles its own).
	Algo vdnn.AlgoMode `json:"algo,omitempty"`
	// Prefetch selects the prefetch schedule. Default "jit".
	Prefetch vdnn.PrefetchMode `json:"prefetch,omitempty"`

	Oracle         bool `json:"oracle,omitempty"`
	PageMigration  bool `json:"page_migration,omitempty"`
	OffloadWeights bool `json:"offload_weights,omitempty"`
	// HostGB sizes host DRAM in GiB (default 64, the paper's testbed).
	HostGB float64 `json:"host_gb,omitempty"`

	// Codec enables the compressing DMA engine ("none", "zvc", "rle";
	// default none): offload transfers shrink with activation sparsity and
	// prefetches pay a decompression pass.
	Codec vdnn.Codec `json:"codec,omitempty"`
	// Sparsity names the activation-sparsity profile the codec assumes
	// ("cdma", "flat50", "dense"; default cdma when a codec is active).
	Sparsity string `json:"sparsity,omitempty"`

	// Devices is the number of data-parallel replicas (default 1). Replicas
	// share the interconnect described by Topology and all-reduce their
	// weight gradients each step. Mutually exclusive with stages > 1.
	Devices int `json:"devices,omitempty"`
	// Stages splits the network into that many contiguous pipeline stages,
	// one device per stage, with micro-batches streamed through them
	// (default 1: no pipelining).
	Stages int `json:"stages,omitempty"`
	// MicroBatches is the micro-batch count of a pipeline run (default:
	// stages).
	MicroBatches int `json:"micro_batches,omitempty"`
	// StageCuts places the pipeline stage boundaries explicitly: a
	// comma-separated list of layer IDs ("7,13,20"); empty uses the
	// balanced-by-cost partitioner.
	StageCuts string `json:"stage_cuts,omitempty"`
	// Topology names the interconnect topology for multi-device and
	// pipeline runs ("dedicated", "shared-x16", "shared-2x16",
	// "shared-4x16"; default shared-x16 when devices or stages > 1).
	Topology string `json:"topology,omitempty"`

	// Trace requests the op-level schedule of the measured iteration: the
	// response's trace field carries Chrome trace-event JSON inline (open in
	// chrome://tracing or ui.perfetto.dev). Not allowed inside sweeps.
	Trace bool `json:"trace,omitempty"`

	// DeadlineMS bounds this request's wall-clock time in milliseconds; the
	// server clamps it to its configured maximum and answers 408 when it
	// fires. Zero uses the server default. Inside a sweep, set it on the
	// sweep body (it covers the whole batch), not on individual jobs.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SimResponse is the wire form of a simulation result.
type SimResponse struct {
	Network  string            `json:"network"`
	Batch    int               `json:"batch"`
	GPU      string            `json:"gpu"`
	Policy   vdnn.Policy       `json:"policy"`
	Algo     vdnn.AlgoMode     `json:"algo"`
	Prefetch vdnn.PrefetchMode `json:"prefetch"`
	Chosen   string            `json:"chosen,omitempty"`

	Trainable  bool   `json:"trainable"`
	FailReason string `json:"fail_reason,omitempty"`

	IterTimeMs float64 `json:"iter_time_ms"`
	FETimeMs   float64 `json:"fe_time_ms"`

	MaxUsageBytes      int64 `json:"max_usage_bytes"`
	AvgUsageBytes      int64 `json:"avg_usage_bytes"`
	FrameworkBytes     int64 `json:"framework_bytes"`
	MaxWorkingSetBytes int64 `json:"max_working_set_bytes"`

	OffloadBytes        int64 `json:"offload_bytes"`
	PrefetchBytes       int64 `json:"prefetch_bytes"`
	OnDemandFetches     int   `json:"on_demand_fetches"`
	HostPinnedPeakBytes int64 `json:"host_pinned_peak_bytes"`

	// Compressed-DMA results (codec set in the request). Offload/prefetch
	// bytes above are wire (post-codec) traffic; the raw fields carry the
	// pre-codec sizes.
	Codec            string  `json:"codec,omitempty"`
	SparsityProfile  string  `json:"sparsity_profile,omitempty"`
	OffloadRawBytes  int64   `json:"offload_raw_bytes,omitempty"`
	PrefetchRawBytes int64   `json:"prefetch_raw_bytes,omitempty"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	CompressTimeMs   float64 `json:"compress_time_ms,omitempty"`
	DecompressTimeMs float64 `json:"decompress_time_ms,omitempty"`

	AvgPowerW float64 `json:"avg_power_w"`
	MaxPowerW float64 `json:"max_power_w"`

	// Energy breakdown of the measured iteration, in joules, summed over
	// every device of the run. The buckets add up to energy_j, which equals
	// the power timeline's integral.
	EnergyJ        float64 `json:"energy_j"`
	ComputeEnergyJ float64 `json:"compute_energy_j"`
	DMAEnergyJ     float64 `json:"dma_energy_j"`
	CodecEnergyJ   float64 `json:"codec_energy_j,omitempty"`
	IdleEnergyJ    float64 `json:"idle_energy_j"`

	// Multi-device results (devices > 1 in the request).
	Devices         int              `json:"devices,omitempty"`
	Topology        string           `json:"topology,omitempty"`
	AllReduceBytes  int64            `json:"allreduce_bytes,omitempty"`
	AllReduceTimeMs float64          `json:"allreduce_time_ms,omitempty"`
	PerDevice       []DeviceResponse `json:"per_device,omitempty"`

	// Pipeline results (stages > 1 in the request).
	Stages             int             `json:"stages,omitempty"`
	MicroBatches       int             `json:"micro_batches,omitempty"`
	InterStageBytes    int64           `json:"inter_stage_bytes,omitempty"`
	InterStageRawBytes int64           `json:"inter_stage_raw_bytes,omitempty"`
	BubbleTimeMs       float64         `json:"bubble_time_ms,omitempty"`
	BubbleFraction     float64         `json:"bubble_fraction,omitempty"`
	StageImbalance     float64         `json:"stage_imbalance,omitempty"`
	PerStage           []StageResponse `json:"per_stage,omitempty"`

	// Trace is the inline Chrome trace-event JSON ("trace": true requests).
	Trace json.RawMessage `json:"trace,omitempty"`
}

// DeviceResponse is the wire form of one replica's metrics.
type DeviceResponse struct {
	Device         int     `json:"device"`
	StepTimeMs     float64 `json:"step_time_ms"`
	OffloadBytes   int64   `json:"offload_bytes"`
	PrefetchBytes  int64   `json:"prefetch_bytes"`
	AllReduceBytes int64   `json:"allreduce_bytes"`
	ContentionMs   float64 `json:"contention_stall_ms"`
	OverlapEff     float64 `json:"overlap_efficiency"`
	ComputeBusyMs  float64 `json:"compute_busy_ms"`
	CopyBusyMs     float64 `json:"copy_busy_ms"`
	EnergyJ        float64 `json:"energy_j"`
}

// StageResponse is the wire form of one pipeline stage's metrics.
type StageResponse struct {
	Stage         int     `json:"stage"`
	FirstLayer    int     `json:"first_layer"`
	LastLayer     int     `json:"last_layer"`
	StepTimeMs    float64 `json:"step_time_ms"`
	ComputeBusyMs float64 `json:"compute_busy_ms"`
	BubbleTimeMs  float64 `json:"bubble_time_ms"`
	SendBytes     int64   `json:"send_bytes"`
	RecvBytes     int64   `json:"recv_bytes"`
	OffloadBytes  int64   `json:"offload_bytes"`
	PrefetchBytes int64   `json:"prefetch_bytes"`
	PoolPeakBytes int64   `json:"pool_peak_bytes"`
}

// SweepRequest is a batch of simulations answered in order. DeadlineMS
// bounds the whole batch; per-job deadline_ms is rejected.
type SweepRequest struct {
	Jobs       []SimRequest `json:"jobs"`
	DeadlineMS int64        `json:"deadline_ms,omitempty"`
}

// StatsResponse is the GET /v1/stats body: the simulator's cache counters,
// the HTTP layer's admission counters, and the planner's cumulative search
// counters (how much of its design spaces the daemon evaluated vs pruned).
type StatsResponse struct {
	vdnn.EngineStats
	Serve   ServeStats        `json:"serve"`
	Planner vdnn.PlanCounters `json:"planner"`
	// Jobs counts the async job subsystem (POST /v1/jobs).
	Jobs JobStats `json:"jobs"`
	// Store counts the persistent result store; absent when the daemon runs
	// without one.
	Store *vdnn.StoreStats `json:"store,omitempty"`
}

// SweepResponse carries one result per job, in job order.
type SweepResponse struct {
	Results []SimResponse `json:"results"`
}

// CatalogResponse lists everything a request can name. Backends carries the
// structured hardware catalog behind the flat gpus name list (same names,
// same order).
type CatalogResponse struct {
	Networks         []string      `json:"networks"`
	GPUs             []string      `json:"gpus"`
	Backends         []BackendInfo `json:"backends"`
	Links            []string      `json:"links"`
	Topologies       []string      `json:"topologies"`
	Codecs           []string      `json:"codecs"`
	SparsityProfiles []string      `json:"sparsity_profiles"`
}

// BackendInfo is one accelerator backend of the hardware catalog, as the
// simulator this server answers from resolves it (process-wide registry
// plus any per-simulator overlays).
type BackendInfo struct {
	// Name is the registry token requests use in their gpu field.
	Name string `json:"name"`
	// Device is the backend's display name ("NVIDIA Titan X (Maxwell)").
	Device string `json:"device"`
	// Memory is the device memory technology ("gddr", "hbm", "near-dram").
	Memory string `json:"memory"`
	// MemGB is the physical device memory in GiB.
	MemGB float64 `json:"mem_gb"`
	// PeakTFLOPS is the single-precision compute peak.
	PeakTFLOPS float64 `json:"peak_tflops"`
	// LinkClass is the host interconnect family ("pcie", "nvlink", "on-die").
	LinkClass string `json:"link_class"`
	// Link is the host interconnect's display name ("PCIe gen3 x16").
	Link string `json:"link"`
}

// Server is the HTTP handler. Create with New; it is an http.Handler safe
// for concurrent use.
type Server struct {
	sim     *vdnn.Simulator
	mux     *http.ServeMux
	handler http.Handler // recoverer( [chaos(] mux [)] )

	adm             *admission
	counters        serveCounters
	planner         plannerCounters
	draining        atomic.Bool
	defaultDeadline time.Duration
	maxDeadline     time.Duration

	jobs  *jobRunner
	log   *slog.Logger
	store *vdnn.Store // stats/metrics visibility only; may be nil
	reg   *metrics.Registry
	http  httpMetrics
}

// Request guardrails. Every numeric knob below is client-controlled, so the
// daemon bounds all of them: batch size (which also bounds the simulator's
// memoized-network cache churn), memory sizes (an oversized float GB count
// would overflow the int64 byte conversion), sweep fan-out and request body
// size. The result cache itself is bounded by the Simulator's WithCacheBound
// (cmd/vdnn-serve defaults it on).
const (
	maxBatch     = 4096
	maxMemGB     = 1 << 20 // 1 PB; far beyond any simulated host/device
	maxSweepJobs = 1024
	maxBodyBytes = 8 << 20
	// maxRequestDevices bounds the replica fan-out of one request (an
	// N-device simulation costs roughly N single-device passes).
	maxRequestDevices = 16
)

// Default deadlines: generous enough for the heaviest catalogued sweep, so
// only a stuck or abusive request ever hits them uninvited.
const (
	defaultRequestDeadline = 2 * time.Minute
	defaultMaxDeadline     = 10 * time.Minute
)

// New creates a Server answering from the given simulator. With no options
// it admits sim.Parallelism() concurrent simulation requests, queues 4× that
// beyond them, and applies the default deadlines above.
func New(sim *vdnn.Simulator, opts ...Option) *Server {
	o := options{
		maxConcurrent:   sim.Parallelism(),
		queueDepth:      -1,
		defaultDeadline: defaultRequestDeadline,
		maxDeadline:     defaultMaxDeadline,
		jobQueueDepth:   -1,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.maxConcurrent <= 0 {
		o.maxConcurrent = 1
	}
	if o.queueDepth < 0 {
		o.queueDepth = 4 * o.maxConcurrent
	}
	if o.jobWorkers <= 0 {
		o.jobWorkers = max(1, o.maxConcurrent/2)
	}
	if o.jobQueueDepth < 0 {
		o.jobQueueDepth = defaultJobQueueDepth
	}
	if o.logger == nil {
		o.logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		sim:             sim,
		mux:             http.NewServeMux(),
		adm:             newAdmission(o.maxConcurrent, o.queueDepth),
		defaultDeadline: o.defaultDeadline,
		maxDeadline:     o.maxDeadline,
		log:             o.logger,
		store:           o.store,
	}
	s.jobs = newJobRunner(s, o.jobWorkers, o.jobQueueDepth)
	s.reg = s.newMetricsRegistry()
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	s.route("POST /v1/simulate", s.handleSimulate)
	s.route("POST /v1/sweep", s.handleSweep)
	s.route("POST /v1/plan", s.handlePlan)
	s.route("GET /v1/networks", s.handleNetworks)
	s.route("GET /v1/catalog", s.handleNetworks) // same body, catalog-first name
	s.route("GET /v1/stats", s.handleStats)
	s.route("POST /v1/jobs", s.handleJobSubmit)
	s.route("GET /v1/jobs", s.handleJobList)
	s.route("GET /v1/jobs/{id}", s.handleJobStream)
	s.route("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.route("GET /metrics", s.reg.Handler().ServeHTTP)
	var h http.Handler = s.mux
	if o.injector != nil {
		h = o.injector.Middleware(h)
	}
	s.handler = s.recoverer(h)
	return s
}

// route registers a handler wrapped in the observability middleware: request
// id, in-flight gauge, per-endpoint request counter and latency histogram,
// and one structured log record per request.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.instrument(pattern, h))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Simulator returns the server's simulator (stats, registries).
func (s *Server) Simulator() *vdnn.Simulator { return s.sim }

// defaultRequest seeds the fields json.Unmarshal leaves untouched.
func defaultRequest() SimRequest {
	return SimRequest{
		Batch:    64,
		GPU:      "titanx",
		Policy:   vdnn.VDNNDyn,
		Algo:     vdnn.PerfOptimal,
		Prefetch: vdnn.PrefetchJIT,
	}
}

// network resolves (name, batch) through the simulator's memoized network
// cache — the identity-stable instances the result cache keys on.
func (s *Server) network(name string, batch int) (*vdnn.Network, error) {
	if batch <= 0 || batch > maxBatch {
		return nil, fmt.Errorf("batch must be in [1, %d], got %d", maxBatch, batch)
	}
	return s.sim.Network(name, batch)
}

// resolve turns a wire request into a simulation job.
func (s *Server) resolve(req SimRequest) (*vdnn.Network, vdnn.Config, error) {
	var cfg vdnn.Config
	net, err := s.network(req.Network, req.Batch)
	if err != nil {
		return nil, cfg, err
	}
	spec, ok := s.sim.GPUByName(req.GPU)
	if !ok {
		return nil, cfg, fmt.Errorf("unknown gpu %q (have %s)", req.GPU, strings.Join(s.sim.GPUNames(), ", "))
	}
	if req.GPUMemGB < 0 || req.HostGB < 0 || req.GPUMemGB > maxMemGB || req.HostGB > maxMemGB {
		return nil, cfg, fmt.Errorf("memory sizes must be in [0, %d] GB", int64(maxMemGB))
	}
	if req.GPUMemGB > 0 {
		spec.MemBytes = int64(req.GPUMemGB * float64(1<<30))
	}
	if req.Link != "" {
		link, ok := s.sim.LinkByName(req.Link)
		if !ok {
			return nil, cfg, fmt.Errorf("unknown link %q (have %s)", req.Link, strings.Join(s.sim.LinkNames(), ", "))
		}
		spec.Link = link
	}
	if req.Devices < 0 || req.Devices > maxRequestDevices {
		return nil, cfg, fmt.Errorf("devices must be in [1, %d], got %d", maxRequestDevices, req.Devices)
	}
	if req.Stages < 0 || req.Stages > maxRequestDevices {
		return nil, cfg, fmt.Errorf("stages must be in [1, %d], got %d", maxRequestDevices, req.Stages)
	}
	if req.Stages > 1 && req.Devices > 1 {
		return nil, cfg, fmt.Errorf("stages (%d) and devices (%d) cannot combine: pick pipeline or data parallelism", req.Stages, req.Devices)
	}
	if req.Stages <= 1 && (req.MicroBatches > 1 || req.StageCuts != "") {
		return nil, cfg, fmt.Errorf("micro_batches/stage_cuts require stages > 1")
	}
	if req.MicroBatches < 0 || req.MicroBatches > maxBatch {
		return nil, cfg, fmt.Errorf("micro_batches must be in [1, %d], got %d", maxBatch, req.MicroBatches)
	}
	topology, ok := vdnn.TopologyByName(req.Topology)
	if !ok {
		return nil, cfg, fmt.Errorf("unknown topology %q (have %s)", req.Topology, strings.Join(vdnn.TopologyNames(), ", "))
	}
	cfg = vdnn.Config{
		Spec:            spec,
		Policy:          req.Policy,
		Algo:            req.Algo,
		Prefetch:        req.Prefetch,
		Oracle:          req.Oracle,
		PageMigration:   req.PageMigration,
		OffloadWeights:  req.OffloadWeights,
		Compression:     vdnn.Compression{Codec: req.Codec, Sparsity: req.Sparsity},
		Devices:         req.Devices,
		Stages:          req.Stages,
		MicroBatches:    req.MicroBatches,
		StageCuts:       req.StageCuts,
		Topology:        topology,
		CaptureSchedule: req.Trace,
	}
	if req.Sparsity != "" && req.Codec == vdnn.CodecNone {
		return nil, cfg, fmt.Errorf("sparsity %q given without a codec (set codec to zvc or rle)", req.Sparsity)
	}
	if req.Codec != vdnn.CodecNone && req.PageMigration {
		// The codec lives in the DMA engines, which page migration bypasses;
		// the runtime would silently drop it, so reject the conflict instead
		// of reporting a codec that never ran.
		return nil, cfg, fmt.Errorf("codec %q cannot run under page migration (the codec sits in the DMA engines)", req.Codec)
	}
	if err := cfg.Compression.Validate(); err != nil {
		return nil, cfg, err
	}
	if req.HostGB > 0 {
		cfg.HostBytes = int64(req.HostGB * float64(1<<30))
	}
	if err := spec.Validate(); err != nil {
		return nil, cfg, err
	}
	return net, cfg, nil
}

// response formats a result for the wire.
func response(req SimRequest, res *vdnn.Result) (SimResponse, error) {
	out := SimResponse{
		Network:  res.Network,
		Batch:    res.Batch,
		GPU:      req.GPU,
		Policy:   res.Policy,
		Algo:     res.Algo,
		Prefetch: req.Prefetch,
		Chosen:   res.Chosen,

		Trainable:  res.Trainable,
		FailReason: res.FailReason,

		IterTimeMs: res.IterTime.Msec(),
		FETimeMs:   res.FETime.Msec(),

		MaxUsageBytes:      res.MaxUsage,
		AvgUsageBytes:      res.AvgUsage,
		FrameworkBytes:     res.FrameworkBytes,
		MaxWorkingSetBytes: res.MaxWorkingSet,

		OffloadBytes:        res.OffloadBytes,
		PrefetchBytes:       res.PrefetchBytes,
		OnDemandFetches:     res.OnDemandFetches,
		HostPinnedPeakBytes: res.HostPinnedPeak,

		AvgPowerW: res.Power.AvgW,
		MaxPowerW: res.Power.MaxW,

		EnergyJ:        res.Energy.TotalJ(),
		ComputeEnergyJ: res.Energy.ComputeJ,
		DMAEnergyJ:     res.Energy.DMAJ,
		CodecEnergyJ:   res.Energy.CodecJ,
		IdleEnergyJ:    res.Energy.IdleJ,
	}
	if req.Codec != vdnn.CodecNone {
		out.Codec = req.Codec.String()
		out.SparsityProfile = vdnn.Compression{Codec: req.Codec, Sparsity: req.Sparsity}.WithDefaults().Sparsity
		out.OffloadRawBytes = res.OffloadRawBytes
		out.PrefetchRawBytes = res.PrefetchRawBytes
		out.CompressionRatio = res.CompressionRatio
		out.CompressTimeMs = res.CompressTime.Msec()
		out.DecompressTimeMs = res.DecompressTime.Msec()
	}
	if n := len(res.Devices); n > 0 {
		out.Devices = n
		// Report the topology the simulation actually ran under: the
		// request's name resolved and defaulted exactly as core.Config does.
		reqTop, _ := vdnn.TopologyByName(req.Topology)
		out.Topology = vdnn.Config{Devices: n, Topology: reqTop}.WithDefaults().Topology.Name
		out.AllReduceBytes = res.AllReduceBytes
		out.AllReduceTimeMs = res.AllReduceTime.Msec()
		for _, d := range res.Devices {
			out.PerDevice = append(out.PerDevice, DeviceResponse{
				Device:         d.Device,
				StepTimeMs:     d.StepTime.Msec(),
				OffloadBytes:   d.OffloadBytes,
				PrefetchBytes:  d.PrefetchBytes,
				AllReduceBytes: d.AllReduceBytes,
				ContentionMs:   d.ContentionStall.Msec(),
				OverlapEff:     d.OverlapEff,
				ComputeBusyMs:  d.ComputeBusy.Msec(),
				CopyBusyMs:     d.CopyBusy.Msec(),
				EnergyJ:        d.Energy.TotalJ(),
			})
		}
	}
	if len(res.Stages) > 0 {
		out.Stages = len(res.Stages)
		out.MicroBatches = res.MicroBatches
		out.InterStageBytes = res.InterStageBytes
		out.InterStageRawBytes = res.InterStageRawBytes
		out.BubbleTimeMs = res.BubbleTime.Msec()
		out.BubbleFraction = res.BubbleFraction
		out.StageImbalance = res.DeviceImbalance()
		for _, s := range res.Stages {
			out.PerStage = append(out.PerStage, StageResponse{
				Stage:         s.Stage,
				FirstLayer:    s.FirstLayer,
				LastLayer:     s.LastLayer,
				StepTimeMs:    s.StepTime.Msec(),
				ComputeBusyMs: s.ComputeBusy.Msec(),
				BubbleTimeMs:  s.BubbleTime.Msec(),
				SendBytes:     s.SendBytes,
				RecvBytes:     s.RecvBytes,
				OffloadBytes:  s.OffloadBytes,
				PrefetchBytes: s.PrefetchBytes,
				PoolPeakBytes: s.PoolPeak,
			})
		}
	}
	if req.Trace {
		var buf bytes.Buffer
		if err := res.WriteChromeTrace(&buf); err != nil {
			return out, fmt.Errorf("rendering trace: %w", err)
		}
		out.Trace = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	return out, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req := defaultRequest()
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := validDeadlineMS(req.DeadlineMS); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	net, cfg, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// r.Context() is the cancellation root: a client disconnect (or the
	// daemon's drain hard-cancel via Server.BaseContext) propagates from here
	// through Run into the per-layer checks of the core trainer.
	ctx, cancel := s.requestContext(r.Context(), req.DeadlineMS)
	defer cancel()
	release, ok := s.admit(w, ctx)
	if !ok {
		return
	}
	defer release()
	res, err := s.sim.Run(ctx, net, cfg)
	if err != nil {
		s.writeSimError(w, err)
		return
	}
	out, err := response(req, res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.counters.completed.Add(1)
	writeJSON(w, out)
}

// parseSweep decodes and resolves a sweep body — shared by the synchronous
// /v1/sweep and the asynchronous POST /v1/jobs. On failure it has already
// written the 400 response and returns ok=false.
func (s *Server) parseSweep(w http.ResponseWriter, r *http.Request) (reqs []SimRequest, jobs []vdnn.BatchJob, deadlineMS int64, ok bool) {
	var sr struct {
		Jobs       []json.RawMessage `json:"jobs"`
		DeadlineMS int64             `json:"deadline_ms"`
	}
	if err := decodeJSON(w, r, &sr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, nil, 0, false
	}
	if err := validDeadlineMS(sr.DeadlineMS); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, nil, 0, false
	}
	if len(sr.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty sweep: provide jobs"))
		return nil, nil, 0, false
	}
	if len(sr.Jobs) > maxSweepJobs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep of %d jobs exceeds the limit of %d", len(sr.Jobs), maxSweepJobs))
		return nil, nil, 0, false
	}
	reqs = make([]SimRequest, len(sr.Jobs))
	jobs = make([]vdnn.BatchJob, len(sr.Jobs))
	for i, raw := range sr.Jobs {
		req := defaultRequest()
		if err := strictDecode(bytes.NewReader(raw), &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return nil, nil, 0, false
		}
		if req.Trace {
			// A sweep of inline traces would dwarf any sane response body;
			// request traces one simulation at a time.
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: trace is not available in sweeps; use /v1/simulate", i))
			return nil, nil, 0, false
		}
		if req.DeadlineMS != 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: deadline_ms applies to the whole sweep; set it on the sweep body", i))
			return nil, nil, 0, false
		}
		net, cfg, err := s.resolve(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return nil, nil, 0, false
		}
		reqs[i] = req
		jobs[i] = vdnn.BatchJob{Net: net, Cfg: cfg}
	}
	return reqs, jobs, sr.DeadlineMS, true
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	reqs, jobs, deadlineMS, ok := s.parseSweep(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r.Context(), deadlineMS)
	defer cancel()
	release, ok := s.admit(w, ctx)
	if !ok {
		return
	}
	defer release()
	results, err := s.sim.RunBatch(ctx, jobs)
	if err != nil {
		s.writeSimError(w, err)
		return
	}
	out := SweepResponse{Results: make([]SimResponse, len(results))}
	for i, res := range results {
		if out.Results[i], err = response(reqs[i], res); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.counters.completed.Add(1)
	writeJSON(w, out)
}

func (s *Server) handleNetworks(w http.ResponseWriter, _ *http.Request) {
	gpus := s.sim.GPUNames()
	backends := make([]BackendInfo, 0, len(gpus))
	for _, name := range gpus {
		spec, ok := s.sim.GPUByName(name)
		if !ok {
			continue // racing Register/overlay change; skip rather than 500
		}
		backends = append(backends, BackendInfo{
			Name:       name,
			Device:     spec.Name,
			Memory:     spec.MemKind.String(),
			MemGB:      float64(spec.MemBytes) / (1 << 30),
			PeakTFLOPS: spec.PeakFlops / 1e12,
			LinkClass:  spec.Link.Class.String(),
			Link:       spec.Link.Name,
		})
	}
	writeJSON(w, CatalogResponse{
		Networks:         vdnn.NetworkNames(),
		GPUs:             gpus,
		Backends:         backends,
		Links:            s.sim.LinkNames(),
		Topologies:       vdnn.TopologyNames(),
		Codecs:           vdnn.CodecNames(),
		SparsityProfiles: vdnn.SparsityProfileNames(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := StatsResponse{
		EngineStats: s.sim.Stats(),
		Serve:       s.counters.snapshot(),
		Planner:     s.planner.snapshot(),
		Jobs:        s.jobs.stats(),
	}
	if s.store != nil {
		st := s.store.Stats()
		out.Store = &st
	}
	writeJSON(w, out)
}

// decodeJSON reads a size-capped request body strictly: unknown fields are
// errors, so typos ("polcy") fail loudly instead of silently simulating the
// default.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	return strictDecode(http.MaxBytesReader(w, r.Body, maxBodyBytes), v)
}

func strictDecode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError is the plain-validation error writer: the code derives from the
// status (4xx invalid, 5xx internal). Paths with a more specific taxonomy
// slot call writeErrorCode directly.
func writeError(w http.ResponseWriter, status int, err error) {
	code := "invalid"
	if status >= 500 {
		code = "internal"
	}
	writeErrorCode(w, status, code, err)
}

func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code})
}

package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"vdnn"
)

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/plan",
		`{"network": "alexnet", "batch": 8, "max_devices": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out PlanResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Feasible || out.Best == nil || out.Result == nil {
		t.Fatalf("expected a feasible plan with a winner, got %+v", out)
	}
	if out.Best.Mode == "" || out.Best.Policy == "" {
		t.Fatalf("winner labels missing: %+v", out.Best)
	}
	if len(out.Evidence) != out.Counters.Space+out.Counters.Refined {
		t.Fatalf("evidence rows %d != space %d + refined %d",
			len(out.Evidence), out.Counters.Space, out.Counters.Refined)
	}
	if out.Counters.Pruned == 0 {
		t.Fatalf("expected a pruned search, got counters %+v", out.Counters)
	}

	// The winner ships a paste-ready /v1/simulate body; replaying it must
	// reproduce the planner's own metrics (and hit the shared cache).
	req, err := json.Marshal(out.Best.Request)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/simulate", string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replaying the winner: status = %d, body %s", resp.StatusCode, body)
	}
	var sim SimResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if !sim.Trainable {
		t.Fatalf("replayed winner not trainable: %s", sim.FailReason)
	}
	if sim.IterTimeMs != out.Result.IterTimeMs {
		t.Fatalf("replayed winner iter time %.3f != planned %.3f", sim.IterTimeMs, out.Result.IterTimeMs)
	}
}

func TestPlanStatsCounters(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := post(t, ts.URL+"/v1/plan", `{"network": "alexnet", "batch": 8, "max_devices": 2}`)
	var out PlanResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Planner vdnn.PlanCounters `json:"planner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Planner != out.Counters {
		t.Fatalf("stats planner counters %+v != plan counters %+v", stats.Planner, out.Counters)
	}
}

func TestPlanInfeasible(t *testing.T) {
	_, ts := newTestServer(t)
	// 0.4 GB cannot hold AlexNet's classifier-side weights at batch 8 under
	// any policy; the planner must answer 200 with the evidence, not error.
	resp, body := post(t, ts.URL+"/v1/plan",
		`{"network": "alexnet", "batch": 8, "max_devices": 2, "mem_cap_gb": 0.4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out PlanResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Feasible || out.Best != nil {
		t.Fatalf("expected an infeasible plan, got %+v", out)
	}
	if len(out.Evidence) == 0 {
		t.Fatal("infeasible plan must still carry the evidence table")
	}
}

func TestPlanValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{"negative cap", `{"network": "alexnet", "mem_cap_gb": -16}`, "mem_cap_gb"},
		{"unknown network", `{"network": "nope"}`, "unknown network"},
		{"budget too large", `{"network": "alexnet", "max_devices": 99}`, "max_devices"},
		{"unknown gpu", `{"network": "alexnet", "gpu": "tpu"}`, "unknown gpu"},
		{"unknown topology", `{"network": "alexnet", "topology": "mesh"}`, "unknown topology"},
		{"unknown objective", `{"network": "alexnet", "objective": "watts"}`, "unknown objective"},
		{"unknown field", `{"network": "alexnet", "bacth": 8}`, "bacth"},
		{"bad codec", `{"network": "alexnet", "codecs": ["lzma"]}`, "invalid request body"},
		{"negative deadline", `{"network": "alexnet", "deadline_ms": -1}`, "deadline_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/plan", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			var e struct{ Error, Code string }
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatal(err)
			}
			if e.Code != "invalid" {
				t.Fatalf("code = %q, body %s", e.Code, body)
			}
		})
	}
}

func TestPlanDeadline(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/plan",
		`{"network": "vgg16", "batch": 64, "max_devices": 4, "deadline_ms": 1}`)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var e struct{ Code string }
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "deadline" {
		t.Fatalf("code = %q, body %s", e.Code, body)
	}
}

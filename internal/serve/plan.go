package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"vdnn"
)

// PlanRequest is the wire form of POST /v1/plan: one auto-parallelism
// planning problem. The fleet is named the same way simulations name theirs
// (GPU registry name, topology name); the cap and budget are the planner's
// own knobs. Zero fields take the planner defaults.
type PlanRequest struct {
	// Network is a benchmark network name (see GET /v1/networks). Required.
	Network string `json:"network"`
	// Batch is the global batch size of one training step. Default 64.
	Batch int `json:"batch,omitempty"`

	// GPU names the fleet's device model. Default "titanx".
	GPU string `json:"gpu,omitempty"`
	// MemCapGB overrides the device's physical memory, in GiB: the hard
	// per-device cap the winner must train under. Zero keeps the device
	// default.
	MemCapGB float64 `json:"mem_cap_gb,omitempty"`
	// MaxDevices is the device-count budget (default 4).
	MaxDevices int `json:"max_devices,omitempty"`
	// Topology names the interconnect of multi-device candidates
	// ("dedicated", "shared-x16", ...; default shared-x16).
	Topology string `json:"topology,omitempty"`
	// Codecs restricts the compressed-DMA branches to search ("none",
	// "zvc", "rle"); empty searches none plus zvc. The codec-free branch is
	// always included.
	Codecs []vdnn.Codec `json:"codecs,omitempty"`

	// Objective selects what the search minimizes: "time" (default) or
	// "energy" (whole-fleet joules per iteration).
	Objective string `json:"objective,omitempty"`

	// DeadlineMS bounds the whole search in milliseconds (server clamps and
	// defaults as for simulations).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// PlanChoice is the winning candidate on the wire: human-readable labels,
// the structured candidate, and a paste-ready /v1/simulate request body.
type PlanChoice struct {
	Mode    string             `json:"mode"`
	Policy  string             `json:"policy"`
	Codec   string             `json:"codec"`
	Chosen  vdnn.PlanCandidate `json:"candidate"`
	Request SimRequest         `json:"request"`
}

// PlanResponse is the wire form of a planner search: feasibility, the
// winner (with its full simulation metrics), the evidence table and the
// search counters.
type PlanResponse struct {
	Network string `json:"network"`
	Batch   int    `json:"batch"`
	GPU     string `json:"gpu"`
	// Objective is what the search minimized ("time" or "energy").
	Objective string `json:"objective"`
	Feasible  bool   `json:"feasible"`

	Best   *PlanChoice  `json:"best,omitempty"`
	Result *SimResponse `json:"result,omitempty"`

	Evidence []vdnn.PlanEvidence `json:"evidence"`
	Counters vdnn.PlanCounters   `json:"counters"`
}

// plannerCounters accumulates PlanCounters across requests for /v1/stats.
type plannerCounters struct {
	mu  sync.Mutex
	sum vdnn.PlanCounters
}

func (p *plannerCounters) add(c vdnn.PlanCounters) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sum = p.sum.Add(c)
}

func (p *plannerCounters) snapshot() vdnn.PlanCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sum
}

// resolvePlan validates a wire planning request against the registries and
// guardrails and turns it into a planner request.
func (s *Server) resolvePlan(req PlanRequest) (vdnn.PlanRequest, error) {
	var preq vdnn.PlanRequest
	// Resolving the network at the global batch both validates the name and
	// warms the memoized instance the single-device candidates reuse.
	if _, err := s.network(req.Network, req.Batch); err != nil {
		return preq, err
	}
	spec, ok := s.sim.GPUByName(req.GPU)
	if !ok {
		return preq, fmt.Errorf("unknown gpu %q (have %s)", req.GPU, strings.Join(s.sim.GPUNames(), ", "))
	}
	if req.MemCapGB < 0 || req.MemCapGB > maxMemGB {
		return preq, fmt.Errorf("mem_cap_gb must be in [0, %d], got %g", int64(maxMemGB), req.MemCapGB)
	}
	if req.MaxDevices < 0 || req.MaxDevices > maxRequestDevices {
		return preq, fmt.Errorf("max_devices must be in [1, %d], got %d", maxRequestDevices, req.MaxDevices)
	}
	topology, ok := vdnn.TopologyByName(req.Topology)
	if !ok {
		return preq, fmt.Errorf("unknown topology %q (have %s)", req.Topology, strings.Join(vdnn.TopologyNames(), ", "))
	}
	var codecs []vdnn.Compression
	for _, c := range req.Codecs {
		codecs = append(codecs, vdnn.Compression{Codec: c})
	}
	var objective vdnn.PlanObjective
	if err := objective.UnmarshalText([]byte(req.Objective)); err != nil {
		return preq, fmt.Errorf("unknown objective %q (want time or energy)", req.Objective)
	}
	return vdnn.PlanRequest{
		Network:     req.Network,
		Batch:       req.Batch,
		Spec:        spec,
		MemCapBytes: int64(req.MemCapGB * float64(1<<30)),
		MaxDevices:  req.MaxDevices,
		Topology:    topology,
		Codecs:      codecs,
		Objective:   objective,
	}, nil
}

// simRequest renders a winning candidate as the /v1/simulate body that
// reproduces it (the per-replica batch is what a simulation names).
func (req PlanRequest) simRequest(c vdnn.PlanCandidate) SimRequest {
	out := SimRequest{
		Network:  req.Network,
		Batch:    c.PerDevBatch,
		GPU:      req.GPU,
		GPUMemGB: req.MemCapGB,
		Policy:   c.Policy,
		Algo:     c.Algo,
		Codec:    c.Comp.Codec,
		Sparsity: c.Comp.Sparsity,
		Topology: req.Topology,
	}
	if c.Devices > 1 {
		out.Devices = c.Devices
	}
	if c.Stages > 1 {
		out.Stages, out.MicroBatches = c.Stages, c.MicroBatches
	}
	return out
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	req := PlanRequest{Batch: 64, GPU: "titanx"}
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := validDeadlineMS(req.DeadlineMS); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	preq, err := s.resolvePlan(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), req.DeadlineMS)
	defer cancel()
	release, ok := s.admit(w, ctx)
	if !ok {
		return
	}
	defer release()
	plan, err := s.sim.Plan(ctx, preq)
	switch {
	case errors.Is(err, vdnn.ErrInfeasiblePlan):
		// An exhausted search is an answer, not a failure: the evidence
		// table says why every branch died.
	case err != nil:
		s.writeSimError(w, err)
		return
	}
	s.planner.add(plan.Counters)
	out := PlanResponse{
		Network:   plan.Network,
		Batch:     plan.Batch,
		GPU:       req.GPU,
		Objective: plan.Objective.String(),
		Feasible:  plan.Feasible,
		Evidence:  plan.Evidence,
		Counters:  plan.Counters,
	}
	if plan.Feasible {
		best := *plan.Best
		simReq := req.simRequest(best)
		res, err := response(simReq, plan.Result)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out.Best = &PlanChoice{
			Mode:    best.Mode(),
			Policy:  best.PolicyLabel(),
			Codec:   best.CodecLabel(),
			Chosen:  best,
			Request: simReq,
		}
		out.Result = &res
	}
	s.counters.completed.Add(1)
	writeJSON(w, out)
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vdnn"
	"vdnn/internal/chaos"
)

// newRobustServer builds a server with explicit robustness knobs and an
// optional chaos hook holding simulations open for holdup per attempt.
func newRobustServer(t *testing.T, holdup time.Duration, serveOpts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	sim := vdnn.NewSimulator(vdnn.WithParallelism(4))
	if holdup > 0 {
		sim.SetChaosHook(func(string) error { time.Sleep(holdup); return nil })
	}
	srv := New(sim, serveOpts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// errBody decodes the structured error body.
func errBody(t *testing.T, b []byte) (msg, code string) {
	t.Helper()
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("error body %q: %v", b, err)
	}
	return e.Error, e.Code
}

// TestOverloadFastFail fills the admission system (1 executing + 1 queued)
// and checks the excess requests fail fast with 503, the "overloaded" code
// and a Retry-After header, while the admitted ones still succeed.
func TestOverloadFastFail(t *testing.T) {
	srv, ts := newRobustServer(t, 300*time.Millisecond,
		WithMaxConcurrent(1), WithQueueDepth(1))

	const n = 6
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct batch per request: distinct cache keys, so every
			// admitted request really occupies its slot for the holdup.
			body := fmt.Sprintf(`{"network":"alexnet","batch":%d}`, 8+i)
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
			if retryAfter[i] == "" {
				t.Errorf("request %d: 503 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, c)
		}
	}
	// 1 executing + 1 queued can be admitted at once; with 6 near-
	// simultaneous requests at a 300 ms holdup, at least one of each outcome
	// is guaranteed.
	if ok == 0 || rejected == 0 {
		t.Fatalf("ok = %d, rejected = %d, want both nonzero (codes %v)", ok, rejected, codes)
	}
	st := srv.Stats()
	if st.RejectedOverload != int64(rejected) {
		t.Errorf("RejectedOverload = %d, want %d", st.RejectedOverload, rejected)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after quiesce, want 0", st.InFlight)
	}
	if st.Completed != int64(ok) {
		t.Errorf("Completed = %d, want %d", st.Completed, ok)
	}
}

// TestDeadlineExceeded checks a tiny client deadline against a held-open
// simulation answers 408 with the "deadline" code.
func TestDeadlineExceeded(t *testing.T) {
	srv, ts := newRobustServer(t, 200*time.Millisecond)
	resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8,"deadline_ms":20}`)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, body %s, want 408", resp.StatusCode, body)
	}
	if _, code := errBody(t, body); code != "deadline" {
		t.Errorf("code = %q, want deadline", code)
	}
	if st := srv.Stats(); st.DeadlineExceeded == 0 {
		t.Errorf("DeadlineExceeded = 0 after a 408")
	}
}

// TestDeadlineValidation checks deadline_ms bounds and its rejection inside
// sweep jobs.
func TestDeadlineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","deadline_ms":-5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: status = %d, body %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/sweep", `{"jobs":[{"network":"alexnet","deadline_ms":100}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("job-level deadline: status = %d, body %s", resp.StatusCode, body)
	}
	if msg, _ := errBody(t, body); !strings.Contains(msg, "sweep body") {
		t.Errorf("error %q does not point at the sweep-level field", msg)
	}
	// Sweep-level deadline on a fast sweep succeeds.
	resp, body = post(t, ts.URL+"/v1/sweep", `{"deadline_ms":60000,"jobs":[{"network":"alexnet","batch":8}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep-level deadline: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestClientCancel checks a request arriving with a dead context is answered
// 499 with the "canceled" code and counted.
func TestClientCancel(t *testing.T) {
	sim := vdnn.NewSimulator()
	srv := New(sim)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/simulate",
		strings.NewReader(`{"network":"alexnet","batch":8}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, body %s, want 499", rec.Code, rec.Body)
	}
	if _, code := errBody(t, rec.Body.Bytes()); code != "canceled" {
		t.Errorf("code = %q, want canceled", code)
	}
	if st := srv.Stats(); st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}
}

// TestDrainFlow checks readiness flips and admission closes under drain
// while liveness and running work stay untouched.
func TestDrainFlow(t *testing.T) {
	srv, ts := newTestServer(t)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", c)
	}
	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is not readiness)", c)
	}
	resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("simulate during drain: status = %d, body %s", resp.StatusCode, body)
	}
	if _, code := errBody(t, body); code != "draining" {
		t.Errorf("code = %q, want draining", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	if st := srv.Stats(); st.RejectedDraining != 1 {
		t.Errorf("RejectedDraining = %d, want 1", st.RejectedDraining)
	}
}

// TestPanicIsolation checks an injected panic (via the chaos middleware, the
// same unwind path a worker bug would take) becomes a structured 500 and the
// server keeps serving.
func TestPanicIsolation(t *testing.T) {
	sim := vdnn.NewSimulator()
	srv := New(sim, WithChaos(chaos.New(chaos.Config{Seed: 1, PanicProb: 1})))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 from injected panic", resp.StatusCode)
	}
	if st := srv.Stats(); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
}

// TestEnginePanicIsolation checks a panic inside the simulation engine (the
// chaos hook's panic point) surfaces as a 500, not a dead connection.
func TestEnginePanicIsolation(t *testing.T) {
	sim := vdnn.NewSimulator()
	sim.SetChaosHook(chaos.New(chaos.Config{Seed: 1, PanicProb: 1}).Hook())
	srv := New(sim)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s, want 500", resp.StatusCode, body)
	}
	if _, code := errBody(t, body); code != "internal" {
		t.Errorf("code = %q, want internal (engine wraps the panic)", code)
	}
}

// TestInjectedEngineError checks a chaos error injected at the engine's
// simulate point maps to the "injected" taxonomy slot.
func TestInjectedEngineError(t *testing.T) {
	sim := vdnn.NewSimulator()
	sim.SetChaosHook(chaos.New(chaos.Config{Seed: 1, ErrorProb: 1}).Hook())
	srv := New(sim)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s, want 500", resp.StatusCode, body)
	}
	if _, code := errBody(t, body); code != "injected" {
		t.Errorf("code = %q, want injected", code)
	}
	// Injected faults are transient: a retry of the same request (quiet
	// injector now exhausted its one guaranteed hit? prob 1 always fires) —
	// swap the hook off and the key must re-simulate successfully.
	sim.SetChaosHook(nil)
	resp, body = post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after injected fault: status = %d, body %s (errored entries must not be cached)", resp.StatusCode, body)
	}
}

// TestStatsSuperset checks /v1/stats carries both the engine counters and
// the serve counters.
func TestStatsSuperset(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Simulations != 1 {
		t.Errorf("engine Simulations = %d, want 1", st.Simulations)
	}
	if st.Serve.Completed != 1 || st.Serve.Admitted != 1 {
		t.Errorf("serve stats = %+v, want 1 completed / 1 admitted", st.Serve)
	}
}

// TestNoGoroutineLeaksUnderChurn hammers the failure paths — overload
// rejections, deadlines, cancels, drains — and checks the goroutine count
// settles back to baseline.
func TestNoGoroutineLeaksUnderChurn(t *testing.T) {
	srv, ts := newRobustServer(t, 50*time.Millisecond,
		WithMaxConcurrent(1), WithQueueDepth(1))
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"network":"alexnet","batch":%d,"deadline_ms":%d}`, 8+i%4, 10+i*7)
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	srv.StartDrain()
	resp, _ := post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admission = %d, want 503", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines before %d, after %d:\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := srv.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight = %d after churn, want 0", st.InFlight)
	}
}

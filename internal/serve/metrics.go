package serve

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"vdnn"
	"vdnn/internal/metrics"
)

// Observability: a dependency-free Prometheus text exposition at GET /metrics
// and one structured log record per request. Engine, store, planner, job and
// admission counters are published through scrape-time closures over the
// counters the JSON API already reports, so /metrics and /v1/stats can never
// disagree; only the HTTP series (request counts, latency, in-flight) are
// live instruments owned here.

// httpMetrics are the live per-request instruments.
type httpMetrics struct {
	inFlight *metrics.Gauge
	requests *metrics.CounterVec   // {endpoint, code}
	duration *metrics.HistogramVec // {endpoint}
}

// newMetricsRegistry builds the /metrics registry over the server's counters.
// Store series appear only when the server was configured with WithStore.
func (s *Server) newMetricsRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	cf := func(name, help string, fn func() float64) { r.NewCounterFunc(name, help, fn) }
	gf := func(name, help string, fn func() float64) { r.NewGaugeFunc(name, help, fn) }

	// Engine: the simulator's result-cache counters.
	eng := func(pick func(vdnn.EngineStats) int64) func() float64 {
		return func() float64 { return float64(pick(s.sim.Stats())) }
	}
	cf("vdnn_engine_simulations_total", "Top-level requests computed rather than served from the cache.",
		eng(func(st vdnn.EngineStats) int64 { return st.Simulations }))
	cf("vdnn_engine_structures_total", "Capacity-independent structure builds recorded for differential re-pricing.",
		eng(func(st vdnn.EngineStats) int64 { return st.Structures }))
	cf("vdnn_engine_priced_total", "Results produced by replaying a structure instead of simulating.",
		eng(func(st vdnn.EngineStats) int64 { return st.Priced }))
	cf("vdnn_engine_cache_hits_total", "Requests served from a completed cache entry.",
		eng(func(st vdnn.EngineStats) int64 { return st.Hits }))
	cf("vdnn_engine_coalesced_total", "Requests folded onto an in-flight computation of the same key.",
		eng(func(st vdnn.EngineStats) int64 { return st.Coalesced }))
	cf("vdnn_engine_cache_evictions_total", "Completed entries dropped to honor the cache bound.",
		eng(func(st vdnn.EngineStats) int64 { return st.Evictions }))
	cf("vdnn_engine_canceled_total", "Computations aborted because every waiter went away.",
		eng(func(st vdnn.EngineStats) int64 { return st.Canceled }))

	// Store: the persistent result store, when one is attached.
	if st := s.store; st != nil {
		sf := func(pick func(vdnn.StoreStats) int64) func() float64 {
			return func() float64 { return float64(pick(st.Stats())) }
		}
		gf("vdnn_store_records", "Valid records known to this replica (scan at open + local writes).",
			sf(func(v vdnn.StoreStats) int64 { return v.Records }))
		cf("vdnn_store_hits_total", "Read-through lookups answered from disk.",
			sf(func(v vdnn.StoreStats) int64 { return v.Hits }))
		cf("vdnn_store_misses_total", "Read-through lookups that fell through to simulation.",
			sf(func(v vdnn.StoreStats) int64 { return v.Misses }))
		cf("vdnn_store_writes_total", "Successful write-throughs.",
			sf(func(v vdnn.StoreStats) int64 { return v.Writes }))
		cf("vdnn_store_write_errors_total", "Failed write-throughs (logged, never propagated).",
			sf(func(v vdnn.StoreStats) int64 { return v.WriteErrors }))
		cf("vdnn_store_corrupt_records_total", "Records skipped for failing validation at open or read.",
			sf(func(v vdnn.StoreStats) int64 { return v.CorruptSkipped }))
	}

	// Jobs: the async sweep queue.
	jr := s.jobs
	gf("vdnn_jobs_queue_depth", "Accepted jobs waiting for a job worker.",
		func() float64 { return float64(jr.queued.Load()) })
	gf("vdnn_jobs_running", "Jobs currently executing.",
		func() float64 { return float64(jr.running.Load()) })
	gf("vdnn_jobs_retained", "Jobs addressable by GET /v1/jobs/{id}.",
		func() float64 { return float64(jr.stats().Retained) })
	cf("vdnn_jobs_submitted_total", "Jobs accepted with 202.",
		func() float64 { return float64(jr.submitted.Load()) })
	cf("vdnn_jobs_rejected_total", "Job submissions refused for a full job queue.",
		func() float64 { return float64(jr.rejected.Load()) })
	cf("vdnn_jobs_completed_total", "Jobs that ran to the end of their point list.",
		func() float64 { return float64(jr.completed.Load()) })
	cf("vdnn_jobs_canceled_total", "Jobs finalized after cancellation.",
		func() float64 { return float64(jr.canceled.Load()) })
	cf("vdnn_jobs_points_completed_total", "Sweep points that produced a result.",
		func() float64 { return float64(jr.pointsCompleted.Load()) })
	cf("vdnn_jobs_points_failed_total", "Sweep points that failed.",
		func() float64 { return float64(jr.pointsFailed.Load()) })
	cf("vdnn_jobs_points_canceled_total", "Sweep points skipped or stopped by cancellation.",
		func() float64 { return float64(jr.pointsCanceled.Load()) })

	// Serve: the admission layer.
	c := &s.counters
	gf("vdnn_serve_in_flight", "Simulation requests admitted (queued or executing).",
		func() float64 { return float64(c.inFlight.Load()) })
	cf("vdnn_serve_admitted_total", "Simulation requests that entered the system.",
		func() float64 { return float64(c.admitted.Load()) })
	cf("vdnn_serve_completed_total", "Simulation requests answered 2xx.",
		func() float64 { return float64(c.completed.Load()) })
	cf("vdnn_serve_canceled_total", "Requests abandoned by their client (499).",
		func() float64 { return float64(c.canceled.Load()) })
	cf("vdnn_serve_deadline_exceeded_total", "Requests whose deadline fired (408).",
		func() float64 { return float64(c.deadlineExceeded.Load()) })
	cf("vdnn_serve_rejected_overload_total", "Fast-fail 503s from a full queue.",
		func() float64 { return float64(c.rejectedOverload.Load()) })
	cf("vdnn_serve_rejected_draining_total", "503s answered while draining.",
		func() float64 { return float64(c.rejectedDraining.Load()) })
	cf("vdnn_serve_panics_total", "Worker panics converted to 500s.",
		func() float64 { return float64(c.panics.Load()) })

	// HTTP: live per-request instruments, labeled by route pattern (bounded
	// cardinality — the label is the registered pattern, never the raw URL).
	s.http.inFlight = r.NewGauge("vdnn_http_in_flight", "HTTP requests currently being served.")
	s.http.requests = r.NewCounterVec("vdnn_http_requests_total",
		"HTTP requests by route pattern and status code.", "endpoint", "code")
	s.http.duration = r.NewHistogramVec("vdnn_http_request_duration_seconds",
		"HTTP request latency by route pattern.", nil, "endpoint")
	return r
}

// statusRecorder captures the status code written downstream. Unwrap keeps
// http.ResponseController features (notably Flush, which the NDJSON job
// stream depends on) working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Request ids: a per-process random prefix plus a sequence number — unique,
// cheap, and greppable across the daemon's logs.
var (
	ridPrefix = func() string {
		var b [4]byte
		_, _ = rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Int64
)

// instrument wraps one route's handler with the request-scoped observability:
// X-Request-Id, the in-flight gauge, the per-endpoint counter and latency
// histogram, and a structured log record.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := ridPrefix + "-" + strconv.FormatInt(ridSeq.Add(1), 10)
		w.Header().Set("X-Request-Id", rid)
		sr := &statusRecorder{ResponseWriter: w}
		s.http.inFlight.Inc()
		start := time.Now()
		// Record via defer so a panicking handler (isolated into a 500 by the
		// recoverer above this middleware) still settles the gauge and logs;
		// the panic is re-raised for the recoverer after recording it as 500.
		defer func() {
			p := recover()
			elapsed := time.Since(start)
			s.http.inFlight.Dec()
			status := sr.status
			if status == 0 {
				status = http.StatusOK
			}
			if p != nil {
				status = http.StatusInternalServerError
			}
			s.http.requests.WithLabelValues(pattern, strconv.Itoa(status)).Inc()
			s.http.duration.WithLabelValues(pattern).Observe(elapsed.Seconds())
			s.log.Info("request",
				"id", rid,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", pattern,
				"status", status,
				"dur_ms", float64(elapsed)/float64(time.Millisecond),
			)
			if p != nil {
				panic(p)
			}
		}()
		h(sr, r)
	})
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vdnn"
)

// newJobServer builds a server tuned for job tests: optional per-simulation
// holdup (chaos hook) and explicit worker/queue knobs.
func newJobServer(t *testing.T, holdup time.Duration, serveOpts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	sim := vdnn.NewSimulator(vdnn.WithParallelism(4))
	if holdup > 0 {
		sim.SetChaosHook(func(string) error { time.Sleep(holdup); return nil })
	}
	srv := New(sim, serveOpts...)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// submitJob posts a sweep body to /v1/jobs and returns the decoded 202.
func submitJob(t *testing.T, ts *httptest.Server, body string) JobAccepted {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, b)
	}
	var acc JobAccepted
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatalf("202 body %q: %v", b, err)
	}
	if acc.ID == "" || acc.Status != JobQueued || acc.Stream != "/v1/jobs/"+acc.ID {
		t.Fatalf("bad JobAccepted: %+v", acc)
	}
	return acc
}

// streamJob consumes a job's NDJSON stream to the end.
func streamJob(t *testing.T, ts *httptest.Server, id string) ([]JobEvent, JobSummary) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d, body %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	var (
		events  []JobEvent
		summary JobSummary
		sawSum  bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("NDJSON line %q: %v", line, err)
		}
		switch probe.Type {
		case "point":
			var ev JobEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatal(err)
			}
			events = append(events, ev)
		case "summary":
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
			sawSum = true
		default:
			t.Fatalf("unknown event type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSum {
		t.Fatalf("stream ended without a summary (got %d points)", len(events))
	}
	return events, summary
}

func sweepBody(n int) string {
	jobs := make([]string, n)
	for i := range jobs {
		jobs[i] = fmt.Sprintf(`{"network":"alexnet","batch":%d,"policy":"vdnn-all"}`, 8+i)
	}
	return fmt.Sprintf(`{"jobs":[%s]}`, strings.Join(jobs, ","))
}

// TestJobLifecycle submits a three-point sweep, streams it to completion, and
// checks the points arrive in order with results, the summary closes the
// stream, a second GET replays the finished job, and the counters add up.
func TestJobLifecycle(t *testing.T) {
	srv, ts := newJobServer(t, 0)
	acc := submitJob(t, ts, sweepBody(3))
	if acc.Points != 3 {
		t.Fatalf("accepted %d points, want 3", acc.Points)
	}

	events, sum := streamJob(t, ts, acc.ID)
	if len(events) != 3 {
		t.Fatalf("got %d point events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Errorf("event %d has index %d (stream out of order)", i, ev.Index)
		}
		if ev.Result == nil || ev.Error != "" || ev.Code != "" {
			t.Errorf("event %d: %+v, want a clean result", i, ev)
		} else if ev.Result.Batch != 8+i {
			t.Errorf("event %d result has batch %d, want %d", i, ev.Result.Batch, 8+i)
		}
	}
	if sum.Status != JobDone || sum.Completed != 3 || sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("summary %+v, want done 3/0/0", sum)
	}

	// A finished job replays instantly — the stream doubles as the fetch.
	replay, sum2 := streamJob(t, ts, acc.ID)
	if len(replay) != 3 || sum2.Status != JobDone {
		t.Fatalf("replay: %d events, summary %+v", len(replay), sum2)
	}

	// The job shows up in the listing and in /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != acc.ID {
		t.Fatalf("job listing %+v", list)
	}
	js := srv.jobs.stats()
	if js.Submitted != 1 || js.Completed != 1 || js.PointsCompleted != 3 || js.Retained != 1 {
		t.Fatalf("job stats %+v", js)
	}
}

// TestJobUnknown404 checks the unknown-job taxonomy on GET and DELETE.
func TestJobUnknown404(t *testing.T) {
	_, ts := newJobServer(t, 0)
	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL+"/v1/jobs/j-nope-1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s unknown job: status %d", method, resp.StatusCode)
		}
		if _, code := errBody(t, b); code != "unknown_job" {
			t.Fatalf("%s unknown job: code %q", method, code)
		}
	}
}

// TestJobCancel deletes a slow job mid-run and checks the remaining points
// stream as canceled and the job finalizes as canceled.
func TestJobCancel(t *testing.T) {
	_, ts := newJobServer(t, 400*time.Millisecond, WithJobWorkers(1))
	acc := submitJob(t, ts, sweepBody(4))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	events, sum := streamJob(t, ts, acc.ID)
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (canceled points still stream)", len(events))
	}
	if sum.Status != JobCanceled {
		t.Fatalf("summary %+v, want canceled", sum)
	}
	var canceled int
	for _, ev := range events {
		if ev.Code == "canceled" {
			canceled++
			if ev.Result != nil || ev.Error == "" {
				t.Errorf("canceled event %d should carry an error, no result: %+v", ev.Index, ev)
			}
		}
	}
	if canceled == 0 {
		t.Fatalf("no canceled points despite DELETE before the first 400ms point finished")
	}
	if sum.Canceled != canceled || sum.Completed+sum.Failed+sum.Canceled != 4 {
		t.Fatalf("summary tallies %+v don't match %d canceled events", sum, canceled)
	}
}

// TestJobRejectDraining checks the drain contract: submissions are refused
// with 503 "draining", but a job accepted before the drain still finishes and
// DrainJobs observes that.
func TestJobRejectDraining(t *testing.T) {
	srv, ts := newJobServer(t, 100*time.Millisecond)
	acc := submitJob(t, ts, sweepBody(2))

	srv.StartDrain()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d", resp.StatusCode)
	}
	if _, code := errBody(t, b); code != "draining" {
		t.Fatalf("submit while draining: code %q", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining 503 without Retry-After")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.DrainJobs(ctx); err != nil {
		t.Fatalf("DrainJobs: %v", err)
	}
	_, sum := streamJob(t, ts, acc.ID)
	if sum.Status != JobDone || sum.Completed != 2 {
		t.Fatalf("pre-drain job should have finished: %+v", sum)
	}
}

// TestJobQueueFull checks the fast-fail path: with one worker and a zero
// queue, a second concurrent submission bounces with 503 "overloaded".
func TestJobQueueFull(t *testing.T) {
	srv, ts := newJobServer(t, 300*time.Millisecond,
		WithJobWorkers(1), WithJobQueueDepth(0))

	first := submitJob(t, ts, sweepBody(2))
	// The single worker holds the first job; the queue (cap 0) may briefly
	// hold it too before the worker picks it up, so retry until the bounce.
	deadline := time.Now().Add(5 * time.Second)
	var rejected bool
	for time.Now().Before(deadline) && !rejected {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody(1)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			if _, code := errBody(t, b); code != "overloaded" {
				t.Fatalf("queue-full code %q", code)
			}
			rejected = true
		case http.StatusAccepted:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, b)
		}
	}
	if !rejected {
		t.Fatalf("never saw a 503 overloaded with 1 worker and queue depth 0")
	}
	if srv.jobs.rejected.Load() == 0 {
		t.Fatalf("rejected counter not bumped")
	}
	if _, sum := streamJob(t, ts, first.ID); sum.Status != JobDone {
		t.Fatalf("first job: %+v", sum)
	}
}

// TestJobConcurrentStress is the -race workout: many goroutines submitting,
// streaming, listing, canceling and scraping concurrently, then a drain that
// must observe every accepted job finished.
func TestJobConcurrentStress(t *testing.T) {
	srv, ts := newJobServer(t, 0, WithJobWorkers(4), WithJobQueueDepth(64))

	const submitters = 8
	const jobsEach = 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []string
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				body := fmt.Sprintf(`{"jobs":[{"network":"alexnet","batch":%d},{"network":"alexnet","batch":%d,"policy":"vdnn-all"}]}`,
					8+(g*jobsEach+i)%24, 8+(g*jobsEach+i)%24)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("status %d: %s", resp.StatusCode, b)
					return
				}
				var acc JobAccepted
				if err := json.Unmarshal(b, &acc); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				accepted = append(accepted, acc.ID)
				mu.Unlock()
				switch i % 3 {
				case 0: // stream it
					_, sum := streamJob(t, ts, acc.ID)
					if sum.Points != 2 {
						t.Errorf("summary %+v", sum)
					}
				case 1: // cancel it (may already be done — both are valid)
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc.ID, nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	// Concurrent scrapers and listers race the submitters.
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range []string{"/metrics", "/v1/jobs", "/v1/stats"} {
					if resp, err := http.Get(ts.URL + p); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.DrainJobs(ctx); err != nil {
		t.Fatalf("DrainJobs after stress: %v", err)
	}
	js := srv.jobs.stats()
	if js.Submitted != int64(len(accepted)) {
		t.Fatalf("submitted %d, accepted %d", js.Submitted, len(accepted))
	}
	if js.Completed+js.Canceled != js.Submitted {
		t.Fatalf("drained but %d of %d jobs unaccounted: %+v",
			js.Submitted-js.Completed-js.Canceled, js.Submitted, js)
	}
	if js.QueueDepth != 0 || js.Running != 0 {
		t.Fatalf("drained but queue/running nonzero: %+v", js)
	}
	// Every job is still addressable after the storm.
	for _, id := range accepted {
		if srv.jobs.get(id) == nil {
			t.Fatalf("job %s lost (retention should hold %d < %d)", id, len(accepted), maxRetainedJobs)
		}
	}
}

// TestStatsIncludesJobsAndStore checks the /v1/stats merge: the jobs block is
// always present; the store block appears exactly when the server knows one.
func TestStatsIncludesJobsAndStore(t *testing.T) {
	_, ts := newJobServer(t, 0)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var noStore map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&noStore); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := noStore["jobs"]; !ok {
		t.Fatalf("stats without jobs block: %v", noStore)
	}
	if _, ok := noStore["store"]; ok {
		t.Fatalf("storeless server reports a store block")
	}

	st, err := vdnn.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sim := vdnn.NewSimulator(vdnn.WithParallelism(2), vdnn.WithStore(st))
	srv := New(sim, WithStore(st))
	t.Cleanup(srv.Close)
	ts2 := httptest.NewServer(srv)
	t.Cleanup(ts2.Close)
	if _, err := http.Post(ts2.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"network":"alexnet","batch":16,"policy":"vdnn-all"}`)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Store == nil {
		t.Fatalf("store-backed server missing store block")
	}
	if stats.Store.Writes != 1 {
		t.Fatalf("store stats after one simulation: %+v", stats.Store)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"vdnn"
)

func newTestServer(t *testing.T, opts ...vdnn.SimulatorOption) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(vdnn.NewSimulator(opts...))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body := readAll(t, resp); !strings.Contains(body, "ok") {
		t.Fatalf("body = %q", body)
	}
}

func TestSimulateValid(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":64,"policy":"vdnn-all","algo":"m"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !sr.Trainable {
		t.Errorf("alexnet(64) vdnn-all(m) should train: %s", sr.FailReason)
	}
	if sr.Policy != vdnn.VDNNAll || sr.OffloadBytes == 0 {
		t.Errorf("response = %+v", sr)
	}
	if sr.IterTimeMs <= 0 || sr.MaxUsageBytes <= 0 {
		t.Errorf("missing metrics in %+v", sr)
	}
}

func TestSimulateDefaults(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate", `{"network":"vgg16"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Batch != 64 || sr.Policy != vdnn.VDNNDyn || sr.GPU != "titanx" {
		t.Errorf("defaults not applied: %+v", sr)
	}
	if sr.Chosen == "" {
		t.Error("dynamic policy response missing chosen configuration")
	}
}

func TestSimulateInvalid(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown network", `{"network":"nope"}`},
		{"bad policy token", `{"network":"alexnet","policy":"sometimes"}`},
		{"unknown gpu", `{"network":"alexnet","gpu":"tpu"}`},
		{"unknown link", `{"network":"alexnet","link":"carrier-pigeon"}`},
		{"negative batch", `{"network":"alexnet","batch":-4}`},
		{"unknown field", `{"network":"alexnet","polcy":"base"}`},
		{"not json", `who goes there`},
		{"negative memory", `{"network":"alexnet","gpu_mem_gb":-2}`},
		{"overflowing host memory", `{"network":"alexnet","host_gb":1e10}`},
		{"overflowing gpu memory", `{"network":"alexnet","gpu_mem_gb":1e300}`},
		{"batch above cap", `{"network":"alexnet","batch":5000}`},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/v1/simulate", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, resp.StatusCode, body)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body = %s", c.name, body)
		}
	}
}

func TestSimulateUntrainable(t *testing.T) {
	_, ts := newTestServer(t)
	// VGG-16 at batch 256 under the baseline with performance-optimal
	// algorithms oversubscribes a 12 GB Titan X (the paper's headline case):
	// the response must carry trainable=false plus the oracle-measured
	// hypothetical demand, not an HTTP error.
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"vgg16","batch":256,"policy":"base","algo":"p"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trainable {
		t.Fatal("vgg16(256) base(p) should not train on 12 GB")
	}
	if sr.FailReason == "" {
		t.Error("untrainable response missing fail_reason")
	}
	if sr.MaxUsageBytes <= 12<<30 {
		t.Errorf("hypothetical demand %d should exceed 12 GB", sr.MaxUsageBytes)
	}
}

func TestSimulateCacheHit(t *testing.T) {
	srv, ts := newTestServer(t)
	body := `{"network":"alexnet","batch":32,"policy":"vdnn-conv","algo":"m"}`
	_, first := post(t, ts.URL+"/v1/simulate", body)
	if sims := srv.Simulator().Stats().Simulations; sims != 1 {
		t.Fatalf("simulations after first request = %d", sims)
	}
	_, second := post(t, ts.URL+"/v1/simulate", body)
	st := srv.Simulator().Stats()
	if st.Simulations != 1 {
		t.Errorf("repeat request re-simulated (stats %+v)", st)
	}
	if st.Hits == 0 {
		t.Errorf("repeat request not a cache hit (stats %+v)", st)
	}
	if string(first) != string(second) {
		t.Error("identical requests produced different responses")
	}
}

func TestSweep(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/sweep", `{"jobs":[
		{"network":"alexnet","batch":32,"policy":"base","algo":"p"},
		{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m"},
		{"network":"alexnet","batch":32,"policy":"base","algo":"p"}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sw SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(sw.Results))
	}
	if !reflect.DeepEqual(sw.Results[0], sw.Results[2]) {
		t.Error("duplicate sweep jobs returned different responses")
	}
	if sw.Results[0].Policy != vdnn.Baseline || sw.Results[1].Policy != vdnn.VDNNAll {
		t.Errorf("sweep order not preserved: %+v", sw.Results)
	}
	if st := srv.Simulator().Stats(); st.Simulations != 2 {
		t.Errorf("sweep with duplicate simulated %d times, want 2", st.Simulations)
	}

	// Invalid job index is reported.
	resp, body = post(t, ts.URL+"/v1/sweep", `{"jobs":[{"network":"alexnet"},{"network":"nope"}]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "job 1") {
		t.Errorf("invalid sweep job: status %d body %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/sweep", `{"jobs":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d body %s", resp.StatusCode, body)
	}
}

func TestNetworksCatalog(t *testing.T) {
	tiny := vdnn.TitanX()
	tiny.Name = "tiny"
	tiny.MemBytes = 1 << 30
	_, ts := newTestServer(t, vdnn.WithGPU("tiny", tiny))
	resp, err := http.Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cat CatalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Networks) == 0 || len(cat.Links) == 0 {
		t.Fatalf("catalog = %+v", cat)
	}
	found := map[string]bool{}
	for _, g := range cat.GPUs {
		found[g] = true
	}
	if !found["titanx"] || !found["tiny"] {
		t.Errorf("gpus = %v", cat.GPUs)
	}
}

// TestConcurrentIdenticalRequests is the serving-path race check: many
// goroutines posting the same request must all receive byte-identical
// responses, from (at most) one simulation. Run under -race.
func TestConcurrentIdenticalRequests(t *testing.T) {
	const n = 24
	// This test exercises coalescing, not admission: give the queue room
	// for all n requests at once so none can flake into a 503 (default
	// capacity is 4 executing + 16 queued = 20 < n).
	srv := New(vdnn.NewSimulator(vdnn.WithParallelism(4)), WithQueueDepth(n))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	body := `{"network":"googlenet","batch":64,"policy":"vdnn-conv","algo":"m"}`

	responses := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			responses[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if responses[i] != responses[0] {
			t.Errorf("request %d response differs:\n%s\nvs\n%s", i, responses[i], responses[0])
		}
	}
	if st := srv.Simulator().Stats(); st.Simulations != 1 {
		t.Errorf("%d identical concurrent requests ran %d simulations, want 1 (stats %+v)",
			n, st.Simulations, st)
	}
}

// TestConcurrentMixedSweeps hammers the sweep endpoint with overlapping
// batches; overlapping jobs must dedup across requests. Run under -race.
func TestConcurrentMixedSweeps(t *testing.T) {
	srv, ts := newTestServer(t, vdnn.WithParallelism(4))
	bodies := []string{
		`{"jobs":[{"network":"alexnet","batch":32,"policy":"base","algo":"p"},{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m"}]}`,
		`{"jobs":[{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m"},{"network":"alexnet","batch":32,"policy":"vdnn-conv","algo":"m"}]}`,
		`{"jobs":[{"network":"alexnet","batch":32,"policy":"vdnn-conv","algo":"m"},{"network":"alexnet","batch":32,"policy":"base","algo":"p"}]}`,
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for _, b := range bodies {
			wg.Add(1)
			go func(b string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
			}(b)
		}
	}
	wg.Wait()
	if st := srv.Simulator().Stats(); st.Simulations != 3 {
		t.Errorf("3 distinct configurations simulated %d times (stats %+v)", st.Simulations, st)
	}
}

// TestSimulateTrace: "trace": true returns Chrome trace-event JSON inline.
func TestSimulateTrace(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m","trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Trace) == 0 {
		t.Fatal("no inline trace in the response")
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(sr.Trace, &doc); err != nil {
		t.Fatalf("trace is not valid chrome-trace JSON: %v", err)
	}
	var kernels, copies int
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "kernel":
			kernels++
		case "copyD2H", "copyH2D":
			copies++
		}
	}
	if kernels == 0 || copies == 0 {
		t.Fatalf("trace incomplete: %d kernels, %d copies", kernels, copies)
	}

	// Without the flag, no trace is attached.
	resp, body = post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var plain SimResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != 0 {
		t.Fatal("trace attached without being requested")
	}
}

// TestSimulateMultiDevice: devices/topology surface end to end, with
// per-device metrics and the multi-GPU trace tracks.
func TestSimulateMultiDevice(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m","devices":2,"topology":"shared-x16","trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Devices != 2 || len(sr.PerDevice) != 2 {
		t.Fatalf("devices = %d, per_device = %d, want 2/2", sr.Devices, len(sr.PerDevice))
	}
	if sr.Topology != "shared-x16" {
		t.Errorf("topology = %q", sr.Topology)
	}
	if sr.AllReduceBytes == 0 {
		t.Error("no all-reduce traffic reported")
	}
	for _, d := range sr.PerDevice {
		if d.StepTimeMs <= 0 {
			t.Errorf("device %d has step time %v", d.Device, d.StepTimeMs)
		}
	}
	var doc struct {
		TraceEvents []struct {
			PID int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(sr.Trace, &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if !pids[0] || !pids[1] {
		t.Errorf("trace pids = %v, want both devices", pids)
	}

	// Bounds and validation.
	resp, _ = post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","devices":99}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("devices=99: status %d, want 400", resp.StatusCode)
	}
	resp, body = post(t, ts.URL+"/v1/simulate", `{"network":"alexnet","devices":2,"topology":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown topology") {
		t.Errorf("bad topology: status %d body %s", resp.StatusCode, body)
	}
}

// TestSweepMultiDeviceAndTraceRejection: devices flow through sweeps; trace
// does not.
func TestSweepMultiDeviceAndTraceRejection(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/sweep", `{"jobs":[
		{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m","devices":1},
		{"network":"alexnet","batch":32,"policy":"vdnn-all","algo":"m","devices":2}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sw SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 2 {
		t.Fatalf("results = %d", len(sw.Results))
	}
	if sw.Results[0].Devices != 0 || sw.Results[1].Devices != 2 {
		t.Errorf("devices = %d/%d, want 0/2", sw.Results[0].Devices, sw.Results[1].Devices)
	}
	if sw.Results[1].IterTimeMs <= sw.Results[0].IterTimeMs {
		t.Errorf("2 contending replicas (%v ms) not slower than 1 (%v ms)",
			sw.Results[1].IterTimeMs, sw.Results[0].IterTimeMs)
	}
	resp, body = post(t, ts.URL+"/v1/sweep", `{"jobs":[{"network":"alexnet","trace":true}]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "trace") {
		t.Errorf("sweep trace: status %d body %s", resp.StatusCode, body)
	}
}

// TestCatalogListsTopologies: the catalog advertises the topology registry.
func TestCatalogListsTopologies(t *testing.T) {
	_, ts := newTestServer(t)
	res, err := http.Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var cat CatalogResponse
	if err := json.NewDecoder(res.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range cat.Topologies {
		if n == "shared-x16" {
			found = true
		}
	}
	if !found {
		t.Errorf("topologies = %v, want shared-x16 present", cat.Topologies)
	}
}

// TestSimulateCompression exercises the compressed-DMA knob: the response
// reports wire vs raw traffic, the ratio, and codec busy time, and the wire
// traffic never exceeds the uncompressed run's.
func TestSimulateCompression(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":64,"policy":"vdnn-all","algo":"m"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var plain SimResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Codec != "" || plain.CompressionRatio != 0 {
		t.Fatalf("uncompressed response carries codec fields: %+v", plain)
	}

	resp, body = post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":64,"policy":"vdnn-all","algo":"m","codec":"zvc"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Codec != "zvc" || sr.SparsityProfile != "cdma" {
		t.Fatalf("codec/profile = %q/%q", sr.Codec, sr.SparsityProfile)
	}
	if sr.OffloadBytes > plain.OffloadBytes {
		t.Fatalf("compression increased offload bytes: %d > %d", sr.OffloadBytes, plain.OffloadBytes)
	}
	if sr.OffloadRawBytes != plain.OffloadBytes {
		t.Fatalf("raw bytes %d != uncompressed wire %d", sr.OffloadRawBytes, plain.OffloadBytes)
	}
	if sr.CompressionRatio <= 1 || sr.CompressTimeMs <= 0 || sr.DecompressTimeMs <= 0 {
		t.Fatalf("codec metrics missing: %+v", sr)
	}

	// Explicit profile selection round-trips.
	resp, body = post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":64,"policy":"vdnn-all","algo":"m","codec":"rle","sparsity":"flat50"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Codec != "rle" || sr.SparsityProfile != "flat50" {
		t.Fatalf("codec/profile = %q/%q", sr.Codec, sr.SparsityProfile)
	}
}

// TestSimulateCompressionInvalid: bad codec tokens, unknown profiles and a
// profile without a codec are client errors.
func TestSimulateCompressionInvalid(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"network":"alexnet","codec":"gzip"}`,
		`{"network":"alexnet","codec":"zvc","sparsity":"nope"}`,
		`{"network":"alexnet","sparsity":"cdma"}`,
		`{"network":"alexnet","codec":"zvc","page_migration":true}`,
	} {
		resp, b := post(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", body, resp.StatusCode, b)
		}
	}
}

// TestCatalogListsCodecs: the catalog advertises the codec and sparsity
// presets a request can name.
func TestCatalogListsCodecs(t *testing.T) {
	_, ts := newTestServer(t)
	res, err := http.Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var cat CatalogResponse
	if err := json.NewDecoder(res.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Codecs) != 3 || cat.Codecs[1] != "zvc" {
		t.Errorf("codecs = %v", cat.Codecs)
	}
	found := false
	for _, n := range cat.SparsityProfiles {
		if n == "cdma" {
			found = true
		}
	}
	if !found {
		t.Errorf("sparsity profiles = %v, want cdma present", cat.SparsityProfiles)
	}
}

func TestSimulatePipeline(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"vgg16","batch":64,"policy":"vdnn-all","algo":"m","stages":4,"micro_batches":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out SimResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stages != 4 || out.MicroBatches != 8 {
		t.Fatalf("stages/micro_batches = %d/%d, want 4/8", out.Stages, out.MicroBatches)
	}
	if len(out.PerStage) != 4 {
		t.Fatalf("per_stage has %d entries, want 4", len(out.PerStage))
	}
	if out.InterStageBytes <= 0 || out.BubbleTimeMs <= 0 || out.StageImbalance < 1 {
		t.Fatalf("pipeline metrics missing: %+v", out)
	}
	var send, recv int64
	for _, s := range out.PerStage {
		send += s.SendBytes
		recv += s.RecvBytes
	}
	if send != recv || send != out.InterStageBytes {
		t.Fatalf("inter-stage bytes not conserved over the wire: send %d, recv %d, total %d",
			send, recv, out.InterStageBytes)
	}
	// Pipeline runs carry the device view too.
	if len(out.PerDevice) != 4 || out.Topology == "" {
		t.Fatalf("device view missing: %d devices, topology %q", len(out.PerDevice), out.Topology)
	}
}

func TestSimulatePipelineExplicitCuts(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"vgg16","batch":64,"policy":"vdnn-all","algo":"m","stages":2,"stage_cuts":"13"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out SimResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.PerStage) != 2 || out.PerStage[1].FirstLayer != 13 {
		t.Fatalf("explicit cut ignored: %+v", out.PerStage)
	}
}

func TestSimulatePipelineInvalid(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct{ name, body string }{
		{"stages over limit", `{"network":"alexnet","stages":999}`},
		{"negative stages", `{"network":"alexnet","stages":-1}`},
		{"stages with devices", `{"network":"alexnet","stages":2,"devices":2}`},
		{"micro_batches without stages", `{"network":"alexnet","micro_batches":4}`},
		{"stage_cuts without stages", `{"network":"alexnet","stage_cuts":"3"}`},
		{"bad stage_cuts", `{"network":"vgg16","batch":64,"stages":2,"stage_cuts":"zzz"}`},
		{"cut count mismatch", `{"network":"vgg16","batch":64,"stages":3,"stage_cuts":"13"}`},
	} {
		resp, body := post(t, ts.URL+"/v1/simulate", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "error") {
			t.Errorf("%s: missing error body: %s", tc.name, body)
		}
	}
}

func TestSweepPipeline(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/sweep",
		`{"jobs":[{"network":"vgg16","batch":64,"policy":"vdnn-all","algo":"m","stages":2},
		          {"network":"vgg16","batch":64,"policy":"vdnn-all","algo":"m"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Stages != 2 || out.Results[1].Stages != 0 {
		t.Fatalf("stage fields: %d, %d", out.Results[0].Stages, out.Results[1].Stages)
	}
}

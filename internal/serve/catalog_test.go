package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestCatalogListsBackends checks the hardware-catalog listing on both
// routes: the backend entries carry the classification metadata (memory
// kind, link class) alongside the names the simulate/sweep/plan endpoints
// accept.
func TestCatalogListsBackends(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/networks", "/v1/catalog"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var cat CatalogResponse
		err = json.NewDecoder(resp.Body).Decode(&cat)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(cat.Backends) == 0 || len(cat.Backends) != len(cat.GPUs) {
			t.Fatalf("%s: %d backends vs %d gpus", path, len(cat.Backends), len(cat.GPUs))
		}
		byName := map[string]BackendInfo{}
		for _, b := range cat.Backends {
			byName[b.Name] = b
		}
		rapid, ok := byName["rapidnn"]
		if !ok {
			t.Fatalf("%s: backends lack rapidnn: %+v", path, cat.Backends)
		}
		if rapid.Memory != "near-dram" || rapid.LinkClass != "on-die" {
			t.Errorf("%s: rapidnn classified as %q/%q", path, rapid.Memory, rapid.LinkClass)
		}
		p100, ok := byName["p100"]
		if !ok || p100.Memory != "hbm" || p100.LinkClass != "nvlink" {
			t.Errorf("%s: p100 entry = %+v (%v)", path, p100, ok)
		}
		titan, ok := byName["titanx"]
		if !ok || titan.Memory != "gddr" || titan.LinkClass != "pcie" || titan.MemGB != 12 {
			t.Errorf("%s: titanx entry = %+v (%v)", path, titan, ok)
		}
	}
}

// TestSimulateReportsEnergy checks the wire energy breakdown: present,
// conserved against the reported power over the step, and per-device on
// multi-device runs.
func TestSimulateReportsEnergy(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":128,"policy":"vdnn-all","algo":"m","codec":"zvc"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SimResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.EnergyJ <= 0 || sr.ComputeEnergyJ <= 0 || sr.IdleEnergyJ <= 0 {
		t.Fatalf("energy fields = %+v", sr)
	}
	sum := sr.ComputeEnergyJ + sr.DMAEnergyJ + sr.CodecEnergyJ + sr.IdleEnergyJ
	if rel := (sum - sr.EnergyJ) / sr.EnergyJ; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("breakdown %f != total %f", sum, sr.EnergyJ)
	}
	want := sr.AvgPowerW * sr.IterTimeMs / 1e3
	if rel := (sr.EnergyJ - want) / want; rel > 1e-6 || rel < -1e-6 {
		t.Errorf("energy %f J != avg power x step %f J", sr.EnergyJ, want)
	}

	resp, body = post(t, ts.URL+"/v1/simulate",
		`{"network":"alexnet","batch":128,"policy":"vdnn-conv","algo":"p","devices":2,"topology":"shared-x16"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.PerDevice) != 2 {
		t.Fatalf("device rows = %d", len(sr.PerDevice))
	}
	var devSum float64
	for _, d := range sr.PerDevice {
		if d.EnergyJ <= 0 {
			t.Errorf("device %d energy = %f", d.Device, d.EnergyJ)
		}
		devSum += d.EnergyJ
	}
	if rel := (devSum - sr.EnergyJ) / sr.EnergyJ; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("fleet energy %f != device sum %f", sr.EnergyJ, devSum)
	}
}

// TestPlanObjectiveOnWire checks the planner endpoint round-trips the
// objective and defaults it to time.
func TestPlanObjectiveOnWire(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/plan",
		`{"network":"alexnet","batch":64,"max_devices":1,"objective":"energy"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Objective != "energy" {
		t.Errorf("objective = %q", pr.Objective)
	}
	if pr.Feasible && pr.Result.EnergyJ <= 0 {
		t.Errorf("winner reports no energy: %+v", pr.Result)
	}
	resp, body = post(t, ts.URL+"/v1/plan", `{"network":"alexnet","batch":64,"max_devices":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Objective != "time" {
		t.Errorf("default objective = %q", pr.Objective)
	}
}

// TestSweepUnknownBackend400 completes the 400 taxonomy across the three
// simulation surfaces: a sweep job naming an unknown backend fails the whole
// request up front with the catalog in the message.
func TestSweepUnknownBackend400(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/sweep",
		`{"jobs":[{"network":"alexnet"},{"network":"alexnet","gpu":"tpu"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown gpu") || !strings.Contains(string(body), "titanx") {
		t.Errorf("body = %s", body)
	}
	var e struct{ Code string }
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "invalid" {
		t.Errorf("code = %q", e.Code)
	}
}

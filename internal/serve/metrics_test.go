package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vdnn"
)

// TestMetricsExposition scrapes /metrics on a store-backed server after some
// traffic and checks the series the CI smoke greps for are all present, typed
// and non-trivial.
func TestMetricsExposition(t *testing.T) {
	st, err := vdnn.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sim := vdnn.NewSimulator(vdnn.WithParallelism(2), vdnn.WithStore(st))
	srv := New(sim, WithStore(st))
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Traffic: one sync simulation (engine + store + http series move) and
	// one async job (jobs series move).
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"network":"alexnet","batch":16,"policy":"vdnn-all"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("response without X-Request-Id")
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	acc := submitJob(t, ts, sweepBody(1))
	if _, sum := streamJob(t, ts, acc.ID); sum.Status != JobDone {
		t.Fatalf("job: %+v", sum)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got, want := resp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Fatalf("Content-Type %q, want %q", got, want)
	}
	text := string(body)

	for _, series := range []string{
		"vdnn_engine_simulations_total",
		"vdnn_engine_cache_hits_total",
		"vdnn_store_hits_total",
		"vdnn_store_writes_total",
		"vdnn_jobs_queue_depth",
		"vdnn_jobs_submitted_total",
		"vdnn_serve_admitted_total",
		"vdnn_http_in_flight",
		"vdnn_http_requests_total",
		"vdnn_http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(text, "\n"+series) && !strings.HasPrefix(text, series) {
			t.Errorf("missing series %s", series)
		}
	}
	for _, line := range []string{
		"# TYPE vdnn_http_request_duration_seconds histogram",
		"vdnn_engine_simulations_total 2", // the sync simulate + the job point
		"vdnn_store_writes_total 2",
		"vdnn_jobs_points_completed_total 1",
		`endpoint="POST /v1/simulate"`,
		`code="200"`,
	} {
		if !strings.Contains(text, line) {
			t.Errorf("missing %q in exposition:\n%s", line, text)
		}
	}
}

package hostmem

import (
	"testing"

	"vdnn/internal/sim"
)

func TestAllocPinned(t *testing.T) {
	h := Standard64GB()
	if h.Capacity() != 64<<30 {
		t.Fatalf("capacity = %d", h.Capacity())
	}
	r, cost, err := h.AllocPinned(1<<30, "offload-x")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pinned || r.Size != 1<<30 {
		t.Fatalf("bad region %+v", r)
	}
	if h.PinnedBytes() != 1<<30 || h.TotalBytes() != 1<<30 {
		t.Fatalf("accounting wrong: pinned=%d total=%d", h.PinnedBytes(), h.TotalBytes())
	}
	// Pinning 1 GB should cost on the order of the configured per-GB cost.
	if cost != 200*sim.Millisecond {
		t.Fatalf("pin cost = %v, want 200ms", cost)
	}
	h.Free(r)
	if h.TotalBytes() != 0 {
		t.Fatal("free did not release")
	}
	if h.Peak() != 1<<30 {
		t.Fatalf("peak = %d, want 1 GiB", h.Peak())
	}
}

func TestAllocPageable(t *testing.T) {
	h := New(1 << 30)
	r, err := h.AllocPageable(100<<20, "scratch")
	if err != nil {
		t.Fatal(err)
	}
	if r.Pinned {
		t.Fatal("pageable region marked pinned")
	}
	if h.PageableBytes() != 100<<20 {
		t.Fatalf("pageable = %d", h.PageableBytes())
	}
	h.Free(r)
	if h.PageableBytes() != 0 {
		t.Fatal("free did not release")
	}
}

func TestHostOOM(t *testing.T) {
	h := New(1 << 20)
	if _, _, err := h.AllocPinned(2<<20, "big"); err == nil {
		t.Fatal("expected host OOM")
	}
	if _, err := h.AllocPageable(2<<20, "big"); err == nil {
		t.Fatal("expected host OOM")
	}
	// Mixed usage counts toward the same capacity.
	if _, _, err := h.AllocPinned(1<<19, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AllocPageable(1<<19, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AllocPageable(1, "c"); err == nil {
		t.Fatal("expected OOM when full")
	}
}

func TestBadSizes(t *testing.T) {
	h := New(1 << 20)
	if _, _, err := h.AllocPinned(0, "zero"); err == nil {
		t.Fatal("zero pinned alloc should fail")
	}
	if _, err := h.AllocPageable(-5, "neg"); err == nil {
		t.Fatal("negative pageable alloc should fail")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	h := New(1 << 20)
	r, _, _ := h.AllocPinned(512, "x")
	h.Free(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h.Free(r)
}

func TestFreeNil(t *testing.T) {
	h := New(1 << 20)
	h.Free(nil) // must not panic
}

func TestPeakTracksMixed(t *testing.T) {
	h := New(1 << 30)
	a, _, _ := h.AllocPinned(400<<20, "a")
	b, _ := h.AllocPageable(200<<20, "b")
	h.Free(a)
	c, _, _ := h.AllocPinned(100<<20, "c")
	_ = b
	_ = c
	if h.Peak() != 600<<20 {
		t.Fatalf("peak = %d, want 600 MiB", h.Peak())
	}
}

func TestNonPositiveCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

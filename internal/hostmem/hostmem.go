// Package hostmem models host (CPU) memory for vDNN's offload targets.
// Offload destinations must be page-locked ("pinned") regions allocated with
// cudaMallocHost so the DMA engines can access them directly (Section
// III-B); pinning is expensive, so vDNN allocates pinned buffers once, on
// first use, and reuses them across the millions of training iterations.
package hostmem

import (
	"fmt"

	"vdnn/internal/sim"
)

// Host models the host DRAM of the evaluation node (64 GB DDR4 on the
// paper's i7-5930K testbed).
type Host struct {
	capacity int64
	pinned   int64
	pageable int64
	peak     int64

	// PinCostPerGB is the one-time cost of cudaMallocHost per byte, modeling
	// page-locking overhead. Charged by the executor on first allocation only.
	PinCostPerGB sim.Time
}

// Region is one host allocation.
type Region struct {
	Size   int64
	Pinned bool
	Label  string
	freed  bool
}

// New creates a host with the given DRAM capacity.
func New(capacity int64) *Host {
	if capacity <= 0 {
		panic("hostmem: non-positive capacity")
	}
	return &Host{capacity: capacity, PinCostPerGB: 200 * sim.Millisecond}
}

// Standard64GB returns the paper's host: 64 GB of DDR4.
func Standard64GB() *Host { return New(64 << 30) }

// Capacity returns total host DRAM.
func (h *Host) Capacity() int64 { return h.capacity }

// PinnedBytes returns currently pinned bytes.
func (h *Host) PinnedBytes() int64 { return h.pinned }

// PageableBytes returns current pageable allocations.
func (h *Host) PageableBytes() int64 { return h.pageable }

// TotalBytes returns all current host allocations.
func (h *Host) TotalBytes() int64 { return h.pinned + h.pageable }

// Peak returns the maximum concurrent host allocation seen.
func (h *Host) Peak() int64 { return h.peak }

// AllocPinned reserves a pinned region (cudaMallocHost) and returns it with
// the simulated cost of the pinning operation.
func (h *Host) AllocPinned(size int64, label string) (*Region, sim.Time, error) {
	if size <= 0 {
		return nil, 0, fmt.Errorf("hostmem: non-positive pinned allocation %d for %q", size, label)
	}
	if h.TotalBytes()+size > h.capacity {
		return nil, 0, fmt.Errorf("hostmem: out of host memory allocating %d for %q (used %d of %d)",
			size, label, h.TotalBytes(), h.capacity)
	}
	h.pinned += size
	if h.TotalBytes() > h.peak {
		h.peak = h.TotalBytes()
	}
	cost := sim.Time(float64(h.PinCostPerGB) * float64(size) / float64(1<<30))
	return &Region{Size: size, Pinned: true, Label: label}, cost, nil
}

// AllocPageable reserves ordinary host memory (malloc).
func (h *Host) AllocPageable(size int64, label string) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("hostmem: non-positive allocation %d for %q", size, label)
	}
	if h.TotalBytes()+size > h.capacity {
		return nil, fmt.Errorf("hostmem: out of host memory allocating %d for %q", size, label)
	}
	h.pageable += size
	if h.TotalBytes() > h.peak {
		h.peak = h.TotalBytes()
	}
	return &Region{Size: size, Pinned: false, Label: label}, nil
}

// Free releases a region. Double frees panic.
func (h *Host) Free(r *Region) {
	if r == nil {
		return
	}
	if r.freed {
		panic(fmt.Sprintf("hostmem: double free of %q", r.Label))
	}
	r.freed = true
	if r.Pinned {
		h.pinned -= r.Size
	} else {
		h.pageable -= r.Size
	}
}

package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
)

// TestRunCanceledContext checks a canceled context fails fast without
// simulating.
func TestRunCanceledContext(t *testing.T) {
	eng := NewEngine(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.Run(ctx, networks.AlexNet(32), core.Config{Spec: gpu.TitanX()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := eng.Stats(); st.Simulations != 0 {
		t.Errorf("canceled Run still simulated %d times", st.Simulations)
	}
}

// TestRunAllCanceledContext checks a batch under a canceled context reports
// the context error and runs nothing.
func TestRunAllCanceledContext(t *testing.T) {
	eng := NewEngine(4)
	net := networks.AlexNet(32)
	jobs := make([]Job, 8)
	for i := range jobs {
		cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv, Iterations: i + 1}
		jobs[i] = Job{Net: net, Cfg: cfg}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.RunAll(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := eng.Stats(); st.Simulations != 0 {
		t.Errorf("canceled RunAll still simulated %d times", st.Simulations)
	}
}

// TestCacheBound checks FIFO eviction under NewEngineCache: distinct
// configurations beyond the bound evict the oldest completed entries, and a
// re-request of an evicted configuration re-simulates.
func TestCacheBound(t *testing.T) {
	eng := NewEngineCache(1, 2)
	net := networks.AlexNet(32)
	ctx := context.Background()
	cfgN := func(iters int) core.Config {
		return core.Config{Spec: gpu.TitanX(), Policy: core.Baseline, Algo: core.MemOptimal, Iterations: iters}
	}
	for i := 1; i <= 3; i++ {
		if _, err := eng.Run(ctx, net, cfgN(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Simulations != 3 {
		t.Fatalf("simulations = %d, want 3", st.Simulations)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under bound 2 after 3 distinct configs (stats %+v)", st)
	}
	// cfg 3 is the newest entry: still cached.
	if _, err := eng.Run(ctx, net, cfgN(3)); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Simulations != 3 || st.Hits != 1 {
		t.Errorf("newest entry not served from cache (stats %+v)", st)
	}
	// cfg 1 was evicted first: re-simulates.
	if _, err := eng.Run(ctx, net, cfgN(1)); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Simulations != 4 {
		t.Errorf("evicted entry not re-simulated (stats %+v)", st)
	}
}

// TestPurgeNetwork checks purging drops a network's completed results (they
// re-simulate afterward) without touching other networks' entries.
func TestPurgeNetwork(t *testing.T) {
	eng := NewEngine(2)
	ctx := context.Background()
	a := networks.AlexNet(32)
	b := networks.AlexNet(64)
	cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv, Algo: core.MemOptimal}
	if _, err := eng.Run(ctx, a, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, b, cfg); err != nil {
		t.Fatal(err)
	}
	eng.PurgeNetwork(a)
	if _, err := eng.Run(ctx, b, cfg); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Simulations != 2 || st.Hits != 1 {
		t.Fatalf("other network's entry purged too (stats %+v)", st)
	}
	if _, err := eng.Run(ctx, a, cfg); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Simulations != 3 {
		t.Errorf("purged network's result still served from cache (stats %+v)", st)
	}
}

// gatePolicy records how many simulations overlap.
type gatePolicy struct {
	namedPolicy
	cur, max *int32
}

func (g gatePolicy) Profile(net *dnn.Network, cfg core.Config, simulate core.Simulate) (*core.Result, error) {
	c := atomic.AddInt32(g.cur, 1)
	for {
		m := atomic.LoadInt32(g.max)
		if c <= m || atomic.CompareAndSwapInt32(g.max, m, c) {
			break
		}
	}
	time.Sleep(20 * time.Millisecond)
	atomic.AddInt32(g.cur, -1)
	sub := cfg
	sub.Custom = nil
	sub.Policy = core.Baseline
	sub.Algo = core.MemOptimal
	return simulate(sub)
}

// TestRunBoundedByWorkerSlots checks single-Run callers respect the engine's
// parallelism: N concurrent Run calls with distinct keys on a 2-worker
// engine must never overlap more than 2 simulations — the serving daemon's
// -j contract.
func TestRunBoundedByWorkerSlots(t *testing.T) {
	eng := NewEngine(2)
	net := networks.AlexNet(32)
	var cur, max int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := core.Config{
				Spec:   gpu.TitanX(),
				Custom: gatePolicy{namedPolicy{name: fmt.Sprintf("gate-%d", i)}, &cur, &max},
			}
			if _, err := eng.Run(context.Background(), net, cfg); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt32(&max); got > 2 {
		t.Errorf("max overlapping simulations = %d, want <= 2", got)
	}
	if st := eng.Stats(); st.Simulations != 8 {
		t.Errorf("simulations = %d, want 8 distinct", st.Simulations)
	}
}

// panicPolicy blows up inside the simulation.
type panicPolicy struct{ namedPolicy }

func (panicPolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, _ core.AlgoMode) core.AlgoMode {
	panic("policy bug")
}

// TestPanickingSimulationDoesNotPoisonCache checks a panic inside core.Run
// becomes a shared error: the first caller gets it, and a repeat request for
// the same key must not block forever on a never-closed entry.
func TestPanickingSimulationDoesNotPoisonCache(t *testing.T) {
	eng := NewEngine(2)
	net := networks.AlexNet(32)
	cfg := core.Config{Spec: gpu.TitanX(), Custom: panicPolicy{namedPolicy{name: "boom"}}}
	ctx := context.Background()

	if _, err := eng.Run(ctx, net, cfg); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("first run error = %v, want simulation panic", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, net, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("repeat run error = %v, want shared panic error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("repeat request for a panicked key hung: entry never closed")
	}
}

// namedPolicy lets tests mint custom policies with arbitrary names.
type namedPolicy struct{ name string }

func (p namedPolicy) Name() string { return p.name }
func (namedPolicy) OffloadInput(_ *dnn.Network, _ *dnn.Tensor, c *dnn.Layer) bool {
	return c.Kind == dnn.Conv
}
func (namedPolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, r core.AlgoMode) core.AlgoMode {
	return r
}
func (namedPolicy) PrefetchSchedule(_ *dnn.Network, r core.PrefetchMode) core.PrefetchMode {
	return r
}

// TestCustomPolicyCacheKey checks the engine keys custom policies by Name:
// the same name dedups, distinct names simulate separately, and a custom
// policy never collides with a built-in enum entry.
func TestCustomPolicyCacheKey(t *testing.T) {
	eng := NewEngine(2)
	net := networks.AlexNet(32)
	ctx := context.Background()
	base := core.Config{Spec: gpu.TitanX(), Algo: core.MemOptimal}

	withA, withA2, withB := base, base, base
	withA.Custom = namedPolicy{name: "A"}
	withA2.Custom = namedPolicy{name: "A"}
	withB.Custom = namedPolicy{name: "B"}

	r1, err := eng.Run(ctx, net, withA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(ctx, net, withA2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("same-name custom policies did not share a cache entry")
	}
	if _, err := eng.Run(ctx, net, withB); err != nil {
		t.Fatal(err)
	}
	// Built-in Baseline under the otherwise-identical config must not be
	// served from a custom policy's slot.
	if _, err := eng.Run(ctx, net, base); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Simulations != 3 {
		t.Errorf("simulations = %d, want 3 (A, B, builtin)", st.Simulations)
	}
}

// Package sweep is the concurrent experiment scheduler the evaluation and
// the public batch API run on. The paper's figures, ablations and case
// studies are a design-space sweep of hundreds of independent simulated
// training iterations; each core.Run is a self-contained deterministic
// simulation, so the sweep parallelizes perfectly. The engine provides:
//
//   - a bounded worker pool that saturates the configured parallelism,
//   - a result cache shared by every experiment, keyed by
//     (network, normalized configuration, policy name), so the same
//     configuration is simulated exactly once no matter how many figures or
//     requests reference it — optionally bounded, with FIFO eviction,
//   - singleflight deduplication: concurrent requests for one key coalesce
//     onto the in-flight simulation instead of repeating it,
//   - context-aware scheduling: callers abandon waits on cancellation, and a
//     batch stops dispatching new simulations once its context is done, and
//   - differential evaluation: sweep points that share a capacity-independent
//     structure (core.StructureShaped) are simulated once at oracle capacity
//     and re-priced at each real capacity by replaying the recorded allocator
//     trace — the same Results, a fraction of the work.
//
// The cache is sharded by key hash so concurrent hits on distinct keys do not
// contend on one mutex; eviction bookkeeping stays global (FIFO order across
// shards) and is touched only on the miss path, where the simulation about to
// run dwarfs it.
//
// Determinism guarantee: RunAll returns results in job order and each
// simulation is a pure function of its (network, configuration) inputs, so
// the result set — and any report formatted from it — is byte-identical
// whether the engine runs with 1 worker or N, and whether a result was
// simulated in full or priced from a shared structure (the differential path
// is exact, enforced by this package's equivalence tests).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
)

// Job is one simulation request: a network and the configuration to train it
// under.
type Job struct {
	Net *dnn.Network
	Cfg core.Config
}

// key identifies a simulation. The network is keyed by identity (callers
// memoize network construction; building the same architecture twice yields
// distinct graphs that are free to diverge), the configuration by its
// normalized value. A custom policy is keyed by its Name — the OffloadPolicy
// contract — which keeps the key comparable whatever the policy's dynamic
// type is made of.
type key struct {
	net    *dnn.Network
	cfg    core.Config
	policy string
}

func keyOf(net *dnn.Network, cfg core.Config) key {
	k := key{net: net, cfg: cfg.WithDefaults()}
	if cfg.Custom != nil {
		k.policy = cfg.Custom.Name()
		k.cfg.Custom = nil
	}
	return k
}

// oracleMemSentinel is the device-memory value substituted into every
// structure key. A structure is capacity-independent by construction, so
// every capacity ablation of one configuration normalizes to a single
// structure entry; the sentinel is just "a capacity", chosen absurdly large
// so a colliding genuine user request (an Oracle simulation of a 1 TiB
// device) is served the exact result it would have computed anyway.
const oracleMemSentinel = 1 << 40

// structureKey normalizes a structure-shaped key to its capacity-independent
// form: the oracle simulation at the sentinel capacity. Every sweep point
// differing only in MemBytes/ReservedBytes/Oracle maps to the same structure
// entry. Idempotent: structureKey(structureKey(k)) == structureKey(k).
func structureKey(k key) key {
	k.cfg.Oracle = true
	k.cfg.Spec.MemBytes = oracleMemSentinel
	k.cfg.Spec.ReservedBytes = 0
	return k
}

// entry is one cache slot — a completed or in-flight computation of one key.
// done is closed when res/err are final, which is what lets concurrent
// requests for the same key wait on the first without holding any lock.
//
// structure is set on structure-key entries: the capacity-independent stage
// shared by every sweep point that normalizes to this key (res then aliases
// structure.Res, the oracle result).
//
// refs counts the callers interested in the in-flight computation — the
// initiator plus every coalesced waiter (guarded by the owning shard's
// mutex). A caller abandoning its wait drops its reference; when the last
// reference is dropped the computation's own context is canceled, so work
// nobody is waiting for stops at the next layer boundary instead of burning
// a full simulation. One surviving waiter keeps the computation alive for
// everyone.
type entry struct {
	done      chan struct{}
	res       *core.Result
	err       error
	structure *core.Structure
	refs      int
	cancel    context.CancelFunc
}

// Stats counts the engine's cache behavior (test, reporting and /v1/stats
// aid).
type Stats struct {
	// Simulations is the number of top-level requests that were computed
	// rather than served from the cache — each holds a worker slot and
	// counts once whether it ran a full simulation or was priced from a
	// shared structure.
	Simulations int64 `json:"simulations"`
	// Structures is the number of capacity-independent structure builds —
	// full simulations recorded for differential re-pricing (usually a
	// configuration's first sweep point, simulated at its own capacity;
	// oracle-capacity builds when that first point is untrainable or the
	// request itself is an oracle run).
	Structures int64 `json:"structures"`
	// Priced is the number of results produced by replaying a structure's
	// allocator trace instead of running a full simulation — the work the
	// differential path avoided.
	Priced int64 `json:"priced"`
	// Hits is the number of requests served from a completed cache entry.
	Hits int64 `json:"hits"`
	// Coalesced is the number of requests folded onto another request of the
	// same key instead of starting their own computation: duplicates within
	// a RunAll batch, plus requests that waited on an in-flight entry.
	Coalesced int64 `json:"coalesced"`
	// Evictions is the number of completed entries dropped to honor the
	// cache bound.
	Evictions int64 `json:"evictions"`
	// Canceled is the number of computations aborted mid-flight because
	// every caller waiting on them went away.
	Canceled int64 `json:"canceled"`
}

// nShards is the cache partition count. Shard selection hashes the full key,
// so concurrent lookups of distinct keys — the RunAll hot path — contend on
// a shard mutex 1/nShards as often as on a single cache lock. Sixteen covers
// any worker count this engine is configured with; a larger fan-out buys
// nothing once shards outnumber workers.
const nShards = 16

// shard is one cache partition: a mutex and the entries whose key hashes
// here. Entry refcounts are guarded by the owning shard's mutex.
type shard struct {
	mu    sync.Mutex
	cache map[key]*entry
}

// Engine schedules simulations over a bounded worker pool with a shared,
// deduplicated, sharded result cache. The zero value is not usable; use
// NewEngine.
type Engine struct {
	workers    int
	maxEntries int
	sem        chan struct{} // worker slots; every top-level computation holds one

	// hook, when set, is called at the fault-injection points of the worker
	// loop (SetChaosHook). A returned error fails the simulation without
	// running it; a panic exercises the engine's panic isolation. Injected
	// failures are transient, so they are never retained in the cache.
	hook func(point string) error

	// fullSim disables differential evaluation: every computation takes the
	// full-simulation path. Reference mode for equivalence tests and the
	// speedup benchmarks (SetFullSimulation).
	fullSim bool

	// store, when set, extends the in-memory cache with a persistent
	// read/write-through layer (SetStore). Loaded before a claimed
	// computation simulates, written after it succeeds; structure probes
	// (whose value is in-process allocator state) are never stored.
	store ResultStore

	seed   maphash.Seed
	shards [nShards]shard
	count  atomic.Int64 // live entries across all shards

	// Eviction bookkeeping, bounded caches only. evmu is acquired before any
	// shard mutex (never the other way around) and only on the miss path —
	// claiming a key — where the simulation about to run dwarfs it.
	evmu  sync.Mutex
	order []key // eviction queue; order[head:] is live, oldest first
	head  int

	stats engineStats
}

// engineStats is the engine's internal counter block: atomics, so the hit
// path touches no lock beyond its shard's.
type engineStats struct {
	simulations atomic.Int64
	structures  atomic.Int64
	priced      atomic.Int64
	hits        atomic.Int64
	coalesced   atomic.Int64
	evictions   atomic.Int64
	canceled    atomic.Int64
}

// NewEngine creates an engine running at most workers simulations
// concurrently, with an unbounded result cache. workers <= 0 selects
// GOMAXPROCS. workers == 1 yields a strictly sequential engine (useful as
// the determinism reference).
func NewEngine(workers int) *Engine { return NewEngineCache(workers, 0) }

// NewEngineCache creates an engine whose result cache holds at most
// maxEntries completed results (0 = unbounded). When full, the oldest
// completed entries are evicted first; in-flight computations are never
// evicted. Bounding the cache trades repeat-hit latency for memory — a
// long-lived serving process wants a bound, a one-shot evaluation does not.
func NewEngineCache(workers, maxEntries int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxEntries < 0 {
		maxEntries = 0
	}
	e := &Engine{
		workers:    workers,
		maxEntries: maxEntries,
		sem:        make(chan struct{}, workers),
		seed:       maphash.MakeSeed(),
	}
	for i := range e.shards {
		e.shards[i].cache = map[key]*entry{}
	}
	return e
}

// shardOf maps a key to its cache partition.
func (e *Engine) shardOf(k key) *shard {
	return &e.shards[maphash.Comparable(e.seed, k)%nShards]
}

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

// SetChaosHook installs a fault-injection hook called once per top-level
// simulation attempt, just before the computation runs (point "simulate").
// A non-nil return fails the attempt with that error; a panic is recovered
// by the engine's panic isolation and becomes a shared error. Pass nil to
// remove. Set it before the engine serves traffic — it is read without
// locking on the hot path.
func (e *Engine) SetChaosHook(h func(point string) error) { e.hook = h }

// CacheBound returns the configured cache capacity (0 = unbounded).
func (e *Engine) CacheBound() int { return e.maxEntries }

// ResultStore is a persistent result cache behind the in-memory one —
// implemented by internal/store, abstracted here so the engine stays
// storage-agnostic. Load returns a previously persisted result for exactly
// the computation (net, cfg) describes, or ok=false (a miss, a corrupt
// record, or a config the store cannot address, e.g. a custom policy). Save
// persists a successful result; it must not fail the computation, so it
// returns nothing. Both must be safe for concurrent use.
type ResultStore interface {
	Load(net *dnn.Network, cfg core.Config) (*core.Result, bool)
	Save(net *dnn.Network, cfg core.Config, res *core.Result)
}

// SetStore installs a persistent read/write-through store: every claimed
// computation — top-level requests and nested profiling candidates alike —
// first consults the store, and a hit is returned without simulating (it
// does not count toward Stats.Simulations, so a fully warm store means zero
// simulations). Successful results are written through after computing.
// Structure probes are exempt in both directions: their value is the
// in-process allocator trace, which is not meaningful across processes.
// Set it before the engine serves traffic — it is read without locking on
// the hot path.
func (e *Engine) SetStore(s ResultStore) { e.store = s }

// SetFullSimulation, when on, disables differential evaluation: every
// computation runs the complete simulation even when a shared structure could
// have priced it. Results are identical either way (that equivalence is
// tested); full mode is the reference the differential path is measured and
// verified against. Set it before the engine serves traffic — it is read
// without locking on the hot path.
func (e *Engine) SetFullSimulation(on bool) { e.fullSim = on }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Simulations: e.stats.simulations.Load(),
		Structures:  e.stats.structures.Load(),
		Priced:      e.stats.priced.Load(),
		Hits:        e.stats.hits.Load(),
		Coalesced:   e.stats.coalesced.Load(),
		Evictions:   e.stats.evictions.Load(),
		Canceled:    e.stats.canceled.Load(),
	}
}

// PurgeNetwork drops every cached result keyed by the given network
// instance — structure entries included — along with the network's memoized
// derived data in package dnn. Callers that evict a network from their own
// memoization use it so results keyed by the dead identity — unreachable by
// any future request — do not pin the graph forever in an unbounded cache.
// An in-flight entry finishes normally for its waiters and is then deleted
// asynchronously.
func (e *Engine) PurgeNetwork(net *dnn.Network) {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k, ent := range sh.cache {
			if k.net != net {
				continue
			}
			select {
			case <-ent.done:
				delete(sh.cache, k)
				e.count.Add(-1)
				e.stats.evictions.Add(1)
			default:
				// Still running: collect it once it completes, or the
				// dead-keyed result would survive forever in an unbounded
				// cache.
				go func(sh *shard, k key, ent *entry) {
					<-ent.done
					sh.mu.Lock()
					if sh.cache[k] == ent {
						delete(sh.cache, k)
						e.count.Add(-1)
						e.stats.evictions.Add(1)
					}
					sh.mu.Unlock()
				}(sh, k, ent)
			}
		}
		sh.mu.Unlock()
	}
	dnn.PurgeDerived(net)
}

// evictLocked drops oldest completed entries until the cache fits the bound
// again (leaving room for one insertion). Called with e.evmu held and no
// shard mutex held. The common case — the oldest entry has completed — is an
// O(1) head advance; the splice only runs when the head entry is still in
// flight (transient).
func (e *Engine) evictLocked() {
	for int(e.count.Load()) >= e.maxEntries {
		evicted := false
		for i := e.head; i < len(e.order); i++ {
			k := e.order[i]
			sh := e.shardOf(k)
			sh.mu.Lock()
			if ent, ok := sh.cache[k]; ok {
				select {
				case <-ent.done:
				default:
					sh.mu.Unlock()
					continue // in-flight: never evict
				}
				delete(sh.cache, k)
				e.count.Add(-1)
				e.stats.evictions.Add(1)
			}
			sh.mu.Unlock()
			if i == e.head {
				e.order[i] = key{} // release references
				e.head++
			} else {
				copy(e.order[i:], e.order[i+1:])
				e.order[len(e.order)-1] = key{}
				e.order = e.order[:len(e.order)-1]
			}
			evicted = true
			break
		}
		if !evicted {
			return // everything resident is in flight; allow temporary overshoot
		}
	}
	// Reclaim the consumed prefix once it dominates the backing array.
	if e.head > 32 && e.head > len(e.order)/2 {
		e.order = append(e.order[:0:0], e.order[e.head:]...)
		e.head = 0
	}
}

// claim inserts ent as the in-flight entry for k, evicting first when the
// cache is bounded. Returns false when another caller claimed the key in the
// window since the caller's lookup — coalesce onto theirs.
func (e *Engine) claim(sh *shard, k key, ent *entry) bool {
	if e.maxEntries > 0 {
		e.evmu.Lock()
		defer e.evmu.Unlock()
		e.evictLocked()
	}
	sh.mu.Lock()
	if _, ok := sh.cache[k]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.cache[k] = ent
	e.count.Add(1)
	sh.mu.Unlock()
	if e.maxEntries > 0 {
		e.order = append(e.order, k) // eviction order; unused when unbounded
	}
	return true
}

// dropRef releases one caller's interest in an in-flight entry; the last
// drop cancels the computation's context so abandoned work stops at the next
// layer boundary.
func (e *Engine) dropRef(sh *shard, ent *entry) {
	sh.mu.Lock()
	ent.refs--
	last := ent.refs <= 0
	if last {
		select {
		case <-ent.done:
			last = false // already finished; nothing to abort
		default:
			e.stats.canceled.Add(1)
		}
	}
	sh.mu.Unlock()
	if last {
		ent.cancel()
	}
}

// uncache removes a completed entry that must not serve future requests —
// errored computations: cancellations and injected faults are transient, and
// caching a panic or validation error would pin a one-off failure onto a key
// forever. Waiters already parked on the entry still share its error; only
// later requests re-compute.
func (e *Engine) uncache(sh *shard, k key, ent *entry) {
	sh.mu.Lock()
	if sh.cache[k] == ent {
		delete(sh.cache, k)
		e.count.Add(-1)
	}
	sh.mu.Unlock()
}

// Run simulates one job, serving it from the cache when an identical job has
// already run (or is running). Safe for concurrent use. Every top-level
// computation holds one of the engine's worker slots, so single-Run callers
// (the HTTP daemon's simulate endpoint, many goroutines deep) are bounded by
// the configured parallelism exactly like RunAll batches. (The bound counts
// top-level computations: structure builds and a profiling policy's
// candidate simulations run nested inside their initiator's slot — a
// deliberate, fixed-factor overshoot; nested work cannot take engine slots
// of its own without risking nested-acquire deadlock.)
//
// Cancellation: a canceled context abandons the wait immediately, and the
// in-flight computation is reference-counted — it keeps running while any
// other caller still waits on it and is itself canceled (mid-flight, at the
// next layer boundary) when the last waiter goes away. Errored results,
// cancellations included, are never retained in the cache: a fresh request
// for the same key re-computes.
func (e *Engine) Run(ctx context.Context, net *dnn.Network, cfg core.Config) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, _, err := e.resolve(ctx, net, cfg.Custom, keyOf(net, cfg), true)
	return res, err
}

// resolve serves one key from the cache, coalescing onto an in-flight
// computation or claiming and computing the entry itself. It is the single
// code path behind top-level requests (topLevel: holds a worker slot, fires
// the chaos hook, counts toward Stats.Simulations) and nested resolutions —
// structure fetches and profiling-candidate simulations issued from inside a
// computation, which run under their initiator's slot and report
// cancellation as core.ErrCanceled the way an in-process candidate would.
func (e *Engine) resolve(ctx context.Context, net *dnn.Network, custom core.OffloadPolicy, k key, topLevel bool) (*core.Result, *core.Structure, error) {
	if ctx.Err() != nil {
		if topLevel {
			return nil, nil, ctx.Err()
		}
		return nil, nil, canceledAs(ctx)
	}
	sh := e.shardOf(k)
	for {
		sh.mu.Lock()
		if ent, ok := sh.cache[k]; ok {
			select {
			case <-ent.done:
				e.stats.hits.Add(1)
				sh.mu.Unlock()
				return ent.res, ent.structure, ent.err
			default:
				ent.refs++
				e.stats.coalesced.Add(1)
			}
			sh.mu.Unlock()
			select {
			case <-ent.done:
				if ent.err != nil && errors.Is(ent.err, core.ErrCanceled) {
					if ctx.Err() == nil {
						// The computation we coalesced onto was aborted (its
						// last other waiter left before our reference landed,
						// or the cancel raced our join), but this caller is
						// still live: retry on a fresh entry.
						continue
					}
					return nil, nil, canceledAs(ctx)
				}
				return ent.res, ent.structure, ent.err
			case <-ctx.Done():
				e.dropRef(sh, ent)
				if topLevel {
					return nil, nil, ctx.Err()
				}
				return nil, nil, canceledAs(ctx)
			}
		}
		sh.mu.Unlock()

		if topLevel {
			// Acquire a worker slot BEFORE claiming the key: a wait
			// abandoned by cancellation then leaves no half-made entry
			// behind for other callers to hang on.
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}

		runCtx, runCancel := context.WithCancel(context.Background())
		ent := &entry{done: make(chan struct{}), refs: 1, cancel: runCancel}
		if !e.claim(sh, k, ent) {
			// Another caller claimed the key while we waited for the slot;
			// release it and coalesce onto theirs.
			runCancel()
			if topLevel {
				<-e.sem
			}
			continue
		}
		// The initiator runs the computation on its own goroutine, so its
		// cancellation must be observed from the side: AfterFunc drops the
		// initiator's reference when ctx fires, which cancels runCtx only if
		// no coalesced waiter still wants the result.
		stopWatch := context.AfterFunc(ctx, func() { e.dropRef(sh, ent) })

		runCfg := k.cfg
		runCfg.Custom = custom
		func() {
			// done must close on every path: a panic that escaped past it
			// would leave the entry permanently in flight, hanging every
			// later request for the key. A panicking simulation (a bug, a
			// hostile custom policy, or an injected chaos fault) becomes an
			// error shared by all waiters instead.
			defer func() {
				if r := recover(); r != nil {
					ent.res, ent.err = nil, fmt.Errorf("sweep: simulation panic: %v", r)
				}
				close(ent.done)
				stopWatch()
				runCancel() // release the context's resources on every path
				if ent.err != nil {
					e.uncache(sh, k, ent)
				}
				if topLevel {
					<-e.sem
				}
			}()
			// Read through the persistent store before simulating. A stored
			// result is exact — keys are normalized configs plus the network's
			// structural fingerprint — so a hit is not a simulation: it fires
			// no chaos hook and does not count toward Stats.Simulations, which
			// is what lets a restarted daemon serve a repeated sweep with zero
			// re-simulations. Structure keys are exempt: their entries carry
			// the in-process allocator trace a stored Result cannot.
			persistable := e.store != nil && k != structureKey(k)
			if persistable {
				if res, ok := e.store.Load(net, runCfg); ok {
					ent.res = res
					return
				}
			}
			if topLevel {
				e.stats.simulations.Add(1)
				if h := e.hook; h != nil {
					if herr := h("simulate"); herr != nil {
						ent.err = fmt.Errorf("sweep: injected fault: %w", herr)
						return
					}
				}
			}
			e.compute(runCtx, net, runCfg, k, ent)
			if persistable && ent.err == nil && ent.res != nil {
				e.store.Save(net, runCfg, ent.res)
			}
		}()
		if ent.err != nil && errors.Is(ent.err, core.ErrCanceled) {
			if ctx.Err() == nil {
				// Aborted under us (a waiter-join/cancel race), but this
				// caller is still live: retry.
				continue
			}
			return nil, nil, canceledAs(ctx)
		}
		return ent.res, ent.structure, ent.err
	}
}

// compute fills ent for key k: via the differential structure/pricing split
// when the configuration is eligible, via a full simulation otherwise. cfg
// is k.cfg with the caller's Custom policy instance restored.
func (e *Engine) compute(runCtx context.Context, net *dnn.Network, cfg core.Config, k key, ent *entry) {
	if !e.fullSim && cfg.Custom == nil && core.StructureShaped(cfg) && core.ValidateRun(net, cfg) == nil {
		sk := structureKey(k)
		if sk == k {
			// The request is itself a structure key: build the structure
			// here — the entry serves both the oracle Result and the trace
			// every capacity ablation of this configuration re-prices.
			st, err := core.BuildStructure(runCtx, net, cfg)
			if err != nil {
				ent.err = err
				return
			}
			e.stats.structures.Add(1)
			ent.structure, ent.res = st, st.Res
			return
		} else if !cfg.Oracle {
			// No structure cached yet? Then this request IS the structure
			// build: run it at its own capacity with the trace recorded, so
			// the first sweep point of a configuration costs one simulation
			// and still leaves the structure behind for its siblings. A
			// cached or in-flight structure takes the pricing path below
			// instead, and a lost claim race just means another caller is
			// building it — coalesce there.
			sksh := e.shardOf(sk)
			sksh.mu.Lock()
			_, building := sksh.cache[sk]
			sksh.mu.Unlock()
			if !building {
				skEnt := &entry{done: make(chan struct{}), refs: 1, cancel: func() {}}
				if e.claim(sksh, sk, skEnt) {
					res, err := e.buildStructureAt(runCtx, net, cfg, sksh, sk, skEnt)
					if err == nil {
						ent.res = res
						return
					}
					if errors.Is(err, core.ErrCanceled) {
						ent.err = err
						return
					}
					// Any other failure falls through to the full path: it
					// reproduces the error (or succeeds if the fault was
					// transient) — a structure bug must never mask a real
					// result.
					ent.res, ent.err = e.runFull(runCtx, net, cfg)
					return
				}
			}
		}
		if st, err := e.structureFor(runCtx, net, sk); err != nil && errors.Is(err, core.ErrCanceled) {
			ent.err = err
			return
		} else if err == nil && st != nil {
			// A structure-build failure for any non-cancellation reason
			// falls through to the full path instead: it reproduces the
			// error (or succeeds if the fault was transient) — a structure
			// bug must never mask a real result.
			if cfg.Oracle {
				// The structure's Result is exactly this oracle request's;
				// clone so a caller patching its copy cannot corrupt the
				// shared structure.
				r := *st.Res
				ent.res = &r
				e.stats.priced.Add(1)
				return
			}
			res, ok, perr := st.Price(runCtx, net, cfg)
			if perr != nil {
				ent.err = perr
				return
			}
			if ok {
				ent.res = res
				e.stats.priced.Add(1)
				return
			}
			// Pricing declined (the classifier alone exceeds this capacity):
			// the full path produces the exact failure chain.
		}
	}
	ent.res, ent.err = e.runFull(runCtx, net, cfg)
}

// structureFor resolves a structure key — nested, under the caller's worker
// slot.
func (e *Engine) structureFor(ctx context.Context, net *dnn.Network, sk key) (*core.Structure, error) {
	_, st, err := e.resolve(ctx, net, nil, sk, false)
	return st, err
}

// buildStructureAt runs core.BuildStructureAt for cfg and finalizes the
// claimed sk entry on every path — a panic must still close the entry (then
// propagate to resolve's recovery for the requesting key), or every sibling
// coalesced onto the structure would hang forever. The caller holds the
// entry's initiating reference, so its cancel hook can be a no-op: the
// build runs under the requesting key's runCtx and dies with it.
func (e *Engine) buildStructureAt(runCtx context.Context, net *dnn.Network, cfg core.Config, sksh *shard, sk key, skEnt *entry) (res *core.Result, err error) {
	var st *core.Structure
	defer func() {
		if r := recover(); r != nil {
			skEnt.err = fmt.Errorf("sweep: simulation panic: %v", r)
			close(skEnt.done)
			e.uncache(sksh, sk, skEnt)
			panic(r)
		}
		skEnt.structure, skEnt.err = st, err
		if st != nil {
			skEnt.res = st.Res
		}
		close(skEnt.done)
		if skEnt.err != nil {
			e.uncache(sksh, sk, skEnt)
		}
	}()
	st, res, err = core.BuildStructureAt(runCtx, net, cfg)
	if err == nil {
		e.stats.structures.Add(1)
	}
	return res, err
}

// runFull runs the complete simulation for cfg, routing a profiling policy's
// candidate configurations back through the engine so candidates shared
// between sweep points — and the structures behind them — are computed once
// across the whole sweep instead of once per profiling pass. In full-
// simulation mode the routing is off too: every profiling candidate
// simulates inline, the reference engine behavior.
func (e *Engine) runFull(runCtx context.Context, net *dnn.Network, cfg core.Config) (*core.Result, error) {
	if e.fullSim {
		return core.RunContext(runCtx, net, cfg)
	}
	return core.RunContextWith(runCtx, net, cfg, func(sub core.Config) (*core.Result, error) {
		res, _, err := e.resolve(runCtx, net, sub.Custom, keyOf(net, sub), false)
		return res, err
	})
}

// canceledAs rewraps an abort with the calling context's own cause. A
// computation runs under a detached context whose cancellation is always a
// plain Canceled, so the shared entry error cannot distinguish a caller
// whose deadline fired from one that hung up — each caller reports its own
// reason.
func canceledAs(ctx context.Context) error {
	return fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
}

// RunAll simulates a batch of jobs across the worker pool and returns the
// results in job order. Duplicate jobs (within the batch or against earlier
// calls) are simulated once and share one *core.Result; within-batch
// duplicates are folded before dispatch so they never occupy a worker slot
// waiting on their twin. The first error in job order is returned, wrapped
// with the failing job's network and policy; results of failed jobs are nil.
// Once ctx is canceled, no further simulations are dispatched and the
// remaining jobs fail with the context's error.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) ([]*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))

	// Fold within-batch duplicates: canon[i] is the index of the first job
	// with the same key; only first occurrences are dispatched.
	canon := make([]int, len(jobs))
	firstOf := make(map[key]int, len(jobs))
	unique := make([]int, 0, len(jobs))
	for i, j := range jobs {
		k := keyOf(j.Net, j.Cfg)
		if f, ok := firstOf[k]; ok {
			canon[i] = f
		} else {
			firstOf[k] = i
			canon[i] = i
			unique = append(unique, i)
		}
	}
	if dups := len(jobs) - len(unique); dups > 0 {
		e.stats.coalesced.Add(int64(dups))
	}

	workers := e.workers
	if workers > len(unique) {
		workers = len(unique)
	}
	if workers <= 1 {
		for _, i := range unique {
			results[i], errs[i] = e.Run(ctx, jobs[i].Net, jobs[i].Cfg)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = e.Run(ctx, jobs[i].Net, jobs[i].Cfg)
				}
			}()
		}
	dispatch:
		for _, i := range unique {
			select {
			case next <- i:
			case <-ctx.Done():
				errs[i] = fmt.Errorf("job %d abandoned before dispatch: %w", i, ctx.Err())
				break dispatch
			}
		}
		close(next)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			for _, i := range unique {
				if results[i] == nil && errs[i] == nil {
					// Identify which sweep points were abandoned: a batch
					// error naming only the context reason hides how far the
					// dispatch got.
					errs[i] = fmt.Errorf("job %d abandoned before dispatch: %w", i, err)
				}
			}
		}
	}

	for i, c := range canon {
		if c != i {
			results[i], errs[i] = results[c], errs[c]
		}
	}
	for i, err := range errs {
		if err != nil {
			policy := fmt.Sprint(jobs[i].Cfg.Policy)
			if jobs[i].Cfg.Custom != nil {
				policy = jobs[i].Cfg.Custom.Name()
			}
			return results, fmt.Errorf("sweep: job %d (%s, %s %v): %w",
				i, jobs[i].Net.Name, policy, jobs[i].Cfg.Algo, err)
		}
	}
	return results, nil
}

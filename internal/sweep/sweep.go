// Package sweep is the concurrent experiment scheduler the evaluation and
// the public batch API run on. The paper's figures, ablations and case
// studies are a design-space sweep of hundreds of independent simulated
// training iterations; each core.Run is a self-contained deterministic
// simulation, so the sweep parallelizes perfectly. The engine provides:
//
//   - a bounded worker pool that saturates the configured parallelism,
//   - a result cache shared by every experiment, keyed by
//     (network, normalized configuration, policy name), so the same
//     configuration is simulated exactly once no matter how many figures or
//     requests reference it — optionally bounded, with FIFO eviction,
//   - singleflight deduplication: concurrent requests for one key coalesce
//     onto the in-flight simulation instead of repeating it, and
//   - context-aware scheduling: callers abandon waits on cancellation, and a
//     batch stops dispatching new simulations once its context is done.
//
// Determinism guarantee: RunAll returns results in job order and each
// simulation is a pure function of its (network, configuration) inputs, so
// the result set — and any report formatted from it — is byte-identical
// whether the engine runs with 1 worker or N.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
)

// Job is one simulation request: a network and the configuration to train it
// under.
type Job struct {
	Net *dnn.Network
	Cfg core.Config
}

// key identifies a simulation. The network is keyed by identity (callers
// memoize network construction; building the same architecture twice yields
// distinct graphs that are free to diverge), the configuration by its
// normalized value. A custom policy is keyed by its Name — the OffloadPolicy
// contract — which keeps the key comparable whatever the policy's dynamic
// type is made of.
type key struct {
	net    *dnn.Network
	cfg    core.Config
	policy string
}

func keyOf(net *dnn.Network, cfg core.Config) key {
	k := key{net: net, cfg: cfg.WithDefaults()}
	if cfg.Custom != nil {
		k.policy = cfg.Custom.Name()
		k.cfg.Custom = nil
	}
	return k
}

// entry is one cache slot. done is closed when res/err are final, which is
// what lets concurrent requests for the same key wait on the first without
// holding the engine lock.
//
// refs counts the callers interested in the in-flight simulation — the
// initiator plus every coalesced waiter (guarded by the engine mutex). A
// caller abandoning its wait drops its reference; when the last reference is
// dropped the simulation's own context is canceled, so work nobody is
// waiting for stops at the next layer boundary instead of burning a full
// simulation. One surviving waiter keeps the simulation alive for everyone.
type entry struct {
	done   chan struct{}
	res    *core.Result
	err    error
	refs   int
	cancel context.CancelFunc
}

// Stats counts the engine's cache behavior (test, reporting and /v1/stats
// aid).
type Stats struct {
	// Simulations is the number of core.Run invocations actually performed.
	Simulations int64 `json:"simulations"`
	// Hits is the number of requests served from a completed cache entry.
	Hits int64 `json:"hits"`
	// Coalesced is the number of requests folded onto another request of the
	// same key instead of starting their own simulation: duplicates within a
	// RunAll batch, plus Run calls that waited on an in-flight simulation.
	Coalesced int64 `json:"coalesced"`
	// Evictions is the number of completed entries dropped to honor the
	// cache bound.
	Evictions int64 `json:"evictions"`
	// Canceled is the number of simulations aborted mid-flight because every
	// caller waiting on them went away.
	Canceled int64 `json:"canceled"`
}

// Engine schedules simulations over a bounded worker pool with a shared,
// deduplicated result cache. The zero value is not usable; use NewEngine.
type Engine struct {
	workers    int
	maxEntries int
	sem        chan struct{} // worker slots; every simulation holds one

	// hook, when set, is called at the fault-injection points of the worker
	// loop (SetChaosHook). A returned error fails the simulation without
	// running it; a panic exercises the engine's panic isolation. Injected
	// failures are transient, so they are never retained in the cache.
	hook func(point string) error

	mu    sync.Mutex
	cache map[key]*entry
	order []key // eviction queue; order[head:] is live, oldest first
	head  int
	stats Stats
}

// NewEngine creates an engine running at most workers simulations
// concurrently, with an unbounded result cache. workers <= 0 selects
// GOMAXPROCS. workers == 1 yields a strictly sequential engine (useful as
// the determinism reference).
func NewEngine(workers int) *Engine { return NewEngineCache(workers, 0) }

// NewEngineCache creates an engine whose result cache holds at most
// maxEntries completed results (0 = unbounded). When full, the oldest
// completed entries are evicted first; in-flight simulations are never
// evicted. Bounding the cache trades repeat-hit latency for memory — a
// long-lived serving process wants a bound, a one-shot evaluation does not.
func NewEngineCache(workers, maxEntries int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Engine{
		workers:    workers,
		maxEntries: maxEntries,
		sem:        make(chan struct{}, workers),
		cache:      map[key]*entry{},
	}
}

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

// SetChaosHook installs a fault-injection hook called once per simulation
// attempt, just before the simulation runs (point "simulate"). A non-nil
// return fails the attempt with that error; a panic is recovered by the
// engine's panic isolation and becomes a shared error. Pass nil to remove.
// Set it before the engine serves traffic — it is read without locking on
// the hot path.
func (e *Engine) SetChaosHook(h func(point string) error) { e.hook = h }

// CacheBound returns the configured cache capacity (0 = unbounded).
func (e *Engine) CacheBound() int { return e.maxEntries }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// PurgeNetwork drops every cached result keyed by the given network
// instance. Callers that evict a network from their own memoization use it
// so results keyed by the dead identity — unreachable by any future request
// — do not pin the graph forever in an unbounded cache. An in-flight entry
// finishes normally for its waiters and is then deleted asynchronously.
func (e *Engine) PurgeNetwork(net *dnn.Network) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k, ent := range e.cache {
		if k.net != net {
			continue
		}
		select {
		case <-ent.done:
			delete(e.cache, k)
			e.stats.Evictions++
		default:
			// Still running: collect it once it completes, or the dead-keyed
			// result would survive forever in an unbounded cache.
			go func(k key, ent *entry) {
				<-ent.done
				e.mu.Lock()
				if e.cache[k] == ent {
					delete(e.cache, k)
					e.stats.Evictions++
				}
				e.mu.Unlock()
			}(k, ent)
		}
	}
}

// evictLocked drops oldest completed entries until the cache fits the bound
// again (leaving room for one insertion). Called with e.mu held. The common
// case — the oldest entry has completed — is an O(1) head advance; the
// splice only runs when the head entry is still in flight (transient).
func (e *Engine) evictLocked() {
	if e.maxEntries <= 0 {
		return
	}
	for len(e.cache) >= e.maxEntries {
		evicted := false
		for i := e.head; i < len(e.order); i++ {
			k := e.order[i]
			if ent, ok := e.cache[k]; ok {
				select {
				case <-ent.done:
				default:
					continue // in-flight: never evict
				}
				delete(e.cache, k)
				e.stats.Evictions++
			}
			if i == e.head {
				e.order[i] = key{} // release references
				e.head++
			} else {
				copy(e.order[i:], e.order[i+1:])
				e.order[len(e.order)-1] = key{}
				e.order = e.order[:len(e.order)-1]
			}
			evicted = true
			break
		}
		if !evicted {
			return // everything resident is in flight; allow temporary overshoot
		}
	}
	// Reclaim the consumed prefix once it dominates the backing array.
	if e.head > 32 && e.head > len(e.order)/2 {
		e.order = append(e.order[:0:0], e.order[e.head:]...)
		e.head = 0
	}
}

// dropRef releases one caller's interest in an in-flight entry; the last
// drop cancels the simulation's context so abandoned work stops at the next
// layer boundary.
func (e *Engine) dropRef(ent *entry) {
	e.mu.Lock()
	ent.refs--
	last := ent.refs <= 0
	if last {
		select {
		case <-ent.done:
			last = false // already finished; nothing to abort
		default:
			e.stats.Canceled++
		}
	}
	e.mu.Unlock()
	if last {
		ent.cancel()
	}
}

// uncache removes a completed entry that must not serve future requests —
// errored simulations: cancellations and injected faults are transient, and
// caching a panic or validation error would pin a one-off failure onto a key
// forever. Waiters already parked on the entry still share its error; only
// later requests re-simulate.
func (e *Engine) uncache(k key, ent *entry) {
	e.mu.Lock()
	if e.cache[k] == ent {
		delete(e.cache, k)
	}
	e.mu.Unlock()
}

// Run simulates one job, serving it from the cache when an identical job has
// already run (or is running). Safe for concurrent use. Every actual
// simulation holds one of the engine's worker slots, so single-Run callers
// (the HTTP daemon's simulate endpoint, many goroutines deep) are bounded by
// the configured parallelism exactly like RunAll batches. (The bound counts
// top-level simulations: the dynamic policy's profiler speculatively runs up
// to three candidate passes inside its one slot — a deliberate, fixed-factor
// overshoot documented in core/dynamic.go; candidates cannot take engine
// slots of their own without risking nested-acquire deadlock.)
//
// Cancellation: a canceled context abandons the wait immediately, and the
// in-flight simulation is reference-counted — it keeps running while any
// other caller still waits on it and is itself canceled (mid-flight, at the
// next layer boundary) when the last waiter goes away. Errored results,
// cancellations included, are never retained in the cache: a fresh request
// for the same key re-simulates.
func (e *Engine) Run(ctx context.Context, net *dnn.Network, cfg core.Config) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := keyOf(net, cfg)
	for {
		e.mu.Lock()
		if ent, ok := e.cache[k]; ok {
			select {
			case <-ent.done:
				e.stats.Hits++
				e.mu.Unlock()
				return ent.res, ent.err
			default:
				ent.refs++
				e.stats.Coalesced++
			}
			e.mu.Unlock()
			select {
			case <-ent.done:
				if ent.err != nil && errors.Is(ent.err, core.ErrCanceled) {
					if ctx.Err() == nil {
						// The run we coalesced onto was aborted (its last
						// other waiter left before our reference landed, or
						// the cancel raced our join), but this caller is
						// still live: retry on a fresh entry.
						continue
					}
					return nil, canceledAs(ctx)
				}
				return ent.res, ent.err
			case <-ctx.Done():
				e.dropRef(ent)
				return nil, ctx.Err()
			}
		}
		e.mu.Unlock()

		// Acquire a worker slot BEFORE claiming the key: a wait abandoned by
		// cancellation then leaves no half-made entry behind for other
		// callers to hang on.
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}

		e.mu.Lock()
		if _, ok := e.cache[k]; ok {
			// Another caller claimed the key while we waited for the slot;
			// release it and coalesce onto theirs.
			e.mu.Unlock()
			<-e.sem
			continue
		}
		e.evictLocked()
		runCtx, runCancel := context.WithCancel(context.Background())
		ent := &entry{done: make(chan struct{}), refs: 1, cancel: runCancel}
		e.cache[k] = ent
		if e.maxEntries > 0 {
			e.order = append(e.order, k) // eviction order; unused when unbounded
		}
		e.stats.Simulations++
		e.mu.Unlock()

		// The initiator runs the simulation on its own goroutine, so its
		// cancellation must be observed from the side: AfterFunc drops the
		// initiator's reference when ctx fires, which cancels runCtx only if
		// no coalesced waiter still wants the result.
		stopWatch := context.AfterFunc(ctx, func() { e.dropRef(ent) })

		runCfg := k.cfg
		runCfg.Custom = cfg.Custom
		func() {
			// done must close on every path: a panic that escaped past it
			// would leave the entry permanently in flight, hanging every
			// later request for the key. A panicking simulation (a bug, a
			// hostile custom policy, or an injected chaos fault) becomes an
			// error shared by all waiters instead.
			defer func() {
				if r := recover(); r != nil {
					ent.res, ent.err = nil, fmt.Errorf("sweep: simulation panic: %v", r)
				}
				close(ent.done)
				stopWatch()
				runCancel() // release the context's resources on every path
				if ent.err != nil {
					e.uncache(k, ent)
				}
				<-e.sem
			}()
			if h := e.hook; h != nil {
				if herr := h("simulate"); herr != nil {
					ent.err = fmt.Errorf("sweep: injected fault: %w", herr)
					return
				}
			}
			ent.res, ent.err = core.RunContext(runCtx, net, runCfg)
		}()
		if ent.err != nil && errors.Is(ent.err, core.ErrCanceled) {
			if ctx.Err() == nil {
				// Aborted under us (a waiter-join/cancel race), but this
				// caller is still live: retry.
				continue
			}
			return nil, canceledAs(ctx)
		}
		return ent.res, ent.err
	}
}

// canceledAs rewraps an abort with the calling context's own cause. The
// simulation runs under a detached context whose cancellation is always a
// plain Canceled, so the shared entry error cannot distinguish a caller
// whose deadline fired from one that hung up — each caller reports its own
// reason.
func canceledAs(ctx context.Context) error {
	return fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
}

// RunAll simulates a batch of jobs across the worker pool and returns the
// results in job order. Duplicate jobs (within the batch or against earlier
// calls) are simulated once and share one *core.Result; within-batch
// duplicates are folded before dispatch so they never occupy a worker slot
// waiting on their twin. The first error in job order is returned, wrapped
// with the failing job's network and policy; results of failed jobs are nil.
// Once ctx is canceled, no further simulations are dispatched and the
// remaining jobs fail with the context's error.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) ([]*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))

	// Fold within-batch duplicates: canon[i] is the index of the first job
	// with the same key; only first occurrences are dispatched.
	canon := make([]int, len(jobs))
	firstOf := make(map[key]int, len(jobs))
	var unique []int
	for i, j := range jobs {
		k := keyOf(j.Net, j.Cfg)
		if f, ok := firstOf[k]; ok {
			canon[i] = f
		} else {
			firstOf[k] = i
			canon[i] = i
			unique = append(unique, i)
		}
	}
	if dups := len(jobs) - len(unique); dups > 0 {
		e.mu.Lock()
		e.stats.Coalesced += int64(dups)
		e.mu.Unlock()
	}

	workers := e.workers
	if workers > len(unique) {
		workers = len(unique)
	}
	if workers <= 1 {
		for _, i := range unique {
			results[i], errs[i] = e.Run(ctx, jobs[i].Net, jobs[i].Cfg)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = e.Run(ctx, jobs[i].Net, jobs[i].Cfg)
				}
			}()
		}
	dispatch:
		for _, i := range unique {
			select {
			case next <- i:
			case <-ctx.Done():
				errs[i] = fmt.Errorf("job %d abandoned before dispatch: %w", i, ctx.Err())
				break dispatch
			}
		}
		close(next)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			for _, i := range unique {
				if results[i] == nil && errs[i] == nil {
					// Identify which sweep points were abandoned: a batch
					// error naming only the context reason hides how far the
					// dispatch got.
					errs[i] = fmt.Errorf("job %d abandoned before dispatch: %w", i, err)
				}
			}
		}
	}

	for i, c := range canon {
		if c != i {
			results[i], errs[i] = results[c], errs[c]
		}
	}
	for i, err := range errs {
		if err != nil {
			policy := fmt.Sprint(jobs[i].Cfg.Policy)
			if jobs[i].Cfg.Custom != nil {
				policy = jobs[i].Cfg.Custom.Name()
			}
			return results, fmt.Errorf("sweep: job %d (%s, %s %v): %w",
				i, jobs[i].Net.Name, policy, jobs[i].Cfg.Algo, err)
		}
	}
	return results, nil
}

// Package sweep is the concurrent experiment scheduler the evaluation runs
// on. The paper's figures, ablations and case studies are a design-space
// sweep of hundreds of independent simulated training iterations; each
// core.Run is a self-contained deterministic simulation, so the sweep
// parallelizes perfectly. The engine provides:
//
//   - a bounded worker pool that saturates the configured parallelism,
//   - a result cache shared by every experiment, keyed by
//     (network, normalized configuration), so the same configuration is
//     simulated exactly once no matter how many figures reference it, and
//   - singleflight deduplication: concurrent requests for one key coalesce
//     onto the in-flight simulation instead of repeating it.
//
// Determinism guarantee: RunAll returns results in job order and each
// simulation is a pure function of its (network, configuration) inputs, so
// the result set — and any report formatted from it — is byte-identical
// whether the engine runs with 1 worker or N.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
)

// Job is one simulation request: a network and the configuration to train it
// under.
type Job struct {
	Net *dnn.Network
	Cfg core.Config
}

// key identifies a simulation. The network is keyed by identity (callers
// memoize network construction; building the same architecture twice yields
// distinct graphs that are free to diverge), the configuration by its
// normalized value — core.Config is a comparable value type.
type key struct {
	net *dnn.Network
	cfg core.Config
}

// entry is one cache slot. done is closed when res/err are final, which is
// what lets concurrent requests for the same key wait on the first without
// holding the engine lock.
type entry struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// Stats counts the engine's cache behavior (test and reporting aid).
type Stats struct {
	// Simulations is the number of core.Run invocations actually performed.
	Simulations int64
	// Hits is the number of requests served from a completed cache entry.
	Hits int64
	// Coalesced is the number of requests folded onto another request of the
	// same key instead of starting their own simulation: duplicates within a
	// RunAll batch, plus Run calls that waited on an in-flight simulation.
	Coalesced int64
}

// Engine schedules simulations over a bounded worker pool with a shared,
// deduplicated result cache. The zero value is not usable; use NewEngine.
type Engine struct {
	workers int

	mu    sync.Mutex
	cache map[key]*entry
	stats Stats
}

// NewEngine creates an engine running at most workers simulations
// concurrently. workers <= 0 selects GOMAXPROCS. workers == 1 yields a
// strictly sequential engine (useful as the determinism reference).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: map[key]*entry{}}
}

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run simulates one job, serving it from the cache when an identical job has
// already run (or is running). Safe for concurrent use.
func (e *Engine) Run(net *dnn.Network, cfg core.Config) (*core.Result, error) {
	k := key{net: net, cfg: cfg.WithDefaults()}
	e.mu.Lock()
	if ent, ok := e.cache[k]; ok {
		select {
		case <-ent.done:
			e.stats.Hits++
		default:
			e.stats.Coalesced++
		}
		e.mu.Unlock()
		<-ent.done
		return ent.res, ent.err
	}
	ent := &entry{done: make(chan struct{})}
	e.cache[k] = ent
	e.stats.Simulations++
	e.mu.Unlock()

	ent.res, ent.err = core.Run(net, k.cfg)
	close(ent.done)
	return ent.res, ent.err
}

// RunAll simulates a batch of jobs across the worker pool and returns the
// results in job order. Duplicate jobs (within the batch or against earlier
// calls) are simulated once and share one *core.Result; within-batch
// duplicates are folded before dispatch so they never occupy a worker slot
// waiting on their twin. The first error in job order is returned, wrapped
// with the failing job's network and policy; results of failed jobs are nil.
func (e *Engine) RunAll(jobs []Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))

	// Fold within-batch duplicates: canon[i] is the index of the first job
	// with the same key; only first occurrences are dispatched.
	canon := make([]int, len(jobs))
	firstOf := make(map[key]int, len(jobs))
	var unique []int
	for i, j := range jobs {
		k := key{net: j.Net, cfg: j.Cfg.WithDefaults()}
		if f, ok := firstOf[k]; ok {
			canon[i] = f
		} else {
			firstOf[k] = i
			canon[i] = i
			unique = append(unique, i)
		}
	}
	if dups := len(jobs) - len(unique); dups > 0 {
		e.mu.Lock()
		e.stats.Coalesced += int64(dups)
		e.mu.Unlock()
	}

	workers := e.workers
	if workers > len(unique) {
		workers = len(unique)
	}
	if workers <= 1 {
		for _, i := range unique {
			results[i], errs[i] = e.Run(jobs[i].Net, jobs[i].Cfg)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = e.Run(jobs[i].Net, jobs[i].Cfg)
				}
			}()
		}
		for _, i := range unique {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for i, c := range canon {
		if c != i {
			results[i], errs[i] = results[c], errs[c]
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: job %d (%s, %v %v): %w",
				i, jobs[i].Net.Name, jobs[i].Cfg.Policy, jobs[i].Cfg.Algo, err)
		}
	}
	return results, nil
}

package sweep

import (
	"context"
	"reflect"
	"testing"

	"vdnn/internal/core"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
)

// testJobs is a small cross-policy sweep: one network under every policy and
// algorithm mode the figures exercise, including the multi-pass dynamic
// policy.
func testJobs(t testing.TB) []Job {
	t.Helper()
	spec := gpu.TitanX()
	net := networks.AlexNet(128)
	var jobs []Job
	for _, pa := range []struct {
		p core.Policy
		a core.AlgoMode
	}{
		{core.Baseline, core.MemOptimal},
		{core.Baseline, core.PerfOptimal},
		{core.VDNNAll, core.MemOptimal},
		{core.VDNNAll, core.PerfOptimal},
		{core.VDNNConv, core.MemOptimal},
		{core.VDNNConv, core.PerfOptimal},
		{core.VDNNDyn, 0},
	} {
		jobs = append(jobs, Job{Net: net, Cfg: core.Config{Spec: spec, Policy: pa.p, Algo: pa.a}})
		jobs = append(jobs, Job{Net: net, Cfg: core.Config{Spec: spec, Policy: pa.p, Algo: pa.a, Oracle: true}})
	}
	return jobs
}

// TestRunAllDeterminism checks the engine's core guarantee: a parallel RunAll
// returns results deep-equal to a plain sequential loop over core.Run.
func TestRunAllDeterminism(t *testing.T) {
	jobs := testJobs(t)

	want := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		r, err := core.Run(j.Net, j.Cfg)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = r
	}

	eng := NewEngine(8)
	got, err := eng.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %d (%v %v): parallel result differs from sequential",
				i, jobs[i].Cfg.Policy, jobs[i].Cfg.Algo)
		}
	}
}

// TestRunAllDedup checks singleflight deduplication: N identical jobs cost
// exactly one simulation and share one result value.
func TestRunAllDedup(t *testing.T) {
	net := networks.AlexNet(128)
	cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Algo: core.MemOptimal}
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Net: net, Cfg: cfg}
	}

	eng := NewEngine(8)
	res, err := eng.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	st := eng.Stats()
	if st.Simulations != 1 {
		t.Errorf("simulations = %d, want 1 (stats: %+v)", st.Simulations, st)
	}
	if st.Hits+st.Coalesced != int64(len(jobs)-1) {
		t.Errorf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, len(jobs)-1)
	}
	for i, r := range res {
		if r != res[0] {
			t.Fatalf("job %d returned a distinct result pointer", i)
		}
	}

	// A repeat batch is served entirely from cache.
	if _, err := eng.RunAll(context.Background(), jobs[:4]); err != nil {
		t.Fatalf("RunAll (cached): %v", err)
	}
	if st := eng.Stats(); st.Simulations != 1 {
		t.Errorf("simulations after cached batch = %d, want 1", st.Simulations)
	}
}

// TestConfigNormalization checks that a zero-valued and an explicit-default
// configuration share one cache entry.
func TestConfigNormalization(t *testing.T) {
	net := networks.AlexNet(128)
	eng := NewEngine(1)
	a := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv}
	b := a
	b.Iterations = 2
	b.HostBytes = 64 << 30
	ra, err := eng.Run(context.Background(), net, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := eng.Run(context.Background(), net, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("normalized configurations did not share a cache entry")
	}
	if st := eng.Stats(); st.Simulations != 1 {
		t.Errorf("simulations = %d, want 1", st.Simulations)
	}
}

// TestRunAllError checks that an invalid job surfaces its error while valid
// jobs still complete.
func TestRunAllError(t *testing.T) {
	net := networks.AlexNet(128)
	good := Job{Net: net, Cfg: core.Config{Spec: gpu.TitanX(), Policy: core.Baseline, Algo: core.PerfOptimal}}
	bad := Job{Net: net, Cfg: core.Config{}} // zero Spec fails validation
	res, err := NewEngine(4).RunAll(context.Background(), []Job{good, bad, good})
	if err == nil {
		t.Fatal("RunAll accepted an invalid spec")
	}
	if res[0] == nil || res[2] == nil {
		t.Error("valid jobs did not complete alongside the failed one")
	}
	if res[1] != nil {
		t.Error("failed job returned a non-nil result")
	}
}

package sweep

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/store"
)

// capacitySweep is a structure-shared sweep: one configuration at several
// device memory capacities, the differential path's best case.
func capacitySweep(net *dnn.Network, n int) []Job {
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		spec := gpu.TitanX()
		spec.MemBytes = int64(2+i) << 30
		jobs = append(jobs, Job{Net: net, Cfg: core.Config{Spec: spec, Policy: core.VDNNAll}})
	}
	return jobs
}

// TestStoreWarmStart is the restart scenario in miniature: a second engine
// (fresh in-memory cache, rebuilt network graph — a new process) pointed at
// the same store directory must serve the whole sweep from disk, with zero
// simulations and bit-identical results.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	const n = 4

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e1 := NewEngine(2)
	e1.SetStore(st1)
	cold, err := e1.RunAll(context.Background(), capacitySweep(networks.AlexNet(32), n))
	if err != nil {
		t.Fatalf("cold RunAll: %v", err)
	}
	if s := e1.Stats(); s.Simulations != n {
		t.Fatalf("cold engine stats = %+v, want %d simulations", s, n)
	}
	if s := st1.Stats(); s.Writes != n || s.Hits != 0 {
		t.Fatalf("cold store stats = %+v, want %d writes, 0 hits", s, n)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	e2 := NewEngine(2)
	e2.SetStore(st2)
	warm, err := e2.RunAll(context.Background(), capacitySweep(networks.AlexNet(32), n))
	if err != nil {
		t.Fatalf("warm RunAll: %v", err)
	}
	if s := e2.Stats(); s.Simulations != 0 || s.Structures != 0 || s.Priced != 0 {
		t.Fatalf("warm engine stats = %+v, want zero simulations/structures/priced", s)
	}
	if s := st2.Stats(); s.Hits != n {
		t.Fatalf("warm store stats = %+v, want %d hits", s, n)
	}
	for i := range cold {
		if !reflect.DeepEqual(cold[i], warm[i]) {
			t.Errorf("job %d: store-served result differs from simulated one", i)
		}
	}
}

// TestStoreStructureProbesNotPersisted runs an oracle request — which IS its
// own structure key — and checks the engine neither loads nor saves it: the
// structure's allocator trace cannot cross processes, and a store-served
// oracle Result would silently disable differential pricing.
func TestStoreStructureProbesNotPersisted(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := NewEngine(1)
	e.SetStore(st)

	net := networks.AlexNet(32)
	spec := gpu.TitanX()
	spec.MemBytes = oracleMemSentinel
	spec.ReservedBytes = 0
	cfg := core.Config{Spec: spec, Policy: core.VDNNAll, Oracle: true}
	if k := keyOf(net, cfg); k != structureKey(k) {
		t.Fatalf("test setup: config is not its own structure key")
	}
	if _, err := e.Run(context.Background(), net, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s := st.Stats(); s.Writes != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Errorf("structure probe touched the store: %+v", s)
	}

	// A warm engine over the same dir must rebuild the structure, not lose
	// the differential path: the capacity sweep still prices from a live
	// structure even though its points come back from the store next time.
	e2 := NewEngine(1)
	e2.SetStore(st)
	if _, err := e2.RunAll(context.Background(), capacitySweep(net, 3)); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if s := e2.Stats(); s.Structures == 0 {
		t.Errorf("differential path inactive alongside store: %+v", s)
	}
}

// countingStore wraps a ResultStore and records which calls reach it.
type countingStore struct {
	mu     sync.Mutex
	loads  int
	saves  int
	inner  ResultStore
	filter func(cfg core.Config) // optional assertion on every call
}

func (c *countingStore) Load(net *dnn.Network, cfg core.Config) (*core.Result, bool) {
	c.mu.Lock()
	c.loads++
	c.mu.Unlock()
	if c.filter != nil {
		c.filter(cfg)
	}
	if c.inner == nil {
		return nil, false
	}
	return c.inner.Load(net, cfg)
}

func (c *countingStore) Save(net *dnn.Network, cfg core.Config, res *core.Result) {
	c.mu.Lock()
	c.saves++
	c.mu.Unlock()
	if c.inner != nil {
		c.inner.Save(net, cfg, res)
	}
}

// TestStoreSkipsFailedSimulations: an errored computation must never be
// written through (a chaos fault is transient; persisting it would replay
// the failure forever).
func TestStoreSkipsFailedSimulations(t *testing.T) {
	cs := &countingStore{}
	e := NewEngine(1)
	e.SetStore(cs)
	e.SetChaosHook(func(string) error { return context.DeadlineExceeded })
	net := networks.AlexNet(32)
	if _, err := e.Run(context.Background(), net, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll}); err == nil {
		t.Fatalf("injected fault did not surface")
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.saves != 0 {
		t.Errorf("failed simulation written through: %d saves", cs.saves)
	}
	if cs.loads != 1 {
		t.Errorf("loads = %d, want 1 (read-through precedes the fault point)", cs.loads)
	}
}

// TestStoreServesNestedProfilingCandidates: the dynamic policy's profiling
// sub-simulations resolve through the same engine path, so a warm store
// eliminates them too.
func TestStoreServesNestedProfilingCandidates(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e1 := NewEngine(2)
	e1.SetStore(st1)
	net := networks.AlexNet(32)
	cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNDyn}
	cold, err := e1.Run(context.Background(), net, cfg)
	if err != nil {
		t.Fatalf("cold Run: %v", err)
	}
	if st1.Stats().Writes < 2 {
		// The dyn cascade plus its winning candidate: at least the top-level
		// result and one candidate must have been persisted.
		t.Fatalf("expected candidate results persisted too: %+v", st1.Stats())
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	e2 := NewEngine(2)
	e2.SetStore(st2)
	warm, err := e2.Run(context.Background(), networks.AlexNet(32), cfg)
	if err != nil {
		t.Fatalf("warm Run: %v", err)
	}
	if s := e2.Stats(); s.Simulations != 0 {
		t.Errorf("warm dyn run simulated: %+v", s)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("store-served dyn result differs from simulated one")
	}
}

package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
)

// spinPolicy is a profiling policy that keeps simulating sub-candidates
// until its context is canceled (each candidate checks the run context on
// entry) or stop is set. It makes "a simulation that is deterministically
// mid-flight when cancel lands" out of fast deterministic sub-simulations.
type spinPolicy struct {
	namedPolicy
	started chan struct{} // closed when the simulation is running
	once    sync.Once
	stop    atomic.Bool
}

func (p *spinPolicy) Profile(net *dnn.Network, cfg core.Config, simulate core.Simulate) (*core.Result, error) {
	p.once.Do(func() { close(p.started) })
	sub := cfg
	sub.Custom = nil
	sub.Policy = core.Baseline
	sub.Algo = core.MemOptimal
	var last *core.Result
	for i := 1; ; i++ {
		if p.stop.Load() {
			return last, nil
		}
		s := sub
		s.Iterations = 1 + i%3
		res, err := simulate(s)
		if err != nil {
			return nil, err
		}
		last = res
	}
}

// TestRunCancelMidFlight cancels the only caller of an in-flight simulation:
// Run must return promptly with an error matching both core.ErrCanceled and
// context.Canceled, the abort must be counted, and the canceled result must
// not be cached — a fresh request re-simulates and succeeds.
func TestRunCancelMidFlight(t *testing.T) {
	eng := NewEngine(2)
	net := networks.AlexNet(32)
	pol := &spinPolicy{namedPolicy: namedPolicy{name: "spin"}, started: make(chan struct{})}
	cfg := core.Config{Spec: gpu.TitanX(), Custom: pol}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, net, cfg)
		errc <- err
	}()
	<-pol.started
	cancel()
	var err error
	select {
	case err = <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled Run did not return")
	}
	if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want core.ErrCanceled wrapping context.Canceled", err)
	}
	if st := eng.Stats(); st.Canceled != 1 {
		t.Errorf("Canceled stat = %d, want 1 (stats %+v)", st.Canceled, st)
	}

	// The canceled entry must not poison the key: a live caller re-simulates.
	pol.stop.Store(true)
	if _, err := eng.Run(context.Background(), net, cfg); err != nil {
		t.Fatalf("re-run after cancel: %v", err)
	}
	if st := eng.Stats(); st.Simulations != 2 {
		t.Errorf("simulations = %d, want 2 (canceled run must not be cached)", st.Simulations)
	}
}

// TestWaiterCancelKeepsSharedRun checks reference counting: when two callers
// share one in-flight simulation and only one cancels, the canceling caller
// returns immediately with its context error while the simulation keeps
// running for the survivor and completes normally.
func TestWaiterCancelKeepsSharedRun(t *testing.T) {
	eng := NewEngine(2)
	net := networks.AlexNet(32)
	pol := &spinPolicy{namedPolicy: namedPolicy{name: "shared"}, started: make(chan struct{})}
	cfg := core.Config{Spec: gpu.TitanX(), Custom: pol}

	initErr := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), net, cfg)
		initErr <- err
	}()
	<-pol.started

	// Coalesce a second caller onto the in-flight entry, then cancel it.
	waitCtx, cancelWaiter := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := eng.Run(waitCtx, net, cfg)
		waitErr <- err
	}()
	// The waiter must be parked on the entry before we cancel, or it would
	// just fail its entry check; Coalesced flipping to 1 is that signal.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	cancelWaiter()
	select {
	case err := <-waitErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter did not return")
	}

	// The initiator's run must survive the waiter's departure.
	pol.stop.Store(true)
	select {
	case err := <-initErr:
		if err != nil {
			t.Fatalf("surviving caller failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving caller never completed")
	}
	if st := eng.Stats(); st.Canceled != 0 {
		t.Errorf("Canceled stat = %d, want 0 (simulation had a surviving waiter)", st.Canceled)
	}
}

// TestRunAllCancelMidBatch cancels a batch while its first job is mid-
// simulation: RunAll must return promptly with an error naming a job index
// and matching the context error, and jobs never dispatched must not have
// been simulated.
func TestRunAllCancelMidBatch(t *testing.T) {
	// One worker: while the spin job holds it, jobs 1..15 are provably
	// undispatched at cancel time. (With more workers the others could drain
	// the whole queue before cancel lands — differential pricing makes the
	// non-spinning jobs nearly free.)
	eng := NewEngine(1)
	net := networks.AlexNet(32)
	pol := &spinPolicy{namedPolicy: namedPolicy{name: "batch-spin"}, started: make(chan struct{})}
	jobs := make([]Job, 16)
	jobs[0] = Job{Net: net, Cfg: core.Config{Spec: gpu.TitanX(), Custom: pol}}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = Job{Net: net, Cfg: core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv, Iterations: i}}
	}

	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		results []*core.Result
		err     error
	}
	done := make(chan out, 1)
	go func() {
		res, err := eng.RunAll(ctx, jobs)
		done <- out{res, err}
	}()
	<-pol.started
	cancel()
	var got out
	select {
	case got = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled RunAll did not return")
	}
	if got.err == nil {
		t.Fatal("canceled RunAll returned nil error")
	}
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", got.err)
	}
	if !strings.Contains(got.err.Error(), "job ") {
		t.Errorf("batch error %q does not identify the failing job", got.err)
	}
	if st := eng.Stats(); st.Simulations >= int64(len(jobs)) {
		t.Errorf("simulations = %d: cancellation did not stop dispatch of %d jobs", st.Simulations, len(jobs))
	}
}

// TestRunAllUndispatchedJobsCarryIndex checks the pre-canceled path: every
// abandoned job's error carries its index, not a bare context error.
func TestRunAllUndispatchedJobsCarryIndex(t *testing.T) {
	eng := NewEngine(4)
	net := networks.AlexNet(32)
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Net: net, Cfg: core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv, Iterations: i + 1}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.RunAll(ctx, jobs)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "job 0") {
		t.Errorf("error %q does not name the job index", err)
	}
}

// TestCancelLeaksNoGoroutines runs a burst of canceled and completed
// simulations and checks the engine's goroutine count settles back to the
// baseline — no watcher, waiter or worker leaks.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	eng := NewEngine(4)
	net := networks.AlexNet(32)
	before := runtime.NumGoroutine()

	for round := 0; round < 8; round++ {
		pol := &spinPolicy{namedPolicy: namedPolicy{name: fmt.Sprintf("leak-%d", round)}, started: make(chan struct{})}
		cfg := core.Config{Spec: gpu.TitanX(), Custom: pol}
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := eng.Run(ctx, net, cfg)
			errc <- err
		}()
		<-pol.started
		cancel()
		if err := <-errc; !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("round %d: err = %v, want core.ErrCanceled", round, err)
		}
		// And one normal completed run in between, to mix paths.
		if _, err := eng.Run(context.Background(), net, core.Config{Spec: gpu.TitanX(), Policy: core.VDNNConv, Iterations: round + 1}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines before %d, after %d:\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package sweep

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"vdnn/internal/core"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
)

// capacitySweepJobs is a capacity ablation crossed with the policy/algorithm
// grid — the shape of every figure sweep, and the differential path's best
// case: each (policy, algo) column shares one structure across all
// capacities. The grid deliberately includes ineligible shapes (vDNN-dyn,
// greedy algorithm selection) and capacities on both sides of the
// trainability threshold, so full-path fallback and the untrainable pricing
// path are exercised alongside the happy path.
func capacitySweepJobs(t testing.TB) []Job {
	t.Helper()
	net := networks.AlexNet(128)
	var jobs []Job
	for _, memGB := range []int64{1, 2, 4, 6, 8, 12} {
		spec := gpu.TitanX().WithMemory(memGB << 30)
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.Baseline, core.MemOptimal},
			{core.Baseline, core.PerfOptimal},
			{core.VDNNAll, core.MemOptimal},
			{core.VDNNConv, core.PerfOptimal},
			{core.VDNNAll, core.GreedyAlgo}, // ineligible: consults free space
			{core.VDNNDyn, 0},               // ineligible: profiling cascade
		} {
			jobs = append(jobs, Job{Net: net, Cfg: core.Config{Spec: spec, Policy: pa.p, Algo: pa.a}})
		}
		// Oracle points share the same structures as their real twins.
		jobs = append(jobs, Job{Net: net, Cfg: core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true}})
	}
	return jobs
}

// TestDifferentialEquivalence is the tentpole guarantee: every result the
// engine produces through the structure/pricing split is reflect.DeepEqual
// to a plain core.Run of the same job — trainable points, untrainable points
// (exact FailReason chain), oracle points, and ineligible shapes alike.
func TestDifferentialEquivalence(t *testing.T) {
	jobs := capacitySweepJobs(t)

	want := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		r, err := core.Run(j.Net, j.Cfg)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = r
	}

	eng := NewEngine(4)
	got, err := eng.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	var trainable, untrainable int
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %d (%v %v, %d GB): differential result differs from full simulation",
				i, jobs[i].Cfg.Policy, jobs[i].Cfg.Algo, jobs[i].Cfg.Spec.MemBytes>>30)
		}
		if got[i].Trainable {
			trainable++
		} else {
			untrainable++
		}
	}
	if trainable == 0 || untrainable == 0 {
		t.Fatalf("sweep did not cross the trainability threshold (trainable=%d untrainable=%d): the untrainable pricing path went untested", trainable, untrainable)
	}

	st := eng.Stats()
	if st.Priced == 0 {
		t.Fatalf("no result was priced from a structure (stats %+v)", st)
	}
	if st.Structures == 0 {
		t.Fatalf("no structure was built (stats %+v)", st)
	}
	// Structure sharing is the point: each eligible (policy, algo) column
	// must reuse one structure across all six capacities, not build one per
	// point.
	if st.Structures >= st.Priced {
		t.Errorf("structures (%d) >= priced results (%d): capacities are not sharing structures (stats %+v)",
			st.Structures, st.Priced, st)
	}
}

// TestDifferentialUntrainableExact pins the hardest equivalence case: an
// untrainable point priced from a structure must reproduce the full path's
// failure verbatim — Trainable, FailReason, the oracle demand report, and
// the Debug free-span dump.
func TestDifferentialUntrainableExact(t *testing.T) {
	net := networks.AlexNet(128)
	cfg := core.Config{
		Spec:   gpu.TitanX().WithMemory(1 << 30),
		Policy: core.Baseline,
		Algo:   core.PerfOptimal,
		Debug:  true,
	}
	want, err := core.Run(net, cfg)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	if want.Trainable {
		t.Fatalf("baseline AlexNet(128) trains in 1 GB; pick a smaller capacity")
	}
	eng := NewEngine(1)
	got, err := eng.Run(context.Background(), net, cfg)
	if err != nil {
		t.Fatalf("engine Run: %v", err)
	}
	if got.FailReason != want.FailReason {
		t.Errorf("FailReason:\n  engine: %q\n  core:   %q", got.FailReason, want.FailReason)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("priced untrainable result differs from full simulation")
	}
	if st := eng.Stats(); st.Structures != 1 {
		t.Errorf("structures = %d, want 1 (stats %+v)", st.Structures, st)
	}
}

// TestDifferentialStructureStats checks the bookkeeping of the differential
// split on a clean capacity column: the first capacity doubles as the
// structure build (it simulates at its own capacity, recording the trace),
// every later capacity is priced from it, and a repeat request is a plain
// cache hit that builds and prices nothing new.
func TestDifferentialStructureStats(t *testing.T) {
	net := networks.AlexNet(128)
	eng := NewEngine(1)
	ctx := context.Background()
	caps := []int64{2 << 30, 4 << 30, 8 << 30, 12 << 30}
	for _, c := range caps {
		cfg := core.Config{Spec: gpu.TitanX().WithMemory(c), Policy: core.VDNNConv, Algo: core.PerfOptimal}
		if _, err := eng.Run(ctx, net, cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Structures != 1 {
		t.Errorf("structures = %d, want 1 shared across %d capacities (stats %+v)", st.Structures, len(caps), st)
	}
	if st.Priced != int64(len(caps)-1) {
		t.Errorf("priced = %d, want %d — every capacity after the structure-building first (stats %+v)", st.Priced, len(caps)-1, st)
	}
	if st.Simulations != int64(len(caps)) {
		t.Errorf("simulations = %d, want %d top-level computations (stats %+v)", st.Simulations, len(caps), st)
	}
	// Repeat: pure hits, nothing recomputed.
	for _, c := range caps {
		cfg := core.Config{Spec: gpu.TitanX().WithMemory(c), Policy: core.VDNNConv, Algo: core.PerfOptimal}
		if _, err := eng.Run(ctx, net, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if st2 := eng.Stats(); st2.Structures != st.Structures || st2.Priced != st.Priced || st2.Simulations != st.Simulations {
		t.Errorf("repeat requests recomputed work: before %+v after %+v", st, st2)
	}
}

// TestShardedCacheStress hammers the sharded cache from concurrent RunAll
// batches over overlapping keys (run under -race in CI): every batch must
// return results identical to the sequential reference, and the singleflight
// guarantee must hold engine-wide — each unique key is computed exactly
// once, each unique structure built exactly once, no matter how many batches
// race for it.
func TestShardedCacheStress(t *testing.T) {
	// Exclude vDNN-dyn: its profiling candidates resolve nested and race
	// top-level requests for the same keys, so whether a key counts as a
	// Simulation or a Hit becomes scheduling-dependent. Dyn correctness under
	// the engine is covered by TestDifferentialEquivalence; this test pins
	// the exact singleflight arithmetic on the statically-keyed grid.
	var jobs []Job
	for _, j := range capacitySweepJobs(t) {
		if j.Cfg.Policy != core.VDNNDyn {
			jobs = append(jobs, j)
		}
	}

	// Sequential reference on a private engine.
	ref := NewEngine(1)
	want, err := ref.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatalf("reference RunAll: %v", err)
	}

	uniqueKeys := map[key]bool{}
	uniqueStructures := map[key]bool{}
	for _, j := range jobs {
		k := keyOf(j.Net, j.Cfg)
		uniqueKeys[k] = true
		if core.StructureShaped(k.cfg) {
			uniqueStructures[structureKey(k)] = true
		}
	}

	eng := NewEngine(8)
	const batches = 6
	var wg sync.WaitGroup
	errs := make([]error, batches)
	results := make([][]*core.Result, batches)
	perm := make([][]int, batches)
	for b := range perm {
		// Each batch requests the same key set in a different order, so
		// shards see claim/coalesce/hit races from every direction.
		perm[b] = rand.New(rand.NewSource(int64(b))).Perm(len(jobs))
	}
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			shuffled := make([]Job, len(jobs))
			for i, p := range perm[b] {
				shuffled[i] = jobs[p]
			}
			results[b], errs[b] = eng.RunAll(context.Background(), shuffled)
		}(b)
	}
	wg.Wait()
	for b := 0; b < batches; b++ {
		if errs[b] != nil {
			t.Fatalf("batch %d: %v", b, errs[b])
		}
		for i, p := range perm[b] {
			if !reflect.DeepEqual(results[b][i], want[p]) {
				t.Errorf("batch %d job %d: racing result differs from reference", b, p)
			}
		}
	}

	st := eng.Stats()
	if st.Simulations != int64(len(uniqueKeys)) {
		t.Errorf("simulations = %d, want %d (each unique key computed exactly once; stats %+v)",
			st.Simulations, len(uniqueKeys), st)
	}
	if st.Structures != int64(len(uniqueStructures)) {
		t.Errorf("structures = %d, want %d (each structure built exactly once; stats %+v)",
			st.Structures, len(uniqueStructures), st)
	}
	if st.Canceled != 0 {
		t.Errorf("canceled = %d, want 0 (stats %+v)", st.Canceled, st)
	}
}

package figures

import (
	"bytes"
	"testing"

	"vdnn"
	"vdnn/internal/gpu"
)

// TestParallelSuiteByteIdentical is the engine's acceptance criterion at the
// table level: every experiment rendered from a parallel suite must be
// byte-identical to the sequential reference.
func TestParallelSuiteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite; skipped in -short mode")
	}
	seq := NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(vdnn.WithParallelism(1)))
	par := NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(vdnn.WithParallelism(8)))

	parExps := par.Experiments()
	for i, e := range seq.Experiments() {
		var want, got bytes.Buffer
		e.Gen().Render(&want)
		parExps[i].Gen().Render(&got)
		if want.String() != got.String() {
			t.Errorf("%s: parallel table differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
				e.Name, want.String(), got.String())
		}
	}
}

// TestJobsCoverGen guards the job registry against drift: after priming an
// experiment's Jobs(), its Gen() must be all cache hits. A Gen that
// simulates a configuration its jobs function missed would silently fall
// back to inline sequential simulation, erasing the batch parallelism
// without failing any output check — this test turns that into a failure.
func TestJobsCoverGen(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite; skipped in -short mode")
	}
	s := NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(vdnn.WithParallelism(4)))
	for _, e := range s.Experiments() {
		s.Prime(e.Jobs())
		before := s.Simulator().Stats().Simulations
		e.Gen()
		if after := s.Simulator().Stats().Simulations; after != before {
			t.Errorf("%s: Gen ran %d simulations its Jobs() did not enqueue", e.Name, after-before)
		}
	}
}

// TestExperimentsShareCache checks the suite-wide cache: regenerating every
// experiment on one suite must not re-simulate configurations that earlier
// experiments already ran (e.g. Figure 4 reuses Figure 1's simulations, the
// power study reuses Figure 11's).
func TestExperimentsShareCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite; skipped in -short mode")
	}
	s := NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(vdnn.WithParallelism(4)))
	exps := s.Experiments()
	var enqueued int
	for _, e := range exps {
		enqueued += len(e.Jobs())
		e.Gen()
	}
	st := s.Simulator().Stats()
	if st.Simulations >= int64(enqueued) {
		t.Errorf("simulations = %d of %d enqueued jobs: experiments are not sharing the cache",
			st.Simulations, enqueued)
	}
	// The shared cache must actually be hit across the full evaluation — the
	// suite's whole reason for one simulator per run.
	if st.Hits == 0 {
		t.Errorf("cache hits = 0 after a full suite run (stats %+v)", st)
	}
	// Every experiment's wall clock is attributable.
	timings := s.Timings()
	if len(timings.Rows) != len(exps) {
		t.Errorf("timings table has %d rows, want one per experiment (%d)", len(timings.Rows), len(exps))
	}
	// Regenerating everything must be free.
	before := st.Simulations
	for _, e := range s.Experiments() {
		e.Gen()
	}
	if after := s.Simulator().Stats().Simulations; after != before {
		t.Errorf("regeneration ran %d extra simulations, want 0", after-before)
	}
}

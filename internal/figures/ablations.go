package figures

import (
	"fmt"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// Ablations for the design decisions the paper argues qualitatively. All use
// VGG-16 as the stress workload.

// AblationPrefetch compares prefetch schedules on VGG-16 (64) under
// vDNN-all(m): the paper's just-in-time schedule (Figure 9), the literal
// Figure 10 search-window code, eager prefetching (the pitfall Section III-B
// warns about), and no prefetching (the naive serialized case).
func (s *Suite) ablationPrefetchJobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	var js []sweep.Job
	for _, m := range []core.PrefetchMode{core.PrefetchJIT, core.PrefetchFig10, core.PrefetchEager, core.PrefetchNone} {
		js = append(js, job(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, Prefetch: m}))
	}
	return js
}

func (s *Suite) AblationPrefetch() *report.Table {
	s.Prime(s.ablationPrefetchJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	t := report.NewTable("Ablation — prefetch scheduling (VGG-16 (64), vDNN-all(m))",
		"schedule", "max usage (MB)", "avg usage (MB)", "FE time (ms)", "on-demand fetches")
	for _, m := range []core.PrefetchMode{core.PrefetchJIT, core.PrefetchFig10, core.PrefetchEager, core.PrefetchNone} {
		r := s.Run(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, Prefetch: m})
		t.AddRow(m.String(), report.FmtMiB(r.MaxUsage), report.FmtMiB(r.AvgUsage),
			report.FmtMs(int64(r.FETime)), fmt.Sprintf("%d", r.OnDemandFetches))
	}
	t.AddNote("earlier prefetching re-camps data in GPU memory; no prefetching serializes backward computation")
	return t
}

// AblationPageMigration reproduces the Section II-C argument quantitatively:
// page-migration-based virtualization (80-200 MB/s) versus pinned DMA
// (12.8 GB/s) for vDNN's transfers.
func (s *Suite) ablationPageMigrationJobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	return []sweep.Job{
		job(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true}),
		job(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, PageMigration: true}),
	}
}

func (s *Suite) AblationPageMigration() *report.Table {
	s.Prime(s.ablationPageMigrationJobs())
	link := s.Spec.Link
	t := report.NewTable("Ablation — DMA vs page-migration transfers (Section II-C)",
		"transfer mode", "effective bandwidth", "VGG-16 (64) FE time (ms)", "slowdown")
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	dma := s.Run(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true})
	pm := s.Run(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, PageMigration: true})
	t.AddRow("pinned DMA", fmt.Sprintf("%.1f GB/s", float64(link.EffBps)/1e9),
		report.FmtMs(int64(dma.FETime)), "1.0x")
	t.AddRow("page migration", fmt.Sprintf("%.0f MB/s", link.PageMigrationBps()/1e6),
		report.FmtMs(int64(pm.FETime)), fmt.Sprintf("%.1fx", float64(pm.FETime)/float64(dma.FETime)))
	t.AddNote("paper: 20-50 us per 4 KB page caps paging at 80-200 MB/s vs 12.8 GB/s DMA")
	return t
}

// AblationInterconnect sweeps the host link: PCIe gen2/gen3 and NVLINK (the
// successor interconnect the paper names in Section III-A), showing how
// static vDNN's offload stalls shrink as the link speeds up.
func (s *Suite) ablationInterconnectJobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(128) }, "vgg16-128")
	js := []sweep.Job{job(n, core.Config{Spec: s.Spec, Policy: core.Baseline, Algo: core.PerfOptimal, Oracle: true})}
	for _, link := range []pcie.Link{pcie.Gen2x16(), pcie.Gen3x16(), pcie.NVLink1()} {
		spec := s.Spec
		spec.Link = link
		spec.Name = s.Spec.Name + "+" + link.Name
		js = append(js, job(n, core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true}))
	}
	return js
}

func (s *Suite) AblationInterconnect() *report.Table {
	s.Prime(s.ablationInterconnectJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(128) }, "vgg16-128")
	t := report.NewTable("Ablation — interconnect bandwidth (VGG-16 (128), vDNN-all(m))",
		"link", "effective GB/s", "FE time (ms)", "vs oracle baseline")
	oracle := s.oracleBaseline(n)
	for _, link := range []pcie.Link{pcie.Gen2x16(), pcie.Gen3x16(), pcie.NVLink1()} {
		spec := s.Spec
		spec.Link = link
		spec.Name = s.Spec.Name + "+" + link.Name
		r := s.Run(n, core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true})
		t.AddRow(link.Name, fmt.Sprintf("%.1f", float64(link.EffBps)/1e9),
			report.FmtMs(int64(r.FETime)),
			fmt.Sprintf("%.2f", float64(oracle.FETime)/float64(r.FETime)))
	}
	t.AddNote("the residual (m)-mode gap is the implicit-GEMM algorithm penalty, not transfer stalls")
	return t
}

// AblationCapacity sweeps the GPU memory size for VGG-16 (256): where the
// baseline, static vDNN and dynamic vDNN become trainable.
func (s *Suite) ablationCapacityJobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	var js []sweep.Job
	for _, gb := range []int64{6, 8, 12, 16, 24, 32} {
		spec := s.Spec.WithMemory(gb << 30)
		spec.Name = fmt.Sprintf("%s-%dGB", s.Spec.Name, gb)
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.Baseline, core.PerfOptimal}, {core.VDNNConv, core.PerfOptimal},
			{core.VDNNAll, core.MemOptimal}, {core.VDNNDyn, 0},
		} {
			js = append(js, job(n, core.Config{Spec: spec, Policy: pa.p, Algo: pa.a}))
		}
	}
	return js
}

func (s *Suite) AblationCapacity() *report.Table {
	s.Prime(s.ablationCapacityJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	t := report.NewTable("Ablation — GPU memory capacity sweep (VGG-16 (256))",
		"capacity", "base(p)", "vDNN-conv(p)", "vDNN-all(m)", "vDNN-dyn")
	for _, gb := range []int64{6, 8, 12, 16, 24, 32} {
		spec := s.Spec.WithMemory(gb << 30)
		spec.Name = fmt.Sprintf("%s-%dGB", s.Spec.Name, gb)
		cell := func(p core.Policy, a core.AlgoMode) string {
			r := s.Run(n, core.Config{Spec: spec, Policy: p, Algo: a})
			return yesNo(r.Trainable)
		}
		t.AddRow(fmt.Sprintf("%d GB", gb),
			cell(core.Baseline, core.PerfOptimal),
			cell(core.VDNNConv, core.PerfOptimal),
			cell(core.VDNNAll, core.MemOptimal),
			cell(core.VDNNDyn, 0))
	}
	t.AddNote("vDNN pushes the trainability threshold far below the 28 GB the baseline needs")
	return t
}

// AblationWeightOffload quantifies the extension the paper sketches in
// Section III: applying vDNN's offload/prefetch machinery to the layer
// weights as well. As the paper predicts, the extra savings are small —
// weights are a sliver of feature-extraction memory (Figure 4) — while the
// transfer traffic grows.
func (s *Suite) ablationWeightOffloadJobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range []*dnn.Network{
		s.net(func() *dnn.Network { return networks.OverFeat(128) }, "overfeat128"),
		s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64"),
	} {
		js = append(js, job(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true}),
			job(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, OffloadWeights: true}))
	}
	return js
}

func (s *Suite) AblationWeightOffload() *report.Table {
	s.Prime(s.ablationWeightOffloadJobs())
	t := report.NewTable("Ablation — offloading weights too (vDNN-all(m))",
		"network", "avg MB", "avg MB (+W)", "extra savings", "offload MB", "offload MB (+W)", "FE ms", "FE ms (+W)")
	for _, name := range []string{"overfeat", "vgg16"} {
		var n *dnn.Network
		if name == "overfeat" {
			n = s.net(func() *dnn.Network { return networks.OverFeat(128) }, "overfeat128")
		} else {
			n = s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
		}
		base := s.Run(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true})
		ext := s.Run(n, core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal, Oracle: true, OffloadWeights: true})
		extra := 1 - float64(ext.AvgUsage)/float64(base.AvgUsage)
		t.AddRow(n.Name,
			report.FmtMiB(base.AvgUsage), report.FmtMiB(ext.AvgUsage), report.FmtPct(extra),
			report.FmtMiB(base.OffloadBytes), report.FmtMiB(ext.OffloadBytes),
			report.FmtMs(int64(base.FETime)), report.FmtMs(int64(ext.FETime)))
	}
	t.AddNote("paper Section III: weights can be offloaded too, 'but with less of a memory saving benefit'")
	return t
}

// AblationBatchScaling shows the largest trainable VGG-16 batch per policy
// on the 12 GB device — the practitioner's view of vDNN's benefit.
func (s *Suite) ablationBatchScalingJobs() []sweep.Job {
	var js []sweep.Job
	for _, batch := range []int{32, 64, 128, 192, 256, 384} {
		n := s.net(func() *dnn.Network { return networks.VGG16(batch) }, fmt.Sprintf("vgg16-%d", batch))
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.Baseline, core.PerfOptimal}, {core.Baseline, core.MemOptimal},
			{core.VDNNConv, core.PerfOptimal}, {core.VDNNAll, core.MemOptimal},
			{core.VDNNDyn, 0},
		} {
			js = append(js, job(n, s.cfg(pa.p, pa.a)))
		}
	}
	return js
}

func (s *Suite) AblationBatchScaling() *report.Table {
	s.Prime(s.ablationBatchScalingJobs())
	t := report.NewTable("Ablation — largest trainable VGG-16 batch size on 12 GB",
		"batch", "base(p)", "base(m)", "vDNN-conv(p)", "vDNN-all(m)", "vDNN-dyn")
	for _, batch := range []int{32, 64, 128, 192, 256, 384} {
		n := s.net(func() *dnn.Network { return networks.VGG16(batch) }, fmt.Sprintf("vgg16-%d", batch))
		cell := func(p core.Policy, a core.AlgoMode) string {
			r := s.Run(n, core.Config{Spec: s.Spec, Policy: p, Algo: a})
			return yesNo(r.Trainable)
		}
		t.AddRow(fmt.Sprintf("%d", batch),
			cell(core.Baseline, core.PerfOptimal), cell(core.Baseline, core.MemOptimal),
			cell(core.VDNNConv, core.PerfOptimal), cell(core.VDNNAll, core.MemOptimal),
			cell(core.VDNNDyn, 0))
	}
	return t
}

package figures

import (
	"fmt"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// The pipeline-vs-data-parallel case study: four GPUs behind one shared
// gen3 x16 root complex processing a 256-image global batch of VGG-16 —
// split across replicas (data parallelism, 64 each, ring all-reduce) or
// across layers (pipeline parallelism, micro-batches streamed through four
// stages). Same silicon, same interconnect, same work per iteration; the
// traffic patterns could not be more different.

// pipelineMicroBatchCounts are the pipeline points of the study.
var pipelineMicroBatchCounts = []int{4, 8, 16}

func (s *Suite) pipelineNet() *dnn.Network {
	return s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
}

func (s *Suite) pipelineDPNet() *dnn.Network {
	return s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
}

// pipelineCfg is a 4-stage pipeline over the shared root complex.
func (s *Suite) pipelineCfg(microBatches int) core.Config {
	return core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal,
		Stages: 4, MicroBatches: microBatches, Topology: pcie.SharedGen3Root()}
}

// caseStudyPipelineJobs is the simulation set: the single-GPU reference, the
// 4-replica data-parallel split, and 4-stage pipelines at rising micro-batch
// counts.
func (s *Suite) caseStudyPipelineJobs() []sweep.Job {
	js := []sweep.Job{
		job(s.pipelineNet(), core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal}),
		job(s.pipelineDPNet(), s.contentionCfg(core.VDNNAll, core.MemOptimal, 4)),
	}
	for _, m := range pipelineMicroBatchCounts {
		js = append(js, job(s.pipelineNet(), s.pipelineCfg(m)))
	}
	return js
}

// CaseStudyPipeline renders the comparison: iteration time and throughput
// for a 256-image VGG-16 batch on 1 GPU, on 4 data-parallel replicas, and
// on a 4-stage pipeline — with each mode's interconnect bill (all-reduce vs
// inter-stage hand-offs), the pipeline's measured bubble, and the
// partitioner's stage imbalance.
func (s *Suite) CaseStudyPipeline() *report.Table {
	s.Prime(s.caseStudyPipelineJobs())

	t := report.NewTable("Case study — pipeline vs data parallelism: VGG-16, 256-image global batch, 4 GPUs on one shared x16 root complex",
		"mode", "iter (ms)", "img/s", "interconnect (MB)", "bubble", "imbalance", "peak pool/GPU (MB)")
	row := func(mode string, r *core.Result, traffic int64) {
		bubble := "-"
		if len(r.Stages) > 0 {
			bubble = fmt.Sprintf("%.0f%%", 100*r.BubbleFraction)
		}
		t.AddRow(mode, report.FmtMs(int64(r.IterTime)),
			fmt.Sprintf("%.0f", 256/r.IterTime.Seconds()),
			report.FmtMiB(traffic),
			bubble, fmt.Sprintf("%.2fx", r.DeviceImbalance()),
			report.FmtMiB(r.MaxUsage))
	}

	single := s.Run(s.pipelineNet(), core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal})
	row("1 GPU", single, 0)
	dp := s.Run(s.pipelineDPNet(), s.contentionCfg(core.VDNNAll, core.MemOptimal, 4))
	row("data-parallel 4x64", dp, dp.AllReduceBytes)
	for _, m := range pipelineMicroBatchCounts {
		r := s.Run(s.pipelineNet(), s.pipelineCfg(m))
		row(fmt.Sprintf("pipeline 4 stages, M=%d", m), r, r.InterStageBytes)
	}

	t.AddNote("data parallelism pays a per-step gradient all-reduce (528 MB of weights, 2(N-1)/N each way); the pipeline pays per-micro-batch activation hand-offs and an (S-1)/(M+S-1) fill/drain bubble")
	return t
}

package figures

import (
	"fmt"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// contentionDeviceCounts are the replica counts of the interconnect
// contention case study.
var contentionDeviceCounts = []int{1, 2, 4, 8}

// contentionCfg is one configuration of the study: the given policy/mode at
// the given replica count, every replica behind one shared gen3 x16 uplink —
// the worst-case topology the "Compressing DMA Engine" follow-up motivates.
func (s *Suite) contentionCfg(p core.Policy, a core.AlgoMode, devices int) core.Config {
	return core.Config{Spec: s.Spec, Policy: p, Algo: a,
		Devices: devices, Topology: pcie.SharedGen3Root()}
}

// caseStudyContentionJobs is the simulation set: vDNN-all(m) and
// baseline(p) on VGG-16 (64 per replica) at 1/2/4/8 replicas.
func (s *Suite) caseStudyContentionJobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	var js []sweep.Job
	for _, c := range contentionDeviceCounts {
		js = append(js, job(n, s.contentionCfg(core.VDNNAll, core.MemOptimal, c)),
			job(n, s.contentionCfg(core.Baseline, core.PerfOptimal, c)))
	}
	return js
}

// CaseStudyContention answers the scale question the paper's bandwidth
// sensitivity analysis (Section VI) leaves open: vDNN hides its offload and
// prefetch traffic behind compute when one GPU owns the PCIe link — does it
// still when 2-8 data-parallel replicas share a root complex and add
// gradient all-reduce traffic on top? Per-replica step time, contention
// stalls and overlap efficiency of vDNN-all(m) against the no-offload
// baseline, on a single shared x16 uplink.
func (s *Suite) CaseStudyContention() *report.Table {
	s.Prime(s.caseStudyContentionJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")

	t := report.NewTable("Case study — interconnect contention: VGG-16 (64/replica) on one shared x16 root complex",
		"GPUs", "vDNN step/replica (ms)", "vDNN stall (ms)", "vDNN overlap", "base step/replica (ms)", "vDNN img/s", "base img/s")
	for _, c := range contentionDeviceCounts {
		dyn := s.Run(n, s.contentionCfg(core.VDNNAll, core.MemOptimal, c))
		base := s.Run(n, s.contentionCfg(core.Baseline, core.PerfOptimal, c))
		dynStep, dynStall, dynOverlap := dyn.ReplicaMeans()
		baseStep, _, _ := base.ReplicaMeans()
		imgs := func(r *core.Result) string {
			return fmt.Sprintf("%.0f", float64(64*c)/r.IterTime.Seconds())
		}
		t.AddRow(fmt.Sprintf("%d", c),
			report.FmtMs(int64(dynStep)), report.FmtMs(int64(dynStall)), report.FmtPct(dynOverlap),
			report.FmtMs(int64(baseStep)), imgs(dyn), imgs(base))
	}
	t.AddNote("offload/prefetch traffic that hides behind compute on a dedicated link becomes exposed as replicas contend; the all-reduce rides the same wires")
	return t
}

package figures

import (
	"testing"

	"vdnn"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/sim"
)

// TestContentionMonotonicStepTime is the case study's acceptance criterion:
// under vDNN-all on the shared root complex, mean per-replica step time
// never improves as replicas are added — contention only costs.
func TestContentionMonotonicStepTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full contention study; skipped in -short mode")
	}
	s := NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(vdnn.WithParallelism(4)))
	s.Prime(s.caseStudyContentionJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	prev := sim.Time(0)
	for _, c := range contentionDeviceCounts {
		r := s.Run(n, s.contentionCfg(core.VDNNAll, core.MemOptimal, c))
		if !r.Trainable {
			t.Fatalf("%d replicas untrainable: %s", c, r.FailReason)
		}
		step, _, overlap := r.ReplicaMeans()
		if step < prev {
			t.Fatalf("per-replica step time improved from %v to %v at %d replicas", prev, step, c)
		}
		if overlap < 0 || overlap > 1 {
			t.Fatalf("overlap efficiency %v outside [0,1] at %d replicas", overlap, c)
		}
		prev = step
	}
}

// TestContentionTableShape pins the table layout the benchmarks read.
func TestContentionTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full contention study; skipped in -short mode")
	}
	s := NewSuite(gpu.TitanX())
	tab := s.CaseStudyContention()
	if len(tab.Rows) != len(contentionDeviceCounts) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(contentionDeviceCounts))
	}
}

// Package figures regenerates every table and figure of the paper's
// evaluation (Section V) from the simulator: Figures 1, 4, 5, 6, 11, 12,
// 13, 14 and 15 plus the Section V-D power study, and the ablations the
// paper discusses qualitatively (prefetch scheduling, page migration,
// interconnect and capacity what-ifs). Each function returns a report.Table
// whose rows mirror the corresponding figure's series; cmd/vdnn-repro prints
// them and the root-level benchmarks publish their headline values as
// benchmark metrics.
package figures

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vdnn"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/networks"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// Suite runs the evaluation on the public vdnn.Simulator: one result cache
// shared by every figure, ablation and case study — the same (network,
// config) pair is simulated exactly once across the whole evaluation — with
// simulations scheduled over the simulator's worker pool. Each experiment
// first enqueues its full configuration set as one batch (its jobs
// function), then formats rows from the cached results, so independent
// simulations of one table run concurrently. Simulations are deterministic,
// which makes every table byte-identical regardless of parallelism.
type Suite struct {
	Spec gpu.Spec

	sim *vdnn.Simulator

	mu      sync.Mutex
	nets    map[string]*dnn.Network
	timings map[string]time.Duration // wall clock of each experiment's last Gen
}

// NewSuite creates a Suite for the given device (use gpu.TitanX() for the
// paper's platform) running on all available cores.
func NewSuite(spec gpu.Spec) *Suite {
	return NewSuiteSim(spec, vdnn.NewSimulator())
}

// NewSuiteSim creates a Suite running on an existing simulator
// (vdnn.WithParallelism(1) yields the sequential reference). Sharing one
// simulator across suites bounds their combined parallelism; it does not
// share cached results between them, because the cache keys results by
// network identity and each suite memoizes its own network instances —
// reuse one Suite for warm-cache regeneration.
func NewSuiteSim(spec gpu.Spec, sim *vdnn.Simulator) *Suite {
	return &Suite{Spec: spec, sim: sim, nets: map[string]*dnn.Network{},
		timings: map[string]time.Duration{}}
}

// Simulator exposes the suite's simulator (for cache statistics).
func (s *Suite) Simulator() *vdnn.Simulator { return s.sim }

// Experiment is one table of the evaluation: its vdnn-repro name, the full
// simulation set it reads (enqueued as one concurrent batch), and the
// formatter that renders it. Jobs is a scheduling hint, not a correctness
// requirement — Gen simulates any configuration its jobs function missed —
// so tables are identical whether or not (and how parallel) they were
// primed.
type Experiment struct {
	Name string
	Jobs func() []sweep.Job
	Gen  func() *report.Table
}

// Experiments lists every experiment in the order vdnn-repro prints them.
// Each Gen records its wall clock in the suite (see Timings), so sweep-level
// speedups are attributable to the experiments that earned them.
func (s *Suite) Experiments() []Experiment {
	exps := []Experiment{
		{"fig1", s.fig1Jobs, s.Fig1},
		{"fig4", s.fig1Jobs, s.Fig4}, // same simulation set as Figure 1
		{"fig5", s.fig5Jobs, s.Fig5},
		{"fig6", s.fig6Jobs, s.Fig6},
		{"fig11", s.fig11Jobs, s.Fig11},
		{"fig12", s.fig12Jobs, s.Fig12},
		{"fig13", s.fig13Jobs, s.Fig13},
		{"fig14", s.fig14Jobs, s.Fig14},
		{"fig15", s.fig15Jobs, s.Fig15},
		{"power", s.powerJobs, s.Power},
		{"ablation-prefetch", s.ablationPrefetchJobs, s.AblationPrefetch},
		{"ablation-pagemig", s.ablationPageMigrationJobs, s.AblationPageMigration},
		{"ablation-link", s.ablationInterconnectJobs, s.AblationInterconnect},
		{"ablation-capacity", s.ablationCapacityJobs, s.AblationCapacity},
		{"ablation-weights", s.ablationWeightOffloadJobs, s.AblationWeightOffload},
		{"ablation-batch", s.ablationBatchScalingJobs, s.AblationBatchScaling},
		{"case-multigpu", s.caseStudyMultiGPUJobs, s.CaseStudyMultiGPU},
		{"case-contention", s.caseStudyContentionJobs, s.CaseStudyContention},
		{"case-pipeline", s.caseStudyPipelineJobs, s.CaseStudyPipeline},
		{"case-compression", s.caseStudyCompressionJobs, s.CaseStudyCompression},
		{"case-precision", s.caseStudyPrecisionJobs, s.CaseStudyPrecision},
		{"case-devices", s.caseStudyDevicesJobs, s.CaseStudyDevices},
		{"case-resnet", s.caseStudyResNetJobs, s.CaseStudyResNet},
		{"case-plan", s.caseStudyPlannerJobs, s.CaseStudyPlanner},
		{"case-energy", s.caseStudyEnergyJobs, s.CaseStudyEnergy},
	}
	for i := range exps {
		name, gen := exps[i].Name, exps[i].Gen
		exps[i].Gen = func() *report.Table {
			start := time.Now()
			t := gen()
			s.mu.Lock()
			s.timings[name] = time.Since(start)
			s.mu.Unlock()
			return t
		}
	}
	return exps
}

// Timings reports the wall clock of every experiment generated so far (its
// most recent Gen, including any simulations its priming triggered), in
// experiment order, with the suite total and the simulator's cache counters
// as a note. Timing lives in this separate table — never in the figure
// tables themselves — so figure output stays byte-identical across runs and
// parallelism levels.
func (s *Suite) Timings() *report.Table {
	s.mu.Lock()
	timings := make(map[string]time.Duration, len(s.timings))
	for k, v := range s.timings {
		timings[k] = v
	}
	s.mu.Unlock()
	t := report.NewTable("Wall clock per experiment", "experiment", "wall clock (ms)")
	var total time.Duration
	for _, e := range s.Experiments() {
		d, ok := timings[e.Name]
		if !ok {
			continue
		}
		total += d
		t.AddRow(e.Name, fmt.Sprintf("%.1f", float64(d.Microseconds())/1000))
	}
	st := s.sim.Stats()
	t.AddNote("total %.1f ms; %d simulations (%d structures, %d priced), %d cache hits",
		float64(total.Microseconds())/1000, st.Simulations, st.Structures, st.Priced, st.Hits)
	return t
}

// Prime schedules a batch of simulations across the simulator's workers so
// the subsequent formatting pass is all cache hits.
func (s *Suite) Prime(jobs []sweep.Job) {
	if _, err := s.sim.RunBatch(context.Background(), jobs); err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
}

// net returns a memoized network instance.
func (s *Suite) net(build func() *dnn.Network, key string) *dnn.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nets[key]
	if !ok {
		n = build()
		s.nets[key] = n
	}
	return n
}

func (s *Suite) conventional() []*dnn.Network {
	return []*dnn.Network{
		s.net(func() *dnn.Network { return networks.AlexNet(128) }, "alexnet128"),
		s.net(func() *dnn.Network { return networks.OverFeat(128) }, "overfeat128"),
		s.net(func() *dnn.Network { return networks.GoogLeNet(128) }, "googlenet128"),
		s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64"),
		s.net(func() *dnn.Network { return networks.VGG16(128) }, "vgg16-128"),
		s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256"),
	}
}

func (s *Suite) veryDeep() []*dnn.Network {
	return []*dnn.Network{
		s.net(func() *dnn.Network { return networks.VGGDeep(116, 32) }, "vgg116"),
		s.net(func() *dnn.Network { return networks.VGGDeep(216, 32) }, "vgg216"),
		s.net(func() *dnn.Network { return networks.VGGDeep(316, 32) }, "vgg316"),
		s.net(func() *dnn.Network { return networks.VGGDeep(416, 32) }, "vgg416"),
	}
}

func (s *Suite) all() []*dnn.Network { return append(s.conventional(), s.veryDeep()...) }

// Run simulates one configuration through the shared simulator cache.
func (s *Suite) Run(net *dnn.Network, cfg core.Config) *core.Result {
	r, err := s.sim.Run(context.Background(), net, cfg)
	if err != nil {
		panic(fmt.Sprintf("figures: %s %v: %v", net.Name, cfg.Policy, err))
	}
	return r
}

func (s *Suite) cfg(p core.Policy, a core.AlgoMode) core.Config {
	return core.Config{Spec: s.Spec, Policy: p, Algo: a}
}

// job pairs a network with a configuration for batch scheduling.
func job(n *dnn.Network, cfg core.Config) sweep.Job { return sweep.Job{Net: n, Cfg: cfg} }

// oracleBaseline is the paper's normalization target: the baseline with
// performance-optimal algorithms on a hypothetical GPU with enough memory.
func (s *Suite) oracleBaseline(net *dnn.Network) *core.Result {
	return s.Run(net, core.Config{Spec: s.Spec, Policy: core.Baseline, Algo: core.PerfOptimal, Oracle: true})
}

// fig1Jobs is the simulation set of Figures 1 and 4: the baseline on every
// studied network.
func (s *Suite) fig1Jobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range s.all() {
		js = append(js, job(n, s.cfg(core.Baseline, core.PerfOptimal)))
	}
	return js
}

// Fig1 reproduces Figure 1: the baseline's network-wide memory allocation
// for all ten studied DNNs and the maximum fraction of it any single layer's
// computation actually uses.
func (s *Suite) Fig1() *report.Table {
	s.Prime(s.fig1Jobs())
	t := report.NewTable("Figure 1 — baseline memory allocation and maximum layer-wise usage",
		"network", "allocation (MB)", "max layer-wise usage", "trainable on 12GB")
	for _, n := range s.all() {
		r := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		frac := float64(r.MaxWorkingSet) / float64(r.TotalMaxUsage())
		t.AddRow(n.Name, report.FmtMiB(r.TotalMaxUsage()), report.FmtPct(frac), yesNo(r.Trainable))
	}
	t.AddNote("paper: 6 of 10 DNNs (14-67 GB) exceed the 12 GB Titan X; 53-79%% of memory unused at any time")
	return t
}

// Fig4 reproduces Figure 4: baseline memory usage broken down by function,
// and the share held by feature maps.
func (s *Suite) Fig4() *report.Table {
	s.Prime(s.fig1Jobs())
	t := report.NewTable("Figure 4 — baseline memory breakdown by functionality (MB)",
		"network", "weights", "w-grads", "feature maps", "gradient maps", "workspace", "other", "feature maps %")
	for _, n := range s.all() {
		r := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		k := r.PeakByKind
		var total int64
		for _, v := range k {
			total += v
		}
		fmFrac := float64(k[kindFM]) / float64(total)
		t.AddRow(n.Name,
			report.FmtMiB(k[kindW]), report.FmtMiB(k[kindWG]), report.FmtMiB(k[kindFM]),
			report.FmtMiB(k[kindGM]), report.FmtMiB(k[kindWS]), report.FmtMiB(k[kindOther]),
			report.FmtPct(fmFrac))
	}
	t.AddNote("paper: feature maps' share grows monotonically with depth")
	return t
}

// Fig5 reproduces Figure 5: per-layer memory usage of VGG-16 (256) during
// forward propagation — feature maps + workspace on the left axis, weights
// on the right.
func (s *Suite) fig5Jobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	return []sweep.Job{job(n, core.Config{Spec: s.Spec, Policy: core.Baseline, Algo: core.PerfOptimal, Oracle: true})}
}

func (s *Suite) Fig5() *report.Table {
	s.Prime(s.fig5Jobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	r := s.Run(n, core.Config{Spec: s.Spec, Policy: core.Baseline, Algo: core.PerfOptimal, Oracle: true})
	t := report.NewTable("Figure 5 — VGG-16 (256) per-layer forward memory usage",
		"layer", "fm+ws (MB)", "weights (MB)")
	for _, ls := range r.Layers {
		if ls.Kind != dnn.Conv && ls.Kind != dnn.FC {
			continue
		}
		fmws := ls.XBytes + ls.YBytes + ls.FwdWSBytes
		t.AddRow(ls.Name, report.FmtMiB(fmws), report.FmtMiB(ls.WeightBytes))
	}
	t.AddNote("intermediate data dominate feature extraction; weights concentrate in the classifier")
	return t
}

// Fig6 reproduces Figure 6: VGG-16's per-layer forward/backward latency and
// the reuse distance of each layer's input feature maps (batch 64,
// memory-optimal algorithms, matching the >1200 ms first-layer reuse
// distance quoted in Section III-A).
func (s *Suite) fig6Jobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	return []sweep.Job{job(n, s.cfg(core.Baseline, core.MemOptimal))}
}

func (s *Suite) Fig6() *report.Table {
	s.Prime(s.fig6Jobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	r := s.Run(n, s.cfg(core.Baseline, core.MemOptimal))
	t := report.NewTable("Figure 6 — VGG-16 (64) per-layer latency and reuse distance",
		"layer", "fwd (ms)", "bwd (ms)", "reuse distance (ms)")
	for _, ls := range r.Layers {
		if ls.Kind != dnn.Conv && ls.Kind != dnn.FC {
			continue
		}
		t.AddRow(ls.Name, report.FmtMs(int64(ls.FwdTime)), report.FmtMs(int64(ls.BwdTime)),
			report.FmtMs(int64(ls.ReuseDistance)))
	}
	t.AddNote("paper: first-layer reuse distance > 1200 ms for VGG-16 (64), > 60 ms for AlexNet")
	return t
}

// policyCell formats "max/avg" with the paper's asterisk for untrainable
// configurations.
func policyCell(r *core.Result) string {
	star := ""
	if !r.Trainable {
		star = "*"
	}
	return fmt.Sprintf("%s/%s%s", report.FmtMiB(r.MaxUsage), report.FmtMiB(r.AvgUsage), star)
}

// Fig11 reproduces Figure 11: maximum/average GPU memory usage of the vDNN
// policies and the baseline, (m) and (p) algorithm modes, across the six
// conventional networks. Asterisks mark configurations that cannot train.
// fig11Jobs is the full policy/mode cross product over the conventional
// networks (also the simulation set of the power study).
func (s *Suite) fig11Jobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range s.conventional() {
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.VDNNAll, core.MemOptimal}, {core.VDNNAll, core.PerfOptimal},
			{core.VDNNConv, core.MemOptimal}, {core.VDNNConv, core.PerfOptimal},
			{core.VDNNDyn, 0},
			{core.Baseline, core.MemOptimal}, {core.Baseline, core.PerfOptimal},
		} {
			js = append(js, job(n, s.cfg(pa.p, pa.a)))
		}
	}
	return js
}

func (s *Suite) Fig11() *report.Table {
	s.Prime(s.fig11Jobs())
	t := report.NewTable("Figure 11 — GPU memory usage, max/avg MB (* = cannot train)",
		"network", "all(m)", "all(p)", "conv(m)", "conv(p)", "dyn", "base(m)", "base(p)", "savings(avg)")
	for _, n := range s.conventional() {
		allM := s.Run(n, s.cfg(core.VDNNAll, core.MemOptimal))
		allP := s.Run(n, s.cfg(core.VDNNAll, core.PerfOptimal))
		convM := s.Run(n, s.cfg(core.VDNNConv, core.MemOptimal))
		convP := s.Run(n, s.cfg(core.VDNNConv, core.PerfOptimal))
		dyn := s.Run(n, s.cfg(core.VDNNDyn, 0))
		baseM := s.Run(n, s.cfg(core.Baseline, core.MemOptimal))
		baseP := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		base := baseM
		if baseP.Trainable || !baseM.Trainable {
			base = baseP
		}
		savings := 1 - float64(allM.AvgUsage)/float64(base.AvgUsage)
		t.AddRow(n.Name, policyCell(allM), policyCell(allP), policyCell(convM), policyCell(convP),
			policyCell(dyn), policyCell(baseM), policyCell(baseP), report.FmtPct(savings))
	}
	t.AddNote("paper: vDNN-all(m) cuts average usage 73-98%%; baseline cannot train VGG-16 (256)")
	return t
}

// Fig12 reproduces Figure 12: the per-iteration offload traffic (equals the
// pinned host allocation) under vDNN-all and vDNN-conv.
func (s *Suite) fig12Jobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range s.conventional() {
		js = append(js, job(n, s.cfg(core.VDNNAll, core.MemOptimal)),
			job(n, s.cfg(core.VDNNConv, core.MemOptimal)))
	}
	return js
}

func (s *Suite) Fig12() *report.Table {
	s.Prime(s.fig12Jobs())
	t := report.NewTable("Figure 12 — offloaded memory per iteration (MB)",
		"network", "vDNN-all", "vDNN-conv")
	for _, n := range s.conventional() {
		all := s.Run(n, s.cfg(core.VDNNAll, core.MemOptimal))
		conv := s.Run(n, s.cfg(core.VDNNConv, core.MemOptimal))
		t.AddRow(n.Name, report.FmtMiB(all.OffloadBytes), report.FmtMiB(conv.OffloadBytes))
	}
	t.AddNote("paper: up to ~15-16 GB offloaded for VGG-16 (256)")
	return t
}

// Fig13 reproduces Figure 13: the maximum DRAM bandwidth utilization of each
// VGG-16 CONV layer's forward and backward kernels under the baseline.
func (s *Suite) fig13Jobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(128) }, "vgg16-128")
	return []sweep.Job{job(n, s.cfg(core.Baseline, core.MemOptimal))}
}

func (s *Suite) Fig13() *report.Table {
	s.Prime(s.fig13Jobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(128) }, "vgg16-128")
	r := s.Run(n, s.cfg(core.Baseline, core.MemOptimal))
	t := report.NewTable("Figure 13 — VGG-16 (128) max DRAM bandwidth utilization (GB/s)",
		"layer", "fwd", "bwd", "of peak")
	peak := s.Spec.DRAMBps / 1e9
	var maxBW float64
	for _, ls := range r.Layers {
		if ls.Kind != dnn.Conv && ls.Kind != dnn.FC {
			continue
		}
		f, b := ls.FwdBW/1e9, ls.BwdBW/1e9
		if f > maxBW {
			maxBW = f
		}
		if b > maxBW {
			maxBW = b
		}
		t.AddRow(ls.Name, fmt.Sprintf("%.0f", f), fmt.Sprintf("%.0f", b),
			report.FmtPct(maxFloat(f, b)/peak))
	}
	t.AddNote("peak %.0f GB/s; headroom for the <= 16 GB/s PCIe traffic everywhere (worst case %.0f%%)",
		peak, maxBW/peak*100)
	return t
}

// Fig14 reproduces Figure 14: performance normalized to the (oracular)
// baseline for every policy and algorithm mode.
// fig14Jobs lists, per conventional network, the oracle and real run of
// every policy/mode pair; the baseline(p) oracle doubles as the
// normalization target.
func (s *Suite) fig14Jobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range s.conventional() {
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.VDNNAll, core.MemOptimal}, {core.VDNNAll, core.PerfOptimal},
			{core.VDNNConv, core.MemOptimal}, {core.VDNNConv, core.PerfOptimal},
			{core.Baseline, core.MemOptimal}, {core.Baseline, core.PerfOptimal},
		} {
			js = append(js, job(n, core.Config{Spec: s.Spec, Policy: pa.p, Algo: pa.a, Oracle: true}),
				job(n, s.cfg(pa.p, pa.a)))
		}
		js = append(js, job(n, s.cfg(core.VDNNDyn, 0)))
	}
	return js
}

func (s *Suite) Fig14() *report.Table {
	s.Prime(s.fig14Jobs())
	t := report.NewTable("Figure 14 — performance normalized to baseline (feature extraction)",
		"network", "all(m)", "all(p)", "conv(m)", "conv(p)", "dyn", "base(m)", "base(p)")
	for _, n := range s.conventional() {
		oracle := s.oracleBaseline(n)
		norm := func(p core.Policy, a core.AlgoMode) string {
			r := s.Run(n, core.Config{Spec: s.Spec, Policy: p, Algo: a, Oracle: true})
			v := float64(oracle.FETime) / float64(r.FETime)
			real := s.Run(n, s.cfg(p, a))
			star := ""
			if !real.Trainable {
				star = "*"
			}
			return fmt.Sprintf("%.2f%s", v, star)
		}
		dyn := s.Run(n, s.cfg(core.VDNNDyn, 0))
		t.AddRow(n.Name,
			norm(core.VDNNAll, core.MemOptimal), norm(core.VDNNAll, core.PerfOptimal),
			norm(core.VDNNConv, core.MemOptimal), norm(core.VDNNConv, core.PerfOptimal),
			fmt.Sprintf("%.2f", float64(oracle.FETime)/float64(dyn.FETime)),
			norm(core.Baseline, core.MemOptimal), norm(core.Baseline, core.PerfOptimal))
	}
	t.AddNote("paper: static (m) policies lose ~55-58%%; vDNN-dyn averages ~97%% of baseline (82%% worst case)")
	return t
}

// Fig15 reproduces Figure 15: GPU- and CPU-side memory of vDNN-dyn against
// the baseline's (infeasible) requirement for the very deep networks.
func (s *Suite) fig15Jobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range s.veryDeep() {
		js = append(js, job(n, s.cfg(core.VDNNDyn, 0)),
			job(n, s.cfg(core.Baseline, core.PerfOptimal)),
			job(n, core.Config{Spec: s.Spec, Policy: core.Baseline, Algo: core.PerfOptimal, Oracle: true}))
	}
	return js
}

func (s *Suite) Fig15() *report.Table {
	s.Prime(s.fig15Jobs())
	t := report.NewTable("Figure 15 — very deep networks (batch 32): memory placement (MB)",
		"network", "dyn GPU-side", "dyn CPU-side", "CPU share", "base requirement", "dyn perf vs oracle")
	for _, n := range s.veryDeep() {
		dyn := s.Run(n, s.cfg(core.VDNNDyn, 0))
		base := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		oracle := s.oracleBaseline(n)
		cpuShare := float64(dyn.HostPinnedPeak) / float64(dyn.HostPinnedPeak+dyn.MaxUsage)
		t.AddRow(n.Name,
			report.FmtMiB(dyn.MaxUsage), report.FmtMiB(dyn.HostPinnedPeak), report.FmtPct(cpuShare),
			report.FmtMiB(base.TotalMaxUsage()),
			fmt.Sprintf("%.2f", float64(oracle.FETime)/float64(dyn.FETime)))
	}
	t.AddNote("paper: baseline grows 14x to 67.1 GB; vDNN keeps 81-92%% of allocations in host memory")
	return t
}

// Power reproduces the Section V-D study: average and maximum board power of
// vDNN-dyn against the baseline. VGG-16 (256) is excluded as in the paper
// (the baseline cannot run it at all).
func (s *Suite) powerJobs() []sweep.Job {
	var js []sweep.Job
	for _, n := range s.conventional() {
		js = append(js, job(n, s.cfg(core.Baseline, core.PerfOptimal)),
			job(n, s.cfg(core.Baseline, core.MemOptimal)),
			job(n, s.cfg(core.VDNNDyn, 0)))
	}
	return js
}

func (s *Suite) Power() *report.Table {
	s.Prime(s.powerJobs())
	t := report.NewTable("Section V-D — GPU power, vDNN-dyn vs baseline (W)",
		"network", "base avg", "dyn avg", "base max", "dyn max", "max overhead")
	for _, n := range s.conventional() {
		base := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		if !base.Trainable {
			base = s.Run(n, s.cfg(core.Baseline, core.MemOptimal))
		}
		if !base.Trainable {
			continue // VGG-16 (256): no baseline to compare against
		}
		dyn := s.Run(n, s.cfg(core.VDNNDyn, 0))
		over := dyn.Power.MaxW/base.Power.MaxW - 1
		t.AddRow(n.Name,
			fmt.Sprintf("%.0f", base.Power.AvgW), fmt.Sprintf("%.0f", dyn.Power.AvgW),
			fmt.Sprintf("%.0f", base.Power.MaxW), fmt.Sprintf("%.0f", dyn.Power.MaxW),
			report.FmtPct(over))
	}
	t.AddNote("paper: 1-7%% maximum power overhead, negligible average change")
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Short aliases for the allocation categories of Figure 4.
const (
	kindW     = memalloc.KindWeights
	kindWG    = memalloc.KindWeightGrad
	kindFM    = memalloc.KindFeatureMap
	kindGM    = memalloc.KindGradMap
	kindWS    = memalloc.KindWorkspace
	kindOther = memalloc.KindOther
)

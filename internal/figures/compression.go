package figures

import (
	"fmt"

	"vdnn/internal/compress"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/networks"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// compressionBatches are the VGG-16 batch sizes of the compressed-DMA case
// study (the paper's conventional-network sweep points).
var compressionBatches = []int{64, 128, 256}

// compressionCodecs are the codec points of the study, in column order.
var compressionCodecs = []compress.Codec{compress.CodecNone, compress.CodecZVC, compress.CodecRLE}

// compressionCfg is one configuration of the study: vDNN-all(m) — the
// maximum-offload policy, where the interconnect hurts most — under the
// given codec with the default cdma sparsity profile.
func (s *Suite) compressionCfg(codec compress.Codec) core.Config {
	return core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal,
		Compression: compress.Config{Codec: codec}}
}

func (s *Suite) compressionNet(batch int) *dnn.Network {
	key := fmt.Sprintf("vgg16-%d", batch)
	return s.net(func() *dnn.Network { return networks.VGG16(batch) }, key)
}

// caseStudyCompressionJobs is the simulation set: VGG-16 at each batch size
// under every codec.
func (s *Suite) caseStudyCompressionJobs() []sweep.Job {
	var js []sweep.Job
	for _, b := range compressionBatches {
		n := s.compressionNet(b)
		for _, c := range compressionCodecs {
			js = append(js, job(n, s.compressionCfg(c)))
		}
	}
	return js
}

// CaseStudyCompression reproduces the headline claim of the cDMA follow-up
// paper ("Compressing DMA Engine", Rhu et al.) inside this simulator: vDNN's
// offload traffic is mostly ReLU output, so a sparsity-aware codec in the
// DMA engines shrinks the PCIe traffic substantially — and because the codec
// never expands a buffer, enabling it never increases offload bytes (the
// invariant TestCompressionNeverIncreasesOffload pins).
func (s *Suite) CaseStudyCompression() *report.Table {
	s.Prime(s.caseStudyCompressionJobs())
	t := report.NewTable("Case study — compressing DMA engine: VGG-16, vDNN-all(m), cdma sparsity profile",
		"batch", "codec", "offload raw (MB)", "offload wire (MB)", "ratio", "codec busy (ms)", "FE (ms)", "vs uncompressed")
	for _, b := range compressionBatches {
		n := s.compressionNet(b)
		base := s.Run(n, s.compressionCfg(compress.CodecNone))
		for _, c := range compressionCodecs {
			r := s.Run(n, s.compressionCfg(c))
			t.AddRow(fmt.Sprintf("%d", b), c.String(),
				report.FmtMiB(r.OffloadRawBytes), report.FmtMiB(r.OffloadBytes),
				fmt.Sprintf("%.2fx", r.CompressionRatio),
				report.FmtMs(int64(r.CompressTime+r.DecompressTime)),
				report.FmtMs(int64(r.FETime)),
				fmt.Sprintf("%.2fx", float64(base.FETime)/float64(r.FETime)))
		}
	}
	t.AddNote("cDMA paper: ReLU sparsity averages 45-90%%; ZVC shrinks offload traffic 2-4x and recovers performance lost to offload-bound layers")
	return t
}

package figures

import (
	"context"
	"testing"

	"vdnn/internal/gpu"
)

// TestPlannerCaseStudyAcceptance pins the planner case study's claims: the
// search on VGG-16 (256) under a 16 GB cap prunes at least half of the full
// candidate space without paying for a simulation, and the configuration it
// picks trains under the cap at a step time no worse than any of the
// hand-tuned alternatives it is compared against.
func TestPlannerCaseStudyAcceptance(t *testing.T) {
	s := NewSuite(gpu.TitanX())
	s.Prime(s.caseStudyPlannerJobs())

	p, err := s.sim.Plan(context.Background(), s.plannerRequest())
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if !p.Feasible || p.Best == nil || p.Result == nil {
		t.Fatalf("expected a feasible plan, got %+v", p)
	}
	if !p.Result.Trainable {
		t.Fatalf("winner untrainable: %s", p.Result.FailReason)
	}
	if peak := p.Result.TotalMaxUsage(); peak > plannerMemCap {
		t.Fatalf("winner peak %d exceeds the %d cap", peak, plannerMemCap)
	}

	c := p.Counters
	if frac := float64(c.Pruned) / float64(c.Space); frac < 0.5 {
		t.Errorf("pruned only %.0f%% of the %d-candidate space (counters %+v); the case study claims >= 50%%",
			100*frac, c.Space, c)
	}

	for _, h := range s.plannerHandTuned() {
		r := s.Run(h.net, h.cfg)
		if r.Trainable && p.Result.IterTime > r.IterTime {
			t.Errorf("%s (%v) beats the planner's pick (%v)", h.name, r.IterTime, p.Result.IterTime)
		}
	}
}

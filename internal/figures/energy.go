package figures

import (
	"context"
	"fmt"

	"vdnn"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// The energy case study: the same workload and offload policy priced on
// three points of the accelerator catalog — the paper's Titan X (GDDR5
// behind PCIe gen3), a Pascal-P100-class part (HBM2 behind NVLink) and a
// RAPIDNN-style near-memory accelerator whose offload traffic rides an
// on-die fabric — with the per-op joule breakdown the power model now
// accounts. The footnote documents the planner-objective flip: on the
// planner case study's fleet, minimizing step time and minimizing energy
// pick different winners.

// energyBackends lists the catalog points of the study in row order.
func (s *Suite) energyBackends() []struct {
	label string
	spec  gpu.Spec
} {
	return []struct {
		label string
		spec  gpu.Spec
	}{
		{"Titan X (GDDR5 + PCIe gen3)", gpu.TitanX()},
		{"P100 (HBM2 + NVLink)", gpu.PascalP100()},
		{"RAPIDNN near-memory (on-die)", gpu.RapidNN()},
	}
}

// energyPlanRequest returns the planner case study's problem under the
// given objective, so the flip is measured on an already-documented fleet.
func (s *Suite) energyPlanRequest(o vdnn.PlanObjective) vdnn.PlanRequest {
	req := s.plannerRequest()
	req.Objective = o
	return req
}

func (s *Suite) caseStudyEnergyJobs() []sweep.Job {
	// Both searches run through the shared cache (see caseStudyPlannerJobs);
	// the energy-objective search evaluates the same candidate set, so only
	// the argmin differs.
	for _, o := range []vdnn.PlanObjective{vdnn.MinimizeTime, vdnn.MinimizeEnergy} {
		if _, err := s.sim.Plan(context.Background(), s.energyPlanRequest(o)); err != nil {
			panic(fmt.Sprintf("figures: energy planner: %v", err))
		}
	}
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	var js []sweep.Job
	for _, b := range s.energyBackends() {
		js = append(js, job(n, core.Config{Spec: b.spec, Policy: core.VDNNAll, Algo: core.MemOptimal}))
	}
	return js
}

// CaseStudyEnergy renders VGG-16 (64) under vDNN-all(m) on each backend:
// step time, average power and the energy-per-iteration breakdown. The
// breakdown sums to the power-timeline integral by construction (the
// conservation invariant tested in internal/core and on every experiment of
// this suite).
func (s *Suite) CaseStudyEnergy() *report.Table {
	s.Prime(s.caseStudyEnergyJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")

	t := report.NewTable("Case study — energy per iteration across accelerator backends (VGG-16 (64), vDNN-all(m))",
		"backend", "mem", "iter (ms)", "avg W", "J/iter", "compute J", "dma J", "idle J", "dma share")
	for _, b := range s.energyBackends() {
		r := s.Run(n, core.Config{Spec: b.spec, Policy: core.VDNNAll, Algo: core.MemOptimal})
		e := r.Energy
		t.AddRow(b.label, b.spec.MemKind.String(),
			report.FmtMs(int64(r.IterTime)), fmt.Sprintf("%.0f", r.Power.AvgW),
			fmt.Sprintf("%.1f", e.TotalJ()),
			fmt.Sprintf("%.1f", e.ComputeJ), fmt.Sprintf("%.2f", e.DMAJ),
			fmt.Sprintf("%.1f", e.IdleJ), report.FmtPct(e.DMAJ/e.TotalJ()))
	}

	timePlan, err := s.sim.Plan(context.Background(), s.energyPlanRequest(vdnn.MinimizeTime))
	if err != nil {
		panic(fmt.Sprintf("figures: energy planner: %v", err))
	}
	energyPlan, err := s.sim.Plan(context.Background(), s.energyPlanRequest(vdnn.MinimizeEnergy))
	if err != nil {
		panic(fmt.Sprintf("figures: energy planner: %v", err))
	}
	t.AddNote("planner objective flip (VGG-16 (256), <=4 GPUs, 16 GB cap, shared gen3 root): "+
		"minimize time picks %s %s (%.0f ms, %.0f J); minimize energy picks %s %s (%.0f ms, %.0f J)",
		timePlan.Best.Mode(), timePlan.Best.PolicyLabel(),
		timePlan.Result.IterTime.Msec(), timePlan.Result.Energy.TotalJ(),
		energyPlan.Best.Mode(), energyPlan.Best.PolicyLabel(),
		energyPlan.Result.IterTime.Msec(), energyPlan.Result.Energy.TotalJ())
	return t
}

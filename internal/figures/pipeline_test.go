package figures

import (
	"testing"

	"vdnn/internal/core"
	"vdnn/internal/gpu"
)

// TestPipelineCaseStudyInvariants pins the physics of the pipeline-vs-data-
// parallel study: both multi-GPU modes beat the single device on the
// 256-image batch, each pays its own interconnect bill (all-reduce vs
// inter-stage hand-offs, never both), and more micro-batches never enlarge
// the pipeline bubble.
func TestPipelineCaseStudyInvariants(t *testing.T) {
	s := NewSuite(gpu.TitanX())
	s.Prime(s.caseStudyPipelineJobs())

	single := s.Run(s.pipelineNet(), core.Config{Spec: s.Spec, Policy: core.VDNNAll, Algo: core.MemOptimal})
	dp := s.Run(s.pipelineDPNet(), s.contentionCfg(core.VDNNAll, core.MemOptimal, 4))

	if dp.AllReduceBytes == 0 || dp.InterStageBytes != 0 {
		t.Fatalf("data-parallel traffic: all-reduce %d, inter-stage %d", dp.AllReduceBytes, dp.InterStageBytes)
	}

	prevBubble := 1.0
	for _, m := range pipelineMicroBatchCounts {
		r := s.Run(s.pipelineNet(), s.pipelineCfg(m))
		if !r.Trainable {
			t.Fatalf("pipeline M=%d untrainable: %s", m, r.FailReason)
		}
		if r.AllReduceBytes != 0 || r.InterStageBytes == 0 {
			t.Fatalf("pipeline M=%d traffic: all-reduce %d, inter-stage %d", m, r.AllReduceBytes, r.InterStageBytes)
		}
		if r.IterTime >= single.IterTime {
			t.Errorf("pipeline M=%d (%v) does not beat the single GPU (%v)", m, r.IterTime, single.IterTime)
		}
		if r.BubbleFraction > prevBubble {
			t.Errorf("bubble fraction grew with micro-batches: M=%d at %.3f > %.3f", m, r.BubbleFraction, prevBubble)
		}
		prevBubble = r.BubbleFraction
	}
}

package figures

import (
	"context"
	"math"
	"strings"
	"testing"

	"vdnn"
	"vdnn/internal/gpu"
	"vdnn/internal/sim"
)

// conserved reports the relative error between the per-op joule breakdown
// and the power-timeline integral over the measurement window.
func conserved(e gpu.EnergyStats, avgW float64, window sim.Time) float64 {
	want := avgW * float64(window) / float64(sim.Second)
	if want == 0 {
		return math.Abs(e.TotalJ())
	}
	return math.Abs(e.TotalJ()-want) / want
}

// TestEnergyConservedOnEveryExperiment is the acceptance criterion of the
// energy model: on every simulation of every figures experiment, the
// compute/DMA/codec/idle joule breakdown sums to the MeasurePower timeline
// integral within 1e-9 relative tolerance. Multi-device results are checked
// per device row (the Result-level Energy is the whole-fleet sum, while
// Power keeps a single device's view).
func TestEnergyConservedOnEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite; skipped in -short mode")
	}
	const tol = 1e-9
	for _, e := range suite.Experiments() {
		res, err := suite.Simulator().RunBatch(context.Background(), e.Jobs())
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for i, r := range res {
			if r == nil {
				continue
			}
			if len(r.Devices) > 0 {
				var sum gpu.EnergyStats
				for _, d := range r.Devices {
					if rel := conserved(d.Energy, d.Power.AvgW, r.IterTime); rel > tol {
						t.Errorf("%s job %d: device %d energy off by %.3g relative", e.Name, i, d.Device, rel)
					}
					sum = sum.Add(d.Energy)
				}
				if sum != r.Energy {
					t.Errorf("%s job %d: Result.Energy %+v != device sum %+v", e.Name, i, r.Energy, sum)
				}
			} else if rel := conserved(r.Energy, r.Power.AvgW, r.IterTime); rel > tol {
				t.Errorf("%s job %d: energy off by %.3g relative", e.Name, i, rel)
			}
		}
	}
}

// TestCaseStudyEnergyShape checks the backend comparison table and the
// physics it exists to show: the near-memory accelerator's DMA energy share
// undercuts the PCIe-attached parts'.
func TestCaseStudyEnergyShape(t *testing.T) {
	tb := suite.CaseStudyEnergy()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 backends", len(tb.Rows))
	}
	share := func(row int) string { return tb.Rows[row][len(tb.Rows[row])-1] }
	if share(2) >= share(0) { // formatted percentages compare lexically at equal width
		t.Errorf("RAPIDNN dma share %s should undercut Titan X %s", share(2), share(0))
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "minimize energy picks") {
		t.Errorf("note should document the planner objective flip: %q", tb.Notes)
	}
}

// TestPlannerObjectiveFlip pins the documented case study in which the two
// objectives disagree: VGG-16 at a 256-image global batch on up to four
// 16 GB devices behind a shared gen3 root. Minimizing step time picks a
// data-parallel fleet; minimizing energy picks a single vDNN device (the
// fleet pays N idle floors plus all-reduce traffic).
func TestPlannerObjectiveFlip(t *testing.T) {
	timePlan, err := suite.Simulator().Plan(context.Background(), suite.energyPlanRequest(vdnn.MinimizeTime))
	if err != nil {
		t.Fatal(err)
	}
	energyPlan, err := suite.Simulator().Plan(context.Background(), suite.energyPlanRequest(vdnn.MinimizeEnergy))
	if err != nil {
		t.Fatal(err)
	}
	tBest, eBest := *timePlan.Best, *energyPlan.Best
	if tBest == eBest {
		t.Fatalf("objectives agree on %+v; the case study should flip", tBest)
	}
	if tBest.Devices <= 1 {
		t.Errorf("time objective picked %d devices, expected a data-parallel fleet", tBest.Devices)
	}
	if eBest.Devices != 1 || eBest.Stages > 1 {
		t.Errorf("energy objective picked %d devices x %d stages, expected a single device", eBest.Devices, eBest.Stages)
	}
	// The winners dominate each other on their own metrics.
	if timePlan.Result.IterTime >= energyPlan.Result.IterTime {
		t.Errorf("time winner is slower: %.1f ms vs %.1f ms",
			timePlan.Result.IterTime.Msec(), energyPlan.Result.IterTime.Msec())
	}
	if energyPlan.Result.Energy.TotalJ() >= timePlan.Result.Energy.TotalJ() {
		t.Errorf("energy winner burns more: %.1f J vs %.1f J",
			energyPlan.Result.Energy.TotalJ(), timePlan.Result.Energy.TotalJ())
	}
	if timePlan.Objective != vdnn.MinimizeTime || energyPlan.Objective != vdnn.MinimizeEnergy {
		t.Errorf("plans record objectives %v / %v", timePlan.Objective, energyPlan.Objective)
	}
}

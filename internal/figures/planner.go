package figures

import (
	"context"
	"fmt"

	"vdnn"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
)

// The auto-parallelism case study: hand the planner the problem the
// data-parallelism and pipeline case studies solved by hand — VGG-16's
// 256-image global batch on up to four 16 GB GPUs behind one shared gen3
// x16 root complex — and compare its pick against the hand-tuned
// configurations, with the search's own bill (evaluated vs pruned) in the
// footnote.

// plannerMemCap is the per-device memory cap of the study.
const plannerMemCap int64 = 16 << 30

// plannerSpec is the fleet device: the suite's GPU with 16 GB on board.
func (s *Suite) plannerSpec() gpu.Spec { return s.Spec.WithMemory(plannerMemCap) }

// plannerRequest is the planning problem handed to the search.
func (s *Suite) plannerRequest() vdnn.PlanRequest {
	return vdnn.PlanRequest{
		Network:     "vgg16",
		Batch:       256,
		Spec:        s.Spec,
		MemCapBytes: plannerMemCap,
		MaxDevices:  4,
		Topology:    pcie.SharedGen3Root(),
	}
}

// plannerHandTuned are the configurations a practitioner would reach for
// without the planner: the single-GPU vDNN reference and the hand-tuned
// data-parallel and pipeline splits of the earlier case studies, all on the
// same capped fleet.
func (s *Suite) plannerHandTuned() []struct {
	name string
	net  *dnn.Network
	cfg  core.Config
} {
	spec := s.plannerSpec()
	n256 := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	n64 := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	return []struct {
		name string
		net  *dnn.Network
		cfg  core.Config
	}{
		{"hand-tuned: 1 GPU vDNN-all(m)", n256,
			core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal}},
		{"hand-tuned: data-parallel 4x64 vDNN-all(m)", n64,
			core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal,
				Devices: 4, Topology: pcie.SharedGen3Root()}},
		{"hand-tuned: pipeline 4 stages M=16 vDNN-all(m)", n256,
			core.Config{Spec: spec, Policy: core.VDNNAll, Algo: core.MemOptimal,
				Stages: 4, MicroBatches: 16, Topology: pcie.SharedGen3Root()}},
	}
}

func (s *Suite) caseStudyPlannerJobs() []sweep.Job {
	// The search's evaluation set cannot be enumerated statically without
	// re-implementing its pruning, but the search is deterministic and runs
	// through the suite's shared cache: running it here makes the priming
	// pass cover everything CaseStudyPlanner reads, so its own search is
	// answered entirely from cache.
	if _, err := s.sim.Plan(context.Background(), s.plannerRequest()); err != nil {
		panic(fmt.Sprintf("figures: planner: %v", err))
	}
	var js []sweep.Job
	for _, h := range s.plannerHandTuned() {
		js = append(js, job(h.net, h.cfg))
	}
	return js
}

// CaseStudyPlanner runs the design-space search and renders its pick next
// to the hand-tuned alternatives: same workload, same fleet, and the step
// time each one actually delivers under the cap.
func (s *Suite) CaseStudyPlanner() *report.Table {
	s.Prime(s.caseStudyPlannerJobs())
	p, err := s.sim.Plan(context.Background(), s.plannerRequest())
	if err != nil {
		panic(fmt.Sprintf("figures: planner: %v", err))
	}

	t := report.NewTable("Case study — auto-parallelism planner: VGG-16, 256-image global batch, <=4 GPUs, 16 GB cap",
		"setup", "iter (ms)", "img/s", "peak/GPU (MB)", "vs planner")
	row := func(name string, r *core.Result, ratio float64) {
		t.AddRow(name, report.FmtMs(int64(r.IterTime)),
			fmt.Sprintf("%.0f", 256/r.IterTime.Seconds()),
			report.FmtMiB(r.TotalMaxUsage()),
			fmt.Sprintf("%.2fx", ratio))
	}

	best, res := p.Best, p.Result
	row(fmt.Sprintf("planner pick: %s %s codec %s", best.Mode(), best.PolicyLabel(), best.CodecLabel()),
		res, 1)
	for _, h := range s.plannerHandTuned() {
		r := s.Run(h.net, h.cfg)
		row(h.name, r, float64(r.IterTime)/float64(res.IterTime))
	}

	c := p.Counters
	t.AddNote("the search covered a %d-candidate space with %d simulations (%d refined); %d candidates (%.0f%%) were pruned by monotonicity/domination without being evaluated",
		c.Space, c.Evaluated, c.Refined, c.Pruned, 100*float64(c.Pruned)/float64(c.Space))
	return t
}

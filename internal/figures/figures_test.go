package figures

import (
	"fmt"
	"strings"
	"testing"

	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
)

// One shared suite: figure generation is expensive enough to memoize across
// tests.
var suite = NewSuite(gpu.TitanX())

func TestFig1(t *testing.T) {
	tb := suite.Fig1()
	if len(tb.Rows) != 10 {
		t.Fatalf("Fig1 rows = %d, want 10 studied DNNs", len(tb.Rows))
	}
	no := 0
	for _, r := range tb.Rows {
		if r[3] == "no" {
			no++
		}
	}
	if no != 6 {
		t.Fatalf("Fig1: %d untrainable networks, paper says 6 of 10", no)
	}
}

func TestFig4FeatureMapShareGrows(t *testing.T) {
	tb := suite.Fig4()
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Feature-map share: VGG-416 (last row) must exceed AlexNet (first row).
	fa, fv := parsePct(t, tb.Rows[0][7]), parsePct(t, tb.Rows[9][7])
	if fv <= fa {
		t.Fatalf("feature-map share should grow with depth: %d%% -> %d%%", fa, fv)
	}
}

func parsePct(t *testing.T, s string) int {
	t.Helper()
	var v int
	if _, err := fmt.Sscanf(strings.TrimSuffix(s, "%"), "%d", &v); err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestFig5(t *testing.T) {
	tb := suite.Fig5()
	// 13 CONV + 3 FC rows.
	if len(tb.Rows) != 16 {
		t.Fatalf("Fig5 rows = %d, want 16", len(tb.Rows))
	}
	// First conv row must dwarf its weights (paper: order of magnitude).
	if tb.Rows[0][1] <= tb.Rows[0][2] {
		t.Fatalf("conv1_1 fm+ws (%s MB) should exceed weights (%s MB)", tb.Rows[0][1], tb.Rows[0][2])
	}
}

func TestFig6(t *testing.T) {
	tb := suite.Fig6()
	if len(tb.Rows) != 16 {
		t.Fatalf("Fig6 rows = %d, want 16", len(tb.Rows))
	}
}

func TestFig11(t *testing.T) {
	tb := suite.Fig11()
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig11 rows = %d, want 6", len(tb.Rows))
	}
	// VGG-16 (256): base cells starred, all(m) not.
	last := tb.Rows[5]
	if !strings.HasSuffix(last[6], "*") || !strings.HasSuffix(last[7], "*") {
		t.Fatalf("VGG-16(256) baseline cells not starred: %v", last)
	}
	if strings.HasSuffix(last[1], "*") {
		t.Fatalf("VGG-16(256) all(m) should train: %v", last)
	}
}

func TestFig12(t *testing.T) {
	tb := suite.Fig12()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig13(t *testing.T) {
	tb := suite.Fig13()
	if len(tb.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 (13 CONV + 3 FC)", len(tb.Rows))
	}
}

func TestFig14(t *testing.T) {
	tb := suite.Fig14()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig15(t *testing.T) {
	tb := suite.Fig15()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 very deep networks", len(tb.Rows))
	}
}

func TestPower(t *testing.T) {
	tb := suite.Power()
	// VGG-16 (256) excluded: 5 rows.
	if len(tb.Rows) != 5 {
		t.Fatalf("power rows = %d, want 5 (paper excludes VGG-16 (256))", len(tb.Rows))
	}
}

func TestAblations(t *testing.T) {
	if rows := len(suite.AblationPrefetch().Rows); rows != 4 {
		t.Fatalf("prefetch ablation rows = %d", rows)
	}
	if rows := len(suite.AblationPageMigration().Rows); rows != 2 {
		t.Fatalf("page-migration ablation rows = %d", rows)
	}
	if rows := len(suite.AblationInterconnect().Rows); rows != 3 {
		t.Fatalf("interconnect ablation rows = %d", rows)
	}
	if rows := len(suite.AblationCapacity().Rows); rows != 6 {
		t.Fatalf("capacity ablation rows = %d", rows)
	}
	if rows := len(suite.AblationBatchScaling().Rows); rows != 6 {
		t.Fatalf("batch ablation rows = %d", rows)
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := NewSuite(gpu.TitanX())
	n1 := s.net(func() *dnn.Network { return networks.AlexNet(8) }, "a8")
	n2 := s.net(func() *dnn.Network { return networks.AlexNet(8) }, "a8")
	if n1 != n2 {
		t.Fatal("network memoization broken")
	}
	cfg := s.cfg(0, 0)
	r1 := s.Run(n1, cfg)
	r2 := s.Run(n1, cfg)
	if r1 != r2 {
		t.Fatal("result memoization broken")
	}
}

func TestAblationWeightOffload(t *testing.T) {
	tb := suite.AblationWeightOffload()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// "Less of a memory saving benefit": extra savings under 10%.
	for _, r := range tb.Rows {
		if p := parsePct(t, r[3]); p < 0 || p > 10 {
			t.Errorf("%s: weight-offload extra savings %d%%, want small positive", r[0], p)
		}
	}
}

func TestCaseStudies(t *testing.T) {
	mg := suite.CaseStudyMultiGPU()
	if len(mg.Rows) != 2 {
		t.Fatalf("multigpu rows = %d", len(mg.Rows))
	}
	pr := suite.CaseStudyPrecision()
	if len(pr.Rows) != 3 {
		t.Fatalf("precision rows = %d", len(pr.Rows))
	}
	// FP16 alone rescues batch 128 but not the very deep net; vDNN does.
	if pr.Rows[0][4] != "yes" || pr.Rows[2][4] != "no" || pr.Rows[2][5] != "yes" {
		t.Fatalf("precision table shape wrong: %v", pr.Rows)
	}
	dv := suite.CaseStudyDevices()
	if len(dv.Rows) != 5 {
		t.Fatalf("devices rows = %d", len(dv.Rows))
	}
	// The 4 GB GTX 980 cannot hold even vDNN's batch-256 working set.
	for _, r := range dv.Rows {
		if strings.Contains(r[0], "980") && r[3] != "no" {
			t.Errorf("GTX 980 should fail VGG-16 (256) even with vDNN: %v", r)
		}
		if strings.Contains(r[0], "P100") && r[3] != "yes" {
			t.Errorf("P100 should train VGG-16 (256) with vDNN: %v", r)
		}
	}
}

func TestCaseStudyResNet(t *testing.T) {
	tb := suite.CaseStudyResNet()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// vDNN must extend the trainable batch beyond the baseline's ceiling.
	baseMax, dynMax := -1, -1
	for i, r := range tb.Rows {
		if r[2] == "yes" {
			baseMax = i
		}
		if r[3] == "yes" {
			dynMax = i
		}
	}
	if dynMax <= baseMax {
		t.Fatalf("vDNN should extend ResNet-152 batch scaling: base idx %d, dyn idx %d", baseMax, dynMax)
	}
}

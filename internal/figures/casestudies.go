package figures

import (
	"fmt"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/report"
	"vdnn/internal/sweep"
	"vdnn/internal/tensor"
)

// CaseStudyMultiGPU quantifies the alternative the paper's introduction
// names: instead of virtualizing memory, "parallelize the DNN across
// multiple GPUs" — Simonyan & Zisserman trained VGG-16 (256) as 4x
// VGG-16 (64), one per GPU. This table compares that data-parallel setup
// (per-iteration gradient all-reduce over PCIe included) against a single
// vDNN GPU running the full batch.
func (s *Suite) caseStudyMultiGPUJobs() []sweep.Job {
	return []sweep.Job{
		job(s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64"),
			s.cfg(core.Baseline, core.PerfOptimal)),
		job(s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256"),
			s.cfg(core.VDNNDyn, 0)),
	}
}

func (s *Suite) CaseStudyMultiGPU() *report.Table {
	s.Prime(s.caseStudyMultiGPUJobs())
	n64 := s.net(func() *dnn.Network { return networks.VGG16(64) }, "vgg16-64")
	n256 := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")

	// 4-GPU data parallel: each GPU runs batch 64 under the baseline, then a
	// ring all-reduce exchanges the weight gradients: 2*(N-1)/N of the model
	// per GPU over the 12.8 GB/s link.
	const gpus = 4
	per := s.Run(n64, s.cfg(core.Baseline, core.PerfOptimal))
	gradBytes := float64(n64.TotalWeightBytes())
	allreduce := 2 * float64(gpus-1) / float64(gpus) * gradBytes / float64(s.Spec.Link.EffBps) * 1e9 // ns
	dpIter := float64(per.IterTime) + allreduce

	// 1 GPU with vDNN-dyn on the full batch.
	dyn := s.Run(n256, s.cfg(core.VDNNDyn, 0))

	imgsPerSec := func(batch int, iterNs float64) float64 { return float64(batch) / (iterNs / 1e9) }
	dpThroughput := imgsPerSec(256, dpIter)
	vdnnThroughput := imgsPerSec(256, float64(dyn.IterTime))

	t := report.NewTable("Case study — 4-GPU data parallelism vs one vDNN GPU (VGG-16, effective batch 256)",
		"setup", "GPUs", "iteration (ms)", "images/s", "images/s/GPU", "GPU memory each")
	t.AddRow("4x baseline (batch 64 each) + all-reduce", fmt.Sprintf("%d", gpus),
		report.FmtMs(int64(dpIter)), fmt.Sprintf("%.0f", dpThroughput),
		fmt.Sprintf("%.0f", dpThroughput/gpus), report.FmtMiB(per.MaxUsage)+" MB")
	t.AddRow("1x vDNN-dyn (batch 256)", "1",
		report.FmtMs(int64(dyn.IterTime)), fmt.Sprintf("%.0f", vdnnThroughput),
		fmt.Sprintf("%.0f", vdnnThroughput), report.FmtMiB(dyn.MaxUsage)+" MB")
	t.AddNote("4 GPUs are %.1fx faster in aggregate; per GPU, vDNN delivers %.1fx their throughput on one card",
		dpThroughput/vdnnThroughput, vdnnThroughput/(dpThroughput/gpus))
	return t
}

// CaseStudyPrecision is a reduced-precision what-if (the paper's related
// work, Section VI, positions precision as an orthogonal memory lever):
// the same networks with FP16 tensors, halving every feature map, weight
// and workspace.
// precisionNets returns the case study's [fp32, fp16] network pairs in row
// order.
func (s *Suite) precisionNets() [][2]*dnn.Network {
	var out [][2]*dnn.Network
	for _, key := range []string{"vgg16-128", "vgg16-256", "vgg416"} {
		var n *dnn.Network
		switch key {
		case "vgg16-128":
			n = s.net(func() *dnn.Network { return networks.VGG16(128) }, key)
		case "vgg16-256":
			n = s.net(func() *dnn.Network { return networks.VGG16(256) }, key)
		default:
			n = s.net(func() *dnn.Network { return networks.VGGDeep(416, 32) }, key)
		}
		h := s.net(func() *dnn.Network { return n.WithDType(tensor.Float16) }, key+"-fp16")
		out = append(out, [2]*dnn.Network{n, h})
	}
	return out
}

func (s *Suite) caseStudyPrecisionJobs() []sweep.Job {
	var js []sweep.Job
	for _, pair := range s.precisionNets() {
		js = append(js, job(pair[0], s.cfg(core.Baseline, core.PerfOptimal)),
			job(pair[1], s.cfg(core.Baseline, core.PerfOptimal)),
			job(pair[1], s.cfg(core.VDNNDyn, 0)))
	}
	return js
}

func (s *Suite) CaseStudyPrecision() *report.Table {
	s.Prime(s.caseStudyPrecisionJobs())
	t := report.NewTable("Case study — FP32 vs FP16 storage (baseline(p) demand and trainability on 12 GB)",
		"network", "fp32 demand (MB)", "fp32 trains", "fp16 demand (MB)", "fp16 trains", "fp16 + vDNN-dyn")
	for _, pair := range s.precisionNets() {
		n, h := pair[0], pair[1]
		f32 := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		f16 := s.Run(h, s.cfg(core.Baseline, core.PerfOptimal))
		dyn16 := s.Run(h, s.cfg(core.VDNNDyn, 0))
		t.AddRow(n.Name,
			report.FmtMiB(f32.TotalMaxUsage()), yesNo(f32.Trainable),
			report.FmtMiB(f16.TotalMaxUsage()), yesNo(f16.Trainable),
			yesNo(dyn16.Trainable))
	}
	t.AddNote("halving precision alone does not fit the very deep networks; vDNN composes with it")
	return t
}

// CaseStudyResNet applies vDNN to the ">100 convolutional layers" ImageNet
// winner the paper's introduction anticipates (ResNet, He et al. [15]):
// batch-size scaling of ResNet-152 on the 12 GB Titan X.
func (s *Suite) caseStudyResNetJobs() []sweep.Job {
	var js []sweep.Job
	for _, batch := range []int{16, 32, 64, 128} {
		n := s.net(func() *dnn.Network { return networks.ResNet152(batch) }, fmt.Sprintf("resnet152-%d", batch))
		js = append(js, job(n, s.cfg(core.Baseline, core.PerfOptimal)),
			job(n, s.cfg(core.VDNNDyn, 0)),
			job(n, core.Config{Spec: s.Spec, Policy: core.Baseline, Algo: core.PerfOptimal, Oracle: true}))
	}
	return js
}

func (s *Suite) CaseStudyResNet() *report.Table {
	s.Prime(s.caseStudyResNetJobs())
	t := report.NewTable("Case study — ResNet-152 on 12 GB (the paper's anticipated >100-layer winner)",
		"batch", "base(p) demand (MB)", "base(p)", "vDNN-dyn", "dyn max (MB)", "dyn vs oracle")
	for _, batch := range []int{16, 32, 64, 128} {
		n := s.net(func() *dnn.Network { return networks.ResNet152(batch) }, fmt.Sprintf("resnet152-%d", batch))
		base := s.Run(n, s.cfg(core.Baseline, core.PerfOptimal))
		dyn := s.Run(n, s.cfg(core.VDNNDyn, 0))
		oracle := s.oracleBaseline(n)
		t.AddRow(fmt.Sprintf("%d", batch),
			report.FmtMiB(base.TotalMaxUsage()), yesNo(base.Trainable), yesNo(dyn.Trainable),
			report.FmtMiB(dyn.MaxUsage),
			fmt.Sprintf("%.2f", float64(oracle.FETime)/float64(dyn.FETime)))
	}
	t.AddNote("residual joins share gradients through the add (dnn.Tensor.GradShare); BN layers are vDNN-managed like any non-in-place layer")
	return t
}

// CaseStudyDevices runs the headline workload across GPU generations,
// showing where vDNN's trainability benefit lands on each.
func (s *Suite) caseStudyDevicesJobs() []sweep.Job {
	n := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	var js []sweep.Job
	for _, spec := range []gpu.Spec{gpu.TeslaK40(), gpu.GTX980(), gpu.TitanX(), gpu.TitanXNVLink(), gpu.PascalP100()} {
		js = append(js, job(n, core.Config{Spec: spec, Policy: core.Baseline, Algo: core.PerfOptimal}),
			job(n, core.Config{Spec: spec, Policy: core.VDNNDyn}))
	}
	return js
}

func (s *Suite) CaseStudyDevices() *report.Table {
	s.Prime(s.caseStudyDevicesJobs())
	n := s.net(func() *dnn.Network { return networks.VGG16(256) }, "vgg16-256")
	t := report.NewTable("Case study — VGG-16 (256) across devices",
		"device", "memory", "base(p)", "vDNN-dyn", "dyn iteration (ms)")
	for _, spec := range []gpu.Spec{gpu.TeslaK40(), gpu.GTX980(), gpu.TitanX(), gpu.TitanXNVLink(), gpu.PascalP100()} {
		base := s.Run(n, core.Config{Spec: spec, Policy: core.Baseline, Algo: core.PerfOptimal})
		dyn := s.Run(n, core.Config{Spec: spec, Policy: core.VDNNDyn})
		t.AddRow(spec.Name, fmt.Sprintf("%d GB", spec.MemBytes>>30),
			yesNo(base.Trainable), yesNo(dyn.Trainable), report.FmtMs(int64(dyn.IterTime)))
	}
	t.AddNote("vDNN's profiling adapts the offload set and algorithms to each device's capacity and link")
	return t
}

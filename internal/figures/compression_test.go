package figures

import (
	"testing"

	"vdnn"
	"vdnn/internal/compress"
	"vdnn/internal/gpu"
)

// TestCompressionNeverIncreasesOffload is the case study's acceptance
// criterion: at every batch size, enabling a codec never increases the
// offload wire traffic (the codec bypasses incompressible buffers), the raw
// traffic is codec-independent, and the default ZVC point genuinely shrinks
// VGG-16's offload bytes.
func TestCompressionNeverIncreasesOffload(t *testing.T) {
	if testing.Short() {
		t.Skip("full compression study; skipped in -short mode")
	}
	s := NewSuiteSim(gpu.TitanX(), vdnn.NewSimulator(vdnn.WithParallelism(4)))
	s.Prime(s.caseStudyCompressionJobs())
	for _, b := range compressionBatches {
		n := s.compressionNet(b)
		base := s.Run(n, s.compressionCfg(compress.CodecNone))
		if base.CompressionRatio != 1 || base.OffloadRawBytes != base.OffloadBytes {
			t.Fatalf("batch %d: uncompressed run reports compression (%+v)", b, base.CompressionRatio)
		}
		for _, c := range compressionCodecs[1:] {
			r := s.Run(n, s.compressionCfg(c))
			if r.OffloadBytes > base.OffloadBytes {
				t.Fatalf("batch %d %v: compression increased offload bytes (%d > %d)",
					b, c, r.OffloadBytes, base.OffloadBytes)
			}
			if r.PrefetchBytes > base.PrefetchBytes {
				t.Fatalf("batch %d %v: compression increased prefetch bytes", b, c)
			}
			if r.OffloadRawBytes != base.OffloadBytes {
				t.Fatalf("batch %d %v: raw bytes %d != uncompressed wire %d",
					b, c, r.OffloadRawBytes, base.OffloadBytes)
			}
		}
		zvc := s.Run(n, s.compressionCfg(compress.CodecZVC))
		if zvc.OffloadBytes >= base.OffloadBytes {
			t.Fatalf("batch %d: ZVC saved nothing (%d vs %d)", b, zvc.OffloadBytes, base.OffloadBytes)
		}
	}
}

// TestCompressionTableShape pins the table layout the benchmarks read.
func TestCompressionTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full compression study; skipped in -short mode")
	}
	s := NewSuite(gpu.TitanX())
	tab := s.CaseStudyCompression()
	if want := len(compressionBatches) * len(compressionCodecs); len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
}

package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-much-longer-name", "23456")
	tb.AddNote("calibrated")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "a-much-longer-name") {
		t.Fatalf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "note: calibrated") {
		t.Fatal("missing note")
	}
	// Right-aligned numeric column: "1" should be padded to width of 23456.
	lines := strings.Split(out, "\n")
	var alphaLine string
	for _, l := range lines {
		if strings.Contains(l, "alpha") {
			alphaLine = l
		}
	}
	if !strings.HasSuffix(alphaLine, "    1") {
		t.Fatalf("value column not right-aligned: %q", alphaLine)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	if got := len(tb.Rows[0]); got != 3 {
		t.Fatalf("row padded to %d cells, want 3", got)
	}
}

func TestSetAligns(t *testing.T) {
	tb := NewTable("", "a", "b").SetAligns(Right, Left)
	if tb.Aligns[0] != Right || tb.Aligns[1] != Left {
		t.Fatal("SetAligns did not apply")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("x", `has,comma and "quote"`)
	var b strings.Builder
	tb.CSV(&b)
	want := "name,note\nx,\"has,comma and \"\"quote\"\"\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "Memory", "MB", 20, []Bar{
		{Label: "base", Value: 100},
		{Label: "vdnn", Value: 25, Starred: false},
		{Label: "fail", Value: 150, Starred: true},
	})
	out := b.String()
	if !strings.Contains(out, "Memory") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*|") {
		t.Fatal("missing star marker")
	}
	// The largest bar should reach the full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatal("max bar not full width")
	}
}

func TestBarsZeroAndDefaultWidth(t *testing.T) {
	var b strings.Builder
	Bars(&b, "", "", 0, []Bar{{Label: "zero", Value: 0}})
	if !strings.Contains(b.String(), "zero") {
		t.Fatal("zero-value bar missing")
	}
}

func TestFormatters(t *testing.T) {
	if FmtMiB(3<<20) != "3" {
		t.Fatalf("FmtMiB = %s", FmtMiB(3<<20))
	}
	if FmtGiB(1<<30) != "1.00" {
		t.Fatalf("FmtGiB = %s", FmtGiB(1<<30))
	}
	if FmtMs(1500000) != "1.5" {
		t.Fatalf("FmtMs = %s", FmtMs(1500000))
	}
	if FmtPct(0.821) != "82%" {
		t.Fatalf("FmtPct = %s", FmtPct(0.821))
	}
}

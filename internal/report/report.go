// Package report renders experiment results as aligned text tables, ASCII
// bar charts and CSV — the output formats of the repro harness. Everything
// the paper plots as a figure is emitted as a table (exact numbers) plus a
// bar rendering (shape at a glance).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Align selects column alignment.
type Align int

const (
	Left Align = iota
	Right
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Aligns  []Align
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table; aligns defaults to Left for text and can be set
// per column with SetAligns.
func NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, Headers: headers, Aligns: make([]Align, len(headers))}
	for i := 1; i < len(headers); i++ {
		t.Aligns[i] = Right // conventional: first column labels, rest numbers
	}
	return t
}

// SetAligns overrides column alignment.
func (t *Table) SetAligns(a ...Align) *Table {
	copy(t.Aligns, a)
	return t
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) *Table {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
	return t
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(t.Aligns) && t.Aligns[i] == Right {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quotes cells containing
// commas).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// Bar is one bar of an ASCII chart.
type Bar struct {
	Label   string
	Value   float64
	Starred bool // configurations that cannot train (the paper's asterisks)
}

// Bars renders a horizontal ASCII bar chart scaled to the maximum value.
func Bars(w io.Writer, title, unit string, width int, bars []Bar) {
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	labw := 0
	for _, b := range bars {
		if len(b.Label) > labw {
			labw = len(b.Label)
		}
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		star := " "
		if b.Starred {
			star = "*"
		}
		fmt.Fprintf(w, "  %-*s %s|%-*s %10.1f %s\n", labw, b.Label, star, width, strings.Repeat("#", n), b.Value, unit)
	}
}

// FmtMiB formats bytes as whole MiB, the unit of the paper's memory axes.
func FmtMiB(b int64) string { return fmt.Sprintf("%.0f", float64(b)/(1<<20)) }

// FmtGiB formats bytes with GiB precision.
func FmtGiB(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }

// FmtMs formats nanoseconds as milliseconds.
func FmtMs(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e6) }

// FmtPct formats a ratio as a percentage.
func FmtPct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// Package compress models a compressing DMA engine for vDNN's offload and
// prefetch traffic, after "Compressing DMA Engine: Leveraging Activation
// Sparsity for Training Deep Neural Networks" (Rhu et al.) — the direct
// follow-up to the vDNN paper. ReLU-family layers leave feature maps 45-90%
// zero, so a codec sitting next to the DMA engines can shrink the PCIe
// traffic that dominates vDNN's offload cost by 2-4x, turning offload-bound
// layers back into compute-bound ones.
//
// The package provides the two halves of the model:
//
//   - activation sparsity (sparsity.go): deterministic per-layer sparsity
//     profiles for ReLU-family outputs, with named presets in a registry
//     mirroring internal/gpu and internal/pcie;
//   - codec cost models (this file): zero-value compression (cDMA's ZVC) and
//     a run-length/CSR-style variant, mapping a tensor's raw bytes and
//     sparsity to wire bytes plus compression/decompression latency on the
//     device.
//
// A codec never expands a transfer: when the encoded form would be at least
// as large as the raw tensor the engine passes the data through unchanged
// (wire == raw, zero latency), which is what guarantees that enabling
// compression never increases offload traffic.
package compress

import (
	"fmt"
	"strings"

	"vdnn/internal/sim"
)

// Codec selects the compression algorithm of the simulated DMA engine.
type Codec int

const (
	// CodecNone disables compression: every transfer moves its raw bytes.
	CodecNone Codec = iota
	// CodecZVC is cDMA's zero-value compression: a one-bit-per-element
	// presence mask plus the densely packed non-zero values. Robust across
	// the whole sparsity range and cheap to (de)compress in hardware.
	CodecZVC
	// CodecRLE is a run-length/CSR-style variant: packed non-zero values
	// plus per-run descriptors. Competitive only at high sparsity; kept as a
	// sweep dimension to show why cDMA settled on ZVC.
	CodecRLE
)

var codecNames = [...]string{"none", "zvc", "rle"}

func (c Codec) String() string {
	if c >= 0 && int(c) < len(codecNames) {
		return codecNames[c]
	}
	return fmt.Sprintf("Codec(%d)", int(c))
}

// MarshalText encodes the codec as its canonical token: "none", "zvc" or
// "rle".
func (c Codec) MarshalText() ([]byte, error) {
	if c >= 0 && int(c) < len(codecNames) {
		return []byte(codecNames[c]), nil
	}
	return nil, fmt.Errorf("compress: cannot marshal unknown codec %d", int(c))
}

// UnmarshalText decodes a codec token. Accepted (case-insensitive): the
// canonical forms plus the aliases "off"/"disabled" for none,
// "zero-value"/"cdma" for zvc and "run-length"/"csr" for rle.
func (c *Codec) UnmarshalText(text []byte) error {
	switch strings.ToLower(strings.TrimSpace(string(text))) {
	case "none", "off", "disabled", "":
		*c = CodecNone
	case "zvc", "zero-value", "cdma":
		*c = CodecZVC
	case "rle", "run-length", "csr":
		*c = CodecRLE
	default:
		return fmt.Errorf("compress: unknown codec %q (want none, zvc or rle)", text)
	}
	return nil
}

// Set implements flag.Value.
func (c *Codec) Set(s string) error { return c.UnmarshalText([]byte(s)) }

// Validate reports whether the codec is a known value.
func (c Codec) Validate() error {
	if c < CodecNone || c > CodecRLE {
		return fmt.Errorf("compress: unknown codec %d", int(c))
	}
	return nil
}

// engineFrac is the codec engine's streaming rate as a fraction of the
// device's effective DRAM bandwidth. The cDMA engine sits beside the DMA
// engines and streams activations through DRAM, so its rate scales with the
// device; it is far above any host interconnect, which is what lets the
// codec latency hide under the transfer it feeds.
func (c Codec) engineFrac() float64 {
	switch c {
	case CodecZVC:
		return 0.50 // mask + pack: one streaming pass
	case CodecRLE:
		return 0.25 // run detection serializes harder
	}
	return 0
}

// Cost is the codec outcome for one transfer: the bytes that cross the
// interconnect and the device-side compression/decompression latency. A
// pass-through (incompressible or disabled) costs nothing: WireBytes == raw
// and both latencies are zero.
type Cost struct {
	WireBytes  int64
	Compress   sim.Time
	Decompress sim.Time
}

// Cost maps a raw transfer to its compressed form: raw bytes of elemSize-byte
// elements at the given zero-value sparsity, on a device whose codec engine
// streams at engineBps * the codec's rate factor. The encoded size is clamped
// at raw — the engine bypasses tensors it cannot shrink.
func (c Codec) Cost(raw, elemSize int64, sparsity float64, engineBps float64) Cost {
	pass := Cost{WireBytes: raw}
	if c == CodecNone || raw <= 0 || elemSize <= 0 {
		return pass
	}
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	elems := raw / elemSize
	if elems == 0 {
		return pass
	}
	nnz := int64(float64(elems)*(1-sparsity) + 0.5)
	var wire int64
	switch c {
	case CodecZVC:
		// One presence bit per element plus the packed non-zero values.
		wire = (elems+7)/8 + nnz*elemSize
	case CodecRLE:
		// Packed non-zero values plus 4-byte run descriptors (zero-run
		// length + value-run length). For randomly placed zeros the expected
		// number of runs is elems * s * (1-s) + 1.
		runs := int64(float64(elems)*sparsity*(1-sparsity)) + 1
		wire = nnz*elemSize + 4*runs
	default:
		return pass
	}
	if wire >= raw {
		return pass
	}
	var cmp, dec sim.Time
	if bps := engineBps * c.engineFrac(); bps > 0 {
		// Both directions stream the raw footprint: compression reads it,
		// decompression writes it.
		cmp = sim.Time(float64(raw) / bps * 1e9)
		dec = cmp
	}
	return Cost{WireBytes: wire, Compress: cmp, Decompress: dec}
}

// Config selects the compressed-DMA model of a simulation. The zero value
// disables compression entirely and normalizes to itself, so configurations
// that never mention compression keep their existing cache keys and
// schedules byte for byte.
type Config struct {
	// Codec is the compression algorithm of the DMA engine (CodecNone
	// disables the engine).
	Codec Codec `json:"codec,omitempty"`
	// Sparsity names the activation-sparsity profile (see ProfileNames).
	// Empty selects DefaultProfile when a codec is active; ignored (and
	// normalized away) when the codec is CodecNone.
	Sparsity string `json:"sparsity,omitempty"`
}

// Enabled reports whether a codec is active.
func (c Config) Enabled() bool { return c.Codec != CodecNone }

// WithDefaults normalizes the configuration: the zero value stays the zero
// value, a disabled codec drops any sparsity name, and an active codec
// resolves the empty profile name to DefaultProfile. Two configurations that
// normalize equal simulate identically (the cache-key contract of
// core.Config.WithDefaults).
func (c Config) WithDefaults() Config {
	if c.Codec == CodecNone {
		return Config{}
	}
	if c.Sparsity == "" {
		c.Sparsity = DefaultProfile
	}
	return c
}

// Validate checks the codec and, when one is active, that the sparsity
// profile is registered.
func (c Config) Validate() error {
	if err := c.Codec.Validate(); err != nil {
		return err
	}
	if c.Codec == CodecNone {
		return nil
	}
	name := c.Sparsity
	if name == "" {
		name = DefaultProfile
	}
	if _, ok := ProfileByName(name); !ok {
		return fmt.Errorf("compress: unknown sparsity profile %q (have %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
	return nil
}

// CodecNames lists the codec tokens in enum order ("none", "zvc", "rle").
func CodecNames() []string { return append([]string(nil), codecNames[:]...) }

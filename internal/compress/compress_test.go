package compress

import (
	"encoding/json"
	"testing"
)

func TestCodecNeverExpands(t *testing.T) {
	const engineBps = 100e9
	for _, c := range []Codec{CodecNone, CodecZVC, CodecRLE} {
		for _, elem := range []int64{2, 4} {
			for _, raw := range []int64{0, 64, 4 << 10, 16 << 20} {
				for _, s := range []float64{0, 0.1, 0.45, 0.5, 0.9, 1} {
					got := c.Cost(raw, elem, s, engineBps)
					if got.WireBytes > raw {
						t.Fatalf("%v raw=%d elem=%d s=%v: wire %d > raw", c, raw, elem, s, got.WireBytes)
					}
					if got.WireBytes < 0 || got.Compress < 0 || got.Decompress < 0 {
						t.Fatalf("%v raw=%d s=%v: negative cost %+v", c, raw, s, got)
					}
					if got.WireBytes == raw && (got.Compress != 0 || got.Decompress != 0) {
						t.Fatalf("%v raw=%d s=%v: pass-through charged latency %+v", c, raw, s, got)
					}
				}
			}
		}
	}
}

func TestCodecMonotonicInSparsity(t *testing.T) {
	const raw, elem = 16 << 20, 4
	for _, c := range []Codec{CodecZVC, CodecRLE} {
		prev := int64(raw)
		for _, s := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			wire := c.Cost(raw, elem, s, 100e9).WireBytes
			if wire > prev {
				t.Fatalf("%v: wire grew from %d to %d as sparsity rose to %v", c, prev, wire, s)
			}
			prev = wire
		}
	}
}

func TestZVCMath(t *testing.T) {
	// 1 MiB of fp32 at 75% sparsity: mask = elems/8, values = elems/4*4.
	const raw = 1 << 20
	elems := int64(raw / 4)
	got := CodecZVC.Cost(raw, 4, 0.75, 100e9)
	want := (elems+7)/8 + elems/4*4
	if got.WireBytes != want {
		t.Fatalf("ZVC wire = %d, want %d", got.WireBytes, want)
	}
	if got.Compress <= 0 || got.Decompress <= 0 {
		t.Fatalf("ZVC latency not charged: %+v", got)
	}
}

func TestCodecText(t *testing.T) {
	for _, c := range []Codec{CodecNone, CodecZVC, CodecRLE} {
		b, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got Codec
		if err := got.UnmarshalText(b); err != nil || got != c {
			t.Fatalf("codec %v round trip via %q failed: %v", c, b, err)
		}
	}
	var c Codec
	for in, want := range map[string]Codec{"cdma": CodecZVC, "csr": CodecRLE, "off": CodecNone, "ZVC": CodecZVC} {
		if err := c.UnmarshalText([]byte(in)); err != nil || c != want {
			t.Errorf("codec %q = %v (%v), want %v", in, c, err, want)
		}
	}
	if err := c.UnmarshalText([]byte("gzip")); err == nil {
		t.Error("bogus codec token accepted")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	if got := (Config{}).WithDefaults(); got != (Config{}) {
		t.Fatalf("zero config normalized to %+v", got)
	}
	// A disabled codec drops any stray profile name.
	if got := (Config{Sparsity: "cdma"}).WithDefaults(); got != (Config{}) {
		t.Fatalf("disabled config kept profile: %+v", got)
	}
	got := Config{Codec: CodecZVC}.WithDefaults()
	if got.Sparsity != DefaultProfile {
		t.Fatalf("active codec resolved profile %q, want %q", got.Sparsity, DefaultProfile)
	}
	if err := (Config{Codec: CodecZVC, Sparsity: "nope"}).Validate(); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := (Config{Codec: Codec(42)}).Validate(); err == nil {
		t.Error("unknown codec accepted")
	}
	if err := (Config{Codec: CodecRLE}).Validate(); err != nil {
		t.Errorf("empty profile with active codec rejected: %v", err)
	}
}

func TestProfiles(t *testing.T) {
	p, ok := ProfileByName(DefaultProfile)
	if !ok {
		t.Fatalf("default profile %q not registered", DefaultProfile)
	}
	if lo, hi := p.ReLU(0), p.ReLU(1); !(lo >= 0.4 && lo <= 0.5 && hi >= 0.85 && hi <= p.Max+1e-9) {
		t.Fatalf("cdma ReLU sparsity range [%v, %v] off the paper's 45-90%%", lo, hi)
	}
	if hi, max := p.ReLU(2), p.Max; hi > max {
		t.Fatalf("depth clamp broken: %v > %v", hi, max)
	}
	if d, _ := ProfileByName("dense"); d.ReLU(1) != 0 || d.Pool(0.9) != 0 {
		t.Fatal("dense profile not dense")
	}
	names := ProfileNames()
	if len(names) < 3 {
		t.Fatalf("profiles = %v", names)
	}
	if err := RegisterProfile("bad", Profile{Max: 2}); err == nil {
		t.Error("invalid profile registered")
	}
}

func TestConfigJSON(t *testing.T) {
	cfg := Config{Codec: CodecZVC, Sparsity: "flat50"}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got Config
	if err := json.Unmarshal(b, &got); err != nil || got != cfg {
		t.Fatalf("round trip via %s: %+v (%v)", b, got, err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["codec"] != "zvc" {
		t.Fatalf("codec JSON form = %v", m["codec"])
	}
}

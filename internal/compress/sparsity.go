package compress

import (
	"fmt"
	"sort"
	"sync"
)

// Profile is a deterministic activation-sparsity model: given where a buffer
// sits in the network and what produced its contents, it predicts the
// fraction of zero values the compressing DMA engine will see. The cDMA
// paper's measurement is the anchor: ReLU-family outputs average 45-90%
// zeros, growing with depth as features specialize; pooling concentrates
// activations and keeps most of the sparsity; everything else (convolution
// and GEMM outputs before their activation, normalization outputs) is dense.
type Profile struct {
	Name string

	// ReLUBase is the sparsity of a ReLU output at the very first layer;
	// ReLUSlope is added linearly by the end of the network, modeling the
	// depth trend of the cDMA paper's Figure 2.
	ReLUBase, ReLUSlope float64

	// PoolRetention is the fraction of input sparsity surviving a pooling
	// layer (max pooling picks window maxima, which are less often zero).
	PoolRetention float64

	// Max clamps every predicted sparsity.
	Max float64
}

// ReLU returns the sparsity of a ReLU output at the given network depth
// (depthFrac in [0, 1]: the producing layer's position in execution order).
func (p Profile) ReLU(depthFrac float64) float64 {
	if depthFrac < 0 {
		depthFrac = 0
	}
	if depthFrac > 1 {
		depthFrac = 1
	}
	return p.clamp(p.ReLUBase + p.ReLUSlope*depthFrac)
}

// Pool returns the sparsity of a pooling output given its input's sparsity.
func (p Profile) Pool(in float64) float64 { return p.clamp(in * p.PoolRetention) }

func (p Profile) clamp(s float64) float64 {
	if s < 0 {
		s = 0
	}
	if s > p.Max {
		s = p.Max
	}
	return s
}

// Validate checks the profile parameters are sensible.
func (p Profile) Validate() error {
	if p.Max < 0 || p.Max > 1 {
		return fmt.Errorf("compress: profile %q Max %v outside [0,1]", p.Name, p.Max)
	}
	if p.ReLUBase < 0 || p.ReLUBase > 1 {
		return fmt.Errorf("compress: profile %q ReLUBase %v outside [0,1]", p.Name, p.ReLUBase)
	}
	if p.PoolRetention < 0 || p.PoolRetention > 1 {
		return fmt.Errorf("compress: profile %q PoolRetention %v outside [0,1]", p.Name, p.PoolRetention)
	}
	return nil
}

// CDMA returns the default profile, calibrated to the cDMA paper's
// measurement: ReLU outputs 45% sparse at the first layer growing to ~90% at
// the last, pooling keeping three quarters of it.
func CDMA() Profile {
	return Profile{Name: "cdma", ReLUBase: 0.45, ReLUSlope: 0.45, PoolRetention: 0.75, Max: 0.93}
}

// Flat50 returns a depth-independent 50% profile: the conservative
// whole-network average the cDMA paper quotes for AlexNet's early epochs.
func Flat50() Profile {
	return Profile{Name: "flat50", ReLUBase: 0.50, ReLUSlope: 0, PoolRetention: 1, Max: 0.50}
}

// Dense returns the adversarial profile: no zeros anywhere, so every codec
// passes everything through. Useful as the lower bound of codec sweeps.
func Dense() Profile {
	return Profile{Name: "dense", ReLUBase: 0, ReLUSlope: 0, PoolRetention: 0, Max: 0}
}

// DefaultProfile is the profile an active codec resolves to when the
// configuration names none.
const DefaultProfile = "cdma"

// Named profile registry, mirroring the device registry in internal/gpu:
// CLI flags and JSON requests address sparsity models by these tokens.
var (
	regMu    sync.RWMutex
	registry = map[string]Profile{
		"cdma":   CDMA(),
		"flat50": Flat50(),
		"dense":  Dense(),
	}
)

// ProfileByName returns the registered profile for a name like "cdma".
func ProfileByName(name string) (Profile, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// ProfileNames lists the registered profile names, sorted.
func ProfileNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterProfile adds (or replaces) a named profile. It must validate.
func RegisterProfile(name string, p Profile) error {
	if name == "" {
		return fmt.Errorf("compress: empty registry name")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = p
	return nil
}

package memalloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"vdnn/internal/sim"
)

func TestAllocFreeBasic(t *testing.T) {
	p := New(1 << 20)
	b, err := p.Alloc(0, 1000, KindFeatureMap, "x")
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 1024 { // rounded to 512-byte alignment
		t.Fatalf("size = %d, want 1024", b.Size)
	}
	if p.Used() != 1024 || p.UsedByKind(KindFeatureMap) != 1024 {
		t.Fatalf("used = %d byKind = %d", p.Used(), p.UsedByKind(KindFeatureMap))
	}
	p.Free(b, 0)
	if p.Used() != 0 || p.FreeRanges() != 1 {
		t.Fatalf("after free: used=%d ranges=%d", p.Used(), p.FreeRanges())
	}
}

func TestZeroSizeAllocGetsMinimum(t *testing.T) {
	p := New(1 << 20)
	b, err := p.Alloc(0, 0, KindWorkspace, "empty-ws")
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 512 {
		t.Fatalf("zero-size alloc got %d bytes, want 512", b.Size)
	}
}

func TestOOMCapacity(t *testing.T) {
	p := New(1 << 20)
	if _, err := p.Alloc(0, 2<<20, KindFeatureMap, "big"); err == nil {
		t.Fatal("expected OOM")
	} else {
		var oom *OOMError
		if !errors.As(err, &oom) {
			t.Fatalf("error type %T, want *OOMError", err)
		}
		if oom.Fragmentation {
			t.Fatal("capacity failure misreported as fragmentation")
		}
	}
}

func TestOOMFragmentation(t *testing.T) {
	p := New(2048)
	a, _ := p.Alloc(0, 512, KindFeatureMap, "a")
	b, _ := p.Alloc(0, 512, KindFeatureMap, "b")
	c, _ := p.Alloc(0, 512, KindFeatureMap, "c")
	d, _ := p.Alloc(0, 512, KindFeatureMap, "d")
	_ = a
	_ = c
	// Free alternating blocks: 2x512 free but not contiguous.
	p.Free(b, 1)
	p.Free(d, 1)
	_, err := p.Alloc(2, 1024, KindFeatureMap, "needs-contig")
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOM, got %v", err)
	}
	if !oom.Fragmentation {
		t.Fatalf("want fragmentation failure, got %+v", oom)
	}
	if oom.LargestFree != 512 {
		t.Fatalf("largest free = %d, want 512", oom.LargestFree)
	}
}

func TestCoalescing(t *testing.T) {
	p := New(1 << 20)
	a, _ := p.Alloc(0, 512, KindFeatureMap, "a")
	b, _ := p.Alloc(0, 512, KindFeatureMap, "b")
	c, _ := p.Alloc(0, 512, KindFeatureMap, "c")
	// Free in an order that exercises successor and predecessor merging.
	p.Free(a, 1)
	p.Free(c, 1)
	p.Flush(1)
	// a's hole stands alone; c's hole coalesces with the tail range.
	if p.FreeRanges() != 2 {
		t.Fatalf("ranges = %d, want 2", p.FreeRanges())
	}
	p.Free(b, 1)
	p.Flush(1)
	if p.FreeRanges() != 1 {
		t.Fatalf("after all frees ranges = %d, want fully coalesced 1", p.FreeRanges())
	}
}

func TestBestFitPrefersSmallestHole(t *testing.T) {
	p := New(10 * 512)
	a, _ := p.Alloc(0, 512, KindFeatureMap, "a")    // hole later: 512
	pad1, _ := p.Alloc(0, 512, KindFeatureMap, "p") // keeps holes apart
	b, _ := p.Alloc(0, 3*512, KindFeatureMap, "b")  // hole later: 1536
	pad2, _ := p.Alloc(0, 512, KindFeatureMap, "q")
	_ = pad1
	_ = pad2
	p.Free(a, 1)
	p.Free(b, 1)
	// Requesting 512 must come from a's 512-hole (best fit), not b's.
	c, err := p.Alloc(2, 512, KindFeatureMap, "c")
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr != a.Addr {
		t.Fatalf("best fit chose addr %d, want %d", c.Addr, a.Addr)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := New(1 << 20)
	b, _ := p.Alloc(0, 512, KindFeatureMap, "b")
	p.Free(b, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Free(b, 2)
}

func TestFreeNilIsNoop(t *testing.T) {
	p := New(1 << 20)
	p.Free(nil, 0)
	if p.Used() != 0 {
		t.Fatal("Free(nil) changed usage")
	}
}

func TestDeferredFreeAppliesBeforeLaterAlloc(t *testing.T) {
	p := New(2048)
	a, _ := p.Alloc(0, 1024, KindFeatureMap, "a")
	b, _ := p.Alloc(0, 1024, KindFeatureMap, "b")
	_ = b
	// Schedule a's free for t=100 (e.g. offload completion).
	p.Free(a, 100)
	// At t=50 the pool is still full.
	if _, err := p.Alloc(50, 1024, KindFeatureMap, "c"); err == nil {
		t.Fatal("alloc at t=50 should fail; free not yet applied")
	}
	// At t=100 the pending free is applied first.
	if _, err := p.Alloc(100, 1024, KindFeatureMap, "d"); err != nil {
		t.Fatalf("alloc at t=100 should succeed: %v", err)
	}
}

func TestAllocTimeMonotonicityEnforced(t *testing.T) {
	p := New(1 << 20)
	p.Alloc(100, 512, KindFeatureMap, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("backward allocation time did not panic")
		}
	}()
	p.Alloc(50, 512, KindFeatureMap, "b")
}

func TestFlush(t *testing.T) {
	p := New(1 << 20)
	a, _ := p.Alloc(0, 512, KindFeatureMap, "a")
	p.Free(a, 1000)
	if p.Used() != 512 {
		t.Fatal("pending free applied too early")
	}
	p.Flush(999)
	if p.Used() != 512 {
		t.Fatal("flush(999) should not apply free at t=1000")
	}
	p.Flush(1000)
	if p.Used() != 0 {
		t.Fatal("flush(1000) should apply the free")
	}
}

func TestMeasurePeakAndAverage(t *testing.T) {
	p := New(1 << 20)
	a, _ := p.Alloc(0, 1024, KindFeatureMap, "a") // 1 KiB for [0,100)
	b, _ := p.Alloc(0, 2048, KindGradMap, "b")    // 2 KiB for [0,50)
	p.Free(b, 50)
	p.Free(a, 100)
	p.Flush(100)
	st := p.Measure(0, 100)
	if st.Peak != 3072 {
		t.Fatalf("peak = %d, want 3072", st.Peak)
	}
	// avg = (3072*50 + 1024*50)/100 = 2048
	if st.Avg != 2048 {
		t.Fatalf("avg = %d, want 2048", st.Avg)
	}
	if st.PeakByKind[KindFeatureMap] != 1024 || st.PeakByKind[KindGradMap] != 2048 {
		t.Fatalf("peak breakdown wrong: %+v", st.PeakByKind)
	}
	if st.PeakTime != 0 {
		t.Fatalf("peak time = %v, want 0", st.PeakTime)
	}
}

func TestMeasureCarriedUsageCountsAsPeak(t *testing.T) {
	p := New(1 << 20)
	p.Alloc(0, 4096, KindWeights, "w") // held forever
	st := p.Measure(10, 20)            // window with no events
	if st.Peak != 4096 {
		t.Fatalf("carried peak = %d, want 4096", st.Peak)
	}
	if st.Avg != 4096 {
		t.Fatalf("carried avg = %d, want 4096", st.Avg)
	}
}

func TestMeasureAllEmpty(t *testing.T) {
	p := New(1 << 20)
	st := p.MeasureAll()
	if st.Peak != 0 || st.Avg != 0 {
		t.Fatalf("empty pool stats = %+v", st)
	}
}

func TestKindNames(t *testing.T) {
	if KindWeights.String() != "weights" || KindWorkspace.String() != "workspace" {
		t.Fatal("kind names wrong")
	}
	if len(Kinds()) != int(numKinds) {
		t.Fatal("Kinds() incomplete")
	}
}

// reference is a trivially correct allocator used to cross-check the pool.
type reference struct {
	capacity int64
	blocks   map[*Block]bool
}

func (r *reference) overlapFree(addr, size int64) bool {
	for b := range r.blocks {
		if addr < b.Addr+b.Size && b.Addr < addr+size {
			return false
		}
	}
	return true
}

// TestRandomizedAgainstReference drives random alloc/free traffic and checks
// structural invariants: no live blocks overlap, usage accounting is exact,
// everything stays in bounds, and full coalescing happens when empty.
func TestRandomizedAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 1 << 20
		p := New(cap)
		ref := &reference{capacity: cap, blocks: map[*Block]bool{}}
		var live []*Block
		var want int64
		now := sim.Time(0)
		for step := 0; step < 300; step++ {
			now += sim.Time(rng.Intn(5))
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := int64(rng.Intn(64*1024) + 1)
				b, err := p.Alloc(now, size, Kind(rng.Intn(int(numKinds))), "r")
				if err != nil {
					continue // OOM is legal under random traffic
				}
				if b.Addr < 0 || b.Addr+b.Size > cap {
					t.Logf("block out of bounds: %+v", b)
					return false
				}
				if !ref.overlapFree(b.Addr, b.Size) {
					t.Logf("overlap at %d+%d", b.Addr, b.Size)
					return false
				}
				ref.blocks[b] = true
				live = append(live, b)
				want += b.Size
			} else {
				i := rng.Intn(len(live))
				b := live[i]
				live = append(live[:i], live[i+1:]...)
				delete(ref.blocks, b)
				p.Free(b, now)
				p.Flush(now) // make the free visible immediately
				want -= b.Size
			}
			if p.Used() != want {
				t.Logf("usage mismatch: got %d want %d", p.Used(), want)
				return false
			}
		}
		for _, b := range live {
			p.Free(b, now)
		}
		p.Flush(now)
		if p.Used() != 0 || p.FreeRanges() != 1 {
			t.Logf("not fully coalesced: used=%d ranges=%d", p.Used(), p.FreeRanges())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: deferred frees never change the final state compared to
// immediate frees, only the intermediate timeline.
func TestDeferredVsImmediateFinalState(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 1 << 18
		imm := New(cap)
		def := New(cap)
		type pair struct{ a, b *Block }
		var live []pair
		now := sim.Time(0)
		for step := 0; step < 100; step++ {
			now += 10
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := int64(rng.Intn(8192) + 1)
				a, errA := imm.Alloc(now, size, KindFeatureMap, "x")
				b, errB := def.Alloc(now, size, KindFeatureMap, "x")
				switch {
				case errA == nil && errB == nil:
					live = append(live, pair{a, b})
				case errA == nil:
					// Deferred frees can OOM where immediate frees do not;
					// drop the lone success to keep the live sets identical.
					imm.Free(a, now)
				case errB == nil:
					def.Free(b, now)
				}
			} else {
				i := rng.Intn(len(live))
				pr := live[i]
				live = append(live[:i], live[i+1:]...)
				imm.Free(pr.a, now)
				imm.Flush(now)
				def.Free(pr.b, now+5) // deferred to just after now
			}
		}
		def.Flush(now + 5)
		return imm.Used() == def.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNonPositiveCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Package memalloc implements the device-side memory pool vDNN allocates
// from. It mirrors NVIDIA's cnmem library, which the paper adopts to avoid
// the device-wide synchronization of cudaMalloc/cudaFree (Section III-B):
// the pool is sized once at startup to the GPU's usable capacity, and all
// (de)allocations are served from it asynchronously.
//
// The allocator is a classic address-ordered suballocator with block
// splitting and free-range coalescing, so fragmentation behaves like the
// real thing. Free ranges live in a size-augmented address tree (freetree.go)
// that answers first-fit and last-fit queries in O(log n) instead of the
// linear freelist scan — the allocator is on the hot path of every simulated
// kernel launch. Allocations and frees carry simulated timestamps; a free
// may be scheduled for a future point (the completion time of the op that
// last reads the buffer), and is applied before any later allocation. The
// pool records a complete usage timeline from which peak usage,
// time-weighted average usage, and the per-kind breakdown that the paper's
// Figure 4 plots are all derived.
package memalloc

import (
	"fmt"
	"sort"

	"vdnn/internal/sim"
)

// Kind tags an allocation with its functional role, matching the memory
// breakdown categories of the paper's Figure 4.
type Kind int

const (
	KindWeights    Kind = iota // layer weights and biases
	KindWeightGrad             // weight gradients
	KindFeatureMap             // X/Y feature maps
	KindGradMap                // dX/dY gradient maps
	KindWorkspace              // cuDNN convolution workspace
	KindOther                  // dropout masks, loss scratch, ...
	numKinds
)

var kindNames = [...]string{"weights", "weight-grads", "feature-maps", "gradient-maps", "workspace", "other"}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all allocation kinds in display order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Block is a live allocation.
type Block struct {
	Addr, Size int64
	Kind       Kind
	Label      string
	freed      bool
	seq        int32 // registration index in the pool's trace, if recording
}

// OOMError reports an allocation failure: the request, what was in use, and
// whether the failure was capacity or fragmentation.
type OOMError struct {
	Label         string
	Need          int64
	Used          int64
	Capacity      int64
	LargestFree   int64
	Fragmentation bool // true if total free space sufficed but no range did
}

func (e *OOMError) Error() string {
	cause := "out of memory"
	if e.Fragmentation {
		cause = "fragmentation"
	}
	return fmt.Sprintf("memalloc: %s allocating %d bytes for %q (used %d of %d, largest free %d)",
		cause, e.Need, e.Label, e.Used, e.Capacity, e.LargestFree)
}

type span struct{ addr, size int64 }

type pendingFree struct {
	t sim.Time
	b *Block
}

// freeHeap is a binary min-heap on time. It hand-rolls push/pop with the
// exact sift arithmetic of container/heap — same comparisons, same swaps, so
// the pop order of equal timestamps is unchanged — because the interface
// boxing of heap.Push allocated on every scheduled free, squarely on the
// simulation hot path.
type freeHeap []pendingFree

func (h *freeHeap) push(pf pendingFree) {
	*h = append(*h, pf)
	// Sift up.
	s := *h
	for j := len(s) - 1; ; {
		i := (j - 1) / 2
		if i == j || !(s[j].t < s[i].t) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *freeHeap) pop() pendingFree {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift down over s[:n].
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].t < s[j].t {
			j = j2
		}
		if !(s[j].t < s[i].t) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	x := s[n]
	*h = s[:n]
	return x
}

// usageEvent is one step in the usage timeline.
type usageEvent struct {
	t     sim.Time
	delta int64
	kind  Kind
	label string
}

// bigBlockThreshold separates the two allocation arenas: feature maps at
// least this large are carved from the top of the address space
// (descending); everything else — weights, gradient maps, workspaces, small
// maps — from the bottom (ascending). Feature maps follow the forward pass's
// descending-size pattern and are re-fetched in the same sizes during
// backward, so keeping them in their own arena lets their holes be
// exchanged exactly; gradient maps churn only during backward and pack
// cleanly above the weights. This segregation is what lets the repetitive
// per-iteration allocation pattern of DNN training run at >90% pool
// occupancy without fragmentation-induced OOM, as the paper's prototype
// evidently did on VGG-16 (256).
const bigBlockThreshold = 64 << 20

// Pool is the device memory pool.
type Pool struct {
	capacity int64
	align    int64
	free     *freeTree // free ranges indexed by address, augmented by size
	used     int64
	byKind   [numKinds]int64
	events   []usageEvent
	pending  freeHeap
	lastTime sim.Time

	// bins caches freed feature-map blocks by exact size, uncoalesced, so
	// the backward pass's prefetches and the next iteration's allocations
	// reuse the very holes the forward pass left (the caching-allocator
	// strategy of cnmem and of PyTorch's CUDA allocator). A miss that the
	// coalesced freelist cannot serve flushes the bins and retries.
	bins map[int64][]span

	peak       int64
	peakTime   sim.Time
	peakByKind [numKinds]int64

	// trace, when non-nil, records every Alloc/Free/Flush for differential
	// replay (see trace.go). metricsOff suppresses the usage timeline for
	// replay pools, whose only output is the success/failure verdict.
	trace      *Trace
	metricsOff bool

	// blockArena batches Block allocations in chunks. A full chunk is simply
	// replaced — outstanding *Block pointers keep the old chunk alive.
	blockArena []Block
}

const blockArenaChunk = 128

func (p *Pool) newBlock(addr, size int64, kind Kind, label string) *Block {
	if len(p.blockArena) == cap(p.blockArena) {
		p.blockArena = make([]Block, 0, blockArenaChunk)
	}
	p.blockArena = append(p.blockArena, Block{Addr: addr, Size: size, Kind: kind, Label: label})
	return &p.blockArena[len(p.blockArena)-1]
}

// New creates a pool of the given capacity. Allocations are rounded up to
// 512-byte alignment, cnmem's granularity.
func New(capacity int64) *Pool {
	if capacity <= 0 {
		panic("memalloc: non-positive capacity")
	}
	p := &Pool{
		capacity: capacity,
		align:    512,
		free:     newFreeTree(),
		bins:     map[int64][]span{},
	}
	p.free.Insert(0, capacity)
	return p
}

// Capacity returns the pool size in bytes.
func (p *Pool) Capacity() int64 { return p.capacity }

// Used returns bytes currently allocated (after applying frees up to the
// last observed time).
func (p *Pool) Used() int64 { return p.used }

// UsedByKind returns currently allocated bytes of one kind.
func (p *Pool) UsedByKind(k Kind) int64 { return p.byKind[k] }

func (p *Pool) roundUp(n int64) int64 {
	if n <= 0 {
		return p.align
	}
	return (n + p.align - 1) / p.align * p.align
}

// applyPending applies all scheduled frees with time <= t, in time order.
func (p *Pool) applyPending(t sim.Time) {
	for len(p.pending) > 0 && p.pending[0].t <= t {
		pf := p.pending.pop()
		p.release(pf.b, pf.t)
	}
}

// Alloc reserves size bytes at simulated time t. Alloc times must be
// non-decreasing (host time is monotone). On failure the pool is unchanged
// and an *OOMError is returned.
func (p *Pool) Alloc(t sim.Time, size int64, kind Kind, label string) (*Block, error) {
	if t < p.lastTime {
		panic(fmt.Sprintf("memalloc: allocation time went backward (%v < %v)", t, p.lastTime))
	}
	p.lastTime = t
	p.applyPending(t)
	n := p.roundUp(size)

	// Two-ended heap: big feature maps take the highest-addressed fitting
	// span and carve from its top; everything else takes the
	// lowest-addressed fitting span (first fit) and carves from its bottom.
	// The populations stay segregated at opposite ends of the address space.
	// Big feature maps first try the size bin for exact hole reuse. Both fit
	// queries are O(log n) against the size-augmented free tree.
	big := kind == KindFeatureMap && n >= bigBlockThreshold
	var b *Block
	if big {
		if cached := p.bins[n]; len(cached) > 0 {
			sp := cached[len(cached)-1]
			p.bins[n] = cached[:len(cached)-1]
			b = p.newBlock(sp.addr, n, kind, label)
		}
	}
	for b == nil {
		var addr, size int64
		var ok bool
		if big {
			addr, size, ok = p.free.LastFit(n)
		} else {
			addr, size, ok = p.free.FirstFit(n)
		}
		if !ok {
			if p.flushBins() {
				continue // coalesced cached holes; retry once more
			}
			total := p.free.Total()
			return nil, &OOMError{
				Label: label, Need: n, Used: p.used, Capacity: p.capacity,
				LargestFree: p.free.MaxSize(), Fragmentation: total >= n,
			}
		}
		p.free.Remove(addr)
		if big {
			b = p.newBlock(addr+size-n, n, kind, label)
			if size > n {
				p.free.Insert(addr, size-n)
			}
		} else {
			b = p.newBlock(addr, n, kind, label)
			if size > n {
				p.free.Insert(addr+n, size-n)
			}
		}
	}
	p.used += n
	p.byKind[kind] += n
	if !p.metricsOff {
		p.events = append(p.events, usageEvent{t, n, kind, label})
	}
	if p.used > p.peak {
		p.peak = p.used
		p.peakTime = t
		p.peakByKind = p.byKind
	}
	if p.trace != nil {
		p.trace.recordAlloc(b, t, size, kind, label)
	}
	return b, nil
}

// Free schedules block b to be released at simulated time t. If t is not
// later than the last allocation time the free is applied immediately;
// otherwise it is applied before the next allocation whose time reaches t.
// Freeing a block twice panics (it is always an executor bug).
func (p *Pool) Free(b *Block, t sim.Time) {
	if b == nil {
		return
	}
	if b.freed {
		panic(fmt.Sprintf("memalloc: double free of %q", b.Label))
	}
	b.freed = true
	if p.trace != nil {
		p.trace.recordFree(b, t)
	}
	if t <= p.lastTime {
		p.release(b, t)
		return
	}
	p.pending.push(pendingFree{t, b})
}

// flushBins returns every cached hole to the coalescing freelist. Reports
// whether anything was flushed.
func (p *Pool) flushBins() bool {
	any := false
	for size, spans := range p.bins {
		for _, sp := range spans {
			p.insertFree(sp)
			any = true
		}
		delete(p.bins, size)
	}
	return any
}

// release returns the block's range to the free structures: cached big
// feature maps go to their size bin, everything else to the coalescing
// freelist.
func (p *Pool) release(b *Block, t sim.Time) {
	p.used -= b.Size
	p.byKind[b.Kind] -= b.Size
	if !p.metricsOff {
		p.events = append(p.events, usageEvent{t, -b.Size, b.Kind, b.Label})
	}
	if b.Kind == KindFeatureMap && b.Size >= bigBlockThreshold {
		p.bins[b.Size] = append(p.bins[b.Size], span{b.Addr, b.Size})
		return
	}
	p.insertFree(span{b.Addr, b.Size})
}

// insertFree merges one span into the free tree, coalescing with the
// adjacent spans when they abut.
func (p *Pool) insertFree(sp span) {
	if paddr, psize, ok := p.free.Pred(sp.addr); ok && paddr+psize == sp.addr {
		p.free.Remove(paddr)
		sp.addr = paddr
		sp.size += psize
	}
	if saddr, ssize, ok := p.free.Succ(sp.addr); ok && sp.addr+sp.size == saddr {
		p.free.Remove(saddr)
		sp.size += ssize
	}
	p.free.Insert(sp.addr, sp.size)
}

// Flush applies every scheduled free with time <= t.
func (p *Pool) Flush(t sim.Time) {
	if p.trace != nil {
		p.trace.recordFlush(t)
	}
	if t > p.lastTime {
		p.lastTime = t
	}
	p.applyPending(t)
}

func (p *Pool) FreeRanges() int {
	p.flushBins()
	return p.free.Count()
}

// LargestFree applies pending frees up to time t and returns the largest
// contiguous free range (conservatively: cached bins count individually,
// without simulating the coalescing a flush could achieve). The dynamic
// vDNN policy uses this to decide whether a layer's performance-optimal
// workspace "will overflow the GPU memory budget" (Section III-C).
func (p *Pool) LargestFree(t sim.Time) int64 {
	if t > p.lastTime {
		p.lastTime = t
	}
	p.applyPending(t)
	largest := p.free.MaxSize()
	for size := range p.bins {
		if size > largest && len(p.bins[size]) > 0 {
			largest = size
		}
	}
	return largest
}

// FreeRanges returns the number of distinct free ranges after returning all
// cached holes to the freelist (a fragmentation indicator used by tests).

// Stats summarizes the usage timeline of a pool over a window.
type Stats struct {
	Peak       int64
	PeakTime   sim.Time
	Avg        int64 // time-weighted average over the window
	PeakByKind map[Kind]int64
}

// Measure integrates the usage timeline over [start, end) and returns peak
// and time-weighted average usage over that window. Events are applied in
// time order, which makes the result exact even when frees were scheduled
// out of order relative to allocations.
func (p *Pool) Measure(start, end sim.Time) Stats {
	evs := make([]usageEvent, len(p.events))
	copy(evs, p.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

	st := Stats{PeakByKind: map[Kind]int64{}}
	var cur int64
	var curByKind [numKinds]int64
	snap := func(t sim.Time) {
		if cur > st.Peak {
			st.Peak = cur
			st.PeakTime = t
			for k := Kind(0); k < numKinds; k++ {
				st.PeakByKind[k] = curByKind[k]
			}
		}
	}
	i := 0
	// Usage carried into the window counts toward its peak.
	for ; i < len(evs) && evs[i].t < start; i++ {
		cur += evs[i].delta
		curByKind[evs[i].kind] += evs[i].delta
	}
	snap(start)
	var energy float64 // byte-nanoseconds
	cursor := start
	for ; i < len(evs) && evs[i].t <= end; i++ {
		if evs[i].t > cursor {
			energy += float64(cur) * float64(evs[i].t-cursor)
			cursor = evs[i].t
		}
		cur += evs[i].delta
		curByKind[evs[i].kind] += evs[i].delta
		snap(evs[i].t)
	}
	if end > cursor {
		energy += float64(cur) * float64(end-cursor)
	}
	if end > start {
		st.Avg = int64(energy / float64(end-start))
	}
	return st
}

// FreeSpans returns a copy of the current free ranges (debugging aid).
func (p *Pool) FreeSpans() [][2]int64 {
	out := make([][2]int64, 0, p.free.Count())
	p.free.Walk(func(addr, size int64) {
		out = append(out, [2]int64{addr, size})
	})
	return out
}

// SnapshotAt reconstructs the live allocation set at time t (aggregated by
// label), a debugging aid for attributing usage peaks.
func (p *Pool) SnapshotAt(t sim.Time) map[string]int64 {
	evs := make([]usageEvent, len(p.events))
	copy(evs, p.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	live := map[string]int64{}
	for _, e := range evs {
		if e.t > t {
			break
		}
		live[e.label] += e.delta
		if live[e.label] == 0 {
			delete(live, e.label)
		}
	}
	return live
}

// MeasureAll integrates over the full event span.
func (p *Pool) MeasureAll() Stats {
	if len(p.events) == 0 {
		return Stats{PeakByKind: map[Kind]int64{}}
	}
	evs := p.events
	minT, maxT := evs[0].t, evs[0].t
	for _, e := range evs {
		if e.t < minT {
			minT = e.t
		}
		if e.t > maxT {
			maxT = e.t
		}
	}
	return p.Measure(minT, maxT+1)
}

package memalloc

import (
	"math/rand"
	"testing"
)

// refList is the straight-line reference the tree must match: an
// address-ordered span slice with linear first-fit / last-fit scans — the
// structure the allocator used before the tree.
type refList struct{ spans []span }

func (r *refList) insert(addr, size int64) {
	i := 0
	for i < len(r.spans) && r.spans[i].addr < addr {
		i++
	}
	r.spans = append(r.spans, span{})
	copy(r.spans[i+1:], r.spans[i:])
	r.spans[i] = span{addr, size}
}

func (r *refList) remove(addr int64) {
	for i, s := range r.spans {
		if s.addr == addr {
			r.spans = append(r.spans[:i], r.spans[i+1:]...)
			return
		}
	}
	panic("refList: removing unknown span")
}

func (r *refList) firstFit(n int64) (int64, int64, bool) {
	for _, s := range r.spans {
		if s.size >= n {
			return s.addr, s.size, true
		}
	}
	return 0, 0, false
}

func (r *refList) lastFit(n int64) (int64, int64, bool) {
	for i := len(r.spans) - 1; i >= 0; i-- {
		if s := r.spans[i]; s.size >= n {
			return s.addr, s.size, true
		}
	}
	return 0, 0, false
}

func (r *refList) maxSize() int64 {
	var m int64
	for _, s := range r.spans {
		if s.size > m {
			m = s.size
		}
	}
	return m
}

func (r *refList) total() int64 {
	var t int64
	for _, s := range r.spans {
		t += s.size
	}
	return t
}

// TestFreeTreeMatchesReference drives the tree and the linear reference with
// an identical randomized operation sequence — carving spans first-fit and
// last-fit, freeing them back — and checks every query and the final span
// set agree at each step.
func TestFreeTreeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const capacity = 1 << 20

	tree := newFreeTree()
	ref := &refList{}
	tree.Insert(0, capacity)
	ref.insert(0, capacity)

	type alloc struct{ addr, size int64 }
	var live []alloc

	check := func(step int) {
		t.Helper()
		if got, want := tree.MaxSize(), ref.maxSize(); got != want {
			t.Fatalf("step %d: MaxSize = %d, want %d", step, got, want)
		}
		if got, want := tree.Total(), ref.total(); got != want {
			t.Fatalf("step %d: Total = %d, want %d", step, got, want)
		}
		if got, want := tree.Count(), len(ref.spans); got != want {
			t.Fatalf("step %d: Count = %d, want %d", step, got, want)
		}
		var spans []span
		tree.Walk(func(a, s int64) { spans = append(spans, span{a, s}) })
		for i, s := range spans {
			if s != ref.spans[i] {
				t.Fatalf("step %d: span %d = %+v, want %+v", step, i, s, ref.spans[i])
			}
		}
	}

	carve := func(n int64, last bool) {
		var ta, ts int64
		var tok bool
		var ra, rs int64
		var rok bool
		if last {
			ta, ts, tok = tree.LastFit(n)
			ra, rs, rok = ref.lastFit(n)
		} else {
			ta, ts, tok = tree.FirstFit(n)
			ra, rs, rok = ref.firstFit(n)
		}
		if tok != rok || ta != ra || ts != rs {
			t.Fatalf("fit(%d, last=%v): tree (%d,%d,%v) != ref (%d,%d,%v)",
				n, last, ta, ts, tok, ra, rs, rok)
		}
		if !tok {
			return
		}
		tree.Remove(ta)
		ref.remove(ra)
		var a alloc
		if last { // carve from the top, as big feature maps do
			a = alloc{ta + ts - n, n}
			if ts > n {
				tree.Insert(ta, ts-n)
				ref.insert(ra, rs-n)
			}
		} else { // carve from the bottom
			a = alloc{ta, n}
			if ts > n {
				tree.Insert(ta+n, ts-n)
				ref.insert(ra+n, rs-n)
			}
		}
		live = append(live, a)
	}

	release := func(i int) {
		a := live[i]
		live = append(live[:i], live[i+1:]...)
		// Coalescing insert, both sides (mirrors Pool.insertFree).
		sp := span{a.addr, a.size}
		if pa, ps, ok := tree.Pred(sp.addr); ok && pa+ps == sp.addr {
			tree.Remove(pa)
			sp.addr, sp.size = pa, sp.size+ps
		}
		if sa, ss, ok := tree.Succ(sp.addr); ok && sp.addr+sp.size == sa {
			tree.Remove(sa)
			sp.size += ss
		}
		tree.Insert(sp.addr, sp.size)

		rp := span{a.addr, a.size}
		for _, s := range append([]span(nil), ref.spans...) {
			if s.addr+s.size == rp.addr {
				ref.remove(s.addr)
				rp.addr, rp.size = s.addr, rp.size+s.size
			}
			if rp.addr+rp.size == s.addr {
				ref.remove(s.addr)
				rp.size += s.size
			}
		}
		ref.insert(rp.addr, rp.size)
	}

	for step := 0; step < 5000; step++ {
		switch {
		case len(live) > 0 && rng.Intn(3) == 0:
			release(rng.Intn(len(live)))
		default:
			n := int64(1+rng.Intn(64)) * 512
			carve(n, rng.Intn(2) == 1)
		}
		check(step)
	}
	for len(live) > 0 {
		release(len(live) - 1)
	}
	check(-1)
	if tree.Count() != 1 || tree.Total() != capacity {
		t.Fatalf("after releasing everything: %d spans, %d bytes free; want 1 span of %d",
			tree.Count(), tree.Total(), capacity)
	}
}

package memalloc

// freeTree indexes the pool's free ranges for O(log n) fit queries. It is a
// treap keyed by address and augmented with the maximum span size per
// subtree, which answers the two placement questions the allocator asks —
// "lowest-addressed range with size >= n" (small allocations, classic first
// fit) and "highest-addressed range with size >= n" (big feature maps) —
// without the linear freelist scan they would otherwise cost. The placement
// answers are exactly those of an address-ordered list scan, so swapping the
// structure in changes allocator performance, never allocator behavior.
//
// Treap priorities come from a per-tree xorshift generator with a fixed
// seed: the tree shape is a deterministic function of the operation
// sequence, keeping simulations reproducible.
type freeTree struct {
	root *ftNode
	rng  uint64

	// freelist recycles removed nodes (linked through .left). Alloc/free
	// churn removes and re-inserts spans constantly; reusing the nodes keeps
	// the tree from hammering the heap on every simulated kernel launch.
	freelist *ftNode
}

type ftNode struct {
	addr, size  int64
	prio        uint64
	left, right *ftNode

	maxSize int64 // max span size in this subtree
	count   int   // spans in this subtree
	total   int64 // sum of span sizes in this subtree
}

func newFreeTree() *freeTree {
	return &freeTree{rng: 0x9E3779B97F4A7C15}
}

// next is xorshift64*: fast, deterministic treap priorities.
func (t *freeTree) next() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (n *ftNode) update() {
	n.maxSize = n.size
	n.count = 1
	n.total = n.size
	if n.left != nil {
		if n.left.maxSize > n.maxSize {
			n.maxSize = n.left.maxSize
		}
		n.count += n.left.count
		n.total += n.left.total
	}
	if n.right != nil {
		if n.right.maxSize > n.maxSize {
			n.maxSize = n.right.maxSize
		}
		n.count += n.right.count
		n.total += n.right.total
	}
}

func rotRight(n *ftNode) *ftNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotLeft(n *ftNode) *ftNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// Count returns the number of free spans.
func (t *freeTree) Count() int {
	if t.root == nil {
		return 0
	}
	return t.root.count
}

// Total returns the total free bytes.
func (t *freeTree) Total() int64 {
	if t.root == nil {
		return 0
	}
	return t.root.total
}

// MaxSize returns the largest free span size.
func (t *freeTree) MaxSize() int64 {
	if t.root == nil {
		return 0
	}
	return t.root.maxSize
}

// Insert adds a span. Spans are disjoint; inserting an existing address is an
// allocator bug.
func (t *freeTree) Insert(addr, size int64) {
	x := t.freelist
	if x != nil {
		t.freelist = x.left
		*x = ftNode{addr: addr, size: size, prio: t.next()}
	} else {
		x = &ftNode{addr: addr, size: size, prio: t.next()}
	}
	t.root = insertNode(t.root, x)
}

func insertNode(n, x *ftNode) *ftNode {
	if n == nil {
		x.update()
		return x
	}
	if x.addr < n.addr {
		n.left = insertNode(n.left, x)
		if n.left.prio > n.prio {
			n = rotRight(n)
			n.update()
			return n
		}
	} else {
		n.right = insertNode(n.right, x)
		if n.right.prio > n.prio {
			n = rotLeft(n)
			n.update()
			return n
		}
	}
	n.update()
	return n
}

// Remove deletes the span at addr. The address must exist. The removed node
// goes to the freelist for reuse by a later Insert.
func (t *freeTree) Remove(addr int64) {
	t.root = t.removeNode(t.root, addr)
}

func (t *freeTree) removeNode(n *ftNode, addr int64) *ftNode {
	if n == nil {
		panic("memalloc: removing unknown free span")
	}
	switch {
	case addr < n.addr:
		n.left = t.removeNode(n.left, addr)
	case addr > n.addr:
		n.right = t.removeNode(n.right, addr)
	default:
		merged := mergeNodes(n.left, n.right)
		n.left, n.right = t.freelist, nil
		t.freelist = n
		return merged
	}
	n.update()
	return n
}

// mergeNodes joins two subtrees where every key in a precedes every key in b.
func mergeNodes(a, b *ftNode) *ftNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = mergeNodes(a.right, b)
		a.update()
		return a
	}
	b.left = mergeNodes(a, b.left)
	b.update()
	return b
}

// FirstFit returns the lowest-addressed span with size >= n.
func (t *freeTree) FirstFit(n int64) (addr, size int64, ok bool) {
	cur := t.root
	if cur == nil || cur.maxSize < n {
		return 0, 0, false
	}
	for {
		if cur.left != nil && cur.left.maxSize >= n {
			cur = cur.left
			continue
		}
		if cur.size >= n {
			return cur.addr, cur.size, true
		}
		cur = cur.right // guaranteed by the subtree maxSize invariant
	}
}

// LastFit returns the highest-addressed span with size >= n.
func (t *freeTree) LastFit(n int64) (addr, size int64, ok bool) {
	cur := t.root
	if cur == nil || cur.maxSize < n {
		return 0, 0, false
	}
	for {
		if cur.right != nil && cur.right.maxSize >= n {
			cur = cur.right
			continue
		}
		if cur.size >= n {
			return cur.addr, cur.size, true
		}
		cur = cur.left
	}
}

// Pred returns the span with the greatest address < addr.
func (t *freeTree) Pred(addr int64) (paddr, psize int64, ok bool) {
	for cur := t.root; cur != nil; {
		if cur.addr < addr {
			paddr, psize, ok = cur.addr, cur.size, true
			cur = cur.right
		} else {
			cur = cur.left
		}
	}
	return paddr, psize, ok
}

// Succ returns the span with the least address > addr.
func (t *freeTree) Succ(addr int64) (saddr, ssize int64, ok bool) {
	for cur := t.root; cur != nil; {
		if cur.addr > addr {
			saddr, ssize, ok = cur.addr, cur.size, true
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return saddr, ssize, ok
}

// Walk visits every span in address order.
func (t *freeTree) Walk(fn func(addr, size int64)) {
	var rec func(n *ftNode)
	rec = func(n *ftNode) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.addr, n.size)
		rec(n.right)
	}
	rec(t.root)
}

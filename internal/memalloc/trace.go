package memalloc

import "vdnn/internal/sim"

// Allocation-trace recording for differential sweep evaluation.
//
// The executor's allocator call sequence — every Alloc, Free and Flush, with
// their simulated timestamps — is a pure function of the configuration's
// *structure* (network, policy, algorithms, schedule), never of the pool's
// capacity, as long as every allocation succeeds: capacity feeds back into
// the simulation only through allocation failure (and through LargestFree,
// which only greedy algorithm selection consults). A trace recorded against
// an effectively infinite pool can therefore be replayed against any real
// capacity, and the replay's first failure is byte-for-byte the failure the
// full simulation would have hit — while a clean replay proves the full
// simulation would have succeeded with an identical timeline. That
// equivalence is what lets the sweep engine price a capacity/batch sweep
// point with one allocator replay instead of a whole re-simulation.

type traceKind uint8

const (
	traceAlloc traceKind = iota
	traceFree
	traceFlush
)

// traceOp is one recorded pool call. For traceAlloc, ref is the index the
// resulting block is registered under and size is the *unrounded* request;
// for traceFree, ref names the block being freed.
type traceOp struct {
	op    traceKind
	kind  Kind
	t     sim.Time
	size  int64
	ref   int32
	label string
}

// Trace is a recorded allocator call sequence.
type Trace struct {
	ops    []traceOp
	blocks int32
}

// Len returns the number of recorded calls.
func (tr *Trace) Len() int { return len(tr.ops) }

// NewTraced creates a pool that records every Alloc, Free and Flush into tr
// in call order. The recorded sequence can be replayed against a different
// capacity with Replay.
func NewTraced(capacity int64, tr *Trace) *Pool {
	p := New(capacity)
	p.trace = tr
	return p
}

func (tr *Trace) recordAlloc(b *Block, t sim.Time, size int64, kind Kind, label string) {
	b.seq = tr.blocks
	tr.blocks++
	tr.ops = append(tr.ops, traceOp{op: traceAlloc, kind: kind, t: t, size: size, ref: b.seq, label: label})
}

func (tr *Trace) recordFree(b *Block, t sim.Time) {
	tr.ops = append(tr.ops, traceOp{op: traceFree, t: t, ref: b.seq})
}

func (tr *Trace) recordFlush(t sim.Time) {
	tr.ops = append(tr.ops, traceOp{op: traceFlush, t: t})
}

// Replay re-executes the recorded call sequence against a fresh pool of the
// given capacity and returns the first allocation failure, or nil if every
// call succeeds. Because the pool is a deterministic function of its call
// sequence, a nil return proves a full simulation at this capacity would
// make exactly these calls and succeed; a non-nil return is the *OOMError
// that simulation's first failing allocation would produce.
func (tr *Trace) Replay(capacity int64) error {
	if capacity <= 0 {
		return &OOMError{Need: 1, Capacity: capacity}
	}
	p := New(capacity)
	p.metricsOff = true // the verdict needs no usage timeline
	blocks := make([]*Block, tr.blocks)
	for i := range tr.ops {
		o := &tr.ops[i]
		switch o.op {
		case traceAlloc:
			b, err := p.Alloc(o.t, o.size, o.kind, o.label)
			if err != nil {
				return err
			}
			blocks[o.ref] = b
		case traceFree:
			p.Free(blocks[o.ref], o.t)
		case traceFlush:
			p.Flush(o.t)
		}
	}
	return nil
}

// Package store is a content-addressed, file-backed persistent cache of
// simulation results. It extends the in-process result cache
// (internal/sweep) across restarts and across processes: the key is a
// digest of the same normalized Config that keys the in-memory cache plus a
// structural fingerprint of the network, so any two processes that would
// coalesce a request in memory address the same record on disk.
//
// Layout and durability model:
//
//   - One record per file, DIR/<sha256-hex>.rec, written to a temp file in
//     the same directory and renamed into place. Rename is atomic on POSIX
//     filesystems, so concurrent replicas sharing DIR never observe a
//     half-written record — the worst race is both simulating the same
//     config once and one rename winning, which is correct (results are
//     deterministic functions of the key).
//   - Each record carries a fixed envelope — magic, payload length, CRC32 —
//     ahead of a versioned JSON payload. Open validates every record and
//     skips (never fails on) anything truncated, corrupt, or from a
//     different format version: a crashed writer or a bad disk costs one
//     record, not the store.
//
// The store persists only results that are pure functions of the key:
// configurations carrying a Custom policy are never written (a different
// binary could register different decisions under the same policy name),
// and the sweep engine additionally skips its oracle structure probes,
// which carry allocator state that is not meaningful across processes.
package store

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crypto/sha256"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
)

const (
	// magic identifies a vDNN store record, version baked into the string:
	// bumping the on-disk envelope means a new magic, and old files are
	// skipped as corrupt rather than misread.
	magic = "vDNNsto1"

	// recordVersion is the payload schema version inside the envelope.
	recordVersion = 1

	// keyDomain prefixes every key hash so store keys can never collide
	// with any other sha256 use, and bumping it invalidates all keys.
	keyDomain = "vdnn-store-key-v1\n"

	// maxPayload bounds a record's JSON payload; anything claiming more is
	// corrupt by definition (a full CaptureSchedule result is ~single-digit
	// MB).
	maxPayload = 64 << 20

	headerSize = len(magic) + 4 + 4 // magic + payload length + CRC32
)

// record is the versioned JSON payload of one store file. Network, Batch
// and Policy duplicate information already hashed into the key; they make
// records self-describing for offline inspection (jq over the store dir).
type record struct {
	Version   int          `json:"version"`
	Key       string       `json:"key"`
	Network   string       `json:"network"`
	Batch     int          `json:"batch"`
	Policy    string       `json:"policy"`
	SavedUnix int64        `json:"saved_unix"`
	Result    *core.Result `json:"result"`
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	// Records is the number of valid records: counted at Open, incremented
	// by local writes (a second replica's writes are not observed until
	// reopen).
	Records int64 `json:"records"`
	// Hits and Misses count read-through lookups.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Writes counts successful write-throughs; WriteErrors failed ones
	// (write failure is logged, never propagated — the result is still
	// served from memory).
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// CorruptSkipped counts records skipped for failing validation, at Open
	// or during reads.
	CorruptSkipped int64 `json:"corrupt_skipped"`
}

// Store is a persistent result store rooted at one directory. All methods
// are safe for concurrent use, including by multiple processes sharing the
// directory.
type Store struct {
	dir string
	log *slog.Logger

	records     atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	writes      atomic.Int64
	writeErrors atomic.Int64
	corrupt     atomic.Int64
}

// Option configures Open.
type Option func(*Store)

// WithLogger routes the store's skip/error logs to l (default: discard).
func WithLogger(l *slog.Logger) Option {
	return func(s *Store) {
		if l != nil {
			s.log = l
		}
	}
}

// Open opens (creating if needed) the store rooted at dir and validates
// every record in it. Invalid records — truncated, bad checksum, wrong
// version — are counted, logged and skipped; they are never fatal and never
// served.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, log: slog.New(slog.DiscardHandler)}
	for _, o := range opts {
		o(s)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rec") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		key := strings.TrimSuffix(e.Name(), ".rec")
		if _, err := s.readRecord(path, key); err != nil {
			s.corrupt.Add(1)
			s.log.Warn("store: skipping invalid record", "file", e.Name(), "err", err)
			continue
		}
		s.records.Add(1)
	}
	s.log.Info("store: opened", "dir", dir,
		"records", s.records.Load(), "skipped", s.corrupt.Load())
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Records:        s.records.Load(),
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Writes:         s.writes.Load(),
		WriteErrors:    s.writeErrors.Load(),
		CorruptSkipped: s.corrupt.Load(),
	}
}

// --- keys -------------------------------------------------------------------

// fingerprints memoizes the structural fingerprint per *dnn.Network.
// Networks are immutable once built and the simulator's network cache hands
// out shared pointers, so identity is a sound memo key.
var fingerprints sync.Map // *dnn.Network -> string

// Key returns the store key for simulating net under cfg, or ok=false if
// the configuration cannot be addressed persistently (custom policies: a
// policy object's decisions are not recoverable from its name by another
// process). The key hashes the network's structure — not its registry name
// alone — plus the normalized Config, mirroring exactly what the in-memory
// result cache keys on.
func Key(net *dnn.Network, cfg core.Config) (string, bool) {
	if cfg.Custom != nil {
		return "", false
	}
	fp, ok := fingerprints.Load(net)
	if !ok {
		fp, _ = fingerprints.LoadOrStore(net, fingerprint(net))
	}
	cfgJSON, err := json.Marshal(cfg.WithDefaults())
	if err != nil {
		return "", false
	}
	h := sha256.New()
	io.WriteString(h, keyDomain)
	io.WriteString(h, fp.(string))
	h.Write([]byte{0})
	h.Write(cfgJSON)
	return hex.EncodeToString(h.Sum(nil)), true
}

// fingerprint serializes the structural identity of a network: name, batch,
// element type, and per-layer kind/geometry/connectivity. Two networks with
// equal fingerprints produce identical simulation results under any Config.
func fingerprint(n *dnn.Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d|%d\n", n.Name, n.Batch, int(n.DType), len(n.Layers))
	for _, l := range n.Layers {
		fmt.Fprintf(&b, "%d|%s|%d|%d|%t|%d|%v|",
			l.ID, l.Name, int(l.Kind), int(l.Stage), l.InPlace, l.Output.ID, l.Output.Shape)
		for _, in := range l.Inputs {
			fmt.Fprintf(&b, "%d,", in.ID)
		}
		// Spec pointers print as &{...} or <nil>; both are deterministic.
		fmt.Fprintf(&b, "|%v|%v|%v|%v|%v\n", l.Conv, l.Pool, l.LRN, l.FC, l.Dropout)
	}
	return b.String()
}

// --- read path --------------------------------------------------------------

// Load is the sweep.ResultStore read-through: it returns the stored result
// for (net, cfg) if a valid record exists.
func (s *Store) Load(net *dnn.Network, cfg core.Config) (*core.Result, bool) {
	key, ok := Key(net, cfg)
	if !ok {
		return nil, false
	}
	return s.Get(key)
}

// Get returns the result stored under key, or ok=false on a miss. A corrupt
// record reads as a miss (counted and logged), so a replica can always fall
// back to simulating.
func (s *Store) Get(key string) (*core.Result, bool) {
	rec, err := s.readRecord(filepath.Join(s.dir, key+".rec"), key)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.corrupt.Add(1)
			s.log.Warn("store: skipping invalid record", "key", key, "err", err)
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return rec.Result, true
}

// readRecord reads and fully validates one record file. wantKey guards
// against renamed/copied files serving the wrong result.
func (s *Store) readRecord(path, wantKey string) (*record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("short header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("bad magic %q", hdr[:len(magic)])
	}
	n := binary.LittleEndian.Uint32(hdr[len(magic):])
	sum := binary.LittleEndian.Uint32(hdr[len(magic)+4:])
	if n == 0 || n > maxPayload {
		return nil, fmt.Errorf("implausible payload length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("truncated payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("checksum mismatch: %08x != %08x", got, sum)
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("payload: %w", err)
	}
	if rec.Version != recordVersion {
		return nil, fmt.Errorf("record version %d, want %d", rec.Version, recordVersion)
	}
	if wantKey != "" && rec.Key != wantKey {
		return nil, fmt.Errorf("key mismatch: record %.16s... under file %.16s...", rec.Key, wantKey)
	}
	if rec.Result == nil {
		return nil, errors.New("record without result")
	}
	return &rec, nil
}

// --- write path -------------------------------------------------------------

// Save is the sweep.ResultStore write-through: it persists the result of
// simulating (net, cfg). Write failures are logged and counted, never
// returned — persistence is strictly an optimization.
func (s *Store) Save(net *dnn.Network, cfg core.Config, res *core.Result) {
	key, ok := Key(net, cfg)
	if !ok || res == nil {
		return
	}
	rec := record{
		Version:   recordVersion,
		Key:       key,
		Network:   net.Name,
		Batch:     net.Batch,
		Policy:    res.PolicyName,
		SavedUnix: time.Now().Unix(),
		Result:    res,
	}
	if err := s.put(key, rec); err != nil {
		s.writeErrors.Add(1)
		s.log.Warn("store: write failed", "key", key, "err", err)
	}
}

// put atomically writes rec under key: temp file in the store directory,
// then rename. Concurrent writers (other goroutines or other processes) are
// safe; last rename wins with an identical, complete record.
func (s *Store) put(key string, rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(magic)+4:], crc32.ChecksumIEEE(payload))

	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(payload)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	dst := filepath.Join(s.dir, key+".rec")
	_, statErr := os.Stat(dst)
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	s.writes.Add(1)
	if errors.Is(statErr, fs.ErrNotExist) {
		s.records.Add(1)
	}
	return nil
}

package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/memalloc"
	"vdnn/internal/networks"
	"vdnn/internal/sim"
)

func testResult(i int) *core.Result {
	return &core.Result{
		Network:    "alexnet",
		Batch:      32,
		Policy:     core.Policy(i % 3),
		PolicyName: "vdnn-all",
		Trainable:  true,
		IterTime:   sim.Time(1000 + i),
		MaxUsage:   int64(i+1) << 20,
		PeakByKind: map[memalloc.Kind]int64{
			memalloc.KindFeatureMap: int64(i+1) << 19,
		},
		Layers: []core.LayerStats{
			{Name: "conv1", FwdTime: 7, BwdTime: 11},
		},
	}
}

// saveN saves n distinct configs into s and returns their keys in save order.
func saveN(t *testing.T, s *Store, n int) []string {
	t.Helper()
	net := networks.AlexNet(32)
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Iterations: 2 + i}
		key, ok := Key(net, cfg)
		if !ok {
			t.Fatalf("Key not ok for plain config %d", i)
		}
		s.Save(net, cfg, testResult(i))
		keys = append(keys, key)
	}
	return keys
}

func TestKeyProperties(t *testing.T) {
	net := networks.AlexNet(32)
	base := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll}

	k1, ok := Key(net, base)
	if !ok || len(k1) != 64 {
		t.Fatalf("Key = %q, %v; want 64-hex, true", k1, ok)
	}
	// Normalization: a config differing only in defaulted fields keys the
	// same record.
	explicit := base
	explicit.Iterations = 2
	explicit.Devices = 1
	if k2, _ := Key(net, explicit); k2 != k1 {
		t.Errorf("normalized config keyed differently: %s != %s", k2, k1)
	}
	// A semantically different config must key differently.
	oracle := base
	oracle.Oracle = true
	if k3, _ := Key(net, oracle); k3 == k1 {
		t.Errorf("oracle config collided with base key")
	}
	// Structural identity, not pointer identity: a rebuilt network keys the
	// same.
	if k4, _ := Key(networks.AlexNet(32), base); k4 != k1 {
		t.Errorf("rebuilt network keyed differently: %s != %s", k4, k1)
	}
	// A different batch is a different network fingerprint.
	if k5, _ := Key(networks.AlexNet(64), base); k5 == k1 {
		t.Errorf("batch-64 network collided with batch-32 key")
	}
	// Custom policies are never addressable persistently.
	custom := base
	custom.Custom = fakePolicy{}
	if _, ok := Key(net, custom); ok {
		t.Errorf("Key ok for custom policy; custom policies must not persist")
	}
}

type fakePolicy struct{}

func (fakePolicy) Name() string { return "fake" }
func (fakePolicy) OffloadInput(*dnn.Network, *dnn.Tensor, *dnn.Layer) bool {
	return false
}
func (fakePolicy) Algorithms(_ *dnn.Network, _ *dnn.Layer, m core.AlgoMode) core.AlgoMode {
	return m
}
func (fakePolicy) PrefetchSchedule(_ *dnn.Network, m core.PrefetchMode) core.PrefetchMode {
	return m
}

func TestSaveLoadAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	net := networks.AlexNet(32)
	cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll}
	want := testResult(0)
	s1.Save(net, cfg, want)
	if st := s1.Stats(); st.Writes != 1 || st.WriteErrors != 0 || st.Records != 1 {
		t.Fatalf("after save: %+v", st)
	}
	got, ok := s1.Load(net, cfg)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("same-process Load = %+v, %v", got, ok)
	}

	// A brand-new store over the same directory — the restarted daemon —
	// serves the identical result.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st := s2.Stats(); st.Records != 1 || st.CorruptSkipped != 0 {
		t.Fatalf("after reopen: %+v", st)
	}
	got, ok = s2.Load(net, cfg)
	if !ok {
		t.Fatalf("Load after reopen missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip result differs:\n got %+v\nwant %+v", got, want)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("reopen stats after hit: %+v", st)
	}
}

func TestCorruptRecordsSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	keys := saveN(t, s, 3)

	// Truncate the last record mid-payload (a crash during a non-atomic
	// copy of the store, or disk damage).
	last := filepath.Join(dir, keys[2]+".rec")
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(last, fi.Size()-10); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	// And drop in a file that is not a record at all.
	garbage := filepath.Join(dir, strings.Repeat("ab", 32)+".rec")
	if err := os.WriteFile(garbage, []byte("not a record"), 0o644); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	// Leftover temp files from a crashed writer are not records.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatalf("write temp: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over corrupt store must not fail: %v", err)
	}
	st := s2.Stats()
	if st.Records != 2 || st.CorruptSkipped != 2 {
		t.Fatalf("reopen stats = %+v, want 2 valid / 2 skipped", st)
	}
	// Valid records still served.
	for i, key := range keys[:2] {
		if res, ok := s2.Get(key); !ok || res.IterTime != sim.Time(1000+i) {
			t.Errorf("valid record %d not served after corruption elsewhere", i)
		}
	}
	// The truncated record reads as a miss, never an error or wrong data.
	if _, ok := s2.Get(keys[2]); ok {
		t.Errorf("truncated record served")
	}
}

func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := saveN(t, s, 1)[0]
	path := filepath.Join(dir, key+".rec")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	b[len(b)-5] ^= 0x40 // flip a bit inside the JSON payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatalf("bit-flipped record served; CRC must catch it")
	}
	if st := s.Stats(); st.CorruptSkipped == 0 {
		t.Errorf("corruption not counted: %+v", st)
	}
}

func TestMisfiledRecordRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	keys := saveN(t, s, 2)
	// Copy record 0's file over record 1's name: intact envelope, wrong key.
	b, err := os.ReadFile(filepath.Join(dir, keys[0]+".rec"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, keys[1]+".rec"), b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatalf("record served under the wrong key")
	}
}

func TestWrongVersionSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := saveN(t, s, 1)[0]
	rec, err := s.readRecord(filepath.Join(dir, key+".rec"), key)
	if err != nil {
		t.Fatalf("readRecord: %v", err)
	}
	rec.Version = recordVersion + 1
	if err := s.put(key, *rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatalf("future-version record served")
	}
}

func TestConcurrentSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	net := networks.AlexNet(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cfg := core.Config{Spec: gpu.TitanX(), Policy: core.VDNNAll, Iterations: 2 + i%4}
				s.Save(net, cfg, testResult(i%4))
				if res, ok := s.Load(net, cfg); ok && res == nil {
					t.Error("hit with nil result")
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.WriteErrors != 0 {
		t.Errorf("concurrent writes errored: %+v", st)
	}
	// Everything on disk is complete and valid.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st := s2.Stats(); st.Records != 4 || st.CorruptSkipped != 0 {
		t.Errorf("after concurrent writes: %+v, want 4 clean records", st)
	}
}

package cudnnsim

import (
	"sort"

	"vdnn/internal/gpu"
	"vdnn/internal/sim"
)

// AlgoPerf is one entry of the profiling result, mirroring cudnnAlgoPerf_t:
// the algorithm, its measured execution time, and its workspace requirement.
type AlgoPerf struct {
	Algo      ConvAlgo
	Time      sim.Time
	Workspace int64
}

// FindConvAlgorithms mirrors cudnnFindConvolution*AlgorithmEx: it evaluates
// every algorithm supported for the geometry and direction and returns them
// sorted fastest-first, excluding algorithms whose workspace exceeds
// wsLimit (pass wsLimit < 0 for no limit). Frameworks call this during
// their startup profiling stage; the dynamic vDNN policy calls it with the
// pool's available memory as the limit (Section III-C).
//
// The unfiltered sorted list is memoized per (spec, geometry, direction) —
// the greedy algorithm mode re-profiles every CONV layer at every pass with
// a different workspace limit, and only the cheap filter depends on the
// limit. Safe for concurrent use; callers receive a private slice.
func FindConvAlgorithms(spec gpu.Spec, g ConvGeom, dir Direction, wsLimit int64) []AlgoPerf {
	k := findKey{newSpecKey(spec), g, dir}
	var all []AlgoPerf
	if v, ok := findMemo.Load(k); ok {
		all = v.([]AlgoPerf)
	} else {
		for _, a := range Algos() {
			if !a.Supported(g, dir) {
				continue
			}
			all = append(all, AlgoPerf{Algo: a, Time: ConvCost(spec, g, a, dir).Dur, Workspace: a.Workspace(g, dir)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Time != all[j].Time {
				return all[i].Time < all[j].Time
			}
			return all[i].Workspace < all[j].Workspace // break ties toward less memory
		})
		findMemo.Store(k, all)
	}
	out := make([]AlgoPerf, 0, len(all))
	for _, p := range all {
		if wsLimit >= 0 && p.Workspace > wsLimit {
			continue
		}
		out = append(out, p)
	}
	return out
}

// FastestAlgo returns the performance-optimal algorithm under a workspace
// limit. The memory-optimal choice is always ImplicitGEMM (zero workspace),
// so the result list is never empty for a valid geometry.
func FastestAlgo(spec gpu.Spec, g ConvGeom, dir Direction, wsLimit int64) AlgoPerf {
	perfs := FindConvAlgorithms(spec, g, dir, wsLimit)
	if len(perfs) == 0 {
		// Even a zero workspace limit admits implicit GEMM.
		return AlgoPerf{Algo: ImplicitGEMM, Time: ConvCost(spec, g, ImplicitGEMM, dir).Dur}
	}
	return perfs[0]
}
